// Quickstart: two simulated hosts connected by a HIPPI switch, each with a
// CAB adaptor running the single-copy stack. A client writes 4 MB through
// a Berkeley socket (copy semantics); the data is DMAed once — directly
// from the pinned user buffer into CAB network memory, checksummed by
// hardware on the way — and received the same way on the other side.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/units"
	"repro/internal/wire"
)

const (
	addrA = wire.Addr(0x0a000001)
	addrB = wire.Addr(0x0a000002)
	port  = 5001
)

func main() {
	// Build the testbed: a HIPPI switch with two Alpha-class hosts.
	tb := core.NewTestbed(42)
	a := tb.AddHost(core.HostConfig{
		Name: "alpha-a", Addr: addrA, Mode: socket.ModeSingleCopy, CABNode: 1,
	})
	b := tb.AddHost(core.HostConfig{
		Name: "alpha-b", Addr: addrB, Mode: socket.ModeSingleCopy, CABNode: 2,
	})
	tb.RouteCAB(a, b)

	const total = 4 * units.MB
	const writeSize = 64 * units.KB

	// Server: accept one stream and count/verify the bytes.
	lis := b.Stk.Listen(port)
	var received units.Size
	srvTask := b.NewUserTask("server", 0)
	tb.Eng.Go("server", func(p *sim.Proc) {
		s := b.Accept(p, srvTask, lis)
		buf := srvTask.Space.Alloc(writeSize, 8)
		for {
			n, err := s.Read(p, buf)
			received += n
			if err != nil {
				return
			}
		}
	})

	// Client: write the payload with plain socket writes.
	cliTask := a.NewUserTask("client", 0)
	tb.Eng.Go("client", func(p *sim.Proc) {
		s, err := a.Dial(p, cliTask, addrB, port)
		if err != nil {
			panic(err)
		}
		buf := cliTask.Space.Alloc(writeSize, 8)
		for i := range buf.Bytes() {
			buf.Bytes()[i] = byte(i)
		}
		start := p.Now()
		for sent := units.Size(0); sent < total; sent += writeSize {
			if err := s.WriteAll(p, buf); err != nil {
				panic(err)
			}
		}
		s.Close(p)
		fmt.Printf("client: wrote %v in %v of virtual time\n", total, p.Now()-start)
	})

	tb.Eng.Run()
	tb.Eng.KillAll()

	fmt.Printf("server: received %v\n", received)
	fmt.Printf("single-copy evidence:\n")
	fmt.Printf("  sender UIO (descriptor) writes . %d\n", 0+int(total/writeSize))
	fmt.Printf("  hardware-verified checksums .... %d (receiver touched only headers)\n",
		b.Stk.Stats.HWCsumVerified)
	fmt.Printf("  outboard (WCAB) deliveries ..... %d\n", b.Drv.Stats.RxLarge)
	fmt.Printf("  CPU copy time on sender ........ %v (zero = no host copies)\n",
		a.K.CategoryBreakdown()["copy"])
	fmt.Printf("  network memory leaks ........... %d pages\n",
		a.CAB.TotalPages()-a.CAB.FreePages())
}
