// Mixeddevices: one single-copy stack, many kinds of interfaces (Section
// 4.1's argument for a single stack, and Section 5's interoperation
// shims). Host A reaches host B two ways — over the CAB (single-copy,
// outboard checksums) and over a legacy Ethernet-class device (descriptor
// mbufs converted by the thin shim at the driver entry point) — plus
// talks to itself over loopback. Host R demonstrates IP routing between
// unlike interfaces: packets from C (Ethernet-only) are forwarded by R
// onto the HIPPI fabric toward B.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netif"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/units"
	"repro/internal/wire"
)

const (
	addrA = wire.Addr(0x0a000001)
	addrB = wire.Addr(0x0a000002)
	addrC = wire.Addr(0x0a000003)
	addrR = wire.Addr(0x0a0000fe)
)

func transfer(tb *core.Testbed, from, to *core.Host, dst wire.Addr, port uint16, n units.Size) func() {
	lis := to.Stk.Listen(port)
	var got units.Size
	rt := to.NewUserTask(fmt.Sprintf("rcv%d", port), 0)
	tb.Eng.Go("rcv", func(p *sim.Proc) {
		s := to.Accept(p, rt, lis)
		buf := rt.Space.Alloc(64*units.KB, 8)
		for {
			r, err := s.Read(p, buf)
			got += r
			if err != nil {
				return
			}
		}
	})
	st := from.NewUserTask(fmt.Sprintf("snd%d", port), 0)
	tb.Eng.Go("snd", func(p *sim.Proc) {
		s, err := from.Dial(p, st, dst, port)
		if err != nil {
			panic(err)
		}
		buf := st.Space.Alloc(64*units.KB, 8)
		for sent := units.Size(0); sent < n; sent += buf.Len {
			s.WriteAll(p, buf)
		}
		s.Close(p)
	})
	return func() {
		fmt.Printf("  port %d: received %v of %v\n", port, got, n)
	}
}

func main() {
	tb := core.NewTestbed(11)
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mode: socket.ModeSingleCopy,
		CABNode: 1, EthNode: 11, Loopback: true})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mode: socket.ModeSingleCopy,
		CABNode: 2, EthNode: 12})
	c := tb.AddHost(core.HostConfig{Name: "C", Addr: addrC, Mode: socket.ModeSingleCopy,
		CABNode: 9, EthNode: 13})
	r := tb.AddHost(core.HostConfig{Name: "R", Addr: addrR, Mode: socket.ModeSingleCopy,
		CABNode: 3, EthNode: 14})

	// A↔B over the CAB.
	tb.RouteCAB(a, b)
	// C reaches B via router R: C→R on Ethernet, R→B on HIPPI.
	c.Stk.Routes.AddHost(addrB, c.Eth, netif.LinkAddr(14))
	r.Stk.Routes.AddHost(addrB, r.Drv, netif.LinkAddr(2))
	b.Stk.Routes.AddHost(addrC, b.Drv, netif.LinkAddr(3)) // replies via R
	r.Stk.Routes.AddHost(addrC, r.Eth, netif.LinkAddr(13))
	tb.RouteCAB(c, r) // unused CAB path for completeness

	fmt.Println("running three concurrent transfers through one stack:")

	// 1. A→B over the CAB: the single-copy path.
	p1 := transfer(tb, a, b, addrB, 6001, 2*units.MB)

	// 2. A→A over loopback: descriptor mbufs materialized by the shim.
	p2 := transfer(tb, a, a, addrA, 6002, 512*units.KB)

	// 3. C→B routed by R between unlike devices.
	p3 := transfer(tb, c, b, addrB, 6003, 1*units.MB)

	tb.Eng.Run()
	tb.Eng.KillAll()

	p1()
	p2()
	p3()
	fmt.Println("\ninteroperation evidence:")
	fmt.Printf("  A loopback conversions (shim) ......... %d packets\n", a.Lo.TxPackets)
	fmt.Printf("  R forwarded between interfaces ........ %d packets\n", r.Stk.Stats.IPForwarded)
	fmt.Printf("  B hardware-checksum verifications ..... %d\n", b.Stk.Stats.HWCsumVerified)
	fmt.Printf("  B software-checksum verifications ..... %d (Ethernet/routed arrivals)\n", b.Stk.Stats.SWCsumVerified)
	fmt.Printf("  C Ethernet driver shim conversions .... %d\n", c.Eth.Converted)
}
