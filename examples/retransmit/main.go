// Retransmit: outboard buffering under packet loss (Section 4.3). Frames
// are dropped on the HIPPI fabric; TCP retransmits from the M_WCAB data
// still resident in CAB network memory using a header-only SDMA — the
// adaptor overlays the fresh header on the old packet and combines the new
// header seed with the body checksum it saved on the first transmission,
// so retransmission never touches the data again (not in user space, not
// even in network memory).
package main

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/units"
	"repro/internal/wire"
)

const (
	addrA = wire.Addr(0x0a000001)
	addrB = wire.Addr(0x0a000002)
	port  = 5001
)

func main() {
	tb := core.NewTestbed(23)
	// Drop every 9th data-bearing frame (control traffic passes).
	inj := fault.New(tb.Eng, 23)
	inj.Add(fault.Rule{Kind: fault.Drop, When: fault.Every(9), MinLen: 1000})
	tb.EnableFaults(inj)
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mode: socket.ModeSingleCopy, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mode: socket.ModeSingleCopy, CABNode: 2})
	tb.RouteCAB(a, b)

	const total = 4 * units.MB
	lis := b.Stk.Listen(port)
	var got []byte
	rt := b.NewUserTask("rcv", 0)
	tb.Eng.Go("receiver", func(p *sim.Proc) {
		s := b.Accept(p, rt, lis)
		buf := rt.Space.Alloc(128*units.KB, 8)
		for {
			r, err := s.Read(p, buf)
			if r > 0 {
				got = append(got, buf.Slice(0, r).Bytes()...)
			}
			if err != nil {
				return
			}
		}
	})

	st := a.NewUserTask("snd", 0)
	tb.Eng.Go("sender", func(p *sim.Proc) {
		s, err := a.Dial(p, st, addrB, port)
		if err != nil {
			panic(err)
		}
		buf := st.Space.Alloc(128*units.KB, 8)
		for i := range buf.Bytes() {
			buf.Bytes()[i] = byte(3 * i)
		}
		for sent := units.Size(0); sent < total; sent += buf.Len {
			s.WriteAll(p, buf)
		}
		s.Close(p)
	})

	tb.Eng.Run()
	tb.Eng.KillAll()

	want := make([]byte, 128*units.KB)
	for i := range want {
		want[i] = byte(3 * i)
	}
	intact := units.Size(len(got)) == total
	for off := 0; intact && off < len(got); off += len(want) {
		intact = bytes.Equal(got[off:off+len(want)], want)
	}

	fmt.Printf("transferred %v with %d frames dropped in flight\n",
		units.Size(len(got)), inj.Fired[fault.Drop])
	fmt.Printf("data intact: %v\n", intact)
	fmt.Printf("TCP retransmissions .................. %d\n", a.Stk.Stats.TCPRetransmits)
	fmt.Printf("header-only SDMA overlays ............ %d (body never re-read)\n", a.Drv.Stats.TxOverlays)
	fmt.Printf("fallback data re-reads ............... %d\n", a.Drv.Stats.TxFallbackReads)
	fmt.Printf("checksum failures at receiver ........ %d\n", b.Stk.Stats.TCPCsumErrors)
	fmt.Printf("receiver out-of-order segments held .. %d\n", b.Stk.Stats.TCPOutOfOrder)
	fmt.Printf("network memory reclaimed ............. %v\n",
		a.CAB.FreePages() == a.CAB.TotalPages() && b.CAB.FreePages() == b.CAB.TotalPages())
}
