// Fileserver: the Section 5 scenario of an IO-intensive in-kernel
// application. A block server lives inside host B's kernel and serves
// 64 KB blocks from its buffer cache (shared cluster mbufs) over TCP.
// Because the in-kernel API has share semantics, transmission over the CAB
// is automatically single-copy: each block is DMAed once into network
// memory with the checksum computed en route, with no changes to the
// server's code.
//
// A user-space client on host A reads blocks through ordinary sockets,
// receiving them over the single-copy read path, and verifies content.
package main

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/kernapp"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/units"
	"repro/internal/wire"
)

const (
	addrA = wire.Addr(0x0a000001)
	addrB = wire.Addr(0x0a000002)
	port  = 7777
)

func main() {
	tb := core.NewTestbed(7)
	a := tb.AddHost(core.HostConfig{Name: "client-host", Addr: addrA,
		Mode: socket.ModeSingleCopy, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "server-host", Addr: addrB,
		Mode: socket.ModeSingleCopy, CABNode: 2})
	tb.RouteCAB(a, b)

	// The in-kernel block server: 64 KB blocks.
	srv := kernapp.NewBlockServer(b.K, b.Stk, port, 64*units.KB)
	tb.Eng.Go("blockserver", srv.Run)

	const firstBlock, blockCount = 100, 32

	task := a.NewUserTask("client", 0)
	var got []byte
	tb.Eng.Go("client", func(p *sim.Proc) {
		s, err := a.Dial(p, task, addrB, port)
		if err != nil {
			panic(err)
		}
		req := task.Space.Alloc(kernapp.ReqLen, 8)
		copy(req.Bytes(), kernapp.EncodeRequest(firstBlock, blockCount))
		s.WriteAll(p, req)
		copy(req.Bytes(), kernapp.EncodeRequest(0, 0)) // end of session
		s.WriteAll(p, req)

		buf := task.Space.Alloc(128*units.KB, 8)
		start := p.Now()
		for {
			n, err := s.Read(p, buf)
			if n > 0 {
				got = append(got, buf.Slice(0, n).Bytes()...)
			}
			if err != nil {
				break
			}
		}
		fmt.Printf("client: fetched %d blocks (%v) in %v\n",
			blockCount, units.Size(len(got)), p.Now()-start)
	})

	tb.Eng.Run()
	tb.Eng.KillAll()

	// Verify every block end to end.
	ok := true
	for i := 0; i < blockCount; i++ {
		want := srv.Block(uint32(firstBlock + i))
		chunk := got[i*len(want) : (i+1)*len(want)]
		if !bytes.Equal(chunk, want) {
			ok = false
			fmt.Printf("block %d corrupted!\n", firstBlock+i)
		}
	}
	fmt.Printf("integrity: all blocks verified = %v\n", ok)
	fmt.Printf("server host CPU copy time: %v (share-semantics mbufs → single copy)\n",
		b.K.CategoryBreakdown()["copy"])
	fmt.Printf("server stats: %d requests, %d blocks served\n", srv.Requests, srv.BlocksServed)
}
