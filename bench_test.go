// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus micro-benchmarks of the hot data structures. Each
// figure benchmark runs a complete simulated ttcp transfer and reports the
// virtual-time results (throughput, utilization, efficiency) as custom
// metrics; b.N controls repetition only — the simulation is deterministic,
// so the metrics are stable.
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/checksum"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exp"
	"repro/internal/hippi"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/taxonomy"
	"repro/internal/ttcp"
	"repro/internal/units"
	"repro/internal/wire"
)

const (
	addrA = wire.Addr(0x0a000001)
	addrB = wire.Addr(0x0a000002)
)

// benchSizes is a compact read/write-size axis for the figure benchmarks.
var benchSizes = []units.Size{4 * units.KB, 32 * units.KB, 256 * units.KB}

// runStack executes one transfer and reports the figure metrics.
func runStack(b *testing.B, mach func() *cost.Machine, mode socket.Mode, rw units.Size) {
	b.Helper()
	var res ttcp.Result
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(int64(42 + i))
		ha := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mach: mach(), Mode: mode, CABNode: 1})
		hb := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mach: mach(), Mode: mode, CABNode: 2})
		tb.RouteCAB(ha, hb)
		res = ttcp.Run(tb, ha, hb, ttcp.Params{
			Total: 8 * units.MB, RWSize: rw,
			WithUtil: true, WithBackground: true,
		})
	}
	b.ReportMetric(res.Throughput.Mbit(), "vMb/s")
	b.ReportMetric(res.Snd.Utilization, "util")
	b.ReportMetric(res.Snd.Efficiency.Mbit(), "eff-Mb/s")
}

// runRaw executes one raw-HIPPI transfer.
func runRaw(b *testing.B, mach func() *cost.Machine, rw units.Size) {
	b.Helper()
	var res ttcp.Result
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(int64(42 + i))
		ha := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mach: mach(), CABNode: 1, NoDriver: true})
		hb := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mach: mach(), CABNode: 2, NoDriver: true})
		res = ttcp.RunRaw(tb, ha, hb, ttcp.Params{
			Total: 8 * units.MB, RWSize: rw, WithUtil: true,
		})
	}
	b.ReportMetric(res.Throughput.Mbit(), "vMb/s")
}

// BenchmarkFigure5 regenerates the Figure 5 series (Alpha 3000/400):
// throughput, utilization, and efficiency versus read/write size for the
// unmodified stack, the single-copy stack, and raw HIPPI.
func BenchmarkFigure5(b *testing.B) {
	for _, rw := range benchSizes {
		b.Run(fmt.Sprintf("Unmodified/%v", rw), func(b *testing.B) {
			runStack(b, cost.Alpha400, socket.ModeUnmodified, rw)
		})
		b.Run(fmt.Sprintf("Modified/%v", rw), func(b *testing.B) {
			runStack(b, cost.Alpha400, socket.ModeSingleCopy, rw)
		})
		b.Run(fmt.Sprintf("RawHIPPI/%v", rw), func(b *testing.B) {
			runRaw(b, cost.Alpha400, rw)
		})
	}
}

// BenchmarkFigure6 regenerates the Figure 6 series (Alpha 3000/300LX).
func BenchmarkFigure6(b *testing.B) {
	for _, rw := range benchSizes {
		b.Run(fmt.Sprintf("Unmodified/%v", rw), func(b *testing.B) {
			runStack(b, cost.Alpha300, socket.ModeUnmodified, rw)
		})
		b.Run(fmt.Sprintf("Modified/%v", rw), func(b *testing.B) {
			runStack(b, cost.Alpha300, socket.ModeSingleCopy, rw)
		})
		b.Run(fmt.Sprintf("RawHIPPI/%v", rw), func(b *testing.B) {
			runRaw(b, cost.Alpha300, rw)
		})
	}
}

// BenchmarkTable1 derives the complete host-interface taxonomy.
func BenchmarkTable1(b *testing.B) {
	n := 0
	for i := 0; i < b.N; i++ {
		cells := taxonomy.All()
		n = len(cells)
	}
	b.ReportMetric(float64(n), "cells")
}

// BenchmarkTable2 measures the VM operation costs on the simulated host
// and reports the fitted per-page pin cost (paper: 29 µs/page).
func BenchmarkTable2(b *testing.B) {
	var rows []exp.VMCostRow
	for i := 0; i < b.N; i++ {
		rows = exp.MeasureTable2()
	}
	b.ReportMetric(rows[0].Base, "pin-base-us")
	b.ReportMetric(rows[0].PerPage, "pin-per-page-us")
}

// BenchmarkAnalysis evaluates the Section 7.3 analytic model and reports
// the headline estimates (paper: ≈180 and ≈490 Mb/s).
func BenchmarkAnalysis(b *testing.B) {
	var rows []analysis.Estimate
	for i := 0; i < b.N; i++ {
		rows = analysis.PaperTable()
	}
	b.ReportMetric(rows[0].Efficiency.Mbit(), "unmod-Mb/s")
	b.ReportMetric(rows[1].Efficiency.Mbit(), "single-Mb/s")
}

// BenchmarkHOL runs the Section 2.1 head-of-line-blocking study and
// reports both utilizations (paper: FIFO ≤ 58%).
func BenchmarkHOL(b *testing.B) {
	var r exp.HOLResult
	for i := 0; i < b.N; i++ {
		r = exp.RunHOL(32, 5000, int64(17+i))
	}
	b.ReportMetric(r.FIFOUtilization, "fifo-util")
	b.ReportMetric(r.ChannelsUtilization, "voq-util")
}

// BenchmarkWindowSweep regenerates the Section 7.2 window observation.
func BenchmarkWindowSweep(b *testing.B) {
	var pts []exp.WindowPoint
	for i := 0; i < b.N; i++ {
		pts = exp.RunWindowSweep([]units.Size{128 * units.KB, 512 * units.KB})
	}
	b.ReportMetric(pts[0].Efficiency.Mbit(), "eff-128K-Mb/s")
	b.ReportMetric(pts[len(pts)-1].Efficiency.Mbit(), "eff-512K-Mb/s")
}

// BenchmarkLazyPinAblation measures the Section 4.4.1 buffer-reuse
// extension.
func BenchmarkLazyPinAblation(b *testing.B) {
	var pts []exp.LazyPinPoint
	for i := 0; i < b.N; i++ {
		pts = exp.RunLazyPinAblation()
	}
	b.ReportMetric(pts[0].Efficiency.Mbit(), "eager-Mb/s")
	b.ReportMetric(pts[1].Efficiency.Mbit(), "lazy-Mb/s")
}

// BenchmarkThresholdAblation measures the Section 4.4.3 UIO threshold.
func BenchmarkThresholdAblation(b *testing.B) {
	var pts []exp.ThresholdPoint
	for i := 0; i < b.N; i++ {
		pts = exp.RunThresholdAblation([]units.Size{4 * units.KB})
	}
	b.ReportMetric(pts[0].ForcedUIO.Mbit(), "uio-Mb/s")
	b.ReportMetric(pts[0].WithThreshold.Mbit(), "thresh-Mb/s")
}

// --- Micro-benchmarks of the implementation itself ---

// BenchmarkChecksum measures the software Internet checksum (the per-byte
// cost the paper's hardware eliminates).
func BenchmarkChecksum(b *testing.B) {
	for _, n := range []units.Size{1 * units.KB, 32 * units.KB} {
		b.Run(n.String(), func(b *testing.B) {
			buf := make([]byte, n)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				checksum.Sum(buf)
			}
		})
	}
}

// BenchmarkMbufCopyRange measures the symbolic packetization primitive.
func BenchmarkMbufCopyRange(b *testing.B) {
	var chain *mbuf.Mbuf
	for i := 0; i < 16; i++ {
		chain = mbuf.Cat(chain, mbuf.NewCluster(make([]byte, mbuf.MCLBYTES)))
	}
	total := mbuf.ChainLen(chain)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := mbuf.CopyRange(chain, total/4, total/2)
		mbuf.FreeChain(c)
	}
}

// BenchmarkSimEngine measures the discrete-event core.
func BenchmarkSimEngine(b *testing.B) {
	b.Run("events", func(b *testing.B) {
		e := sim.NewEngine(1)
		for i := 0; i < b.N; i++ {
			e.After(units.Time(i%1000), func() {})
			if i%1024 == 1023 {
				e.Run()
			}
		}
		e.Run()
	})
	b.Run("proc-switch", func(b *testing.B) {
		e := sim.NewEngine(1)
		n := 0
		e.Go("spinner", func(p *sim.Proc) {
			for n < b.N {
				n++
				p.Sleep(1)
			}
		})
		e.Run()
	})
}

// BenchmarkHIPPISwitch measures the media model under back-to-back load.
func BenchmarkHIPPISwitch(b *testing.B) {
	e := sim.NewEngine(1)
	net := hippi.NewNetwork(e, hippi.LineRate, 5*units.Microsecond)
	net.Attach(1, func(hippi.Frame) {})
	got := 0
	net.Attach(2, func(hippi.Frame) { got++ })
	frame := make([]byte, 32*units.KB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(1, 2, frame, nil)
		if i%256 == 255 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEndToEnd measures simulator performance itself: wall-clock cost
// per simulated megabyte through the full single-copy stack.
func BenchmarkEndToEnd(b *testing.B) {
	b.SetBytes(int64(2 * units.MB))
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(int64(i))
		ha := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mode: socket.ModeSingleCopy, CABNode: 1})
		hb := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mode: socket.ModeSingleCopy, CABNode: 2})
		tb.RouteCAB(ha, hb)
		ttcp.Run(tb, ha, hb, ttcp.Params{Total: 2 * units.MB, RWSize: 64 * units.KB})
	}
}

// BenchmarkUDP measures the UDP blast path (ttcp -u) on both stacks.
func BenchmarkUDP(b *testing.B) {
	for _, mode := range []socket.Mode{socket.ModeUnmodified, socket.ModeSingleCopy} {
		name := "Unmodified"
		if mode == socket.ModeSingleCopy {
			name = "Modified"
		}
		b.Run(name, func(b *testing.B) {
			var res ttcp.UDPResult
			for i := 0; i < b.N; i++ {
				tb := core.NewTestbed(int64(9 + i))
				ha := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mode: mode, CABNode: 1})
				hb := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mode: mode, CABNode: 2})
				tb.RouteCAB(ha, hb)
				res = ttcp.RunUDP(tb, ha, hb, ttcp.Params{
					Total: 8 * units.MB, RWSize: 16 * units.KB,
					WithUtil: true, WithBackground: true,
				})
			}
			b.ReportMetric(res.Throughput.Mbit(), "vMb/s")
			b.ReportMetric(res.Snd.Efficiency.Mbit(), "eff-Mb/s")
			b.ReportMetric(res.LossFraction, "loss")
		})
	}
}
