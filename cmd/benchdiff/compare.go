package main

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Diff is the outcome of comparing one baseline file: Violations fail the
// gate; Advisories are drift in advisory-class fields — reported so the
// trend is visible, never a failure.
type Diff struct {
	Violations []string
	Advisories []string
}

// advisoryKey reports whether a JSON object key opens an advisory-class
// subtree: wall-clock and allocation measurements that depend on the
// machine, the Go version, and GC timing. Numeric drift under such a key
// is reported but cannot fail CI; structural drift (missing fields, type
// or shape changes) still fails, so baselines cannot silently lose their
// advisory columns.
func advisoryKey(k string) bool {
	return k == "advisory" || strings.HasPrefix(k, "advisory_")
}

// Compare walks two parsed JSON trees (the committed baseline and a fresh
// regeneration) and returns one violation per structural mismatch or
// numeric leaf outside tolerance, with advisory-class leaves split out.
// Numbers pass when
//
//	|fresh-base| <= abs + rel·max(|base|, |fresh|)
//
// so rel gates large values (throughput, ns) and abs absorbs rounding
// noise near zero. The walk is deterministic: map keys are visited sorted.
func Compare(path string, base, fresh any, rel, abs float64) Diff {
	var d Diff
	compare(&d, path, base, fresh, rel, abs, false)
	return d
}

func compare(d *Diff, path string, base, fresh any, rel, abs float64, advisory bool) {
	violf := func(format string, args ...any) {
		d.Violations = append(d.Violations, fmt.Sprintf(format, args...))
	}
	switch b := base.(type) {
	case map[string]any:
		f, ok := fresh.(map[string]any)
		if !ok {
			violf("%s: baseline is an object, fresh is %T", path, fresh)
			return
		}
		keys := map[string]bool{}
		for k := range b {
			keys[k] = true
		}
		for k := range f {
			keys[k] = true
		}
		var sorted []string
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, k := range sorted {
			bv, inB := b[k]
			fv, inF := f[k]
			sub := path + "." + k
			switch {
			case !inB:
				violf("%s: not in baseline", sub)
			case !inF:
				violf("%s: missing from fresh output", sub)
			default:
				compare(d, sub, bv, fv, rel, abs, advisory || advisoryKey(k))
			}
		}
	case []any:
		f, ok := fresh.([]any)
		if !ok {
			violf("%s: baseline is an array, fresh is %T", path, fresh)
			return
		}
		if len(b) != len(f) {
			violf("%s: length %d != baseline %d", path, len(f), len(b))
			return
		}
		for i := range b {
			compare(d, fmt.Sprintf("%s[%d]", path, i), b[i], f[i], rel, abs, advisory)
		}
	case float64:
		f, ok := fresh.(float64)
		if !ok {
			violf("%s: baseline is a number, fresh is %T", path, fresh)
			return
		}
		tol := abs + rel*math.Max(math.Abs(b), math.Abs(f))
		if math.Abs(f-b) > tol {
			delta := 0.0
			if b != 0 {
				delta = 100 * (f - b) / math.Abs(b)
			}
			msg := fmt.Sprintf("%s: %g vs baseline %g (%+.1f%%, tolerance ±%g)",
				path, f, b, delta, tol)
			if advisory {
				d.Advisories = append(d.Advisories, msg)
			} else {
				d.Violations = append(d.Violations, msg)
			}
		}
	default:
		if base != fresh {
			violf("%s: %v != baseline %v", path, fresh, base)
		}
	}
}
