package main

import (
	"fmt"
	"math"
	"sort"
)

// Compare walks two parsed JSON trees (the committed baseline and a fresh
// regeneration) and returns one violation per structural mismatch or
// numeric leaf outside tolerance. Numbers pass when
//
//	|fresh-base| <= abs + rel·max(|base|, |fresh|)
//
// so rel gates large values (throughput, ns) and abs absorbs rounding
// noise near zero. The walk is deterministic: map keys are visited sorted.
func Compare(path string, base, fresh any, rel, abs float64) []string {
	switch b := base.(type) {
	case map[string]any:
		f, ok := fresh.(map[string]any)
		if !ok {
			return []string{fmt.Sprintf("%s: baseline is an object, fresh is %T", path, fresh)}
		}
		keys := map[string]bool{}
		for k := range b {
			keys[k] = true
		}
		for k := range f {
			keys[k] = true
		}
		var sorted []string
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		var out []string
		for _, k := range sorted {
			bv, inB := b[k]
			fv, inF := f[k]
			sub := path + "." + k
			switch {
			case !inB:
				out = append(out, fmt.Sprintf("%s: not in baseline", sub))
			case !inF:
				out = append(out, fmt.Sprintf("%s: missing from fresh output", sub))
			default:
				out = append(out, Compare(sub, bv, fv, rel, abs)...)
			}
		}
		return out
	case []any:
		f, ok := fresh.([]any)
		if !ok {
			return []string{fmt.Sprintf("%s: baseline is an array, fresh is %T", path, fresh)}
		}
		if len(b) != len(f) {
			return []string{fmt.Sprintf("%s: length %d != baseline %d", path, len(f), len(b))}
		}
		var out []string
		for i := range b {
			out = append(out, Compare(fmt.Sprintf("%s[%d]", path, i), b[i], f[i], rel, abs)...)
		}
		return out
	case float64:
		f, ok := fresh.(float64)
		if !ok {
			return []string{fmt.Sprintf("%s: baseline is a number, fresh is %T", path, fresh)}
		}
		tol := abs + rel*math.Max(math.Abs(b), math.Abs(f))
		if math.Abs(f-b) > tol {
			delta := 0.0
			if b != 0 {
				delta = 100 * (f - b) / math.Abs(b)
			}
			return []string{fmt.Sprintf("%s: %g vs baseline %g (%+.1f%%, tolerance ±%g)",
				path, f, b, delta, tol)}
		}
		return nil
	default:
		if base != fresh {
			return []string{fmt.Sprintf("%s: %v != baseline %v", path, fresh, base)}
		}
		return nil
	}
}
