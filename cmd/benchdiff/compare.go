package main

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Diff is the outcome of comparing one baseline file: Violations fail the
// gate; Advisories are drift in advisory-class fields — reported so the
// trend is visible, never a failure. The three counters record coverage —
// how many leaves were actually compared under each class — so a gate that
// silently compares nothing is visible in the output.
type Diff struct {
	Violations []string
	Advisories []string
	// Exact counts leaves compared with zero tolerance (strings, booleans,
	// and numbers in exact-class files); Tolerant counts numeric leaves
	// compared under the rel/abs tolerance; Advisory counts leaves under an
	// advisory-class key, whose drift never fails the gate.
	Exact    int
	Tolerant int
	Advisory int
}

// Coverage renders the per-file comparison summary, one line's worth:
// how many leaves each class contributed. The format is pinned by test.
func (d Diff) Coverage() string {
	return fmt.Sprintf("%d exact / %d tolerant / %d advisory fields compared",
		d.Exact, d.Tolerant, d.Advisory)
}

// Summary is the one-line per-file verdict the gate prints: ok/FAIL, the
// file, the coverage counts, and any advisory-drift or violation tally.
// The format is pinned by test.
func (d Diff) Summary(file string) string {
	cov := d.Coverage()
	switch {
	case len(d.Violations) > 0:
		return fmt.Sprintf("FAIL %s (%s; %d violations)", file, cov, len(d.Violations))
	case len(d.Advisories) > 0:
		return fmt.Sprintf("ok   %s (%s; %d advisory drifts)", file, cov, len(d.Advisories))
	default:
		return fmt.Sprintf("ok   %s (%s)", file, cov)
	}
}

// advisoryKey reports whether a JSON object key opens an advisory-class
// subtree: wall-clock and allocation measurements that depend on the
// machine, the Go version, and GC timing. Numeric drift under such a key
// is reported but cannot fail CI; structural drift (missing fields, type
// or shape changes) still fails, so baselines cannot silently lose their
// advisory columns.
func advisoryKey(k string) bool {
	return k == "advisory" || strings.HasPrefix(k, "advisory_")
}

// Compare walks two parsed JSON trees (the committed baseline and a fresh
// regeneration) and returns one violation per structural mismatch or
// numeric leaf outside tolerance, with advisory-class leaves split out.
// Numbers pass when
//
//	|fresh-base| <= abs + rel·max(|base|, |fresh|)
//
// so rel gates large values (throughput, ns) and abs absorbs rounding
// noise near zero. The walk is deterministic: map keys are visited sorted.
func Compare(path string, base, fresh any, rel, abs float64) Diff {
	var d Diff
	compare(&d, path, base, fresh, rel, abs, false)
	return d
}

func compare(d *Diff, path string, base, fresh any, rel, abs float64, advisory bool) {
	violf := func(format string, args ...any) {
		d.Violations = append(d.Violations, fmt.Sprintf(format, args...))
	}
	switch b := base.(type) {
	case map[string]any:
		f, ok := fresh.(map[string]any)
		if !ok {
			violf("%s: baseline is an object, fresh is %T", path, fresh)
			return
		}
		keys := map[string]bool{}
		for k := range b {
			keys[k] = true
		}
		for k := range f {
			keys[k] = true
		}
		var sorted []string
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, k := range sorted {
			bv, inB := b[k]
			fv, inF := f[k]
			sub := path + "." + k
			switch {
			case !inB:
				violf("%s: not in baseline", sub)
			case !inF:
				violf("%s: missing from fresh output", sub)
			default:
				compare(d, sub, bv, fv, rel, abs, advisory || advisoryKey(k))
			}
		}
	case []any:
		f, ok := fresh.([]any)
		if !ok {
			violf("%s: baseline is an array, fresh is %T", path, fresh)
			return
		}
		if len(b) != len(f) {
			violf("%s: length %d != baseline %d", path, len(f), len(b))
			return
		}
		for i := range b {
			compare(d, fmt.Sprintf("%s[%d]", path, i), b[i], f[i], rel, abs, advisory)
		}
	case float64:
		f, ok := fresh.(float64)
		if !ok {
			violf("%s: baseline is a number, fresh is %T", path, fresh)
			return
		}
		switch {
		case advisory:
			d.Advisory++
		case rel == 0 && abs == 0:
			d.Exact++
		default:
			d.Tolerant++
		}
		tol := abs + rel*math.Max(math.Abs(b), math.Abs(f))
		if math.Abs(f-b) > tol {
			delta := 0.0
			if b != 0 {
				delta = 100 * (f - b) / math.Abs(b)
			}
			msg := fmt.Sprintf("%s: %g vs baseline %g (%+.1f%%, tolerance ±%g)",
				path, f, b, delta, tol)
			if advisory {
				d.Advisories = append(d.Advisories, msg)
			} else {
				d.Violations = append(d.Violations, msg)
			}
		}
	default:
		// Non-numeric leaves (strings, booleans, null) are always compared
		// exactly, whatever the tolerances.
		if advisory {
			d.Advisory++
		} else {
			d.Exact++
		}
		if base != fresh {
			violf("%s: %v != baseline %v", path, fresh, base)
		}
	}
}
