package main

import (
	"encoding/json"
	"testing"
)

func parse(t *testing.T, s string) any {
	t.Helper()
	var v any
	if err := json.Unmarshal([]byte(s), &v); err != nil {
		t.Fatalf("bad test JSON: %v", err)
	}
	return v
}

const baseFig = `{
  "name": "Figure 7",
  "series": [{
    "name": "Modified",
    "points": [
      {"rwsize_bytes": 65536, "utilization": 0.27, "efficiency_mbps": 462.8},
      {"rwsize_bytes": 262144, "utilization": 0.27, "efficiency_mbps": 485.2}
    ]
  }]
}`

func TestCompareIdentical(t *testing.T) {
	if d := Compare("f", parse(t, baseFig), parse(t, baseFig), defaultRel, defaultAbs); len(d.Violations) != 0 {
		t.Fatalf("identical trees produced violations: %v", d.Violations)
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	fresh := `{
  "name": "Figure 7",
  "series": [{
    "name": "Modified",
    "points": [
      {"rwsize_bytes": 65536, "utilization": 0.272, "efficiency_mbps": 464.0},
      {"rwsize_bytes": 262144, "utilization": 0.268, "efficiency_mbps": 484.9}
    ]
  }]
}`
	if d := Compare("f", parse(t, baseFig), parse(t, fresh), defaultRel, defaultAbs); len(d.Violations) != 0 {
		t.Fatalf("in-tolerance drift flagged: %v", d.Violations)
	}
}

// TestCompareDetectsRegression is the gate's negative test: a 20%
// utilization regression (CPU cost up, efficiency down) must fail.
func TestCompareDetectsRegression(t *testing.T) {
	fresh := `{
  "name": "Figure 7",
  "series": [{
    "name": "Modified",
    "points": [
      {"rwsize_bytes": 65536, "utilization": 0.324, "efficiency_mbps": 385.7},
      {"rwsize_bytes": 262144, "utilization": 0.27, "efficiency_mbps": 485.2}
    ]
  }]
}`
	d := Compare("f", parse(t, baseFig), parse(t, fresh), defaultRel, defaultAbs)
	if len(d.Violations) != 2 {
		t.Fatalf("want 2 violations (utilization + efficiency), got %v", d.Violations)
	}
}

func TestCompareStructuralMismatch(t *testing.T) {
	missing := `{"name": "Figure 7", "series": []}`
	if d := Compare("f", parse(t, baseFig), parse(t, missing), defaultRel, defaultAbs); len(d.Violations) == 0 {
		t.Fatal("dropped series not flagged")
	}
	extra := `{"name": "Figure 7", "extra": 1, "series": [{
    "name": "Modified",
    "points": [
      {"rwsize_bytes": 65536, "utilization": 0.27, "efficiency_mbps": 462.8},
      {"rwsize_bytes": 262144, "utilization": 0.27, "efficiency_mbps": 485.2}
    ]
  }]}`
	if d := Compare("f", parse(t, baseFig), parse(t, extra), defaultRel, defaultAbs); len(d.Violations) == 0 {
		t.Fatal("unexpected new key not flagged")
	}
	renamed := `{"name": "Figure 8", "series": [{
    "name": "Modified",
    "points": [
      {"rwsize_bytes": 65536, "utilization": 0.27, "efficiency_mbps": 462.8},
      {"rwsize_bytes": 262144, "utilization": 0.27, "efficiency_mbps": 485.2}
    ]
  }]}`
	if d := Compare("f", parse(t, baseFig), parse(t, renamed), defaultRel, defaultAbs); len(d.Violations) == 0 {
		t.Fatal("string change not flagged")
	}
}

const baseSim = `{
  "workloads": [{
    "name": "fig5-xfer",
    "deterministic": {"events_total": 100, "queue_depth_hw": 12},
    "advisory": {"wall_ns": 1000000, "events_per_sec": 100000, "allocs_per_event": 3.5}
  }]
}`

// TestCompareAdvisoryClass: drift in advisory wall-clock fields is
// reported but never a violation, even at zero tolerance (the simbench
// exact-diff mode); drift in the deterministic section still fails.
func TestCompareAdvisoryClass(t *testing.T) {
	fresh := `{
  "workloads": [{
    "name": "fig5-xfer",
    "deterministic": {"events_total": 100, "queue_depth_hw": 12},
    "advisory": {"wall_ns": 1500000, "events_per_sec": 66666, "allocs_per_event": 4.1}
  }]
}`
	d := Compare("f", parse(t, baseSim), parse(t, fresh), 0, 0)
	if len(d.Violations) != 0 {
		t.Fatalf("advisory drift became violations: %v", d.Violations)
	}
	if len(d.Advisories) != 3 {
		t.Fatalf("want 3 advisory drifts, got %v", d.Advisories)
	}

	det := `{
  "workloads": [{
    "name": "fig5-xfer",
    "deterministic": {"events_total": 101, "queue_depth_hw": 12},
    "advisory": {"wall_ns": 1000000, "events_per_sec": 100000, "allocs_per_event": 3.5}
  }]
}`
	d = Compare("f", parse(t, baseSim), parse(t, det), 0, 0)
	if len(d.Violations) != 1 {
		t.Fatalf("deterministic drift not flagged exactly once: %v", d.Violations)
	}
}

// TestCompareAdvisoryStructural: an advisory field disappearing is a real
// violation — the class exempts values, not presence.
func TestCompareAdvisoryStructural(t *testing.T) {
	gone := `{
  "workloads": [{
    "name": "fig5-xfer",
    "deterministic": {"events_total": 100, "queue_depth_hw": 12},
    "advisory": {"wall_ns": 1000000, "events_per_sec": 100000}
  }]
}`
	d := Compare("f", parse(t, baseSim), parse(t, gone), 0, 0)
	if len(d.Violations) == 0 {
		t.Fatal("missing advisory field not flagged")
	}
}

// TestCoverageCounts pins how compared leaves are classified: numeric
// leaves are tolerant (or exact under zero tolerance), strings and
// booleans are always exact, and anything under an advisory key counts
// as advisory.
func TestCoverageCounts(t *testing.T) {
	base := parse(t, `{
		"name": "fig5",
		"ok": true,
		"mbps": 700.5,
		"cells": [1, 2, 3],
		"advisory": {"wall_ns": 123, "note": "x"},
		"advisory_allocs": 7
	}`)

	d := Compare("f", base, base, defaultRel, defaultAbs)
	if len(d.Violations) != 0 || len(d.Advisories) != 0 {
		t.Fatalf("self-compare produced diffs: %+v", d)
	}
	// name + ok exact; mbps + 3 cells tolerant; wall_ns + note + allocs
	// advisory.
	if d.Exact != 2 || d.Tolerant != 4 || d.Advisory != 3 {
		t.Fatalf("coverage = %d exact / %d tolerant / %d advisory, want 2/4/3",
			d.Exact, d.Tolerant, d.Advisory)
	}

	// Zero tolerance (the exact-file mode) reclassifies the non-advisory
	// numeric leaves as exact.
	d = Compare("f", base, base, 0, 0)
	if d.Exact != 6 || d.Tolerant != 0 || d.Advisory != 3 {
		t.Fatalf("zero-tolerance coverage = %d/%d/%d, want 6/0/3",
			d.Exact, d.Tolerant, d.Advisory)
	}
}

// TestSummaryFormat pins the one-line per-file verdict the gate prints.
func TestSummaryFormat(t *testing.T) {
	base := parse(t, `{"a": 1, "s": "x", "advisory": {"w": 10}}`)

	d := Compare("f", base, base, defaultRel, defaultAbs)
	if got, want := d.Summary("BENCH_fig5.json"),
		"ok   BENCH_fig5.json (1 exact / 1 tolerant / 1 advisory fields compared)"; got != want {
		t.Errorf("clean summary:\n got %q\nwant %q", got, want)
	}

	// Advisory drift: tallied on the line, verdict stays ok.
	fresh := parse(t, `{"a": 1, "s": "x", "advisory": {"w": 99}}`)
	d = Compare("f", base, fresh, defaultRel, defaultAbs)
	if len(d.Violations) != 0 || len(d.Advisories) != 1 {
		t.Fatalf("unexpected diff classes: %+v", d)
	}
	if got, want := d.Summary("BENCH_sim.json"),
		"ok   BENCH_sim.json (1 exact / 1 tolerant / 1 advisory fields compared; 1 advisory drifts)"; got != want {
		t.Errorf("advisory summary:\n got %q\nwant %q", got, want)
	}

	// A real violation flips the verdict.
	fresh = parse(t, `{"a": 2, "s": "y", "advisory": {"w": 10}}`)
	d = Compare("f", base, fresh, defaultRel, defaultAbs)
	if len(d.Violations) != 2 {
		t.Fatalf("want 2 violations, got %+v", d.Violations)
	}
	if got, want := d.Summary("BENCH_touches.json"),
		"FAIL BENCH_touches.json (1 exact / 1 tolerant / 1 advisory fields compared; 2 violations)"; got != want {
		t.Errorf("failing summary:\n got %q\nwant %q", got, want)
	}
}
