package main

import (
	"encoding/json"
	"testing"
)

func parse(t *testing.T, s string) any {
	t.Helper()
	var v any
	if err := json.Unmarshal([]byte(s), &v); err != nil {
		t.Fatalf("bad test JSON: %v", err)
	}
	return v
}

const baseFig = `{
  "name": "Figure 7",
  "series": [{
    "name": "Modified",
    "points": [
      {"rwsize_bytes": 65536, "utilization": 0.27, "efficiency_mbps": 462.8},
      {"rwsize_bytes": 262144, "utilization": 0.27, "efficiency_mbps": 485.2}
    ]
  }]
}`

func TestCompareIdentical(t *testing.T) {
	if v := Compare("f", parse(t, baseFig), parse(t, baseFig), defaultRel, defaultAbs); len(v) != 0 {
		t.Fatalf("identical trees produced violations: %v", v)
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	fresh := `{
  "name": "Figure 7",
  "series": [{
    "name": "Modified",
    "points": [
      {"rwsize_bytes": 65536, "utilization": 0.272, "efficiency_mbps": 464.0},
      {"rwsize_bytes": 262144, "utilization": 0.268, "efficiency_mbps": 484.9}
    ]
  }]
}`
	if v := Compare("f", parse(t, baseFig), parse(t, fresh), defaultRel, defaultAbs); len(v) != 0 {
		t.Fatalf("in-tolerance drift flagged: %v", v)
	}
}

// TestCompareDetectsRegression is the gate's negative test: a 20%
// utilization regression (CPU cost up, efficiency down) must fail.
func TestCompareDetectsRegression(t *testing.T) {
	fresh := `{
  "name": "Figure 7",
  "series": [{
    "name": "Modified",
    "points": [
      {"rwsize_bytes": 65536, "utilization": 0.324, "efficiency_mbps": 385.7},
      {"rwsize_bytes": 262144, "utilization": 0.27, "efficiency_mbps": 485.2}
    ]
  }]
}`
	v := Compare("f", parse(t, baseFig), parse(t, fresh), defaultRel, defaultAbs)
	if len(v) != 2 {
		t.Fatalf("want 2 violations (utilization + efficiency), got %v", v)
	}
}

func TestCompareStructuralMismatch(t *testing.T) {
	missing := `{"name": "Figure 7", "series": []}`
	if v := Compare("f", parse(t, baseFig), parse(t, missing), defaultRel, defaultAbs); len(v) == 0 {
		t.Fatal("dropped series not flagged")
	}
	extra := `{"name": "Figure 7", "extra": 1, "series": [{
    "name": "Modified",
    "points": [
      {"rwsize_bytes": 65536, "utilization": 0.27, "efficiency_mbps": 462.8},
      {"rwsize_bytes": 262144, "utilization": 0.27, "efficiency_mbps": 485.2}
    ]
  }]}`
	if v := Compare("f", parse(t, baseFig), parse(t, extra), defaultRel, defaultAbs); len(v) == 0 {
		t.Fatal("unexpected new key not flagged")
	}
	renamed := `{"name": "Figure 8", "series": [{
    "name": "Modified",
    "points": [
      {"rwsize_bytes": 65536, "utilization": 0.27, "efficiency_mbps": 462.8},
      {"rwsize_bytes": 262144, "utilization": 0.27, "efficiency_mbps": 485.2}
    ]
  }]}`
	if v := Compare("f", parse(t, baseFig), parse(t, renamed), defaultRel, defaultAbs); len(v) == 0 {
		t.Fatal("string change not flagged")
	}
}
