// Command benchdiff is the perf-regression gate: it compares freshly
// generated BENCH_*.json figure files against the committed baselines and
// fails when any numeric leaf drifts outside tolerance. The simulator is
// deterministic, so on unchanged code the files match byte-for-byte; the
// tolerances only leave room for intentional small recalibrations.
//
// Usage:
//
//	benchdiff -baseline . -fresh /tmp/bench [-rel 0.05] [-abs 1e-6] [files...]
//
// With no file arguments it checks BENCH_fig5.json through BENCH_fig9.json
// plus BENCH_touches.json, BENCH_load.json, BENCH_sim.json,
// BENCH_critpath.json, and BENCH_netobs.json. Touch-count files hold exact integer counts
// (copies, checksums, DMA crossings per byte), so they get zero
// tolerance: any drift in a data-touch count is a real behavior change,
// never noise; the critical-path file's per-cause nanoseconds are pure
// functions of the virtual event sequence and get the same treatment.
// The load file's throughput and latency leaves get the relative
// tolerance; its structure, flow counts, and order digests (strings) are
// compared exactly, so the gate still pins event-ordering determinism.
//
// Every file's verdict line carries its comparison coverage —
// "N exact / N tolerant / N advisory fields compared" — so a gate that
// quietly stops comparing anything is visible at a glance.
//
// Fields under a JSON key named "advisory" (or prefixed "advisory_") form
// a separate class: wall-clock and allocation measurements whose values
// depend on the machine and Go version. Their numeric drift is printed
// ("adv" lines) but never fails the gate; only structural drift — an
// advisory field disappearing — is a violation. This is what lets
// BENCH_sim.json commit real events/sec and allocs/op numbers without
// making CI flake on scheduler noise.
//
// Exit status 1 means at least one file regressed; each violation is
// printed with its JSON path and percentage drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
)

// Default tolerances. The gate protects fractional leaves (utilization,
// category shares, all in [0,1]) as strictly as large ones, so the
// absolute term only absorbs float formatting noise — the simulator is
// deterministic and unchanged code reproduces the baselines exactly.
const (
	defaultRel = 0.05
	defaultAbs = 1e-6
)

// defaultFiles is the baseline set the CI gate checks.
var defaultFiles = []string{
	"BENCH_fig5.json",
	"BENCH_fig6.json",
	"BENCH_fig7.json",
	"BENCH_fig8.json",
	"BENCH_fig9.json",
	"BENCH_touches.json",
	"BENCH_load.json",
	"BENCH_sim.json",
	"BENCH_critpath.json",
	"BENCH_netobs.json",
	"BENCH_fabric.json",
}

// exactFiles are baselines of exact integer counts: compared with zero
// tolerance regardless of -rel/-abs. BENCH_sim.json's deterministic
// sections are pure functions of the virtual event sequence, so any
// drift is a real change in how much work the simulator does; its
// advisory sections are exempted by class, not by tolerance.
var exactFiles = map[string]bool{
	"BENCH_touches.json":  true,
	"BENCH_sim.json":      true,
	"BENCH_critpath.json": true,
	// The recovery baseline's virtual-time fields (injection schedule,
	// first-goodput, flow fates) are pure functions of the seeded event
	// sequence; only its "advisory" wall time is machine-dependent.
	"BENCH_recover.json": true,
	// The transport-dynamics postmortems (verdicts, retransmission
	// taxonomy, wire busy per-mille, series digests) are deterministic
	// functions of the seeded fairness pair; any drift is a congestion-
	// behavior change.
	"BENCH_netobs.json": true,
	// The fabric baseline (topology/ECMP/congestion-control comparison)
	// is a pure function of its seeded scenarios: byte counts, trunk
	// shares, verdict censuses, and order digests must not drift.
	"BENCH_fabric.json": true,
}

func main() {
	baseDir := flag.String("baseline", ".", "directory holding the committed BENCH_*.json baselines")
	freshDir := flag.String("fresh", "", "directory holding the freshly generated BENCH_*.json files")
	rel := flag.Float64("rel", defaultRel, "relative tolerance per numeric leaf")
	abs := flag.Float64("abs", defaultAbs, "absolute tolerance per numeric leaf")
	flag.Parse()

	if *freshDir == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -fresh is required")
		os.Exit(2)
	}
	files := flag.Args()
	if len(files) == 0 {
		files = defaultFiles
	}

	load := func(path string) (any, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return v, nil
	}

	failed := false
	for _, f := range files {
		base, err := load(filepath.Join(*baseDir, f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: baseline: %v\n", err)
			failed = true
			continue
		}
		fresh, err := load(filepath.Join(*freshDir, f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: fresh: %v\n", err)
			failed = true
			continue
		}
		fileRel, fileAbs := *rel, *abs
		if exactFiles[f] {
			fileRel, fileAbs = 0, 0
		}
		diff := Compare(f, base, fresh, fileRel, fileAbs)
		fmt.Println(diff.Summary(f))
		if len(diff.Violations) > 0 {
			failed = true
			for _, v := range diff.Violations {
				fmt.Printf("  %s\n", v)
			}
		}
		for _, a := range diff.Advisories {
			fmt.Printf("  adv  %s\n", a)
		}
	}
	if failed {
		os.Exit(1)
	}
}
