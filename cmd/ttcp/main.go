// Command ttcp runs one simulated bulk transfer between two hosts and
// reports throughput, utilization, and efficiency — the simulated analogue
// of the ttcp runs behind Figures 5 and 6.
//
// Usage:
//
//	ttcp [-mode single|unmodified|raw] [-size 64K] [-total 16M]
//	     [-machine alpha400|alpha300] [-window 512K] [-lazy]
//	     [-stats] [-trace out.json] [-metrics out.json]
//	     [-profile] [-profile-out out.folded] [-profile-json out.json]
//	     [-series out.json] [-series-csv out.csv] [-series-interval-us 100]
//	     [-fault 'drop:every=13,min=1000;corrupt:p=0.01'] [-fault-seed 1]
//	     [-audit] [-ledger out.json] [-flightrec out.json]
//	     [-critpath] [-critpath-chrome out.json]
//	     [-netobs] [-netobs-json out.json] [-netobs-chrome out.json]
//
// -audit enables the data-touch ledger and prints the per-flow audit
// table (one row per host × touch kind with per-byte min/max); for TCP it
// then checks the stack's copy-count oracle — single-copy mode must show
// exactly one checksum-in-flight host-bus DMA and zero CPU touches per
// sender byte — and exits nonzero on violation. -ledger writes the full
// interval-record ledger; -flightrec writes the bounded flight-recorder
// image (recent ledger + trace events per host).
//
// -fault injects a deterministic fault plan (grammar in internal/fault's
// ParsePlan) on the wire, the adaptor, and the kernel; the run then also
// reports which faults fired. The same plan and -fault-seed replay the
// exact same faults.
//
// -critpath records a happens-before graph of every lifecycle event in the
// transfer, extracts the critical path of each completed read, and prints
// the per-cause latency attribution (the last path's full waterfall plus
// the summary table); -critpath-chrome writes all critical paths as a
// Chrome trace-event file, one track per cause class.
//
// -netobs enables the transport-dynamics observatory and prints the
// congestion postmortem: the connection's cwnd/RTT/window series verdict
// joined with per-port wire busy/stall telemetry and adaptor-memory drops.
// -netobs-json writes the full recorder dump (every flow sample and port
// window); -netobs-chrome writes the series as Chrome-trace counter tracks.
//
// -stats prints the telemetry counter table and the per-packet virtual-time
// latency histogram with its per-stage breakdown; -trace writes a Chrome
// trace-event file (load in Perfetto or chrome://tracing); -metrics writes
// the deterministic JSON metrics snapshot.
//
// -profile enables the virtual-time CPU profiler and prints folded stacks
// (flamegraph.pl / speedscope "collapsed" format) whose values sum exactly
// to each host's kern.cpu_busy_ns; with -profile the human report moves to
// stderr so stdout pipes straight into flamegraph.pl.
// -profile-out/-profile-json write the folded text / JSON snapshot to
// files instead. -series samples CPU
// utilization, per-category shares, netmem occupancy, and TCP queue peaks
// every -series-interval-us of virtual time and writes the JSON series;
// -series-csv writes the same rows as CSV.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/critpath"
	"repro/internal/obs/ledger"
	"repro/internal/socket"
	"repro/internal/ttcp"
	"repro/internal/units"
	"repro/internal/wire"
)

// parseSize accepts 64K / 4M / 512 style sizes.
func parseSize(s string) (units.Size, error) {
	mult := units.Size(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = units.KB, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = units.MB, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return units.Size(n) * mult, nil
}

func main() {
	mode := flag.String("mode", "single", "stack: single, unmodified, raw")
	proto := flag.String("proto", "tcp", "transport: tcp, udp")
	sizeS := flag.String("size", "64K", "read/write size")
	totalS := flag.String("total", "16M", "bytes to transfer")
	windowS := flag.String("window", "512K", "TCP window / socket buffer")
	machine := flag.String("machine", "alpha400", "host model: alpha400, alpha300")
	lazy := flag.Bool("lazy", false, "enable the lazy-unpin buffer cache")
	stats := flag.Bool("stats", false, "print telemetry counters and the per-packet latency histogram")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file to this path")
	metricsOut := flag.String("metrics", "", "write the JSON metrics snapshot to this path")
	profile := flag.Bool("profile", false, "print folded-stacks CPU profile to stdout")
	profileOut := flag.String("profile-out", "", "write the folded-stacks CPU profile to this path")
	profileJSON := flag.String("profile-json", "", "write the CPU profile JSON snapshot to this path")
	seriesOut := flag.String("series", "", "write the utilization time-series JSON to this path")
	seriesCSV := flag.String("series-csv", "", "write the utilization time-series CSV to this path")
	seriesIntervalUS := flag.Int64("series-interval-us", 100, "series sampling interval, µs of virtual time")
	faultPlan := flag.String("fault", "", "fault plan, e.g. 'drop:every=13,min=1000;corrupt:p=0.01' (see internal/fault)")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed")
	auditFlag := flag.Bool("audit", false, "enable the data-touch ledger and print the per-flow audit table; fails if the stack's copy-count oracle does not hold")
	ledgerOut := flag.String("ledger", "", "with -audit, also write the full ledger JSON to this path")
	flightRec := flag.String("flightrec", "", "write the flight-recorder image (recent ledger + trace events) to this path")
	critFlag := flag.Bool("critpath", false, "record per-transfer happens-before graphs and print the critical-path latency attribution")
	critChrome := flag.String("critpath-chrome", "", "with -critpath, also write the critical paths as a Chrome trace-event file to this path")
	netobsFlag := flag.Bool("netobs", false, "record per-flow TCP dynamics and wire-port telemetry and print the congestion postmortem")
	netobsJSON := flag.String("netobs-json", "", "write the full transport-dynamics recorder dump to this path")
	netobsChrome := flag.String("netobs-chrome", "", "write the transport-dynamics series as Chrome-trace counter tracks to this path")
	flag.Parse()

	size, err := parseSize(*sizeS)
	die(err)
	total, err := parseSize(*totalS)
	die(err)
	window, err := parseSize(*windowS)
	die(err)

	mach := cost.Alpha400
	if *machine == "alpha300" {
		mach = cost.Alpha300
	}

	tb := core.NewTestbed(1)
	if *stats || *traceOut != "" || *metricsOut != "" || *flightRec != "" {
		tb.EnableTelemetry()
	}
	var critRec *obs.CritRec
	if *critFlag || *critChrome != "" {
		critRec = tb.EnableCritPath()
	}
	if *auditFlag || *ledgerOut != "" || *flightRec != "" {
		tb.EnableLedger()
	}
	if *profile || *profileOut != "" || *profileJSON != "" {
		tb.EnableProfiling()
	}
	if *seriesOut != "" || *seriesCSV != "" {
		tb.EnableSeries(units.Time(*seriesIntervalUS) * units.Microsecond)
	}
	if *netobsFlag || *netobsJSON != "" || *netobsChrome != "" {
		tb.EnableNetObs()
	}
	var inj *fault.Injector
	if *faultPlan != "" {
		inj = fault.New(tb.Eng, *faultSeed)
		die(inj.AddPlan(*faultPlan))
		tb.EnableFaults(inj)
	}
	params := ttcp.Params{
		Total: total, RWSize: size, Window: window,
		WithUtil: true, WithBackground: true,
		// Under fault injection a connection may legitimately die
		// (adaptor reset, partition): surface the typed error in the
		// report instead of panicking.
		Tolerant: inj != nil,
	}
	// With -profile, stdout carries only the folded stacks (pipeable into
	// flamegraph.pl); the human report moves to stderr.
	report := io.Writer(os.Stdout)
	if *profile {
		report = os.Stderr
	}
	emitTelemetry := func() {
		if *flightRec != "" {
			die(os.WriteFile(*flightRec, tb.FlightDump(), 0o644))
		}
		if tb.Led != nil {
			led := tb.Led
			flow := led.MainFlow()
			if *ledgerOut != "" {
				die(os.WriteFile(*ledgerOut, led.JSON(), 0o644))
			}
			if *auditFlag {
				fmt.Fprint(report, "\n"+led.Summary(flow, total, []string{"snd", "wire", "rcv"}).Format())
				cfg := ledger.AuditConfig{Flow: flow, Total: total,
					SndHost: "snd", RcvHost: "rcv", Strict: *faultPlan == ""}
				var err error
				switch {
				case *proto != "tcp" || *mode == "raw":
					fmt.Fprintln(report, "  oracle: skipped (TCP flows only)")
				case *mode == "unmodified":
					err = led.AssertMultiCopy(cfg)
				default:
					err = led.AssertSingleCopy(cfg)
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "ttcp: audit:", err)
					os.Exit(1)
				} else if *proto == "tcp" && *mode != "raw" {
					fmt.Fprintln(report, "  oracle: ok")
				}
			}
		}
		if inj != nil {
			fmt.Fprintf(report, "  %s\n", inj.Report())
		}
		if critRec != nil {
			rep := critpath.Analyze(critRec)
			if *critFlag {
				fmt.Fprint(report, "\n")
				rep.WriteText(report, false)
			}
			if *critChrome != "" {
				die(os.WriteFile(*critChrome, rep.ChromeJSON(), 0o644))
			}
		}
		if tb.Prof != nil {
			if *profile {
				fmt.Print(tb.Prof.Folded())
			}
			if *profileOut != "" {
				die(os.WriteFile(*profileOut, []byte(tb.Prof.Folded()), 0o644))
			}
			if *profileJSON != "" {
				die(os.WriteFile(*profileJSON, tb.Prof.Snapshot().JSON(), 0o644))
			}
		}
		if tb.NetObs != nil {
			if *netobsFlag {
				fmt.Fprint(report, "\n"+tb.NetObsPostmortem(0).Format())
			}
			if *netobsJSON != "" {
				die(os.WriteFile(*netobsJSON, tb.NetObs.Snapshot().JSON(), 0o644))
			}
			if *netobsChrome != "" {
				die(os.WriteFile(*netobsChrome, tb.NetObs.Chrome(), 0o644))
			}
		}
		if tb.Series != nil {
			snap := tb.Series.Snapshot()
			if *seriesOut != "" {
				die(os.WriteFile(*seriesOut, snap.JSON(), 0o644))
			}
			if *seriesCSV != "" {
				die(os.WriteFile(*seriesCSV, []byte(snap.CSV()), 0o644))
			}
		}
		if tb.Tel == nil {
			return
		}
		if *stats {
			fmt.Fprint(report, "\n"+tb.Tel.Snapshot().Format())
		}
		if *metricsOut != "" {
			die(os.WriteFile(*metricsOut, tb.Tel.Snapshot().JSON(), 0o644))
		}
		if *traceOut != "" {
			die(os.WriteFile(*traceOut, tb.Tel.Chrome(), 0o644))
		}
	}

	var res ttcp.Result
	if *proto == "udp" && *mode != "raw" {
		m := socket.ModeSingleCopy
		if *mode == "unmodified" {
			m = socket.ModeUnmodified
		}
		a := tb.AddHost(core.HostConfig{Name: "snd", Addr: wire.Addr(0x0a000001),
			Mach: mach(), Mode: m, CABNode: 1, LazyUnpin: *lazy})
		b := tb.AddHost(core.HostConfig{Name: "rcv", Addr: wire.Addr(0x0a000002),
			Mach: mach(), Mode: m, CABNode: 2, LazyUnpin: *lazy})
		tb.RouteCAB(a, b)
		ur := ttcp.RunUDP(tb, a, b, params)
		fmt.Fprintf(report, "ttcp -u (%s stack, %s, %v datagrams)\n", *mode, mach().Name, size)
		fmt.Fprintf(report, "  sent %v, received %v (loss %.2f%%) in %v\n",
			ur.Sent, ur.Received, 100*ur.LossFraction, ur.Elapsed)
		fmt.Fprintf(report, "  throughput   %.1f Mb/s\n", ur.Throughput.Mbit())
		fmt.Fprintf(report, "  sender       util %.2f  efficiency %.1f Mb/s\n",
			ur.Snd.Utilization, ur.Snd.Efficiency.Mbit())
		fmt.Fprintf(report, "  receiver     util %.2f  efficiency %.1f Mb/s\n",
			ur.Rcv.Utilization, ur.Rcv.Efficiency.Mbit())
		emitTelemetry()
		return
	}
	if *mode == "raw" {
		a := tb.AddHost(core.HostConfig{Name: "snd", Addr: wire.Addr(0x0a000001),
			Mach: mach(), CABNode: 1, NoDriver: true})
		b := tb.AddHost(core.HostConfig{Name: "rcv", Addr: wire.Addr(0x0a000002),
			Mach: mach(), CABNode: 2, NoDriver: true})
		res = ttcp.RunRaw(tb, a, b, params)
	} else {
		m := socket.ModeSingleCopy
		if *mode == "unmodified" {
			m = socket.ModeUnmodified
		}
		a := tb.AddHost(core.HostConfig{Name: "snd", Addr: wire.Addr(0x0a000001),
			Mach: mach(), Mode: m, CABNode: 1, LazyUnpin: *lazy})
		b := tb.AddHost(core.HostConfig{Name: "rcv", Addr: wire.Addr(0x0a000002),
			Mach: mach(), Mode: m, CABNode: 2, LazyUnpin: *lazy})
		tb.RouteCAB(a, b)
		res = ttcp.Run(tb, a, b, params)
	}

	fmt.Fprintf(report, "ttcp (%s stack, %s, %v writes, %v window)\n",
		*mode, mach().Name, size, window)
	fmt.Fprintf(report, "  transferred  %v in %v\n", res.Bytes, res.Elapsed)
	if res.SndErr != "" || res.RcvErr != "" {
		fmt.Fprintf(report, "  flow ended under fault: snd=%q rcv=%q\n", res.SndErr, res.RcvErr)
	}
	fmt.Fprintf(report, "  throughput   %.1f Mb/s\n", res.Throughput.Mbit())
	fmt.Fprintf(report, "  sender       util %.2f (true %.2f)  efficiency %.1f Mb/s\n",
		res.Snd.Utilization, res.Snd.TrueUtilization, res.Snd.Efficiency.Mbit())
	fmt.Fprintf(report, "  receiver     util %.2f (true %.2f)  efficiency %.1f Mb/s\n",
		res.Rcv.Utilization, res.Rcv.TrueUtilization, res.Rcv.Efficiency.Mbit())
	fmt.Fprintf(report, "  sender CPU breakdown:\n")
	for _, cat := range []string{"copy", "csum", "vm", "proto", "driver", "intr", "syscall", "app"} {
		if d, ok := res.Snd.Breakdown[cat]; ok {
			fmt.Fprintf(report, "    %-8s %v\n", cat, d)
		}
	}
	emitTelemetry()
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttcp:", err)
		os.Exit(1)
	}
}
