// Command taxonomy prints the Table 1 host-interface taxonomy: the
// data-touching operations each combination of API semantics, checksum
// placement, and adaptor architecture requires on transmit, with its
// classification.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/taxonomy"
)

func main() {
	audit := flag.Bool("audit", false, "verify the derived copy counts against a measured data-touch ledger")
	flag.Parse()
	fmt.Print(taxonomy.Format())
	fmt.Println()
	fmt.Println("Classes:")
	counts := map[taxonomy.Class]int{}
	for _, c := range taxonomy.All() {
		counts[c.Class]++
	}
	for _, cl := range []taxonomy.Class{taxonomy.SingleCopy, taxonomy.CopyPlusRead, taxonomy.TwoCopy} {
		fmt.Printf("  %-12v %d configurations\n", cl, counts[cl])
	}
	fmt.Println()
	cab := taxonomy.Derive(taxonomy.Config{
		API: taxonomy.APICopy, Csum: taxonomy.CsumHeader,
		Buf: taxonomy.BufOutboard, Move: taxonomy.MoveDMACsum,
	})
	fmt.Printf("The CAB (copy API, header checksum, outboard buffering, DMA+csum): %v → %v\n",
		cab.Ops, cab.Class)
	fmt.Println("\nReceive path (mirror of Table 1; checksum placement is immaterial on receive):")
	fmt.Print(taxonomy.FormatReceive())

	if *audit {
		// Check the derivation against reality: run both stack variants
		// with the data-touch ledger on and verify the measured per-byte
		// touch counts land in the predicted cells.
		fmt.Println("\nMeasured audit (data-touch ledger, 1 MB transfer):")
		rep, err := exp.RunTouches(1)
		fmt.Print(rep.Format())
		if err != nil {
			fmt.Fprintf(os.Stderr, "taxonomy: %v\n", err)
			os.Exit(1)
		}
	}
}
