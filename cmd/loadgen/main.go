// Command loadgen drives the many-flow workload engine (internal/load)
// from the command line: it stands up an N-client × M-server testbed,
// runs hundreds to thousands of concurrent TCP/UDP flows through the
// real socket path, and prints the run's report.
//
// Usage:
//
//	loadgen -flows 256 -clients 4 -servers 2 -udpfrac 0.25 -openloop -rate 2000
//	loadgen -flows 11 -bulk -duration 120ms -warmup 20ms -arb        # fairness incast
//	loadgen -flows 1024 -requests 2 -json                            # machine-readable
//
// Two invocations with the same flags are byte-identical (the report
// carries an order digest over every delivery event), so loadgen output
// can be diffed to check determinism across code changes.
//
// -engobs prints the simulator's own meta-profile (events dispatched per
// kind, queue high-waters, advisory events/sec and allocs/event) after
// the run, and -cpuprofile/-memprofile capture pprof profiles of the
// simulator process — the tools for making big runs cheaper:
//
//	loadgen -flows 1024 -openloop -rate 2000 -arb -engobs -cpuprofile cpu.pprof
//
// -netobs enables the transport-dynamics observatory and prints the
// per-flow congestion postmortem (verdicts like netmem-starved or
// RTO-bound next to the retransmission taxonomy and wire-port busy
// fractions); -netobs-json dumps the raw recorder, -netobs-chrome writes
// Chrome-trace counter tracks. -series/-series-csv write the testbed
// utilization time-series, sampled every -series-interval-us of virtual
// time (the sampler stops when the last client flow finishes):
//
//	loadgen -flows 11 -bulk -duration 120ms -warmup 20ms -netobs
//	loadgen -flows 11 -bulk -duration 120ms -arb -series series.json
//
// -topology routes the testbed through a multi-switch fabric
// (internal/fabric) instead of the classic single switch, with seeded
// ECMP across equal-cost uplinks; -cc selects the TCP congestion
// control, and -queuecap/-ecnthresh set the per-port wire queue cap and
// the fabric's CE-marking threshold:
//
//	loadgen -topology leafspine:4x2 -cc dctcp -queuecap 256 -flows 64 -bulk -netobs
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/cab"
	"repro/internal/load"
	"repro/internal/obs/engine"
	"repro/internal/socket"
	"repro/internal/units"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "scenario seed (all randomness derives from it)")
		name    = flag.String("name", "loadgen", "scenario name in the report")
		clients = flag.Int("clients", 4, "client hosts")
		servers = flag.Int("servers", 2, "server hosts")
		flows   = flag.Int("flows", 64, "concurrent flows")
		udpfrac = flag.Float64("udpfrac", 0.25, "fraction of flows carried over UDP")
		mode    = flag.String("mode", "single_copy", "stack variant: single_copy or unmodified")

		bulk      = flag.Bool("bulk", false, "bulk streaming instead of request/response")
		duration  = flag.Duration("duration", 20*time.Millisecond, "bulk: virtual-time send deadline")
		warmup    = flag.Duration("warmup", 0, "bulk: exclude deliveries before this virtual time from goodput")
		bulkWrite = flag.Int("bulkwrite", 32, "bulk: write size in KB")

		requests = flag.Int("requests", 4, "request/response: exchanges per flow")
		openloop = flag.Bool("openloop", false, "Poisson open-loop arrivals instead of closed loop")
		rate     = flag.Float64("rate", 1000, "open loop: requests/second per flow")
		think    = flag.Duration("think", 0, "closed loop: mean think time between requests")

		window   = flag.Int("window", 0, "TCP socket buffer / offered window in KB (0 = stack default)")
		udpthink = flag.Duration("udpthink", 0, "per-datagram processing time at UDP receivers")
		stagger  = flag.Duration("stagger", 0, "spread flow starts uniformly over this interval")

		memKB = flag.Int("netmem", 0, "per-adaptor network memory in KB (0 = adaptor default)")
		arb   = flag.Bool("arb", false, "install the per-flow netmem arbiter on every host")

		topology  = flag.String("topology", "", `multi-switch fabric spec: "linear:N", "leafspine:LxS", "fattree:LxS" (empty = classic single switch)`)
		cc        = flag.String("cc", "", "TCP congestion control: reno or dctcp (empty = reno)")
		queuecap  = flag.Int("queuecap", 0, "per-port wire queue cap in KB; overruns tail-drop (0 = unbounded)")
		ecnthresh = flag.Int("ecnthresh", 0, "fabric CE-marking queue threshold in KB (0 with -cc dctcp = 32)")
		mtu       = flag.Int("mtu", 0, "network-layer MTU in bytes (0 = the 32 KB paper default)")

		faultPlan = flag.String("fault", "", `fault-injection plan, e.g. "partition:at=5ms,dur=20ms" or "cabreset:at=8ms" (see internal/fault.ParsePlan)`)

		jsonOut = flag.Bool("json", false, "emit the full report as JSON")

		seriesOut        = flag.String("series", "", "write the utilization time-series JSON to this path")
		seriesCSV        = flag.String("series-csv", "", "write the utilization time-series CSV to this path")
		seriesIntervalUS = flag.Int64("series-interval-us", 100, "series sampling interval, µs of virtual time")

		netobsFlag   = flag.Bool("netobs", false, "record per-flow TCP dynamics and wire-port telemetry and print the congestion postmortem")
		netobsJSON   = flag.String("netobs-json", "", "write the full transport-dynamics recorder dump to this path")
		netobsChrome = flag.String("netobs-chrome", "", "write the transport-dynamics series as Chrome-trace counter tracks to this path")

		engObs  = flag.Bool("engobs", false, "print the simulator meta-profile (engine event counters) after the run")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s\n", *cpuProf)
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *memProf)
		}()
	}

	s := load.Scenario{
		Name:           *name,
		Seed:           *seed,
		Clients:        *clients,
		Servers:        *servers,
		Flows:          *flows,
		UDPFrac:        *udpfrac,
		Bulk:           *bulk,
		Duration:       units.Time(*duration),
		Warmup:         units.Time(*warmup),
		BulkWrite:      units.Size(*bulkWrite) * units.KB,
		Requests:       *requests,
		OpenLoop:       *openloop,
		Rate:           *rate,
		Think:          units.Time(*think),
		Window:         units.Size(*window) * units.KB,
		UDPServerThink: units.Time(*udpthink),
		Stagger:        units.Time(*stagger),
		FaultPlan:      *faultPlan,
		Topology:       *topology,
		CC:             *cc,
		QueueCap:       units.Size(*queuecap) * units.KB,
		ECNThreshold:   units.Size(*ecnthresh) * units.KB,
		MTU:            units.Size(*mtu),
	}
	switch *mode {
	case "single_copy":
		s.Mode = socket.ModeSingleCopy
	case "unmodified":
		s.Mode = socket.ModeUnmodified
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown -mode %q\n", *mode)
		os.Exit(2)
	}
	if *memKB > 0 {
		s.CABConfig = &cab.Config{
			MemSize:    units.Size(*memKB) * units.KB,
			PageSize:   8 * units.KB,
			AutoDMALen: 784,
			RxCsumSkip: 80,
			Channels:   8,
		}
	}
	if *arb {
		s.Arbiter = &cab.ArbConfig{}
	}
	if *seriesOut != "" || *seriesCSV != "" {
		s.Series = units.Time(*seriesIntervalUS) * units.Microsecond
	}
	if *netobsFlag || *netobsJSON != "" || *netobsChrome != "" {
		s.NetObs = true
	}

	var o *engine.Observer
	if *engObs {
		o = engine.New()
		s.EngObs = o
	}
	rep, err := load.Run(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		os.Stdout.Write(rep.JSON())
	} else {
		fmt.Printf("%s: %d flows (%d tcp, %d udp) mode=%s vtime=%.3fs\n",
			rep.Name, rep.Flows, rep.TCPFlows, rep.UDPFlows, rep.Mode, rep.VTimeSec)
		fmt.Printf("  delivered %d bytes (%d requests, %d/%d dgrams)\n",
			rep.TotalBytes, rep.Requests, rep.DgramsRcvd, rep.DgramsSent)
		fmt.Printf("  goodput min/p50/mean/max %.2f/%.2f/%.2f/%.2f Mb/s  jain=%.4f starved=%d\n",
			rep.GoodputMinMbps, rep.GoodputP50Mbps, rep.GoodputMeanMbps, rep.GoodputMaxMbps,
			rep.Jain, rep.Starved)
		fmt.Printf("  latency p50/p99 %.1f/%.1f us  drops=%d rx_retries=%d listen_overflows=%d\n",
			rep.LatP50Us, rep.LatP99Us, rep.Drops, rep.RxRetries, rep.ListenOverflows)
		if rep.Arbiter {
			fmt.Printf("  arbiter: waits=%d borrows=%d reclaims=%d\n",
				rep.ArbWaits, rep.ArbBorrows, rep.ArbReclaims)
		}
		if rep.FaultReport != "" {
			fmt.Printf("  %s\n", rep.FaultReport)
		}
		if rep.Topology != "" {
			fmt.Printf("  fabric %s cc=%s marks=%d trunk_drops=%d\n",
				rep.Topology, rep.CC, rep.ECNMarked, rep.TrunkDrops)
			for _, t := range rep.Trunks {
				fmt.Printf("    trunk %-14s ab=%-9d ba=%-9d drops=%d/%d\n",
					t.Name, int64(t.AB), int64(t.BA), t.DropsAB, t.DropsBA)
			}
		}
		if rep.Audit != "" {
			fmt.Printf("  single_copy_audit=%s\n", rep.Audit)
		}
		fmt.Printf("  order_digest=%s\n", rep.OrderDigest)
	}
	if *netobsFlag && rep.NetObs != nil {
		// With -json the report owns stdout (and already embeds the
		// postmortem); keep the human rendering on stderr there.
		out := os.Stdout
		if *jsonOut {
			out = os.Stderr
		}
		fmt.Fprint(out, rep.NetObs.Format())
	}
	if *netobsJSON != "" && rep.NetObsRec != nil {
		die(os.WriteFile(*netobsJSON, rep.NetObsRec.Snapshot().JSON(), 0o644))
	}
	if *netobsChrome != "" && rep.NetObsRec != nil {
		die(os.WriteFile(*netobsChrome, rep.NetObsRec.Chrome(), 0o644))
	}
	if rep.Series != nil {
		snap := rep.Series.Snapshot()
		if *seriesOut != "" {
			die(os.WriteFile(*seriesOut, snap.JSON(), 0o644))
		}
		if *seriesCSV != "" {
			die(os.WriteFile(*seriesCSV, []byte(snap.CSV()), 0o644))
		}
	}
	if o != nil {
		// With -json the report owns stdout; keep it machine-parseable.
		out := os.Stdout
		if *jsonOut {
			out = os.Stderr
		}
		fmt.Fprintln(out, "engine meta-profile:")
		for _, line := range strings.Split(strings.TrimRight(o.Snapshot().Format(), "\n"), "\n") {
			fmt.Fprintf(out, "  %s\n", line)
		}
	}
	if rep.Errors != 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d flow errors (first: %s)\n", rep.Errors, rep.FirstError)
		os.Exit(1)
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}
