// Command trace runs a short single-copy transfer and prints a
// tcpdump-style trace of every packet crossing the sender's stack,
// showing the handshake, the descriptor-bearing data segments, the
// acknowledgement clock, and the FIN exchange.
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/tcpip"
	"repro/internal/units"
	"repro/internal/wire"
)

func main() {
	n := flag.Int("n", 40, "maximum trace lines to print")
	flag.Parse()

	tb := core.NewTestbed(5)
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: wire.Addr(0x0a000001),
		Mode: socket.ModeSingleCopy, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: wire.Addr(0x0a000002),
		Mode: socket.ModeSingleCopy, CABNode: 2})
	tb.RouteCAB(a, b)

	lines := 0
	a.Stk.Tracer = func(e tcpip.TraceEvent) {
		if lines < *n {
			fmt.Println(e)
		}
		lines++
	}

	lis := b.Stk.Listen(5001)
	rt := b.NewUserTask("rcv", 0)
	tb.Eng.Go("rcv", func(p *sim.Proc) {
		s := b.Accept(p, rt, lis)
		buf := rt.Space.Alloc(64*units.KB, 8)
		for {
			if _, err := s.Read(p, buf); err != nil {
				return
			}
		}
	})
	st := a.NewUserTask("snd", 0)
	tb.Eng.Go("snd", func(p *sim.Proc) {
		s, err := a.Dial(p, st, wire.Addr(0x0a000002), 5001)
		if err != nil {
			panic(err)
		}
		buf := st.Space.Alloc(64*units.KB, 8)
		for i := 0; i < 4; i++ {
			s.WriteAll(p, buf)
		}
		s.Close(p)
	})
	tb.Eng.Run()
	tb.Eng.KillAll()
	if lines > *n {
		fmt.Printf("... (%d more events)\n", lines-*n)
	}
}
