// Command trace runs a short single-copy transfer and prints a
// tcpdump-style trace of every packet crossing a host's stack,
// showing the handshake, the descriptor-bearing data segments, the
// acknowledgement clock, and the FIN exchange.
//
// Usage:
//
//	trace [-n 40] [-host A|B|both] [-dir in|out|both] [-json]
//	      [-flow <port>] [-chrome out.json]
//	      [-critpath] [-critpath-chrome out.json]
//	      [-netobs dump.json -chrome out.json]
//
// -json emits one JSON object per event (machine-readable) instead of the
// tcpdump-style line. -flow keeps only the segments of one flow (the data
// sender's port; the simulator's first ephemeral port is 10001). -chrome
// writes the data-path spans as Chrome trace-event JSON — filtered to
// -flow when given — with flow-binding ("s"/"f") events so one byte
// range's journey renders as cross-host arrows in Perfetto.
//
// -critpath records happens-before graphs for the transfer and prints
// every completed read's critical-path waterfall: each row is one
// lifecycle event with the cause class and duration of the stall edge
// that delivered it, and the per-cause sums reconstruct the end-to-end
// latency exactly. -critpath-chrome writes the same paths as Chrome
// trace-event JSON (one track per cause class, loadable in Perfetto).
//
// -netobs skips the built-in transfer entirely and instead re-renders a
// saved transport-dynamics dump (loadgen -netobs-json) as Chrome counter
// tracks. Multi-switch fabrics work: trunk ports carry switch-namespaced
// synthetic ids and are labeled by trunk name ("link leaf0-spine1>"), so
// the export can't collide on duplicate port numbers:
//
//	loadgen -topology leafspine:4x2 -flows 64 -bulk -netobs-json dump.json
//	trace -netobs dump.json -chrome wire.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/critpath"
	"repro/internal/obs/netobs"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/tcpip"
	"repro/internal/units"
	"repro/internal/wire"
)

func main() {
	n := flag.Int("n", 40, "maximum trace lines to print")
	hostF := flag.String("host", "A", "which host's stack to trace: A (sender), B (receiver), both")
	dirF := flag.String("dir", "both", "direction filter: in, out, both")
	jsonF := flag.Bool("json", false, "emit events as JSON lines")
	flowF := flag.Int("flow", 0, "only trace segments of this flow (the data sender's port; 0 = all)")
	chromeOut := flag.String("chrome", "", "write data-path spans as Chrome trace-event JSON to this path")
	critFlag := flag.Bool("critpath", false, "print every completed read's critical-path waterfall with stall attribution")
	critChrome := flag.String("critpath-chrome", "", "write the critical paths as Chrome trace-event JSON to this path")
	netobsIn := flag.String("netobs", "", "re-render this saved transport-dynamics dump (loadgen -netobs-json) as Chrome counter tracks instead of running a transfer")
	flag.Parse()

	if *netobsIn != "" {
		if *chromeOut == "" {
			fmt.Fprintln(os.Stderr, "trace: -netobs needs -chrome <out.json>")
			os.Exit(2)
		}
		raw, err := os.ReadFile(*netobsIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		var dump netobs.Dump
		if err := json.Unmarshal(raw, &dump); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %s: %v\n", *netobsIn, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*chromeOut, dump.Chrome(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d flows, %d wires)\n",
			*chromeOut, len(dump.Flows), len(dump.Wires))
		return
	}

	if *dirF != "in" && *dirF != "out" && *dirF != "both" {
		fmt.Fprintf(os.Stderr, "trace: bad -dir %q (want in, out, or both)\n", *dirF)
		os.Exit(2)
	}

	tb := core.NewTestbed(5)
	if *chromeOut != "" {
		tb.EnableTelemetry()
	}
	var critRec *obs.CritRec
	if *critFlag || *critChrome != "" {
		critRec = tb.EnableCritPath()
	}
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: wire.Addr(0x0a000001),
		Mode: socket.ModeSingleCopy, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: wire.Addr(0x0a000002),
		Mode: socket.ModeSingleCopy, CABNode: 2})
	tb.RouteCAB(a, b)

	both := *hostF == "both"
	lines := 0
	mkTracer := func(host string) func(tcpip.TraceEvent) {
		return func(e tcpip.TraceEvent) {
			if *dirF != "both" && e.Dir.String() != *dirF {
				return
			}
			if *flowF != 0 && (e.TCP == nil ||
				(int(e.TCP.SPort) != *flowF && int(e.TCP.DPort) != *flowF)) {
				return
			}
			lines++
			if lines > *n {
				return
			}
			switch {
			case *jsonF:
				out, err := json.Marshal(struct {
					Host string `json:"host"`
					tcpip.TraceEvent
				}{host, e})
				if err != nil {
					fmt.Fprintln(os.Stderr, "trace:", err)
					os.Exit(1)
				}
				fmt.Println(string(out))
			case both:
				fmt.Printf("%s %v\n", host, e)
			default:
				fmt.Println(e)
			}
		}
	}
	switch *hostF {
	case "A":
		a.Stk.Tracer = mkTracer("A")
	case "B":
		b.Stk.Tracer = mkTracer("B")
	case "both":
		a.Stk.Tracer = mkTracer("A")
		b.Stk.Tracer = mkTracer("B")
	default:
		fmt.Fprintf(os.Stderr, "trace: bad -host %q (want A, B, or both)\n", *hostF)
		os.Exit(2)
	}

	lis := b.Stk.Listen(5001)
	rt := b.NewUserTask("rcv", 0)
	tb.Eng.Go("rcv", func(p *sim.Proc) {
		s := b.Accept(p, rt, lis)
		buf := rt.Space.Alloc(64*units.KB, 8)
		for {
			if _, err := s.Read(p, buf); err != nil {
				return
			}
		}
	})
	st := a.NewUserTask("snd", 0)
	tb.Eng.Go("snd", func(p *sim.Proc) {
		s, err := a.Dial(p, st, wire.Addr(0x0a000002), 5001)
		if err != nil {
			panic(err)
		}
		buf := st.Space.Alloc(64*units.KB, 8)
		for i := 0; i < 4; i++ {
			s.WriteAll(p, buf)
		}
		s.Close(p)
	})
	tb.Eng.Run()
	tb.Eng.KillAll()
	if *chromeOut != "" {
		out := tb.Tel.Chrome()
		if *flowF != 0 {
			out = tb.Tel.ChromeFlow(*flowF)
		}
		if err := os.WriteFile(*chromeOut, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
	}
	if lines > *n {
		// Keep stdout machine-readable under -json: the truncation note
		// is commentary, not an event.
		fmt.Fprintf(os.Stderr, "... (%d more events)\n", lines-*n)
	}
	if critRec != nil {
		rep := critpath.Analyze(critRec)
		if *critFlag {
			fmt.Println()
			rep.WriteText(os.Stdout, true)
		}
		if *critChrome != "" {
			if err := os.WriteFile(*critChrome, rep.ChromeJSON(), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
				os.Exit(1)
			}
		}
	}
}
