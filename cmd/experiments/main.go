// Command experiments regenerates the paper's tables and figures from the
// simulator.
//
// Usage:
//
//	experiments -exp fig5|fig6|table1|table2|analysis|hol|window|lazy|threshold|all
//	experiments -exp fig5 -quick   # fewer sizes, faster
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/exp"
	"repro/internal/taxonomy"
	"repro/internal/units"
)

func main() {
	which := flag.String("exp", "all", "experiment: fig5, fig6, table1, table2, analysis, hol, window, lazy, threshold, all")
	quick := flag.Bool("quick", false, "use a reduced size sweep for the figures")
	csv := flag.Bool("csv", false, "emit figures as CSV instead of tables")
	metricsOut := flag.String("metrics", "", "write a telemetry snapshot of one instrumented transfer to this JSON file")
	benchDir := flag.String("benchdir", ".", "directory for the BENCH_fig5.json / BENCH_fig6.json perf-trajectory files")
	flag.Parse()

	sizes := exp.DefaultSizes()
	if *quick {
		sizes = []units.Size{4 * units.KB, 16 * units.KB, 64 * units.KB, 256 * units.KB}
	}

	// writeBench records a figure's curves as machine-readable JSON so
	// future changes have a perf trajectory to diff against.
	writeBench := func(file string, fig exp.Figure) {
		path := filepath.Join(*benchDir, file)
		if err := os.WriteFile(path, fig.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	run := func(name string) {
		switch name {
		case "fig5":
			fig := exp.Figure5(sizes)
			if *csv {
				fmt.Print(fig.CSV())
			} else {
				fmt.Println(fig.Format())
			}
			writeBench("BENCH_fig5.json", fig)
		case "fig6":
			fig := exp.Figure6(sizes)
			if *csv {
				fmt.Print(fig.CSV())
			} else {
				fmt.Println(fig.Format())
			}
			writeBench("BENCH_fig6.json", fig)
		case "table1":
			fmt.Println(taxonomy.Format())
		case "table2":
			fmt.Println(exp.FormatTable2(exp.MeasureTable2()))
		case "analysis":
			fmt.Println("Section 7.3 analytic estimates (Alpha 3000/400, 32KB packets):")
			for _, e := range analysis.PaperTable() {
				fmt.Println("  " + e.String())
			}
			fmt.Println()
		case "hol":
			rs := []exp.HOLResult{
				exp.RunHOL(2, 20000, 1),
				exp.RunHOL(8, 20000, 2),
				exp.RunHOL(32, 20000, 3),
			}
			fmt.Println(exp.FormatHOL(rs))
		case "window":
			fmt.Println(exp.FormatWindowSweep(exp.RunWindowSweep(nil)))
		case "lazy":
			fmt.Println(exp.FormatLazyPin(exp.RunLazyPinAblation()))
		case "threshold":
			fmt.Println(exp.FormatThreshold(exp.RunThresholdAblation(nil)))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	if *metricsOut != "" {
		snap := exp.MetricsRun(64*units.KB, 1)
		if err := os.WriteFile(*metricsOut, snap.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *metricsOut)
	}

	if *which == "all" {
		for _, name := range []string{"table1", "table2", "analysis", "hol", "window", "lazy", "threshold", "fig5", "fig6"} {
			fmt.Printf("=== %s ===\n", name)
			run(name)
		}
		return
	}
	run(*which)
}
