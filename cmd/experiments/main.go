// Command experiments regenerates the paper's tables and figures from the
// simulator.
//
// Usage:
//
//	experiments -exp fig5|fig6|table1|table2|analysis|hol|window|lazy|threshold|all
//	experiments -exp fig5 -quick   # fewer sizes, faster
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/exp"
	"repro/internal/taxonomy"
	"repro/internal/units"
)

func main() {
	which := flag.String("exp", "all", "experiment: fig5, fig6, table1, table2, analysis, hol, window, lazy, threshold, all")
	quick := flag.Bool("quick", false, "use a reduced size sweep for the figures")
	csv := flag.Bool("csv", false, "emit figures as CSV instead of tables")
	flag.Parse()

	sizes := exp.DefaultSizes()
	if *quick {
		sizes = []units.Size{4 * units.KB, 16 * units.KB, 64 * units.KB, 256 * units.KB}
	}

	run := func(name string) {
		switch name {
		case "fig5":
			fig := exp.Figure5(sizes)
			if *csv {
				fmt.Print(fig.CSV())
			} else {
				fmt.Println(fig.Format())
			}
		case "fig6":
			fig := exp.Figure6(sizes)
			if *csv {
				fmt.Print(fig.CSV())
			} else {
				fmt.Println(fig.Format())
			}
		case "table1":
			fmt.Println(taxonomy.Format())
		case "table2":
			fmt.Println(exp.FormatTable2(exp.MeasureTable2()))
		case "analysis":
			fmt.Println("Section 7.3 analytic estimates (Alpha 3000/400, 32KB packets):")
			for _, e := range analysis.PaperTable() {
				fmt.Println("  " + e.String())
			}
			fmt.Println()
		case "hol":
			rs := []exp.HOLResult{
				exp.RunHOL(2, 20000, 1),
				exp.RunHOL(8, 20000, 2),
				exp.RunHOL(32, 20000, 3),
			}
			fmt.Println(exp.FormatHOL(rs))
		case "window":
			fmt.Println(exp.FormatWindowSweep(exp.RunWindowSweep(nil)))
		case "lazy":
			fmt.Println(exp.FormatLazyPin(exp.RunLazyPinAblation()))
		case "threshold":
			fmt.Println(exp.FormatThreshold(exp.RunThresholdAblation(nil)))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	if *which == "all" {
		for _, name := range []string{"table1", "table2", "analysis", "hol", "window", "lazy", "threshold", "fig5", "fig6"} {
			fmt.Printf("=== %s ===\n", name)
			run(name)
		}
		return
	}
	run(*which)
}
