// Command experiments regenerates the paper's tables and figures from the
// simulator.
//
// Usage:
//
//	experiments -exp fig5|fig6|fig7|fig8|fig9|table1|table2|analysis|hol|window|lazy|threshold|chaos|load|simbench|critpath|recover|netobs|fabric|all
//	experiments -exp fig5 -quick   # fewer sizes, faster
//	experiments -exp bench         # regenerate every BENCH_fig*.json baseline
//	experiments -exp simbench -cpuprofile cpu.pprof   # profile the simulator itself
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"repro/internal/analysis"
	"repro/internal/exp"
	"repro/internal/taxonomy"
	"repro/internal/units"
)

func main() {
	which := flag.String("exp", "all", "experiment: fig5..fig9, table1, table2, analysis, hol, window, lazy, threshold, chaos, touches, load, simbench, critpath, recover, netobs, fabric, bench, all")
	quick := flag.Bool("quick", false, "use a reduced size sweep for the figures")
	csv := flag.Bool("csv", false, "emit figures as CSV instead of tables")
	metricsOut := flag.String("metrics", "", "write a telemetry snapshot of one instrumented transfer to this JSON file")
	benchDir := flag.String("benchdir", ".", "directory for the BENCH_fig5.json / BENCH_fig6.json perf-trajectory files")
	cpuProf := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProf := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s\n", *cpuProf)
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *memProf)
		}()
	}

	sizes := exp.DefaultSizes()
	if *quick {
		sizes = []units.Size{4 * units.KB, 16 * units.KB, 64 * units.KB, 256 * units.KB}
	}

	// writeBench records a figure's curves as machine-readable JSON so
	// future changes have a perf trajectory to diff against.
	writeBench := func(file string, data []byte) {
		path := filepath.Join(*benchDir, file)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	// The Figure 7–9 family comes from one sweep; cache it across cases.
	var (
		bdDone     bool
		fig7, fig8 exp.BreakdownFigure
		fig9       exp.DecompFigure
	)
	breakdowns := func() (exp.BreakdownFigure, exp.BreakdownFigure, exp.DecompFigure) {
		if !bdDone {
			fig7, fig8, fig9 = exp.RunBreakdowns(sizes)
			bdDone = true
		}
		return fig7, fig8, fig9
	}

	run := func(name string) {
		switch name {
		case "fig5":
			fig := exp.Figure5(sizes)
			if *csv {
				fmt.Print(fig.CSV())
			} else {
				fmt.Println(fig.Format())
			}
			writeBench("BENCH_fig5.json", fig.JSON())
		case "fig6":
			fig := exp.Figure6(sizes)
			if *csv {
				fmt.Print(fig.CSV())
			} else {
				fmt.Println(fig.Format())
			}
			writeBench("BENCH_fig6.json", fig.JSON())
		case "fig7":
			f7, _, _ := breakdowns()
			fmt.Println(f7.Format())
			writeBench("BENCH_fig7.json", f7.JSON())
		case "fig8":
			_, f8, _ := breakdowns()
			fmt.Println(f8.Format())
			writeBench("BENCH_fig8.json", f8.JSON())
		case "fig9":
			_, _, f9 := breakdowns()
			fmt.Println(f9.Format())
			writeBench("BENCH_fig9.json", f9.JSON())
		case "bench":
			// Regenerate every perf baseline with the full size sweep,
			// regardless of -quick: the committed files and the CI gate
			// must agree on the grid.
			writeBench("BENCH_fig5.json", exp.Figure5(nil).JSON())
			writeBench("BENCH_fig6.json", exp.Figure6(nil).JSON())
			f7, f8, f9 := exp.RunBreakdowns(nil)
			writeBench("BENCH_fig7.json", f7.JSON())
			writeBench("BENCH_fig8.json", f8.JSON())
			writeBench("BENCH_fig9.json", f9.JSON())
			rep, err := exp.RunTouches(1)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			writeBench("BENCH_touches.json", rep.JSON())
			lb, err := exp.RunLoadBench()
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			writeBench("BENCH_load.json", lb.JSON())
			sb, err := exp.RunSimBench(false)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			writeBench("BENCH_sim.json", sb.JSON())
			cb, err := exp.RunCritPath(false)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			writeBench("BENCH_critpath.json", cb.JSON())
			rb, err := exp.RunRecoverBench()
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			writeBench("BENCH_recover.json", rb.JSON())
			nb, err := exp.RunNetObs()
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			writeBench("BENCH_netobs.json", nb.JSON())
			fb, err := exp.RunFabric()
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			writeBench("BENCH_fabric.json", fb.JSON())
		case "fabric":
			fb, err := exp.RunFabric()
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(fb.Format())
			writeBench("BENCH_fabric.json", fb.JSON())
		case "netobs":
			nb, err := exp.RunNetObs()
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(nb.Format())
			writeBench("BENCH_netobs.json", nb.JSON())
		case "recover":
			rb, err := exp.RunRecoverBench()
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(rb.Format())
			writeBench("BENCH_recover.json", rb.JSON())
		case "critpath":
			cb, err := exp.RunCritPath(*quick)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(cb.Format())
			writeBench("BENCH_critpath.json", cb.JSON())
		case "simbench":
			sb, err := exp.RunSimBench(*quick)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(sb.Format())
			writeBench("BENCH_sim.json", sb.JSON())
		case "load":
			lb, err := exp.RunLoadBench()
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(lb.Format())
			writeBench("BENCH_load.json", lb.JSON())
		case "touches":
			rep, err := exp.RunTouches(1)
			fmt.Println(rep.Format())
			writeBench("BENCH_touches.json", rep.JSON())
			if err != nil {
				fmt.Fprintf(os.Stderr, "touches: %v\n", err)
				os.Exit(1)
			}
		case "table1":
			fmt.Println(taxonomy.Format())
		case "table2":
			fmt.Println(exp.FormatTable2(exp.MeasureTable2()))
		case "analysis":
			fmt.Println("Section 7.3 analytic estimates (Alpha 3000/400, 32KB packets):")
			for _, e := range analysis.PaperTable() {
				fmt.Println("  " + e.String())
			}
			fmt.Println()
		case "hol":
			rs := []exp.HOLResult{
				exp.RunHOL(2, 20000, 1),
				exp.RunHOL(8, 20000, 2),
				exp.RunHOL(32, 20000, 3),
			}
			fmt.Println(exp.FormatHOL(rs))
		case "window":
			fmt.Println(exp.FormatWindowSweep(exp.RunWindowSweep(nil)))
		case "lazy":
			fmt.Println(exp.FormatLazyPin(exp.RunLazyPinAblation()))
		case "threshold":
			fmt.Println(exp.FormatThreshold(exp.RunThresholdAblation(nil)))
		case "chaos":
			rs := exp.RunChaos()
			fmt.Println(exp.FormatChaos(rs))
			if exp.ChaosFailed(rs) {
				fmt.Fprintln(os.Stderr, "chaos: invariant violations")
				os.Exit(1)
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	if *metricsOut != "" {
		snap := exp.MetricsRun(64*units.KB, 1)
		if err := os.WriteFile(*metricsOut, snap.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *metricsOut)
	}

	if *which == "all" {
		for _, name := range []string{"table1", "table2", "analysis", "hol", "window", "lazy", "threshold", "fig5", "fig6", "fig7", "fig8", "fig9"} {
			fmt.Printf("=== %s ===\n", name)
			run(name)
		}
		return
	}
	run(*which)
}
