GO ?= go

.PHONY: all build vet test race bench-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over the Figure 5 sweep; the simulation is deterministic, so a
# single iteration gives the full virtual-time result set.
bench-smoke:
	$(GO) test -run - -bench BenchmarkFigure5 -benchtime 1x .

ci: vet build race bench-smoke
