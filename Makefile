GO ?= go

.PHONY: all build vet test race bench-smoke bench benchcheck simbench critpath recover netobs soak audit obs-race load load-race ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over the Figure 5 sweep; the simulation is deterministic, so a
# single iteration gives the full virtual-time result set.
bench-smoke:
	$(GO) test -run - -bench BenchmarkFigure5 -benchtime 1x .

# Regenerate the committed BENCH_fig*.json perf baselines in place. Run
# this (and commit the result) when a change intentionally moves the
# numbers.
bench:
	$(GO) run ./cmd/experiments -exp bench

# The perf-regression gate: regenerate every figure into a scratch
# directory and diff it against the committed baselines. The simulation is
# deterministic, so any drift is a real behavior change.
benchcheck:
	rm -rf .benchfresh && mkdir -p .benchfresh
	$(GO) run ./cmd/experiments -exp bench -benchdir .benchfresh
	$(GO) run ./cmd/benchdiff -baseline . -fresh .benchfresh

# The simulator self-observatory gate: run the seeded workload matrix
# (Figure 5 transfer, the 22-case soak shape, 256- and 1024-flow load
# runs) with the engine meta-profiler attached and exact-diff the
# deterministic sections — events by kind, queue high-waters, kernel
# charges — against the committed BENCH_sim.json. Advisory wall-clock
# and allocation fields are reported but never fail the gate.
simbench:
	rm -rf .simfresh && mkdir -p .simfresh
	$(GO) run ./cmd/experiments -exp simbench -benchdir .simfresh
	$(GO) run ./cmd/benchdiff -baseline . -fresh .simfresh BENCH_sim.json

# The causal critical-path gate: rebuild the happens-before graphs over
# the Figure 5 sweep (both stack modes) plus the 64-flow incast, reduce
# each to its per-cause latency attribution, and exact-diff against the
# committed BENCH_critpath.json. The per-cause nanoseconds are pure
# functions of the virtual event sequence; only the advisory analysis
# wall time may drift.
critpath:
	rm -rf .critfresh && mkdir -p .critfresh
	$(GO) run ./cmd/experiments -exp critpath -benchdir .critfresh
	$(GO) run ./cmd/benchdiff -baseline . -fresh .critfresh BENCH_critpath.json

# The fault-domain recovery gate: run the partition/heal, adaptor-reset,
# and peer-death matrix plus the abort state-matrix and liveness tests
# under the race detector, then regenerate BENCH_recover.json and
# exact-diff its deterministic fields (injection schedule, first-goodput
# instant, per-flow fates) against the committed baseline. Recovery time
# is virtual, so drift means the recovery machinery itself changed.
recover:
	$(GO) test -race -count 1 -run 'TestRecover|TestAbort|TestKeepAlive|TestUserTimeout' ./internal/fault/soak ./internal/tcpip
	rm -rf .recoverfresh && mkdir -p .recoverfresh
	$(GO) run ./cmd/experiments -exp recover -benchdir .recoverfresh
	$(GO) run ./cmd/benchdiff -baseline . -fresh .recoverfresh BENCH_recover.json

# The transport-dynamics gate: run the observatory unit and machine-check
# tests (nil-hook zero-alloc, verdict rules, same-seed byte-identity, the
# incast postmortem acceptance pair) under the race detector, then
# regenerate the fairness-pair postmortems and exact-diff them against
# the committed BENCH_netobs.json. Every field is a pure function of the
# seeded event sequence, so any drift is a congestion-behavior change.
netobs:
	$(GO) test -race -count 1 -run 'NetObs' ./internal/obs/netobs ./internal/tcpip ./internal/hippi ./internal/load ./internal/exp
	rm -rf .netobsfresh && mkdir -p .netobsfresh
	$(GO) run ./cmd/experiments -exp netobs -benchdir .netobsfresh
	$(GO) run ./cmd/benchdiff -baseline . -fresh .netobsfresh BENCH_netobs.json

# The multi-switch fabric: topology grammar, ECMP hashing, CE marking,
# the congestion-control comparison (Reno RTO-bound vs DCTCP healthy on
# the same capped trunk), and the exact-diffed fabric baseline.
fabric:
	$(GO) test -race -count 1 -run 'Fabric|ECMP|MarkCE|Topolog|Parse|CC|Dctcp|Ecn|ECN' ./internal/fabric ./internal/tcpip ./internal/hippi ./internal/load ./internal/exp
	rm -rf .fabricfresh && mkdir -p .fabricfresh
	$(GO) run ./cmd/experiments -exp fabric -benchdir .fabricfresh
	$(GO) run ./cmd/benchdiff -baseline . -fresh .fabricfresh BENCH_fabric.json

# The adversarial soak suite: seeded fault plans against full transfers,
# under the race detector, plus the determinism and recovery-corner tests.
soak:
	$(GO) test -race -count 1 ./internal/fault/...

# The single-copy auditor: run both stack variants with the data-touch
# ledger on, print the measured copy-count table, and fail unless the
# oracles hold (single-copy: exactly one checksum-in-flight host-bus DMA
# and zero CPU touches per sender byte). A standing invariant: this must
# stay green.
audit:
	mkdir -p .benchfresh
	$(GO) run ./cmd/experiments -exp touches -benchdir .benchfresh

# The observability layer under the race detector (ledger, spans, prof).
obs-race:
	$(GO) test -race -count 1 ./internal/obs/...

# The many-flow workload engine: fairness acceptance, 256/1024-flow
# determinism, and the netmem arbiter unit tests.
load:
	$(GO) test -count 1 ./internal/load/... ./internal/cab/...

# The same suite under the race detector (the 256-flow determinism pair
# doubles as the concurrency check).
load-race:
	$(GO) test -race -count 1 ./internal/load/...

ci: vet build race bench-smoke soak obs-race load load-race audit simbench critpath recover netobs fabric benchcheck
