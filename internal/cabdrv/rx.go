package cabdrv

import (
	"repro/internal/cab"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

// hwRx runs in hardware context when the CAB has a packet in network
// memory with its first bytes auto-DMAed to a host buffer; the real work
// happens in interrupt context.
func (d *Driver) hwRx(ev *cab.RxEvent) {
	// Keep the auto-DMA pool topped up.
	d.C.ProvideRxBuf(make([]byte, d.C.Cfg.AutoDMALen))
	d.K.PostIntr("cab-rx", func(p *sim.Proc) { d.rxIntr(d.K.IntrCtx(p).In("cabdrv_rx"), ev) })
}

// rxIntr is the receive interrupt handler: it parses the link header from
// the auto-DMA buffer and passes the packet up as either a regular chain
// (small packets, or the legacy personality) or as an auto-DMA head plus
// an M_WCAB descriptor for the body still in network memory.
func (d *Driver) rxIntr(ctx kern.Ctx, ev *cab.RxEvent) {
	ctx.Charge(d.K.Mach.DriverPerPacket, kern.CatDriver)
	d.Stats.RxPackets++
	ev.Span.Enter(obs.StageDeliver)
	ev.Span.CritEv(obs.CauseIntr, "rx_intr")

	lh, err := wire.ParseLinkHdr(ev.Buf[:wire.LinkHdrLen])
	if err != nil || lh.Type != wire.EtherTypeIP {
		if ev.Pkt != nil {
			ev.Pkt.Free()
		}
		return
	}
	// ev.Pkt is nil when the adaptor delivered the frame straight from the
	// auto-DMA buffer under netmem pressure; such frames always fit in the
	// buffer (Len == HdrLen), so they take the small-packet path below.
	pktLen := ev.Len

	if !d.SingleCopy {
		d.rxLegacy(ctx, ev, pktLen)
		return
	}

	if pktLen <= ev.HdrLen {
		// The whole packet fits in the auto-DMA buffer: a regular mbuf —
		// copy avoidance is not worth it for small packets (Section
		// 4.4.3: the auto-DMA buffer size sets the smallest packet for
		// which copy avoidance is used).
		d.Stats.RxSmall++
		m := mbuf.AdoptCluster(ev.Buf, wire.LinkHdrLen, pktLen-wire.LinkHdrLen)
		m.MarkPktHdr(pktLen - wire.LinkHdrLen)
		m.SetHdr(&mbuf.Hdr{HWRxValid: true, HWRxSum: ev.BodySum, Span: ev.Span, Prov: ev.Prov})
		if ev.Pkt != nil {
			ev.Pkt.Free()
		}
		d.Input(ctx, m, d)
		return
	}

	// Large packet: head from the auto-DMA buffer, body as M_WCAB.
	d.Stats.RxLarge++
	pk := ev.Pkt
	base := ev.HdrLen
	w := &mbuf.WCAB{
		Handle:  &rxPkt{pk: pk},
		BodySum: ev.BodySum,
		Valid:   pktLen - base,
		ReadFn: func(off, n units.Size) []byte {
			return pk.Bytes()[base+off : base+off+n]
		},
		FreeFn: func() { pk.Free() },
		Dead:   func() bool { return pk.Zapped() },
	}
	w.CopyOut = func(off, n units.Size, dst [][]byte, done func(error)) {
		d.C.SDMA(&cab.SDMAReq{
			Dir: cab.ToHost, Pkt: pk,
			PktOff:  base + off,
			Scatter: dst,
			Prov:    ev.Prov,
			Done:    func(*cab.SDMAReq) { done(nil) },
			Fail:    func(*cab.SDMAReq) { done(ErrReset) },
		})
	}

	head := mbuf.AdoptCluster(ev.Buf, wire.LinkHdrLen, ev.HdrLen-wire.LinkHdrLen)
	head.MarkPktHdr(pktLen - wire.LinkHdrLen)
	head.SetHdr(&mbuf.Hdr{HWRxValid: true, HWRxSum: ev.BodySum, Span: ev.Span, Prov: ev.Prov})
	head.SetNext(mbuf.NewWCAB(w, 0, pktLen-base, nil))
	d.Input(ctx, head, d)
}

// rxLegacy implements the unmodified driver's receive: the whole packet is
// DMAed into kernel buffers before the stack sees it, and the hardware
// checksum is ignored (the unmodified stack verifies in software).
func (d *Driver) rxLegacy(ctx kern.Ctx, ev *cab.RxEvent, pktLen units.Size) {
	head := mbuf.AdoptCluster(ev.Buf, wire.LinkHdrLen, minSize(pktLen, ev.HdrLen)-wire.LinkHdrLen)
	head.MarkPktHdr(pktLen - wire.LinkHdrLen)
	head.AttachSpan(ev.Span)
	head.AttachProv(ev.Prov)
	if pktLen <= ev.HdrLen {
		if ev.Pkt != nil {
			ev.Pkt.Free()
		}
		d.Input(ctx, head, d)
		return
	}
	rest := pktLen - ev.HdrLen
	var scatter [][]byte
	bufs := make([][]byte, 0, (rest+mbuf.MCLBYTES-1)/mbuf.MCLBYTES)
	for off := units.Size(0); off < rest; off += mbuf.MCLBYTES {
		n := rest - off
		if n > mbuf.MCLBYTES {
			n = mbuf.MCLBYTES
		}
		b := make([]byte, n)
		bufs = append(bufs, b)
		scatter = append(scatter, b)
	}
	pk := ev.Pkt
	d.C.SDMA(&cab.SDMAReq{
		Dir: cab.ToHost, Pkt: pk,
		PktOff:  ev.HdrLen,
		Scatter: scatter,
		Prov:    ev.Prov,
		Span:    ev.Span,
		Done: func(*cab.SDMAReq) {
			pk.Free()
			d.K.PostIntr("cab-rx-dma", func(p *sim.Proc) {
				tail := head
				for _, b := range bufs {
					c := mbuf.AdoptCluster(b, 0, units.Size(len(b)))
					tail.SetNext(c)
					tail = c
				}
				d.Input(d.K.IntrCtx(p).In("cabdrv_rx"), head, d)
			})
		},
	})
}

func minSize(a, b units.Size) units.Size {
	if a < b {
		return a
	}
	return b
}
