// Package cabdrv is the CAB device driver. Beyond the traditional output
// and input entry points, it provides the copy-in and copy-out routines the
// single-copy software architecture requires (Section 3): all
// data-touching work the stack performed symbolically on descriptors is
// realized here as SDMA transfers with outboard checksumming.
//
// The driver supports two personalities:
//
//   - SingleCopy (the modified stack): transmit packets may carry M_UIO
//     descriptors, which are gathered straight from (pinned) user pages
//     into network memory with the checksum computed en route; completed
//     packets are reported back to the transport so the socket-buffer
//     range can become M_WCAB. Retransmissions of M_WCAB data use a
//     header-only SDMA overlay that reuses the saved body checksum.
//     Receive delivers the auto-DMAed packet head plus an M_WCAB
//     descriptor for the body, with the hardware checksum attached.
//
//   - Legacy (the unmodified stack): packets are fully materialized kernel
//     buffers; the CAB is used as a plain DMA device and checksums are the
//     stack's (software) problem.
package cabdrv

import (
	"errors"
	"fmt"

	"repro/internal/cab"
	"repro/internal/hippi"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/netif"
	"repro/internal/obs"
	"repro/internal/obs/ledger"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

// ErrReset is the distinct failure a transfer reports when the adaptor's
// firmware reset wiped it mid-flight: the outboard bytes are gone and the
// operation cannot be completed or retried against the same packet.
var ErrReset = errors.New("cabdrv: adaptor reset during transfer")

// Stats counts driver activity.
type Stats struct {
	TxPackets       int
	RxPackets       int
	TxOverlays      int // header-only retransmissions
	TxFallbackReads int // partial-WCAB retransmissions that re-read outboard data
	TxAbandoned     int // queued packets dropped after their connection tore down
	TxStaleAcked    int // queued retransmissions dropped: data acked (unpinned) in the meantime
	Converted       int // descriptor chains converted at the legacy entry point
	RxSmall         int // packets delivered entirely from the auto-DMA buffer
	RxLarge         int // packets delivered as auto-DMA head + M_WCAB body
	Resets          int // firmware resets handled (rx re-armed, stack notified)
	TxResetKilled   int // transmit SDMAs failed back to their owners by a reset
}

// Driver is one CAB driver instance.
type Driver struct {
	K          *kern.Kernel
	C          *cab.CAB
	Input      netif.InputFunc
	SingleCopy bool
	Stats      Stats

	// ResetNotify, installed by the host plumbing (core.AddHost wires it
	// to the stack's DeviceReset sweep), runs in interrupt context after a
	// firmware reset once receive is re-armed: connections whose
	// retransmit or reassembly state lived on the adaptor must be failed,
	// everything else recovers via retransmission.
	ResetNotify func(kern.Ctx, netif.Interface)

	name string
	mtu  units.Size

	txQ           *sim.Queue[*txJob]
	pendingTxSDMA int
	doneWork      []func(kern.Ctx)
}

type txJob struct {
	m   *mbuf.Mbuf
	dst netif.LinkAddr
}

// outPkt is the WCAB handle for transmit packets resident outboard.
type outPkt struct {
	pk *cab.Packet
	// payloadOff is where user payload starts within the packet (link +
	// IP + transport headers).
	payloadOff units.Size
	// overlays counts header-only retransmissions of this packet. The
	// overlay path reuses the body checksum saved at first transmission;
	// if that sum is bad (checksum-engine fault), every overlay inherits
	// it, so after maxOverlaysPerPacket the driver stops trusting it and
	// degrades to the multi-copy fallback-read path, which re-reads the
	// data and computes a fresh checksum.
	overlays int
}

// maxOverlaysPerPacket bounds header-only retransmissions per outboard
// packet before the driver falls back to re-reading the data.
const maxOverlaysPerPacket = 3

// rxPkt is the WCAB handle for receive packets.
type rxPkt struct {
	pk *cab.Packet
}

// Default geometry: the paper's MTU is 32 KBytes.
const (
	// DefaultMTU is the network-layer MTU, sized so the TCP payload of a
	// full segment is exactly the paper's 32 KByte MTU worth of data.
	DefaultMTU = 32*units.KB + wire.IPHdrLen + wire.TCPHdrLen
	// rxBufCount is how many auto-DMA buffers the driver keeps posted.
	rxBufCount = 64
	// doneBatchLimit bounds how much completion work may accumulate
	// before forcing an interrupt even with SDMAs still pending.
	doneBatchLimit = 8
)

// New attaches a driver to adaptor c with stack input fn.
func New(name string, k *kern.Kernel, c *cab.CAB, singleCopy bool) *Driver {
	d := &Driver{
		K:          k,
		C:          c,
		SingleCopy: singleCopy,
		name:       name,
		mtu:        DefaultMTU,
		txQ:        sim.NewQueue[*txJob](k.Eng),
	}
	for i := 0; i < rxBufCount; i++ {
		c.ProvideRxBuf(make([]byte, c.Cfg.AutoDMALen))
	}
	c.OnRx = d.hwRx
	c.OnReset = d.hwReset
	k.Eng.Go(name+"/txd", d.txd)
	if r := k.Obs; r != nil {
		r.Func("cabdrv.tx_pkts", func() int64 { return int64(d.Stats.TxPackets) })
		r.Func("cabdrv.rx_pkts", func() int64 { return int64(d.Stats.RxPackets) })
		r.Func("cabdrv.tx_overlays", func() int64 { return int64(d.Stats.TxOverlays) })
		r.Func("cabdrv.tx_fallback_reads", func() int64 { return int64(d.Stats.TxFallbackReads) })
		r.Func("cabdrv.legacy_converted", func() int64 { return int64(d.Stats.Converted) })
		r.Func("cabdrv.auto_dma_hits", func() int64 { return int64(d.Stats.RxSmall) })
		r.Func("cabdrv.wcab_rx", func() int64 { return int64(d.Stats.RxLarge) })
		r.Func("cabdrv.resets", func() int64 { return int64(d.Stats.Resets) })
		r.Func("cabdrv.tx_reset_killed", func() int64 { return int64(d.Stats.TxResetKilled) })
	}
	return d
}

// hwReset runs in hardware context after the CAB wiped itself. Every
// queued descriptor was already killed (their Fail hooks ran), so the
// driver's remaining duties are re-arming the auto-DMA receive pool —
// without it, surviving connections could never hear another segment —
// and handing the event to the stack in interrupt context so it can fail
// the connections whose state died with the adaptor.
func (d *Driver) hwReset() {
	d.Stats.Resets++
	for i := 0; i < rxBufCount; i++ {
		d.C.ProvideRxBuf(make([]byte, d.C.Cfg.AutoDMALen))
	}
	d.K.PostIntr("cab-reset", func(p *sim.Proc) {
		ctx := d.K.IntrCtx(p).In("cabdrv_reset")
		if d.ResetNotify != nil {
			d.ResetNotify(ctx, d)
		}
	})
}

// Name implements netif.Interface.
func (d *Driver) Name() string { return d.name }

// MTU implements netif.Interface.
func (d *Driver) MTU() units.Size { return d.mtu }

// SetMTU overrides the network-layer MTU (test configurations).
func (d *Driver) SetMTU(m units.Size) { d.mtu = m }

// Caps implements netif.Interface.
func (d *Driver) Caps() netif.Caps { return netif.Caps{SingleCopy: d.SingleCopy} }

// hdrFlow extracts the flow tag the transport stamped on the packet header
// (0: unattributed control traffic).
func hdrFlow(h *mbuf.Hdr) int {
	if h == nil {
		return 0
	}
	return h.Flow
}

// AdmitTx implements netif.Admitter: transports call it (in process
// context, above the transmit daemon) before committing n payload bytes to
// the send path, so the netmem arbiter can throttle over-share flows
// without wedging the shared daemon. Without an arbiter it admits
// unconditionally.
func (d *Driver) AdmitTx(p *sim.Proc, flow int, n units.Size) {
	if d.C.Arb == nil {
		return
	}
	d.C.Arb.AdmitTx(p, flow, wire.LinkHdrLen+n)
}

// Output implements netif.Interface: it queues the packet for the transmit
// daemon, converting descriptor chains first when running as a legacy
// driver.
func (d *Driver) Output(ctx kern.Ctx, m *mbuf.Mbuf, dst netif.LinkAddr) {
	ctx = ctx.In("cabdrv")
	ctx.Charge(d.K.Mach.DriverPerPacket, kern.CatDriver)
	if m.IsPktHdr() && mbuf.ChainLen(m) != m.PktLen() {
		panic(fmt.Sprintf("cabdrv: packet length %v does not match header %v (types %v)",
			mbuf.ChainLen(m), m.PktLen(), mbuf.Types(m)))
	}
	if !d.SingleCopy && mbuf.HasDescriptors(m) {
		d.Stats.Converted++
		m = netif.ConvertForLegacy(ctx, m)
	}
	m.Span().CritEv(obs.CauseCPU, "txq_put")
	d.txQ.Put(&txJob{m: m, dst: dst})
}

// txd is the transmit daemon: it forms complete packets in network memory
// (the CAB requires fully formed, page-aligned packets, Section 2.2) and
// starts media transmission as each SDMA completes.
func (d *Driver) txd(p *sim.Proc) {
	for {
		job := d.txQ.Get(p)
		job.m.Span().CritEv(obs.CauseQueue, "txq_get")
		if d.SingleCopy {
			d.sendSingleCopy(p, job)
		} else {
			d.sendLegacy(p, job)
		}
	}
}

// sendSingleCopy transmits a (possibly descriptor-bearing) packet.
func (d *Driver) sendSingleCopy(p *sim.Proc, job *txJob) {
	m := job.m
	hdrH := m.Hdr()
	if txAbandoned(m) || txDead(m) {
		d.dropAbandoned(job, nil)
		return
	}
	if txStale(m) {
		d.dropStale(job, nil)
		return
	}

	if op, prefixLen, ok := d.overlayCandidate(m); ok {
		d.sendOverlay(job, op, prefixLen)
		return
	}

	ipLen := mbuf.ChainLen(m)
	pktLen := wire.LinkHdrLen + ipLen
	t0 := d.K.Eng.Now()
	pk := d.C.AllocPacketWaitFlow(p, pktLen, hdrFlow(hdrH))
	if d.K.Eng.Now() > t0 {
		// The allocation blocked on network memory (or its arbiter).
		m.Span().CritEv(obs.CauseNetmem, "netmem_tx")
	}
	// The allocation may have blocked; the connection can tear down (or a
	// firmware reset can wipe referenced outboard packets) in the meantime.
	if txAbandoned(m) || txDead(m) {
		d.dropAbandoned(job, pk)
		return
	}
	// Likewise, an ACK can land while the job queued or the allocation
	// blocked: a retransmission whose data was acknowledged (and unpinned)
	// must not reach the DMA engine.
	if txStale(m) {
		d.dropStale(job, pk)
		return
	}

	lh := make([]byte, wire.LinkHdrLen)
	wire.LinkHdr{
		Dst: uint32(job.dst), Src: uint32(d.C.NodeID()),
		Type: wire.EtherTypeIP, Len: uint32(pktLen),
	}.Marshal(lh)

	gather := [][]byte{lh}
	pkOff := units.Size(wire.LinkHdrLen)
	for cur := m; cur != nil; cur = cur.Next() {
		switch cur.Type() {
		case mbuf.TData, mbuf.TCluster:
			gather = append(gather, cur.Bytes())
		case mbuf.TUIO:
			u := cur.UIO()
			for _, seg := range u.Segments(cur.Off(), cur.Len()) {
				if !u.Space.Pinned(seg.Addr, seg.Len) {
					panic(fmt.Sprintf("cabdrv: DMA from unpinned user pages [%v,+%v)", seg.Addr, seg.Len))
				}
				gather = append(gather, u.Space.Bytes(seg.Addr, seg.Len))
			}
		case mbuf.TWCAB:
			// Partial retransmission of outboard data whose boundaries
			// shifted (e.g. after a partial ACK): read it back. Rare.
			w := cur.WCABRef()
			d.Stats.TxFallbackReads++
			b := make([]byte, cur.Len())
			copy(b, w.ReadFn(cur.Off(), cur.Len()))
			d.K.Led.TouchP(m.Prov(), pkOff, cur.Len(), ledger.CPUCopy, "cabdrv", 0)
			gather = append(gather, b)
		}
		pkOff += cur.Len()
	}

	req := &cab.SDMAReq{Dir: cab.ToCAB, Pkt: pk, Gather: gather, Prov: m.Prov(), Span: m.Span()}
	if hdrH != nil && hdrH.NeedCsum {
		req.Csum = true
		req.CsumOff = wire.LinkHdrLen + wire.IPHdrLen + hdrH.CsumOff
		req.CsumSkip = wire.LinkHdrLen + wire.IPHdrLen + hdrH.CsumSkip
	}
	d.pendingTxSDMA++
	req.Done = func(*cab.SDMAReq) { d.txSDMADone(job, pk, hdrH) }
	req.Fail = func(*cab.SDMAReq) { d.txSDMAFail(job, hdrH) }
	m.Span().Enter(obs.StageSDMA)
	d.C.SDMA(req)
}

// txSDMADone runs in hardware context when a transmit packet is fully
// formed outboard: media transmission starts immediately (the TCP window
// was checked before the packet was cut, Section 2.2), and the host-side
// completion work is batched for the next interrupt.
func (d *Driver) txSDMADone(job *txJob, pk *cab.Packet, hdrH *mbuf.Hdr) {
	d.Stats.TxPackets++
	// Ownership of the outboard packet: the transport takes it (as
	// retransmittable M_WCAB state) only when it asked for the conversion
	// via OnOutboard. Everything else — control segments, UDP datagrams,
	// raw sends — is freed once the frame has left the adaptor.
	transportOwns := hdrH != nil && hdrH.NeedCsum && hdrH.OnOutboard != nil &&
		!hdrH.FreeAfterSend
	var mdmaDone func()
	if !transportOwns {
		mdmaDone = func() { pk.Free() }
	}
	sp := job.m.Span()
	sp.Enter(obs.StageWire)
	d.C.MDMATx(pk, hippi.NodeID(job.dst), sp, job.m.Prov(), mdmaDone)

	m := job.m
	d.completeTx(func(ctx kern.Ctx) {
		if transportOwns {
			payloadOff := wire.LinkHdrLen + wire.IPHdrLen + hdrH.CsumSkip
			w := &mbuf.WCAB{
				Handle:  &outPkt{pk: pk, payloadOff: payloadOff},
				BodySum: pk.BodySum,
				Valid:   pk.Len() - payloadOff,
				ReadFn: func(off, n units.Size) []byte {
					return pk.Bytes()[payloadOff+off : payloadOff+off+n]
				},
				FreeFn: func() { pk.Free() },
				Dead:   func() bool { return pk.Zapped() },
			}
			hdrH.OnOutboard(w)
		} else {
			// No transport callback (UDP, raw): notify the displaced
			// descriptor owners directly — their bytes are outboard.
			for cur := m; cur != nil; cur = cur.Next() {
				if cur.Type() == mbuf.TUIO {
					if ch := cur.Hdr(); ch != nil && ch.Owner != nil {
						ch.Owner.DMADone(cur.Len())
					}
				}
			}
		}
		mbuf.FreeChain(m)
	})
}

// txSDMAFail runs in hardware context when a firmware reset kills a
// transmit SDMA: the packet never formed outboard and cannot be sent. For
// sends the transport does not own (UDP, raw) the displaced descriptor
// owners are notified so blocked writers unwedge; transport-owned sends
// are resolved by the stack's device-reset sweep, which tears the
// connection down and releases its send buffer (notifying here too would
// double-release the writer's DMA tracker).
func (d *Driver) txSDMAFail(job *txJob, hdrH *mbuf.Hdr) {
	d.Stats.TxResetKilled++
	transportOwns := hdrH != nil && hdrH.NeedCsum && hdrH.OnOutboard != nil &&
		!hdrH.FreeAfterSend
	m := job.m
	d.completeTx(func(kern.Ctx) {
		if !transportOwns {
			for cur := m; cur != nil; cur = cur.Next() {
				if cur.Type() == mbuf.TUIO {
					if ch := cur.Hdr(); ch != nil && ch.Owner != nil {
						ch.Owner.DMADone(cur.Len())
					}
				}
			}
		}
		mbuf.FreeChain(m)
	})
}

// txAbandoned reports whether any descriptor in the chain was released by
// a connection teardown while the packet waited in the transmit queue (the
// queued copies share the send buffer's headers).
func txAbandoned(m *mbuf.Mbuf) bool {
	for cur := m; cur != nil; cur = cur.Next() {
		if cur.Type() == mbuf.TUIO {
			if h := cur.Hdr(); h != nil && h.Abandoned {
				return true
			}
		}
	}
	return false
}

// txDead reports whether the chain references outboard data wiped by a
// firmware reset — such a packet can never be reconstructed from the
// descriptor (the bytes existed only in network memory), so the job is
// dropped and the stack's device-reset sweep resolves the connection.
func txDead(m *mbuf.Mbuf) bool {
	for cur := m; cur != nil; cur = cur.Next() {
		if cur.Type() == mbuf.TWCAB {
			w := cur.WCABRef()
			if w.Dead != nil && w.Dead() {
				return true
			}
		}
	}
	return false
}

// dropAbandoned discards a transmit job whose connection tore down before
// the DMA was issued; its user pages are no longer pinned.
func (d *Driver) dropAbandoned(job *txJob, pk *cab.Packet) {
	d.Stats.TxAbandoned++
	if pk != nil {
		pk.Free()
	}
	mbuf.FreeChain(job.m)
}

// txStale reports whether the chain references user pages that are no
// longer pinned: the segment's data was acknowledged — and its pages
// released — while the job sat in the transmit queue (a retransmission
// that lost its race with the ACK, seen under fabric-scale RTTs).
func txStale(m *mbuf.Mbuf) bool {
	for cur := m; cur != nil; cur = cur.Next() {
		if cur.Type() != mbuf.TUIO {
			continue
		}
		u := cur.UIO()
		for _, seg := range u.Segments(cur.Off(), cur.Len()) {
			if !u.Space.Pinned(seg.Addr, seg.Len) {
				return true
			}
		}
	}
	return false
}

// dropStale discards a transmit job made redundant by an ACK that
// arrived while it was queued.
func (d *Driver) dropStale(job *txJob, pk *cab.Packet) {
	d.Stats.TxStaleAcked++
	if pk != nil {
		pk.Free()
	}
	mbuf.FreeChain(job.m)
}

// sendOverlay retransmits an outboard packet by DMAing only the fresh
// headers over the old ones; the checksum engine combines the new seed
// with the body checksum it saved on the first transmission (Section 4.3).
func (d *Driver) sendOverlay(job *txJob, op *outPkt, prefixLen units.Size) {
	m := job.m
	hdrH := m.Hdr()
	d.Stats.TxOverlays++
	op.overlays++

	hb := make([]byte, prefixLen)
	mbuf.ReadRange(m, 0, prefixLen, hb)
	lh := make([]byte, wire.LinkHdrLen)
	wire.LinkHdr{
		Dst: uint32(job.dst), Src: uint32(d.C.NodeID()),
		Type: wire.EtherTypeIP, Len: uint32(op.pk.Len()),
	}.Marshal(lh)

	req := &cab.SDMAReq{
		Dir: cab.ToCAB, Pkt: op.pk,
		Gather:     [][]byte{lh, hb},
		HeaderOnly: true,
		Prov:       m.Prov(),
		Span:       m.Span(),
	}
	if hdrH != nil && hdrH.NeedCsum {
		req.Csum = true
		req.CsumOff = wire.LinkHdrLen + wire.IPHdrLen + hdrH.CsumOff
		req.CsumSkip = wire.LinkHdrLen + wire.IPHdrLen + hdrH.CsumSkip
	}
	d.pendingTxSDMA++
	req.Done = func(*cab.SDMAReq) {
		d.Stats.TxPackets++
		sp := m.Span()
		sp.Enter(obs.StageWire)
		d.C.MDMATx(op.pk, hippi.NodeID(job.dst), sp, m.Prov(), nil)
		d.completeTx(func(kern.Ctx) { mbuf.FreeChain(m) })
	}
	req.Fail = func(*cab.SDMAReq) {
		// The reset wiped the outboard packet under the overlay; the
		// connection owning it is resolved by the device-reset sweep.
		d.Stats.TxResetKilled++
		d.completeTx(func(kern.Ctx) { mbuf.FreeChain(m) })
	}
	m.Span().Enter(obs.StageSDMA)
	d.C.SDMA(req)
}

// overlayCandidate reports whether packet m is a retransmission whose
// entire payload is one of our outboard packets, unshifted — the
// header-only fast path.
func (d *Driver) overlayCandidate(m *mbuf.Mbuf) (*outPkt, units.Size, bool) {
	prefixLen := units.Size(0)
	cur := m
	for cur != nil && !cur.Type().IsDescriptor() {
		prefixLen += cur.Len()
		cur = cur.Next()
	}
	if cur == nil || cur.Type() != mbuf.TWCAB || cur.Next() != nil {
		return nil, 0, false
	}
	w := cur.WCABRef()
	op, ok := w.Handle.(*outPkt)
	if !ok || op.pk.Freed() || op.pk.Owner() != d.C {
		return nil, 0, false
	}
	if op.overlays >= maxOverlaysPerPacket {
		return nil, 0, false
	}
	if cur.Off() != 0 || cur.Len() != w.Valid {
		return nil, 0, false
	}
	if prefixLen+wire.LinkHdrLen != op.payloadOff {
		return nil, 0, false
	}
	return op, prefixLen, true
}

// sendLegacy transmits a fully materialized kernel-buffer packet, using
// the CAB as a plain DMA device (the unmodified stack's path). The
// outboard packet is freed after the media send: retransmission state
// lives in the kernel socket buffers.
func (d *Driver) sendLegacy(p *sim.Proc, job *txJob) {
	m := job.m
	ipLen := mbuf.ChainLen(m)
	pktLen := wire.LinkHdrLen + ipLen
	t0 := d.K.Eng.Now()
	pk := d.C.AllocPacketWaitFlow(p, pktLen, hdrFlow(m.Hdr()))
	if d.K.Eng.Now() > t0 {
		m.Span().CritEv(obs.CauseNetmem, "netmem_tx")
	}

	lh := make([]byte, wire.LinkHdrLen)
	wire.LinkHdr{
		Dst: uint32(job.dst), Src: uint32(d.C.NodeID()),
		Type: wire.EtherTypeIP, Len: uint32(pktLen),
	}.Marshal(lh)
	gather := [][]byte{lh}
	for cur := m; cur != nil; cur = cur.Next() {
		gather = append(gather, cur.Bytes())
	}
	d.pendingTxSDMA++
	m.Span().Enter(obs.StageSDMA)
	d.C.SDMA(&cab.SDMAReq{
		Dir: cab.ToCAB, Pkt: pk, Gather: gather, Prov: m.Prov(), Span: m.Span(),
		Done: func(*cab.SDMAReq) {
			d.Stats.TxPackets++
			sp := m.Span()
			sp.Enter(obs.StageWire)
			d.C.MDMATx(pk, hippi.NodeID(job.dst), sp, m.Prov(), func() { pk.Free() })
			d.completeTx(func(kern.Ctx) { mbuf.FreeChain(m) })
		},
		Fail: func(*cab.SDMAReq) {
			// The frame is lost with the reset; the data still lives in
			// kernel socket buffers, so TCP recovers via retransmission.
			d.Stats.TxResetKilled++
			d.completeTx(func(kern.Ctx) { mbuf.FreeChain(m) })
		},
	})
}

// completeTx batches host-side completion work, raising one interrupt when
// the SDMA engine drains (or the batch grows large) — the paper's "only
// the final packet's SDMA request needs to be flagged to interrupt the
// host" discipline (Section 2.2).
func (d *Driver) completeTx(work func(kern.Ctx)) {
	d.doneWork = append(d.doneWork, work)
	d.pendingTxSDMA--
	if d.pendingTxSDMA == 0 || len(d.doneWork) >= doneBatchLimit {
		list := d.doneWork
		d.doneWork = nil
		d.K.PostIntr("cab-tx-done", func(p *sim.Proc) {
			ctx := d.K.IntrCtx(p).In("cabdrv_txdone")
			for _, w := range list {
				w(ctx)
			}
		})
	}
}
