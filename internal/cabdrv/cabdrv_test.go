package cabdrv

import (
	"bytes"
	"testing"

	"repro/internal/cab"
	"repro/internal/checksum"
	"repro/internal/cost"
	"repro/internal/hippi"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/mem"
	"repro/internal/netif"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

// rig is two CAB drivers on one switch with capture of delivered packets.
type rig struct {
	eng    *sim.Engine
	ka, kb *kern.Kernel
	ca, cb *cab.CAB
	da, db *Driver
	// rxB captures packets delivered to B's "stack".
	rxB []*mbuf.Mbuf
}

func newRig(t *testing.T, singleCopy bool) *rig {
	t.Helper()
	eng := sim.NewEngine(1)
	net := hippi.NewNetwork(eng, hippi.LineRate, 5*units.Microsecond)
	r := &rig{eng: eng}
	r.ka = kern.New("A", eng, cost.Alpha400())
	r.kb = kern.New("B", eng, cost.Alpha400())
	r.ca = cab.New(eng, r.ka.Mach, net, 1, cab.DefaultConfig())
	r.cb = cab.New(eng, r.kb.Mach, net, 2, cab.DefaultConfig())
	r.da = New("cab0", r.ka, r.ca, singleCopy)
	r.db = New("cab0", r.kb, r.cb, singleCopy)
	r.da.Input = func(kern.Ctx, *mbuf.Mbuf, netif.Interface) {}
	r.db.Input = func(ctx kern.Ctx, m *mbuf.Mbuf, from netif.Interface) {
		r.rxB = append(r.rxB, m)
	}
	return r
}

// ipPacket builds a valid IP packet chain around the given transport
// chain (prepending in place when the head has header room, exactly like
// the network layer).
func ipPacket(t *testing.T, payload *mbuf.Mbuf, proto uint8) *mbuf.Mbuf {
	t.Helper()
	n := mbuf.ChainLen(payload)
	hdr := wire.IPHdr{TotLen: wire.IPHdrLen + n, ID: 1, TTL: 30, Proto: proto,
		Src: 0x0a000001, Dst: 0x0a000002}
	// Prepend in place, as IPOutput does, so the packet-level mbuf.Hdr
	// on the chain head survives.
	m := payload.Prepend(wire.IPHdrLen)
	hdr.Marshal(m.Bytes()[:wire.IPHdrLen])
	if !m.IsPktHdr() {
		m.MarkPktHdr(wire.IPHdrLen + n)
	}
	return m
}

func TestOutputDeliversKernelBufferPacket(t *testing.T) {
	r := newRig(t, true)
	payload := make([]byte, 5000)
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	r.eng.Go("send", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		r.da.Output(ctx, ipPacket(t, mbuf.NewCluster(payload), 99), 2)
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if len(r.rxB) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(r.rxB))
	}
	got := mbuf.Materialize(r.rxB[0])
	if !bytes.Equal(got[wire.IPHdrLen:], payload) {
		t.Fatal("payload corrupted")
	}
	// The packet-length invariant must hold on delivery.
	if r.rxB[0].PktLen() != mbuf.ChainLen(r.rxB[0]) {
		t.Fatalf("pktlen %v != chain %v", r.rxB[0].PktLen(), mbuf.ChainLen(r.rxB[0]))
	}
}

func TestSingleCopyRxDeliversWCAB(t *testing.T) {
	r := newRig(t, true)
	big := make([]byte, 20000)
	r.eng.Go("send", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		r.da.Output(ctx, ipPacket(t, mbuf.NewCluster(big[:8000]), 99), 2)
		r.da.Output(ctx, ipPacket(t, mbuf.NewData(big[:100]), 99), 2)
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if len(r.rxB) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(r.rxB))
	}
	// Large packet: head + M_WCAB body; small packet: regular only.
	if !mbuf.HasDescriptors(r.rxB[0]) {
		t.Fatal("large packet should carry an M_WCAB descriptor")
	}
	if mbuf.HasDescriptors(r.rxB[1]) {
		t.Fatal("small packet should be regular")
	}
	if r.db.Stats.RxLarge != 1 || r.db.Stats.RxSmall != 1 {
		t.Fatalf("rx stats: %+v", r.db.Stats)
	}
	// Hardware checksum info must be attached in both cases.
	for i, m := range r.rxB {
		if h := m.Hdr(); h == nil || !h.HWRxValid {
			t.Fatalf("packet %d lacks hardware checksum", i)
		}
	}
}

func TestLegacyRxFullyMaterialized(t *testing.T) {
	r := newRig(t, false)
	r.eng.Go("send", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		r.da.Output(ctx, ipPacket(t, mbuf.NewCluster(make([]byte, 8000)), 99), 2)
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if len(r.rxB) != 1 {
		t.Fatalf("delivered %d packets", len(r.rxB))
	}
	if mbuf.HasDescriptors(r.rxB[0]) {
		t.Fatal("legacy driver must deliver regular mbufs only")
	}
	if h := r.rxB[0].Hdr(); h != nil && h.HWRxValid {
		t.Fatal("legacy driver must not attach hardware checksums")
	}
	// Network memory fully drained after materialization.
	if r.cb.FreePages() != r.cb.TotalPages() {
		t.Fatal("legacy rx leaked network memory")
	}
}

func TestLegacyOutputConvertsDescriptors(t *testing.T) {
	r := newRig(t, false)
	space := mem.NewAddrSpace("u", 1*units.MB, r.ka.Mach.PageSize)
	buf := space.Alloc(4000, 4)
	u := mem.NewUIO(buf)
	r.eng.Go("send", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		r.da.Output(ctx, ipPacket(t, mbuf.NewUIO(u, 0, 4000, nil), 99), 2)
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if r.da.Stats.Converted != 1 {
		t.Fatalf("conversions = %d, want 1", r.da.Stats.Converted)
	}
	if len(r.rxB) != 1 {
		t.Fatal("packet lost")
	}
}

func TestUIOGatherWithOutboardChecksum(t *testing.T) {
	r := newRig(t, true)
	space := mem.NewAddrSpace("u", 1*units.MB, r.ka.Mach.PageSize)
	buf := space.Alloc(6000, 4)
	for i := range buf.Bytes() {
		buf.Bytes()[i] = byte(i * 13)
	}
	u := mem.NewUIO(buf)
	var w *mbuf.WCAB
	r.eng.Go("send", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		space.Pin(buf.Addr, buf.Len)
		// A TCP-style packet: transport header + UIO payload, with the
		// outboard checksum directive and seed.
		segTotal := wire.TCPHdrLen + units.Size(6000)
		th := wire.TCPHdr{SPort: 1, DPort: 2, Seq: 100, Ack: 0, Flags: wire.FlagACK}
		hb := make([]byte, wire.TCPHdrLen)
		th.Marshal(hb)
		ps := checksum.PseudoHeaderSum(0x0a000001, 0x0a000002, wire.ProtoTCP, uint32(segTotal))
		seed := checksum.Fold(checksum.Add(ps, checksum.Sum(hb)))
		th.Csum = seed
		th.Marshal(hb)
		hm := mbuf.NewData(hb)
		hm.SetNext(mbuf.NewUIO(u, 0, 6000, nil))
		hm.MarkPktHdr(segTotal)
		hm.SetHdr(&mbuf.Hdr{
			NeedCsum: true,
			CsumOff:  wire.TCPCsumOff,
			CsumSkip: wire.TCPHdrLen,
			CsumSeed: uint32(seed),
			OnOutboard: func(got *mbuf.WCAB) {
				w = got
				got.Ref()
			},
		})
		r.da.Output(ctx, ipPacket(t, hm, wire.ProtoTCP), 2)
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if len(r.rxB) != 1 {
		t.Fatal("packet lost")
	}
	// The delivered frame's transport checksum must verify end to end.
	m := r.rxB[0]
	seg := mbuf.Materialize(m)[wire.IPHdrLen:]
	ps := checksum.PseudoHeaderSum(0x0a000001, 0x0a000002, wire.ProtoTCP, uint32(len(seg)))
	if !checksum.VerifySum(checksum.Add(ps, checksum.Sum(seg))) {
		t.Fatal("hardware-produced checksum invalid")
	}
	// The transport received its WCAB handle with the saved body sum.
	if w == nil {
		t.Fatal("OnOutboard not invoked")
	}
	if w.Valid != 6000 {
		t.Fatalf("WCAB valid = %v, want 6000", w.Valid)
	}
	if !bytes.Equal(w.ReadFn(0, 6000), buf.Bytes()) {
		t.Fatal("outboard payload mismatch")
	}
	w.Unref() // frees the outboard packet
	if r.ca.FreePages() != r.ca.TotalPages() {
		t.Fatal("outboard packet not freed on unref")
	}
}

func TestMismatchedPktLenPanics(t *testing.T) {
	r := newRig(t, true)
	defer r.eng.KillAll()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on corrupt packet length")
		}
	}()
	r.eng.Go("send", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		m := mbuf.NewData(make([]byte, 40))
		m.MarkPktHdr(999) // lies about its length
		r.da.Output(ctx, m, 2)
	})
	r.eng.Run()
}
