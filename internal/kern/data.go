package kern

import (
	"repro/internal/checksum"
	"repro/internal/mem"
	"repro/internal/obs/ledger"
	"repro/internal/sim"
	"repro/internal/units"
)

// Data-touching primitives. These are the only places the simulated CPU
// reads or writes packet payload: the per-byte costs the paper sets out to
// eliminate all flow through here, so the accounting in CatCopy and
// CatCsum is exactly the "per-byte overhead" of the analysis in
// Section 7.3. region is the working-set size used by the cache-locality
// model.

// CopyBytes copies src into dst charging CPU copy time to t.
func (k *Kernel) CopyBytes(p *sim.Proc, t *Task, dst, src []byte, region units.Size) {
	n := units.Size(len(src))
	k.Work(p, t, k.Mach.CopyTime(n, region), CatCopy, true)
	k.Led.Unattributed(ledger.CPUCopy, n)
	copy(dst, src)
}

// CopyFromUIO copies n bytes at offset off of u into dst, charging copy
// time (the socket layer's copyin on the traditional path).
func (k *Kernel) CopyFromUIO(p *sim.Proc, t *Task, u *mem.UIO, off, n units.Size, dst []byte, region units.Size) {
	k.Work(p, t, k.Mach.CopyTime(n, region), CatCopy, true)
	k.Led.Unattributed(ledger.CPUCopy, n)
	u.ReadAt(dst, off, n)
}

// CopyToUIO copies src into u at offset off, charging copy time (the
// traditional receive copyout).
func (k *Kernel) CopyToUIO(p *sim.Proc, t *Task, u *mem.UIO, off units.Size, src []byte, region units.Size) {
	k.Work(p, t, k.Mach.CopyTime(units.Size(len(src)), region), CatCopy, true)
	k.Led.Unattributed(ledger.CPUCopy, units.Size(len(src)))
	u.WriteAt(src, off)
}

// ChecksumRead computes the ones-complement partial sum of b in software,
// charging checksum-read time to t.
func (k *Kernel) ChecksumRead(p *sim.Proc, t *Task, b []byte, region units.Size) uint32 {
	k.Work(p, t, k.Mach.CsumTime(units.Size(len(b)), region), CatCsum, true)
	k.Led.Unattributed(ledger.CPUCsum, units.Size(len(b)))
	return checksum.Sum(b)
}

// IntrChecksumRead is ChecksumRead in interrupt context (receive-side
// software verification on the traditional path).
func (k *Kernel) IntrChecksumRead(p *sim.Proc, b []byte, region units.Size) uint32 {
	k.IntrWork(p, k.Mach.CsumTime(units.Size(len(b)), region), CatCsum)
	k.Led.Unattributed(ledger.CPUCsum, units.Size(len(b)))
	return checksum.Sum(b)
}

// IntrCopyBytes copies src into dst charging copy time in interrupt
// context (e.g. WCAB→regular conversion for in-kernel consumers).
func (k *Kernel) IntrCopyBytes(p *sim.Proc, dst, src []byte, region units.Size) {
	k.IntrWork(p, k.Mach.CopyTime(units.Size(len(src)), region), CatCopy)
	k.Led.Unattributed(ledger.CPUCopy, units.Size(len(src)))
	copy(dst, src)
}

// sum is a local alias so Ctx helpers can checksum without importing the
// checksum package at every call site.
func sum(b []byte) uint32 { return checksum.Sum(b) }
