package kern

import (
	"repro/internal/mem"
	"repro/internal/obs/ledger"
	"repro/internal/obs/prof"
	"repro/internal/sim"
	"repro/internal/units"
)

// Ctx identifies the execution context protocol code runs in: either a
// task's process context (a system call on its behalf) or interrupt
// context. It lets shared stack code charge CPU time correctly without
// caring who called it.
//
// Ctx also carries the layer-stack position for the virtual-time profiler:
// each layer pushes a frame with In ("socket", "tcp_output", ...), and every
// Charge issued under it accumulates on that node. When profiling is off
// the node stays nil and the whole mechanism is free.
type Ctx struct {
	K    *Kernel
	P    *sim.Proc
	Task *Task // nil in interrupt context
	Intr bool

	node *prof.Node
	flow int

	// Data-touch ledger attribution (see OnStream/OnStreamProv): when
	// ledOK is set, the copy/checksum primitives record their byte ranges
	// against ledFlow, mapping a buffer offset o to stream byte ledBase+o
	// and clipping to the stream window [ledLo, ledHi). layer is the most
	// recent In frame, carried even when profiling is off so ledger
	// records name the layer that touched the bytes.
	layer   string
	ledFlow int
	ledBase units.Size
	ledLo   units.Size
	ledHi   units.Size
	ledRtx  bool
	ledDesc int64
	ledOK   bool
}

// TaskCtx returns a process-context Ctx for task t running in p.
func (k *Kernel) TaskCtx(p *sim.Proc, t *Task) Ctx {
	return Ctx{K: k, P: p, Task: t}
}

// IntrCtx returns an interrupt-context Ctx running in p (normally the
// interrupt daemon's process).
func (k *Kernel) IntrCtx(p *sim.Proc) Ctx {
	return Ctx{K: k, P: p, Intr: true}
}

// base returns the node In stacks its first frame on: the per-task or
// interrupt fallback, matching where Charge lands un-framed work.
func (c Ctx) base() *prof.Node {
	if c.Intr {
		return c.K.intrNode()
	}
	return c.K.taskNode(c.Task)
}

// In returns a Ctx one layer frame deeper: CPU time charged through the
// result is attributed to layer under this context's stack. Free (nil
// node chain) when profiling is disabled.
func (c Ctx) In(layer string) Ctx {
	c.layer = layer
	n := c.node
	if n == nil {
		if c.K.Prof == nil {
			return c
		}
		n = c.base()
	}
	c.node = n.Child(layer)
	return c
}

// WithFlow returns a Ctx whose charges are attributed to flow (a TCP local
// port, say), so the profile can split time per connection.
func (c Ctx) WithFlow(flow int) Ctx {
	c.flow = flow
	return c
}

// Charge accounts d of CPU time in category cat: as the task's system time
// in process context, or misattributed to the current task in interrupt
// context.
func (c Ctx) Charge(d units.Time, cat Category) {
	if c.Intr {
		c.K.intrWorkAt(c.P, d, cat, c.node, c.flow)
		return
	}
	c.K.workAt(c.P, c.Task, d, cat, true, c.node, c.flow)
}

// OnStream returns a Ctx whose data primitives record their byte ranges
// in the data-touch ledger against flow, with buffer offset 0 mapping to
// stream byte base. Without it (or with the ledger disabled) unmappable
// touches are counted as unattributed rather than silently lost.
func (c Ctx) OnStream(flow int, base units.Size) Ctx {
	c.ledFlow, c.ledBase, c.ledOK = flow, base, true
	c.ledLo, c.ledHi = 0, units.Size(1)<<62
	c.ledRtx, c.ledDesc = false, 0
	return c
}

// OnStreamProv is OnStream driven by packet provenance: buffer offset 0
// maps to stream byte base, records clip to the segment's payload window
// [p.Off, p.Off+p.Len), and p's retransmit flag and descriptor id carry
// into the records. Used where a primitive's buffer spans more than the
// payload (e.g. a checksum over transport header + payload).
func (c Ctx) OnStreamProv(p *ledger.Prov, base units.Size) Ctx {
	c.ledFlow, c.ledBase, c.ledOK = p.Flow, base, true
	c.ledLo, c.ledHi = p.Off, p.Off+p.Len
	c.ledRtx, c.ledDesc = p.Rtx, p.Desc
	return c
}

// touch records a data touch at buffer offset off, length n, mapped to
// stream coordinates. Free (one nil check) when the ledger is off.
func (c Ctx) touch(kind ledger.Kind, off, n units.Size) {
	led := c.K.Led
	if led == nil {
		return
	}
	if !c.ledOK {
		led.Unattributed(kind, n)
		return
	}
	lo, hi := c.ledBase+off, c.ledBase+off+n
	if lo < c.ledLo {
		lo = c.ledLo
	}
	if hi > c.ledHi {
		hi = c.ledHi
	}
	if hi <= lo {
		return
	}
	var flags ledger.Flags
	if c.ledRtx {
		flags = ledger.FlagRtx
	}
	led.Touch(c.ledFlow, lo, hi-lo, kind, c.layer, flags, c.ledDesc)
}

// CopyBytes copies src to dst charging copy time in this context.
func (c Ctx) CopyBytes(dst, src []byte, region units.Size) {
	c.Charge(c.K.Mach.CopyTime(units.Size(len(src)), region), CatCopy)
	c.touch(ledger.CPUCopy, 0, units.Size(len(src)))
	copy(dst, src)
}

// CopyFromUIO copies n bytes at offset off of u into dst, charging copy
// time in this context (the socket layer's copyin on the traditional path).
func (c Ctx) CopyFromUIO(u *mem.UIO, off, n units.Size, dst []byte, region units.Size) {
	c.Charge(c.K.Mach.CopyTime(n, region), CatCopy)
	c.touch(ledger.CPUCopy, off, n)
	u.ReadAt(dst, off, n)
}

// CopyToUIO copies src into u at offset off, charging copy time in this
// context (the traditional receive copyout).
func (c Ctx) CopyToUIO(u *mem.UIO, off units.Size, src []byte, region units.Size) {
	c.Charge(c.K.Mach.CopyTime(units.Size(len(src)), region), CatCopy)
	c.touch(ledger.CPUCopy, off, units.Size(len(src)))
	u.WriteAt(src, off)
}

// ChecksumRead software-checksums b, charging read time in this context.
func (c Ctx) ChecksumRead(b []byte, region units.Size) uint32 {
	c.Charge(c.K.Mach.CsumTime(units.Size(len(b)), region), CatCsum)
	c.touch(ledger.CPUCsum, 0, units.Size(len(b)))
	return sum(b)
}
