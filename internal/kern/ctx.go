package kern

import (
	"repro/internal/sim"
	"repro/internal/units"
)

// Ctx identifies the execution context protocol code runs in: either a
// task's process context (a system call on its behalf) or interrupt
// context. It lets shared stack code charge CPU time correctly without
// caring who called it.
type Ctx struct {
	K    *Kernel
	P    *sim.Proc
	Task *Task // nil in interrupt context
	Intr bool
}

// TaskCtx returns a process-context Ctx for task t running in p.
func (k *Kernel) TaskCtx(p *sim.Proc, t *Task) Ctx {
	return Ctx{K: k, P: p, Task: t}
}

// IntrCtx returns an interrupt-context Ctx running in p (normally the
// interrupt daemon's process).
func (k *Kernel) IntrCtx(p *sim.Proc) Ctx {
	return Ctx{K: k, P: p, Intr: true}
}

// Charge accounts d of CPU time in category cat: as the task's system time
// in process context, or misattributed to the current task in interrupt
// context.
func (c Ctx) Charge(d units.Time, cat Category) {
	if c.Intr {
		c.K.IntrWork(c.P, d, cat)
		return
	}
	c.K.Work(c.P, c.Task, d, cat, true)
}

// CopyBytes copies src to dst charging copy time in this context.
func (c Ctx) CopyBytes(dst, src []byte, region units.Size) {
	c.Charge(c.K.Mach.CopyTime(units.Size(len(src)), region), CatCopy)
	copy(dst, src)
}

// ChecksumRead software-checksums b, charging read time in this context.
func (c Ctx) ChecksumRead(b []byte, region units.Size) uint32 {
	c.Charge(c.K.Mach.CsumTime(units.Size(len(b)), region), CatCsum)
	return sum(b)
}
