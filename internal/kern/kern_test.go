package kern

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/units"
)

func newTestKernel() (*sim.Engine, *Kernel) {
	e := sim.NewEngine(1)
	k := New("host", e, cost.Alpha400())
	return e, k
}

func TestWorkChargesTask(t *testing.T) {
	e, k := newTestKernel()
	task := k.NewTask("ttcp", PrioUser, nil)
	e.Go("w", func(p *sim.Proc) {
		k.Work(p, task, 500*units.Microsecond, CatCopy, true)
		k.Work(p, task, 200*units.Microsecond, CatApp, false)
	})
	e.Run()
	if task.SysTime != 500*units.Microsecond {
		t.Fatalf("sys = %v, want 500us", task.SysTime)
	}
	if task.UserTime != 200*units.Microsecond {
		t.Fatalf("user = %v, want 200us", task.UserTime)
	}
	if k.CategoryTime(CatCopy) != 500*units.Microsecond {
		t.Fatalf("copy cat = %v", k.CategoryTime(CatCopy))
	}
	if k.BusyTime() != 700*units.Microsecond {
		t.Fatalf("busy = %v, want 700us", k.BusyTime())
	}
	e.KillAll()
}

func TestPreemptionByInterrupt(t *testing.T) {
	e, k := newTestKernel()
	task := k.NewTask("util", PrioIdle, nil)
	var intrAt units.Time
	e.Go("long", func(p *sim.Proc) {
		// 10 ms of low-priority work, sliced at quantum granularity.
		k.Work(p, task, 10*units.Millisecond, CatApp, false)
	})
	e.At(1*units.Millisecond, func() {
		k.PostIntr("tick", func(p *sim.Proc) { intrAt = p.Now() })
	})
	e.Run()
	// The interrupt must get the CPU within ~2 quanta, not after 10 ms.
	if intrAt == 0 || intrAt > 2*units.Millisecond {
		t.Fatalf("interrupt served at %v, want ≤ ~1.3ms", intrAt)
	}
	e.KillAll()
}

func TestInterruptMisattribution(t *testing.T) {
	e, k := newTestKernel()
	util := k.NewTask("util", PrioIdle, nil)
	e.Go("util", func(p *sim.Proc) {
		k.Work(p, util, 5*units.Millisecond, CatApp, false)
	})
	e.At(1*units.Millisecond, func() {
		k.PostIntr("net", func(p *sim.Proc) {
			k.IntrWork(p, 300*units.Microsecond, CatProto)
		})
	})
	e.Run()
	// The dispatch cost + handler work lands in util's *system* time even
	// though util did nothing to cause it — the paper's misattribution.
	wantSys := k.Mach.InterruptCost + 300*units.Microsecond
	if util.SysTime != wantSys {
		t.Fatalf("util sys = %v, want %v", util.SysTime, wantSys)
	}
	if util.UserTime != 5*units.Millisecond {
		t.Fatalf("util user = %v, want 5ms", util.UserTime)
	}
	e.KillAll()
}

func TestPriorityOrdering(t *testing.T) {
	e, k := newTestKernel()
	user := k.NewTask("user", PrioUser, nil)
	idle := k.NewTask("idle", PrioIdle, nil)
	var order []string
	// Saturate the CPU with an idle-priority hog, then submit user work.
	e.Go("idle", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			k.Work(p, idle, k.Quantum, CatApp, false)
			order = append(order, "idle")
		}
	})
	e.At(10*units.Microsecond, func() {
		e.Go("user", func(p *sim.Proc) {
			k.Work(p, user, k.Quantum, CatApp, false)
			order = append(order, "user")
		})
	})
	e.Run()
	// The user task must complete long before the hog finishes.
	for i, s := range order {
		if s == "user" {
			if i > 3 {
				t.Fatalf("user work ran at position %d: %v", i, order[:i+1])
			}
			return
		}
	}
	t.Fatal("user work never ran")
}

func TestVMPinCosts(t *testing.T) {
	e, k := newTestKernel()
	vm := NewVM(k)
	task := k.NewTask("t", PrioUser, nil)
	space := mem.NewAddrSpace("u", 1*units.MB, k.Mach.PageSize)
	buf := space.Alloc(64*units.KB, 0) // 8 pages
	e.Go("w", func(p *sim.Proc) {
		vm.PinBuf(p, task, space, buf.Addr, buf.Len)
		vm.UnpinBuf(p, task, space, buf.Addr, buf.Len)
	})
	e.Run()
	want := k.Mach.PinTime(8) + k.Mach.UnpinTime(8)
	if k.CategoryTime(CatVM) != want {
		t.Fatalf("vm time = %v, want %v", k.CategoryTime(CatVM), want)
	}
	if space.PinnedPages() != 0 {
		t.Fatalf("pinned pages = %d, want 0", space.PinnedPages())
	}
	e.KillAll()
}

func TestVMLazyUnpinCacheHit(t *testing.T) {
	e, k := newTestKernel()
	vm := NewVM(k)
	vm.LazyUnpin = true
	task := k.NewTask("t", PrioUser, nil)
	space := mem.NewAddrSpace("u", 1*units.MB, k.Mach.PageSize)
	buf := space.Alloc(64*units.KB, 0)
	e.Go("w", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			vm.PinBuf(p, task, space, buf.Addr, buf.Len)
			vm.UnpinBuf(p, task, space, buf.Addr, buf.Len)
		}
	})
	e.Run()
	if vm.Pins != 1 || vm.PinHits != 9 {
		t.Fatalf("pins=%d hits=%d, want 1/9", vm.Pins, vm.PinHits)
	}
	// Cost: one real pin + nine cheap checks; no unpins at all.
	want := k.Mach.PinTime(8) + 9*vm.PinHitCheck
	if k.CategoryTime(CatVM) != want {
		t.Fatalf("vm time = %v, want %v", k.CategoryTime(CatVM), want)
	}
	if !space.Pinned(buf.Addr, buf.Len) {
		t.Fatal("buffer should still be pinned (lazy)")
	}
	e.KillAll()
}

func TestVMLazyEviction(t *testing.T) {
	e, k := newTestKernel()
	vm := NewVM(k)
	vm.LazyUnpin = true
	vm.MaxLazyPages = 8
	task := k.NewTask("t", PrioUser, nil)
	space := mem.NewAddrSpace("u", 2*units.MB, k.Mach.PageSize)
	a := space.Alloc(64*units.KB, 0) // 8 pages
	b := space.Alloc(64*units.KB, 0) // 8 pages
	e.Go("w", func(p *sim.Proc) {
		vm.PinBuf(p, task, space, a.Addr, a.Len)
		vm.UnpinBuf(p, task, space, a.Addr, a.Len) // deferred (8 ≤ 8)
		vm.PinBuf(p, task, space, b.Addr, b.Len)
		vm.UnpinBuf(p, task, space, b.Addr, b.Len) // 16 > 8: evict a, then b stays? a evicted, then still 8 ≤ 8
	})
	e.Run()
	if vm.LazyEvictions != 1 {
		t.Fatalf("evictions = %d, want 1", vm.LazyEvictions)
	}
	if space.Pinned(a.Addr, a.Len) {
		t.Fatal("a should have been evicted (unpinned)")
	}
	if !space.Pinned(b.Addr, b.Len) {
		t.Fatal("b should still be lazily pinned")
	}
	e.KillAll()
}

func TestCopyAndChecksumCharges(t *testing.T) {
	e, k := newTestKernel()
	task := k.NewTask("t", PrioUser, nil)
	src := make([]byte, 32*units.KB)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]byte, len(src))
	var sum uint32
	e.Go("w", func(p *sim.Proc) {
		k.CopyBytes(p, task, dst, src, 1*units.MB)
		sum = k.ChecksumRead(p, task, dst, 1*units.MB)
	})
	e.Run()
	if dst[100] != src[100] {
		t.Fatal("copy did not move bytes")
	}
	if sum == 0 {
		t.Fatal("checksum not computed")
	}
	wantCopy := k.Mach.CopyTime(32*units.KB, 1*units.MB)
	if k.CategoryTime(CatCopy) != wantCopy {
		t.Fatalf("copy time = %v, want %v", k.CategoryTime(CatCopy), wantCopy)
	}
	// 32 KB at 350 Mb/s ≈ 749 µs.
	if got := k.CategoryTime(CatCopy).Micros(); got < 700 || got > 800 {
		t.Fatalf("copy time = %.1fus, want ~749", got)
	}
	e.KillAll()
}

func TestUIOCopyHelpers(t *testing.T) {
	e, k := newTestKernel()
	task := k.NewTask("t", PrioUser, nil)
	space := mem.NewAddrSpace("u", 1*units.MB, k.Mach.PageSize)
	buf := space.Alloc(1000, 4)
	u := mem.NewUIO(buf)
	for i := range buf.Bytes() {
		buf.Bytes()[i] = byte(i * 3)
	}
	dst := make([]byte, 500)
	e.Go("w", func(p *sim.Proc) {
		k.CopyFromUIO(p, task, u, 100, 500, dst, 1000)
		k.CopyToUIO(p, task, u, 0, dst, 1000)
	})
	e.Run()
	want := byte(100 * 3 % 256)
	if dst[0] != want {
		t.Fatal("CopyFromUIO wrong bytes")
	}
	if buf.Bytes()[0] != want {
		t.Fatal("CopyToUIO wrong bytes")
	}
	e.KillAll()
}

func TestResetAccounting(t *testing.T) {
	e, k := newTestKernel()
	task := k.NewTask("t", PrioUser, nil)
	e.Go("w", func(p *sim.Proc) {
		k.Work(p, task, 100*units.Microsecond, CatCopy, true)
	})
	e.Run()
	k.ResetAccounting()
	if k.BusyTime() != 0 || k.CategoryTime(CatCopy) != 0 {
		t.Fatal("reset did not clear counters")
	}
	e.KillAll()
}
