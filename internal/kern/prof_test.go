package kern

import (
	"testing"

	"repro/internal/obs/prof"
	"repro/internal/sim"
	"repro/internal/units"
)

// TestProfiledChargesSumToBusy asserts the exact-sum invariant at the
// kernel level: every nanosecond charged through any path — Work,
// IntrWork, layered Ctx.Charge, interrupt dispatch overhead — lands in
// exactly one profile node, so the tree total equals CPU busy time.
func TestProfiledChargesSumToBusy(t *testing.T) {
	e, k := newTestKernel()
	pr := prof.New(CategoryNames())
	k.Prof = pr.Host("host")
	task := k.NewTask("ttcp", PrioUser, nil)
	e.Go("w", func(p *sim.Proc) {
		k.Work(p, task, 300*units.Microsecond, CatApp, false)
		ctx := k.TaskCtx(p, task).In("socket").WithFlow(7)
		ctx.Charge(100*units.Microsecond, CatCopy)
		ctx.In("tcp_output").Charge(50*units.Microsecond, CatProto)
		k.PostIntr("rx", func(p *sim.Proc) {
			k.IntrCtx(p).In("cabdrv_rx").Charge(20*units.Microsecond, CatDriver)
		})
	})
	e.Run()
	defer e.KillAll()
	if got, want := pr.HostTotal("host"), int64(k.BusyTime()); got != want {
		t.Fatalf("profile total %d != busy %d", got, want)
	}
	folded := string(pr.Folded())
	for _, want := range []string{
		"host;ttcp;app ",
		"host;ttcp;socket;copy ",
		"host;ttcp;socket;tcp_output;proto ",
		"host;intr;cabdrv_rx;driver ",
		"host;intr;intr ", // interrupt dispatch overhead
	} {
		if !contains(folded, want) {
			t.Fatalf("folded output missing %q:\n%s", want, folded)
		}
	}
}

// TestCtxInDisabledIsFree asserts the disabled profiler costs nothing:
// Ctx.In/WithFlow allocate nothing and charge timing is unchanged.
func TestCtxInDisabledIsFree(t *testing.T) {
	e, k := newTestKernel()
	task := k.NewTask("ttcp", PrioUser, nil)
	var ctx Ctx
	e.Go("w", func(p *sim.Proc) {
		ctx = k.TaskCtx(p, task)
	})
	e.Run()
	defer e.KillAll()
	if n := testing.AllocsPerRun(100, func() {
		c := ctx.In("socket").In("tcp_output").WithFlow(5)
		_ = c
	}); n != 0 {
		t.Fatalf("disabled Ctx.In allocates %v times per op", n)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
