// Package kern models the host operating system context the protocol stack
// runs in: a single CPU with priority scheduling and preemption at quantum
// granularity, per-task user/system time accounting (including the
// interrupt-time misattribution the paper's measurement methodology works
// around, Section 7.1), an interrupt service daemon, and the VM operations
// (pin/unpin/map) whose costs Table 2 reports.
//
// All CPU work in the simulation flows through Kernel.Work or
// Kernel.IntrWork so that every virtual cycle lands in exactly one
// accounting category and one task's user or system time.
package kern

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/obs/engine"
	"repro/internal/obs/ledger"
	"repro/internal/obs/prof"
	"repro/internal/sim"
	"repro/internal/units"
)

// Scheduling priorities (lower value is served first).
const (
	PrioIntr = 0  // interrupt daemon
	PrioKern = 10 // in-kernel daemons
	PrioUser = 20 // normal user tasks (ttcp)
	PrioIdle = 40 // low-priority soaker (util)
)

// Category classifies where CPU time goes, for the per-byte vs per-packet
// breakdown of Section 7.3.
type Category int

// Accounting categories.
const (
	CatApp     Category = iota // application-level work
	CatSyscall                 // system call entry/exit
	CatCopy                    // memory-to-memory data copying
	CatCsum                    // software checksum reads
	CatVM                      // pin/unpin/map operations
	CatProto                   // transport + network protocol processing
	CatDriver                  // device driver request handling
	CatIntr                    // interrupt dispatch
	numCategories
)

var catNames = [numCategories]string{
	"app", "syscall", "copy", "csum", "vm", "proto", "driver", "intr",
}

// CategoryNames returns the category labels indexed by Category value, for
// consumers (the profiler) that need the axis without importing kern's
// types.
func CategoryNames() []string {
	return catNames[:]
}

func (c Category) String() string {
	if c >= 0 && int(c) < len(catNames) {
		return catNames[c]
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Task is a schedulable context: a user process or an in-kernel thread.
// Its accumulated times are what the simulated `time`-style accounting
// reports.
type Task struct {
	Name  string
	Prio  int
	Space *mem.AddrSpace

	UserTime units.Time
	SysTime  units.Time
}

// Kernel is one host's OS context.
type Kernel struct {
	Name string
	Eng  *sim.Engine
	Mach *cost.Machine

	// Quantum is the preemption granularity: long CPU operations are
	// sliced so higher-priority work (interrupts) gets in between slices.
	Quantum units.Time

	cpu     *sim.Resource
	cur     *Task // task most recently running on the CPU
	byCat   [numCategories]units.Time
	busy    units.Time
	intrQ   *sim.Queue[intrWork]
	started units.Time

	// Obs is the host's telemetry registry (nil when disabled). Set by
	// the assembler (core.AddHost) before subsystems are built, so each
	// constructor can register its metrics through it.
	Obs *obs.Registry

	// Prof is the host's root profiler node (nil when profiling is
	// disabled). Every Work/IntrWork charge lands on a node under it —
	// explicitly via Ctx.In layer frames, or on a per-task/interrupt
	// fallback node — so the profile always sums exactly to busy.
	Prof *prof.Node

	// Led is the host's data-touch ledger hook (nil when the ledger is
	// disabled: the recording fast path is a single nil check). The CPU
	// data primitives record through it; stream coordinates come from
	// Ctx.OnStream/OnStreamProv.
	Led *ledger.Hook

	// EngObs is the simulator meta-observer (nil when disabled: each hook
	// is a single nil check). It counts the real work the kernel model
	// generates — charges and quantum slices — beside the engine's own
	// event-dispatch counters.
	EngObs *engine.Observer

	intrPosts *obs.Counter

	// AllocFault, when set (fault injection), reports transient mbuf/page
	// allocation failure; allocation sites in process context call
	// WaitAlloc to back off until it clears. Nil means allocations never
	// fail — the guard is a single nil check.
	AllocFault func() bool
	// AllocFailures counts allocation attempts that hit a fault.
	AllocFailures int
	allocFails    *obs.Counter

	// KernelTask absorbs kernel work with no better owner.
	KernelTask *Task
}

// Allocation-failure backoff: exponential from allocBackoffBase, capped at
// allocBackoffMax — bounded, so a transient fault costs bounded latency
// and a persistent one shows up as a stuck-progress soak failure rather
// than a silent drop.
const (
	allocBackoffBase = 50 * units.Microsecond
	allocBackoffMax  = 2 * units.Millisecond
)

// WaitAlloc models an mbuf/page allocation in process context: when the
// fault hook reports exhaustion, the caller backs off (exponentially,
// bounded) and retries until the allocation would succeed.
func (k *Kernel) WaitAlloc(p *sim.Proc) {
	if k.AllocFault == nil {
		return
	}
	d := allocBackoffBase
	for k.AllocFault() {
		k.AllocFailures++
		k.allocFails.Inc()
		p.Sleep(d)
		if d *= 2; d > allocBackoffMax {
			d = allocBackoffMax
		}
	}
}

type intrWork struct {
	name string
	fn   func(*sim.Proc)
}

// New returns a kernel for machine mach on engine eng.
func New(name string, eng *sim.Engine, mach *cost.Machine) *Kernel {
	k := &Kernel{
		Name:    name,
		Eng:     eng,
		Mach:    mach,
		Quantum: 100 * units.Microsecond,
		cpu:     sim.NewResource(eng, 1),
		intrQ:   sim.NewQueue[intrWork](eng),
	}
	k.KernelTask = k.NewTask("kernel", PrioKern, nil)
	k.cur = k.KernelTask
	eng.Go(name+"/intrd", k.intrd)
	return k
}

// NewTask registers a new schedulable task.
func (k *Kernel) NewTask(name string, prio int, space *mem.AddrSpace) *Task {
	return &Task{Name: name, Prio: prio, Space: space}
}

// intrd is the interrupt service daemon: it drains posted interrupt work
// at the highest priority. Dispatch cost is charged — as on the real
// system — to whichever task happened to be running (Section 7.1's
// misattribution, which the util methodology corrects for).
func (k *Kernel) intrd(p *sim.Proc) {
	for {
		w := k.intrQ.Get(p)
		k.intrWorkAt(p, k.Mach.InterruptCost, CatIntr, nil, 0)
		w.fn(p)
	}
}

// PostIntr queues fn to run in interrupt context. Safe to call from any
// simulation context (device models post completions from event callbacks).
func (k *Kernel) PostIntr(name string, fn func(*sim.Proc)) {
	k.intrPosts.Inc()
	k.intrQ.Put(intrWork{name: name, fn: fn})
}

// RegisterObs registers the kernel's metrics on k.Obs: interrupt counts and
// the per-category CPU time re-exported from the existing accounting.
func (k *Kernel) RegisterObs() {
	r := k.Obs
	if r == nil {
		return
	}
	k.intrPosts = r.Counter("kern.intr_posts")
	k.allocFails = r.Counter("kern.alloc_failures")
	for c := Category(0); c < numCategories; c++ {
		c := c
		r.Func("kern.cpu_ns."+c.String(), func() int64 { return int64(k.byCat[c]) })
	}
	r.Func("kern.cpu_busy_ns", func() int64 { return int64(k.busy) })
}

// curSys charges d of system time to the currently running task.
func (k *Kernel) curSys(d units.Time) { k.cur.SysTime += d }

// chargeSlices runs d of CPU work at the given priority, slicing at
// quantum granularity so higher-priority work can preempt, and charging
// each slice through charge.
func (k *Kernel) chargeSlices(p *sim.Proc, prio int, d units.Time, cat Category, charge func(units.Time)) {
	for d > 0 {
		slice := d
		if slice > k.Quantum {
			slice = k.Quantum
		}
		k.EngObs.KernSlice()
		k.cpu.Acquire(p, prio)
		p.Sleep(slice)
		k.byCat[cat] += slice
		k.busy += slice
		charge(slice)
		k.cpu.Release()
		d -= slice
	}
}

// taskNode returns the profiler fallback node for process-context work with
// no explicit layer stack: a per-task child of the host root. Nil (free)
// when profiling is off.
func (k *Kernel) taskNode(t *Task) *prof.Node {
	if k.Prof == nil {
		return nil
	}
	return k.Prof.Child(t.Name)
}

// intrNode is the fallback for interrupt-context work with no explicit
// stack.
func (k *Kernel) intrNode() *prof.Node {
	if k.Prof == nil {
		return nil
	}
	return k.Prof.Child("intr")
}

// workAt is Work with an explicit profiler attribution: node (or the task's
// fallback node when nil) accumulates exactly d in cat for flow, before the
// quantum slicing, so the profile total always equals busy.
func (k *Kernel) workAt(p *sim.Proc, t *Task, d units.Time, cat Category, sys bool, node *prof.Node, flow int) {
	if d <= 0 {
		return
	}
	if node == nil {
		node = k.taskNode(t)
	}
	k.EngObs.KernCharge()
	node.Add(int(cat), flow, int64(d))
	k.chargeSlices(p, t.Prio, d, cat, func(slice units.Time) {
		k.cur = t
		if sys {
			t.SysTime += slice
		} else {
			t.UserTime += slice
		}
	})
}

// intrWorkAt is IntrWork with an explicit profiler attribution (the
// interrupt fallback node when nil).
func (k *Kernel) intrWorkAt(p *sim.Proc, d units.Time, cat Category, node *prof.Node, flow int) {
	if d <= 0 {
		return
	}
	if node == nil {
		node = k.intrNode()
	}
	k.EngObs.KernCharge()
	node.Add(int(cat), flow, int64(d))
	k.chargeSlices(p, PrioIntr, d, cat, k.curSys)
}

// Work runs d of CPU work on behalf of task t. If sys is true the time is
// charged as system time (kernel work done for the task); otherwise as
// user time. The caller must be in process context.
func (k *Kernel) Work(p *sim.Proc, t *Task, d units.Time, cat Category, sys bool) {
	k.workAt(p, t, d, cat, sys, nil, 0)
}

// IntrWork runs d of CPU work in interrupt/kernel context at top priority;
// the time is charged as system time to whichever task is currently
// scheduled (the misattribution the paper describes).
func (k *Kernel) IntrWork(p *sim.Proc, d units.Time, cat Category) {
	k.intrWorkAt(p, d, cat, nil, 0)
}

// CategoryTime returns the accumulated CPU time in category c.
func (k *Kernel) CategoryTime(c Category) units.Time { return k.byCat[c] }

// BusyTime returns total CPU busy time since creation.
func (k *Kernel) BusyTime() units.Time { return k.busy }

// ResetAccounting zeroes category and busy counters (task times are the
// tasks' own).
func (k *Kernel) ResetAccounting() {
	for i := range k.byCat {
		k.byCat[i] = 0
	}
	k.busy = 0
	k.started = k.Eng.Now()
}

// AccountingWindow returns the time ResetAccounting was last called.
func (k *Kernel) AccountingWindow() units.Time { return k.started }

// CategoryBreakdown returns a copy of the per-category CPU time table.
func (k *Kernel) CategoryBreakdown() map[string]units.Time {
	m := make(map[string]units.Time, numCategories)
	for c := Category(0); c < numCategories; c++ {
		if k.byCat[c] > 0 {
			m[c.String()] = k.byCat[c]
		}
	}
	return m
}
