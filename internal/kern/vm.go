package kern

import (
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/units"
)

// VM operation support. Costs follow Table 2 of the paper: pinning,
// unpinning, and mapping have a fixed base cost plus a per-page cost. The
// optional lazy-unpin cache implements the Section 4.4.1 optimization:
// applications that reuse the same buffers repeatedly keep them pinned and
// mapped, amortizing the VM overhead over many IO operations, with lazy
// eviction bounding the number of pages a task can keep pinned.
//
// All charging goes through a Ctx so callers inside a profiled layer stack
// attribute the VM time under their frame; the (p, t) entry points are
// plain process-context wrappers.

// pinRange records a deferred unpin.
type pinRange struct {
	space *mem.AddrSpace
	addr  units.Size
	n     units.Size
	pages int
}

// VM is a kernel's virtual-memory operation interface.
type VM struct {
	k *Kernel

	// LazyUnpin enables the pinned-buffer reuse cache (Section 4.4.1).
	LazyUnpin bool
	// MaxLazyPages bounds the pages a host may keep lazily pinned.
	MaxLazyPages int
	// PinHitCheck is the cost of recognizing an already-pinned buffer.
	PinHitCheck units.Time

	deferred      []pinRange
	deferredPages int

	// Counters for ablation reporting.
	Pins, PinHits, Unpins, LazyEvictions, Maps int
}

// NewVM returns the VM interface for k with the lazy cache disabled (the
// paper's measured configuration pins and unpins on every operation).
func NewVM(k *Kernel) *VM {
	v := &VM{k: k, MaxLazyPages: 4096, PinHitCheck: 2 * units.Microsecond}
	if r := k.Obs; r != nil {
		r.Func("vm.pins", func() int64 { return int64(v.Pins) })
		r.Func("vm.pin_hits", func() int64 { return int64(v.PinHits) })
		r.Func("vm.unpins", func() int64 { return int64(v.Unpins) })
		r.Func("vm.lazy_evictions", func() int64 { return int64(v.LazyEvictions) })
		r.Func("vm.maps", func() int64 { return int64(v.Maps) })
	}
	return v
}

// PinBuf pins the pages of [addr, addr+n) in space on behalf of t,
// charging Table 2's pin cost. With the lazy cache enabled, re-pinning a
// still-pinned buffer costs only the hit check.
func (v *VM) PinBuf(p *sim.Proc, t *Task, space *mem.AddrSpace, addr, n units.Size) {
	v.pin(v.k.TaskCtx(p, t), space, addr, n)
}

func (v *VM) pin(c Ctx, space *mem.AddrSpace, addr, n units.Size) {
	pages := space.PageSpan(addr, n)
	if pages == 0 {
		return
	}
	if v.LazyUnpin {
		if i := v.findDeferred(space, addr, n); i >= 0 {
			// Cache hit: the buffer is still pinned from a previous IO.
			v.deferredPages -= v.deferred[i].pages
			v.deferred = append(v.deferred[:i], v.deferred[i+1:]...)
			v.PinHits++
			c.Charge(v.PinHitCheck, CatVM)
			return
		}
	}
	v.Pins++
	space.Pin(addr, n)
	c.Charge(v.k.Mach.PinTime(pages), CatVM)
}

// UnpinBuf undoes PinBuf. With the lazy cache the unpin is deferred; old
// deferred ranges are evicted (really unpinned) once MaxLazyPages is
// exceeded, charging their unpin cost at eviction time.
func (v *VM) UnpinBuf(p *sim.Proc, t *Task, space *mem.AddrSpace, addr, n units.Size) {
	v.unpin(v.k.TaskCtx(p, t), space, addr, n)
}

func (v *VM) unpin(c Ctx, space *mem.AddrSpace, addr, n units.Size) {
	pages := space.PageSpan(addr, n)
	if pages == 0 {
		return
	}
	if v.LazyUnpin {
		v.deferred = append(v.deferred, pinRange{space, addr, n, pages})
		v.deferredPages += pages
		for v.deferredPages > v.MaxLazyPages && len(v.deferred) > 0 {
			old := v.deferred[0]
			v.deferred = v.deferred[1:]
			v.deferredPages -= old.pages
			old.space.Unpin(old.addr, old.n)
			v.LazyEvictions++
			c.Charge(v.k.Mach.UnpinTime(old.pages), CatVM)
		}
		return
	}
	v.Unpins++
	space.Unpin(addr, n)
	c.Charge(v.k.Mach.UnpinTime(pages), CatVM)
}

// findDeferred locates a deferred range exactly covering [addr, addr+n).
func (v *VM) findDeferred(space *mem.AddrSpace, addr, n units.Size) int {
	for i, r := range v.deferred {
		if r.space == space && r.addr <= addr && addr+n <= r.addr+r.n {
			return i
		}
	}
	return -1
}

// FlushDeferred really unpins everything in the lazy cache (teardown).
func (v *VM) FlushDeferred(p *sim.Proc, t *Task) {
	c := v.k.TaskCtx(p, t)
	for _, r := range v.deferred {
		r.space.Unpin(r.addr, r.n)
		c.Charge(v.k.Mach.UnpinTime(r.pages), CatVM)
	}
	v.deferred = nil
	v.deferredPages = 0
}

// MapBuf maps [addr, addr+n) of a user space into kernel space, charging
// Table 2's map cost. The socket layer performs this incrementally, one
// socket-buffer's worth at a time, because OSF/1 drivers lack the
// application context needed to do it at DMA time (Section 4.4.1).
func (v *VM) MapBuf(p *sim.Proc, t *Task, space *mem.AddrSpace, addr, n units.Size) {
	v.mapKernel(v.k.TaskCtx(p, t), space, addr, n)
}

func (v *VM) mapKernel(c Ctx, space *mem.AddrSpace, addr, n units.Size) {
	pages := space.PageSpan(addr, n)
	if pages == 0 {
		return
	}
	v.Maps++
	space.MapKernel(addr, n)
	c.Charge(v.k.Mach.MapTime(pages), CatVM)
}

// UnmapBuf clears a kernel mapping; Table 2 lists no unmap cost and the
// paper's analysis charges none, so neither do we.
func (v *VM) UnmapBuf(space *mem.AddrSpace, addr, n units.Size) {
	space.UnmapKernel(addr, n)
}

// PinUIO pins every segment of [off, off+n) of u, charging in c.
func (v *VM) PinUIO(c Ctx, u *mem.UIO, off, n units.Size) {
	for _, seg := range u.Segments(off, n) {
		v.pin(c, u.Space, seg.Addr, seg.Len)
	}
}

// UnpinUIO undoes PinUIO.
func (v *VM) UnpinUIO(c Ctx, u *mem.UIO, off, n units.Size) {
	for _, seg := range u.Segments(off, n) {
		v.unpin(c, u.Space, seg.Addr, seg.Len)
	}
}

// MapUIO maps every segment of [off, off+n) of u into kernel space.
func (v *VM) MapUIO(c Ctx, u *mem.UIO, off, n units.Size) {
	for _, seg := range u.Segments(off, n) {
		v.mapKernel(c, u.Space, seg.Addr, seg.Len)
	}
}
