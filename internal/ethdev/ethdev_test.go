package ethdev

import (
	"bytes"
	"testing"

	"repro/internal/cost"
	"repro/internal/hippi"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/mem"
	"repro/internal/netif"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

func rig(t *testing.T) (*sim.Engine, *kern.Kernel, *kern.Kernel, *Driver, *Driver, *[]*mbuf.Mbuf) {
	t.Helper()
	eng := sim.NewEngine(1)
	ka := kern.New("A", eng, cost.Alpha400())
	kb := kern.New("B", eng, cost.Alpha400())
	net := hippi.NewNetwork(eng, 100*units.Mbps, 50*units.Microsecond)
	da := New("en0", ka, net, 11, 0)
	db := New("en0", kb, net, 12, 0)
	var rx []*mbuf.Mbuf
	da.Input = func(kern.Ctx, *mbuf.Mbuf, netif.Interface) {}
	db.Input = func(ctx kern.Ctx, m *mbuf.Mbuf, from netif.Interface) { rx = append(rx, m) }
	return eng, ka, kb, da, db, &rx
}

// ipWrap prepends a valid IP header in place.
func ipWrap(payload *mbuf.Mbuf) *mbuf.Mbuf {
	n := mbuf.ChainLen(payload)
	m := payload.Prepend(wire.IPHdrLen)
	wire.IPHdr{TotLen: wire.IPHdrLen + n, TTL: 30, Proto: 99,
		Src: 1, Dst: 2}.Marshal(m.Bytes()[:wire.IPHdrLen])
	if !m.IsPktHdr() {
		m.MarkPktHdr(wire.IPHdrLen + n)
	}
	return m
}

func TestRoundTrip(t *testing.T) {
	eng, ka, _, da, _, rx := rig(t)
	payload := make([]byte, 1200)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	eng.Go("tx", func(p *sim.Proc) {
		da.Output(ka.TaskCtx(p, ka.KernelTask), ipWrap(mbuf.NewCluster(payload)), 12)
	})
	eng.Run()
	defer eng.KillAll()
	if len(*rx) != 1 {
		t.Fatalf("delivered %d, want 1", len(*rx))
	}
	got := mbuf.Materialize((*rx)[0])
	if !bytes.Equal(got[wire.IPHdrLen:], payload) {
		t.Fatal("payload corrupted")
	}
	if mbuf.HasDescriptors((*rx)[0]) {
		t.Fatal("legacy device delivered descriptors")
	}
}

func TestDescriptorConversionAtEntry(t *testing.T) {
	eng, ka, _, da, _, rx := rig(t)
	space := mem.NewAddrSpace("u", 1*units.MB, ka.Mach.PageSize)
	buf := space.Alloc(1000, 4)
	for i := range buf.Bytes() {
		buf.Bytes()[i] = byte(i)
	}
	u := mem.NewUIO(buf)
	eng.Go("tx", func(p *sim.Proc) {
		da.Output(ka.TaskCtx(p, ka.KernelTask), ipWrap(mbuf.NewUIO(u, 0, 1000, nil)), 12)
	})
	eng.Run()
	defer eng.KillAll()
	if da.Converted != 1 {
		t.Fatalf("conversions = %d, want 1", da.Converted)
	}
	if len(*rx) != 1 {
		t.Fatal("packet lost")
	}
	got := mbuf.Materialize((*rx)[0])
	if !bytes.Equal(got[wire.IPHdrLen:], buf.Bytes()) {
		t.Fatal("converted payload corrupted")
	}
}

func TestCapsAndGeometry(t *testing.T) {
	_, _, _, da, _, _ := rig(t)
	if da.Caps().SingleCopy {
		t.Fatal("legacy device must not advertise single-copy")
	}
	if da.MTU() != DefaultMTU {
		t.Fatalf("MTU = %v, want %v", da.MTU(), DefaultMTU)
	}
	if da.Name() != "en0" {
		t.Fatalf("name = %q", da.Name())
	}
}

func TestSerializationOrder(t *testing.T) {
	eng, ka, _, da, _, rx := rig(t)
	eng.Go("tx", func(p *sim.Proc) {
		ctx := ka.TaskCtx(p, ka.KernelTask)
		for i := 0; i < 5; i++ {
			b := mbuf.NewCluster([]byte{byte(i)})
			da.Output(ctx, ipWrap(b), 12)
		}
	})
	eng.Run()
	defer eng.KillAll()
	if len(*rx) != 5 {
		t.Fatalf("delivered %d, want 5", len(*rx))
	}
	for i, m := range *rx {
		if got := mbuf.Materialize(m); got[wire.IPHdrLen] != byte(i) {
			t.Fatalf("packet %d out of order (marker %d)", i, got[wire.IPHdrLen])
		}
	}
}
