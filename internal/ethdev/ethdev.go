// Package ethdev is a driver for a traditional network device with no
// outboard buffering or checksumming support — the "existing devices" of
// Section 5. It only handles fully materialized kernel-buffer chains;
// descriptor mbufs reaching its entry point are converted by the thin shim
// layer, and received packets always arrive as regular mbufs, which the
// modified stack still handles unchanged.
package ethdev

import (
	"repro/internal/hippi"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/netif"
	"repro/internal/obs/ledger"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

// DefaultMTU is a classic Ethernet-class MTU.
const DefaultMTU = 1500 * units.Byte

// Driver is one legacy device instance. The media is modeled by the same
// switch fabric as HIPPI, just slower.
type Driver struct {
	K     *kern.Kernel
	Input netif.InputFunc

	name string
	mtu  units.Size
	net  *hippi.Network
	id   hippi.NodeID
	txQ  *sim.Queue[*txJob]

	// Stats.
	TxPackets, RxPackets, Converted int
	// RxDropNoBuf counts frames lost to receive-buffer exhaustion (the
	// kernel allocation-fault surface; the transport recovers by
	// retransmission).
	RxDropNoBuf int
}

type txJob struct {
	m   *mbuf.Mbuf
	dst netif.LinkAddr
}

// New attaches a legacy driver to medium net as station id.
func New(name string, k *kern.Kernel, net *hippi.Network, id hippi.NodeID, mtu units.Size) *Driver {
	if mtu <= 0 {
		mtu = DefaultMTU
	}
	d := &Driver{K: k, name: name, mtu: mtu, net: net, id: id,
		txQ: sim.NewQueue[*txJob](k.Eng)}
	net.Attach(id, d.hwRx)
	k.Eng.Go(name+"/txd", d.txd)
	return d
}

// Name implements netif.Interface.
func (d *Driver) Name() string { return d.name }

// MTU implements netif.Interface.
func (d *Driver) MTU() units.Size { return d.mtu }

// Caps implements netif.Interface: no single-copy support.
func (d *Driver) Caps() netif.Caps { return netif.Caps{} }

// Output implements netif.Interface. Descriptor chains are materialized at
// the entry point (Section 5): "a copy has merely been delayed".
func (d *Driver) Output(ctx kern.Ctx, m *mbuf.Mbuf, dst netif.LinkAddr) {
	ctx = ctx.In("ethdrv")
	ctx.Charge(d.K.Mach.DriverPerPacket, kern.CatDriver)
	if mbuf.HasDescriptors(m) {
		d.Converted++
		m = netif.ConvertForLegacy(ctx, m)
	}
	d.txQ.Put(&txJob{m: m, dst: dst})
}

// txd serializes packets onto the medium, paying bus DMA time to move the
// kernel buffers to the device.
func (d *Driver) txd(p *sim.Proc) {
	for {
		job := d.txQ.Get(p)
		ipLen := mbuf.ChainLen(job.m)
		frame := make([]byte, wire.LinkHdrLen+ipLen)
		wire.LinkHdr{
			Dst: uint32(job.dst), Src: uint32(d.id),
			Type: wire.EtherTypeIP, Len: uint32(len(frame)),
		}.Marshal(frame)
		mbuf.ReadRange(job.m, 0, ipLen, frame[wire.LinkHdrLen:])
		prov := job.m.Prov()
		mbuf.FreeChain(job.m)
		// Device DMA from kernel buffers occupies the bus.
		p.Sleep(d.K.Mach.DMATime(units.Size(len(frame))))
		d.K.Led.TouchP(prov, 0, units.Size(len(frame)), ledger.SDMAToNet, "ethdev", 0)
		sent := sim.NewSignal(d.K.Eng)
		d.net.SendFrame(hippi.Frame{Src: d.id, Dst: hippi.NodeID(job.dst), Data: frame, Prov: prov},
			func() { sent.Broadcast() })
		sent.Wait(p)
		d.TxPackets++
	}
}

// hwRx runs at frame arrival: the device has DMAed the frame into kernel
// buffers; the interrupt handler builds a regular mbuf chain.
func (d *Driver) hwRx(f hippi.Frame) {
	d.K.PostIntr("eth-rx", func(p *sim.Proc) {
		ctx := d.K.IntrCtx(p).In("ethdrv_rx")
		ctx.Charge(d.K.Mach.DriverPerPacket, kern.CatDriver)
		lh, err := wire.ParseLinkHdr(f.Data)
		if err != nil || lh.Type != wire.EtherTypeIP {
			return
		}
		if d.K.AllocFault != nil && d.K.AllocFault() {
			// No kernel buffers for the frame: the device ring overruns.
			// Interrupt context cannot back off and retry the way the
			// socket layer does; the frame is lost and TCP recovers.
			d.RxDropNoBuf++
			return
		}
		d.RxPackets++
		payload := f.Data[wire.LinkHdrLen:]
		var head, tail *mbuf.Mbuf
		for off := 0; off < len(payload); off += int(mbuf.MCLBYTES) {
			n := len(payload) - off
			if n > int(mbuf.MCLBYTES) {
				n = int(mbuf.MCLBYTES)
			}
			c := mbuf.NewCluster(payload[off : off+n])
			if head == nil {
				head = c
			} else {
				tail.SetNext(c)
			}
			tail = c
		}
		if head == nil {
			return
		}
		head.MarkPktHdr(units.Size(len(payload)))
		// The device DMAed the frame into the kernel buffers just built.
		d.K.Led.TouchP(f.Prov, 0, units.Size(len(f.Data)), ledger.SDMAToHost, "ethdev", 0)
		head.AttachProv(f.Prov)
		d.Input(ctx, head, d)
	})
}
