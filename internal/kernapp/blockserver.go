package kernapp

import (
	"encoding/binary"

	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/tcpip"
	"repro/internal/units"
)

// BlockServer is a file-server-style in-kernel application: an IO-intensive
// kernel network user of the kind Section 5 motivates. It serves
// fixed-size blocks from an in-kernel "buffer cache" (cluster mbufs) over
// TCP; because the buffers are shared mbufs, transmission over the CAB is
// single-copy with outboard checksumming, with no stack changes.
//
// Protocol: the client sends 8-byte requests (uint32 block id, uint32
// block count, big-endian); the server responds with count blocks of
// BlockSize bytes. A request for count 0 closes the stream.
type BlockServer struct {
	K         *kern.Kernel
	Stk       *tcpip.Stack
	Port      uint16
	BlockSize units.Size

	// Requests and BlocksServed count activity.
	Requests, BlocksServed int
}

// ReqLen is the wire size of one block request.
const ReqLen = 8

// NewBlockServer returns a server configuration (not yet running).
func NewBlockServer(k *kern.Kernel, stk *tcpip.Stack, port uint16, blockSize units.Size) *BlockServer {
	return &BlockServer{K: k, Stk: stk, Port: port, BlockSize: blockSize}
}

// Block returns the deterministic contents of block id (so clients can
// verify integrity end to end).
func (bs *BlockServer) Block(id uint32) []byte {
	b := make([]byte, bs.BlockSize)
	for i := range b {
		b[i] = byte(uint32(i)*7 + id*13 + 1)
	}
	return b
}

// blockChain builds the shared-mbuf representation of a block, as a buffer
// cache would hand it over.
func (bs *BlockServer) blockChain(id uint32) *mbuf.Mbuf {
	data := bs.Block(id)
	var head, tail *mbuf.Mbuf
	for off := units.Size(0); off < bs.BlockSize; off += mbuf.MCLBYTES {
		n := bs.BlockSize - off
		if n > mbuf.MCLBYTES {
			n = mbuf.MCLBYTES
		}
		m := mbuf.NewCluster(data[off : off+n])
		if head == nil {
			head = m
		} else {
			tail.SetNext(m)
		}
		tail = m
	}
	return head
}

// Run listens and serves until the engine stops; spawn it as a kernel
// process. Each connection is served by its own kernel process.
func (bs *BlockServer) Run(p *sim.Proc) {
	lis := bs.Stk.Listen(bs.Port)
	for {
		conn := lis.Accept(p)
		kc := NewKConn(bs.K, conn)
		bs.K.Eng.Go("blockserver/conn", func(cp *sim.Proc) { bs.serve(cp, kc) })
	}
}

func (bs *BlockServer) serve(p *sim.Proc, kc *KConn) {
	var pending []byte
	for {
		// Accumulate a full request.
		for len(pending) < ReqLen {
			chain, err := kc.Recv(p, 64*units.KB)
			if err != nil || chain == nil {
				return
			}
			pending = append(pending, mbuf.Materialize(chain)...)
			mbuf.FreeChain(chain)
		}
		id := binary.BigEndian.Uint32(pending[0:])
		count := binary.BigEndian.Uint32(pending[4:])
		pending = pending[ReqLen:]
		bs.Requests++
		if count == 0 {
			kc.Close(p)
			return
		}
		for i := uint32(0); i < count; i++ {
			if err := kc.Send(p, bs.blockChain(id+i)); err != nil {
				return
			}
			bs.BlocksServed++
		}
	}
}

// EncodeRequest builds the wire form of a block request.
func EncodeRequest(id, count uint32) []byte {
	b := make([]byte, ReqLen)
	binary.BigEndian.PutUint32(b[0:], id)
	binary.BigEndian.PutUint32(b[4:], count)
	return b
}
