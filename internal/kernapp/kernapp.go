// Package kernapp supports in-kernel applications (Section 5): file
// servers, ICMP-like services, and other kernel-resident network users.
// Their communication API has share semantics — mbuf chains are the shared
// buffers — so over the CAB they get single-copy communication
// automatically: the data is copied once by DMA and checksummed during
// that copy.
//
// Two of the paper's four interoperation scenarios are handled here:
//
//   - Transmit: chains of regular/cluster mbufs pass through the modified
//     stack unchanged (it still handles regular mbufs); the driver checks
//     the format and fixes it if the chain cannot accommodate the larger
//     headers the WCAB conversion needs.
//
//   - Receive: M_WCAB mbufs passed up by the CAB driver would not be
//     handled correctly by existing in-kernel code, so they are converted
//     to regular mbufs before entering the application. Because the copy
//     is a DMA, the application must resynchronize with the driver when it
//     terminates; conversion happens in receive order, so large (DMA) and
//     small (no DMA) packets are not reordered — the concern Section 5
//     raises about confusing clients.
//
// (The other two scenarios — user sockets over existing devices, and
// receive from existing devices — live in the driver-entry shim and need
// nothing here.)
package kernapp

import (
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/tcpip"
	"repro/internal/units"
)

// KConn is a TCP connection endpoint used from kernel context with share
// semantics.
type KConn struct {
	K    *kern.Kernel
	Conn *tcpip.TCPConn

	// Converted counts WCAB→regular receive conversions performed.
	Converted int
	// ConvertedBytes counts bytes moved by those conversions.
	ConvertedBytes units.Size
}

// NewKConn wraps an established connection.
func NewKConn(k *kern.Kernel, c *tcpip.TCPConn) *KConn {
	return &KConn{K: k, Conn: c}
}

// Send transmits an mbuf chain with share semantics: ownership of the
// chain passes to the stack; the caller must not touch it afterwards. The
// call blocks only for send-buffer space, not for transmission — exactly
// the semantics kernel producers expect.
func (kc *KConn) Send(p *sim.Proc, chain *mbuf.Mbuf) error {
	n := mbuf.ChainLen(chain)
	ctx := kc.K.TaskCtx(p, kc.K.KernelTask)
	for kc.Conn.SndAvail() < n {
		if err := kc.Conn.WaitSndSpace(p); err != nil {
			mbuf.FreeChain(chain)
			return err
		}
		if kc.Conn.SndAvail() >= n {
			break
		}
	}
	ctx.Charge(kc.K.Mach.SocketPerPacket, kern.CatProto)
	return kc.Conn.Append(ctx, chain, n, true)
}

// Recv returns up to max bytes of received data as a chain of REGULAR
// mbufs, converting any M_WCAB descriptors with an asynchronous DMA copy
// and resynchronizing on its completion. It returns nil at end of stream.
func (kc *KConn) Recv(p *sim.Proc, max units.Size) (*mbuf.Mbuf, error) {
	if !kc.Conn.WaitRcvData(p) {
		if kc.Conn.Err != nil {
			return nil, kc.Conn.Err
		}
		return nil, nil // orderly EOF
	}
	chain, n := kc.Conn.DequeueRcv(max)
	if n == 0 {
		return nil, nil
	}
	ctx := kc.K.TaskCtx(p, kc.K.KernelTask)
	out := kc.convert(p, ctx, chain)
	kc.Conn.WindowUpdate(ctx)
	return out, nil
}

// convert rebuilds a dequeued chain with every descriptor materialized
// into kernel buffers.
func (kc *KConn) convert(p *sim.Proc, ctx kern.Ctx, chain *mbuf.Mbuf) *mbuf.Mbuf {
	var head, tail *mbuf.Mbuf
	appendM := func(m *mbuf.Mbuf) {
		if head == nil {
			head = m
		} else {
			tail.SetNext(m)
		}
		tail = m
	}
	done := sim.NewSignal(kc.K.Eng)
	for m := chain; m != nil; {
		next := m.Next()
		m.SetNext(nil)
		switch m.Type() {
		case mbuf.TData, mbuf.TCluster:
			appendM(m)
		case mbuf.TWCAB:
			w := m.WCABRef()
			ln := m.Len()
			kc.Converted++
			kc.ConvertedBytes += ln
			if w.CopyOut != nil {
				// Asynchronous DMA copy; resynchronize with the driver on
				// its end-of-DMA notification (Section 5).
				var bufs [][]byte
				var ms []*mbuf.Mbuf
				for off := units.Size(0); off < ln; off += mbuf.MCLBYTES {
					sz := ln - off
					if sz > mbuf.MCLBYTES {
						sz = mbuf.MCLBYTES
					}
					b := make([]byte, sz)
					bufs = append(bufs, b)
					ms = append(ms, mbuf.AdoptCluster(b, 0, sz))
				}
				fired := false
				w.CopyOut(m.Off(), ln, bufs, func(error) {
					// An adaptor reset surfaces as zeroed buffers here; the
					// UDP datagram path has no retransmission to lean on, so
					// the wiped payload is simply delivered short of its
					// checksum (and dropped upstream).
					fired = true
					done.Broadcast()
				})
				for !fired {
					done.Wait(p)
				}
				ctx.Charge(kc.K.Mach.InterruptCost, kern.CatIntr)
				for _, cm := range ms {
					appendM(cm)
				}
			} else {
				// No DMA path available: CPU copy.
				b := make([]byte, ln)
				ctx.CopyBytes(b, w.ReadFn(m.Off(), ln), ln)
				appendM(mbuf.AdoptCluster(b, 0, ln))
			}
			m.Free()
		case mbuf.TUIO:
			panic("kernapp: M_UIO mbuf in receive path")
		}
		m = next
	}
	return head
}

// RecvAll drains the stream into a single byte slice (convenience for
// tests and simple services).
func (kc *KConn) RecvAll(p *sim.Proc) ([]byte, error) {
	var out []byte
	for {
		chain, err := kc.Recv(p, 256*units.KB)
		if err != nil {
			return out, err
		}
		if chain == nil {
			return out, nil
		}
		out = append(out, mbuf.Materialize(chain)...)
		mbuf.FreeChain(chain)
	}
}

// Close half-closes the connection from kernel context.
func (kc *KConn) Close(p *sim.Proc) {
	kc.Conn.Close(kc.K.TaskCtx(p, kc.K.KernelTask))
}
