package kernapp_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/kernapp"
	"repro/internal/mbuf"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/units"
	"repro/internal/wire"
)

const (
	addrA = wire.Addr(0x0a000001)
	addrB = wire.Addr(0x0a000002)
	port  = 6000
)

// rig builds two single-copy hosts with a block server on B.
func rig(t *testing.T, blockSize units.Size) (*core.Testbed, *core.Host, *core.Host, *kernapp.BlockServer) {
	t.Helper()
	tb := core.NewTestbed(3)
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mode: socket.ModeSingleCopy, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mode: socket.ModeSingleCopy, CABNode: 2})
	tb.RouteCAB(a, b)
	bs := kernapp.NewBlockServer(b.K, b.Stk, port, blockSize)
	tb.Eng.Go("blockserver", bs.Run)
	return tb, a, b, bs
}

func TestInKernelServerToUserClient(t *testing.T) {
	// Scenario: in-kernel application transmits through the CAB (share
	// semantics, single-copy automatically); user-space socket client
	// receives via the single-copy read path.
	tb, a, _, bs := rig(t, 64*units.KB)
	var got []byte
	task := a.NewUserTask("client", 0)
	tb.Eng.Go("client", func(p *sim.Proc) {
		s, err := a.Dial(p, task, addrB, port)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		req := task.Space.Alloc(kernapp.ReqLen, 8)
		copy(req.Bytes(), kernapp.EncodeRequest(5, 4))
		s.WriteAll(p, req)
		copy(req.Bytes(), kernapp.EncodeRequest(0, 0)) // close
		s.WriteAll(p, req)
		buf := task.Space.Alloc(128*units.KB, 8)
		for {
			n, err := s.Read(p, buf)
			if n > 0 {
				got = append(got, buf.Slice(0, n).Bytes()...)
			}
			if err != nil {
				return
			}
		}
	})
	tb.Eng.Run()
	tb.Eng.KillAll()

	var want []byte
	for i := uint32(5); i < 9; i++ {
		want = append(want, bs.Block(i)...)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("block data mismatch: got %d bytes, want %d", len(got), len(want))
	}
	if bs.Requests != 2 || bs.BlocksServed != 4 {
		t.Fatalf("requests=%d blocks=%d, want 2/4", bs.Requests, bs.BlocksServed)
	}
}

func TestInKernelReceiveConvertsWCAB(t *testing.T) {
	// Scenario: in-kernel application receives through the CAB — large
	// packets arrive as M_WCAB and must be converted to regular mbufs
	// (with DMA resynchronization) before entering the application.
	tb := core.NewTestbed(4)
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mode: socket.ModeSingleCopy, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mode: socket.ModeSingleCopy, CABNode: 2})
	tb.RouteCAB(a, b)

	var kc *kernapp.KConn
	var got []byte
	lis := b.Stk.Listen(port)
	tb.Eng.Go("ksink", func(p *sim.Proc) {
		kc = kernapp.NewKConn(b.K, lis.Accept(p))
		data, err := kc.RecvAll(p)
		if err != nil {
			t.Errorf("recv: %v", err)
		}
		got = data
	})

	task := a.NewUserTask("client", 0)
	total := units.Size(512 * units.KB)
	tb.Eng.Go("client", func(p *sim.Proc) {
		s, err := a.Dial(p, task, addrB, port)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		buf := task.Space.Alloc(total, 8)
		for i := range buf.Bytes() {
			buf.Bytes()[i] = byte(i * 5)
		}
		s.WriteAll(p, buf)
		s.Close(p)
	})
	tb.Eng.Run()
	tb.Eng.KillAll()

	if units.Size(len(got)) != total {
		t.Fatalf("received %d bytes, want %d", len(got), total)
	}
	for i := range got {
		if got[i] != byte(i*5) {
			t.Fatalf("byte %d corrupted", i)
		}
	}
	if kc.Converted == 0 {
		t.Fatal("expected WCAB→regular conversions for the in-kernel receiver")
	}
	if b.CAB.FreePages() != b.CAB.TotalPages() {
		t.Fatal("receiver CAB pages leaked after conversion")
	}
}

func TestInKernelOverLegacyDevice(t *testing.T) {
	// Scenario: in-kernel applications communicating through existing
	// interfaces must be unaffected (regular mbufs both ways).
	tb := core.NewTestbed(5)
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mode: socket.ModeSingleCopy, CABNode: 1, EthNode: 11})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mode: socket.ModeSingleCopy, CABNode: 2, EthNode: 12})
	tb.RouteEth(a, b)

	bs := kernapp.NewBlockServer(b.K, b.Stk, port, 8*units.KB)
	tb.Eng.Go("blockserver", bs.Run)

	var got []byte
	tb.Eng.Go("kclient", func(p *sim.Proc) {
		conn, err := a.Stk.Connect(a.K.TaskCtx(p, a.K.KernelTask), addrB, port)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		kc := kernapp.NewKConn(a.K, conn)
		kc.Send(p, mbuf.NewData(kernapp.EncodeRequest(1, 2)))
		kc.Send(p, mbuf.NewData(kernapp.EncodeRequest(0, 0)))
		data, _ := kc.RecvAll(p)
		got = data
	})
	tb.Eng.Run()
	tb.Eng.KillAll()

	want := append(bs.Block(1), bs.Block(2)...)
	if !bytes.Equal(got, want) {
		t.Fatalf("got %d bytes, want %d", len(got), len(want))
	}
}

func TestShareSemanticsChainOwnership(t *testing.T) {
	// Send takes ownership; cluster refcounts must reach zero after the
	// data is acknowledged (no leak assertions possible on Go memory, but
	// WCAB-converted CAB pages must drain).
	tb, a, b, _ := rig(t, 16*units.KB)
	_ = a
	task := a.NewUserTask("client", 0)
	tb.Eng.Go("client", func(p *sim.Proc) {
		s, err := a.Dial(p, task, addrB, port)
		if err != nil {
			return
		}
		req := task.Space.Alloc(kernapp.ReqLen, 8)
		copy(req.Bytes(), kernapp.EncodeRequest(9, 1))
		s.WriteAll(p, req)
		copy(req.Bytes(), kernapp.EncodeRequest(0, 0))
		s.WriteAll(p, req)
		buf := task.Space.Alloc(64*units.KB, 8)
		for {
			if _, err := s.Read(p, buf); err != nil {
				return
			}
		}
	})
	tb.Eng.Run()
	tb.Eng.KillAll()
	if b.CAB.FreePages() != b.CAB.TotalPages() {
		t.Fatalf("server CAB pages leaked: %d of %d free",
			b.CAB.FreePages(), b.CAB.TotalPages())
	}
	_ = mem.Buf{}
}

func TestInterleavedSmallLargePacketsStayOrdered(t *testing.T) {
	// Section 5's reordering concern: small packets (delivered straight
	// from the auto-DMA buffer) and large packets (M_WCAB, converted with
	// an asynchronous DMA) must not be reordered on their way into an
	// in-kernel application.
	tb := core.NewTestbed(6)
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mode: socket.ModeSingleCopy, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mode: socket.ModeSingleCopy, CABNode: 2})
	tb.RouteCAB(a, b)

	var got []byte
	lis := b.Stk.Listen(port)
	var kc *kernapp.KConn
	tb.Eng.Go("ksink", func(p *sim.Proc) {
		kc = kernapp.NewKConn(b.K, lis.Accept(p))
		data, _ := kc.RecvAll(p)
		got = data
	})

	// Alternate 200-byte and 24KB writes; NoCoalesce keeps them as
	// separate packets, so receive alternates RxSmall and RxLarge.
	const rounds = 12
	var want []byte
	task := a.NewUserTask("client", 0)
	tb.Eng.Go("client", func(p *sim.Proc) {
		s, err := a.Dial(p, task, addrB, port)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for i := 0; i < rounds; i++ {
			smallN := units.Size(200)
			largeN := units.Size(24 * units.KB)
			small := task.Space.Alloc(smallN, 8)
			large := task.Space.Alloc(largeN, 8)
			for j := range small.Bytes() {
				small.Bytes()[j] = byte(2 * i)
			}
			for j := range large.Bytes() {
				large.Bytes()[j] = byte(2*i + 1)
			}
			s.WriteAll(p, small)
			s.WriteAll(p, large)
		}
		s.Close(p)
	})
	for i := 0; i < rounds; i++ {
		want = append(want, bytes.Repeat([]byte{byte(2 * i)}, 200)...)
		want = append(want, bytes.Repeat([]byte{byte(2*i + 1)}, 24*1024)...)
	}
	tb.Eng.Run()
	tb.Eng.KillAll()

	if !bytes.Equal(got, want) {
		t.Fatalf("interleaved stream reordered or corrupted (%d bytes)", len(got))
	}
	if b.Drv.Stats.RxSmall == 0 || b.Drv.Stats.RxLarge == 0 {
		t.Fatalf("test vacuous: RxSmall=%d RxLarge=%d (need both paths)",
			b.Drv.Stats.RxSmall, b.Drv.Stats.RxLarge)
	}
	if kc.Converted == 0 {
		t.Fatal("no WCAB conversions happened")
	}
}
