package taxonomy

import "testing"

func derive(api API, cs CsumLoc, buf Buffering, mv Movement) Cell {
	return Derive(Config{api, cs, buf, mv})
}

func TestCABConfigurationIsSingleCopy(t *testing.T) {
	// The paper's focus: copy API, header checksum, outboard buffering,
	// DMA with checksum engine → a single DMA_C, single-copy class.
	c := derive(APICopy, CsumHeader, BufOutboard, MoveDMACsum)
	if c.Class != SingleCopy {
		t.Fatalf("CAB cell class = %v, want single-copy", c.Class)
	}
	if len(c.Ops) != 1 || c.Ops[0] != OpDMAC {
		t.Fatalf("CAB ops = %v, want [DMA_C]", c.Ops)
	}
	if c.HostDataAccesses != 0 {
		t.Fatalf("CAB host accesses = %d, want 0", c.HostDataAccesses)
	}
}

func TestCopyAPIWithoutOutboardNeedsCopy(t *testing.T) {
	// The dashed-box rule: copy semantics without outboard buffering
	// forces a memory-memory copy, whatever the movement support.
	for _, buf := range []Buffering{BufNone, BufPacket} {
		for _, mv := range []Movement{MovePIO, MoveDMA, MoveDMACsum} {
			for _, cs := range []CsumLoc{CsumHeader, CsumTrailer} {
				c := derive(APICopy, cs, buf, mv)
				if c.Class != TwoCopy {
					t.Errorf("%v: class %v, want two-copy", c.Config, c.Class)
				}
			}
		}
	}
}

func TestSharedAPINeverCopies(t *testing.T) {
	for _, cs := range []CsumLoc{CsumHeader, CsumTrailer} {
		for _, buf := range []Buffering{BufNone, BufPacket, BufOutboard} {
			for _, mv := range []Movement{MovePIO, MoveDMA, MoveDMACsum} {
				c := derive(APIShared, cs, buf, mv)
				if c.Class == TwoCopy {
					t.Errorf("%v: shared API should never need a copy", c.Config)
				}
			}
		}
	}
}

func TestPlainDMANeedsSeparateRead(t *testing.T) {
	// The dotted-box rule: plain DMA cannot checksum, so interfaces
	// without a host copy to piggyback on need a separate read pass.
	c := derive(APIShared, CsumTrailer, BufOutboard, MoveDMA)
	if c.Class != CopyPlusRead {
		t.Fatalf("class = %v, want copy+read", c.Class)
	}
	if c.Ops[0] != OpReadC {
		t.Fatalf("ops = %v, want Read_C first", c.Ops)
	}
}

func TestHeaderChecksumWithoutBufferingForcesEarlyChecksum(t *testing.T) {
	// Header checksum + no buffering: even PIO (which could checksum
	// inline) must compute it before the header streams out.
	c := derive(APIShared, CsumHeader, BufNone, MovePIO)
	if len(c.Ops) != 2 || c.Ops[0] != OpReadC || c.Ops[1] != OpPIO {
		t.Fatalf("ops = %v, want [Read_C PIO]", c.Ops)
	}
}

func TestTrailerChecksumMergesWithPIO(t *testing.T) {
	// Trailer checksum can always be merged with a PIO transfer.
	c := derive(APIShared, CsumTrailer, BufNone, MovePIO)
	if len(c.Ops) != 1 || c.Ops[0] != OpPIOC {
		t.Fatalf("ops = %v, want [PIO_C]", c.Ops)
	}
	if c.Class != SingleCopy {
		t.Fatalf("class = %v, want single-copy", c.Class)
	}
}

func TestPacketBufferingAllowsHeaderInsertion(t *testing.T) {
	// With a packet buffered on the adaptor, a header checksum can be
	// inserted after the data streams out: shared-API PIO is single copy.
	c := derive(APIShared, CsumHeader, BufPacket, MovePIO)
	if c.Class != SingleCopy {
		t.Fatalf("class = %v, want single-copy", c.Class)
	}
	if len(c.Ops) != 1 || c.Ops[0] != OpPIOC {
		t.Fatalf("ops = %v, want [PIO_C]", c.Ops)
	}
}

func TestCopyMergesChecksum(t *testing.T) {
	// When a copy is forced and the transfer cannot checksum, the
	// checksum merges into the copy — no third pass.
	c := derive(APICopy, CsumHeader, BufNone, MoveDMA)
	if len(c.Ops) != 2 || c.Ops[0] != OpCopyC || c.Ops[1] != OpDMA {
		t.Fatalf("ops = %v, want [Copy_C DMA]", c.Ops)
	}
	// Data touched twice by the copy, never a third time.
	if c.HostDataAccesses != 2 {
		t.Fatalf("accesses = %d, want 2", c.HostDataAccesses)
	}
}

func TestAllEnumerates36Cells(t *testing.T) {
	cells := All()
	if len(cells) != 36 {
		t.Fatalf("cells = %d, want 2×2×3×3 = 36", len(cells))
	}
	// Single-copy interfaces are exactly those with at most one op and no
	// host memory copy.
	for _, c := range cells {
		if c.Class == SingleCopy && c.HostDataAccesses > 1 {
			t.Errorf("%v: single-copy with %d host accesses", c.Config, c.HostDataAccesses)
		}
		if len(c.Ops) == 0 {
			t.Errorf("%v: empty op sequence", c.Config)
		}
	}
}

func TestOutboardBufferingMinimizesAccesses(t *testing.T) {
	// For the copy-semantics API, outboard buffering + checksum engine is
	// the unique best column: zero host data accesses.
	best := 0
	for _, c := range All() {
		if c.Config.API != APICopy {
			continue
		}
		if c.HostDataAccesses == 0 {
			best++
			if c.Config.Buf != BufOutboard || c.Config.Move != MoveDMACsum {
				t.Errorf("unexpected zero-access config %v", c.Config)
			}
		}
	}
	if best != 2 { // header and trailer checksum variants
		t.Fatalf("zero-access copy-API configs = %d, want 2", best)
	}
}

func TestFormatRendersGrid(t *testing.T) {
	out := Format()
	if len(out) < 400 {
		t.Fatalf("table too short:\n%s", out)
	}
	t.Logf("\n%s", out)
}

func TestEveryCellComputesChecksumExactlyOnce(t *testing.T) {
	for _, c := range All() {
		n := 0
		for _, op := range c.Ops {
			switch op {
			case OpCopyC, OpReadC, OpPIOC, OpDMAC:
				n++
			}
		}
		if n != 1 {
			t.Errorf("%v: checksum computed %d times (ops %v)", c.Config, n, c.Ops)
		}
	}
}

func TestEveryCellMovesDataToDeviceOnce(t *testing.T) {
	for _, c := range All() {
		n := 0
		for _, op := range c.Ops {
			switch op {
			case OpPIO, OpPIOC, OpDMA, OpDMAC:
				n++
			}
		}
		if n != 1 {
			t.Errorf("%v: %d device transfers (ops %v)", c.Config, n, c.Ops)
		}
	}
}

func TestReceiveCABIsSingleCopy(t *testing.T) {
	// The CAB receive path: outboard buffering + checksum engine lets the
	// read DMA land directly in the user buffer, already verified.
	c := DeriveReceive(Config{APICopy, CsumHeader, BufOutboard, MoveDMACsum})
	if c.Class != SingleCopy || len(c.Ops) != 1 || c.Ops[0] != OpDMAC {
		t.Fatalf("CAB receive = %v (%v), want [DMA_C] single-copy", c.Ops, c.Class)
	}
}

func TestReceiveCopyAPIWithoutOutboardStages(t *testing.T) {
	for _, buf := range []Buffering{BufNone, BufPacket} {
		for _, mv := range []Movement{MovePIO, MoveDMA, MoveDMACsum} {
			c := DeriveReceive(Config{APICopy, CsumHeader, buf, mv})
			if c.Class != TwoCopy {
				t.Errorf("%v receive: %v, want two-copy (staging)", c.Config, c.Class)
			}
		}
	}
}

func TestReceivePlainDMAMergesChecksumIntoCopy(t *testing.T) {
	c := DeriveReceive(Config{APICopy, CsumHeader, BufNone, MoveDMA})
	if len(c.Ops) != 2 || c.Ops[0] != OpDMA || c.Ops[1] != OpCopyC {
		t.Fatalf("ops = %v, want [DMA Copy_C]", c.Ops)
	}
}

func TestReceiveSharedDMANeedsRead(t *testing.T) {
	c := DeriveReceive(Config{APIShared, CsumHeader, BufNone, MoveDMA})
	if c.Class != CopyPlusRead {
		t.Fatalf("class = %v, want copy+read", c.Class)
	}
}

func TestReceiveChecksumOnceAndOneTransfer(t *testing.T) {
	for _, c := range AllReceive() {
		csums, xfers := 0, 0
		for _, op := range c.Ops {
			switch op {
			case OpCopyC, OpReadC, OpPIOC, OpDMAC:
				csums++
			}
			switch op {
			case OpPIO, OpPIOC, OpDMA, OpDMAC:
				xfers++
			}
		}
		if csums != 1 || xfers != 1 {
			t.Errorf("%v: csums=%d xfers=%d (ops %v)", c.Config, csums, xfers, c.Ops)
		}
	}
}

func TestFormatReceive(t *testing.T) {
	out := FormatReceive()
	if len(out) < 300 {
		t.Fatalf("short table:\n%s", out)
	}
	t.Logf("\n%s", out)
}
