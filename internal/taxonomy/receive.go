package taxonomy

import (
	"fmt"
	"strings"
)

// Receive-side taxonomy: the mirror of Table 1 for the read path, derived
// from the corresponding constraints (Section 2.2's receive walk-through
// and the host-interface design space of [19]):
//
//  1. With copy semantics the data arrives before the application posts
//     its read buffer, so it must be staged somewhere. Without outboard
//     buffering the staging is host kernel memory, and delivering to the
//     user costs a memory-memory copy. With outboard buffering the packet
//     waits in adaptor memory and a single device transfer lands it
//     directly in the user's buffer at read time. Shared-semantics APIs
//     deliver into the shared buffers either way.
//  2. Checksum placement is irrelevant on receive — the whole packet is
//     present before verification — but the verification still has to
//     read every byte unless it merges with the device transfer (PIO, or
//     a DMA checksum engine summing as the packet arrives) or with the
//     staging copy.
//  3. Single-packet adaptor buffering does not change the receive
//     structure: it cannot hold data until an arbitrary later read.
type _ = struct{} // (documentation anchor)

// DeriveReceive computes the receive-path operation sequence for one
// configuration.
func DeriveReceive(cfg Config) Cell {
	var ops []Op

	needCopy := cfg.API == APICopy && cfg.Buf != BufOutboard

	csumDone := false
	// The arrival transfer: media → host kernel buffers (no outboard
	// buffering) or media → network memory then device → destination
	// buffer (outboard). Either way it is one device transfer from the
	// host's point of view.
	switch cfg.Move {
	case MovePIO:
		// The CPU touches the data anyway: verify during the transfer.
		ops = append(ops, OpPIOC)
		csumDone = true
	case MoveDMA:
		ops = append(ops, OpDMA)
	case MoveDMACsum:
		ops = append(ops, OpDMAC)
		csumDone = true
	}

	if needCopy {
		if !csumDone {
			// Fold verification into the unavoidable staging copy.
			ops = append(ops, OpCopyC)
			csumDone = true
		} else {
			ops = append(ops, OpCopy)
		}
	}
	if !csumDone {
		ops = append(ops, OpReadC)
	}

	cell := Cell{Config: cfg, Ops: ops}
	for _, op := range ops {
		switch op {
		case OpCopy, OpCopyC:
			cell.HostDataAccesses += 2
		case OpReadC, OpPIO, OpPIOC:
			cell.HostDataAccesses++
		}
	}
	cell.Class = classify(ops)
	return cell
}

// AllReceive enumerates the receive-side table. Checksum placement does
// not matter on receive, so rows collapse to API × buffering × movement.
func AllReceive() []Cell {
	var cells []Cell
	for _, api := range []API{APICopy, APIShared} {
		for _, buf := range []Buffering{BufNone, BufPacket, BufOutboard} {
			for _, mv := range []Movement{MovePIO, MoveDMA, MoveDMACsum} {
				cells = append(cells, DeriveReceive(Config{api, CsumHeader, buf, mv}))
			}
		}
	}
	return cells
}

// FormatReceive renders the receive-side grid.
func FormatReceive() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s | %-22s | %-22s | %-22s\n",
		"API", "no buffering", "packet buffering", "outboard buffering")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 88))
	for _, api := range []API{APICopy, APIShared} {
		for _, mv := range []Movement{MovePIO, MoveDMA, MoveDMACsum} {
			cols := make([]string, 3)
			for i, buf := range []Buffering{BufNone, BufPacket, BufOutboard} {
				cell := DeriveReceive(Config{api, CsumHeader, buf, mv})
				parts := make([]string, len(cell.Ops))
				for j, op := range cell.Ops {
					parts[j] = string(op)
				}
				cols[i] = strings.Join(parts, " ")
			}
			fmt.Fprintf(&b, "%-8s | %-22s | %-22s | %-22s  (%s)\n",
				api, cols[0], cols[1], cols[2], mv)
		}
	}
	return b.String()
}
