// Package taxonomy reproduces the host-interface taxonomy of Table 1
// (after Steenkiste's "A systematic approach to host interface design for
// high-speed networks"): for each combination of
//
//   - API semantics (copy or shared),
//   - transport checksum placement (header or trailer), and
//   - adaptor architecture (no buffering / single-packet buffering /
//     outboard buffering, each with PIO, plain DMA, or DMA plus an
//     outboard checksum engine),
//
// it derives the minimal sequence of data-touching operations the transmit
// path must perform, and classifies the interface (single-copy, copy plus
// separate checksum read, or two-copy).
//
// The derivation follows the constraints the paper lays out:
//
//  1. Copy-semantics APIs must not let the device read user memory after
//     the call returns; without outboard buffering, the (retransmittable)
//     data must first move into kernel buffers — a memory-memory copy.
//     Outboard buffering removes this copy because the adaptor itself
//     holds the retransmission data. Shared-semantics APIs never need it.
//  2. A header checksum must be known before the header leaves the host,
//     so it must be computed during an earlier host pass over the data
//     (merged into a copy or taken as a separate read) — unless the
//     adaptor buffers at least a full packet, in which case the adaptor
//     (or the host, for outboard buffers) can insert it after the data
//     streams out. A trailer checksum can always be merged into the final
//     transfer.
//  3. PIO passes the data through the CPU, so a checksum can be merged
//     with it for free; plain DMA never touches the CPU, so the checksum
//     needs a separate read unless rule 2 already produced it; a DMA
//     engine with checksum support merges it in hardware.
package taxonomy

import (
	"fmt"
	"strings"
)

// API is the application programming interface semantics.
type API int

// API kinds.
const (
	APICopy API = iota
	APIShared
)

func (a API) String() string {
	if a == APICopy {
		return "copy"
	}
	return "shared"
}

// CsumLoc is where the transport protocol places the data checksum.
type CsumLoc int

// Checksum placements.
const (
	CsumHeader CsumLoc = iota
	CsumTrailer
)

func (c CsumLoc) String() string {
	if c == CsumHeader {
		return "header"
	}
	return "trailer"
}

// Buffering is the adaptor's data buffering capability.
type Buffering int

// Buffering classes.
const (
	BufNone Buffering = iota
	BufPacket
	BufOutboard
)

func (b Buffering) String() string {
	switch b {
	case BufNone:
		return "none"
	case BufPacket:
		return "packet"
	default:
		return "outboard"
	}
}

// Movement is the adaptor's data movement support.
type Movement int

// Movement classes.
const (
	MovePIO Movement = iota
	MoveDMA
	MoveDMACsum
)

func (m Movement) String() string {
	switch m {
	case MovePIO:
		return "PIO"
	case MoveDMA:
		return "DMA"
	default:
		return "DMA+csum"
	}
}

// Op is one data-touching operation.
type Op string

// Data-touching operations (Table 1's vocabulary).
const (
	OpCopy  Op = "Copy"   // memory-memory copy
	OpCopyC Op = "Copy_C" // copy with checksum folded in
	OpReadC Op = "Read_C" // separate checksum read
	OpPIO   Op = "PIO"    // programmed IO to the device
	OpPIOC  Op = "PIO_C"  // programmed IO with checksum folded in
	OpDMA   Op = "DMA"    // DMA to the device
	OpDMAC  Op = "DMA_C"  // DMA with outboard checksum engine
)

// Class is the cost classification of an interface.
type Class int

// Interface classes.
const (
	// SingleCopy: the data crosses the memory system once, checksummed on
	// the way (the solid single-copy entries).
	SingleCopy Class = iota
	// CopyPlusRead: one data movement plus a separate checksum read (the
	// dotted-box entries).
	CopyPlusRead
	// TwoCopy: an extra memory-memory copy is unavoidable (the dashed-box
	// entries).
	TwoCopy
)

func (c Class) String() string {
	switch c {
	case SingleCopy:
		return "single-copy"
	case CopyPlusRead:
		return "copy+read"
	default:
		return "two-copy"
	}
}

// Config identifies one cell of the taxonomy.
type Config struct {
	API  API
	Csum CsumLoc
	Buf  Buffering
	Move Movement
}

func (c Config) String() string {
	return fmt.Sprintf("%v/%v/%v/%v", c.API, c.Csum, c.Buf, c.Move)
}

// Cell is the derived result for one configuration.
type Cell struct {
	Config Config
	Ops    []Op
	Class  Class
	// HostDataAccesses counts how many times the host CPU or a
	// memory-memory copy touches each data byte (the per-byte cost the
	// paper minimizes). Device DMA does not count; PIO counts once.
	HostDataAccesses int
}

// Derive computes the operation sequence for one configuration.
func Derive(cfg Config) Cell {
	var ops []Op

	// Rule 1: does copy semantics force a host copy?
	// Without outboard buffering, the protocol needs host-resident
	// retransmit data, so copy-API data must be copied into kernel
	// buffers. (Packet buffering on the adaptor is transmit FIFO space,
	// not retransmission storage.)
	needCopy := cfg.API == APICopy && cfg.Buf != BufOutboard

	// Rule 2: when must the checksum exist before the final transfer?
	// A header checksum must be available when the header leaves the
	// host, unless the adaptor buffers a whole packet (it can insert it)
	// or the data rests in outboard buffers (inserted there).
	csumEarly := cfg.Csum == CsumHeader && cfg.Buf == BufNone

	// Rule 3: can the final transfer compute the checksum?
	transferCanCsum := cfg.Move == MovePIO || cfg.Move == MoveDMACsum

	csumDone := false
	if needCopy {
		// A copy is unavoidable, so fold the checksum into it — an extra
		// pass would only add memory traffic.
		ops = append(ops, OpCopyC)
		csumDone = true
	} else if csumEarly || !transferCanCsum {
		// No copy to merge with and the final transfer cannot produce
		// the checksum (or it is needed before the header leaves): a
		// separate checksum read.
		ops = append(ops, OpReadC)
		csumDone = true
	}

	// The final transfer.
	switch cfg.Move {
	case MovePIO:
		if !csumDone {
			ops = append(ops, OpPIOC)
		} else {
			ops = append(ops, OpPIO)
		}
	case MoveDMA:
		ops = append(ops, OpDMA)
	case MoveDMACsum:
		if !csumDone {
			ops = append(ops, OpDMAC)
		} else {
			ops = append(ops, OpDMA)
		}
	}

	cell := Cell{Config: cfg, Ops: ops}
	for _, op := range ops {
		switch op {
		case OpCopy, OpCopyC:
			cell.HostDataAccesses += 2 // read + write
		case OpReadC:
			cell.HostDataAccesses++
		case OpPIO, OpPIOC:
			cell.HostDataAccesses++
		}
	}
	cell.Class = classify(ops)
	return cell
}

// classify maps an op sequence to Table 1's three regimes.
func classify(ops []Op) Class {
	hasMemCopy := false
	hasRead := false
	for _, op := range ops {
		switch op {
		case OpCopy, OpCopyC:
			hasMemCopy = true
		case OpReadC:
			hasRead = true
		}
	}
	switch {
	case hasMemCopy:
		return TwoCopy
	case hasRead:
		return CopyPlusRead
	default:
		return SingleCopy
	}
}

// All enumerates every cell of Table 1 in row-major order (API × checksum
// rows; buffering × movement columns).
func All() []Cell {
	var cells []Cell
	for _, api := range []API{APICopy, APIShared} {
		for _, cs := range []CsumLoc{CsumHeader, CsumTrailer} {
			for _, buf := range []Buffering{BufNone, BufPacket, BufOutboard} {
				for _, mv := range []Movement{MovePIO, MoveDMA, MoveDMACsum} {
					cells = append(cells, Derive(Config{api, cs, buf, mv}))
				}
			}
		}
	}
	return cells
}

// Format renders the taxonomy as a Table 1-style grid.
func Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s | %-22s | %-22s | %-22s\n",
		"API", "csum", "no buffering", "packet buffering", "outboard buffering")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 96))
	for _, api := range []API{APICopy, APIShared} {
		for _, cs := range []CsumLoc{CsumHeader, CsumTrailer} {
			for _, mv := range []Movement{MovePIO, MoveDMA, MoveDMACsum} {
				cols := make([]string, 3)
				for i, buf := range []Buffering{BufNone, BufPacket, BufOutboard} {
					cell := Derive(Config{api, cs, buf, mv})
					parts := make([]string, len(cell.Ops))
					for j, op := range cell.Ops {
						parts[j] = string(op)
					}
					cols[i] = strings.Join(parts, " ")
				}
				fmt.Fprintf(&b, "%-8s %-8s | %-22s | %-22s | %-22s  (%s)\n",
					api, cs, cols[0], cols[1], cols[2], mv)
			}
		}
	}
	return b.String()
}
