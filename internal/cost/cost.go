// Package cost defines the machine cost models that drive the simulator's
// virtual-time accounting.
//
// All constants for the Alpha 3000/400 come straight from the paper
// (Section 7): memory-to-memory copy of a 1 MByte region runs at 350
// Mbit/s, a checksum read of a 512 KByte region at 630 Mbit/s, the
// per-packet protocol overhead is about 300 microseconds, and the VM
// operation costs are those of Table 2 (pin = 35 + 29·n µs, unpin =
// 48 + 3.9·n µs, map = 6 + 4.5·n µs for n pages). The Alpha 3000/300LX is
// "about half as powerful" with a half-speed Turbochannel.
//
// The Turbochannel DMA model reflects Section 7.1: the TcIA chip cannot
// pipeline the DMA engines and is limited to short (8-word) bursts, which
// caps effective adaptor throughput well below the 300 Mbit/s design point.
package cost

import "repro/internal/units"

// Machine models the per-byte, per-page, and per-packet costs of one host
// plus its IO-bus DMA characteristics.
type Machine struct {
	Name string

	// PageSize is the VM page size (8 KB on Alpha OSF/1).
	PageSize units.Size

	// CopyRateBase is the CPU memory-to-memory copy rate with no cache
	// locality (large regions).
	CopyRateBase units.Rate
	// CsumRateBase is the CPU checksum-read rate with no cache locality.
	CsumRateBase units.Rate
	// CacheSize and CacheBoost model locality: a region that fits in the
	// cache is processed up to (1+CacheBoost)× faster; the speedup decays
	// linearly to zero as the region size reaches CacheSize.
	CacheSize  units.Size
	CacheBoost float64

	// Per-packet protocol processing costs. Their sum for one
	// transmitted packet is the paper's ~300 µs per-packet overhead.
	SocketPerPacket units.Time // socket-layer bookkeeping per packet's worth
	TCPPerPacket    units.Time // transport packetization, state, header
	IPPerPacket     units.Time // routing and header
	DriverPerPacket units.Time // driver request setup per packet
	InterruptCost   units.Time // taking and dismissing one interrupt
	SyscallCost     units.Time // fixed read/write syscall entry/exit

	// Table 2 VM operation costs: base + per-page.
	PinBase      units.Time
	PinPerPage   units.Time
	UnpinBase    units.Time
	UnpinPerPage units.Time
	MapBase      units.Time
	MapPerPage   units.Time

	// IO-bus DMA model: a transfer costs DMASetup once, then moves
	// DMABurstBytes per burst, each burst taking DMABurstTime on the bus
	// plus DMABurstGap of dead time (TcIA turnaround, alignment fixups).
	DMASetup      units.Time
	DMABurstBytes units.Size
	DMABurstTime  units.Time
	DMABurstGap   units.Time
}

// Alpha400 returns the cost model for the DEC Alpha 3000/400 used for
// Figure 5, calibrated from the paper's Section 7 measurements.
func Alpha400() *Machine {
	return &Machine{
		Name:     "Alpha 3000/400",
		PageSize: 8 * units.KB,

		CopyRateBase: 350 * units.Mbps,
		CsumRateBase: 630 * units.Mbps,
		CacheSize:    512 * units.KB,
		CacheBoost:   0.2,

		SocketPerPacket: 50 * units.Microsecond,
		TCPPerPacket:    80 * units.Microsecond,
		IPPerPacket:     20 * units.Microsecond,
		DriverPerPacket: 60 * units.Microsecond,
		InterruptCost:   40 * units.Microsecond,
		SyscallCost:     30 * units.Microsecond,

		PinBase:      35 * units.Microsecond,
		PinPerPage:   29 * units.Microsecond,
		UnpinBase:    48 * units.Microsecond,
		UnpinPerPage: 3900 * units.Nanosecond, // 3.9 µs
		MapBase:      6 * units.Microsecond,
		MapPerPage:   4500 * units.Nanosecond, // 4.5 µs

		// 32-byte (8-word) bursts; ~320 ns on the bus plus ~1.38 µs of
		// TcIA dead time per burst caps large transfers near 150 Mbit/s,
		// matching the microcode-limited throughput of Section 7.1.
		DMASetup:      8 * units.Microsecond,
		DMABurstBytes: 32,
		DMABurstTime:  320 * units.Nanosecond,
		DMABurstGap:   1380 * units.Nanosecond,
	}
}

// Alpha300 returns the cost model for the DEC Alpha 3000/300LX used for
// Figure 6: a 125 MHz system, about half as powerful as the 3000/400, with
// a half-speed Turbochannel.
func Alpha300() *Machine {
	m := Alpha400()
	m.Name = "Alpha 3000/300LX"
	m.CopyRateBase = 175 * units.Mbps
	m.CsumRateBase = 315 * units.Mbps
	m.SocketPerPacket *= 2
	m.TCPPerPacket *= 2
	m.IPPerPacket *= 2
	m.DriverPerPacket *= 2
	m.InterruptCost *= 2
	m.SyscallCost *= 2
	m.PinBase *= 2
	m.PinPerPage *= 2
	m.UnpinBase *= 2
	m.UnpinPerPage *= 2
	m.MapBase *= 2
	m.MapPerPage *= 2
	m.DMABurstTime *= 2
	m.DMABurstGap *= 2
	return m
}

// localityRate scales base by the cache-locality model for a working set
// of region bytes.
func (m *Machine) localityRate(base units.Rate, region units.Size) units.Rate {
	if m.CacheSize <= 0 || region >= m.CacheSize {
		return base
	}
	hit := 1 - float64(region)/float64(m.CacheSize)
	if region <= 0 {
		hit = 1
	}
	return base * units.Rate(1+m.CacheBoost*hit)
}

// CopyRate returns the effective CPU copy rate when the working set spans
// region bytes.
func (m *Machine) CopyRate(region units.Size) units.Rate {
	return m.localityRate(m.CopyRateBase, region)
}

// CsumRate returns the effective CPU checksum-read rate for a working set
// of region bytes.
func (m *Machine) CsumRate(region units.Size) units.Rate {
	return m.localityRate(m.CsumRateBase, region)
}

// CopyTime returns the CPU time to copy n bytes when the working set spans
// region bytes.
func (m *Machine) CopyTime(n, region units.Size) units.Time {
	return m.CopyRate(region).TimeFor(n)
}

// CsumTime returns the CPU time to checksum-read n bytes with a working
// set of region bytes.
func (m *Machine) CsumTime(n, region units.Size) units.Time {
	return m.CsumRate(region).TimeFor(n)
}

// PinTime returns the cost of pinning n pages (Table 2).
func (m *Machine) PinTime(pages int) units.Time {
	return m.PinBase + units.Time(pages)*m.PinPerPage
}

// UnpinTime returns the cost of unpinning n pages (Table 2).
func (m *Machine) UnpinTime(pages int) units.Time {
	return m.UnpinBase + units.Time(pages)*m.UnpinPerPage
}

// MapTime returns the cost of mapping n pages into kernel space (Table 2).
func (m *Machine) MapTime(pages int) units.Time {
	return m.MapBase + units.Time(pages)*m.MapPerPage
}

// Pages returns the number of pages spanned by n bytes starting at byte
// offset off within a page-aligned space.
func (m *Machine) Pages(off, n units.Size) int {
	if n <= 0 {
		return 0
	}
	first := off / m.PageSize
	last := (off + n - 1) / m.PageSize
	return int(last-first) + 1
}

// DMATime returns the bus occupancy for one DMA transfer of n bytes.
func (m *Machine) DMATime(n units.Size) units.Time {
	if n <= 0 {
		return m.DMASetup
	}
	bursts := (n + m.DMABurstBytes - 1) / m.DMABurstBytes
	return m.DMASetup + units.Time(bursts)*(m.DMABurstTime+m.DMABurstGap)
}

// DMAEffectiveRate returns the effective throughput of a DMA transfer of n
// bytes, including setup.
func (m *Machine) DMAEffectiveRate(n units.Size) units.Rate {
	return units.RateOf(n, m.DMATime(n))
}

// PerPacketSend returns the total per-packet CPU cost of transmitting one
// packet (socket + transport + network + driver + one interrupt's worth of
// completion handling).
func (m *Machine) PerPacketSend() units.Time {
	return m.SocketPerPacket + m.TCPPerPacket + m.IPPerPacket +
		m.DriverPerPacket + m.InterruptCost
}

// PerPacketSendWithAcks adds the amortized cost of processing the
// acknowledgement stream (one delayed ACK per two data packets: interrupt
// dispatch, IP input, and header-only TCP processing), giving the ~300 µs
// total per-packet overhead the paper measured.
func (m *Machine) PerPacketSendWithAcks() units.Time {
	ack := m.InterruptCost + m.IPPerPacket + m.TCPPerPacket/2
	return m.PerPacketSend() + ack/2
}
