package cost

import (
	"math"
	"testing"

	"repro/internal/units"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v ± %v", what, got, want, tol)
	}
}

func TestCopyRateMatchesPaper(t *testing.T) {
	m := Alpha400()
	// Paper: copies of a 1 MByte region (no locality) run at 350 Mbit/s.
	approx(t, m.CopyRate(1*units.MB).Mbit(), 350, 0.1, "copy rate @1MB")
}

func TestCsumRateMatchesPaper(t *testing.T) {
	m := Alpha400()
	// Paper: a read of a 512 KByte region runs at 630 Mbit/s.
	approx(t, m.CsumRate(512*units.KB).Mbit(), 630, 0.1, "csum rate @512KB")
}

func TestCacheLocalityBoost(t *testing.T) {
	m := Alpha400()
	small := m.CopyRate(32 * units.KB)
	large := m.CopyRate(1 * units.MB)
	if small <= large {
		t.Fatalf("small-region copy (%v) should beat large-region copy (%v)", small, large)
	}
	if small > large*units.Rate(1+m.CacheBoost) {
		t.Fatalf("boost exceeds configured maximum: %v vs base %v", small, large)
	}
	// Monotone non-increasing in region size.
	prev := m.CopyRate(1 * units.KB)
	for r := 2 * units.KB; r <= 2*units.MB; r *= 2 {
		cur := m.CopyRate(r)
		if cur > prev {
			t.Fatalf("copy rate not monotone: %v @%v > %v", cur, r, prev)
		}
		prev = cur
	}
}

func TestTable2Costs(t *testing.T) {
	m := Alpha400()
	// Table 2: pin = 35 + 29n, unpin = 48 + 3.9n, map = 6 + 4.5n (µs).
	approx(t, m.PinTime(1).Micros(), 64, 0.01, "pin 1 page")
	approx(t, m.PinTime(4).Micros(), 35+29*4, 0.01, "pin 4 pages")
	approx(t, m.UnpinTime(10).Micros(), 48+3.9*10, 0.01, "unpin 10 pages")
	approx(t, m.MapTime(10).Micros(), 6+4.5*10, 0.01, "map 10 pages")
}

func TestPerPacketOverheadNear300us(t *testing.T) {
	m := Alpha400()
	// Paper: per-packet overhead measured at about 300 µs (including the
	// sender's share of acknowledgement processing).
	approx(t, m.PerPacketSendWithAcks().Micros(), 300, 15, "per-packet send cost")
}

func TestDMAEffectiveRateCappedByTcIA(t *testing.T) {
	m := Alpha400()
	// Section 7.1: microcode/TcIA limits throughput to less than half of
	// the 300 Mbit/s design bandwidth.
	r := m.DMAEffectiveRate(32 * units.KB).Mbit()
	if r < 120 || r > 155 {
		t.Fatalf("32KB DMA effective rate = %.1f Mb/s, want ~150", r)
	}
	// Small transfers pay proportionally more setup.
	small := m.DMAEffectiveRate(1 * units.KB).Mbit()
	if small >= r {
		t.Fatalf("1KB DMA rate %.1f should be below 32KB rate %.1f", small, r)
	}
}

func TestAlpha300HalfPower(t *testing.T) {
	m4, m3 := Alpha400(), Alpha300()
	approx(t, m3.CopyRate(1*units.MB).Mbit(), m4.CopyRate(1*units.MB).Mbit()/2, 0.1, "copy rate ratio")
	if m3.PerPacketSend() != 2*m4.PerPacketSend() {
		t.Fatalf("per-packet cost should double: %v vs %v", m3.PerPacketSend(), m4.PerPacketSend())
	}
	r4 := m4.DMAEffectiveRate(32 * units.KB)
	r3 := m3.DMAEffectiveRate(32 * units.KB)
	if r3 >= r4 {
		t.Fatalf("half-speed Turbochannel should be slower: %v vs %v", r3, r4)
	}
}

func TestPages(t *testing.T) {
	m := Alpha400()
	cases := []struct {
		off, n units.Size
		want   int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 8 * units.KB, 1},
		{0, 8*units.KB + 1, 2},
		{8*units.KB - 1, 2, 2},
		{4 * units.KB, 8 * units.KB, 2},
		{0, 64 * units.KB, 8},
		{1, 64 * units.KB, 9},
	}
	for _, c := range cases {
		if got := m.Pages(c.off, c.n); got != c.want {
			t.Errorf("Pages(%d,%d) = %d, want %d", c.off, c.n, got, c.want)
		}
	}
}

func TestCopyTimeZero(t *testing.T) {
	m := Alpha400()
	if m.CopyTime(0, 0) != 0 {
		t.Fatal("zero-length copy should cost nothing")
	}
}
