package ttcp

import (
	"repro/internal/core"
	"repro/internal/kern"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/units"
)

// UDP mode (ttcp -u): the sender blasts datagrams with no transport flow
// control — the only pacing is the adaptor itself, since with copy
// semantics each sendto returns when the data is outboard. The receiver
// reports what actually arrived; datagrams lost to adaptor memory or
// socket-buffer overflow are part of the result, as with the real tool.
// End of transmission is signaled by a burst of tiny sentinel datagrams,
// as classic ttcp -u did.

// eotLen is the sentinel datagram size.
const eotLen = 4

// UDPResult extends Result with loss accounting.
type UDPResult struct {
	Result
	Sent, Received units.Size
	LossFraction   float64
}

// RunUDP performs a UDP blast from snd to rcv.
func RunUDP(tb *core.Testbed, snd, rcv *core.Host, pr Params) UDPResult {
	if pr.Port == 0 {
		pr.Port = 5011
	}
	ss := &side{h: snd}
	ss.ttcpTask = snd.NewUserTask("ttcp-snd", 16*units.MB)
	ss.utilTask = snd.K.NewTask("util", kern.PrioIdle, nil)
	ss.bgdTask = snd.K.NewTask("bgd", kern.PrioKern, nil)
	rs := &side{h: rcv}
	rs.ttcpTask = rcv.NewUserTask("ttcp-rcv", 16*units.MB)
	rs.utilTask = rcv.K.NewTask("util", kern.PrioIdle, nil)
	rs.bgdTask = rcv.K.NewTask("bgd", kern.PrioKern, nil)

	var (
		t0, t1   units.Time
		received units.Size
	)
	snd0, rcv0 := ss.times(), rs.times()

	rx := socket.MustDGram(rcv.K, rcv.VM, rs.ttcpTask, rcv.Stk, pr.Port, rcv.SocketConfig())
	tb.Eng.Go("ttcp-udp-rcv", func(p *sim.Proc) {
		buf := rs.ttcpTask.Space.Alloc(pr.RWSize, 8)
		for {
			n, _, _ := rx.RecvFrom(p, buf)
			if n == eotLen {
				break
			}
			received += n
			rcv.K.Work(p, rs.ttcpTask, 2*units.Microsecond, kern.CatApp, false)
		}
		t1 = p.Now()
		ss.stop, rs.stop = true, true
		tb.StopSeries()
	})

	tb.Eng.Go("ttcp-udp-snd", func(p *sim.Proc) {
		cfg := snd.SocketConfig()
		cfg.UIOThreshold = pr.UIOThreshold
		tx := socket.MustDGram(snd.K, snd.VM, ss.ttcpTask, snd.Stk, 0, cfg)
		t0 = p.Now()
		snd0, rcv0 = ss.times(), rs.times()
		buf := ss.ttcpTask.Space.Alloc(pr.RWSize, 8)
		for i := range buf.Bytes() {
			buf.Bytes()[i] = byte(i)
		}
		for sent := units.Size(0); sent < pr.Total; sent += pr.RWSize {
			snd.K.Work(p, ss.ttcpTask, 2*units.Microsecond, kern.CatApp, false)
			tx.SendTo(p, buf, rcv.Cfg.Addr, pr.Port)
		}
		// EOT sentinels (several, in case some are lost).
		eot := ss.ttcpTask.Space.Alloc(eotLen, 8)
		for i := 0; i < 5; i++ {
			tx.SendTo(p, eot, rcv.Cfg.Addr, pr.Port)
			p.Sleep(500 * units.Microsecond)
		}
	})

	if pr.WithUtil {
		ss.startUtil(tb)
		rs.startUtil(tb)
	}
	if pr.WithBackground {
		ss.startBackground(tb)
		rs.startBackground(tb)
	}

	tb.Eng.Run()
	tb.Eng.KillAll()

	elapsed := t1 - t0
	res := UDPResult{
		Result: Result{
			Bytes:      received,
			Elapsed:    elapsed,
			Throughput: units.RateOf(received, elapsed),
		},
		Sent:     pr.Total,
		Received: received,
	}
	if pr.Total > 0 {
		res.LossFraction = 1 - float64(received)/float64(pr.Total)
	}
	res.Snd = ss.snapshot(elapsed, res.Throughput, snd0)
	res.Rcv = rs.snapshot(elapsed, res.Throughput, rcv0)
	return res
}
