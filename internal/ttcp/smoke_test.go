package ttcp_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/socket"
	"repro/internal/ttcp"
	"repro/internal/units"
	"repro/internal/wire"
)

func run(t *testing.T, mode socket.Mode, total, rw units.Size) ttcp.Result {
	t.Helper()
	tb := core.NewTestbed(7)
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: wire.Addr(0x0a000001), Mode: mode, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: wire.Addr(0x0a000002), Mode: mode, CABNode: 2})
	tb.RouteCAB(a, b)
	return ttcp.Run(tb, a, b, ttcp.Params{
		Total: total, RWSize: rw, WithUtil: true, WithBackground: true,
	})
}

func TestSmoke(t *testing.T) {
	un := run(t, socket.ModeUnmodified, 8*units.MB, 64*units.KB)
	sc := run(t, socket.ModeSingleCopy, 8*units.MB, 64*units.KB)
	t.Logf("unmod: %v", un)
	t.Logf("  breakdown: %v", un.Snd.Breakdown)
	t.Logf("single: %v", sc)
	t.Logf("  breakdown: %v", sc.Snd.Breakdown)
	t.Logf("true util: un=%.2f sc=%.2f", un.Snd.TrueUtilization, sc.Snd.TrueUtilization)
}

func TestRawSmoke(t *testing.T) {
	tb := core.NewTestbed(8)
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: wire.Addr(0x0a000001), CABNode: 1, NoDriver: true})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: wire.Addr(0x0a000002), CABNode: 2, NoDriver: true})
	res := ttcp.RunRaw(tb, a, b, ttcp.Params{Total: 16 * units.MB, RWSize: 32 * units.KB, WithUtil: true})
	t.Logf("raw 32KB: %v", res)
	if r := res.Throughput.Mbit(); r < 120 || r > 160 {
		t.Fatalf("raw throughput %.1f, want ~140 (microcode-limited)", r)
	}
}

func TestUDPSmoke(t *testing.T) {
	tb := core.NewTestbed(9)
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: wire.Addr(0x0a000001), Mode: socket.ModeSingleCopy, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: wire.Addr(0x0a000002), Mode: socket.ModeSingleCopy, CABNode: 2})
	tb.RouteCAB(a, b)
	res := ttcp.RunUDP(tb, a, b, ttcp.Params{Total: 8 * units.MB, RWSize: 16 * units.KB, WithUtil: true})
	t.Logf("udp 16KB: %v loss=%.3f", res.Result, res.LossFraction)
	if res.LossFraction > 0.2 {
		t.Fatalf("loss %.2f too high on an idle fabric", res.LossFraction)
	}
	if r := res.Throughput.Mbit(); r < 40 || r > 160 {
		t.Fatalf("udp throughput %.1f out of plausible range", r)
	}
}
