// Package ttcp reimplements the paper's measurement methodology (Section
// 7.1): a ttcp-style bulk-transfer benchmark measuring user-process to
// user-process throughput, plus the compute-bound low-priority `util`
// process used to estimate the CPU utilization of communication.
//
// Because interrupt-driven work (ACK handling and the transmissions it
// triggers) is charged to whatever process happens to be running, ttcp's
// own CPU time understates the communication cost. util soaks up all
// spare cycles at low priority, so any system time it accumulates is
// misattributed communication work, and
//
//	utilization = (ttcp_user + ttcp_sys + util_sys) /
//	              (ttcp_user + ttcp_sys + util_sys + util_user)
//
// estimates the fraction of the CPU communication consumes. A background
// daemon consumes a further ~7% of cycles that are charged to neither
// process — the "unaccounted" time the paper reports — which the ratio
// form of the formula charges proportionally, as the paper assumes.
package ttcp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kern"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/units"
)

// Params configures one transfer.
type Params struct {
	// Total is the byte count to move.
	Total units.Size
	// RWSize is the per-call read/write size (the x axis of Figures 5
	// and 6).
	RWSize units.Size
	// Window overrides the TCP window / socket buffer size (default the
	// experiment's 512 KB).
	Window units.Size
	// Port is the server port (default 5010).
	Port uint16
	// WithUtil runs the util methodology (else only ground-truth
	// accounting is reported).
	WithUtil bool
	// WithBackground runs the ~7% background daemon load.
	WithBackground bool
	// UIOThreshold is passed to the sender's socket (0 = always
	// single-copy, the paper's measured configuration).
	UIOThreshold units.Size
	// Tolerant lets the transfer end early with a typed error instead of
	// panicking — the mode fault-injection runs use, where a connection
	// legitimately dies (adaptor reset, liveness timeout) and the
	// interesting output is which error surfaced. Benchmarks leave it
	// off: an incomplete clean run is a bug.
	Tolerant bool
}

// HostStats carries one side's measurements.
type HostStats struct {
	TTCPUser, TTCPSys units.Time
	UtilUser, UtilSys units.Time
	// Utilization is the paper-methodology estimate.
	Utilization float64
	// TrueUtilization is the simulator's ground truth: CPU busy time in
	// communication categories over elapsed time.
	TrueUtilization float64
	// Efficiency = throughput / utilization: the Mbit/s the host could
	// sustain at full CPU.
	Efficiency units.Rate
	// Breakdown is CPU time by accounting category.
	Breakdown map[string]units.Time
}

// Result is one transfer's outcome.
type Result struct {
	Bytes      units.Size
	Elapsed    units.Time
	Throughput units.Rate
	Snd, Rcv   HostStats
	// SndErr / RcvErr are the errors that ended each side early ("" for
	// a clean run; only possible with Params.Tolerant).
	SndErr, RcvErr string
}

func (r Result) String() string {
	return fmt.Sprintf("%v in %v = %v (snd util %.2f eff %v; rcv util %.2f eff %v)",
		r.Bytes, r.Elapsed, r.Throughput,
		r.Snd.Utilization, r.Snd.Efficiency,
		r.Rcv.Utilization, r.Rcv.Efficiency)
}

// side bundles the per-host measurement context.
type side struct {
	h        *core.Host
	ttcpTask *kern.Task
	utilTask *kern.Task
	bgdTask  *kern.Task
	stop     bool
}

// startUtil runs the compute-bound low-priority soaker in quantum-sized
// slices so higher-priority work preempts it.
func (s *side) startUtil(tb *core.Testbed) {
	tb.Eng.Go(s.h.Name+"/util", func(p *sim.Proc) {
		for !s.stop {
			s.h.K.Work(p, s.utilTask, s.h.K.Quantum, kern.CatApp, false)
		}
	})
}

// startBackground runs the daemons responsible for the paper's 7-8% of
// unaccounted time.
func (s *side) startBackground(tb *core.Testbed) {
	tb.Eng.Go(s.h.Name+"/bgd", func(p *sim.Proc) {
		for !s.stop {
			s.h.K.Work(p, s.bgdTask, 300*units.Microsecond, kern.CatApp, false)
			p.Sleep(4 * units.Millisecond)
		}
	})
}

// snapshot computes the measurement window deltas for one side.
func (s *side) snapshot(elapsed units.Time, thr units.Rate,
	t0 taskTimes) HostStats {
	hs := HostStats{
		TTCPUser: s.ttcpTask.UserTime - t0.ttcpUser,
		TTCPSys:  s.ttcpTask.SysTime - t0.ttcpSys,
		UtilUser: s.utilTask.UserTime - t0.utilUser,
		UtilSys:  s.utilTask.SysTime - t0.utilSys,
	}
	num := hs.TTCPUser + hs.TTCPSys + hs.UtilSys
	den := num + hs.UtilUser
	if den > 0 {
		hs.Utilization = float64(num) / float64(den)
	}
	// Ground truth: all CPU time except the util and background tasks'
	// own user-level work is communication support here.
	comm := s.h.K.BusyTime() - t0.busy -
		(hs.UtilUser) - (s.bgdTask.UserTime - t0.bgdUser)
	if elapsed > 0 {
		hs.TrueUtilization = float64(comm) / float64(elapsed)
	}
	if hs.Utilization > 0 {
		hs.Efficiency = units.Rate(float64(thr) / hs.Utilization)
	}
	hs.Breakdown = s.h.K.CategoryBreakdown()
	return hs
}

type taskTimes struct {
	ttcpUser, ttcpSys, utilUser, utilSys, bgdUser, busy units.Time
}

func (s *side) times() taskTimes {
	return taskTimes{
		ttcpUser: s.ttcpTask.UserTime, ttcpSys: s.ttcpTask.SysTime,
		utilUser: s.utilTask.UserTime, utilSys: s.utilTask.SysTime,
		bgdUser: s.bgdTask.UserTime, busy: s.h.K.BusyTime(),
	}
}

// Run performs one ttcp transfer from snd to rcv over their configured
// stacks and returns the measurements. The testbed engine is driven to
// completion.
func Run(tb *core.Testbed, snd, rcv *core.Host, pr Params) Result {
	if pr.Port == 0 {
		pr.Port = 5010
	}
	if pr.Window == 0 {
		pr.Window = 512 * units.KB
	}

	ss := &side{h: snd}
	ss.ttcpTask = snd.NewUserTask("ttcp-snd", 16*units.MB)
	ss.utilTask = snd.K.NewTask("util", kern.PrioIdle, nil)
	ss.bgdTask = snd.K.NewTask("bgd", kern.PrioKern, nil)
	rs := &side{h: rcv}
	rs.ttcpTask = rcv.NewUserTask("ttcp-rcv", 16*units.MB)
	rs.utilTask = rcv.K.NewTask("util", kern.PrioIdle, nil)
	rs.bgdTask = rcv.K.NewTask("bgd", kern.PrioKern, nil)

	lis := rcv.Stk.Listen(pr.Port)

	var (
		t0, t1         units.Time
		snd0, rcv0     taskTimes
		received       units.Size
		sndErr, rcvErr string
	)

	// Receiver: accept and read until the FIN.
	tb.Eng.Go("ttcp-rcv", func(p *sim.Proc) {
		cfg := rcv.SocketConfig()
		s := socket.Accept(p, rcv.K, rcv.VM, rs.ttcpTask, lis, cfg)
		buf := rs.ttcpTask.Space.Alloc(pr.RWSize, 8)
		for {
			n, err := s.Read(p, buf)
			received += n
			// Trivial app-level work per read (ttcp counts bytes).
			rcv.K.Work(p, rs.ttcpTask, 2*units.Microsecond, kern.CatApp, false)
			if err != nil {
				if pr.Tolerant && err != socket.ErrEOF {
					rcvErr = err.Error()
					s.Conn.Abort(rcv.K.TaskCtx(p, rs.ttcpTask))
				}
				break
			}
		}
		t1 = p.Now()
		ss.stop, rs.stop = true, true
		tb.StopSeries()
	})

	// Sender: connect, then stream Total bytes from one reused buffer.
	tb.Eng.Go("ttcp-snd", func(p *sim.Proc) {
		cfg := snd.SocketConfig()
		cfg.UIOThreshold = pr.UIOThreshold
		conn, err := snd.Stk.Connect(snd.K.TaskCtx(p, ss.ttcpTask), rcv.Cfg.Addr, pr.Port)
		if err != nil {
			if pr.Tolerant {
				sndErr = err.Error()
				return
			}
			panic("ttcp: connect failed: " + err.Error())
		}
		conn.SndLimit = pr.Window
		conn.RcvLimit = pr.Window
		s := socket.NewSocket(snd.K, snd.VM, ss.ttcpTask, conn, cfg)

		// Start the measurement window at first write.
		t0 = p.Now()
		snd0, rcv0 = ss.times(), rs.times()

		buf := ss.ttcpTask.Space.Alloc(pr.RWSize, 8)
		for i := range buf.Bytes() {
			buf.Bytes()[i] = byte(i)
		}
		for sent := units.Size(0); sent < pr.Total; sent += pr.RWSize {
			snd.K.Work(p, ss.ttcpTask, 2*units.Microsecond, kern.CatApp, false)
			if err := s.WriteAll(p, buf); err != nil {
				if pr.Tolerant {
					// The connection died under fault; reset it so the
					// receiver learns promptly instead of filling a
					// dead window, and report the typed error.
					sndErr = err.Error()
					s.Conn.Abort(snd.K.TaskCtx(p, ss.ttcpTask))
					return
				}
				panic("ttcp: write failed: " + err.Error())
			}
		}
		s.Close(p)
	})

	if pr.WithUtil {
		ss.startUtil(tb)
		rs.startUtil(tb)
	}
	if pr.WithBackground {
		ss.startBackground(tb)
		rs.startBackground(tb)
	}

	tb.Eng.Run()
	tb.Eng.KillAll()

	if received < pr.Total && !pr.Tolerant {
		panic(fmt.Sprintf("ttcp: transfer incomplete: %v of %v", received, pr.Total))
	}
	elapsed := t1 - t0
	res := Result{
		Bytes:      received,
		Elapsed:    elapsed,
		Throughput: units.RateOf(received, elapsed),
	}
	res.Snd = ss.snapshot(elapsed, res.Throughput, snd0)
	res.Rcv = rs.snapshot(elapsed, res.Throughput, rcv0)
	res.SndErr, res.RcvErr = sndErr, rcvErr
	return res
}
