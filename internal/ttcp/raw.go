package ttcp

import (
	"repro/internal/cab"
	"repro/internal/core"
	"repro/internal/hippi"
	"repro/internal/kern"
	"repro/internal/sim"
	"repro/internal/units"
)

// Raw-HIPPI benchmark (Section 7.2): "generates well-formed packets that
// can be handled very efficiently by the microcode, so the raw HIPPI
// results represent the highest throughput one can expect for a given
// packet size". The protocol stack is bypassed entirely — the user process
// drives the adaptor: SDMA from a pinned user buffer, then media
// transmission; the receiver SDMAs arriving packets into a user buffer and
// recycles them.
const (
	// rawMaxPacket caps raw packet size at the media MTU's worth.
	rawMaxPacket = 32 * units.KB
	// rawPipeline is how many packet buffers the raw sender keeps in
	// flight to cover SDMA/MDMA pipelining.
	rawPipeline = 4
)

// RunRaw measures a raw transfer of pr.Total bytes in pr.RWSize packets
// (capped at 32 KB) between two NoDriver hosts.
func RunRaw(tb *core.Testbed, snd, rcv *core.Host, pr Params) Result {
	pktSize := pr.RWSize
	if pktSize > rawMaxPacket {
		pktSize = rawMaxPacket
	}

	sndTask := snd.NewUserTask("raw-snd", 16*units.MB)
	rcvTask := rcv.NewUserTask("raw-rcv", 16*units.MB)
	ss := &side{h: snd, ttcpTask: sndTask,
		utilTask: snd.K.NewTask("util", kern.PrioIdle, nil),
		bgdTask:  snd.K.NewTask("bgd", kern.PrioKern, nil)}
	rs := &side{h: rcv, ttcpTask: rcvTask,
		utilTask: rcv.K.NewTask("util", kern.PrioIdle, nil),
		bgdTask:  rcv.K.NewTask("bgd", kern.PrioKern, nil)}

	var (
		t0, t1   units.Time
		received units.Size
		want     = pr.Total
	)
	snd0, rcv0 := ss.times(), rs.times()

	// HIPPI is connection-oriented with link-level backpressure: a
	// receiver that cannot drain its adaptor stalls the sender. Model it
	// as credit flow control between the two raw endpoints.
	const credits = 16
	outstanding := 0
	credit := sim.NewSignal(tb.Eng)

	// Receiver: SDMA every arriving packet into the user buffer.
	rbuf := rcvTask.Space.Alloc(pktSize, 8)
	rcv.CAB.OnRx = func(ev *cab.RxEvent) {
		pk := ev.Pkt
		n := pk.Len()
		rcv.CAB.SDMA(&cab.SDMAReq{
			Dir: cab.ToHost, Pkt: pk, PktOff: 0,
			Scatter: [][]byte{rbuf.Bytes()[:n]},
			Done: func(*cab.SDMAReq) {
				pk.Free()
				outstanding--
				credit.Broadcast()
				rcv.K.PostIntr("raw-rx", func(p *sim.Proc) {
					rcv.K.IntrCtx(p).Charge(rcv.K.Mach.InterruptCost/2, kern.CatDriver)
					received += n
					if received >= want {
						t1 = p.Now()
						ss.stop, rs.stop = true, true
						tb.StopSeries()
					}
				})
			},
		})
	}
	for i := 0; i < 16; i++ {
		rcv.CAB.ProvideRxBuf(make([]byte, rcv.CAB.Cfg.AutoDMALen))
	}
	// Recycle auto-DMA buffers as the hardware consumes them.
	tb.Eng.Go("raw-rxbufs", func(p *sim.Proc) {
		for !rs.stop {
			for rcv.CAB.RxBufCount() < 16 {
				rcv.CAB.ProvideRxBuf(make([]byte, rcv.CAB.Cfg.AutoDMALen))
			}
			p.Sleep(100 * units.Microsecond)
		}
	})

	// Sender: pinned buffer, pipelined SDMA + MDMA.
	tb.Eng.Go("raw-snd", func(p *sim.Proc) {
		ctx := snd.K.TaskCtx(p, sndTask)
		buf := sndTask.Space.Alloc(pktSize, 8)
		for i := range buf.Bytes() {
			buf.Bytes()[i] = byte(i)
		}
		snd.VM.PinBuf(p, sndTask, sndTask.Space, buf.Addr, buf.Len)
		t0 = p.Now()
		snd0, rcv0 = ss.times(), rs.times()

		window := sim.NewSignal(tb.Eng)
		inflight := 0
		for sent := units.Size(0); sent < pr.Total; sent += pktSize {
			for inflight >= rawPipeline {
				window.Wait(p)
			}
			for outstanding >= credits {
				credit.Wait(p)
			}
			outstanding++
			// Minimal per-packet host work: one adaptor request.
			ctx.Charge(snd.K.Mach.DriverPerPacket/2, kern.CatDriver)
			pk := snd.CAB.AllocPacketWait(p, pktSize)
			inflight++
			snd.CAB.SDMA(&cab.SDMAReq{
				Dir: cab.ToCAB, Pkt: pk,
				Gather: [][]byte{buf.Bytes()},
				Done: func(*cab.SDMAReq) {
					snd.CAB.MDMATx(pk, hippi.NodeID(rcv.Cfg.CABNode), nil, nil, func() {
						pk.Free()
						inflight--
						window.Broadcast()
					})
				},
			})
		}
		snd.VM.UnpinBuf(p, sndTask, sndTask.Space, buf.Addr, buf.Len)
	})

	if pr.WithUtil {
		ss.startUtil(tb)
		rs.startUtil(tb)
	}
	if pr.WithBackground {
		ss.startBackground(tb)
		rs.startBackground(tb)
	}

	tb.Eng.Run()
	tb.Eng.KillAll()

	elapsed := t1 - t0
	res := Result{
		Bytes:      received,
		Elapsed:    elapsed,
		Throughput: units.RateOf(received, elapsed),
	}
	res.Snd = ss.snapshot(elapsed, res.Throughput, snd0)
	res.Rcv = rs.snapshot(elapsed, res.Throughput, rcv0)
	return res
}
