// Package loop is the loopback interface: packets to the host's own
// address re-enter the stack through the normal input path. Like any
// legacy interface it takes no descriptor mbufs, so the driver-entry shim
// materializes them first.
package loop

import (
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/netif"
	"repro/internal/obs/ledger"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

// MTU is the loopback MTU.
const MTU = 16 * units.KB

// Loopback is one loopback instance.
type Loopback struct {
	K     *kern.Kernel
	Input netif.InputFunc

	TxPackets int
}

// New returns a loopback interface.
func New(k *kern.Kernel) *Loopback { return &Loopback{K: k} }

// Name implements netif.Interface.
func (l *Loopback) Name() string { return "lo0" }

// MTU implements netif.Interface.
func (l *Loopback) MTU() units.Size { return MTU }

// Caps implements netif.Interface.
func (l *Loopback) Caps() netif.Caps { return netif.Caps{} }

// Output implements netif.Interface: the packet re-enters the stack in
// interrupt context, as if it had just arrived.
func (l *Loopback) Output(ctx kern.Ctx, m *mbuf.Mbuf, dst netif.LinkAddr) {
	if mbuf.HasDescriptors(m) {
		m = netif.ConvertForLegacy(ctx, m)
	}
	l.TxPackets++
	l.K.Led.TouchP(m.Prov(), wire.LinkHdrLen, mbuf.ChainLen(m), ledger.WireTransit, "loop", 0)
	l.K.PostIntr("lo-rx", func(p *sim.Proc) {
		l.Input(l.K.IntrCtx(p).In("loop"), m, l)
	})
}
