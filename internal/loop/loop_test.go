package loop

import (
	"bytes"
	"testing"

	"repro/internal/cost"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/mem"
	"repro/internal/netif"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestLoopbackDelivers(t *testing.T) {
	eng := sim.NewEngine(1)
	k := kern.New("h", eng, cost.Alpha400())
	lo := New(k)
	var rx []*mbuf.Mbuf
	lo.Input = func(ctx kern.Ctx, m *mbuf.Mbuf, from netif.Interface) { rx = append(rx, m) }

	data := make([]byte, 4000)
	for i := range data {
		data[i] = byte(i * 9)
	}
	eng.Go("tx", func(p *sim.Proc) {
		lo.Output(k.TaskCtx(p, k.KernelTask), mbuf.NewCluster(data), 0)
	})
	eng.Run()
	defer eng.KillAll()
	if len(rx) != 1 {
		t.Fatalf("delivered %d, want 1", len(rx))
	}
	if !bytes.Equal(mbuf.Materialize(rx[0]), data) {
		t.Fatal("loopback corrupted data")
	}
	if lo.TxPackets != 1 {
		t.Fatalf("tx packets = %d", lo.TxPackets)
	}
}

func TestLoopbackConvertsDescriptors(t *testing.T) {
	eng := sim.NewEngine(1)
	k := kern.New("h", eng, cost.Alpha400())
	lo := New(k)
	var rx *mbuf.Mbuf
	lo.Input = func(ctx kern.Ctx, m *mbuf.Mbuf, from netif.Interface) { rx = m }

	space := mem.NewAddrSpace("u", 1*units.MB, k.Mach.PageSize)
	u := mem.NewUIO(space.Alloc(2000, 4))
	eng.Go("tx", func(p *sim.Proc) {
		lo.Output(k.TaskCtx(p, k.KernelTask), mbuf.NewUIO(u, 0, 2000, nil), 0)
	})
	eng.Run()
	defer eng.KillAll()
	if rx == nil {
		t.Fatal("nothing delivered")
	}
	if mbuf.HasDescriptors(rx) {
		t.Fatal("descriptor mbufs crossed the loopback")
	}
}

func TestLoopbackCaps(t *testing.T) {
	lo := New(kern.New("h", sim.NewEngine(1), cost.Alpha400()))
	if lo.Caps().SingleCopy {
		t.Fatal("loopback must not advertise single-copy")
	}
	if lo.MTU() != MTU || lo.Name() != "lo0" {
		t.Fatal("bad loopback identity")
	}
}
