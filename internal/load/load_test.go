package load

import (
	"bytes"
	"testing"

	"repro/internal/cab"
	"repro/internal/socket"
	"repro/internal/units"
)

// TestLoadSmoke runs a small mixed TCP/UDP request/response scenario and
// checks every flow completed cleanly with byte-exact delivery.
func TestLoadSmoke(t *testing.T) {
	rep, err := Run(Scenario{
		Name:     "smoke",
		Seed:     7,
		Clients:  2,
		Servers:  2,
		Flows:    16,
		UDPFrac:  0.25,
		Mode:     socket.ModeSingleCopy,
		Requests: 3,
		Think:    200 * units.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors: %d (%s)", rep.Errors, rep.FirstError)
	}
	if rep.TCPFlows != 12 || rep.UDPFlows != 4 {
		t.Fatalf("flow split: %d tcp %d udp", rep.TCPFlows, rep.UDPFlows)
	}
	if want := int64(rep.TCPFlows * 3); rep.Requests != want {
		t.Fatalf("requests: %d want %d", rep.Requests, want)
	}
	if rep.DgramsRcvd != rep.DgramsSent {
		t.Fatalf("udp loss in uncontended smoke: %d/%d", rep.DgramsRcvd, rep.DgramsSent)
	}
	if rep.Starved != 0 {
		t.Fatalf("starved flows: %d", rep.Starved)
	}
	if rep.TotalBytes == 0 || rep.LatP50Us == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
}

// TestLoadOpenLoop exercises the Poisson open-loop generator.
func TestLoadOpenLoop(t *testing.T) {
	rep, err := Run(Scenario{
		Name:     "openloop",
		Seed:     11,
		Flows:    8,
		Mode:     socket.ModeSingleCopy,
		OpenLoop: true,
		Rate:     5000,
		Requests: 5,
		Stagger:  100 * units.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors: %d (%s)", rep.Errors, rep.FirstError)
	}
	if want := int64(8 * 5); rep.Requests != want {
		t.Fatalf("requests: %d want %d", rep.Requests, want)
	}
}

// TestLoadBulk checks the bulk-streaming mode delivers byte-exact
// streams on every flow.
func TestLoadBulk(t *testing.T) {
	rep, err := Run(Scenario{
		Name:      "bulk",
		Seed:      3,
		Flows:     4,
		Mode:      socket.ModeSingleCopy,
		Bulk:      true,
		Duration:  30 * units.Millisecond,
		BulkWrite: 32 * units.KB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors: %d (%s)", rep.Errors, rep.FirstError)
	}
	if rep.Starved != 0 {
		t.Fatalf("starved flows: %d", rep.Starved)
	}
	if rep.GoodputMinMbps <= 0 {
		t.Fatalf("zero min goodput: %+v", rep)
	}
}

// determinismScenario is the 256-flow mixed scenario the determinism
// check runs twice.
func determinismScenario() Scenario {
	return Scenario{
		Name:     "mixed-256",
		Seed:     42,
		Clients:  4,
		Servers:  2,
		Flows:    256,
		UDPFrac:  0.25,
		Mode:     socket.ModeSingleCopy,
		Requests: 2,
		OpenLoop: true,
		Rate:     2000,
		Stagger:  500 * units.Microsecond,
		Arbiter:  &cab.ArbConfig{},
	}
}

// TestLoadDeterminism256 runs the 256-flow scenario twice and requires
// byte-identical reports (including the event-order digest).
func TestLoadDeterminism256(t *testing.T) {
	r1, err := Run(determinismScenario())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(determinismScenario())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Errors != 0 {
		t.Fatalf("errors: %d (%s)", r1.Errors, r1.FirstError)
	}
	if r1.OrderDigest != r2.OrderDigest {
		t.Fatalf("event order digests differ: %s vs %s", r1.OrderDigest, r2.OrderDigest)
	}
	j1, j2 := r1.JSON(), r2.JSON()
	if !bytes.Equal(j1, j2) {
		t.Fatalf("reports differ:\n%s\nvs\n%s", j1, j2)
	}
}

// TestLoad1024 is the scale acceptance check: a 1024-flow mixed TCP/UDP
// scenario over 8 clients and 4 servers, arbiter on, must complete with
// byte-exact delivery on every flow (pattern verification is built into
// the flow loops) and reproduce byte-identically when rerun.
func TestLoad1024(t *testing.T) {
	scenario := func() Scenario {
		return Scenario{
			Name:     "mixed-1024",
			Seed:     9,
			Clients:  8,
			Servers:  4,
			Flows:    1024,
			UDPFrac:  0.25,
			Mode:     socket.ModeSingleCopy,
			Requests: 2,
			OpenLoop: true,
			Rate:     2000,
			Stagger:  units.Millisecond,
			Arbiter:  &cab.ArbConfig{},
		}
	}
	r1, err := Run(scenario())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Errors != 0 {
		t.Fatalf("errors: %d (%s)", r1.Errors, r1.FirstError)
	}
	if want := int64(r1.TCPFlows * 2); r1.Requests != want {
		t.Fatalf("requests: %d want %d", r1.Requests, want)
	}
	if r1.DgramsRcvd != r1.DgramsSent {
		t.Fatalf("udp datagrams lost: %d/%d", r1.DgramsRcvd, r1.DgramsSent)
	}
	if r1.Starved != 0 {
		t.Fatalf("starved flows: %d", r1.Starved)
	}
	r2, err := Run(scenario())
	if err != nil {
		t.Fatal(err)
	}
	if r1.OrderDigest != r2.OrderDigest {
		t.Fatalf("event order digests differ: %s vs %s", r1.OrderDigest, r2.OrderDigest)
	}
	if !bytes.Equal(r1.JSON(), r2.JSON()) {
		t.Fatal("1024-flow reports differ between identical runs")
	}
}

// TestNetObsSameSeedByteIdentical pins the transport-dynamics recorder's
// determinism: two same-seed runs with the observatory (and the series
// sampler) on must produce byte-identical recorder dumps, postmortems and
// series snapshots — the property the BENCH_netobs.json exact-diff gate
// relies on.
func TestNetObsSameSeedByteIdentical(t *testing.T) {
	run := func() *Report {
		s := Scenario{
			Name:      "netobs-det",
			Seed:      17,
			Clients:   3,
			Servers:   2,
			Flows:     8,
			UDPFrac:   0.25,
			Mode:      socket.ModeSingleCopy,
			Bulk:      true,
			Duration:  10 * units.Millisecond,
			BulkWrite: 16 * units.KB,
			NetObs:    true,
			Series:    100 * units.Microsecond,
		}
		rep, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errors != 0 {
			t.Fatalf("errors: %d (%s)", rep.Errors, rep.FirstError)
		}
		return rep
	}
	r1, r2 := run(), run()
	if r1.NetObs == nil || r1.NetObsRec == nil || r1.Series == nil {
		t.Fatalf("netobs/series not plumbed: pm=%v rec=%v series=%v",
			r1.NetObs != nil, r1.NetObsRec != nil, r1.Series != nil)
	}
	if d1, d2 := r1.NetObsRec.Snapshot().JSON(), r2.NetObsRec.Snapshot().JSON(); !bytes.Equal(d1, d2) {
		t.Fatal("recorder dumps differ between same-seed runs")
	}
	if p1, p2 := r1.NetObs.JSON(), r2.NetObs.JSON(); !bytes.Equal(p1, p2) {
		t.Fatal("postmortems differ between same-seed runs")
	}
	if s1, s2 := r1.Series.Snapshot().JSON(), r2.Series.Snapshot().JSON(); !bytes.Equal(s1, s2) {
		t.Fatal("series snapshots differ between same-seed runs")
	}
	if len(r1.NetObs.Flows) == 0 {
		t.Fatal("postmortem recorded no flows")
	}
	// The observatory must not perturb the simulation: the report of an
	// instrumented run matches the uninstrumented baseline byte for byte.
	plain := func() *Report {
		s := Scenario{
			Name:      "netobs-det",
			Seed:      17,
			Clients:   3,
			Servers:   2,
			Flows:     8,
			UDPFrac:   0.25,
			Mode:      socket.ModeSingleCopy,
			Bulk:      true,
			Duration:  10 * units.Millisecond,
			BulkWrite: 16 * units.KB,
		}
		rep, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}()
	if r1.OrderDigest != plain.OrderDigest {
		t.Fatalf("netobs perturbed the event order: %s vs %s", r1.OrderDigest, plain.OrderDigest)
	}
}

// fairnessScenario is a netmem-starved incast: 8 same-weight TCP bulk
// elephants plus 3 uncontrolled UDP blasters, each on its own client
// host, converge on one server whose adaptor has 256 KB of network
// memory. The blaster datagrams land in receivers that take 60 ms per
// datagram, so unread datagrams hold their netmem pages (UDP has no flow
// control) and pages free at only one datagram per ~20 ms. Without
// arbitration the receive netmem saturates, every TCP segment overstays
// the hold-queue retry budget behind the blaster backlog, and after the
// start-up transient (excluded via Warmup) the elephants are starved into
// RTO backoff. With the arbiter each blaster is confined to its page
// share, so the elephants keep their staging memory and split the drain
// bandwidth evenly. arb toggles the arbiter.
func fairnessScenario(arb bool) Scenario {
	s := Scenario{
		Name:           "fair-8",
		Seed:           5,
		Clients:        11,
		Servers:        1,
		Flows:          11,
		UDPFrac:        0.27,
		Mode:           socket.ModeSingleCopy,
		Bulk:           true,
		Duration:       120 * units.Millisecond,
		Warmup:         20 * units.Millisecond,
		Stagger:        60 * units.Millisecond,
		BulkWrite:      16 * units.KB,
		UDPServerThink: 45 * units.Millisecond,
		// One 16KB segment in flight per flow: each elephant's receive
		// staging (3 pages) fits its arbiter share (5 pages), so admission
		// never turns a transient denial into a reassembly gap that pins
		// pages over-share for the whole retransmission timeout. It also
		// keeps in-flight data far below the client adaptors' network
		// memory, so a sender can always stage a retransmission.
		Window: 16 * units.KB,
		CABConfig: &cab.Config{
			MemSize:    512 * units.KB,
			PageSize:   8 * units.KB,
			AutoDMALen: 784,
			RxCsumSkip: 80,
			Channels:   8,
		},
	}
	if arb {
		s.Name = "fair-8-arb"
		s.Arbiter = &cab.ArbConfig{}
	}
	return s
}

// TestLoadFairnessArbiter is the headline acceptance check: under netmem
// starvation the arbiter keeps same-weight bulk flows at Jain >= 0.9 with
// no starved flow, while the unarbitrated baseline demonstrably violates
// that.
func TestLoadFairnessArbiter(t *testing.T) {
	base, err := Run(fairnessScenario(false))
	if err != nil {
		t.Fatal(err)
	}
	arb, err := Run(fairnessScenario(true))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline: jain=%.4f min=%.2f max=%.2f starved=%d drops=%d",
		base.Jain, base.GoodputMinMbps, base.GoodputMaxMbps, base.Starved, base.Drops)
	t.Logf("arbiter:  jain=%.4f min=%.2f max=%.2f starved=%d waits=%d borrows=%d",
		arb.Jain, arb.GoodputMinMbps, arb.GoodputMaxMbps, arb.Starved, arb.ArbWaits, arb.ArbBorrows)
	if arb.Errors != 0 {
		t.Fatalf("arbiter run errors: %d (%s)", arb.Errors, arb.FirstError)
	}
	// Baseline errors (connection timeouts from retransmission giving up)
	// are part of the demonstration, not a harness failure.
	if base.Errors != 0 {
		t.Logf("baseline errors (expected under starvation): %d (%s)", base.Errors, base.FirstError)
	}
	if arb.Jain < 0.9 {
		t.Errorf("arbitrated fairness %.4f < 0.9", arb.Jain)
	}
	if arb.GoodputMinMbps <= 0 || arb.Starved != 0 {
		t.Errorf("arbitrated run starved a flow: min=%v starved=%d", arb.GoodputMinMbps, arb.Starved)
	}
	if base.Jain >= 0.9 && base.Starved == 0 {
		t.Errorf("baseline unexpectedly fair (jain=%.4f, starved=%d): contention too weak to demonstrate the arbiter", base.Jain, base.Starved)
	}
}
