// Package load is a deterministic many-flow workload engine for the
// testbed: it stands up an N-client × M-server topology on the HIPPI
// switch and drives hundreds to thousands of concurrent TCP and UDP flows
// through the real socket/Listen/Accept path, with open-loop (Poisson
// arrivals in virtual time) and closed-loop (think-time) request
// generators, heavy-tailed request/response size mixes, and bulk
// streaming. Every run produces a Report with per-flow goodput,
// request-latency quantiles, Jain's fairness index, and a starvation
// count, plus an order digest that makes event-ordering determinism
// checkable by string comparison.
//
// All randomness is drawn from per-flow PRNGs seeded from Scenario.Seed,
// so two runs of the same scenario are byte-identical.
package load

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cab"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/hippi"
	"repro/internal/kern"
	"repro/internal/obs"
	"repro/internal/obs/engine"
	"repro/internal/obs/ledger"
	"repro/internal/socket"
	"repro/internal/tcpip"
	"repro/internal/units"
	"repro/internal/wire"
)

// SizeClass is one entry of a request/response size mix. Frac values are
// normalized over the whole mix; a heavy-tailed workload is a few classes
// with small Frac and large sizes.
type SizeClass struct {
	Frac float64
	Req  units.Size
	Resp units.Size
}

// Scenario describes one many-flow run.
type Scenario struct {
	Name string
	Seed int64

	// Topology: Flows flows spread round-robin over Clients client hosts
	// and Servers server hosts.
	Clients int
	Servers int
	Flows   int
	// UDPFrac is the fraction of flows carried over UDP (one-way
	// datagram streams; the rest are TCP request/response or bulk).
	UDPFrac float64

	// Mode selects the stack variant on every host.
	Mode socket.Mode

	// Topology selects the switch fabric joining the hosts (fabric.Parse
	// grammar: single | linear:N | leafspine:LxS | fattree:LxS; "" is the
	// classic single switch). Servers rack behind edge switch 0; clients
	// spread round-robin over the remaining edge switches.
	Topology string
	// FabricFIFO couples each fabric switch's trunk outputs through one
	// shared FIFO (head-of-line blocking at fabric scale) instead of the
	// default independent per-trunk VOQ serialization.
	FabricFIFO bool
	// CC selects every host's TCP congestion control: "" or "reno" for
	// the classic 4.3BSD-Reno behavior, "dctcp" for the ECN variant.
	CC string
	// ECNThreshold enables fabric-side CE marking: a frame queued behind
	// this many bytes at a fabric hop is marked. Defaults to 32 KB when
	// CC is dctcp and a fabric is installed; 0 otherwise (no marking).
	ECNThreshold units.Size
	// QueueCap bounds each trunk direction's output queue (a switch's
	// per-port buffer): a frame arriving to more than this many bytes of
	// backlog is tail-dropped. 0 keeps trunks lossless (the default, and
	// the pre-fabric behavior).
	QueueCap units.Size

	// Bulk switches TCP flows from request/response to bulk streaming:
	// each flow writes BulkWrite-sized chunks until Duration of virtual
	// time has elapsed, and goodput is measured over [Warmup, Duration].
	// Warmup excludes the start-up transient — bytes delivered before the
	// shared resources reach steady state — from the measurement.
	Bulk      bool
	Duration  units.Time
	Warmup    units.Time
	BulkWrite units.Size

	// Request/response shape (ignored in bulk mode). OpenLoop generates
	// Poisson arrivals at Rate requests/second per flow; closed loop
	// issues Requests back-to-back with exponential think time of mean
	// Think between them.
	Requests int
	OpenLoop bool
	Rate     float64
	Think    units.Time
	Mix      []SizeClass

	// Window overrides the TCP socket buffer / offered window.
	Window units.Size
	// MTU overrides every host's network-layer MTU (0: the 32 KByte paper
	// default). Fabric congestion scenarios use a smaller MTU so DCTCP's
	// two-segment cwnd floor sits below a fair per-flow trunk share.
	MTU units.Size
	// UDPServerThink is per-datagram processing time at the UDP
	// receivers. A slow consumer's unread datagrams pile up outboard —
	// the monopoly scenario the netmem arbiter exists to contain (UDP has
	// no flow control to close a window).
	UDPServerThink units.Time
	// Stagger spreads flow start times uniformly over [0, Stagger).
	Stagger units.Time

	// CABConfig overrides every host's adaptor configuration (small
	// network memories create the contention the arbiter resolves).
	CABConfig *cab.Config
	// Arbiter, when set, installs the per-flow netmem arbiter on every
	// host.
	Arbiter *cab.ArbConfig
	// Weights holds optional per-flow arbiter weights (index = flow id;
	// missing or zero entries default to the arbiter's DefaultWeight).
	Weights []int
	// Ledger enables the data-touch ledger (used by audit-mode runs).
	Ledger bool
	// EngObs, when set, attaches the simulator meta-observer to the run's
	// engine (simbench measures engine work under many-flow load with it).
	EngObs *engine.Observer
	// CritPath enables the causal critical-path recorder on the run's
	// testbed; it comes back as Report.Crit for the critpath analyzer.
	CritPath bool
	// NetObs enables the transport-dynamics observatory; the postmortem
	// (analyzed after Warmup) comes back as Report.NetObs and the raw
	// recorder as Report.NetObsRec.
	NetObs bool
	// Series, when positive, samples the utilization time-series at this
	// interval; the sampler stops when the last client proc finishes and
	// the set comes back as Report.Series.
	Series units.Time
	// FaultPlan is an optional fault-injection plan (fault.ParsePlan
	// grammar, e.g. "partition:at=5ms,dur=20ms" or "cabreset:at=8ms")
	// applied to the run's shared network and every adaptor. The plan is
	// validated up front: a malformed spec fails the scenario before any
	// host exists.
	FaultPlan string
}

// normalized fills defaults and validates.
func (s Scenario) normalized() (Scenario, error) {
	if s.Name == "" {
		s.Name = "load"
	}
	if s.Clients <= 0 {
		s.Clients = 1
	}
	if s.Servers <= 0 {
		s.Servers = 1
	}
	if s.Flows <= 0 {
		s.Flows = 1
	}
	if s.BulkWrite <= 0 {
		s.BulkWrite = 32 * units.KB
	}
	if s.Bulk && s.Duration <= 0 {
		s.Duration = 20 * units.Millisecond
	}
	if !s.Bulk && s.Requests <= 0 {
		s.Requests = 4
	}
	if s.FaultPlan != "" {
		if _, err := fault.ParsePlan(s.FaultPlan); err != nil {
			return s, err
		}
	}
	if s.Topology != "" {
		if _, err := fabric.Parse(s.Topology); err != nil {
			return s, fmt.Errorf("load: %w", err)
		}
	}
	if !tcpip.ValidCC(s.CC) {
		return s, fmt.Errorf("load: bad CC %q (want reno|dctcp)", s.CC)
	}
	if s.ECNThreshold == 0 && s.CC == tcpip.CCDctcp && s.Topology != "" {
		s.ECNThreshold = 32 * units.KB
	}
	if s.OpenLoop && s.Rate <= 0 {
		s.Rate = 1000
	}
	if len(s.Mix) == 0 {
		s.Mix = []SizeClass{
			{Frac: 0.70, Req: 2 * units.KB, Resp: 8 * units.KB},
			{Frac: 0.25, Req: 4 * units.KB, Resp: 32 * units.KB},
			{Frac: 0.05, Req: 4 * units.KB, Resp: 128 * units.KB},
		}
	}
	if s.UDPFrac < 0 || s.UDPFrac > 1 {
		return s, fmt.Errorf("load: UDPFrac %v out of [0,1]", s.UDPFrac)
	}
	if s.Warmup < 0 || (s.Bulk && s.Warmup >= s.Duration) {
		return s, fmt.Errorf("load: Warmup %v outside [0, Duration)", s.Warmup)
	}
	for _, c := range s.Mix {
		if c.Req <= 0 || c.Resp < 0 || c.Frac < 0 {
			return s, fmt.Errorf("load: bad size class %+v", c)
		}
	}
	return s, nil
}

// maxSizes returns the largest request and response in the mix.
func (s Scenario) maxSizes() (req, resp units.Size) {
	for _, c := range s.Mix {
		req = max(req, c.Req)
		resp = max(resp, c.Resp)
	}
	return req, resp
}

// pick draws a size class from the mix.
func pick(mix []SizeClass, rng *rand.Rand) SizeClass {
	var total float64
	for _, c := range mix {
		total += c.Frac
	}
	x := rng.Float64() * total
	for _, c := range mix {
		if x < c.Frac {
			return c
		}
		x -= c.Frac
	}
	return mix[len(mix)-1]
}

const (
	// tcpPort is every server host's TCP listen port.
	tcpPort = 5001
	// udpPortBase: UDP flow i's server socket binds udpPortBase+i.
	udpPortBase = 7000

	serverAddrBase = wire.Addr(0x0a000001)
	clientAddrBase = wire.Addr(0x0a010001)
)

// Run executes the scenario to completion and returns its report.
func Run(s Scenario) (*Report, error) {
	s, err := s.normalized()
	if err != nil {
		return nil, err
	}
	r := newRunner(s)
	r.build()
	r.start()
	r.tb.Eng.Run()
	r.tb.Eng.KillAll()
	return r.report(), nil
}

// runner holds one run's mutable state.
type runner struct {
	s       Scenario
	tb      *core.Testbed
	servers []*host
	clients []*host
	flows   []*flow
	digest  *orderDigest
	aggLat  *obs.Histogram
	// activeClients counts running client procs when the series sampler
	// is on; the last one out stops the sampler so the engine can drain.
	activeClients int
	inj           *fault.Injector
	frameErrs     int
	// lastDelivery is the virtual time of the last verified delivery; it
	// bounds the goodput window in request/response mode (the engine
	// drain time includes connection-teardown timers).
	lastDelivery units.Time
}

// delivered records one verified delivery event: it advances the
// measurement window and folds the event into the order digest.
func (r *runner) delivered(kind byte, flow, seq int, t units.Time) {
	if t > r.lastDelivery {
		r.lastDelivery = t
	}
	r.digest.note(kind, flow, seq, t)
}

// host pairs a testbed host with its workload task.
type host struct {
	h    *core.Host
	task *kern.Task
	lis  *tcpip.TCPListener
}

func newRunner(s Scenario) *runner {
	return &runner{s: s, digest: newOrderDigest(), aggLat: &obs.Histogram{}}
}

// build stands up the topology.
func (r *runner) build() {
	s := r.s
	r.tb = core.NewTestbed(s.Seed)
	if s.Ledger {
		r.tb.EnableLedger()
	}
	if s.EngObs != nil {
		r.tb.EnableEngineObs(s.EngObs)
	}
	if s.CritPath {
		r.tb.EnableCritPath()
	}
	if s.NetObs {
		r.tb.EnableNetObs()
	}
	if s.Series > 0 {
		r.tb.EnableSeries(s.Series)
	}
	if s.FaultPlan != "" {
		inj := fault.New(r.tb.Eng, s.Seed)
		if err := inj.AddPlan(s.FaultPlan); err != nil {
			panic(err) // normalized() validated the plan already
		}
		r.inj = r.tb.EnableFaults(inj)
	}
	node := hippi.NodeID(1)
	addHost := func(name string, addr wire.Addr) *host {
		hc := core.HostConfig{
			Name:      name,
			Addr:      addr,
			Mode:      s.Mode,
			CABNode:   node,
			CABConfig: s.CABConfig,
			Arbiter:   s.Arbiter,
			CC:        s.CC,
			MTU:       s.MTU,
		}
		node++
		return &host{h: r.tb.AddHost(hc)}
	}
	for j := 0; j < s.Servers; j++ {
		r.servers = append(r.servers, addHost(fmt.Sprintf("S%d", j), serverAddrBase+wire.Addr(j)))
	}
	for j := 0; j < s.Clients; j++ {
		r.clients = append(r.clients, addHost(fmt.Sprintf("C%d", j), clientAddrBase+wire.Addr(j)))
	}
	for _, c := range r.clients {
		for _, sv := range r.servers {
			r.tb.RouteCAB(c.h, sv.h)
		}
	}

	// Fabric assembly: trunks, ECMP routing, rack placement, queueing
	// discipline, and (when enabled) the CE marker.
	if s.Topology != "" {
		tp := fabric.MustParse(s.Topology) // validated by normalized
		tp.Install(r.tb.Net, uint64(s.Seed))
		var srvNodes, cliNodes []hippi.NodeID
		for _, sv := range r.servers {
			srvNodes = append(srvNodes, sv.h.Cfg.CABNode)
		}
		for _, c := range r.clients {
			cliNodes = append(cliNodes, c.h.Cfg.CABNode)
		}
		r.tb.Net.SetPlacement(tp.PlaceRacked(srvNodes, cliNodes))
		if s.FabricFIFO {
			r.tb.Net.SetFIFO(true)
		}
		if s.ECNThreshold > 0 {
			r.tb.Net.SetECN(s.ECNThreshold, fabric.MarkCE)
		}
		if s.QueueCap > 0 {
			r.tb.Net.SetQueueCap(s.QueueCap)
		}
	}

	// Flow table: flow i is UDP iff i < udpCount; hosts round-robin.
	udpCount := int(math.Round(s.UDPFrac * float64(s.Flows)))
	maxReq, maxResp := s.maxSizes()
	for i := 0; i < s.Flows; i++ {
		f := &flow{
			id:     i,
			udp:    i < udpCount,
			client: r.clients[i%s.Clients],
			server: r.servers[i%s.Servers],
			rng:    rand.New(rand.NewSource(s.Seed*1000003 + int64(i))),
			lat:    &obs.Histogram{},
		}
		if i < len(s.Weights) {
			f.weight = s.Weights[i]
		}
		r.flows = append(r.flows, f)
	}

	// One task per host; space sized for that host's flow buffers.
	perFlow := hdrLen + maxReq + maxResp + s.BulkWrite + 64*units.KB
	for _, hosts := range [][]*host{r.servers, r.clients} {
		for _, h := range hosts {
			n := 0
			for _, f := range r.flows {
				if f.client == h || f.server == h {
					n++
				}
			}
			size := units.Size(n)*perFlow + units.MB
			page := h.h.K.Mach.PageSize
			size = (size + page - 1) / page * page
			h.task = h.h.NewUserTask("load", size)
		}
	}

	// TCP listeners: backlog covers a full connection storm.
	tcpFlows := make(map[*host]int)
	for _, f := range r.flows {
		if !f.udp {
			tcpFlows[f.server]++
		}
	}
	for _, sv := range r.servers {
		if n := tcpFlows[sv]; n > 0 {
			sv.lis = sv.h.Stk.ListenBacklog(tcpPort, n+8)
		}
	}
}

// clientDone retires one client proc; the last one out stops the series
// sampler (which otherwise keeps an engine event pending forever).
func (r *runner) clientDone() {
	if r.s.Series <= 0 {
		return
	}
	r.activeClients--
	if r.activeClients == 0 {
		r.tb.StopSeries()
	}
}

// start spawns every flow's procs.
func (r *runner) start() {
	r.activeClients = len(r.flows)
	for _, sv := range r.servers {
		if sv.lis != nil {
			r.startAcceptLoop(sv)
		}
	}
	for _, f := range r.flows {
		if f.udp {
			r.startUDPFlow(f)
		} else {
			r.startTCPClient(f)
		}
	}
}

// startDelay is the flow's deterministic start jitter.
func (r *runner) startDelay(f *flow) units.Time {
	if r.s.Stagger <= 0 {
		return 0
	}
	return units.Time(f.rng.Int63n(int64(r.s.Stagger)))
}

// applyWeight registers the flow's arbiter weight on both ends once its
// sender port is known. The sender's own CAB accounts transmit staging by
// local port; the receiving CAB accounts the same flow under the
// (sender node, port) key.
func (r *runner) applyWeight(f *flow, port uint16) {
	f.port = port
	if f.weight <= 0 {
		return
	}
	if a := f.client.h.CAB.Arb; a != nil {
		a.SetWeight(int(port), f.weight)
	}
	if a := f.server.h.CAB.Arb; a != nil {
		a.SetWeight(cab.FlowKey(f.client.h.Cfg.CABNode, int(port)), f.weight)
	}
}

// auditSingleCopy checks every TCP bulk stream against the ledger's
// single-copy oracle: each delivered byte crossed each host bus exactly
// once by DMA with the checksum computed in flight, and no CPU ever
// copied or checksummed payload. Loose mode grants the documented
// retransmission allowance — congested fabrics drop and retransmit, and
// a retransmitted byte legitimately recrosses the sender's bus. Returns
// "" when the ledger was off (or the run has no audited flows), "ok"
// when every flow passed, else the first failure.
func (r *runner) auditSingleCopy() string {
	led := r.tb.Led
	if led == nil || !r.s.Bulk || r.s.Mode != socket.ModeSingleCopy {
		return ""
	}
	audited := false
	for _, f := range r.flows {
		if f.udp || f.port == 0 || f.streamed == 0 {
			continue
		}
		audited = true
		if err := led.AssertSingleCopy(ledger.AuditConfig{
			Flow:    int(f.port),
			Total:   hdrLen + f.streamed,
			SndHost: f.client.h.Name,
			RcvHost: f.server.h.Name,
		}); err != nil {
			return fmt.Sprintf("flow %d: %v", f.id, err)
		}
	}
	if !audited {
		return ""
	}
	return "ok"
}
