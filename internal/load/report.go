package load

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/hippi"
	"repro/internal/obs"
	"repro/internal/obs/netobs"
	"repro/internal/socket"
	"repro/internal/tcpip"
	"repro/internal/units"
)

// orderDigest is an FNV-1a hash over every delivery event (kind, flow,
// seq, virtual time). Two runs with identical event ordering produce the
// same digest; any reordering, loss difference, or timing change alters
// it.
type orderDigest struct{ h uint64 }

func newOrderDigest() *orderDigest { return &orderDigest{h: 14695981039346656037} }

func (d *orderDigest) note(kind byte, flow, seq int, t units.Time) {
	for _, v := range [...]uint64{uint64(kind), uint64(flow), uint64(seq), uint64(t)} {
		for i := 0; i < 8; i++ {
			d.h ^= (v >> (8 * i)) & 0xff
			d.h *= 1099511628211
		}
	}
}

func (d *orderDigest) hex() string { return fmt.Sprintf("%016x", d.h) }

// FlowReport is one flow's result (emitted for small scenarios).
type FlowReport struct {
	ID          int     `json:"id"`
	Proto       string  `json:"proto"`
	Port        int     `json:"port"`
	Bytes       int64   `json:"bytes"`
	Requests    int64   `json:"requests,omitempty"`
	DgramsSent  int64   `json:"dgrams_sent,omitempty"`
	DgramsRcvd  int64   `json:"dgrams_rcvd,omitempty"`
	GoodputMbps float64 `json:"goodput_mbps"`
	LatP50Us    float64 `json:"lat_p50_us,omitempty"`
	LatP99Us    float64 `json:"lat_p99_us,omitempty"`
}

// Report is one run's aggregate result. All fields are deterministic
// functions of the Scenario, so byte-identical JSON across runs is the
// determinism check.
type Report struct {
	Name     string `json:"name"`
	Seed     int64  `json:"seed"`
	Flows    int    `json:"flows"`
	TCPFlows int    `json:"tcp_flows"`
	UDPFlows int    `json:"udp_flows"`
	Mode     string `json:"mode"`
	Bulk     bool   `json:"bulk"`
	Arbiter  bool   `json:"arbiter"`
	// Topology and CC identify the fabric and congestion-control variant
	// (omitted for classic single-switch Reno runs, keeping their reports
	// byte-identical to the pre-fabric format).
	Topology string `json:"topology,omitempty"`
	CC       string `json:"cc,omitempty"`

	VTimeSec   float64 `json:"vtime_sec"`
	WindowSec  float64 `json:"window_sec"` // goodput measurement window
	TotalBytes int64   `json:"total_bytes"`
	SentBytes  int64   `json:"sent_bytes"`
	Requests   int64   `json:"requests"`
	DgramsSent int64   `json:"dgrams_sent"`
	DgramsRcvd int64   `json:"dgrams_rcvd"`

	GoodputMinMbps  float64 `json:"goodput_min_mbps"`
	GoodputP50Mbps  float64 `json:"goodput_p50_mbps"`
	GoodputMeanMbps float64 `json:"goodput_mean_mbps"`
	GoodputMaxMbps  float64 `json:"goodput_max_mbps"`
	LatP50Us        float64 `json:"lat_p50_us"`
	LatP99Us        float64 `json:"lat_p99_us"`
	LatP999Us       float64 `json:"lat_p999_us"`
	// LatHist is the full aggregate latency histogram (bucket upper bounds
	// in ns with cumulative-ready counts), so report consumers can compute
	// any quantile instead of the three precomputed ones.
	LatHist *obs.HistSnapshot `json:"lat_hist,omitempty"`

	Jain    float64 `json:"jain"`
	Starved int     `json:"starved"`

	ArbWaits        int64 `json:"arb_waits"`
	ArbBorrows      int64 `json:"arb_borrows"`
	ArbReclaims     int64 `json:"arb_reclaims"`
	ListenOverflows int64 `json:"listen_overflows"`
	Drops           int64 `json:"drops"`
	RxRetries       int64 `json:"rx_retries"`

	// ECNMarked counts frames CE-marked by the fabric; TrunkDrops counts
	// tail drops at capped trunk queues; Trunks carries the per-trunk
	// byte/frame counters (the ECMP share evidence).
	ECNMarked  int               `json:"ecn_marked,omitempty"`
	TrunkDrops int               `json:"trunk_drops,omitempty"`
	Trunks     []hippi.TrunkStat `json:"trunks,omitempty"`

	Errors     int    `json:"errors"`
	FirstError string `json:"first_error,omitempty"`
	// Audit is the single-copy ledger verdict when Scenario.Ledger was
	// set on a single-copy bulk run: "ok", or the first flow's oracle
	// failure. Empty when the ledger was off.
	Audit string `json:"audit,omitempty"`
	// FaultReport summarizes fault-injector activity ("" when the
	// scenario ran clean).
	FaultReport string `json:"fault_report,omitempty"`
	OrderDigest string `json:"order_digest"`

	PerFlow []FlowReport `json:"per_flow,omitempty"`

	// NetObs is the transport-dynamics postmortem when Scenario.NetObs
	// was set, analyzed past the warmup cutoff.
	NetObs *netobs.Postmortem `json:"netobs,omitempty"`

	// Crit is the causal recorder when Scenario.CritPath was set (never
	// marshaled; the critpath analyzer consumes it directly).
	Crit *obs.CritRec `json:"-"`
	// NetObsRec is the raw transport-dynamics recorder (never marshaled;
	// CLI dumps and the determinism regression test consume it).
	NetObsRec *netobs.Recorder `json:"-"`
	// Series is the utilization series set when Scenario.Series was set
	// (never marshaled; loadgen's -series flags consume it).
	Series *obs.SeriesSet `json:"-"`
}

// JSON renders the report with stable formatting.
func (r *Report) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// Jain computes Jain's fairness index (Σx)²/(n·Σx²) over xs; 1 is
// perfectly fair, 1/n is one flow taking everything.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

func round(x float64, digits int) float64 {
	p := math.Pow(10, float64(digits))
	return math.Round(x*p) / p
}

// perFlowLimit bounds the per-flow detail emitted in reports; large
// scenarios report aggregates only.
const perFlowLimit = 64

// report assembles the Report after the engine has drained.
func (r *runner) report() *Report {
	s := r.s
	rep := &Report{
		Name:    s.Name,
		Seed:    s.Seed,
		Flows:   len(r.flows),
		Mode:    "unmodified",
		Bulk:    s.Bulk,
		Arbiter: s.Arbiter != nil,
	}
	if s.Mode == socket.ModeSingleCopy {
		rep.Mode = "single_copy"
	}
	if s.Topology != "" {
		rep.Topology = s.Topology
		rep.CC = s.CC
		if rep.CC == "" {
			rep.CC = tcpip.CCReno
		}
		rep.ECNMarked = r.tb.Net.ECNMarked
		rep.TrunkDrops = r.tb.Net.DroppedFull
		rep.Trunks = r.tb.Net.TrunkStats()
	}
	if r.inj != nil {
		rep.FaultReport = r.inj.Report()
	}
	rep.Audit = r.auditSingleCopy()
	rep.VTimeSec = round(r.tb.Eng.Now().Seconds(), 9)
	window := r.tb.Eng.Now()
	if s.Bulk {
		window = s.Duration - s.Warmup
	} else if r.lastDelivery > 0 {
		window = r.lastDelivery
	}
	if window <= 0 {
		window = 1
	}
	rep.WindowSec = round(window.Seconds(), 9)

	// flowWindow is the flow's own measurement window: bulk flows with
	// staggered starts are measured over the part of [Warmup, Duration]
	// they were actually active for.
	flowWindow := func(f *flow) units.Time {
		if !s.Bulk {
			return window
		}
		from := s.Warmup
		if f.start > from {
			from = f.start
		}
		w := s.Duration - from
		if w <= 0 {
			w = units.Millisecond
		}
		return w
	}

	var goodputs, tcpGoodputs []float64
	for _, f := range r.flows {
		if f.udp {
			rep.UDPFlows++
		} else {
			rep.TCPFlows++
		}
		rep.TotalBytes += int64(f.bytes)
		rep.SentBytes += int64(f.sentBytes)
		rep.Requests += f.reqs
		rep.DgramsSent += f.dgramsSent
		rep.DgramsRcvd += f.dgramsRcvd
		rep.Errors += f.errs
		if rep.FirstError == "" {
			rep.FirstError = f.firstErr
		}
		g := float64(f.bytes) * 8 / flowWindow(f).Seconds() / 1e6
		goodputs = append(goodputs, g)
		if !f.udp {
			tcpGoodputs = append(tcpGoodputs, g)
		}
		if f.bytes == 0 {
			rep.Starved++
		}
	}

	sorted := append([]float64(nil), goodputs...)
	sort.Float64s(sorted)
	if n := len(sorted); n > 0 {
		var mean float64
		for _, g := range sorted {
			mean += g
		}
		rep.GoodputMinMbps = round(sorted[0], 3)
		rep.GoodputP50Mbps = round(sorted[(n-1)/2], 3)
		rep.GoodputMeanMbps = round(mean/float64(n), 3)
		rep.GoodputMaxMbps = round(sorted[n-1], 3)
	}
	if r.aggLat.Count() > 0 {
		rep.LatP50Us = round(float64(r.aggLat.Quantile(0.50))/float64(units.Microsecond), 2)
		rep.LatP99Us = round(float64(r.aggLat.Quantile(0.99))/float64(units.Microsecond), 2)
		rep.LatP999Us = round(float64(r.aggLat.Quantile(0.999))/float64(units.Microsecond), 2)
		snap := r.aggLat.Snapshot()
		rep.LatHist = &snap
	}

	// Fairness over TCP flows when present (the arbiter's subjects);
	// otherwise over all flows.
	fair := tcpGoodputs
	if len(fair) == 0 {
		fair = goodputs
	}
	rep.Jain = round(Jain(fair), 4)

	for _, h := range r.tb.Hosts {
		rep.ArbWaits += int64(h.CAB.Stats.ArbWaits)
		rep.ArbBorrows += int64(h.CAB.Stats.ArbBorrows)
		rep.ArbReclaims += int64(h.CAB.Stats.ArbReclaims)
		rep.ListenOverflows += int64(h.Stk.Stats.TCPListenOverflow)
		rep.Drops += int64(h.CAB.Stats.DropNoMem + h.CAB.Stats.DropNoBuf)
		rep.RxRetries += int64(h.CAB.Stats.RxRetries)
	}
	rep.Errors += r.frameErrs
	rep.OrderDigest = r.digest.hex()
	if s.CritPath {
		rep.Crit = r.tb.Tel.Crit()
	}
	if s.NetObs {
		rep.NetObs = r.tb.NetObsPostmortem(s.Warmup)
		rep.NetObsRec = r.tb.NetObs
	}
	rep.Series = r.tb.Series

	if len(r.flows) <= perFlowLimit {
		for _, f := range r.flows {
			fr := FlowReport{
				ID:          f.id,
				Proto:       "tcp",
				Port:        int(f.port),
				Bytes:       int64(f.bytes),
				Requests:    f.reqs,
				DgramsSent:  f.dgramsSent,
				DgramsRcvd:  f.dgramsRcvd,
				GoodputMbps: round(float64(f.bytes)*8/flowWindow(f).Seconds()/1e6, 3),
			}
			if f.udp {
				fr.Proto = "udp"
			}
			if f.lat.Count() > 0 {
				fr.LatP50Us = round(float64(f.lat.Quantile(0.50))/float64(units.Microsecond), 2)
				fr.LatP99Us = round(float64(f.lat.Quantile(0.99))/float64(units.Microsecond), 2)
			}
			rep.PerFlow = append(rep.PerFlow, fr)
		}
	}
	return rep
}
