package load

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/units"
	"repro/internal/wire"
)

// flow is one client→server traffic flow's state. All fields are mutated
// from simulation procs, which run single-threaded in the engine.
type flow struct {
	id     int
	udp    bool
	client *host
	server *host
	rng    *rand.Rand
	weight int
	port   uint16     // data sender's local port once known (= arbiter/ledger flow id)
	start  units.Time // when the flow began sending (after start jitter)

	lat        *obs.Histogram
	bytes      units.Size // verified payload bytes delivered (receiver side, in-window)
	sentBytes  units.Size
	reqs       int64 // completed request/response exchanges
	dgramsSent int64
	dgramsRcvd int64
	streamed   units.Size // total bulk stream bytes delivered (incl. past deadline)
	errs       int
	firstErr   string
}

func (f *flow) fail(format string, args ...any) {
	f.errs++
	if f.firstErr == "" {
		f.firstErr = fmt.Sprintf("flow %d: %s", f.id, fmt.Sprintf(format, args...))
	}
}

// --- Framing ---

// Every exchange starts with a fixed header carrying the flow identity,
// sequence number, sizes, and (for latency) the send time in virtual
// nanoseconds. Request and response payloads are position-dependent
// pattern bytes keyed by (flow, seq), so both ends verify byte-exact
// delivery.
const (
	hdrLen   = 32 * units.Byte
	hdrMagic = 0x4c4f4144 // "LOAD"
	bulkMark = 0xffffffff // reqLen value announcing a bulk stream
)

type msgHdr struct {
	flow     int
	seq      int
	reqLen   units.Size
	respLen  units.Size
	sendTime units.Time
}

func putHdr(b []byte, h msgHdr) {
	binary.BigEndian.PutUint32(b[0:], hdrMagic)
	binary.BigEndian.PutUint32(b[4:], uint32(h.flow))
	binary.BigEndian.PutUint32(b[8:], uint32(h.seq))
	binary.BigEndian.PutUint32(b[12:], uint32(h.reqLen))
	binary.BigEndian.PutUint32(b[16:], uint32(h.respLen))
	binary.BigEndian.PutUint32(b[20:], 0)
	binary.BigEndian.PutUint64(b[24:], uint64(h.sendTime))
}

func parseHdr(b []byte) (msgHdr, error) {
	if binary.BigEndian.Uint32(b[0:]) != hdrMagic {
		return msgHdr{}, fmt.Errorf("load: bad frame magic %#x", binary.BigEndian.Uint32(b[0:]))
	}
	return msgHdr{
		flow:     int(binary.BigEndian.Uint32(b[4:])),
		seq:      int(binary.BigEndian.Uint32(b[8:])),
		reqLen:   units.Size(binary.BigEndian.Uint32(b[12:])),
		respLen:  units.Size(binary.BigEndian.Uint32(b[16:])),
		sendTime: units.Time(binary.BigEndian.Uint64(b[24:])),
	}, nil
}

// patByte is the request/response payload pattern.
func patByte(flow, seq, off int) byte { return byte(flow*131 + seq*29 + off*3 + 7) }

// streamByte is the bulk-stream pattern at a stream offset.
func streamByte(flow int, off units.Size) byte { return byte(flow*131 + int(off)*3 + 7) }

func fillPat(b []byte, flow, seq, off int) {
	for i := range b {
		b[i] = patByte(flow, seq, off+i)
	}
}

func fillStream(b []byte, flow int, off units.Size) {
	for i := range b {
		b[i] = streamByte(flow, off+units.Size(i))
	}
}

// --- TCP helpers ---

// readFull reads exactly n bytes through buf (which may be smaller than
// n), invoking sink for each chunk with its logical offset. It returns an
// error on EOF or connection failure before n bytes arrive.
func readFull(p *sim.Proc, sock *socket.Socket, buf mem.Buf, n units.Size,
	sink func(b []byte, off units.Size) error) error {
	off := units.Size(0)
	for off < n {
		chunk := min(n-off, buf.Len)
		rd, err := sock.Read(p, buf.Slice(0, chunk))
		if rd > 0 {
			if sink != nil {
				if serr := sink(buf.Slice(0, rd).Bytes(), off); serr != nil {
					return serr
				}
			}
			off += rd
		}
		if err != nil && off < n {
			return fmt.Errorf("short read %d/%d: %w", off, n, err)
		}
	}
	return nil
}

func checkPat(f *flow, seq int) func(b []byte, off units.Size) error {
	return func(b []byte, off units.Size) error {
		for i, v := range b {
			if want := patByte(f.id, seq, int(off)+i); v != want {
				return fmt.Errorf("payload corrupt at seq %d off %d: got %#x want %#x",
					seq, int(off)+i, v, want)
			}
		}
		return nil
	}
}

func serverAddr(f *flow) wire.Addr { return f.server.h.Cfg.Addr }

func (r *runner) setWindow(sock *socket.Socket) {
	if r.s.Window > 0 {
		sock.Conn.SndLimit = r.s.Window
		sock.Conn.RcvLimit = r.s.Window
	}
}

// --- TCP client ---

func (r *runner) startTCPClient(f *flow) {
	r.tb.Eng.Go(fmt.Sprintf("flow%d-client", f.id), func(p *sim.Proc) {
		defer r.clientDone()
		if d := r.startDelay(f); d > 0 {
			p.Sleep(d)
		}
		f.start = p.Now()
		sock, err := f.client.h.Dial(p, f.client.task, serverAddr(f), tcpPort)
		if err != nil {
			f.fail("dial: %v", err)
			return
		}
		r.setWindow(sock)
		r.applyWeight(f, sock.Conn.LocalPort())
		if r.s.Bulk {
			r.runBulkClient(p, f, sock)
		} else {
			r.runRRClient(p, f, sock)
		}
	})
}

// runRRClient issues the request/response loop.
func (r *runner) runRRClient(p *sim.Proc, f *flow, sock *socket.Socket) {
	s := r.s
	maxReq, maxResp := s.maxSizes()
	wbuf := f.client.task.Space.Alloc(hdrLen+maxReq, 8)
	rbuf := f.client.task.Space.Alloc(max(maxResp, 16*units.KB), 8)
	next := p.Now()
	for i := 0; i < s.Requests; i++ {
		issued := p.Now()
		if s.OpenLoop {
			if i > 0 {
				next += units.Time(f.rng.ExpFloat64() / s.Rate * float64(units.Second))
			}
			if now := p.Now(); next > now {
				p.Sleep(next - now)
			}
			// Open loop: latency is measured from the scheduled arrival,
			// so a backed-up flow accrues queueing delay.
			issued = next
		} else if i > 0 && s.Think > 0 {
			p.Sleep(units.Time(f.rng.ExpFloat64() * float64(s.Think)))
			issued = p.Now()
		}
		cls := pick(s.Mix, f.rng)
		putHdr(wbuf.Bytes(), msgHdr{flow: f.id, seq: i, reqLen: cls.Req, respLen: cls.Resp, sendTime: issued})
		fillPat(wbuf.Slice(hdrLen, cls.Req).Bytes(), f.id, i, 0)
		if err := sock.WriteAll(p, wbuf.Slice(0, hdrLen+cls.Req)); err != nil {
			f.fail("write req %d: %v", i, err)
			break
		}
		f.sentBytes += cls.Req
		if cls.Resp > 0 {
			if err := readFull(p, sock, rbuf, cls.Resp, checkPat(f, i)); err != nil {
				f.fail("resp %d: %v", i, err)
				break
			}
			f.bytes += cls.Resp
		}
		f.reqs++
		lat := p.Now() - issued
		f.lat.Observe(lat)
		r.aggLat.Observe(lat)
		r.delivered('r', f.id, i, p.Now())
	}
	sock.Close(p)
}

// runBulkClient streams pattern bytes until the scenario deadline.
func (r *runner) runBulkClient(p *sim.Proc, f *flow, sock *socket.Socket) {
	s := r.s
	hbuf := f.client.task.Space.Alloc(hdrLen, 8)
	wbuf := f.client.task.Space.Alloc(s.BulkWrite, 8)
	putHdr(hbuf.Bytes(), msgHdr{flow: f.id, seq: 0, reqLen: bulkMark, sendTime: p.Now()})
	if err := sock.WriteAll(p, hbuf); err != nil {
		f.fail("bulk hdr: %v", err)
		return
	}
	off := units.Size(0)
	for p.Now() < s.Duration {
		fillStream(wbuf.Bytes(), f.id, off)
		if err := sock.WriteAll(p, wbuf); err != nil {
			f.fail("bulk write at %d: %v", off, err)
			break
		}
		off += s.BulkWrite
		f.sentBytes += s.BulkWrite
	}
	sock.Close(p)
}

// --- TCP server ---

func (r *runner) startAcceptLoop(sv *host) {
	r.tb.Eng.Go(sv.h.Name+"-accept", func(p *sim.Proc) {
		for {
			sock := sv.h.Accept(p, sv.task, sv.lis)
			if sock == nil {
				return
			}
			r.setWindow(sock)
			r.tb.Eng.Go(fmt.Sprintf("%s-conn%d", sv.h.Name, sock.Conn.RemotePort()),
				func(cp *sim.Proc) { r.serveTCP(cp, sv, sock) })
		}
	})
}

// serveTCP handles one accepted connection: a sequence of framed
// requests, or a bulk stream.
func (r *runner) serveTCP(p *sim.Proc, sv *host, sock *socket.Socket) {
	maxReq, maxResp := r.s.maxSizes()
	hbuf := sv.task.Space.Alloc(hdrLen, 8)
	rbuf := sv.task.Space.Alloc(max(maxReq, 64*units.KB), 8)
	wbuf := sv.task.Space.Alloc(max(maxResp, hdrLen), 8)
	for {
		if err := readFull(p, sock, hbuf, hdrLen, nil); err != nil {
			return // client closed between requests
		}
		hdr, err := parseHdr(hbuf.Bytes())
		if err != nil || hdr.flow < 0 || hdr.flow >= len(r.flows) {
			r.frameErrs++
			return
		}
		f := r.flows[hdr.flow]
		if hdr.reqLen == bulkMark {
			r.serveBulk(p, f, sock, rbuf)
			return
		}
		if err := readFull(p, sock, rbuf, hdr.reqLen, checkPat(f, hdr.seq)); err != nil {
			f.fail("req %d: %v", hdr.seq, err)
			return
		}
		f.bytes += hdr.reqLen
		r.delivered('q', f.id, hdr.seq, p.Now())
		if hdr.respLen > 0 {
			fillPat(wbuf.Slice(0, hdr.respLen).Bytes(), f.id, hdr.seq, 0)
			if err := sock.WriteAll(p, wbuf.Slice(0, hdr.respLen)); err != nil {
				f.fail("resp write %d: %v", hdr.seq, err)
				return
			}
		}
	}
}

// serveBulk drains a bulk stream to EOF, verifying the pattern; bytes
// arriving within the measurement window count toward goodput.
func (r *runner) serveBulk(p *sim.Proc, f *flow, sock *socket.Socket, rbuf mem.Buf) {
	off := units.Size(0)
	corrupt := false
	for {
		rd, err := sock.Read(p, rbuf)
		if rd > 0 {
			if !corrupt {
				b := rbuf.Slice(0, rd).Bytes()
				for i, v := range b {
					if want := streamByte(f.id, off+units.Size(i)); v != want {
						f.fail("bulk corrupt at %d: got %#x want %#x", int(off)+i, v, want)
						corrupt = true
						break
					}
				}
			}
			if now := p.Now(); now >= r.s.Warmup && now <= r.s.Duration {
				f.bytes += rd
			}
			off += rd
		}
		if err != nil {
			break
		}
	}
	f.streamed = off
	r.delivered('B', f.id, int(off), p.Now())
}

// --- UDP flows (one-way datagram streams) ---

func (r *runner) startUDPFlow(f *flow) {
	sh := f.server.h
	srv, err := socket.NewDGram(sh.K, sh.VM, f.server.task, sh.Stk,
		uint16(udpPortBase+f.id), sh.SocketConfig())
	if err != nil {
		f.fail("udp bind: %v", err)
		r.clientDone() // the client proc will never spawn
		return
	}
	maxReq, _ := r.s.maxSizes()
	maxPay := max(maxReq, r.s.BulkWrite)

	r.tb.Eng.Go(fmt.Sprintf("flow%d-udpsrv", f.id), func(p *sim.Proc) {
		rbuf := f.server.task.Space.Alloc(hdrLen+maxPay, 8)
		for {
			n, _, _ := srv.RecvFrom(p, rbuf)
			if n == 0 {
				return
			}
			if n < hdrLen {
				r.frameErrs++
				continue
			}
			hdr, err := parseHdr(rbuf.Bytes())
			if err != nil || hdr.flow != f.id || hdr.reqLen != n-hdrLen {
				r.frameErrs++
				continue
			}
			b := rbuf.Slice(hdrLen, hdr.reqLen).Bytes()
			ok := true
			for i, v := range b {
				if want := patByte(f.id, hdr.seq, i); v != want {
					f.fail("dgram %d corrupt at %d: got %#x want %#x", hdr.seq, i, v, want)
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			f.dgramsRcvd++
			if now := p.Now(); !r.s.Bulk || (now >= r.s.Warmup && now <= r.s.Duration) {
				f.bytes += hdr.reqLen
			}
			lat := p.Now() - hdr.sendTime
			f.lat.Observe(lat)
			r.aggLat.Observe(lat)
			r.delivered('d', f.id, hdr.seq, p.Now())
			if r.s.UDPServerThink > 0 {
				p.Sleep(r.s.UDPServerThink)
			}
		}
	})

	r.tb.Eng.Go(fmt.Sprintf("flow%d-udpcli", f.id), func(p *sim.Proc) {
		defer r.clientDone()
		ch := f.client.h
		cli, err := socket.NewDGram(ch.K, ch.VM, f.client.task, ch.Stk, 0, ch.SocketConfig())
		if err != nil {
			f.fail("udp client bind: %v", err)
			return
		}
		r.applyWeight(f, cli.Sock.Port())
		if d := r.startDelay(f); d > 0 {
			p.Sleep(d)
		}
		f.start = p.Now()
		wbuf := f.client.task.Space.Alloc(hdrLen+maxPay, 8)
		dst := serverAddr(f)
		dport := uint16(udpPortBase + f.id)
		send := func(seq int, pay units.Size) error {
			putHdr(wbuf.Bytes(), msgHdr{flow: f.id, seq: seq, reqLen: pay, sendTime: p.Now()})
			fillPat(wbuf.Slice(hdrLen, pay).Bytes(), f.id, seq, 0)
			f.dgramsSent++
			f.sentBytes += pay
			return cli.SendTo(p, wbuf.Slice(0, hdrLen+pay), dst, dport)
		}
		if r.s.Bulk {
			for seq := 0; p.Now() < r.s.Duration; seq++ {
				if err := send(seq, r.s.BulkWrite); err != nil {
					f.fail("udp send %d: %v", seq, err)
					break
				}
			}
			cli.Close()
			return
		}
		next := p.Now()
		for i := 0; i < r.s.Requests; i++ {
			if r.s.OpenLoop {
				if i > 0 {
					next += units.Time(f.rng.ExpFloat64() / r.s.Rate * float64(units.Second))
				}
				if now := p.Now(); next > now {
					p.Sleep(next - now)
				}
			} else if i > 0 && r.s.Think > 0 {
				p.Sleep(units.Time(f.rng.ExpFloat64() * float64(r.s.Think)))
			}
			cls := pick(r.s.Mix, f.rng)
			if err := send(i, cls.Req); err != nil {
				f.fail("udp send %d: %v", i, err)
				break
			}
		}
		cli.Close()
	})
}
