// Multi-switch fabrics. The classic Network is one switch: every attached
// node is a port on it and SendFrame serializes source → switch delay →
// destination. This file removes that single-switch assumption without
// touching the single-switch path: nodes are placed on switches, switches
// are joined by named trunks, and a route function picks the next trunk
// for each (frame, switch) pair. Topology assembly, ECMP hashing, and ECN
// marking policy live in internal/fabric; this file is only the per-hop
// mechanics (serialization, HOL coupling, telemetry, ledger charges).
package hippi

import (
	"fmt"
	"sort"

	"repro/internal/obs/ledger"
	"repro/internal/sim"
	"repro/internal/units"
)

// SwitchID identifies one switch in a fabric. The zero value is the
// classic single switch: with no placement installed every node is on
// switch 0 and no frame ever crosses a trunk.
type SwitchID int

// RouteFunc picks the trunk a frame leaves switch at on, given the frame
// and the destination's switch. Returning "" drops the frame as
// unrouteable (counted under DroppedUnattached).
type RouteFunc func(f *Frame, at, dstSw SwitchID) string

// LinkInjector is the fault-injection hook for fabric trunks: it is asked,
// per frame, whether the named link is partitioned at time now. The
// standard implementation is internal/fault's Injector (partition rules
// with link=NAME).
type LinkInjector interface {
	LinkDown(name string, now units.Time) bool
}

// trunk is one bidirectional inter-switch link. Each direction serializes
// independently at the network's line rate (a trunk is a pair of
// unidirectional HIPPI channels, like a host port).
type trunk struct {
	name string
	a, b SwitchID
	id   int // dense index for telemetry port-id assignment

	busyUntil [2]units.Time // per direction: 0 = a→b, 1 = b→a
	bytes     [2]units.Size
	frames    [2]int
	drops     [2]int
}

// TrunkStat is one trunk's byte/frame counters, for reports and the ECMP
// share tests.
type TrunkStat struct {
	Name     string     `json:"name"`
	AB       units.Size `json:"ab_bytes"`
	BA       units.Size `json:"ba_bytes"`
	FramesAB int        `json:"ab_frames"`
	FramesBA int        `json:"ba_frames"`
	DropsAB  int        `json:"ab_drops,omitempty"`
	DropsBA  int        `json:"ba_drops,omitempty"`
}

// trunkPortBase namespaces the synthetic netobs port ids assigned to trunk
// directions, far above any host NodeID, so fabric telemetry can never
// collide with a host port in the recorder.
const trunkPortBase = 1 << 16

// SetPlacement installs the node → switch map. A nil placement (the
// default) keeps every node on switch 0.
func (n *Network) SetPlacement(place func(NodeID) SwitchID) { n.placement = place }

func (n *Network) switchOf(id NodeID) SwitchID {
	if n.placement == nil {
		return 0
	}
	return n.placement(id)
}

// AddTrunk joins switches a and b with a named bidirectional link.
func (n *Network) AddTrunk(name string, a, b SwitchID) {
	if n.trunks == nil {
		n.trunks = make(map[string]*trunk)
	}
	if _, dup := n.trunks[name]; dup {
		panic(fmt.Sprintf("hippi: duplicate trunk %q", name))
	}
	t := &trunk{name: name, a: a, b: b, id: len(n.trunkList)}
	n.trunks[name] = t
	n.trunkList = append(n.trunkList, t)
}

// SetRoute installs the per-hop routing function.
func (n *Network) SetRoute(r RouteFunc) { n.route = r }

// SetLinkInjector installs the trunk partition hook.
func (n *Network) SetLinkInjector(li LinkInjector) { n.linkInj = li }

// SetFIFO selects the queueing discipline at each switch's trunk outputs.
// false (the default) is VOQ-like: each trunk direction serializes
// independently, so a hot uplink never blocks a cold one. true is a single
// shared FIFO per switch: all trunk transmissions out of one switch are
// coupled through one busy horizon, reproducing head-of-line blocking at
// fabric scale (the hol.go analysis, one level up).
func (n *Network) SetFIFO(fifo bool) {
	n.fifoHOL = fifo
	if fifo && n.fifoUntil == nil {
		n.fifoUntil = make(map[SwitchID]units.Time)
	}
}

// SetECN installs queue-threshold CE marking on fabric hops: when a frame
// queues behind threshold bytes or more of backlog (measured as stall time
// at the hop's serializer), mark is asked to CE-mark the frame in place.
// mark returns whether it marked (ECT frames only); internal/fabric
// provides the standard marker, which rewrites the IP header checksum.
func (n *Network) SetECN(threshold units.Size, mark func([]byte) bool) {
	n.markDelay = n.rate.TimeFor(threshold)
	n.markECN = mark
}

// SetQueueCap bounds each trunk direction's output queue to cap bytes of
// backlog (a switch's per-port buffer). A frame arriving to a deeper
// backlog is tail-dropped and counted under DroppedFull — the loss that
// turns fabric congestion into retransmissions instead of unbounded
// queueing delay. Zero (the default) keeps trunks lossless.
func (n *Network) SetQueueCap(cap units.Size) {
	n.capDelay = n.rate.TimeFor(cap)
}

// TrunkStats returns the per-trunk byte/frame counters, sorted by name.
func (n *Network) TrunkStats() []TrunkStat {
	out := make([]TrunkStat, 0, len(n.trunkList))
	for _, t := range n.trunkList {
		out = append(out, TrunkStat{
			Name: t.name,
			AB:   t.bytes[0], BA: t.bytes[1],
			FramesAB: t.frames[0], FramesBA: t.frames[1],
			DropsAB: t.drops[0], DropsBA: t.drops[1],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// forward carries a frame that must cross switches. Runs in event context
// at the moment the frame has fully left the source port (where the
// single-switch path would deliver); v is the injector's verdict, already
// checked for Drop. Each dup copy is forwarded independently — copies
// share f.Data, as they do on the single-switch path.
func (n *Network) forward(f Frame, txTime units.Time, v Verdict, sw, dstSw SwitchID) {
	for i := 0; i <= v.Dup; i++ {
		if i > 0 {
			n.Duped++
		}
		n.hop(f, txTime, sw, dstSw, v.Delay)
	}
}

// hop moves the frame one trunk closer to dstSw: route lookup, partition
// check, switch delay, serialization onto the trunk (with optional FIFO
// coupling and ECN marking), then either the next hop or final delivery.
func (n *Network) hop(f Frame, txTime units.Time, sw, dstSw SwitchID, extra units.Time) {
	var t *trunk
	if n.route != nil {
		t = n.trunks[n.route(&f, sw, dstSw)]
	}
	if t == nil {
		n.Dropped++
		n.DroppedUnattached++
		n.nobs.Drop(false)
		return
	}
	now := n.eng.Now()
	if n.linkInj != nil && n.linkInj.LinkDown(t.name, now) {
		n.Dropped++
		n.DroppedInj++
		n.nobs.Drop(true)
		return
	}
	dir := 0
	next := t.b
	if sw == t.b {
		dir, next = 1, t.a
	}
	start := now + n.delay
	if n.fifoHOL {
		if bu := n.fifoUntil[sw]; bu > start {
			start = bu
		}
	}
	var stall units.Time
	if t.busyUntil[dir] > start {
		stall = t.busyUntil[dir] - start
	}
	if n.capDelay > 0 && stall > n.capDelay {
		t.drops[dir]++
		n.Dropped++
		n.DroppedFull++
		n.nobs.DropFull()
		return
	}
	if stall > 0 {
		start = t.busyUntil[dir]
		n.txStalls.Inc()
	}
	end := start + txTime
	t.busyUntil[dir] = end
	if n.fifoHOL {
		n.fifoUntil[sw] = end
	}
	t.bytes[dir] += units.Size(len(f.Data))
	t.frames[dir]++
	if n.markECN != nil && stall >= n.markDelay && n.markECN(f.Data) {
		n.ECNMarked++
	}
	n.nobs.Trunk(trunkPortBase+2*t.id+dir, trunkPortName(t.name, dir),
		len(f.Data), stall, start, end)
	n.eng.AtKind(end, sim.KindWire, func() {
		n.Led.TouchP(f.Prov, 0, units.Size(len(f.Data)), ledger.WireTransit, "wire", 0)
		if next == dstSw {
			n.deliverAt(f, txTime, extra)
		} else {
			n.hop(f, txTime, next, dstSw, extra)
		}
	})
}

// deliverAt is the last hop: the frame has reached the destination's
// switch and now crosses to the host port, exactly as the single-switch
// tail does (switch delay, receive-side serialization unless the injector
// delayed the frame off the fast path, final wire-transit charge).
func (n *Network) deliverAt(f Frame, txTime, extra units.Time) {
	dp, ok := n.ports[f.Dst]
	if !ok {
		n.Dropped++
		n.DroppedUnattached++
		n.nobs.Drop(false)
		return
	}
	arriveStart := n.eng.Now() + n.delay + extra
	var rxStall units.Time
	if extra == 0 {
		if dp.rxBusyUntil > arriveStart {
			rxStall = dp.rxBusyUntil - arriveStart
			arriveStart = dp.rxBusyUntil
			n.rxStalls.Inc()
		}
		dp.rxBusyUntil = arriveStart + txTime
	}
	if n.markECN != nil && rxStall >= n.markDelay && n.markECN(f.Data) {
		n.ECNMarked++
	}
	n.nobs.Rx(int(f.Dst), len(f.Data), rxStall, arriveStart, arriveStart+txTime)
	n.eng.AtKind(arriveStart+txTime, sim.KindWire, func() {
		n.Delivered++
		n.Led.TouchP(f.Prov, 0, units.Size(len(f.Data)), ledger.WireTransit, "wire", 0)
		dp.recv(f)
	})
}

func trunkPortName(name string, dir int) string {
	if dir == 0 {
		return name + ">"
	}
	return name + "<"
}
