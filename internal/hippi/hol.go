package hippi

import "math/rand"

// Head-of-line blocking study (Section 2.1). The paper notes that a
// FIFO-queued input port on a switch-based network can use at most ~58% of
// the network bandwidth under uniform random traffic (Hluchyj & Karol),
// and that the CAB avoids this with multiple "logical channels" — queues
// of packets with different destinations. This slotted-crossbar model
// reproduces both regimes.

// HOLResult is the outcome of one queuing-discipline run.
type HOLResult struct {
	Ports       int
	Slots       int
	Delivered   int
	Utilization float64 // delivered / (ports × slots)
}

// RunFIFO simulates n saturated input ports with single FIFO queues on an
// n×n crossbar for the given number of slots. Each slot, every output
// accepts at most one packet; an input whose head-of-line packet targets a
// taken output is blocked even if it holds packets for idle outputs.
func RunFIFO(n, slots int, seed int64) HOLResult {
	rng := rand.New(rand.NewSource(seed))
	// Each input's FIFO holds destination indices; saturated inputs are
	// modeled by refilling so queues never drain.
	const depth = 64
	queues := make([][]int, n)
	for i := range queues {
		for j := 0; j < depth; j++ {
			queues[i] = append(queues[i], rng.Intn(n))
		}
	}
	delivered := 0
	outTaken := make([]bool, n)
	for s := 0; s < slots; s++ {
		for i := range outTaken {
			outTaken[i] = false
		}
		// Random service order each slot avoids persistent port bias.
		order := rng.Perm(n)
		for _, in := range order {
			head := queues[in][0]
			if !outTaken[head] {
				outTaken[head] = true
				delivered++
				queues[in] = append(queues[in][1:], rng.Intn(n))
			}
		}
	}
	return HOLResult{
		Ports:       n,
		Slots:       slots,
		Delivered:   delivered,
		Utilization: float64(delivered) / float64(n*slots),
	}
}

// RunLogicalChannels simulates the same saturated crossbar with
// per-destination queues at each input (the CAB's logical channels / VOQ
// organization) and a simple iterative matching: blocked inputs may send a
// packet queued for any idle output, so head-of-line blocking disappears.
func RunLogicalChannels(n, slots int, seed int64) HOLResult {
	rng := rand.New(rand.NewSource(seed))
	// voq[i][d] is the number of packets input i holds for output d.
	// Saturation: every channel always has traffic available; we model a
	// bounded backlog refreshed randomly so the matching is non-trivial.
	voq := make([][]int, n)
	for i := range voq {
		voq[i] = make([]int, n)
		for j := 0; j < 4*n; j++ {
			voq[i][rng.Intn(n)]++
		}
	}
	delivered := 0
	for s := 0; s < slots; s++ {
		outTaken := make([]bool, n)
		inDone := make([]bool, n)
		// A few greedy matching iterations approximate maximal matching.
		for iter := 0; iter < 4; iter++ {
			order := rng.Perm(n)
			for _, in := range order {
				if inDone[in] {
					continue
				}
				// Longest-queue-first among idle outputs.
				best, bestLen := -1, 0
				for d := 0; d < n; d++ {
					if !outTaken[d] && voq[in][d] > bestLen {
						best, bestLen = d, voq[in][d]
					}
				}
				if best >= 0 {
					outTaken[best] = true
					inDone[in] = true
					voq[in][best]--
					voq[in][rng.Intn(n)]++ // refill: stay saturated
					delivered++
				}
			}
		}
	}
	return HOLResult{
		Ports:       n,
		Slots:       slots,
		Delivered:   delivered,
		Utilization: float64(delivered) / float64(n*slots),
	}
}
