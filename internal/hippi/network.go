// Package hippi models the HIPPI media the CAB attaches to: 100
// MByte/second point-to-point links through a switch (Section 2.1). The
// functional model serializes frames at line rate on the sender's and
// receiver's ports and applies a fixed propagation/switching delay; a
// separate slotted-crossbar model (hol.go) reproduces the head-of-line
// blocking analysis that motivates the CAB's logical channels.
package hippi

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/obs/ledger"
	"repro/internal/obs/netobs"
	"repro/internal/sim"
	"repro/internal/units"
)

// LineRate is the HIPPI line rate: 100 MByte/second.
const LineRate = 100 * units.MBytePerSec

// NodeID identifies a host port on the switch.
type NodeID int

// Frame is one media frame: a fully formed packet. Span, when telemetry is
// enabled, carries the sender's data-path span across the wire.
type Frame struct {
	Src, Dst NodeID
	Data     []byte
	Span     *obs.Span
	// Prov carries the data-touch provenance across the wire so the
	// receiving driver's touches stay attributed (nil when the ledger is
	// off).
	Prov *ledger.Prov
	// Flow identifies the transport flow (data sender's local port) so the
	// receiving CAB's netmem arbiter can account staging pages per flow.
	// Zero means unattributed.
	Flow int
}

// Injector is the fault-injection hook consulted for every frame after
// source serialization (internal/fault provides the standard
// implementation). The injector may mutate f.Data in place (corruption)
// and returns a Verdict deciding the frame's fate. A nil injector is a
// clean wire.
type Injector interface {
	Frame(f *Frame) Verdict
}

// Verdict is an injector's decision for one frame. The zero value delivers
// the frame normally.
type Verdict struct {
	// Drop discards the frame.
	Drop bool
	// Dup delivers this many extra copies of the frame.
	Dup int
	// Delay adds extra propagation delay. Delayed frames bypass the
	// receive-port serialization (they took a different path through the
	// switch), so a delay longer than the inter-frame spacing reorders.
	Delay units.Time
}

// Network is a switch connecting host ports.
type Network struct {
	eng   *sim.Engine
	rate  units.Rate
	delay units.Time
	ports map[NodeID]*port

	// Inj, if set, is consulted for every frame after source
	// serialization (fault injection).
	Inj Injector

	// Counters. Dropped is the total; DroppedInj (fault-injector drops),
	// DroppedUnattached (frames addressed to a node with no attached
	// port) and DroppedFull (trunk tail drops, below) split it by cause
	// and always sum to it.
	Sent, Delivered, Dropped, Duped int
	DroppedInj, DroppedUnattached   int
	BytesSent                       units.Size

	// Telemetry (nil when disabled): port-busy stalls on transmit and
	// receive — the head-of-line effects the logical channels address.
	txStalls, rxStalls *obs.Counter

	// Led records wire-transit data touches (nil when the ledger is off).
	Led *ledger.Hook

	// nobs records per-port busy/stall telemetry and per-flow
	// bytes-on-wire for the transport-dynamics observatory (nil when
	// netobs is off; every hook is then a nil no-op).
	nobs *netobs.WireRec

	// Multi-switch fabric state (multiswitch.go). All nil/zero for the
	// classic single-switch network, which keeps that path byte-identical:
	// with a nil placement every node lives on switch 0 and SendFrame
	// never takes the forwarding branch.
	placement func(NodeID) SwitchID
	trunks    map[string]*trunk
	trunkList []*trunk
	route     RouteFunc
	linkInj   LinkInjector
	fifoHOL   bool
	fifoUntil map[SwitchID]units.Time
	markECN   func([]byte) bool
	markDelay units.Time
	capDelay  units.Time

	// ECNMarked counts frames CE-marked by the fabric's queue-threshold
	// marker; DroppedFull counts trunk tail drops (SetQueueCap), part of
	// the Dropped-sum invariant above.
	ECNMarked   int
	DroppedFull int
}

// SetNetObs attaches the wire-telemetry recorder.
func (n *Network) SetNetObs(w *netobs.WireRec) { n.nobs = w }

// SetObs registers the network's counters on r under prefix (e.g. "hippi",
// "eth"). Safe to skip entirely; a nil registry is a no-op.
func (n *Network) SetObs(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	r.Func(prefix+".frames_sent", func() int64 { return int64(n.Sent) })
	r.Func(prefix+".frames_delivered", func() int64 { return int64(n.Delivered) })
	r.Func(prefix+".frames_dropped", func() int64 { return int64(n.Dropped) })
	r.Func(prefix+".frames_dropped_inj", func() int64 { return int64(n.DroppedInj) })
	r.Func(prefix+".frames_dropped_unattached", func() int64 { return int64(n.DroppedUnattached) })
	r.Func(prefix+".frames_duped", func() int64 { return int64(n.Duped) })
	r.Func(prefix+".bytes_sent", func() int64 { return int64(n.BytesSent) })
	n.txStalls = r.Counter(prefix + ".tx_stalls")
	n.rxStalls = r.Counter(prefix + ".rx_stalls")
}

type port struct {
	recv        func(Frame)
	txBusyUntil units.Time
	rxBusyUntil units.Time
}

// NewNetwork returns a switch on engine eng with per-port line rate rate
// and fixed propagation/switching delay.
func NewNetwork(eng *sim.Engine, rate units.Rate, delay units.Time) *Network {
	return &Network{eng: eng, rate: rate, delay: delay, ports: make(map[NodeID]*port)}
}

// Attach registers the receive callback for node id. recv runs in event
// context at frame-arrival time.
func (n *Network) Attach(id NodeID, recv func(Frame)) {
	if _, dup := n.ports[id]; dup {
		panic(fmt.Sprintf("hippi: duplicate attach of node %d", id))
	}
	n.ports[id] = &port{recv: recv}
}

// Send transmits data from src to dst. The source port serializes the
// frame at line rate; sent (if non-nil) runs when the frame has fully left
// the source (the moment the sender's MDMA completes). Delivery to dst
// happens after the switch delay plus receive-side serialization.
func (n *Network) Send(src, dst NodeID, data []byte, sent func()) {
	n.SendFrame(Frame{Src: src, Dst: dst, Data: data}, sent)
}

// SendFrame is Send for a caller-built frame (which may carry a telemetry
// span across the wire).
func (n *Network) SendFrame(f Frame, sent func()) {
	sp, ok := n.ports[f.Src]
	if !ok {
		panic(fmt.Sprintf("hippi: send from unattached node %d", f.Src))
	}
	now := n.eng.Now()
	txTime := n.rate.TimeFor(units.Size(len(f.Data)))
	start := now
	if sp.txBusyUntil > start {
		start = sp.txBusyUntil
		n.txStalls.Inc()
	}
	end := start + txTime
	sp.txBusyUntil = end
	n.Sent++
	n.BytesSent += units.Size(len(f.Data))
	n.nobs.Tx(int(f.Src), int(f.Dst), f.Flow, len(f.Data), start-now, start, end)

	n.eng.AtKind(end, sim.KindWire, func() {
		if sent != nil {
			sent()
		}
		var v Verdict
		if n.Inj != nil {
			v = n.Inj.Frame(&f)
		}
		if v.Drop {
			n.Dropped++
			n.DroppedInj++
			n.nobs.Drop(true)
			return
		}
		if asw, bsw := n.switchOf(f.Src), n.switchOf(f.Dst); asw != bsw {
			n.forward(f, txTime, v, asw, bsw)
			return
		}
		dp, ok := n.ports[f.Dst]
		if !ok {
			n.Dropped++
			n.DroppedUnattached++
			n.nobs.Drop(false)
			return
		}
		for i := 0; i <= v.Dup; i++ {
			if i > 0 {
				n.Duped++
			}
			arriveStart := n.eng.Now() + n.delay + v.Delay
			var rxStall units.Time
			if v.Delay == 0 {
				if dp.rxBusyUntil > arriveStart {
					rxStall = dp.rxBusyUntil - arriveStart
					arriveStart = dp.rxBusyUntil
					n.rxStalls.Inc()
				}
				dp.rxBusyUntil = arriveStart + txTime
			}
			n.nobs.Rx(int(f.Dst), len(f.Data), rxStall, arriveStart, arriveStart+txTime)
			n.eng.AtKind(arriveStart+txTime, sim.KindWire, func() {
				n.Delivered++
				n.Led.TouchP(f.Prov, 0, units.Size(len(f.Data)), ledger.WireTransit, "wire", 0)
				dp.recv(f)
			})
		}
	})
}

// TxBusy reports whether src's transmit port is mid-frame.
func (n *Network) TxBusy(src NodeID) bool {
	p, ok := n.ports[src]
	return ok && p.txBusyUntil > n.eng.Now()
}
