package hippi

import (
	"bytes"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

func TestSendDeliversBytes(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewNetwork(e, LineRate, 5*units.Microsecond)
	var got Frame
	n.Attach(1, func(f Frame) {})
	n.Attach(2, func(f Frame) { got = f })
	data := []byte("hello hippi")
	n.Send(1, 2, data, nil)
	e.Run()
	if got.Src != 1 || got.Dst != 2 || !bytes.Equal(got.Data, data) {
		t.Fatalf("bad delivery: %+v", got)
	}
}

func TestSerializationTiming(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewNetwork(e, LineRate, 0)
	var deliveredAt []units.Time
	n.Attach(1, func(Frame) {})
	n.Attach(2, func(Frame) { deliveredAt = append(deliveredAt, e.Now()) })
	// 100 MByte/s = 1 byte per 10 ns; 32 KB frame = 327.68 µs.
	data := make([]byte, 32*1024)
	n.Send(1, 2, data, nil)
	n.Send(1, 2, data, nil)
	e.Run()
	frame := LineRate.TimeFor(32 * units.KB)
	// First frame: tx serialization + rx serialization (store-and-forward).
	if want := 2 * frame; deliveredAt[0] != want {
		t.Fatalf("first delivery at %v, want %v", deliveredAt[0], want)
	}
	// Second frame pipelines behind the first: one extra frame time.
	if want := 3 * frame; deliveredAt[1] != want {
		t.Fatalf("second delivery at %v, want %v", deliveredAt[1], want)
	}
}

func TestSentCallbackAtSourceCompletion(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewNetwork(e, LineRate, 50*units.Microsecond)
	n.Attach(1, func(Frame) {})
	n.Attach(2, func(Frame) {})
	var sentAt units.Time
	data := make([]byte, 1024)
	n.Send(1, 2, data, func() { sentAt = e.Now() })
	e.Run()
	if want := LineRate.TimeFor(1 * units.KB); sentAt != want {
		t.Fatalf("sent at %v, want %v (before propagation)", sentAt, want)
	}
}

// injFn adapts a function to the Injector interface for tests.
type injFn func(*Frame) Verdict

func (fn injFn) Frame(f *Frame) Verdict { return fn(f) }

func TestInjectorDrop(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewNetwork(e, LineRate, 0)
	delivered := 0
	n.Attach(1, func(Frame) {})
	n.Attach(2, func(Frame) { delivered++ })
	i := 0
	n.Inj = injFn(func(*Frame) Verdict { i++; return Verdict{Drop: i%2 == 0} })
	for j := 0; j < 10; j++ {
		n.Send(1, 2, make([]byte, 100), nil)
	}
	e.Run()
	if delivered != 5 || n.Dropped != 5 {
		t.Fatalf("delivered=%d dropped=%d, want 5/5", delivered, n.Dropped)
	}
}

func TestNetObsDropSplit(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewNetwork(e, LineRate, 0)
	n.Attach(1, func(Frame) {})
	n.Attach(2, func(Frame) {})
	i := 0
	n.Inj = injFn(func(*Frame) Verdict { i++; return Verdict{Drop: i <= 3} })
	for j := 0; j < 5; j++ {
		n.Send(1, 2, make([]byte, 100), nil) // 3 injected drops, 2 delivered
	}
	for j := 0; j < 2; j++ {
		n.Send(1, 9, make([]byte, 100), nil) // unattached destination
	}
	e.Run()
	if n.DroppedInj != 3 || n.DroppedUnattached != 2 {
		t.Fatalf("drop split inj=%d unattached=%d, want 3/2", n.DroppedInj, n.DroppedUnattached)
	}
	if n.DroppedInj+n.DroppedUnattached+n.DroppedFull != n.Dropped {
		t.Fatalf("drop split inj=%d + unattached=%d != dropped=%d",
			n.DroppedInj, n.DroppedUnattached, n.Dropped)
	}
	if n.Sent+n.Duped != n.Delivered+n.Dropped {
		t.Fatalf("conservation: sent=%d duped=%d delivered=%d dropped=%d",
			n.Sent, n.Duped, n.Delivered, n.Dropped)
	}
}

func TestInjectorDup(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewNetwork(e, LineRate, 0)
	delivered := 0
	n.Attach(1, func(Frame) {})
	n.Attach(2, func(Frame) { delivered++ })
	n.Inj = injFn(func(*Frame) Verdict { return Verdict{Dup: 1} })
	for j := 0; j < 5; j++ {
		n.Send(1, 2, make([]byte, 100), nil)
	}
	e.Run()
	if delivered != 10 || n.Duped != 5 {
		t.Fatalf("delivered=%d duped=%d, want 10/5", delivered, n.Duped)
	}
	if n.Sent+n.Duped != n.Delivered+n.Dropped {
		t.Fatalf("conservation: sent=%d duped=%d delivered=%d dropped=%d",
			n.Sent, n.Duped, n.Delivered, n.Dropped)
	}
}

func TestInjectorDelayReorders(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewNetwork(e, LineRate, 0)
	var order []int
	n.Attach(1, func(Frame) {})
	n.Attach(2, func(f Frame) { order = append(order, int(f.Data[0])) })
	i := 0
	// Delay only the first frame; the later frames overtake it.
	n.Inj = injFn(func(*Frame) Verdict {
		i++
		if i == 1 {
			return Verdict{Delay: 1 * units.Millisecond}
		}
		return Verdict{}
	})
	for j := 0; j < 3; j++ {
		n.Send(1, 2, []byte{byte(j), 1, 2}, nil)
	}
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[2] != 0 {
		t.Fatalf("delivery order %v, want delayed frame 0 last", order)
	}
}

func TestThroughputAtLineRate(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewNetwork(e, LineRate, 10*units.Microsecond)
	n.Attach(1, func(Frame) {})
	var last units.Time
	var total units.Size
	n.Attach(2, func(f Frame) {
		last = e.Now()
		total += units.Size(len(f.Data))
	})
	for j := 0; j < 100; j++ {
		n.Send(1, 2, make([]byte, 32*1024), nil)
	}
	e.Run()
	rate := units.RateOf(total, last)
	// Back-to-back 32KB frames should sustain close to the 800 Mb/s line rate.
	if r := rate.Mbit(); r < 700 || r > 800 {
		t.Fatalf("sustained rate %.1f Mb/s, want ~790", r)
	}
}

func TestHOLFIFOUtilizationNear58Percent(t *testing.T) {
	// Hluchyj & Karol: saturated FIFO inputs on a large crossbar deliver
	// ≈ 58.6% utilization; the paper cites "at most 58%".
	res := RunFIFO(32, 20000, 42)
	if res.Utilization < 0.54 || res.Utilization > 0.64 {
		t.Fatalf("FIFO utilization = %.3f, want ≈0.586", res.Utilization)
	}
}

func TestHOLLogicalChannelsBeatFIFO(t *testing.T) {
	fifo := RunFIFO(16, 10000, 7)
	voq := RunLogicalChannels(16, 10000, 7)
	if voq.Utilization < 0.9 {
		t.Fatalf("logical-channel utilization = %.3f, want > 0.9", voq.Utilization)
	}
	if voq.Utilization <= fifo.Utilization+0.2 {
		t.Fatalf("logical channels (%.3f) should clearly beat FIFO (%.3f)",
			voq.Utilization, fifo.Utilization)
	}
}

func TestHOLSmallSwitchHigherUtilization(t *testing.T) {
	// For n=2 the theoretical FIFO limit is 0.75; utilization must exceed
	// the asymptotic 0.586.
	res := RunFIFO(2, 20000, 11)
	if res.Utilization < 0.70 || res.Utilization > 0.80 {
		t.Fatalf("2-port FIFO utilization = %.3f, want ≈0.75", res.Utilization)
	}
}
