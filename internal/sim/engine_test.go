package sim

import (
	"testing"

	"repro/internal/units"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEventTieBreakFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(5, func() {})
}

func TestAfterAndNesting(t *testing.T) {
	e := NewEngine(1)
	var fired units.Time
	e.After(100, func() {
		e.After(50, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 150 {
		t.Fatalf("nested event fired at %v, want 150", fired)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := units.Time(10); i <= 100; i += 10 {
		e.At(i, func() { count++ })
	}
	e.RunUntil(50)
	if count != 5 {
		t.Fatalf("ran %d events, want 5", count)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %v, want 50", e.Now())
	}
	e.Run()
	if count != 10 {
		t.Fatalf("ran %d events total, want 10", count)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := units.Time(1); i <= 100; i++ {
		e.At(i, func() {
			count++
			if count == 7 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 7 {
		t.Fatalf("ran %d events, want 7 after Stop", count)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine(1)
	var wakes []units.Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(10)
		wakes = append(wakes, p.Now())
		p.Sleep(25)
		wakes = append(wakes, p.Now())
	})
	e.Run()
	if len(wakes) != 2 || wakes[0] != 10 || wakes[1] != 35 {
		t.Fatalf("wakes = %v, want [10 35]", wakes)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs = %d, want 0", e.LiveProcs())
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine(1)
	var trace []string
	e.Go("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10)
		trace = append(trace, "a1")
		p.Sleep(20) // wakes at 30
		trace = append(trace, "a2")
	})
	e.Go("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(20)
		trace = append(trace, "b1")
	})
	e.Run()
	want := []string{"a0", "b0", "a1", "b1", "a2"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	woken := 0
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			s.Wait(p)
			woken++
		})
	}
	e.At(50, func() { s.Broadcast() })
	e.Run()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestSignalSignalWakesOne(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	woken := 0
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			s.Wait(p)
			woken++
		})
	}
	e.At(50, func() { s.Signal() })
	e.Run()
	if woken != 1 {
		t.Fatalf("woken = %d, want 1", woken)
	}
	if s.Waiting() != 2 {
		t.Fatalf("waiting = %d, want 2", s.Waiting())
	}
	e.KillAll()
}

func TestSignalWaitTimeout(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	var timedOut, signaled bool
	e.Go("t", func(p *Proc) {
		timedOut = !s.WaitTimeout(p, 10)
	})
	e.Go("s", func(p *Proc) {
		signaled = s.WaitTimeout(p, 100)
	})
	e.At(50, func() { s.Broadcast() })
	e.Run()
	if !timedOut {
		t.Fatal("first waiter should have timed out")
	}
	if !signaled {
		t.Fatal("second waiter should have been signaled")
	}
}

func TestSignalWaitTimeoutNoDoubleWake(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	wakes := 0
	e.Go("w", func(p *Proc) {
		s.WaitTimeout(p, 10)
		wakes++
		p.Sleep(1000) // park again; a stray second wake would resume early
		wakes++
	})
	e.At(10, func() { s.Broadcast() }) // broadcast at exactly the timeout
	e.Run()
	if wakes != 2 {
		t.Fatalf("wakes = %d, want 2", wakes)
	}
	if e.Now() != 1010 {
		t.Fatalf("final time %v, want 1010 (no early wake)", e.Now())
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		e.Go("p", func(p *Proc) {
			r.Acquire(p, 0)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(10)
			inside--
			r.Release()
		})
	}
	e.Run()
	if maxInside != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxInside)
	}
	if e.Now() != 40 {
		t.Fatalf("serialized work finished at %v, want 40", e.Now())
	}
}

func TestResourcePriority(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	var order []string
	hold := func(name string, prio int) func(*Proc) {
		return func(p *Proc) {
			r.Acquire(p, prio)
			order = append(order, name)
			p.Sleep(10)
			r.Release()
		}
	}
	// First proc grabs the resource; others queue with mixed priorities.
	e.Go("first", hold("first", 5))
	e.At(1, func() { e.Go("low", hold("low", 10)) })
	e.At(2, func() { e.Go("high", hold("high", 0)) })
	e.At(3, func() { e.Go("mid", hold("mid", 5)) })
	e.Run()
	want := []string{"first", "high", "mid", "low"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestResourceCapacity(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 2)
	done := 0
	for i := 0; i < 4; i++ {
		e.Go("p", func(p *Proc) {
			r.Acquire(p, 0)
			p.Sleep(10)
			r.Release()
			done++
		})
	}
	e.Run()
	if done != 4 {
		t.Fatalf("done = %d, want 4", done)
	}
	if e.Now() != 20 {
		t.Fatalf("finished at %v, want 20 with capacity 2", e.Now())
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	if !r.TryAcquire() {
		t.Fatal("first TryAcquire should succeed")
	}
	if r.TryAcquire() {
		t.Fatal("second TryAcquire should fail")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release should succeed")
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e)
	var got []int
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.At(10, func() {
		for i := 1; i <= 5; i++ {
			q.Put(i)
		}
	})
	e.Run()
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got = %v, want 1..5", got)
		}
	}
}

func TestQueueBlocksUntilPut(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[string](e)
	var at units.Time
	e.Go("consumer", func(p *Proc) {
		q.Get(p)
		at = p.Now()
	})
	e.At(77, func() { q.Put("x") })
	e.Run()
	if at != 77 {
		t.Fatalf("consumer resumed at %v, want 77", at)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []units.Time {
		e := NewEngine(42)
		var log []units.Time
		r := NewResource(e, 1)
		for i := 0; i < 10; i++ {
			e.Go("p", func(p *Proc) {
				d := units.Time(e.Rand().Intn(100))
				p.Sleep(d)
				r.Acquire(p, 0)
				p.Sleep(5)
				log = append(log, p.Now())
				r.Release()
			})
		}
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestKillAll(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	cleaned := false
	e.Go("stuck", func(p *Proc) {
		defer func() { cleaned = true }()
		s.Wait(p) // never signaled
	})
	e.Run()
	if e.LiveProcs() != 1 {
		t.Fatalf("live procs = %d, want 1", e.LiveProcs())
	}
	e.KillAll()
	if !cleaned {
		t.Fatal("killed process defers did not run")
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs after KillAll = %d, want 0", e.LiveProcs())
	}
}

func TestYield(t *testing.T) {
	e := NewEngine(1)
	var trace []string
	e.Go("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Yield()
		trace = append(trace, "a1")
	})
	e.Go("b", func(p *Proc) {
		trace = append(trace, "b0")
	})
	e.Run()
	if trace[0] != "a0" || trace[1] != "b0" || trace[2] != "a1" {
		t.Fatalf("trace = %v", trace)
	}
}

func TestProcPanicPropagatesToEngine(t *testing.T) {
	e := NewEngine(1)
	e.Go("bad", func(p *Proc) {
		p.Sleep(5)
		panic("boom")
	})
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	e.Run()
	t.Fatal("panic not propagated")
}
