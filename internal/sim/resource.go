package sim

// Resource is a counting semaphore with priority queuing, used to model
// contended hardware: a CPU, a DMA engine, a bus. Lower prio values are
// served first; within a priority, FIFO order (by request sequence) holds,
// which keeps the simulation deterministic.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	seq      int64
	queue    []*resWaiter
}

type resWaiter struct {
	p    *Proc
	prio int
	seq  int64
}

// NewResource returns a resource with the given capacity (≥1).
func NewResource(e *Engine, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{eng: e, capacity: capacity}
}

// Acquire blocks p until a unit of the resource is available. prio orders
// contending waiters; lower values win.
func (r *Resource) Acquire(p *Proc, prio int) {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.inUse++
		return
	}
	r.seq++
	w := &resWaiter{p: p, prio: prio, seq: r.seq}
	r.insert(w)
	p.park()
	// The releaser incremented inUse on our behalf before waking us.
}

// TryAcquire acquires a unit without blocking; it reports success.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit and grants it to the best waiter, if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of un-acquired resource")
	}
	r.inUse--
	if len(r.queue) > 0 && r.inUse < r.capacity {
		w := r.queue[0]
		r.queue = r.queue[1:]
		r.inUse++
		w.p.wake()
	}
}

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting.
func (r *Resource) QueueLen() int { return len(r.queue) }

// insert places w in the queue ordered by (prio, seq).
func (r *Resource) insert(w *resWaiter) {
	i := len(r.queue)
	for i > 0 {
		q := r.queue[i-1]
		if q.prio < w.prio || (q.prio == w.prio && q.seq < w.seq) {
			break
		}
		i--
	}
	r.queue = append(r.queue, nil)
	copy(r.queue[i+1:], r.queue[i:])
	r.queue[i] = w
}
