// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock by executing scheduled events in
// (time, sequence) order. On top of raw events it offers blocking
// *processes* (goroutines that park between simulation steps, in the style
// of SimPy), counting semaphore *resources* with priorities, condition
// *signals*, and FIFO *queues*. All scheduling is deterministic: ties are
// broken by insertion order and the only source of randomness is an
// explicitly seeded generator.
//
// The engine is single-threaded from the caller's point of view: events and
// process steps never run concurrently, so simulation code needs no locks.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/units"
)

// Kind classifies scheduled events for the engine meta-observer
// (internal/obs/engine): it answers "what species of real work is the
// simulator doing" without touching virtual-time semantics. Untagged
// events are KindGeneric.
type Kind uint8

// Event kinds. The order is part of the exported counter layout.
const (
	KindGeneric Kind = iota // untagged events
	KindProc                // process wakeups (Sleep, Yield, handoffs)
	KindTimer               // protocol timers and retry pumps
	KindWire                // network propagation and arrival
	KindDMA                 // adaptor DMA completions
	NumKinds
)

var kindNames = [NumKinds]string{"generic", "proc", "timer", "wire", "dma"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Monitor observes the engine's real (wall-clock) work: it is called from
// the scheduling and dispatch inner loops, so implementations must be
// cheap (integer arithmetic; no allocation). When no monitor is set the
// engine pays exactly one nil check per event.
type Monitor interface {
	// Scheduled runs after an event is pushed; pending is the heap size
	// including the new event.
	Scheduled(kind Kind, pending int)
	// Dispatched runs after an event's callback returns; pending is the
	// heap size at that instant.
	Dispatched(kind Kind, pending int)
}

// Engine is a discrete-event simulator instance.
type Engine struct {
	now     units.Time
	events  eventHeap
	seq     int64
	running bool
	stopped bool
	live    map[*Proc]struct{}
	rng     *rand.Rand
	mon     Monitor
}

type event struct {
	at   units.Time
	seq  int64
	kind Kind
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// NewEngine returns an engine with its clock at zero and a deterministic
// random source seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		live: make(map[*Proc]struct{}),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() units.Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SetMonitor installs (or, with nil, removes) the engine meta-observer.
// Install it before the simulation schedules work so the monitor's
// pending-event accounting sees every push.
func (e *Engine) SetMonitor(m Monitor) { e.mon = m }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it would silently corrupt causality.
func (e *Engine) At(t units.Time, fn func()) {
	e.AtKind(t, KindGeneric, fn)
}

// AtKind is At with an explicit event kind for the meta-observer. The
// kind has no effect on scheduling: it only labels the dispatch counters.
func (e *Engine) AtKind(t units.Time, kind Kind, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, kind: kind, fn: fn})
	if e.mon != nil {
		e.mon.Scheduled(kind, len(e.events))
	}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d units.Time, fn func()) {
	e.AfterKind(d, KindGeneric, fn)
}

// AfterKind is After with an explicit event kind for the meta-observer.
func (e *Engine) AfterKind(d units.Time, kind Kind, fn func()) {
	if d < 0 {
		d = 0
	}
	e.AtKind(e.now+d, kind, fn)
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	ev.fn()
	if e.mon != nil {
		e.mon.Dispatched(ev.kind, len(e.events))
	}
	return true
}

// Run executes events until none remain or Stop is called. Processes that
// are blocked with no pending event to wake them simply remain parked.
func (e *Engine) Run() {
	e.stopped = false
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time ≤ t, then sets the clock to t.
func (e *Engine) RunUntil(t units.Time) {
	e.stopped = false
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped && len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if !e.stopped && t > e.now {
		e.now = t
	}
}

// Stop halts Run/RunUntil after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// LiveProcs returns the number of processes that have been spawned and have
// not yet finished (they may be runnable or parked).
func (e *Engine) LiveProcs() int { return len(e.live) }

// LiveProcNames returns the (sorted) names of live processes. After a
// drained run this is empty; after a wedge it names exactly the parked
// procs, which is usually enough to identify the subsystem that lost a
// wakeup.
func (e *Engine) LiveProcNames() []string {
	var out []string
	for p := range e.live {
		out = append(out, p.name)
	}
	sort.Strings(out)
	return out
}

// KillAll terminates every parked process by unwinding its goroutine. It is
// intended for teardown after a simulation completes; killed processes do
// not run deferred simulation logic beyond their own defers.
func (e *Engine) KillAll() {
	for p := range e.live {
		if p.parkedNow {
			e.deliver(p, procMsg{kill: true})
		}
	}
}
