package sim

import "repro/internal/units"

// Signal is a broadcast/signal condition variable for processes.
// The zero value is not usable; create one with NewSignal.
type Signal struct {
	eng     *Engine
	waiters []*waitToken
}

type waitToken struct {
	p        *Proc
	done     bool
	timedOut bool
}

// NewSignal returns a signal bound to e.
func NewSignal(e *Engine) *Signal { return &Signal{eng: e} }

// Wait blocks p until the signal is signaled or broadcast.
func (s *Signal) Wait(p *Proc) {
	t := &waitToken{p: p}
	s.waiters = append(s.waiters, t)
	p.park()
}

// WaitTimeout blocks p until the signal fires or d elapses. It reports
// whether the signal fired (false means timeout).
func (s *Signal) WaitTimeout(p *Proc, d units.Time) bool {
	t := &waitToken{p: p}
	s.waiters = append(s.waiters, t)
	s.eng.AfterKind(d, KindTimer, func() {
		if t.done {
			return
		}
		t.done = true
		t.timedOut = true
		s.eng.deliver(t.p, procMsg{})
	})
	p.park()
	return !t.timedOut
}

// Signal wakes the longest-waiting process, if any.
func (s *Signal) Signal() {
	for len(s.waiters) > 0 {
		t := s.waiters[0]
		s.waiters = s.waiters[1:]
		if t.done {
			continue
		}
		t.done = true
		t.p.wake()
		return
	}
}

// Broadcast wakes every waiting process.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, t := range ws {
		if t.done {
			continue
		}
		t.done = true
		t.p.wake()
	}
}

// Waiting returns the number of processes currently waiting.
func (s *Signal) Waiting() int {
	n := 0
	for _, t := range s.waiters {
		if !t.done {
			n++
		}
	}
	return n
}
