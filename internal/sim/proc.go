package sim

import (
	"fmt"

	"repro/internal/units"
)

// Proc is a simulation process: a goroutine whose execution is interleaved
// with the event loop. At any instant at most one process (or event) is
// running; a process gives up control by blocking in Sleep, Signal.Wait,
// Resource.Acquire, or Queue.Get.
//
// Proc methods that block must only be called from the process's own
// goroutine. Methods that wake other processes (Signal.Broadcast and
// friends) may be called from any simulation context; they take effect via
// scheduled events.
type Proc struct {
	eng       *Engine
	name      string
	resume    chan procMsg
	parked    chan struct{}
	done      bool
	parkedNow bool
	panicVal  any
}

type procMsg struct {
	kill bool
}

// killSentinel unwinds a killed process goroutine.
type killSentinel struct{}

// Go spawns a new process named name running fn. The process starts at the
// current virtual time (after already-scheduled events at that time).
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan procMsg),
		parked: make(chan struct{}),
	}
	e.live[p] = struct{}{}
	go func() {
		defer func() {
			r := recover()
			if r != nil {
				if _, ok := r.(killSentinel); !ok {
					// Hand the panic to the engine goroutine (the caller
					// of Run), where tests can recover it.
					p.panicVal = r
				}
			}
			p.done = true
			p.parked <- struct{}{}
		}()
		if m := <-p.resume; m.kill {
			panic(killSentinel{})
		}
		fn(p)
	}()
	e.AtKind(e.now, KindProc, func() { e.deliver(p, procMsg{}) })
	return p
}

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() units.Time { return p.eng.now }

// deliver hands control to p and waits for it to park or finish. It must be
// called from event context (never from another process's goroutine).
func (e *Engine) deliver(p *Proc, m procMsg) {
	if p.done {
		return
	}
	p.parkedNow = false
	p.resume <- m
	<-p.parked
	if p.done {
		delete(e.live, p)
		if p.panicVal != nil {
			panic(p.panicVal)
		}
	}
}

// park blocks the calling process goroutine until the engine wakes it.
func (p *Proc) park() {
	p.parkedNow = true
	p.parked <- struct{}{}
	if m := <-p.resume; m.kill {
		panic(killSentinel{})
	}
}

// wake schedules the engine to resume p at the current time.
func (p *Proc) wake() {
	p.eng.AtKind(p.eng.now, KindProc, func() { p.eng.deliver(p, procMsg{}) })
}

// Sleep blocks the process for d of virtual time.
func (p *Proc) Sleep(d units.Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v in %s", d, p.name))
	}
	p.eng.AfterKind(d, KindProc, func() { p.eng.deliver(p, procMsg{}) })
	p.park()
}

// Yield blocks the process and immediately reschedules it, letting other
// work scheduled at the same instant run first.
func (p *Proc) Yield() { p.Sleep(0) }
