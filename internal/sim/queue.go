package sim

// Queue is an unbounded FIFO for passing items to consuming processes.
// Put may be called from any simulation context; Get blocks the calling
// process until an item is available.
type Queue[T any] struct {
	items  []T
	signal *Signal
}

// NewQueue returns an empty queue bound to e.
func NewQueue[T any](e *Engine) *Queue[T] {
	return &Queue[T]{signal: NewSignal(e)}
}

// Put appends an item and wakes one waiting consumer.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	q.signal.Signal()
}

// Get removes and returns the oldest item, blocking p until one exists.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.signal.Wait(p)
	}
	v := q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	return v
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }
