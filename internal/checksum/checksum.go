// Package checksum implements the Internet (RFC 1071) ones-complement
// checksum and the partial-sum algebra the outboard-checksumming protocol
// relies on.
//
// The CAB's checksum engines always compute a plain ones-complement sum
// over a span of a packet. The host supplies a seed — the sum of the
// headers (and pseudo-header) that the hardware skips — and the hardware
// combines seed and body sum to produce the final checksum field
// (Section 4.3 of the paper). This package provides exactly those pieces:
// unfolded partial sums, sum concatenation (with the odd-length byte-swap
// rule), folding, seeding, incremental adjustment, and the TCP/UDP
// pseudo-header.
package checksum

// Sum returns the unfolded 16-bit ones-complement partial sum of b, treating
// b as a sequence of big-endian 16-bit words starting on an even offset. A
// trailing odd byte is padded with a zero low byte, per RFC 1071.
//
// The returned value is already partially reduced (it fits in 32 bits for
// any input); combine partial sums with Add or Combine and reduce with Fold.
func Sum(b []byte) uint32 {
	var s uint64
	i := 0
	for ; i+8 <= len(b); i += 8 {
		s += uint64(b[i])<<8 | uint64(b[i+1])
		s += uint64(b[i+2])<<8 | uint64(b[i+3])
		s += uint64(b[i+4])<<8 | uint64(b[i+5])
		s += uint64(b[i+6])<<8 | uint64(b[i+7])
	}
	for ; i+2 <= len(b); i += 2 {
		s += uint64(b[i])<<8 | uint64(b[i+1])
	}
	if i < len(b) {
		s += uint64(b[i]) << 8
	}
	// Reduce to 32 bits.
	for s > 0xffffffff {
		s = (s & 0xffffffff) + (s >> 32)
	}
	return uint32(s)
}

// Add combines two partial sums that both start on even byte offsets.
func Add(a, b uint32) uint32 {
	s := uint64(a) + uint64(b)
	if s > 0xffffffff {
		s = (s & 0xffffffff) + (s >> 32)
	}
	return uint32(s)
}

// Swap byte-swaps a partial sum; it is the adjustment needed when a
// partial sum was computed over data that actually begins at an odd byte
// offset within the checksummed span.
func Swap(s uint32) uint32 {
	f := Fold(s)
	return uint32(f>>8 | f<<8)
}

// Combine returns the partial sum of the concatenation of two byte ranges
// whose individual sums are a and b, where the first range has length
// aLen. If aLen is odd, b's sum is byte-swapped before adding, per the
// ones-complement concatenation rule.
func Combine(a, b uint32, aLen int) uint32 {
	if aLen%2 != 0 {
		b = Swap(b)
	}
	return Add(a, b)
}

// Fold reduces an unfolded partial sum to 16 bits.
func Fold(s uint32) uint16 {
	for s > 0xffff {
		s = (s & 0xffff) + (s >> 16)
	}
	return uint16(s)
}

// Finish folds and complements a partial sum, yielding the value stored in
// a checksum header field.
func Finish(s uint32) uint16 { return ^Fold(s) }

// Checksum returns the Internet checksum of b (folded and complemented).
func Checksum(b []byte) uint16 { return Finish(Sum(b)) }

// Verify reports whether data whose checksum field is included in b sums
// to the all-ones pattern, i.e. the checksum is valid.
func Verify(b []byte) bool { return Fold(Sum(b)) == 0xffff }

// VerifySum reports whether an unfolded partial sum over data that
// included its checksum field is valid.
func VerifySum(s uint32) bool { return Fold(s) == 0xffff }

// Adjust incrementally updates partial sum s when a 16-bit word of the
// summed data changes from old to new (RFC 1624 style, on the unfolded
// sum: subtract old, add new in ones-complement arithmetic).
func Adjust(s uint32, old, new uint16) uint32 {
	// Ones-complement subtraction of old is addition of ^old.
	s = Add(s, uint32(^old))
	s = Add(s, uint32(new))
	return s
}

// PseudoHeaderSum returns the partial sum of the TCP/UDP pseudo-header for
// 32-bit source and destination addresses, protocol number proto, and
// transport segment length (header + data) length.
func PseudoHeaderSum(src, dst uint32, proto uint8, length uint32) uint32 {
	s := uint32(src>>16) + uint32(src&0xffff)
	s += uint32(dst>>16) + uint32(dst&0xffff)
	s += uint32(proto)
	s += length >> 16
	s += length & 0xffff
	return Add(s, 0)
}

// UDPWire maps a computed UDP checksum to its wire representation: a
// computed value of 0 is transmitted as 0xffff because 0 means "no
// checksum". Section 4.3 notes this cannot occur in practice for the CAB's
// ones-complement add (a sum of 0 requires all-zero terms, impossible with
// non-zero address fields), but the stack still implements the rule.
func UDPWire(c uint16) uint16 {
	if c == 0 {
		return 0xffff
	}
	return c
}
