package checksum

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refSum is a deliberately naive reference: build the padded word sequence
// and add with explicit end-around carry.
func refSum(b []byte) uint32 {
	var s uint32
	add16 := func(w uint16) {
		s += uint32(w)
		for s > 0xffff {
			s = (s & 0xffff) + (s >> 16)
		}
	}
	for i := 0; i+1 < len(b); i += 2 {
		add16(uint16(b[i])<<8 | uint16(b[i+1]))
	}
	if len(b)%2 == 1 {
		add16(uint16(b[len(b)-1]) << 8)
	}
	return s
}

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestSumMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		b := randBytes(r, r.Intn(300))
		if Fold(Sum(b)) != Fold(refSum(b)) {
			t.Fatalf("Sum mismatch on %d-byte input", len(b))
		}
	}
}

func TestSumKnownVectors(t *testing.T) {
	// RFC 1071 worked example: 0001 f203 f4f5 f6f7 sums to ddf2 → csum 220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Fold(Sum(b)); got != 0xddf2 {
		t.Fatalf("folded sum = %#x, want 0xddf2", got)
	}
	if got := Checksum(b); got != 0x220d {
		t.Fatalf("checksum = %#x, want 0x220d", got)
	}
	if Checksum(nil) != 0xffff {
		t.Fatalf("checksum of empty = %#x, want 0xffff", Checksum(nil))
	}
}

func TestVerifyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		// Build a "packet" with a checksum field at bytes 2..3.
		b := randBytes(r, 4+r.Intn(200))
		b[2], b[3] = 0, 0
		c := Checksum(b)
		b[2], b[3] = byte(c>>8), byte(c)
		if !Verify(b) {
			t.Fatalf("Verify failed on valid packet (len %d)", len(b))
		}
		// Flip a bit; verification must fail (ones-complement detects all
		// single-bit errors).
		b[len(b)-1] ^= 0x10
		if Verify(b) {
			t.Fatalf("Verify passed on corrupted packet (len %d)", len(b))
		}
	}
}

func TestCombineConcatenation(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		a := randBytes(r, r.Intn(100))
		b := randBytes(r, r.Intn(100))
		whole := append(append([]byte{}, a...), b...)
		got := Fold(Combine(Sum(a), Sum(b), len(a)))
		want := Fold(Sum(whole))
		if got != want {
			t.Fatalf("Combine mismatch: lenA=%d lenB=%d got %#x want %#x",
				len(a), len(b), got, want)
		}
	}
}

func TestCombineProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		whole := append(append([]byte{}, a...), b...)
		return Fold(Combine(Sum(a), Sum(b), len(a))) == Fold(Sum(whole))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeedProtocol(t *testing.T) {
	// The CAB transmit protocol: host computes a seed over the first S
	// bytes (headers), hardware sums the body and combines. The result
	// must equal a full software checksum.
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 200; i++ {
		hdrLen := 2 * (1 + r.Intn(40)) // headers are whole 16-bit words
		pkt := randBytes(r, hdrLen+r.Intn(4000))
		seed := Sum(pkt[:hdrLen])
		body := Sum(pkt[hdrLen:])
		got := Finish(Combine(seed, body, hdrLen))
		want := Checksum(pkt)
		if got != want {
			t.Fatalf("seed protocol mismatch: hdr=%d len=%d", hdrLen, len(pkt))
		}
	}
}

func TestAdjustIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		b := randBytes(r, 2*(2+r.Intn(50)))
		s := Sum(b)
		// Change word at a random even offset.
		off := 2 * r.Intn(len(b)/2)
		old := uint16(b[off])<<8 | uint16(b[off+1])
		nw := uint16(r.Uint32())
		b[off], b[off+1] = byte(nw>>8), byte(nw)
		if Fold(Adjust(s, old, nw)) != Fold(Sum(b)) {
			t.Fatalf("Adjust mismatch at offset %d", off)
		}
	}
}

func TestPseudoHeaderSum(t *testing.T) {
	// Compare against an explicitly serialized pseudo-header.
	src, dst := uint32(0x0a000001), uint32(0x0a000002)
	proto, length := uint8(6), uint32(1500)
	b := []byte{
		byte(src >> 24), byte(src >> 16), byte(src >> 8), byte(src),
		byte(dst >> 24), byte(dst >> 16), byte(dst >> 8), byte(dst),
		0, proto,
		byte(length >> 24), byte(length >> 16), byte(length >> 8), byte(length),
	}
	if Fold(PseudoHeaderSum(src, dst, proto, length)) != Fold(Sum(b)) {
		t.Fatal("pseudo-header sum does not match serialized form")
	}
}

func TestUDPWire(t *testing.T) {
	if UDPWire(0) != 0xffff {
		t.Fatal("computed 0 must be sent as 0xffff")
	}
	if UDPWire(0x1234) != 0x1234 {
		t.Fatal("non-zero checksums pass through")
	}
}

func TestSwapInvolution(t *testing.T) {
	f := func(s uint32) bool {
		return Fold(Swap(Swap(s))) == Fold(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddCommutativeAssociative(t *testing.T) {
	f := func(a, b, c uint32) bool {
		if Fold(Add(a, b)) != Fold(Add(b, a)) {
			return false
		}
		return Fold(Add(Add(a, b), c)) == Fold(Add(a, Add(b, c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
