package exp

import (
	"bytes"
	"testing"
)

// TestCritBenchDeterminism runs the critical-path workload matrix twice and
// requires the deterministic fields (transfers, graph sizes, per-cause
// nanoseconds) to be byte-identical — the property benchdiff's exact diff
// of BENCH_critpath.json rests on. The quick matrix (three sizes plus the
// incast) is always enough to pin determinism; the committed baseline uses
// the full grid.
func TestCritBenchDeterminism(t *testing.T) {
	a, err := RunCritPath(true)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := RunCritPath(true)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	ja, jb := a.DeterministicJSON(), b.DeterministicJSON()
	if !bytes.Equal(ja, jb) {
		t.Fatalf("deterministic fields differ between same-seed runs:\n--- first\n%s\n--- second\n%s", ja, jb)
	}
	for _, c := range a.Cells {
		if c.Transfers == 0 || c.Events == 0 {
			t.Fatalf("cell %s recorded no transfers/events", c.Name)
		}
		if c.TotalNs <= 0 {
			t.Fatalf("cell %s attributed no latency", c.Name)
		}
		if c.Mode == "single_copy" && (c.SenderCopyNs != 0 || c.SenderCsumNs != 0) {
			t.Fatalf("cell %s: single-copy sender shows copy=%dns csum=%dns on the critical path",
				c.Name, c.SenderCopyNs, c.SenderCsumNs)
		}
	}
}
