package exp

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/units"
)

// Table 2 reproduction: measure the cost of the VM operations on the
// simulated host — with a "microsecond timer", as the paper did with the
// CAB's — across page counts, and fit base + per-page costs.

// VMCostRow is one measured operation.
type VMCostRow struct {
	Operation string
	Base      float64 // µs
	PerPage   float64 // µs per page
	// PaperBase and PaperPerPage are the published Table 2 values.
	PaperBase, PaperPerPage float64
}

// MeasureTable2 measures pin/unpin/map costs for 1..64 pages on a
// simulated Alpha 3000/400 and least-squares fits base + slope.
func MeasureTable2() []VMCostRow {
	eng := sim.NewEngine(99)
	k := kern.New("probe", eng, cost.Alpha400())
	vm := kern.NewVM(k)
	task := k.NewTask("probe", kern.PrioUser, nil)
	space := mem.NewAddrSpace("probe", 8*units.MB, k.Mach.PageSize)

	pageCounts := []int{1, 2, 4, 8, 16, 32, 64}
	var pinT, unpinT, mapT []float64

	eng.Go("probe", func(p *sim.Proc) {
		for _, n := range pageCounts {
			buf := space.Alloc(units.Size(n)*k.Mach.PageSize, 0)

			before := k.CategoryTime(kern.CatVM)
			vm.PinBuf(p, task, space, buf.Addr, buf.Len)
			pinT = append(pinT, (k.CategoryTime(kern.CatVM) - before).Micros())

			before = k.CategoryTime(kern.CatVM)
			vm.UnpinBuf(p, task, space, buf.Addr, buf.Len)
			unpinT = append(unpinT, (k.CategoryTime(kern.CatVM) - before).Micros())

			before = k.CategoryTime(kern.CatVM)
			vm.MapBuf(p, task, space, buf.Addr, buf.Len)
			mapT = append(mapT, (k.CategoryTime(kern.CatVM) - before).Micros())
		}
	})
	eng.Run()
	eng.KillAll()

	xs := make([]float64, len(pageCounts))
	for i, n := range pageCounts {
		xs[i] = float64(n)
	}
	pb, pm := fitLine(xs, pinT)
	ub, um := fitLine(xs, unpinT)
	mb, mm := fitLine(xs, mapT)
	return []VMCostRow{
		{"Pin", pb, pm, 35, 29},
		{"Unpin", ub, um, 48, 3.9},
		{"Map", mb, mm, 6, 4.5},
	}
}

// fitLine is an ordinary least-squares fit y = base + slope·x.
func fitLine(xs, ys []float64) (base, slope float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	slope = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	base = (sy - slope*sx) / n
	return base, slope
}

// FormatTable2 renders the measured-vs-paper comparison.
func FormatTable2(rows []VMCostRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: cost in microseconds of VM operations (n pages)\n")
	fmt.Fprintf(&b, "%-10s %22s %22s\n", "Operation", "measured", "paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12.1f + %4.1f·n  %12.1f + %4.1f·n\n",
			r.Operation, r.Base, r.PerPage, r.PaperBase, r.PaperPerPage)
	}
	return b.String()
}
