// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation from the simulator and formats them as
// the paper reports them (throughput, utilization, and efficiency as a
// function of read/write size; the VM cost table; the Section 7.3
// analysis; the taxonomy; and the head-of-line-blocking study).
package exp

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/hippi"
	"repro/internal/obs"
	"repro/internal/socket"
	"repro/internal/ttcp"
	"repro/internal/units"
	"repro/internal/wire"
)

// Point is one measurement at one read/write size.
type Point struct {
	RWSize      units.Size
	Throughput  units.Rate
	Utilization float64 // sender, util methodology
	Efficiency  units.Rate
}

// Figure is one family of curves (Figure 5 or 6).
type Figure struct {
	Name    string
	Machine string
	Sizes   []units.Size
	// Series maps curve name → points (Unmodified, Modified, RawHIPPI).
	Series map[string][]Point
	Order  []string
}

// DefaultSizes is the x axis of Figures 5 and 6: 1 KB to 512 KB.
func DefaultSizes() []units.Size {
	var sizes []units.Size
	for s := 1 * units.KB; s <= 512*units.KB; s *= 2 {
		sizes = append(sizes, s)
	}
	return sizes
}

// totalFor picks a transfer size that gives steady-state measurements
// without excessive simulation time.
func totalFor(rw units.Size) units.Size {
	t := 256 * rw
	if t < 2*units.MB {
		t = 2 * units.MB
	}
	if t > 16*units.MB {
		t = 16 * units.MB
	}
	// Whole multiple of the write size.
	return (t + rw - 1) / rw * rw
}

const (
	addrA = wire.Addr(0x0a000001)
	addrB = wire.Addr(0x0a000002)
)

// stackPoint measures one (machine, mode, size) cell with a fresh testbed.
func stackPoint(mach func() *cost.Machine, mode socket.Mode, rw units.Size, seed int64) Point {
	tb := core.NewTestbed(seed)
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mach: mach(), Mode: mode, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mach: mach(), Mode: mode, CABNode: 2})
	tb.RouteCAB(a, b)
	res := ttcp.Run(tb, a, b, ttcp.Params{
		Total: totalFor(rw), RWSize: rw,
		WithUtil: true, WithBackground: true,
	})
	return Point{
		RWSize:      rw,
		Throughput:  res.Throughput,
		Utilization: res.Snd.Utilization,
		Efficiency:  res.Snd.Efficiency,
	}
}

// rawPoint measures the raw-HIPPI baseline at one size.
func rawPoint(mach func() *cost.Machine, rw units.Size, seed int64) Point {
	tb := core.NewTestbed(seed)
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mach: mach(), CABNode: 1, NoDriver: true})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mach: mach(), CABNode: 2, NoDriver: true})
	res := ttcp.RunRaw(tb, a, b, ttcp.Params{
		Total: totalFor(rw), RWSize: rw, WithUtil: true,
	})
	return Point{
		RWSize:      rw,
		Throughput:  res.Throughput,
		Utilization: res.Snd.Utilization,
		Efficiency:  res.Snd.Efficiency,
	}
}

// RunFigure produces the three curves of Figure 5/6 for one machine.
func RunFigure(name string, mach func() *cost.Machine, sizes []units.Size) Figure {
	if sizes == nil {
		sizes = DefaultSizes()
	}
	fig := Figure{
		Name:    name,
		Machine: mach().Name,
		Sizes:   sizes,
		Series:  make(map[string][]Point),
		Order:   []string{"Unmodified", "Modified", "RawHIPPI"},
	}
	for i, rw := range sizes {
		seed := int64(1000 + i)
		fig.Series["Unmodified"] = append(fig.Series["Unmodified"],
			stackPoint(mach, socket.ModeUnmodified, rw, seed))
		fig.Series["Modified"] = append(fig.Series["Modified"],
			stackPoint(mach, socket.ModeSingleCopy, rw, seed))
		fig.Series["RawHIPPI"] = append(fig.Series["RawHIPPI"],
			rawPoint(mach, rw, seed))
	}
	return fig
}

// MetricsRun runs one instrumented Figure-5-style cell (single-copy stack,
// Alpha 3000/400) and returns the full telemetry snapshot. Deterministic:
// the same (rw, seed) always yields byte-identical Snapshot.JSON().
func MetricsRun(rw units.Size, seed int64) obs.Snapshot {
	tb := core.NewTestbed(seed)
	tb.EnableTelemetry()
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mach: cost.Alpha400(),
		Mode: socket.ModeSingleCopy, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mach: cost.Alpha400(),
		Mode: socket.ModeSingleCopy, CABNode: 2})
	tb.RouteCAB(a, b)
	ttcp.Run(tb, a, b, ttcp.Params{
		Total: totalFor(rw), RWSize: rw,
		WithUtil: true, WithBackground: true,
	})
	return tb.Tel.Snapshot()
}

// ProfileRun runs one instrumented Figure-5-style cell with the
// virtual-time profiler enabled (mode selects the stack) and returns the
// testbed, whose Prof holds the exact per-stack CPU attribution.
// Deterministic: the same (mode, rw, seed) always yields byte-identical
// Prof.Folded().
func ProfileRun(mode socket.Mode, rw units.Size, seed int64) *core.Testbed {
	tb := core.NewTestbed(seed)
	tb.EnableProfiling()
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mach: cost.Alpha400(),
		Mode: mode, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mach: cost.Alpha400(),
		Mode: mode, CABNode: 2})
	tb.RouteCAB(a, b)
	ttcp.Run(tb, a, b, ttcp.Params{
		Total: totalFor(rw), RWSize: rw,
		WithUtil: true, WithBackground: true,
	})
	return tb
}

// SeriesRun runs one instrumented cell with the utilization time-series
// sampler ticking every interval of virtual time, and returns the testbed
// whose Series holds the recorded rows.
func SeriesRun(rw units.Size, interval units.Time, seed int64) *core.Testbed {
	tb := core.NewTestbed(seed)
	tb.EnableSeries(interval)
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mach: cost.Alpha400(),
		Mode: socket.ModeSingleCopy, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mach: cost.Alpha400(),
		Mode: socket.ModeSingleCopy, CABNode: 2})
	tb.RouteCAB(a, b)
	ttcp.Run(tb, a, b, ttcp.Params{
		Total: totalFor(rw), RWSize: rw,
		WithUtil: true, WithBackground: true,
	})
	return tb
}

// Figure5 regenerates Figure 5 (Alpha 3000/400).
func Figure5(sizes []units.Size) Figure {
	return RunFigure("Figure 5", cost.Alpha400, sizes)
}

// Figure6 regenerates Figure 6 (Alpha 3000/300LX).
func Figure6(sizes []units.Size) Figure {
	return RunFigure("Figure 6", cost.Alpha300, sizes)
}

// Crossover returns the read/write size at which the modified stack's
// efficiency overtakes the unmodified stack's (the paper: between 8 and
// 16 KByte).
func (f Figure) Crossover() (units.Size, bool) {
	un, mod := f.Series["Unmodified"], f.Series["Modified"]
	for i := range un {
		if mod[i].Efficiency > un[i].Efficiency {
			return un[i].RWSize, true
		}
	}
	return 0, false
}

// Format renders the figure as three paper-style tables.
func (f Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (TCP window 512KB, MTU 32KB)\n", f.Name, f.Machine)
	metric := []struct {
		title string
		get   func(Point) string
	}{
		{"(a) Throughput (Mb/s)", func(p Point) string { return fmt.Sprintf("%8.1f", p.Throughput.Mbit()) }},
		{"(b) Utilization (sender)", func(p Point) string { return fmt.Sprintf("%8.2f", p.Utilization) }},
		{"(c) Efficiency (Mb/s)", func(p Point) string { return fmt.Sprintf("%8.1f", p.Efficiency.Mbit()) }},
	}
	for _, m := range metric {
		fmt.Fprintf(&b, "\n%s\n", m.title)
		fmt.Fprintf(&b, "%-12s", "r/w size")
		for _, s := range f.Order {
			if _, ok := f.Series[s]; ok {
				fmt.Fprintf(&b, "%12s", s)
			}
		}
		fmt.Fprintln(&b)
		for i, sz := range f.Sizes {
			fmt.Fprintf(&b, "%-12v", sz)
			for _, s := range f.Order {
				pts, ok := f.Series[s]
				if !ok {
					continue
				}
				fmt.Fprintf(&b, "%12s", m.get(pts[i]))
			}
			fmt.Fprintln(&b)
		}
	}
	if x, ok := f.Crossover(); ok {
		fmt.Fprintf(&b, "\nEfficiency crossover at %v (paper: between 8KB and 16KB)\n", x)
	}
	return b.String()
}

// HOLResult pairs the two queuing disciplines of the Section 2.1 study.
type HOLResult struct {
	Ports               int
	FIFOUtilization     float64
	ChannelsUtilization float64
}

// RunHOL reproduces the head-of-line-blocking comparison.
func RunHOL(ports, slots int, seed int64) HOLResult {
	return HOLResult{
		Ports:               ports,
		FIFOUtilization:     hippi.RunFIFO(ports, slots, seed).Utilization,
		ChannelsUtilization: hippi.RunLogicalChannels(ports, slots, seed).Utilization,
	}
}

// FormatHOL renders the HOL study.
func FormatHOL(rs []HOLResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Head-of-line blocking (Section 2.1; paper cites ≤58%% for FIFO)\n")
	fmt.Fprintf(&b, "%-8s %14s %20s\n", "ports", "FIFO util", "logical channels")
	sort.Slice(rs, func(i, j int) bool { return rs[i].Ports < rs[j].Ports })
	for _, r := range rs {
		fmt.Fprintf(&b, "%-8d %14.3f %20.3f\n", r.Ports, r.FIFOUtilization, r.ChannelsUtilization)
	}
	return b.String()
}

// jsonPoint is one measurement in the machine-readable figure export.
type jsonPoint struct {
	RWSizeBytes    int64   `json:"rwsize_bytes"`
	ThroughputMbps float64 `json:"throughput_mbps"`
	Utilization    float64 `json:"utilization"`
	EfficiencyMbps float64 `json:"efficiency_mbps"`
}

// jsonSeries is one curve.
type jsonSeries struct {
	Name   string      `json:"name"`
	Points []jsonPoint `json:"points"`
}

// jsonFigure is the machine-readable figure envelope.
type jsonFigure struct {
	Name    string       `json:"name"`
	Machine string       `json:"machine"`
	Series  []jsonSeries `json:"series"`
}

// JSON renders the figure as deterministic JSON: series in Order (slices,
// not the Series map), so identical runs produce identical bytes.
func (f Figure) JSON() []byte {
	jf := jsonFigure{Name: f.Name, Machine: f.Machine}
	for _, s := range f.Order {
		pts, ok := f.Series[s]
		if !ok {
			continue
		}
		js := jsonSeries{Name: s, Points: []jsonPoint{}}
		for _, p := range pts {
			js.Points = append(js.Points, jsonPoint{
				RWSizeBytes:    int64(p.RWSize),
				ThroughputMbps: p.Throughput.Mbit(),
				Utilization:    p.Utilization,
				EfficiencyMbps: p.Efficiency.Mbit(),
			})
		}
		jf.Series = append(jf.Series, js)
	}
	b, err := json.MarshalIndent(jf, "", "  ")
	if err != nil {
		panic("exp: figure marshal: " + err.Error())
	}
	return append(b, '\n')
}

// CSV renders the figure as plot-ready rows:
// series,rwsize_bytes,throughput_mbps,utilization,efficiency_mbps.
func (f Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintln(&b, "series,rwsize_bytes,throughput_mbps,utilization,efficiency_mbps")
	for _, s := range f.Order {
		pts, ok := f.Series[s]
		if !ok {
			continue
		}
		for _, p := range pts {
			fmt.Fprintf(&b, "%s,%d,%.2f,%.4f,%.2f\n",
				s, int64(p.RWSize), p.Throughput.Mbit(), p.Utilization, p.Efficiency.Mbit())
		}
	}
	return b.String()
}
