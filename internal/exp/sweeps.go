package exp

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/kern"
	"repro/internal/socket"
	"repro/internal/ttcp"
	"repro/internal/units"
)

// Additional sweeps and ablations beyond the paper's main figures.

// WindowPoint is one TCP-window measurement.
type WindowPoint struct {
	Window      units.Size
	Throughput  units.Rate
	Efficiency  units.Rate
	Utilization float64
}

// RunWindowSweep reproduces the Section 7.2 observation that reducing the
// TCP window trades throughput for efficiency on the unmodified stack.
func RunWindowSweep(windows []units.Size) []WindowPoint {
	if windows == nil {
		windows = []units.Size{64 * units.KB, 128 * units.KB, 256 * units.KB, 512 * units.KB}
	}
	var out []WindowPoint
	for i, w := range windows {
		tb := core.NewTestbed(int64(2000 + i))
		a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mode: socket.ModeUnmodified, CABNode: 1})
		b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mode: socket.ModeUnmodified, CABNode: 2})
		tb.RouteCAB(a, b)
		res := ttcp.Run(tb, a, b, ttcp.Params{
			Total: 8 * units.MB, RWSize: 128 * units.KB, Window: w,
			WithUtil: true, WithBackground: true,
		})
		out = append(out, WindowPoint{
			Window:      w,
			Throughput:  res.Throughput,
			Efficiency:  res.Snd.Efficiency,
			Utilization: res.Snd.Utilization,
		})
	}
	return out
}

// FormatWindowSweep renders the window sweep.
func FormatWindowSweep(pts []WindowPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TCP window sweep, unmodified stack, 128KB writes (Section 7.2)\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %12s\n", "window", "throughput", "efficiency", "utilization")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-10v %12.1fMb %12.1fMb %12.2f\n",
			p.Window, p.Throughput.Mbit(), p.Efficiency.Mbit(), p.Utilization)
	}
	return b.String()
}

// LazyPinPoint compares eager vs lazy pinning (the Section 4.4.1
// buffer-reuse extension the paper describes but did not measure).
type LazyPinPoint struct {
	Lazy       bool
	Throughput units.Rate
	Efficiency units.Rate
	VMTime     units.Time
	PinHits    int
}

// RunLazyPinAblation measures the single-copy stack with and without the
// pinned-buffer reuse cache. ttcp reuses one buffer, the best case the
// paper describes: "this overhead can be avoided by keeping the buffers
// pinned and mapped".
func RunLazyPinAblation() []LazyPinPoint {
	var out []LazyPinPoint
	for i, lazy := range []bool{false, true} {
		tb := core.NewTestbed(int64(3000 + i))
		a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA,
			Mode: socket.ModeSingleCopy, CABNode: 1, LazyUnpin: lazy})
		b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB,
			Mode: socket.ModeSingleCopy, CABNode: 2, LazyUnpin: lazy})
		tb.RouteCAB(a, b)
		res := ttcp.Run(tb, a, b, ttcp.Params{
			Total: 8 * units.MB, RWSize: 128 * units.KB,
			WithUtil: true, WithBackground: true,
		})
		out = append(out, LazyPinPoint{
			Lazy:       lazy,
			Throughput: res.Throughput,
			Efficiency: res.Snd.Efficiency,
			VMTime:     a.K.CategoryTime(kern.CatVM),
			PinHits:    a.VM.PinHits,
		})
	}
	return out
}

// FormatLazyPin renders the ablation.
func FormatLazyPin(pts []LazyPinPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Lazy-unpin ablation, single-copy stack, 128KB writes (Section 4.4.1)\n")
	fmt.Fprintf(&b, "%-8s %14s %14s %10s\n", "lazy", "throughput", "efficiency", "pin hits")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-8v %12.1fMb %12.1fMb %10d\n",
			p.Lazy, p.Throughput.Mbit(), p.Efficiency.Mbit(), p.PinHits)
	}
	return b.String()
}

// ThresholdPoint is one UIO-threshold measurement (Section 4.4.3).
type ThresholdPoint struct {
	RWSize        units.Size
	ForcedUIO     units.Rate // efficiency with threshold 0 (always UIO)
	WithThreshold units.Rate // efficiency with a 16KB threshold
}

// RunThresholdAblation measures the write-size threshold optimization:
// below it, the copy path beats the descriptor path.
func RunThresholdAblation(sizes []units.Size) []ThresholdPoint {
	if sizes == nil {
		sizes = []units.Size{2 * units.KB, 4 * units.KB, 8 * units.KB, 16 * units.KB, 64 * units.KB}
	}
	run := func(rw, thresh units.Size, seed int64) units.Rate {
		tb := core.NewTestbed(seed)
		a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mode: socket.ModeSingleCopy, CABNode: 1})
		b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mode: socket.ModeSingleCopy, CABNode: 2})
		tb.RouteCAB(a, b)
		res := ttcp.Run(tb, a, b, ttcp.Params{
			Total: totalFor(rw) / 2, RWSize: rw, UIOThreshold: thresh,
			WithUtil: true, WithBackground: true,
		})
		return res.Snd.Efficiency
	}
	var out []ThresholdPoint
	for i, rw := range sizes {
		out = append(out, ThresholdPoint{
			RWSize:        rw,
			ForcedUIO:     run(rw, 0, int64(4000+i)),
			WithThreshold: run(rw, 16*units.KB, int64(4100+i)),
		})
	}
	return out
}

// FormatThreshold renders the threshold ablation.
func FormatThreshold(pts []ThresholdPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "UIO threshold ablation (Section 4.4.3): sender efficiency (Mb/s)\n")
	fmt.Fprintf(&b, "%-10s %16s %18s\n", "r/w size", "always UIO", "16KB threshold")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-10v %16.1f %18.1f\n",
			p.RWSize, p.ForcedUIO.Mbit(), p.WithThreshold.Mbit())
	}
	return b.String()
}
