// The Figure 7–9 family: where the CPU time goes. Figures 7 and 8 break
// the sender's and receiver's CPU utilization down by accounting category
// as a function of read/write size, for the unmodified and single-copy
// stacks; Figure 9 regroups the sender's time into the Section 7.3 cost
// classes (per-byte data touching, per-packet protocol/driver/interrupt,
// per-call syscall/VM) as nanoseconds per transferred kilobyte. These runs
// measure the kernel's exact virtual-time accounting directly — no util
// soaker — so each category's share is ground truth, not an estimate.
package exp

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/kern"
	"repro/internal/socket"
	"repro/internal/ttcp"
	"repro/internal/units"
)

// CatShare is one category's slice of a host's CPU time.
type CatShare struct {
	Category string
	Ns       int64
	Share    float64 // of the host's busy time
}

// BreakdownPoint is one (mode, size) cell of Figure 7 or 8: a host's CPU
// time by category, plus the transfer's headline numbers.
type BreakdownPoint struct {
	RWSize      units.Size
	Throughput  units.Rate
	Utilization float64 // busy / elapsed, ground truth
	Efficiency  units.Rate
	BusyNs      int64
	Shares      []CatShare // kernel category order
}

// Share returns the named category's share (0 if absent).
func (p BreakdownPoint) Share(cat string) float64 {
	for _, s := range p.Shares {
		if s.Category == cat {
			return s.Share
		}
	}
	return 0
}

// BreakdownFigure is one side's curves (Figure 7: sender, 8: receiver).
type BreakdownFigure struct {
	Name    string
	Side    string
	Machine string
	Sizes   []units.Size
	Order   []string
	Series  map[string][]BreakdownPoint
}

// DecompPoint is one Figure 9 cell: the sender's CPU cost per transferred
// kilobyte, split into the Section 7.3 classes.
type DecompPoint struct {
	RWSize      units.Size
	PerByteNs   int64 // copy + csum
	PerPacketNs int64 // proto + driver + intr
	PerCallNs   int64 // syscall + vm
	OtherNs     int64 // app
	TotalBytes  units.Size
	Utilization float64
	Efficiency  units.Rate
}

// NsPerKB returns (perByte, perPacket, perCall) normalized to the bytes
// moved, the paper's cost-per-unit-of-work view.
func (p DecompPoint) NsPerKB() (perByte, perPacket, perCall float64) {
	kb := float64(p.TotalBytes) / float64(units.KB)
	if kb == 0 {
		return
	}
	return float64(p.PerByteNs) / kb, float64(p.PerPacketNs) / kb, float64(p.PerCallNs) / kb
}

// DecompFigure is the Figure 9 envelope.
type DecompFigure struct {
	Name    string
	Machine string
	Sizes   []units.Size
	Order   []string
	Series  map[string][]DecompPoint
}

// breakdownModes are the two stacks the figures compare.
var breakdownModes = []struct {
	Name string
	Mode socket.Mode
}{
	{"Unmodified", socket.ModeUnmodified},
	{"Modified", socket.ModeSingleCopy},
}

// breakdownCell runs one (mode, size) transfer and returns both sides'
// category breakdowns from the same run.
func breakdownCell(mode socket.Mode, rw units.Size, seed int64) (snd, rcv BreakdownPoint) {
	tb := core.NewTestbed(seed)
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mach: cost.Alpha400(), Mode: mode, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mach: cost.Alpha400(), Mode: mode, CABNode: 2})
	tb.RouteCAB(a, b)
	res := ttcp.Run(tb, a, b, ttcp.Params{Total: totalFor(rw), RWSize: rw})
	return breakdownPoint(rw, res, a), breakdownPoint(rw, res, b)
}

func breakdownPoint(rw units.Size, res ttcp.Result, h *core.Host) BreakdownPoint {
	k := h.K
	p := BreakdownPoint{
		RWSize:     rw,
		Throughput: res.Throughput,
		BusyNs:     int64(k.BusyTime()),
	}
	if res.Elapsed > 0 {
		p.Utilization = float64(k.BusyTime()) / float64(res.Elapsed)
	}
	if p.Utilization > 0 {
		p.Efficiency = units.Rate(float64(res.Throughput) / p.Utilization)
	}
	for i, name := range kern.CategoryNames() {
		ns := int64(k.CategoryTime(kern.Category(i)))
		sh := 0.0
		if p.BusyNs > 0 {
			sh = float64(ns) / float64(p.BusyNs)
		}
		p.Shares = append(p.Shares, CatShare{Category: name, Ns: ns, Share: sh})
	}
	return p
}

// decompose regroups a sender breakdown into the Figure 9 cost classes.
func decompose(p BreakdownPoint) DecompPoint {
	d := DecompPoint{
		RWSize:      p.RWSize,
		TotalBytes:  totalFor(p.RWSize),
		Utilization: p.Utilization,
		Efficiency:  p.Efficiency,
	}
	for _, s := range p.Shares {
		switch s.Category {
		case "copy", "csum":
			d.PerByteNs += s.Ns
		case "proto", "driver", "intr":
			d.PerPacketNs += s.Ns
		case "syscall", "vm":
			d.PerCallNs += s.Ns
		default:
			d.OtherNs += s.Ns
		}
	}
	return d
}

// RunBreakdowns measures the whole Figure 7–9 family in one sweep: each
// (mode, size) transfer feeds the sender point of Figure 7, the receiver
// point of Figure 8, and the decomposition point of Figure 9.
func RunBreakdowns(sizes []units.Size) (fig7, fig8 BreakdownFigure, fig9 DecompFigure) {
	if sizes == nil {
		sizes = DefaultSizes()
	}
	mach := cost.Alpha400().Name
	mk := func(name, side string) BreakdownFigure {
		return BreakdownFigure{Name: name, Side: side, Machine: mach, Sizes: sizes,
			Order:  []string{"Unmodified", "Modified"},
			Series: make(map[string][]BreakdownPoint)}
	}
	fig7 = mk("Figure 7", "sender")
	fig8 = mk("Figure 8", "receiver")
	fig9 = DecompFigure{Name: "Figure 9", Machine: mach, Sizes: sizes,
		Order:  []string{"Unmodified", "Modified"},
		Series: make(map[string][]DecompPoint)}
	for i, rw := range sizes {
		seed := int64(3000 + i)
		for _, m := range breakdownModes {
			snd, rcv := breakdownCell(m.Mode, rw, seed)
			fig7.Series[m.Name] = append(fig7.Series[m.Name], snd)
			fig8.Series[m.Name] = append(fig8.Series[m.Name], rcv)
			fig9.Series[m.Name] = append(fig9.Series[m.Name], decompose(snd))
		}
	}
	return fig7, fig8, fig9
}

// Format renders the breakdown as one paper-style table per stack: rows
// are read/write sizes, columns the categories' share of CPU busy time.
func (f BreakdownFigure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s CPU breakdown, %s (%% of busy time)\n", f.Name, f.Side, f.Machine)
	cats := kern.CategoryNames()
	for _, mode := range f.Order {
		pts, ok := f.Series[mode]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "\n%s\n%-12s", mode, "r/w size")
		for _, c := range cats {
			fmt.Fprintf(&b, "%9s", c)
		}
		fmt.Fprintf(&b, "%9s%10s\n", "util", "eff Mb/s")
		for _, p := range pts {
			fmt.Fprintf(&b, "%-12v", p.RWSize)
			for _, c := range cats {
				fmt.Fprintf(&b, "%8.1f%%", 100*p.Share(c))
			}
			fmt.Fprintf(&b, "%9.2f%10.1f\n", p.Utilization, p.Efficiency.Mbit())
		}
	}
	return b.String()
}

// Format renders Figure 9's per-kilobyte cost decomposition.
func (f DecompFigure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — sender cost per transferred KB, %s (ns/KB)\n", f.Name, f.Machine)
	for _, mode := range f.Order {
		pts, ok := f.Series[mode]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "\n%s\n%-12s%12s%12s%12s%9s%10s\n", mode,
			"r/w size", "per-byte", "per-pkt", "per-call", "util", "eff Mb/s")
		for _, p := range pts {
			pb, pp, pc := p.NsPerKB()
			fmt.Fprintf(&b, "%-12v%12.1f%12.1f%12.1f%9.2f%10.1f\n",
				p.RWSize, pb, pp, pc, p.Utilization, p.Efficiency.Mbit())
		}
	}
	return b.String()
}

// Machine-readable exports: series in Order (slices, never maps), so
// identical runs marshal to identical bytes.

type jsonCatShare struct {
	Category string  `json:"category"`
	Ns       int64   `json:"ns"`
	Share    float64 `json:"share"`
}

type jsonBreakdownPoint struct {
	RWSizeBytes    int64          `json:"rwsize_bytes"`
	ThroughputMbps float64        `json:"throughput_mbps"`
	Utilization    float64        `json:"utilization"`
	EfficiencyMbps float64        `json:"efficiency_mbps"`
	BusyNs         int64          `json:"busy_ns"`
	Shares         []jsonCatShare `json:"shares"`
}

type jsonBreakdownSeries struct {
	Name   string               `json:"name"`
	Points []jsonBreakdownPoint `json:"points"`
}

type jsonBreakdownFigure struct {
	Name    string                `json:"name"`
	Side    string                `json:"side"`
	Machine string                `json:"machine"`
	Series  []jsonBreakdownSeries `json:"series"`
}

// JSON renders the figure as deterministic JSON.
func (f BreakdownFigure) JSON() []byte {
	jf := jsonBreakdownFigure{Name: f.Name, Side: f.Side, Machine: f.Machine}
	for _, s := range f.Order {
		pts, ok := f.Series[s]
		if !ok {
			continue
		}
		js := jsonBreakdownSeries{Name: s, Points: []jsonBreakdownPoint{}}
		for _, p := range pts {
			jp := jsonBreakdownPoint{
				RWSizeBytes:    int64(p.RWSize),
				ThroughputMbps: p.Throughput.Mbit(),
				Utilization:    p.Utilization,
				EfficiencyMbps: p.Efficiency.Mbit(),
				BusyNs:         p.BusyNs,
			}
			for _, sh := range p.Shares {
				jp.Shares = append(jp.Shares, jsonCatShare(sh))
			}
			js.Points = append(js.Points, jp)
		}
		jf.Series = append(jf.Series, js)
	}
	b, err := json.MarshalIndent(jf, "", "  ")
	if err != nil {
		panic("exp: breakdown marshal: " + err.Error())
	}
	return append(b, '\n')
}

type jsonDecompPoint struct {
	RWSizeBytes    int64   `json:"rwsize_bytes"`
	PerByteNsPerKB float64 `json:"per_byte_ns_per_kb"`
	PerPktNsPerKB  float64 `json:"per_packet_ns_per_kb"`
	PerCallNsPerKB float64 `json:"per_call_ns_per_kb"`
	Utilization    float64 `json:"utilization"`
	EfficiencyMbps float64 `json:"efficiency_mbps"`
}

type jsonDecompSeries struct {
	Name   string            `json:"name"`
	Points []jsonDecompPoint `json:"points"`
}

type jsonDecompFigure struct {
	Name    string             `json:"name"`
	Machine string             `json:"machine"`
	Series  []jsonDecompSeries `json:"series"`
}

// JSON renders Figure 9 as deterministic JSON.
func (f DecompFigure) JSON() []byte {
	jf := jsonDecompFigure{Name: f.Name, Machine: f.Machine}
	for _, s := range f.Order {
		pts, ok := f.Series[s]
		if !ok {
			continue
		}
		js := jsonDecompSeries{Name: s, Points: []jsonDecompPoint{}}
		for _, p := range pts {
			pb, pp, pc := p.NsPerKB()
			js.Points = append(js.Points, jsonDecompPoint{
				RWSizeBytes:    int64(p.RWSize),
				PerByteNsPerKB: pb,
				PerPktNsPerKB:  pp,
				PerCallNsPerKB: pc,
				Utilization:    p.Utilization,
				EfficiencyMbps: p.Efficiency.Mbit(),
			})
		}
		jf.Series = append(jf.Series, js)
	}
	b, err := json.MarshalIndent(jf, "", "  ")
	if err != nil {
		panic("exp: decomp marshal: " + err.Error())
	}
	return append(b, '\n')
}
