package exp

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/socket"
	"repro/internal/ttcp"
	"repro/internal/units"
)

// runInstrumented runs one single-copy transfer with telemetry enabled,
// optionally injecting faults.
func runInstrumented(seed int64, rules ...fault.Rule) (*core.Testbed, ttcp.Result) {
	tb := core.NewTestbed(seed)
	tb.EnableTelemetry()
	if len(rules) > 0 {
		inj := fault.New(tb.Eng, 99)
		for _, r := range rules {
			inj.Add(r)
		}
		tb.EnableFaults(inj)
	}
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mach: cost.Alpha400(),
		Mode: socket.ModeSingleCopy, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mach: cost.Alpha400(),
		Mode: socket.ModeSingleCopy, CABNode: 2})
	tb.RouteCAB(a, b)
	res := ttcp.Run(tb, a, b, ttcp.Params{
		Total: 4 * units.MB, RWSize: 64 * units.KB,
		WithUtil: true, WithBackground: true,
	})
	return tb, res
}

// metric looks one value up in a snapshot.
func metric(t *testing.T, s obs.Snapshot, host, name string) int64 {
	t.Helper()
	for _, h := range s.Hosts {
		if h.Host != host {
			continue
		}
		for _, m := range h.Metrics {
			if m.Name == name {
				return m.Value
			}
		}
	}
	t.Fatalf("metric %s/%s not in snapshot", host, name)
	return 0
}

// TestTelemetryDeterminism is the regression oracle of the telemetry layer:
// identical seeds must produce byte-identical metrics JSON and Chrome
// traces.
func TestTelemetryDeterminism(t *testing.T) {
	tb1, _ := runInstrumented(7)
	tb2, _ := runInstrumented(7)
	if !bytes.Equal(tb1.Tel.Snapshot().JSON(), tb2.Tel.Snapshot().JSON()) {
		t.Fatal("same-seed runs produced different metrics JSON")
	}
	if !bytes.Equal(tb1.Tel.Chrome(), tb2.Tel.Chrome()) {
		t.Fatal("same-seed runs produced different Chrome traces")
	}
}

// TestLossMovesCounters asserts the counters respond to injected loss:
// lossless runs retransmit nothing; lossy runs move the retransmit and drop
// counters.
func TestLossMovesCounters(t *testing.T) {
	tb, _ := runInstrumented(7)
	clean := tb.Tel.Snapshot()
	if n := metric(t, clean, "A", "tcp.retransmits"); n != 0 {
		t.Fatalf("lossless run retransmitted %d segments", n)
	}
	if n := metric(t, clean, "net", "hippi.frames_dropped"); n != 0 {
		t.Fatalf("lossless run dropped %d frames", n)
	}

	// Only drop bulk data frames so the handshake survives.
	tb2, res := runInstrumented(7, fault.Rule{
		Kind: fault.Drop, When: fault.Prob(0.02), MinLen: 16*units.KB + 1,
	})
	lossy := tb2.Tel.Snapshot()
	if res.Bytes != 4*units.MB {
		t.Fatalf("lossy transfer incomplete: %v", res.Bytes)
	}
	if n := metric(t, lossy, "net", "hippi.frames_dropped"); n == 0 {
		t.Fatal("loss injection dropped no frames")
	}
	if n := metric(t, lossy, "A", "tcp.retransmits"); n == 0 {
		t.Fatal("frame loss caused no retransmissions")
	}
}

// TestTelemetryVirtualTimeNeutral asserts observing the system does not
// change it: virtual-time results are identical with telemetry on and off.
func TestTelemetryVirtualTimeNeutral(t *testing.T) {
	run := func(telemetry bool) ttcp.Result {
		tb := core.NewTestbed(3)
		if telemetry {
			tb.EnableTelemetry()
		}
		a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mach: cost.Alpha400(),
			Mode: socket.ModeSingleCopy, CABNode: 1})
		b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mach: cost.Alpha400(),
			Mode: socket.ModeSingleCopy, CABNode: 2})
		tb.RouteCAB(a, b)
		return ttcp.Run(tb, a, b, ttcp.Params{
			Total: 4 * units.MB, RWSize: 64 * units.KB,
			WithUtil: true, WithBackground: true,
		})
	}
	on, off := run(true), run(false)
	if on.Elapsed != off.Elapsed || on.Bytes != off.Bytes || on.Throughput != off.Throughput {
		t.Fatalf("telemetry changed the run: on=(%v %v) off=(%v %v)",
			on.Elapsed, on.Throughput, off.Elapsed, off.Throughput)
	}
}

// TestChromeTraceShape asserts the exported trace is valid Chrome
// trace-event JSON with complete spans across every data-path stage.
func TestChromeTraceShape(t *testing.T) {
	tb, _ := runInstrumented(7)
	var f struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  string  `json:"pid"`
			TID  string  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tb.Tel.Chrome(), &f); err != nil {
		t.Fatalf("chrome export not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	stages := map[string]int{}
	flows := 0
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "X":
			stages[ev.TID]++
		case "s", "f":
			// Cross-host binding arrows emitted when a span changes hosts.
			flows++
		case "i":
			// Instant markers (zero-duration stages).
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if flows == 0 || flows%2 != 0 {
		t.Fatalf("cross-host flow events = %d, want a positive even count", flows)
	}
	for _, want := range []string{"socket", "packetize", "sdma", "wire", "mdma", "deliver"} {
		if stages[want] == 0 {
			t.Fatalf("no %q events in trace (stages: %v)", want, stages)
		}
	}
	// The span summary agrees with host-visible state: every data segment
	// of the transfer completed a span.
	st := tb.Tel.Trace().Stats()
	if st.Spans == 0 || st.Latency.Count != st.Spans {
		t.Fatalf("span stats inconsistent: %+v", st)
	}
}

// TestHostSnapshot exercises the core.Host accessor.
func TestHostSnapshot(t *testing.T) {
	tb, _ := runInstrumented(7)
	hm := tb.Hosts[0].Snapshot()
	if hm.Host != "A" || len(hm.Metrics) == 0 {
		t.Fatalf("host snapshot empty: %+v", hm.Host)
	}
	// Disabled telemetry: Snapshot stays usable and empty.
	tb2 := core.NewTestbed(1)
	h := tb2.AddHost(core.HostConfig{Name: "X", Addr: addrA, CABNode: 1})
	if hm := h.Snapshot(); hm.Host != "X" || len(hm.Metrics) != 0 {
		t.Fatalf("disabled snapshot = %+v", hm)
	}
	tb2.Eng.Run()
	tb2.Eng.KillAll()
}

// TestFigureJSONDeterministic pins the machine-readable figure export.
func TestFigureJSONDeterministic(t *testing.T) {
	sizes := []units.Size{16 * units.KB}
	f1 := Figure5(sizes)
	f2 := Figure5(sizes)
	if !bytes.Equal(f1.JSON(), f2.JSON()) {
		t.Fatal("figure JSON not deterministic")
	}
	var jf struct {
		Name   string `json:"name"`
		Series []struct {
			Name   string `json:"name"`
			Points []struct {
				RWSizeBytes    int64   `json:"rwsize_bytes"`
				ThroughputMbps float64 `json:"throughput_mbps"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(f1.JSON(), &jf); err != nil {
		t.Fatalf("figure JSON invalid: %v", err)
	}
	if len(jf.Series) != 3 || jf.Series[0].Name != "Unmodified" {
		t.Fatalf("series = %+v", jf.Series)
	}
	if jf.Series[1].Points[0].ThroughputMbps <= 0 {
		t.Fatal("modified series has no throughput")
	}
}
