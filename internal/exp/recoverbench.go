package exp

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/fault/soak"
	"repro/internal/socket"
)

// RecoverBench is the fault-domain recovery baseline (BENCH_recover.json):
// every case of the recovery soak matrix reduced to its virtual-time
// recovery telemetry. The injection schedule, the first-goodput instant,
// each flow's fate, and the byte/reset/drop counts are pure functions of
// the seeded event sequence, so benchdiff exact-diffs them; only the
// advisory wall time may drift. Recovery-time-to-first-goodput is the
// robustness claim restated as a number: how long after the fault domain
// heals does the application see bytes again.
type RecoverBench struct {
	Cells []RecoverCell `json:"cells"`
}

// RecoverCell is one recovery case's reduction.
type RecoverCell struct {
	Name  string `json:"name"`
	Plan  string `json:"plan"`
	Mode  string `json:"mode"`
	Flows int    `json:"flows"`
	// The injection window and the recovery measurement, all virtual
	// nanoseconds. FirstGoodputNs is 0 when no application byte landed
	// after the heal (the flows died, by design for some cases).
	FaultAtNs      int64 `json:"fault_at_ns"`
	HealAtNs       int64 `json:"heal_at_ns"`
	FirstGoodputNs int64 `json:"first_goodput_ns"`
	RecoveryNs     int64 `json:"recovery_ns"`
	EndNs          int64 `json:"end_ns"`
	// Aggregate fate: bytes the application actually received, firmware
	// resets observed, frames eaten by the partition.
	DeliveredBytes int64 `json:"delivered_bytes"`
	Resets         int   `json:"resets"`
	PartitionDrops int64 `json:"partition_drops"`
	// FlowFates pins each flow's end state: byte-exact completion or the
	// documented error it surfaced on each side.
	FlowFates []RecoverFate `json:"flow_fates"`
	Adv       recoverAdv    `json:"advisory"`
}

// RecoverFate is one flow's committed end state.
type RecoverFate struct {
	Delivered int64  `json:"delivered"`
	SndErr    string `json:"snd_err,omitempty"`
	RcvErr    string `json:"rcv_err,omitempty"`
	Complete  bool   `json:"complete"`
}

// recoverAdv is the machine-dependent wall-clock cost, reported but never
// gated.
type recoverAdv struct {
	WallNs int64 `json:"wall_ns"`
}

func errName(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// RunRecoverBench executes the full recovery matrix and reduces each case
// to a cell. A case failure (an invariant violation, not a documented flow
// error) aborts the bench: the baseline only commits healthy runs.
func RunRecoverBench() (RecoverBench, error) {
	var b RecoverBench
	for _, c := range soak.RecoverMatrix() {
		t0 := time.Now()
		o := soak.RunRecover(c)
		if len(o.Failures) != 0 {
			return b, fmt.Errorf("recover %s: %s", c.Name, strings.Join(o.Failures, "; "))
		}
		mode := "unmodified"
		if c.Mode == socket.ModeSingleCopy {
			mode = "single_copy"
		}
		flows := c.Flows
		if flows == 0 {
			flows = 1
		}
		cell := RecoverCell{
			Name: c.Name, Plan: c.Plan, Mode: mode, Flows: flows,
			FaultAtNs:      int64(o.FaultAt),
			HealAtNs:       int64(o.HealAt),
			FirstGoodputNs: int64(o.FirstGoodputAt),
			RecoveryNs:     int64(o.RecoveryTime),
			EndNs:          int64(o.EndTime),
			DeliveredBytes: int64(o.Delivered),
			Resets:         o.Resets,
			PartitionDrops: o.PartitionDrops,
		}
		for _, fl := range o.Flows {
			cell.FlowFates = append(cell.FlowFates, RecoverFate{
				Delivered: int64(fl.Delivered),
				SndErr:    errName(fl.SndErr),
				RcvErr:    errName(fl.RcvErr),
				Complete:  fl.Complete,
			})
		}
		cell.Adv.WallNs = time.Since(t0).Nanoseconds()
		b.Cells = append(b.Cells, cell)
	}
	return b, nil
}

// JSON renders the baseline file.
func (b RecoverBench) JSON() []byte {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(out, '\n')
}

// recoverCellDet is a cell stripped to its exact-diffable fields.
type recoverCellDet struct {
	Name           string        `json:"name"`
	Plan           string        `json:"plan"`
	Mode           string        `json:"mode"`
	Flows          int           `json:"flows"`
	FaultAtNs      int64         `json:"fault_at_ns"`
	HealAtNs       int64         `json:"heal_at_ns"`
	FirstGoodputNs int64         `json:"first_goodput_ns"`
	RecoveryNs     int64         `json:"recovery_ns"`
	EndNs          int64         `json:"end_ns"`
	DeliveredBytes int64         `json:"delivered_bytes"`
	Resets         int           `json:"resets"`
	PartitionDrops int64         `json:"partition_drops"`
	FlowFates      []RecoverFate `json:"flow_fates"`
}

// DeterministicJSON renders only the deterministic fields — the bytes the
// twice-run determinism test compares.
func (b RecoverBench) DeterministicJSON() []byte {
	var cs []recoverCellDet
	for _, c := range b.Cells {
		cs = append(cs, recoverCellDet{
			Name: c.Name, Plan: c.Plan, Mode: c.Mode, Flows: c.Flows,
			FaultAtNs: c.FaultAtNs, HealAtNs: c.HealAtNs,
			FirstGoodputNs: c.FirstGoodputNs, RecoveryNs: c.RecoveryNs,
			EndNs: c.EndNs, DeliveredBytes: c.DeliveredBytes,
			Resets: c.Resets, PartitionDrops: c.PartitionDrops,
			FlowFates: c.FlowFates,
		})
	}
	out, err := json.MarshalIndent(cs, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(out, '\n')
}

// Format renders a human summary: one line per case.
func (b RecoverBench) Format() string {
	var sb strings.Builder
	sb.WriteString("Fault-domain recovery (virtual time):\n")
	for _, c := range b.Cells {
		complete := 0
		for _, f := range c.FlowFates {
			if f.Complete {
				complete++
			}
		}
		fmt.Fprintf(&sb, "  %-22s fault=%8.3fms heal=%8.3fms recovery=%8.3fms flows=%d/%d done",
			c.Name, float64(c.FaultAtNs)/1e6, float64(c.HealAtNs)/1e6,
			float64(c.RecoveryNs)/1e6, complete, len(c.FlowFates))
		if c.Resets > 0 {
			fmt.Fprintf(&sb, " resets=%d", c.Resets)
		}
		if c.PartitionDrops > 0 {
			fmt.Fprintf(&sb, " part-drops=%d", c.PartitionDrops)
		}
		fmt.Fprintln(&sb)
	}
	return sb.String()
}
