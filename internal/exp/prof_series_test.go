package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/socket"
	"repro/internal/ttcp"
	"repro/internal/units"
)

// TestProfilerExactSum is the profiler's core invariant: folded-stack
// virtual-CPU totals sum exactly — not approximately — to each kernel's
// busy time. The profiler is sampling-free, so any missing or double
// attribution is a hard failure.
func TestProfilerExactSum(t *testing.T) {
	tb := ProfileRun(socket.ModeSingleCopy, 64*units.KB, 5)
	perHost := map[string]int64{}
	for _, line := range strings.Split(strings.TrimSuffix(tb.Prof.Folded(), "\n"), "\n") {
		stack, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed folded line %q", line)
		}
		ns, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		host, _, _ := strings.Cut(stack, ";")
		perHost[host] += ns
	}
	for _, h := range tb.Hosts {
		busy := int64(h.K.BusyTime())
		if busy == 0 {
			t.Fatalf("host %s did no work", h.Name)
		}
		if perHost[h.Name] != busy {
			t.Errorf("host %s: folded sum %d != kern.cpu_busy_ns %d",
				h.Name, perHost[h.Name], busy)
		}
		if got := tb.Prof.HostTotal(h.Name); got != busy {
			t.Errorf("host %s: HostTotal %d != busy %d", h.Name, got, busy)
		}
	}
}

// TestProfilerDeterministic: same seed, byte-identical exports.
func TestProfilerDeterministic(t *testing.T) {
	tb1 := ProfileRun(socket.ModeSingleCopy, 64*units.KB, 5)
	tb2 := ProfileRun(socket.ModeSingleCopy, 64*units.KB, 5)
	if tb1.Prof.Folded() != tb2.Prof.Folded() {
		t.Fatal("same-seed runs produced different folded stacks")
	}
	if !bytes.Equal(tb1.Prof.Snapshot().JSON(), tb2.Prof.Snapshot().JSON()) {
		t.Fatal("same-seed runs produced different profile JSON")
	}
}

// TestProfilerStackShape pins the layer framing: the send path shows the
// socket→tcp_output→ip_output→cabdrv nesting, the receive path the
// interrupt-side mirror, and the data-touching categories appear only
// where the stack variant predicts them.
func TestProfilerStackShape(t *testing.T) {
	single := ProfileRun(socket.ModeSingleCopy, 64*units.KB, 5).Prof.Folded()
	for _, want := range []string{
		"A;ttcp-snd;socket;tcp_output;ip_output;cabdrv;driver ",
		"A;ttcp-snd;socket;vm ",
		"B;intr;cabdrv_rx;ip_input;tcp_input;proto ",
		"B;intr;intr ",
	} {
		if !strings.Contains(single, want) {
			t.Errorf("single-copy profile missing %q", want)
		}
	}
	if strings.Contains(single, ";csum ") {
		t.Error("single-copy profile charges software checksum time")
	}

	unmod := ProfileRun(socket.ModeUnmodified, 64*units.KB, 5).Prof.Folded()
	for _, want := range []string{
		"A;ttcp-snd;socket;copy ",
		"A;ttcp-snd;socket;tcp_output;csum ",
	} {
		if !strings.Contains(unmod, want) {
			t.Errorf("unmodified profile missing %q", want)
		}
	}
}

// TestProfilerVirtualTimeNeutral: profiling observes the run without
// changing it.
func TestProfilerVirtualTimeNeutral(t *testing.T) {
	run := func(profile bool) (ttcp.Result, *core.Testbed) {
		tb := core.NewTestbed(3)
		if profile {
			tb.EnableProfiling()
		}
		a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mach: cost.Alpha400(),
			Mode: socket.ModeSingleCopy, CABNode: 1})
		b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mach: cost.Alpha400(),
			Mode: socket.ModeSingleCopy, CABNode: 2})
		tb.RouteCAB(a, b)
		res := ttcp.Run(tb, a, b, ttcp.Params{
			Total: 4 * units.MB, RWSize: 64 * units.KB,
			WithUtil: true, WithBackground: true,
		})
		return res, tb
	}
	on, tbOn := run(true)
	off, tbOff := run(false)
	if on.Elapsed != off.Elapsed || on.Bytes != off.Bytes || on.Throughput != off.Throughput {
		t.Fatalf("profiling changed the run: on=(%v %v) off=(%v %v)",
			on.Elapsed, on.Throughput, off.Elapsed, off.Throughput)
	}
	for i := range tbOn.Hosts {
		if tbOn.Hosts[i].K.BusyTime() != tbOff.Hosts[i].K.BusyTime() {
			t.Fatalf("profiling changed host %s busy time", tbOn.Hosts[i].Name)
		}
	}
}

// TestSeriesRecordsUtilization checks the sampler's content: utilization
// per-mille columns stay in range, the soaker keeps the CPU saturated,
// netmem occupancy is visible, and latency quantiles are ordered.
func TestSeriesRecordsUtilization(t *testing.T) {
	tb := SeriesRun(64*units.KB, 100*units.Microsecond, 9)
	snap := tb.Series.Snapshot()
	if snap.IntervalNs != int64(100*units.Microsecond) {
		t.Fatalf("interval = %d", snap.IntervalNs)
	}
	if len(snap.Hosts) != 2 || snap.Hosts[0].Host != "A" || snap.Hosts[1].Host != "B" {
		t.Fatalf("hosts = %+v", len(snap.Hosts))
	}
	for _, hs := range snap.Hosts {
		col := map[string]int{}
		for i, c := range hs.Columns {
			col[c] = i
		}
		for _, want := range []string{"cpu.util_pm", "cpu.copy_pm", "cpu.intr_pm",
			"cab.netmem_pages", "cab.netmem_pages_peak",
			"tcp.snd_q_peak", "tcp.rcv_q_peak", "tcp.snd_wnd_peak"} {
			if _, ok := col[want]; !ok {
				t.Fatalf("host %s missing column %s (have %v)", hs.Host, want, hs.Columns)
			}
		}
		if len(hs.Samples) < 100 {
			t.Fatalf("host %s recorded only %d samples", hs.Host, len(hs.Samples))
		}
		var maxUtil, maxPages int64
		for _, row := range hs.Samples {
			u := row.V[col["cpu.util_pm"]]
			if u < 0 || u > 1000 {
				t.Fatalf("host %s utilization %d out of per-mille range", hs.Host, u)
			}
			if u > maxUtil {
				maxUtil = u
			}
			if p := row.V[col["cab.netmem_pages_peak"]]; p > maxPages {
				maxPages = p
			}
		}
		// The util soaker keeps the CPU pegged during the transfer.
		if maxUtil != 1000 {
			t.Errorf("host %s never saturated: max util %d‰", hs.Host, maxUtil)
		}
		if maxPages == 0 {
			t.Errorf("host %s shows no netmem page occupancy", hs.Host)
		}
	}
	if len(snap.LatencyQ) != 3 {
		t.Fatalf("latency quantiles = %+v", snap.LatencyQ)
	}
	if !(snap.LatencyQ[0].Ns <= snap.LatencyQ[1].Ns && snap.LatencyQ[1].Ns <= snap.LatencyQ[2].Ns) {
		t.Fatalf("quantiles not ordered: %+v", snap.LatencyQ)
	}
}

// TestSeriesDeterministic: same seed, byte-identical series exports.
func TestSeriesDeterministic(t *testing.T) {
	s1 := SeriesRun(64*units.KB, 100*units.Microsecond, 9).Series.Snapshot()
	s2 := SeriesRun(64*units.KB, 100*units.Microsecond, 9).Series.Snapshot()
	if !bytes.Equal(s1.JSON(), s2.JSON()) {
		t.Fatal("same-seed runs produced different series JSON")
	}
	if s1.CSV() != s2.CSV() {
		t.Fatal("same-seed runs produced different series CSV")
	}
}

// TestSeriesVirtualTimeNeutral: the sampler must not perturb the
// workload's virtual-time results even though it keeps an engine event
// pending.
func TestSeriesVirtualTimeNeutral(t *testing.T) {
	run := func(series bool) ttcp.Result {
		tb := core.NewTestbed(3)
		if series {
			tb.EnableSeries(100 * units.Microsecond)
		}
		a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mach: cost.Alpha400(),
			Mode: socket.ModeSingleCopy, CABNode: 1})
		b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mach: cost.Alpha400(),
			Mode: socket.ModeSingleCopy, CABNode: 2})
		tb.RouteCAB(a, b)
		return ttcp.Run(tb, a, b, ttcp.Params{
			Total: 4 * units.MB, RWSize: 64 * units.KB,
			WithUtil: true, WithBackground: true,
		})
	}
	on, off := run(true), run(false)
	if on.Elapsed != off.Elapsed || on.Bytes != off.Bytes || on.Throughput != off.Throughput {
		t.Fatalf("series sampling changed the run: on=(%v %v) off=(%v %v)",
			on.Elapsed, on.Throughput, off.Elapsed, off.Throughput)
	}
}

// TestBreakdownJSONDeterministic pins the Figure 7–9 exports.
func TestBreakdownJSONDeterministic(t *testing.T) {
	sizes := []units.Size{16 * units.KB}
	a7, a8, a9 := RunBreakdowns(sizes)
	b7, b8, b9 := RunBreakdowns(sizes)
	if !bytes.Equal(a7.JSON(), b7.JSON()) || !bytes.Equal(a8.JSON(), b8.JSON()) ||
		!bytes.Equal(a9.JSON(), b9.JSON()) {
		t.Fatal("breakdown JSON not deterministic")
	}
	// Shares of one host sum to ~1 (every category is listed).
	p := a7.Series["Unmodified"][0]
	var sum float64
	for _, s := range p.Shares {
		sum += s.Share
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("category shares sum to %f", sum)
	}
}
