package exp

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/obs/ledger"
	"repro/internal/socket"
	"repro/internal/taxonomy"
	"repro/internal/ttcp"
	"repro/internal/units"
)

// TouchMode is the audited data-touch table for one stack variant: the
// Table 1 cell it should land in, the measured per-host touch counts, and
// the end-to-end oracle verdict.
type TouchMode struct {
	// Cell is the Table 1 configuration this variant realizes.
	Cell string `json:"cell"`
	// Ops is the cell's derived operation sequence (transmit side).
	Ops string `json:"ops"`
	// Class is the cell's cost classification.
	Class string `json:"class"`
	// Audit is "ok" when the oracle held, else the failure text.
	Audit string `json:"audit"`
	// Summary is the measured per-host, per-kind touch table.
	Summary ledger.FlowSummary `json:"summary"`
}

// TouchReport is the machine-checked copy-count table for the two stack
// variants the paper compares (BENCH_touches.json). All fields are
// deterministic for a given seed; identical runs marshal byte-identically.
type TouchReport struct {
	SingleCopy TouchMode `json:"single_copy"`
	Unmodified TouchMode `json:"unmodified"`
}

// touchTotal and touchRW size the audited transfer: long enough to cover
// slow start and window growth, small enough to keep every record.
const (
	touchTotal = 1 * units.MB
	touchRW    = 64 * units.KB
)

// touchRun runs one clean A→B transfer with the ledger enabled and
// returns the ledger and the data flow id.
func touchRun(mode socket.Mode, seed int64) (*ledger.Ledger, int) {
	tb := core.NewTestbed(seed)
	led := tb.EnableLedger()
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mach: cost.Alpha400(), Mode: mode, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mach: cost.Alpha400(), Mode: mode, CABNode: 2})
	tb.RouteCAB(a, b)
	ttcp.Run(tb, a, b, ttcp.Params{Total: touchTotal, RWSize: touchRW})
	return led, led.MainFlow()
}

// opsString renders a cell's op sequence.
func opsString(c taxonomy.Cell) string {
	ops := make([]string, len(c.Ops))
	for i, op := range c.Ops {
		ops[i] = string(op)
	}
	return strings.Join(ops, " ")
}

// RunTouches measures the data-touch tables for the single-copy and
// unmodified stacks and checks each against its audit oracle. The report
// is returned even when an oracle fails; err aggregates the failures.
func RunTouches(seed int64) (TouchReport, error) {
	var rep TouchReport
	var errs []string

	// The CAB cell: copy API, header checksum, outboard buffering,
	// DMA with checksum in flight → zero host data accesses.
	scCell := taxonomy.Derive(taxonomy.Config{
		API: taxonomy.APICopy, Csum: taxonomy.CsumHeader,
		Buf: taxonomy.BufOutboard, Move: taxonomy.MoveDMACsum,
	})
	led, flow := touchRun(socket.ModeSingleCopy, seed)
	rep.SingleCopy = TouchMode{
		Cell:    scCell.Config.String(),
		Ops:     opsString(scCell),
		Class:   scCell.Class.String(),
		Audit:   "ok",
		Summary: led.Summary(flow, touchTotal, []string{"A", "wire", "B"}),
	}
	if err := led.AssertSingleCopy(ledger.AuditConfig{
		Flow: flow, Total: touchTotal, SndHost: "A", RcvHost: "B", Strict: true,
	}); err != nil {
		rep.SingleCopy.Audit = err.Error()
		errs = append(errs, err.Error())
	}

	// The unmodified cell: copy API, header checksum, no outboard
	// buffering, plain DMA → the copy-semantics copy is unavoidable. (The
	// simulated original stack takes the separate-checksum variant: a
	// plain copy at the socket layer plus a checksum read in TCP, the same
	// per-byte access count Table 1 charges the cell.)
	umCell := taxonomy.Derive(taxonomy.Config{
		API: taxonomy.APICopy, Csum: taxonomy.CsumHeader,
		Buf: taxonomy.BufNone, Move: taxonomy.MoveDMA,
	})
	led, flow = touchRun(socket.ModeUnmodified, seed)
	rep.Unmodified = TouchMode{
		Cell:    umCell.Config.String(),
		Ops:     opsString(umCell),
		Class:   umCell.Class.String(),
		Audit:   "ok",
		Summary: led.Summary(flow, touchTotal, []string{"A", "wire", "B"}),
	}
	if err := led.AssertMultiCopy(ledger.AuditConfig{
		Flow: flow, Total: touchTotal, SndHost: "A", RcvHost: "B",
	}); err != nil {
		rep.Unmodified.Audit = err.Error()
		errs = append(errs, err.Error())
	}

	if len(errs) > 0 {
		return rep, fmt.Errorf("touch audit failed: %s", strings.Join(errs, "; "))
	}
	return rep, nil
}

// JSON marshals the report for the BENCH_touches.json baseline. Touch
// counts are exact integers, so the CI diff tolerance is zero.
func (r TouchReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic("exp: touch report marshal: " + err.Error())
	}
	return append(b, '\n')
}

// Format renders the report as the paper-style copy-count table.
func (r TouchReport) Format() string {
	var b strings.Builder
	mode := func(name string, m TouchMode) {
		fmt.Fprintf(&b, "%s — Table 1 cell %s: [%s] → %s\n", name, m.Cell, m.Ops, m.Class)
		b.WriteString(m.Summary.Format())
		fmt.Fprintf(&b, "  oracle: %s\n", m.Audit)
	}
	mode("single-copy stack", r.SingleCopy)
	b.WriteString("\n")
	mode("unmodified stack", r.Unmodified)
	return b.String()
}
