package exp

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/cab"
	"repro/internal/hippi"
	"repro/internal/load"
	"repro/internal/socket"
	"repro/internal/tcpip"
	"repro/internal/units"
)

// FabricBench is the multi-switch fabric baseline (BENCH_fabric.json):
// four workload families over leaf/spine topologies assembled by
// internal/fabric, each a deterministic function of its seeded scenario,
// so the benchdiff gate exact-diffs the file.
//
//   - The incast pair is the congestion-control comparison: 64 flows from
//     8 clients converge through one spine→leaf trunk onto 8 servers in
//     one rack. Under Reno the capped trunk queue tail-drops until flows
//     go RTO-bound; under DCTCP the fabric's CE marks hold the queue
//     under the cap and every flow stays healthy (the netobs postmortem
//     verdicts are the machine-checked evidence).
//   - The mice pair runs an elephant/mice request/response mix over the
//     same congested fabric: the mice's p99 latency pays for the queue
//     depth the elephants choose, so DCTCP's shallow queues show up as a
//     latency win at equal fabric load.
//   - The hotspot pair is the ECMP evidence: the same 100-host incast
//     under two hash seeds places flows on different equal-cost uplinks,
//     so the per-trunk byte shares differ while either seed alone is
//     perfectly reproducible.
//   - The partition run kills one spine uplink mid-transfer and heals it:
//     only the flows ECMP hashed that links' way stall and recover.
type FabricBench struct {
	IncastReno  FabricRun `json:"incast_reno"`
	IncastDctcp FabricRun `json:"incast_dctcp"`
	MiceReno    FabricRun `json:"mice_reno"`
	MiceDctcp   FabricRun `json:"mice_dctcp"`
	HotspotA    FabricRun `json:"hotspot_seed3"`
	HotspotB    FabricRun `json:"hotspot_seed9"`
	Partition   FabricRun `json:"partition_heal"`
}

// FabricRun is one scenario's summary: goodput/fairness/latency on top,
// the fabric counters (marks, tail drops, per-trunk byte shares), the
// retransmission totals, and the postmortem verdict census.
type FabricRun struct {
	Name       string  `json:"name"`
	Topology   string  `json:"topology"`
	CC         string  `json:"cc"`
	TotalBytes int64   `json:"total_bytes"`
	Jain       float64 `json:"jain"`
	LatP50Us   float64 `json:"lat_p50_us,omitempty"`
	LatP99Us   float64 `json:"lat_p99_us,omitempty"`

	ECNMarked  int   `json:"ecn_marked"`
	TrunkDrops int   `json:"trunk_drops"`
	RtoFires   int64 `json:"rto_fires"`
	FastRtx    int64 `json:"fast_rtx"`

	// Verdicts is the netobs postmortem census (verdict → flow count);
	// empty when the scenario ran without the observatory.
	Verdicts map[string]int `json:"verdicts,omitempty"`

	OrderDigest string            `json:"order_digest"`
	Audit       string            `json:"audit,omitempty"`
	Trunks      []hippi.TrunkStat `json:"trunks"`
}

// fabricCAB is the per-host adaptor geometry every fabric scenario uses:
// a 1 MByte network memory of 8 KByte pages.
func fabricCAB() *cab.Config {
	return &cab.Config{
		MemSize:    1024 * units.KB,
		PageSize:   8 * units.KB,
		AutoDMALen: 784,
		RxCsumSkip: 80,
		Channels:   8,
	}
}

// fabricMTU keeps fabric segments near the adaptor's 8 KByte page while
// staying off the exact page size: at 8192-byte segments every 16 KByte
// application write splits into two identical frames and the incast's 64
// flows phase-lock (synchronized drop rounds); the 64-byte offset
// desynchronizes the packetization.
const fabricMTU = 8*units.KB + 64

// FabricIncast is the 64-flow cross-fabric incast: 8 clients spread over
// three edge switches, 8 servers racked behind leaf0, every flow crossing
// the one spine→leaf0 trunk (leafspine:4x1 — four leaves, one spine).
// The trunk's 256 KByte queue cap is the congestion-control fulcrum:
// aggregate window demand (64 flows × 128 KByte) overruns it, so Reno
// tail-drops into RTO-bound flows, while DCTCP's 32 KByte marking
// threshold holds the standing queue far under the cap. Exported so the
// CLI and the machine-check tests run the identical scenario.
func FabricIncast(cc string) load.Scenario {
	s := load.Scenario{
		Name:         "fabric-incast",
		Seed:         7,
		Clients:      8,
		Servers:      8,
		Flows:        64,
		Mode:         socket.ModeSingleCopy,
		Topology:     "leafspine:4x1",
		CC:           cc,
		QueueCap:     256 * units.KB,
		ECNThreshold: 32 * units.KB,
		Bulk:         true,
		Duration:     600 * units.Millisecond,
		Warmup:       50 * units.Millisecond,
		BulkWrite:    16 * units.KB,
		Window:       128 * units.KB,
		MTU:          fabricMTU,
		CABConfig:    fabricCAB(),
		NetObs:       true,
		Ledger:       true,
	}
	if cc != "" && cc != tcpip.CCReno {
		s.Name = "fabric-incast-" + cc
	}
	return s
}

// fabricMice is the elephant/mice mix over the same congested fabric:
// closed-loop request/response flows where one in eight exchanges pulls a
// 512 KByte elephant response and the rest are 8 KByte mice. The
// elephants keep the capped trunk queue busy; the mice p99 latency is the
// measurement.
func fabricMice(cc string) load.Scenario {
	s := load.Scenario{
		Name:         "fabric-mice",
		Seed:         11,
		Clients:      8,
		Servers:      8,
		Flows:        48,
		Mode:         socket.ModeSingleCopy,
		Topology:     "leafspine:4x1",
		CC:           cc,
		QueueCap:     256 * units.KB,
		ECNThreshold: 32 * units.KB,
		Requests:     24,
		Mix: []load.SizeClass{
			{Frac: 0.875, Req: 2 * units.KB, Resp: 8 * units.KB},
			{Frac: 0.125, Req: 4 * units.KB, Resp: 512 * units.KB},
		},
		Window:    128 * units.KB,
		MTU:       fabricMTU,
		CABConfig: fabricCAB(),
		NetObs:    true,
	}
	if cc != "" && cc != tcpip.CCReno {
		s.Name = "fabric-mice-" + cc
	}
	return s
}

// FabricHotspot is the ECMP hash-collision workload: a 100-host incast
// (92 clients, 8 servers in one rack) over leafspine:4x2, where each
// flow's uplink is the seeded ECMP hash's choice between two spines. Hash
// collisions make the two spine trunks' byte shares unequal; a different
// seed redraws the collisions. Exported for the determinism tests.
func FabricHotspot(seed int64) load.Scenario {
	return load.Scenario{
		Name:      fmt.Sprintf("fabric-hotspot-%d", seed),
		Seed:      seed,
		Clients:   92,
		Servers:   8,
		Flows:     92,
		Mode:      socket.ModeSingleCopy,
		Topology:  "leafspine:4x2",
		Bulk:      true,
		Duration:  150 * units.Millisecond,
		Warmup:    25 * units.Millisecond,
		BulkWrite: 16 * units.KB,
		Window:    64 * units.KB,
		MTU:       fabricMTU,
		CABConfig: fabricCAB(),
	}
}

// fabricPartition kills the leaf0→spine1 uplink for 120 ms mid-transfer
// while bulk elephants persist, then heals it: only the flows ECMP hashed
// through spine1 stall (RTO retries against the dead link) and all bytes
// still arrive exactly once after recovery.
func fabricPartition() load.Scenario {
	return load.Scenario{
		Name:         "fabric-partition",
		Seed:         13,
		Clients:      12,
		Servers:      4,
		Flows:        48,
		Mode:         socket.ModeSingleCopy,
		Topology:     "leafspine:4x2",
		CC:           tcpip.CCDctcp,
		QueueCap:     256 * units.KB,
		ECNThreshold: 32 * units.KB,
		Bulk:         true,
		Duration:     500 * units.Millisecond,
		Warmup:       50 * units.Millisecond,
		BulkWrite:    16 * units.KB,
		Window:       128 * units.KB,
		MTU:          fabricMTU,
		CABConfig:    fabricCAB(),
		NetObs:       true,
		FaultPlan:    "partition:at=150ms,dur=120ms,link=leaf0-spine1",
	}
}

// RunFabricScenario executes one fabric scenario and folds its report
// into the bench row (shared by the bench generator and the tests).
func RunFabricScenario(s load.Scenario) (FabricRun, error) {
	rep, err := load.Run(s)
	if err != nil {
		return FabricRun{}, err
	}
	if rep.Errors != 0 {
		return FabricRun{}, fmt.Errorf("fabric bench %s: %d errors (%s)", rep.Name, rep.Errors, rep.FirstError)
	}
	fr := FabricRun{
		Name:        rep.Name,
		Topology:    rep.Topology,
		CC:          rep.CC,
		TotalBytes:  rep.TotalBytes,
		Jain:        rep.Jain,
		LatP50Us:    rep.LatP50Us,
		LatP99Us:    rep.LatP99Us,
		ECNMarked:   rep.ECNMarked,
		TrunkDrops:  rep.TrunkDrops,
		OrderDigest: rep.OrderDigest,
		Audit:       rep.Audit,
		Trunks:      rep.Trunks,
	}
	if rep.NetObs != nil {
		fr.Verdicts = map[string]int{}
		for i := range rep.NetObs.Flows {
			f := &rep.NetObs.Flows[i]
			fr.Verdicts[f.Verdict]++
			fr.RtoFires += f.RtoFires
			fr.FastRtx += f.FastRtx
		}
	}
	return fr, nil
}

// RunFabric executes the full fabric baseline.
func RunFabric() (FabricBench, error) {
	var b FabricBench
	for _, step := range []struct {
		dst *FabricRun
		s   load.Scenario
	}{
		{&b.IncastReno, FabricIncast("")},
		{&b.IncastDctcp, FabricIncast(tcpip.CCDctcp)},
		{&b.MiceReno, fabricMice("")},
		{&b.MiceDctcp, fabricMice(tcpip.CCDctcp)},
		{&b.HotspotA, FabricHotspot(3)},
		{&b.HotspotB, FabricHotspot(9)},
		{&b.Partition, fabricPartition()},
	} {
		fr, err := RunFabricScenario(step.s)
		if err != nil {
			return b, err
		}
		*step.dst = fr
	}
	return b, nil
}

// JSON renders the baseline file.
func (b FabricBench) JSON() []byte {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(out, '\n')
}

// Format renders a human summary.
func (b FabricBench) Format() string {
	var sb strings.Builder
	sb.WriteString("Fabric workloads (internal/fabric + internal/load):\n")
	row := func(fr FabricRun) {
		fmt.Fprintf(&sb, "  %-22s %-14s cc=%-5s bytes=%-9d jain=%.4f",
			fr.Name, fr.Topology, fr.CC, fr.TotalBytes, fr.Jain)
		if fr.LatP99Us > 0 {
			fmt.Fprintf(&sb, " p99=%.0fus", fr.LatP99Us)
		}
		fmt.Fprintf(&sb, " marks=%d drops=%d rto=%d", fr.ECNMarked, fr.TrunkDrops, fr.RtoFires)
		if fr.Audit != "" {
			fmt.Fprintf(&sb, " audit=%s", fr.Audit)
		}
		if len(fr.Verdicts) > 0 {
			fmt.Fprintf(&sb, " verdicts=%v", fr.Verdicts)
		}
		sb.WriteByte('\n')
		for _, t := range fr.Trunks {
			fmt.Fprintf(&sb, "    trunk %-14s ab=%-9d ba=%-9d drops=%d/%d\n",
				t.Name, int64(t.AB), int64(t.BA), t.DropsAB, t.DropsBA)
		}
	}
	for _, fr := range []FabricRun{b.IncastReno, b.IncastDctcp, b.MiceReno,
		b.MiceDctcp, b.HotspotA, b.HotspotB, b.Partition} {
		row(fr)
	}
	return sb.String()
}
