package exp

import (
	"bytes"
	"strings"
	"testing"
)

// TestRecoverBenchDeterminism runs the recovery matrix twice and requires
// the deterministic fields (injection schedule, first-goodput instants,
// flow fates, byte/reset/drop counts) to be byte-identical — the property
// benchdiff's exact diff of BENCH_recover.json rests on.
func TestRecoverBenchDeterminism(t *testing.T) {
	a, err := RunRecoverBench()
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := RunRecoverBench()
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	ja, jb := a.DeterministicJSON(), b.DeterministicJSON()
	if !bytes.Equal(ja, jb) {
		t.Fatalf("deterministic fields differ between same-seed runs:\n--- first\n%s\n--- second\n%s", ja, jb)
	}
	for _, c := range a.Cells {
		// Every flow must have a committed fate: byte-exact completion or
		// a documented error on the side that failed.
		for i, f := range c.FlowFates {
			if !f.Complete && f.SndErr == "" && f.RcvErr == "" {
				t.Fatalf("cell %s flow %d: incomplete with no error", c.Name, i)
			}
		}
		switch {
		case strings.HasPrefix(c.Name, "partition-"):
			if c.PartitionDrops == 0 {
				t.Fatalf("cell %s: partition never ate a frame", c.Name)
			}
			if c.HealAtNs > c.FaultAtNs && c.FirstGoodputNs > 0 && c.FirstGoodputNs < c.HealAtNs {
				t.Fatalf("cell %s: goodput at %dns inside the partition window ending %dns",
					c.Name, c.FirstGoodputNs, c.HealAtNs)
			}
		case strings.HasPrefix(c.Name, "cabreset-"):
			if c.Resets == 0 {
				t.Fatalf("cell %s: no firmware reset observed", c.Name)
			}
		}
	}
}
