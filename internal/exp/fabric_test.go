package exp

import (
	"reflect"
	"testing"

	"repro/internal/obs/netobs"
	"repro/internal/tcpip"
)

// TestFabricVerdictPair machine-checks the congestion-control comparison
// the fabric bench is built around: the same 64-flow cross-fabric incast
// is RTO-bound under Reno (the capped trunk tail-drops until flows sit in
// retransmission timeout) and healthy under DCTCP (fabric CE marks hold
// the queue under the cap), with byte-exact delivery and a clean
// single-copy audit in both worlds.
func TestFabricVerdictPair(t *testing.T) {
	reno, err := RunFabricScenario(FabricIncast(""))
	if err != nil {
		t.Fatal(err)
	}
	dctcp, err := RunFabricScenario(FabricIncast(tcpip.CCDctcp))
	if err != nil {
		t.Fatal(err)
	}

	if n := reno.Verdicts[netobs.VerdictRTOBound]; n < 2 {
		t.Errorf("reno incast: want >=2 RTO-bound flows, got %d (verdicts %v)", n, reno.Verdicts)
	}
	if reno.TrunkDrops == 0 {
		t.Errorf("reno incast: want trunk tail drops at the capped queue, got 0")
	}
	if n := dctcp.Verdicts[netobs.VerdictRTOBound]; n != 0 {
		t.Errorf("dctcp incast: want 0 RTO-bound flows, got %d (verdicts %v)", n, dctcp.Verdicts)
	}
	total := 0
	for _, n := range dctcp.Verdicts {
		total += n
	}
	if h := dctcp.Verdicts[netobs.VerdictHealthy]; h != total {
		t.Errorf("dctcp incast: want all %d flows healthy, got %d (verdicts %v)", total, h, dctcp.Verdicts)
	}
	if dctcp.ECNMarked == 0 {
		t.Errorf("dctcp incast: fabric marked no frames")
	}
	if reno.ECNMarked != 0 {
		t.Errorf("reno incast: %d frames marked, but reno traffic is not ECT", reno.ECNMarked)
	}
	if dctcp.Jain <= reno.Jain {
		t.Errorf("fairness: dctcp jain %v <= reno jain %v", dctcp.Jain, reno.Jain)
	}
	if reno.Audit != "ok" || dctcp.Audit != "ok" {
		t.Errorf("single-copy audit: reno=%q dctcp=%q, want ok/ok", reno.Audit, dctcp.Audit)
	}
	if reno.OrderDigest == dctcp.OrderDigest {
		t.Errorf("reno and dctcp produced the identical frame timeline %s — congestion control changed nothing", reno.OrderDigest)
	}
}

// TestFabricECMPDeterminism pins the seeded ECMP hash: the same seed
// reproduces the identical delivery timeline and per-trunk byte shares,
// while a different seed redraws the hash collisions and shifts bytes
// between the equal-cost spine uplinks.
func TestFabricECMPDeterminism(t *testing.T) {
	a1, err := RunFabricScenario(FabricHotspot(3))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := RunFabricScenario(FabricHotspot(3))
	if err != nil {
		t.Fatal(err)
	}
	if a1.OrderDigest != a2.OrderDigest {
		t.Errorf("same seed, different delivery order: %s vs %s", a1.OrderDigest, a2.OrderDigest)
	}
	if !reflect.DeepEqual(a1.Trunks, a2.Trunks) {
		t.Errorf("same seed, different trunk shares:\n%+v\n%+v", a1.Trunks, a2.Trunks)
	}

	b, err := RunFabricScenario(FabricHotspot(9))
	if err != nil {
		t.Fatal(err)
	}
	if b.OrderDigest == a1.OrderDigest {
		t.Errorf("different seeds produced the identical delivery order %s", b.OrderDigest)
	}
	// The uplink byte split between the two spines must move with the
	// seed: collect each seed's per-trunk uplink bytes and compare.
	shares := func(fr FabricRun) map[string]int64 {
		m := map[string]int64{}
		for _, ts := range fr.Trunks {
			m[ts.Name] = int64(ts.AB) + int64(ts.BA)
		}
		return m
	}
	if reflect.DeepEqual(shares(a1), shares(b)) {
		t.Errorf("different seeds, identical uplink byte shares: %v", shares(a1))
	}
}

// TestFabricPartitionHeal runs the spine-uplink partition/heal scenario:
// the flows hashed through the dead link must recover (RTO retries) and
// every byte still arrives exactly once — RunFabricScenario fails the
// run outright on any delivery error.
func TestFabricPartitionHeal(t *testing.T) {
	fr, err := RunFabricScenario(fabricPartition())
	if err != nil {
		t.Fatal(err)
	}
	if fr.RtoFires == 0 {
		t.Errorf("partition run: no RTO fires — the dead uplink cost nothing?")
	}
	if fr.TotalBytes == 0 {
		t.Errorf("partition run delivered no bytes")
	}
	// The partitioned trunk must actually carry flows (ECMP hashed some
	// of the incast its way), or the outage proved nothing.
	var partitioned, other int64
	for _, ts := range fr.Trunks {
		if ts.Name == "leaf0-spine1" {
			partitioned = int64(ts.AB) + int64(ts.BA)
		} else {
			other += int64(ts.AB) + int64(ts.BA)
		}
	}
	if partitioned == 0 || other == 0 {
		t.Errorf("trunk shares: partitioned link carried %d bytes, rest %d — want both nonzero", partitioned, other)
	}
}
