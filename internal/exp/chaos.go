package exp

import (
	"fmt"
	"strings"

	"repro/internal/fault/soak"
)

// ChaosResult is one soak case's outcome in the chaos table.
type ChaosResult struct {
	Outcome soak.Outcome
}

// RunChaos runs the full adversarial soak matrix: every fault surface,
// both protocols, both stack modes. It is the experiment-shaped wrapper
// around the soak suite, for the CLI.
func RunChaos() []ChaosResult {
	var rs []ChaosResult
	for _, c := range soak.Matrix() {
		rs = append(rs, ChaosResult{Outcome: soak.Run(c)})
	}
	return rs
}

// ChaosFailed reports whether any case violated an invariant.
func ChaosFailed(rs []ChaosResult) bool {
	for _, r := range rs {
		if len(r.Outcome.Failures) > 0 {
			return true
		}
	}
	return false
}

// FormatChaos renders the chaos table.
func FormatChaos(rs []ChaosResult) string {
	var b strings.Builder
	b.WriteString("Chaos soak: end-to-end recovery under injected faults\n")
	fmt.Fprintf(&b, "  %-18s %-6s %-10s %-7s %s\n", "case", "proto", "delivered", "status", "faults")
	for _, r := range rs {
		o := r.Outcome
		status := "ok"
		if len(o.Failures) > 0 {
			status = "FAIL"
		}
		faults := strings.TrimPrefix(o.Report, "fault injection: ")
		fmt.Fprintf(&b, "  %-18s %-6s %-10v %-7s %s\n",
			o.Case.Name, o.Case.Proto, o.Delivered, status, faults)
		for _, f := range o.Failures {
			fmt.Fprintf(&b, "      ! %s\n", f)
		}
	}
	return b.String()
}
