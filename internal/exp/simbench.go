package exp

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/cab"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fault/soak"
	"repro/internal/load"
	"repro/internal/obs/engine"
	"repro/internal/socket"
	"repro/internal/ttcp"
	"repro/internal/units"
)

// SimBench is the simulator self-observatory baseline (BENCH_sim.json): a
// fixed seeded workload matrix run under the engine meta-observer. Each
// workload's "deterministic" section is a pure function of the virtual
// event sequence and is exact-diffed by the simbench CI gate; the
// "advisory" section (wall-clock ns/event, events/sec, allocations) is
// machine- and Go-version-dependent, so benchdiff reports its drift but
// never fails on it. Together they are the wall-clock "before" picture
// for simulator-speed work: any change to how much real work the engine
// does per unit of simulated traffic shows up here first.
type SimBench struct {
	Workloads []SimWorkload `json:"workloads"`
}

// SimWorkload is one workload's engine meta-profile.
type SimWorkload struct {
	Name string `json:"name"`
	// Cases is the number of seeded testbeds folded into this entry (1
	// except for the soak matrix).
	Cases int `json:"cases"`
	// VirtualNs is the total simulated time covered.
	VirtualNs int64                `json:"virtual_ns"`
	Det       engine.Deterministic `json:"deterministic"`
	Adv       engine.Advisory      `json:"advisory"`
}

// simFig5 runs the Figure-5 single-copy transfer cell (64 KB read/write,
// 16 MB total) under the observer.
func simFig5(o *engine.Observer) (units.Time, error) {
	rw := 64 * units.KB
	tb := core.NewTestbed(1)
	tb.EnableEngineObs(o)
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mach: cost.Alpha400(),
		Mode: socket.ModeSingleCopy, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mach: cost.Alpha400(),
		Mode: socket.ModeSingleCopy, CABNode: 2})
	tb.RouteCAB(a, b)
	ttcp.Run(tb, a, b, ttcp.Params{
		Total: totalFor(rw), RWSize: rw,
		WithUtil: true, WithBackground: true,
	})
	return tb.Eng.Now(), nil
}

// simSoak runs the full 22-case recovery soak matrix through one
// observer, so the entry profiles the engine under faults, retransmission
// timers, and 64-flow contention. Any soak invariant violation fails the
// bench: a broken simulation's engine profile is meaningless.
func simSoak(o *engine.Observer) (units.Time, int, error) {
	var vtime units.Time
	cases := soak.Matrix()
	for i := range cases {
		cases[i].EngObs = o
		out := soak.Run(cases[i])
		if len(out.Failures) > 0 {
			return 0, 0, fmt.Errorf("soak %s: %s", cases[i].Name, out.Failures[0])
		}
		vtime += out.A.K.Eng.Now()
	}
	return vtime, len(cases), nil
}

// simLoadScenario is the simbench many-flow shape at the given scale:
// the mixed open-loop scenario of BENCH_load.json at 256 flows, and the
// TestLoad1024 scale-acceptance shape at 1024.
func simLoadScenario(flows int) load.Scenario {
	if flows == 1024 {
		return load.Scenario{
			Name:     "sim-1024",
			Seed:     9,
			Clients:  8,
			Servers:  4,
			Flows:    1024,
			UDPFrac:  0.25,
			Mode:     socket.ModeSingleCopy,
			Requests: 2,
			OpenLoop: true,
			Rate:     2000,
			Stagger:  units.Millisecond,
			Arbiter:  &cab.ArbConfig{},
		}
	}
	s := loadBenchMixed()
	s.Name = "sim-256"
	return s
}

// simLoad runs one many-flow scenario under the observer.
func simLoad(flows int, o *engine.Observer) (units.Time, error) {
	s := simLoadScenario(flows)
	s.EngObs = o
	rep, err := load.Run(s)
	if err != nil {
		return 0, err
	}
	if rep.Errors != 0 {
		return 0, fmt.Errorf("load %s: %d errors (%s)", rep.Name, rep.Errors, rep.FirstError)
	}
	return units.Time(rep.VTimeSec * 1e9), nil
}

// RunSimBench executes the simbench workload matrix. With quick set it
// runs only the cheap workloads (the Figure-5 cell and the 256-flow load
// run) — the shape the determinism test uses under -short.
func RunSimBench(quick bool) (SimBench, error) {
	var b SimBench
	add := func(name string, cases int, vtime units.Time, o *engine.Observer) {
		snap := o.Snapshot()
		b.Workloads = append(b.Workloads, SimWorkload{
			Name:      name,
			Cases:     cases,
			VirtualNs: int64(vtime),
			Det:       snap.Det,
			Adv:       snap.Adv,
		})
	}

	o := engine.New()
	vtime, err := simFig5(o)
	if err != nil {
		return b, err
	}
	add("fig5-xfer", 1, vtime, o)

	if !quick {
		o = engine.New()
		vtime, n, err := simSoak(o)
		if err != nil {
			return b, err
		}
		add("soak-matrix", n, vtime, o)
	}

	o = engine.New()
	if vtime, err = simLoad(256, o); err != nil {
		return b, err
	}
	add("load-256", 1, vtime, o)

	if !quick {
		o = engine.New()
		if vtime, err = simLoad(1024, o); err != nil {
			return b, err
		}
		add("load-1024", 1, vtime, o)
	}
	return b, nil
}

// JSON renders the baseline file.
func (b SimBench) JSON() []byte {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(out, '\n')
}

// simWorkloadDet is a workload stripped to its exact-diffable fields.
type simWorkloadDet struct {
	Name      string               `json:"name"`
	Cases     int                  `json:"cases"`
	VirtualNs int64                `json:"virtual_ns"`
	Det       engine.Deterministic `json:"deterministic"`
}

// DeterministicJSON renders only the deterministic sections — the bytes
// the engine-counter determinism oracle compares across same-seed runs.
func (b SimBench) DeterministicJSON() []byte {
	var ws []simWorkloadDet
	for _, w := range b.Workloads {
		ws = append(ws, simWorkloadDet{Name: w.Name, Cases: w.Cases, VirtualNs: w.VirtualNs, Det: w.Det})
	}
	out, err := json.MarshalIndent(ws, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(out, '\n')
}

// Format renders a human summary.
func (b SimBench) Format() string {
	var sb strings.Builder
	sb.WriteString("Simulator self-observatory (wall-clock meta-profile):\n")
	for _, w := range b.Workloads {
		fmt.Fprintf(&sb, "  %-12s cases=%-2d vtime=%8.3fs  events=%9d  queue hw %5d  timer hw %4d  kern charges %8d\n",
			w.Name, w.Cases, float64(w.VirtualNs)/1e9, w.Det.EventsTotal,
			w.Det.QueueDepthHW, w.Det.PendingHW.Timer, w.Det.KernCharges)
		fmt.Fprintf(&sb, "  %-12s   by kind: proc %d, timer %d, wire %d, dma %d, generic %d\n",
			"", w.Det.Events.Proc, w.Det.Events.Timer, w.Det.Events.Wire, w.Det.Events.DMA, w.Det.Events.Generic)
		fmt.Fprintf(&sb, "  %-12s   advisory: %.1f ms wall, %.0f events/sec, %.1f ns/event, %.2f allocs/event\n",
			"", float64(w.Adv.WallNs)/1e6, w.Adv.EventsPerSec, w.Adv.NsPerEvent, w.Adv.AllocsPerEv)
	}
	return sb.String()
}
