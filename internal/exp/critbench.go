package exp

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/cab"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/obs/critpath"
	"repro/internal/socket"
	"repro/internal/ttcp"
	"repro/internal/units"
)

// CritBench is the critical-path latency baseline (BENCH_critpath.json):
// the Figure-5 size sweep in both stack modes plus a 64-flow incast, each
// cell reduced to its per-cause latency attribution. Everything except the
// "advisory" analysis wall time is a pure function of the virtual event
// sequence, so benchdiff exact-diffs it — the per-cause nanoseconds ARE the
// paper's claim restated as latency: the single-copy cells commit
// sender_cpu_copy_ns = 0 and sender_cpu_csum_ns = 0, the unmodified cells
// commit where those nanoseconds went instead.
type CritBench struct {
	Cells []CritCell `json:"cells"`
}

// CritCell is one workload's critical-path reduction.
type CritCell struct {
	Name        string `json:"name"`
	Mode        string `json:"mode"`
	RWSizeBytes int64  `json:"rwsize_bytes,omitempty"`
	Flows       int    `json:"flows,omitempty"`
	// Transfers is the number of completed messages (read returns) whose
	// critical paths were extracted; Events is the happens-before graph
	// size backing them.
	Transfers int   `json:"transfers"`
	Events    int   `json:"events"`
	TotalNs   int64 `json:"total_ns"` // summed path latencies
	// LastPathNs is the connection-completion path: the last message's
	// end-to-end latency, whose back-walk spans the whole transfer.
	LastPathNs int64 `json:"last_path_ns"`
	LastSteps  int   `json:"last_steps"`
	// Sender-side data-touching time on the critical path (Table 1's copy
	// elimination as a latency statement; host A is always the sender).
	SenderCopyNs int64 `json:"sender_cpu_copy_ns"`
	SenderCsumNs int64 `json:"sender_cpu_csum_ns"`
	// ByCause is the full attribution across all paths, cause-index order,
	// zero classes omitted. It sums exactly to TotalNs.
	ByCause []critpath.CauseNs `json:"by_cause"`
	Adv     critAdv            `json:"advisory"`
}

// critAdv holds the cell's wall-clock cost of analysis — machine-dependent,
// reported but never gated.
type critAdv struct {
	AnalyzeWallNs int64 `json:"analyze_wall_ns"`
}

// critCell reduces one recorder to a cell.
func critCell(name, mode string, rw units.Size, flows int, rec *obs.CritRec) CritCell {
	t0 := time.Now()
	rep := critpath.Analyze(rec)
	cell := CritCell{
		Name: name, Mode: mode,
		RWSizeBytes: int64(rw), Flows: flows,
		Transfers: len(rep.Paths),
		Events:    len(rec.Events()),
		TotalNs:   int64(rep.Total),
		ByCause:   critpath.Causes(rep.ByCause),
	}
	if last := rep.Last(); last != nil {
		cell.LastPathNs = int64(last.Total())
		cell.LastSteps = len(last.Steps)
	}
	for i := range rep.Paths {
		cell.SenderCopyNs += int64(rep.Paths[i].CauseOn("A", obs.CauseCPUCopy))
		cell.SenderCsumNs += int64(rep.Paths[i].CauseOn("A", obs.CauseCPUCsum))
	}
	cell.Adv.AnalyzeWallNs = time.Since(t0).Nanoseconds()
	return cell
}

// CritRun performs one fig5-style transfer with the causal recorder enabled
// and returns the recorder. Deterministic: the same (mode, rw, seed) always
// yields the same event sequence.
func CritRun(mode socket.Mode, rw units.Size, seed int64) *obs.CritRec {
	tb := core.NewTestbed(seed)
	rec := tb.EnableCritPath()
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mach: cost.Alpha400(),
		Mode: mode, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mach: cost.Alpha400(),
		Mode: mode, CABNode: 2})
	tb.RouteCAB(a, b)
	ttcp.Run(tb, a, b, ttcp.Params{
		Total: totalFor(rw), RWSize: rw,
		WithUtil: true, WithBackground: true,
	})
	return rec
}

// critIncast is the 64-flow incast cell: 64 request/response flows from 8
// clients converging on one server under the netmem arbiter, single-copy
// stack — the contention shape where queue/netmem causes climb onto the
// critical path.
func critIncast() (*obs.CritRec, error) {
	rep, err := load.Run(load.Scenario{
		Name:     "incast64",
		Seed:     11,
		Clients:  8,
		Servers:  1,
		Flows:    64,
		Mode:     socket.ModeSingleCopy,
		Requests: 2,
		Stagger:  units.Millisecond,
		Arbiter:  &cab.ArbConfig{},
		CritPath: true,
	})
	if err != nil {
		return nil, err
	}
	if rep.Errors != 0 {
		return nil, fmt.Errorf("incast64: %d errors (%s)", rep.Errors, rep.FirstError)
	}
	return rep.Crit, nil
}

// RunCritPath executes the critical-path workload matrix. With quick set it
// sweeps three sizes instead of the full Figure-5 grid (the shape the
// determinism test uses under -short).
func RunCritPath(quick bool) (CritBench, error) {
	sizes := DefaultSizes()
	if quick {
		sizes = []units.Size{4 * units.KB, 64 * units.KB, 256 * units.KB}
	}
	var b CritBench
	for _, m := range []struct {
		mode  socket.Mode
		label string
	}{
		{socket.ModeUnmodified, "unmodified"},
		{socket.ModeSingleCopy, "single_copy"},
	} {
		for i, rw := range sizes {
			rec := CritRun(m.mode, rw, int64(3000+i))
			b.Cells = append(b.Cells,
				critCell(fmt.Sprintf("fig5/%s/%d", m.label, int64(rw)), m.label, rw, 0, rec))
		}
	}
	rec, err := critIncast()
	if err != nil {
		return b, err
	}
	b.Cells = append(b.Cells, critCell("incast64", "single_copy", 0, 64, rec))
	return b, nil
}

// JSON renders the baseline file.
func (b CritBench) JSON() []byte {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(out, '\n')
}

// critCellDet is a cell stripped to its exact-diffable fields.
type critCellDet struct {
	Name         string             `json:"name"`
	Mode         string             `json:"mode"`
	RWSizeBytes  int64              `json:"rwsize_bytes,omitempty"`
	Flows        int                `json:"flows,omitempty"`
	Transfers    int                `json:"transfers"`
	Events       int                `json:"events"`
	TotalNs      int64              `json:"total_ns"`
	LastPathNs   int64              `json:"last_path_ns"`
	LastSteps    int                `json:"last_steps"`
	SenderCopyNs int64              `json:"sender_cpu_copy_ns"`
	SenderCsumNs int64              `json:"sender_cpu_csum_ns"`
	ByCause      []critpath.CauseNs `json:"by_cause"`
}

// DeterministicJSON renders only the deterministic fields — the bytes the
// twice-run determinism test compares.
func (b CritBench) DeterministicJSON() []byte {
	var cs []critCellDet
	for _, c := range b.Cells {
		cs = append(cs, critCellDet{
			Name: c.Name, Mode: c.Mode, RWSizeBytes: c.RWSizeBytes, Flows: c.Flows,
			Transfers: c.Transfers, Events: c.Events, TotalNs: c.TotalNs,
			LastPathNs: c.LastPathNs, LastSteps: c.LastSteps,
			SenderCopyNs: c.SenderCopyNs, SenderCsumNs: c.SenderCsumNs,
			ByCause: c.ByCause,
		})
	}
	out, err := json.MarshalIndent(cs, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(out, '\n')
}

// Format renders a human summary: one line per cell plus its top causes.
func (b CritBench) Format() string {
	var sb strings.Builder
	sb.WriteString("Critical-path latency attribution:\n")
	for _, c := range b.Cells {
		fmt.Fprintf(&sb, "  %-26s transfers=%-4d last-path=%8.1fus snd-copy=%6.1fus snd-csum=%6.1fus\n",
			c.Name, c.Transfers, float64(c.LastPathNs)/1e3,
			float64(c.SenderCopyNs)/1e3, float64(c.SenderCsumNs)/1e3)
		fmt.Fprintf(&sb, "  %-26s   by cause:", "")
		for _, cn := range c.ByCause {
			fmt.Fprintf(&sb, " %s=%.1f%%", cn.Cause, 100*float64(cn.Ns)/float64(c.TotalNs))
		}
		fmt.Fprintln(&sb)
	}
	return sb.String()
}
