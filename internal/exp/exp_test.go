package exp

import (
	"testing"

	"repro/internal/units"
)

// quickSizes keeps figure tests fast while spanning the interesting range.
var quickSizes = []units.Size{4 * units.KB, 16 * units.KB, 64 * units.KB, 256 * units.KB}

func TestFigure5ShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep is long")
	}
	fig := Figure5(quickSizes)
	t.Logf("\n%s", fig.Format())
	un, mod, raw := fig.Series["Unmodified"], fig.Series["Modified"], fig.Series["RawHIPPI"]
	last := len(quickSizes) - 1

	// Claim 1: for large writes the single-copy stack is ≳2.3× more
	// efficient ("almost three times").
	ratio := float64(mod[last].Efficiency) / float64(un[last].Efficiency)
	if ratio < 2.2 {
		t.Errorf("large-write efficiency ratio = %.2f, want ≥ 2.2", ratio)
	}

	// Claim 2: throughputs are comparable for large writes (the paper:
	// "the two stacks give similar throughputs"; ours has the modified
	// stack moderately ahead, consistent with its lower CPU demand).
	tr := mod[last].Throughput.Mbit() / un[last].Throughput.Mbit()
	if tr < 0.8 || tr > 1.6 {
		t.Errorf("large-write throughput ratio = %.2f, want ≈1-1.5", tr)
	}

	// Claim 3: the modified stack's utilization is far lower at large
	// sizes.
	if mod[last].Utilization >= un[last].Utilization*0.75 {
		t.Errorf("modified utilization %.2f should be well below unmodified %.2f",
			mod[last].Utilization, un[last].Utilization)
	}

	// Claim 4: raw HIPPI bounds both stacks' throughput at every size.
	for i := range quickSizes {
		if raw[i].Throughput < mod[i].Throughput*95/100 ||
			raw[i].Throughput < un[i].Throughput*95/100 {
			t.Errorf("raw HIPPI slower than a stack at %v", quickSizes[i])
		}
	}

	// Claim 5: efficiency crossover exists and falls between 4KB and 32KB.
	x, ok := fig.Crossover()
	if !ok {
		t.Error("no efficiency crossover found")
	} else if x < 4*units.KB || x > 32*units.KB {
		t.Errorf("crossover at %v, want 4KB..32KB (paper: 8-16KB)", x)
	}
}

func TestFigure6SlowMachineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep is long")
	}
	sizes := []units.Size{64 * units.KB, 256 * units.KB}
	fig := Figure6(sizes)
	t.Logf("\n%s", fig.Format())
	un, mod := fig.Series["Unmodified"], fig.Series["Modified"]
	// Claim: on the half-speed machine the CPU is the bottleneck, so the
	// more efficient single-copy stack achieves HIGHER throughput.
	for i := range sizes {
		if mod[i].Throughput <= un[i].Throughput {
			t.Errorf("at %v modified throughput %.1f ≤ unmodified %.1f; want higher on 3000/300",
				sizes[i], mod[i].Throughput.Mbit(), un[i].Throughput.Mbit())
		}
	}
}

func TestTable2Measurement(t *testing.T) {
	rows := MeasureTable2()
	t.Logf("\n%s", FormatTable2(rows))
	for _, r := range rows {
		if r.Base < r.PaperBase*0.9 || r.Base > r.PaperBase*1.1 {
			t.Errorf("%s base %.1f, paper %.1f", r.Operation, r.Base, r.PaperBase)
		}
		if r.PerPage < r.PaperPerPage*0.9 || r.PerPage > r.PaperPerPage*1.1 {
			t.Errorf("%s per-page %.2f, paper %.2f", r.Operation, r.PerPage, r.PaperPerPage)
		}
	}
}

func TestHOLClaim(t *testing.T) {
	r := RunHOL(32, 10000, 17)
	t.Logf("\n%s", FormatHOL([]HOLResult{r}))
	if r.FIFOUtilization < 0.54 || r.FIFOUtilization > 0.64 {
		t.Errorf("FIFO utilization %.3f, want ≈0.586", r.FIFOUtilization)
	}
	if r.ChannelsUtilization < 0.9 {
		t.Errorf("logical channels %.3f, want >0.9", r.ChannelsUtilization)
	}
}

func TestLazyPinAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is long")
	}
	pts := RunLazyPinAblation()
	t.Logf("\n%s", FormatLazyPin(pts))
	if pts[1].Efficiency <= pts[0].Efficiency {
		t.Errorf("lazy pinning efficiency %.1f should beat eager %.1f",
			pts[1].Efficiency.Mbit(), pts[0].Efficiency.Mbit())
	}
	if pts[1].PinHits == 0 {
		t.Error("expected pin-cache hits with a reused buffer")
	}
}

func TestThresholdAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is long")
	}
	pts := RunThresholdAblation([]units.Size{2 * units.KB, 64 * units.KB})
	t.Logf("\n%s", FormatThreshold(pts))
	// At 2KB writes the threshold (copy path) should not hurt, and at
	// 64KB the two configurations behave the same (both UIO).
	small, large := pts[0], pts[1]
	if small.WithThreshold < small.ForcedUIO*85/100 {
		t.Errorf("threshold hurts small writes: %.1f vs %.1f",
			small.WithThreshold.Mbit(), small.ForcedUIO.Mbit())
	}
	diff := float64(large.WithThreshold) / float64(large.ForcedUIO)
	if diff < 0.9 || diff > 1.1 {
		t.Errorf("threshold should not matter at 64KB: ratio %.2f", diff)
	}
}

func TestFigureCSV(t *testing.T) {
	fig := Figure{
		Name: "t", Machine: "m",
		Sizes:  []units.Size{4 * units.KB},
		Order:  []string{"Unmodified"},
		Series: map[string][]Point{"Unmodified": {{RWSize: 4 * units.KB, Throughput: 100e6, Utilization: 0.5, Efficiency: 200e6}}},
	}
	csv := fig.CSV()
	want := "Unmodified,4096,100.00,0.5000,200.00\n"
	if csv != "series,rwsize_bytes,throughput_mbps,utilization,efficiency_mbps\n"+want {
		t.Fatalf("csv:\n%s", csv)
	}
}
