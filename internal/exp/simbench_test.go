package exp

import (
	"bytes"
	"testing"
)

// TestSimBenchDeterminism runs the simbench workload matrix twice and
// requires the deterministic sections (event counts by kind, queue
// high-waters, kernel charges, virtual time) to be byte-identical — the
// property the CI gate's exact diff of BENCH_sim.json rests on. Under
// -short only the quick matrix (fig5 + 256-flow load) runs; the full run
// adds the soak matrix and the 1024-flow scenario.
func TestSimBenchDeterminism(t *testing.T) {
	quick := testing.Short()
	a, err := RunSimBench(quick)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := RunSimBench(quick)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	ja, jb := a.DeterministicJSON(), b.DeterministicJSON()
	if !bytes.Equal(ja, jb) {
		t.Fatalf("deterministic sections differ between same-seed runs:\n--- first\n%s\n--- second\n%s", ja, jb)
	}
	for _, w := range a.Workloads {
		if w.Det.EventsTotal == 0 {
			t.Fatalf("workload %s observed no events", w.Name)
		}
		if w.VirtualNs == 0 {
			t.Fatalf("workload %s recorded no virtual time", w.Name)
		}
	}
}
