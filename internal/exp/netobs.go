package exp

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/load"
	"repro/internal/obs/netobs"
)

// NetObsBench is the transport-dynamics baseline (BENCH_netobs.json): the
// congestion postmortems of the PR-5 fairness incast pair. The baseline
// run's starved elephants must come out netmem-starved (RTO fires against
// a memory-dropping receiver); the arbitrated run must come out all
// healthy. Everything inside is a deterministic function of the seeded
// scenarios, so the benchdiff gate exact-diffs the file.
type NetObsBench struct {
	// Per-run one-line context, so a verdict flip is readable next to
	// the fairness numbers it explains.
	BaselineJain    float64 `json:"baseline_jain"`
	BaselineStarved int     `json:"baseline_starved"`
	ArbiterJain     float64 `json:"arbiter_jain"`
	ArbiterStarved  int     `json:"arbiter_starved"`

	Baseline *netobs.Postmortem `json:"fair_baseline"`
	Arbiter  *netobs.Postmortem `json:"fair_arbiter"`
}

// RunNetObs executes the incast/fairness pair with the transport-dynamics
// observatory on and returns both postmortems.
func RunNetObs() (NetObsBench, error) {
	var b NetObsBench

	base := loadBenchFair(false)
	base.Name = "netobs-fair"
	base.NetObs = true
	rb, err := load.Run(base)
	if err != nil {
		return b, err
	}
	b.Baseline = rb.NetObs
	b.BaselineJain = rb.Jain
	b.BaselineStarved = rb.Starved

	arb := loadBenchFair(true)
	arb.Name = "netobs-fair-arb"
	arb.NetObs = true
	ra, err := load.Run(arb)
	if err != nil {
		return b, err
	}
	if ra.Errors != 0 {
		return b, fmt.Errorf("netobs bench %s: %d errors (%s)", ra.Name, ra.Errors, ra.FirstError)
	}
	b.Arbiter = ra.NetObs
	b.ArbiterJain = ra.Jain
	b.ArbiterStarved = ra.Starved
	return b, nil
}

// JSON renders the baseline file.
func (b NetObsBench) JSON() []byte {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(out, '\n')
}

// Format renders a human summary.
func (b NetObsBench) Format() string {
	var sb strings.Builder
	sb.WriteString("Transport-dynamics postmortems (internal/obs/netobs):\n")
	row := func(name string, jain float64, starved int, pm *netobs.Postmortem) {
		counts := map[string]int{}
		for i := range pm.Flows {
			counts[pm.Flows[i].Verdict]++
		}
		fmt.Fprintf(&sb, "  %-16s jain=%.4f starved=%d verdicts:", name, jain, starved)
		for _, v := range []string{netobs.VerdictHealthy, netobs.VerdictNetmemStarved,
			netobs.VerdictRTOBound, netobs.VerdictWindowBound, netobs.VerdictPortContended} {
			if counts[v] > 0 {
				fmt.Fprintf(&sb, " %s=%d", v, counts[v])
			}
		}
		sb.WriteByte('\n')
		sb.WriteString(indent(pm.Format(), "  "))
	}
	row("netobs-fair", b.BaselineJain, b.BaselineStarved, b.Baseline)
	row("netobs-fair-arb", b.ArbiterJain, b.ArbiterStarved, b.Arbiter)
	return sb.String()
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}
