package exp

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/cab"
	"repro/internal/load"
	"repro/internal/socket"
	"repro/internal/units"
)

// LoadBench is the many-flow workload baseline (BENCH_load.json): the
// aggregate report of a 256-flow mixed TCP/UDP open-loop scenario plus the
// fairness demonstration pair (the same netmem-starved incast run without
// and with the arbiter). Everything inside is a deterministic function of
// the scenarios, so unchanged code regenerates the file byte-for-byte; the
// benchdiff gate allows small relative drift on the throughput and latency
// leaves and none on the structure, counters, or order digests.
type LoadBench struct {
	Mixed        *load.Report `json:"mixed_256"`
	FairBaseline *load.Report `json:"fair_baseline"`
	FairArbiter  *load.Report `json:"fair_arbiter"`
}

// loadBenchMixed is the steady-state many-flow scenario: 256 mixed
// TCP/UDP flows, open-loop Poisson arrivals, heavy-tailed sizes, netmem
// arbiter on.
func loadBenchMixed() load.Scenario {
	return load.Scenario{
		Name:     "bench-mixed-256",
		Seed:     42,
		Clients:  4,
		Servers:  2,
		Flows:    256,
		UDPFrac:  0.25,
		Mode:     socket.ModeSingleCopy,
		Requests: 2,
		OpenLoop: true,
		Rate:     2000,
		Stagger:  500 * units.Microsecond,
		Arbiter:  &cab.ArbConfig{},
	}
}

// loadBenchFair is the netmem-starved incast from the fairness acceptance
// test: 8 TCP elephants vs 3 slow-reader UDP blasters into one small
// adaptor memory. arb toggles the arbiter.
func loadBenchFair(arb bool) load.Scenario {
	s := load.Scenario{
		Name:           "bench-fair",
		Seed:           5,
		Clients:        11,
		Servers:        1,
		Flows:          11,
		UDPFrac:        0.27,
		Mode:           socket.ModeSingleCopy,
		Bulk:           true,
		Duration:       120 * units.Millisecond,
		Warmup:         20 * units.Millisecond,
		Stagger:        60 * units.Millisecond,
		BulkWrite:      16 * units.KB,
		UDPServerThink: 45 * units.Millisecond,
		Window:         16 * units.KB,
		CABConfig: &cab.Config{
			MemSize:    512 * units.KB,
			PageSize:   8 * units.KB,
			AutoDMALen: 784,
			RxCsumSkip: 80,
			Channels:   8,
		},
	}
	if arb {
		s.Name = "bench-fair-arb"
		s.Arbiter = &cab.ArbConfig{}
	}
	return s
}

// RunLoadBench executes the workload baselines.
func RunLoadBench() (LoadBench, error) {
	var b LoadBench
	var err error
	if b.Mixed, err = load.Run(loadBenchMixed()); err != nil {
		return b, err
	}
	if b.FairBaseline, err = load.Run(loadBenchFair(false)); err != nil {
		return b, err
	}
	if b.FairArbiter, err = load.Run(loadBenchFair(true)); err != nil {
		return b, err
	}
	// The arbiter-less fairness baseline is exempt: starvation-induced
	// connection timeouts are the phenomenon it demonstrates.
	for _, r := range []*load.Report{b.Mixed, b.FairArbiter} {
		if r.Errors != 0 {
			return b, fmt.Errorf("load bench %s: %d errors (%s)", r.Name, r.Errors, r.FirstError)
		}
	}
	return b, nil
}

// JSON renders the baseline file.
func (b LoadBench) JSON() []byte {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(out, '\n')
}

// Format renders a human summary.
func (b LoadBench) Format() string {
	var sb strings.Builder
	row := func(r *load.Report) {
		fmt.Fprintf(&sb, "  %-16s flows=%-4d goodput p50/max %7.2f/%7.2f Mb/s  lat p50/p99 %8.1f/%8.1f us  jain=%.4f starved=%d drops=%d\n",
			r.Name, r.Flows, r.GoodputP50Mbps, r.GoodputMaxMbps, r.LatP50Us, r.LatP99Us, r.Jain, r.Starved, r.Drops)
	}
	sb.WriteString("Many-flow workload engine (internal/load):\n")
	row(b.Mixed)
	row(b.FairBaseline)
	row(b.FairArbiter)
	return sb.String()
}
