package exp

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/load"
	"repro/internal/obs/netobs"
)

// TestNetObsIncastVerdicts machine-checks the postmortem against the
// fairness pair's ground truth: in the unarbitrated incast every starved
// elephant (zero delivered bytes after warmup) must be diagnosed as
// netmem-starved or RTO-bound, and in the arbitrated run every flow must
// come out healthy. This is the analyzer's acceptance test — the verdicts
// have to agree with what the goodput numbers independently prove.
func TestNetObsIncastVerdicts(t *testing.T) {
	base := loadBenchFair(false)
	base.Name = "netobs-fair"
	base.NetObs = true
	rb, err := load.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if rb.NetObs == nil {
		t.Fatal("baseline run carried no postmortem")
	}
	// Client flow i runs on host C(i mod Clients) and its netobs row keys
	// on (host, client local port, server port).
	verdictOf := func(rep *load.Report, f load.FlowReport) string {
		host := fmt.Sprintf("C%d", f.ID%base.Clients)
		return rep.NetObs.Verdict(host, f.Port, 5001)
	}
	starved := 0
	for _, f := range rb.PerFlow {
		if f.Proto != "tcp" {
			continue
		}
		v := verdictOf(rb, f)
		if v == "" {
			t.Errorf("baseline flow %d (port %d): no verdict row", f.ID, f.Port)
			continue
		}
		if f.Bytes == 0 {
			starved++
			if v != netobs.VerdictNetmemStarved && v != netobs.VerdictRTOBound {
				t.Errorf("starved flow %d diagnosed %q, want netmem-starved or RTO-bound", f.ID, v)
			}
		}
	}
	if starved == 0 {
		t.Fatal("vacuous: baseline starved no TCP flow")
	}

	arb := loadBenchFair(true)
	arb.Name = "netobs-fair-arb"
	arb.NetObs = true
	ra, err := load.Run(arb)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Errors != 0 {
		t.Fatalf("arbitrated run errors: %d (%s)", ra.Errors, ra.FirstError)
	}
	for _, f := range ra.PerFlow {
		if f.Proto != "tcp" {
			continue
		}
		if v := verdictOf(ra, f); v != netobs.VerdictHealthy {
			t.Errorf("arbitrated flow %d diagnosed %q, want healthy", f.ID, v)
		}
	}
}

// TestNetObsBenchDeterminism pins the BENCH_netobs.json bytes: two
// RunNetObs invocations must render identically, which is what lets the
// benchdiff gate exact-diff the committed baseline.
func TestNetObsBenchDeterminism(t *testing.T) {
	b1, err := RunNetObs()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := RunNetObs()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.JSON(), b2.JSON()) {
		t.Fatal("BENCH_netobs.json bytes differ between identical runs")
	}
	if b1.BaselineStarved == 0 || b1.ArbiterStarved != 0 {
		t.Fatalf("fairness shape: baseline starved=%d arbiter starved=%d",
			b1.BaselineStarved, b1.ArbiterStarved)
	}
}
