package mbuf

import (
	"fmt"

	"repro/internal/units"
)

// ChainLen returns the total data length of the chain headed by m.
func ChainLen(m *Mbuf) units.Size {
	var n units.Size
	for ; m != nil; m = m.next {
		n += m.ln
	}
	return n
}

// ChainCount returns the number of mbufs in the chain.
func ChainCount(m *Mbuf) int {
	n := 0
	for ; m != nil; m = m.next {
		n++
	}
	return n
}

// Last returns the final mbuf of the chain.
func Last(m *Mbuf) *Mbuf {
	if m == nil {
		return nil
	}
	for m.next != nil {
		m = m.next
	}
	return m
}

// Cat appends chain b to chain a and returns the head. Either may be nil.
func Cat(a, b *Mbuf) *Mbuf {
	if a == nil {
		return b
	}
	Last(a).next = b
	return a
}

// clone returns a copy of a single mbuf restricted to [off, off+n) of its
// data window, sharing external storage (cluster, UIO region, outboard
// packet) and copying internal storage. This is the m_copy behaviour the
// transmit path depends on: copies are symbolic for everything external.
func (m *Mbuf) clone(off, n units.Size) *Mbuf {
	if off < 0 || n < 0 || off+n > m.ln {
		panic(fmt.Sprintf("mbuf: clone [%v,+%v) outside %v", off, n, m.ln))
	}
	switch m.typ {
	case TData:
		return NewData(m.Bytes()[off : off+n])
	case TCluster:
		m.cl.refs++
		return &Mbuf{typ: TCluster, cl: m.cl, off: m.off + off, ln: n, hdr: m.hdr}
	case TUIO:
		return &Mbuf{typ: TUIO, uio: m.uio, off: m.off + off, ln: n, hdr: m.hdr}
	case TWCAB:
		m.wcab.Ref()
		return &Mbuf{typ: TWCAB, wcab: m.wcab, off: m.off + off, ln: n, hdr: m.hdr}
	default:
		panic("mbuf: unknown type")
	}
}

// CopyRange returns a new chain referencing bytes [off, off+n) of the
// chain headed by m. External storage is shared (reference counted), not
// copied — this is the paper's "search the transmit queue for a block of
// data at a specific offset" routine, which must handle mixed chains
// including M_WCAB mbufs during retransmission (Section 4.2).
func CopyRange(m *Mbuf, off, n units.Size) *Mbuf {
	if n == 0 {
		return nil
	}
	var head, tail *Mbuf
	for cur := m; cur != nil && n > 0; cur = cur.next {
		if off >= cur.ln {
			off -= cur.ln
			continue
		}
		take := cur.ln - off
		if take > n {
			take = n
		}
		c := cur.clone(off, take)
		if head == nil {
			head = c
		} else {
			tail.next = c
		}
		tail = c
		n -= take
		off = 0
	}
	if n > 0 {
		panic(fmt.Sprintf("mbuf: CopyRange ran out of chain with %v left", n))
	}
	return head
}

// AdjFront removes n bytes from the front of the chain and returns the new
// head, freeing fully-consumed mbufs. Used when acknowledged data is
// dropped from a socket buffer.
//
// M_UIO bytes dropped here have their owners notified: data can only be
// acknowledged after it was transmitted, which on every path implies the
// user's bytes were already copied or DMAed out — so a writer blocked on
// the outstanding-DMA counter must be credited even if the driver's
// completion notification is still in flight (it will find the range gone
// and discard its conversion).
func AdjFront(m *Mbuf, n units.Size) *Mbuf {
	notify := func(mb *Mbuf, bytes units.Size) {
		if mb.typ == TUIO && mb.hdr != nil && mb.hdr.Owner != nil {
			mb.hdr.Owner.DMADone(bytes)
		}
	}
	for m != nil && n > 0 {
		if n < m.ln {
			notify(m, n)
			m.TrimFront(n)
			return m
		}
		n -= m.ln
		notify(m, m.ln)
		m = m.Free()
	}
	if n > 0 {
		panic(fmt.Sprintf("mbuf: AdjFront beyond chain by %v", n))
	}
	return m
}

// SplitAt splits the chain at byte offset n, returning the two halves.
// Descriptor mbufs are split symbolically. The first half keeps the packet
// header flag if present.
func SplitAt(m *Mbuf, n units.Size) (front, back *Mbuf) {
	if n == 0 {
		return nil, m
	}
	var tail *Mbuf
	front = m
	for cur := m; cur != nil; cur = cur.next {
		if n < cur.ln {
			// Split inside cur: clone the back part.
			b := cur.clone(n, cur.ln-n)
			b.next = cur.next
			cur.TrimBack(cur.ln - n)
			cur.next = nil
			return front, b
		}
		n -= cur.ln
		tail = cur
		if n == 0 {
			back = cur.next
			tail.next = nil
			return front, back
		}
	}
	panic(fmt.Sprintf("mbuf: SplitAt beyond chain by %v", n))
}

// ReadRange copies n bytes starting at chain offset off into dst, for
// byte-holding and descriptor mbufs alike (descriptors are dereferenced
// through their UIO region or outboard read function). This is the
// materialization primitive used by integrity checks and by conversion
// shims; the caller is responsible for charging the corresponding cost.
func ReadRange(m *Mbuf, off, n units.Size, dst []byte) {
	if units.Size(len(dst)) < n {
		panic("mbuf: ReadRange destination too small")
	}
	var done units.Size
	for cur := m; cur != nil && n > 0; cur = cur.next {
		if off >= cur.ln {
			off -= cur.ln
			continue
		}
		take := cur.ln - off
		if take > n {
			take = n
		}
		out := dst[done : done+take]
		switch cur.typ {
		case TData, TCluster:
			copy(out, cur.Bytes()[off:off+take])
		case TUIO:
			cur.uio.ReadAt(out, cur.off+off, take)
		case TWCAB:
			if cur.wcab.ReadFn == nil {
				panic("mbuf: WCAB mbuf has no read function")
			}
			copy(out, cur.wcab.ReadFn(cur.off+off, take))
		}
		done += take
		n -= take
		off = 0
	}
	if n > 0 {
		panic(fmt.Sprintf("mbuf: ReadRange ran out of chain with %v left", n))
	}
}

// Materialize returns the chain's full contents as a fresh byte slice.
func Materialize(m *Mbuf) []byte {
	n := ChainLen(m)
	b := make([]byte, n)
	ReadRange(m, 0, n, b)
	return b
}

// HasDescriptors reports whether any mbuf in the chain is a descriptor
// (M_UIO or M_WCAB) — i.e. whether a traditional driver or in-kernel
// application would mis-handle it (Section 5).
func HasDescriptors(m *Mbuf) bool {
	for ; m != nil; m = m.next {
		if m.typ.IsDescriptor() {
			return true
		}
	}
	return false
}

// Types returns the ordered storage types of the chain (diagnostics).
func Types(m *Mbuf) []Type {
	var ts []Type
	for ; m != nil; m = m.next {
		ts = append(ts, m.typ)
	}
	return ts
}
