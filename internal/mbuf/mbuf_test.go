package mbuf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/units"
)

func testSpace() *mem.AddrSpace {
	return mem.NewAddrSpace("user", 1*units.MB, 8*units.KB)
}

func seq(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func TestNewDataRoundTrip(t *testing.T) {
	b := seq(100)
	m := NewData(b)
	if m.Type() != TData || m.Len() != 100 {
		t.Fatalf("type=%v len=%v", m.Type(), m.Len())
	}
	if !bytes.Equal(m.Bytes(), b) {
		t.Fatal("data mismatch")
	}
}

func TestNewDataTooBigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewData(make([]byte, int(MLEN)+1))
}

func TestPrependInPlace(t *testing.T) {
	m := NewData(seq(10))
	m.MarkPktHdr(10)
	m2 := m.Prepend(20)
	if m2 != m {
		t.Fatal("prepend should reuse header room")
	}
	if m.Len() != 30 || m.PktLen() != 30 {
		t.Fatalf("len=%v pktlen=%v", m.Len(), m.PktLen())
	}
	copy(m.Bytes(), seq(20))
	if !bytes.Equal(m.Bytes()[20:], seq(10)) {
		t.Fatal("original data disturbed by prepend")
	}
}

func TestPrependNewMbufWhenNoRoom(t *testing.T) {
	u := mem.NewUIO(testSpace().Alloc(1000, 4))
	m := NewUIO(u, 0, 1000, nil)
	m.MarkPktHdr(1000)
	head := m.Prepend(40)
	if head == m {
		t.Fatal("descriptor mbuf cannot be prepended in place")
	}
	if head.Next() != m || head.Len() != 40 {
		t.Fatalf("bad new head: len=%v", head.Len())
	}
	if !head.IsPktHdr() || head.PktLen() != 1040 || m.IsPktHdr() {
		t.Fatal("packet header not migrated")
	}
}

func TestClusterSharingRefs(t *testing.T) {
	m := NewCluster(seq(4000))
	c := CopyRange(m, 1000, 2000)
	if c.Type() != TCluster {
		t.Fatalf("copy type = %v, want cluster", c.Type())
	}
	if m.cl.refs != 2 {
		t.Fatalf("refs = %d, want 2", m.cl.refs)
	}
	if !bytes.Equal(c.Bytes(), seq(4000)[1000:3000]) {
		t.Fatal("shared window wrong")
	}
	c.Free()
	if m.cl.refs != 1 {
		t.Fatalf("refs after free = %d, want 1", m.cl.refs)
	}
}

func TestWCABRefCounting(t *testing.T) {
	freed := false
	w := &WCAB{Valid: 100, FreeFn: func() { freed = true }}
	m := NewWCAB(w, 0, 100, nil)
	c := CopyRange(m, 50, 25)
	if w.Refs() != 2 {
		t.Fatalf("refs = %d, want 2", w.Refs())
	}
	FreeChain(m)
	if freed {
		t.Fatal("freed too early")
	}
	FreeChain(c)
	if !freed {
		t.Fatal("outboard packet not freed at last reference")
	}
}

func TestChainLenAndCat(t *testing.T) {
	a := NewData(seq(10))
	b := NewData(seq(20))
	c := Cat(a, b)
	if ChainLen(c) != 30 || ChainCount(c) != 2 {
		t.Fatalf("len=%v count=%v", ChainLen(c), ChainCount(c))
	}
	if Cat(nil, a) != a {
		t.Fatal("Cat(nil, a) should be a")
	}
}

func TestCopyRangeAcrossMixedChain(t *testing.T) {
	sp := testSpace()
	ub := sp.Alloc(300, 4)
	copy(ub.Bytes(), seq(300))
	u := mem.NewUIO(ub)

	w := &WCAB{Valid: 200}
	wdata := seq(200)
	for i := range wdata {
		wdata[i] ^= 0xaa
	}
	w.ReadFn = func(off, n units.Size) []byte { return wdata[off : off+n] }
	w.Ref() // baseline reference held by the "socket buffer"

	chain := Cat(Cat(NewData(seq(50)), NewUIO(u, 0, 300, nil)), NewWCAB(w, 0, 200, nil))
	whole := Materialize(chain)
	if units.Size(len(whole)) != 550 {
		t.Fatalf("materialized %d bytes, want 550", len(whole))
	}

	// Property: CopyRange materializes to the same bytes as the slice of
	// the full materialization, for random ranges.
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		off := units.Size(r.Intn(550))
		n := units.Size(r.Intn(int(550 - off)))
		c := CopyRange(chain, off, n)
		got := Materialize(c)
		if !bytes.Equal(got, whole[off:off+n]) {
			t.Fatalf("CopyRange(%v,%v) mismatch", off, n)
		}
		FreeChain(c)
	}
}

func TestAdjFront(t *testing.T) {
	chain := Cat(NewData(seq(100)), NewData(seq(100)))
	chain = AdjFront(chain, 150)
	if ChainLen(chain) != 50 || ChainCount(chain) != 1 {
		t.Fatalf("len=%v count=%v", ChainLen(chain), ChainCount(chain))
	}
	if !bytes.Equal(chain.Bytes(), seq(100)[50:]) {
		t.Fatal("wrong bytes after AdjFront")
	}
	chain = AdjFront(chain, 50)
	if chain != nil {
		t.Fatal("fully consumed chain should be nil")
	}
}

func TestAdjFrontFreesWCABRefs(t *testing.T) {
	freed := 0
	w := &WCAB{Valid: 100, FreeFn: func() { freed++ }}
	chain := Cat(NewWCAB(w, 0, 100, nil), NewData(seq(10)))
	chain = AdjFront(chain, 100)
	if freed != 1 {
		t.Fatalf("freed = %d, want 1", freed)
	}
	if ChainLen(chain) != 10 {
		t.Fatalf("remaining = %v, want 10", ChainLen(chain))
	}
}

func TestSplitAt(t *testing.T) {
	sp := testSpace()
	ub := sp.Alloc(1000, 4)
	copy(ub.Bytes(), seq(1000))
	u := mem.NewUIO(ub)
	chain := Cat(NewData(seq(100)), NewUIO(u, 0, 1000, nil))
	whole := Materialize(chain)

	front, back := SplitAt(chain, 600) // splits inside the UIO mbuf
	if ChainLen(front) != 600 || ChainLen(back) != 500 {
		t.Fatalf("front=%v back=%v", ChainLen(front), ChainLen(back))
	}
	got := append(Materialize(front), Materialize(back)...)
	if !bytes.Equal(got, whole) {
		t.Fatal("split lost bytes")
	}

	// Split exactly at an mbuf boundary.
	f2, b2 := SplitAt(front, 100)
	if ChainLen(f2) != 100 || ChainLen(b2) != 500 {
		t.Fatalf("boundary split: %v/%v", ChainLen(f2), ChainLen(b2))
	}
}

func TestSplitAtZero(t *testing.T) {
	m := NewData(seq(10))
	f, b := SplitAt(m, 0)
	if f != nil || b != m {
		t.Fatal("SplitAt 0 should return (nil, chain)")
	}
}

func TestHasDescriptors(t *testing.T) {
	sp := testSpace()
	u := mem.NewUIO(sp.Alloc(100, 4))
	plain := Cat(NewData(seq(10)), NewCluster(seq(100)))
	if HasDescriptors(plain) {
		t.Fatal("plain chain misreported")
	}
	mixed := Cat(NewData(seq(10)), NewUIO(u, 0, 100, nil))
	if !HasDescriptors(mixed) {
		t.Fatal("UIO chain not detected")
	}
}

func TestBytesOnDescriptorPanics(t *testing.T) {
	sp := testSpace()
	u := mem.NewUIO(sp.Alloc(100, 4))
	m := NewUIO(u, 0, 100, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = m.Bytes()
}

func TestReadRangeOffsets(t *testing.T) {
	chain := Cat(NewData(seq(64)), NewCluster(seq(256)))
	dst := make([]byte, 16)
	ReadRange(chain, 60, 16, dst)
	want := append(seq(64)[60:], seq(256)[:12]...)
	if !bytes.Equal(dst, want) {
		t.Fatalf("got %v want %v", dst, want)
	}
}

func TestSplitCopyRangeProperty(t *testing.T) {
	// Property: for random chains, SplitAt(n) preserves content and
	// lengths.
	f := func(lens []uint8, splitSeed uint16) bool {
		var chain *Mbuf
		total := units.Size(0)
		for _, l := range lens {
			n := int(l%100) + 1
			chain = Cat(chain, NewData(seq(n)))
			total += units.Size(n)
		}
		if chain == nil {
			return true
		}
		whole := Materialize(chain)
		n := units.Size(splitSeed) % (total + 1)
		front, back := SplitAt(chain, n)
		if ChainLen(front) != n || ChainLen(back) != total-n {
			return false
		}
		got := append(Materialize(front), Materialize(back)...)
		return bytes.Equal(got, whole)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTypesDiagnostics(t *testing.T) {
	sp := testSpace()
	u := mem.NewUIO(sp.Alloc(100, 4))
	chain := Cat(NewData(seq(10)), NewUIO(u, 0, 100, nil))
	ts := Types(chain)
	if len(ts) != 2 || ts[0] != TData || ts[1] != TUIO {
		t.Fatalf("types = %v", ts)
	}
	if ts[1].String() != "uio" {
		t.Fatalf("string = %q", ts[1].String())
	}
}
