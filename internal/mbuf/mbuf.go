// Package mbuf implements BSD-style network memory buffers, extended with
// the two new external mbuf types the paper introduces for the single-copy
// path (Section 4.2):
//
//   - M_UIO mbufs describe data that is still in the user's address space
//     (a struct uio region), and
//   - M_WCAB mbufs describe data that already lives in CAB network memory
//     (a wCAB structure holding the outboard packet identifier, its saved
//     body checksum, and how much of the outboard data is valid).
//
// Both carry a uiowCABhdr with the checksum placement information and the
// owner to notify when DMA completes. Because data of every format is
// represented as an mbuf, formatting operations (packetization, header
// prepend, trimming, symbolic range copies for retransmission) work
// uniformly over mixed chains, and the transport and network layers need
// almost no changes — exactly the property the paper exploits.
package mbuf

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/obs/ledger"
	"repro/internal/units"
)

// Storage geometry. MLEN follows the paper's mbuf data size of 176 32-bit
// words (the CAB's auto-DMA region is sized to it); clusters are one VM
// page.
const (
	// MLEN is the data capacity of a small (internal storage) mbuf.
	MLEN = 704 * units.Byte
	// HeaderRoom is the space reserved at the front of a packet-header
	// mbuf for link/network/transport headers.
	HeaderRoom = 128 * units.Byte
	// MCLBYTES is the data capacity of a cluster mbuf.
	MCLBYTES = 8 * units.KB
)

// Type identifies an mbuf's storage format.
type Type int

// Mbuf storage formats.
const (
	// TData is a regular mbuf with small internal storage.
	TData Type = iota
	// TCluster is an external-storage mbuf backed by a shared kernel
	// cluster.
	TCluster
	// TUIO is the paper's M_UIO: a descriptor for data in user space.
	TUIO
	// TWCAB is the paper's M_WCAB: a descriptor for data in CAB network
	// memory.
	TWCAB
)

func (t Type) String() string {
	switch t {
	case TData:
		return "data"
	case TCluster:
		return "cluster"
	case TUIO:
		return "uio"
	case TWCAB:
		return "wcab"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// IsDescriptor reports whether the type holds a descriptor rather than the
// bytes themselves.
func (t Type) IsDescriptor() bool { return t == TUIO || t == TWCAB }

// Notifier receives DMA life-cycle callbacks for descriptor mbufs; the
// socket layer implements it with the outstanding-DMA (UIO) counter that
// synchronizes application wakeup (Section 4.4.2).
type Notifier interface {
	// DMAStarted is called when a DMA covering part of the descriptor is
	// issued.
	DMAStarted(n units.Size)
	// DMADone is called when that DMA completes.
	DMADone(n units.Size)
}

// Hdr is the uiowCABhdr: checksum placement information plus the owner to
// notify, shared by M_UIO and M_WCAB mbufs (Section 4.2, 4.3).
type Hdr struct {
	// NeedCsum tells the driver the hardware must produce the transport
	// checksum during the copy into network memory.
	NeedCsum bool
	// CsumOff is the byte offset of the 16-bit checksum field within the
	// packet.
	CsumOff units.Size
	// CsumSkip is S: the number of bytes at the front of the packet the
	// checksum engine skips (all headers; the host covers them via the
	// seed).
	CsumSkip units.Size
	// CsumSeed is the partial sum of the skipped span (headers plus
	// pseudo-header), placed by the transport layer.
	CsumSeed uint32
	// Owner is notified as DMAs are issued and complete.
	Owner Notifier
	// Abandoned is set by a connection teardown that force-released the
	// descriptor's owner while packets referencing it may still be queued
	// at a driver. Segment copies share this header, so a driver seeing
	// the flag must drop the packet instead of DMAing from user pages
	// that the released writer has since unpinned.
	Abandoned bool

	// OnOutboard, set by the transport on a transmit packet, is invoked
	// (in interrupt context) once the packet's data resides in network
	// memory, passing the WCAB descriptor so the transport can convert
	// the corresponding socket-buffer range to M_WCAB for retransmission
	// (Section 4.2).
	OnOutboard func(w *WCAB)
	// FreeAfterSend tells the driver the outboard packet is not
	// retransmittable state (UDP, raw sends): free it once the media
	// transmission completes.
	FreeAfterSend bool
	// OnConverted, set by the transport on a transmit packet headed for a
	// legacy (non-single-copy) device, is invoked when the driver-entry
	// shim has materialized the packet's descriptors into kernel buffers,
	// so the transport can replace the corresponding socket-buffer range
	// and restore copy semantics (Section 5).
	OnConverted func(m *Mbuf)

	// Receive side: the CAB driver records the hardware checksum engine's
	// partial sum over the packet from the device's fixed skip offset, so
	// the transport can verify without reading the data (Section 4.3).
	HWRxValid bool
	HWRxSum   uint32

	// Span, when telemetry is enabled, follows the packet through the
	// data path (obs.Span); nil otherwise. Drivers hand it across the
	// hardware boundary so receive processing continues the same span.
	Span *obs.Span

	// CritEv, when the causal critical-path recorder is enabled, is the id
	// of the happens-before event that produced this chain's data (the
	// socket writer's enqueue event); 0 otherwise. The transport reads it
	// in Append so the segment spans it later cuts hang off the writer's
	// causal chain.
	CritEv int32

	// Prov, when the data-touch ledger is enabled, identifies the stream
	// byte range this packet carries (flow, offset, retransmit flag) so
	// drivers and devices can attribute their data touches; nil otherwise.
	Prov *ledger.Prov
	// DescID is the sosend descriptor id the data came from (0 when the
	// ledger is off or the data did not arrive via a descriptor write).
	DescID int64

	// Flow identifies the transport flow this packet belongs to (the data
	// sender's local port, matching the ledger convention) so the driver
	// and the netmem arbiter can account network-memory pages per flow.
	// Zero means "unattributed" (control traffic, fragments).
	Flow int
}

// WCAB is the paper's wCAB structure: the handle of a packet resident in
// network memory, its hardware-computed body checksum, and how much of the
// outboard data is valid.
type WCAB struct {
	// Handle identifies the packet in network memory (opaque to the
	// stack; owned by the CAB driver).
	Handle any
	// BodySum is the unfolded partial checksum of the packet body
	// (everything past CsumSkip) saved when the data first crossed into
	// network memory; it is what makes retransmission without re-reading
	// the data possible (Section 4.3).
	BodySum uint32
	// Valid is how many bytes of the outboard packet hold valid data.
	Valid units.Size
	// ReadFn returns outboard bytes [off, off+n); installed by the
	// driver, used for copy-out and integrity checks.
	ReadFn func(off, n units.Size) []byte
	// FreeFn releases the outboard packet when the last mbuf reference
	// drops (e.g. when TCP's acknowledgements free retransmit data).
	FreeFn func()
	// CopyOut, installed by the driver, DMAs outboard bytes [off, off+n)
	// into the host memory segments dst, invoking done in hardware
	// context when the transfer finishes. done receives nil on success, or
	// the reason the transfer could not complete (the adaptor was reset
	// mid-transfer and the outboard data is gone) — the destination bytes
	// are then undefined and the caller must not deliver them. This is the
	// driver "copy out" routine the paper's software architecture requires
	// (Section 3).
	CopyOut func(off, n units.Size, dst [][]byte, done func(error))
	// Dead, installed by the driver, reports that the outboard packet no
	// longer exists (the adaptor's firmware was reset): ReadFn yields
	// wiped bytes and CopyOut fails. nil means always live.
	Dead func() bool

	refs int
}

// Ref increments the reference count.
func (w *WCAB) Ref() { w.refs++ }

// Unref decrements the reference count, invoking FreeFn at zero.
func (w *WCAB) Unref() {
	if w.refs <= 0 {
		panic("mbuf: WCAB over-release")
	}
	w.refs--
	if w.refs == 0 && w.FreeFn != nil {
		w.FreeFn()
	}
}

// Refs returns the current reference count.
func (w *WCAB) Refs() int { return w.refs }

// cluster is shared external storage with a reference count.
type cluster struct {
	data []byte
	refs int
}

// Mbuf is one buffer in a chain. The zero value is not useful; use the
// New* constructors.
type Mbuf struct {
	typ  Type
	next *Mbuf

	// Internal/cluster storage: the data window is buf[off : off+ln].
	buf []byte
	cl  *cluster

	// Descriptor window: [off, off+ln) within the UIO's original
	// coordinates (TUIO) or within the outboard packet (TWCAB).
	uio  *mem.UIO
	wcab *WCAB

	off units.Size
	ln  units.Size

	hdr    *Hdr
	pktHdr bool
	pktLen units.Size
}

// NewData returns a regular mbuf holding a copy of b (which must fit in
// MLEN minus header room if pktHdr).
func NewData(b []byte) *Mbuf {
	n := units.Size(len(b))
	if n > MLEN {
		panic(fmt.Sprintf("mbuf: %v exceeds MLEN %v", n, MLEN))
	}
	m := &Mbuf{typ: TData, buf: make([]byte, MLEN)}
	// Leave header room so Prepend can extend in place.
	m.off = HeaderRoom
	if m.off+n > MLEN {
		m.off = MLEN - n
	}
	m.ln = n
	copy(m.buf[m.off:], b)
	return m
}

// NewEmptyData returns a regular mbuf with zero length and header room.
func NewEmptyData() *Mbuf { return NewData(nil) }

// NewCluster returns a cluster mbuf holding a copy of b (≤ MCLBYTES).
func NewCluster(b []byte) *Mbuf {
	n := units.Size(len(b))
	if n > MCLBYTES {
		panic(fmt.Sprintf("mbuf: %v exceeds MCLBYTES %v", n, MCLBYTES))
	}
	cl := &cluster{data: make([]byte, MCLBYTES), refs: 1}
	copy(cl.data, b)
	return &Mbuf{typ: TCluster, cl: cl, off: 0, ln: n}
}

// AdoptCluster wraps an existing buffer as external cluster storage
// without copying, exposing the window [off, off+n). Drivers use it to
// loan receive buffers (e.g. the CAB's auto-DMA buffers) directly to the
// stack.
func AdoptCluster(b []byte, off, n units.Size) *Mbuf {
	if off < 0 || n < 0 || off+n > units.Size(len(b)) {
		panic(fmt.Sprintf("mbuf: adopt window [%v,+%v) outside %d", off, n, len(b)))
	}
	cl := &cluster{data: b, refs: 1}
	return &Mbuf{typ: TCluster, cl: cl, off: off, ln: n}
}

// NewUIO returns an M_UIO descriptor mbuf covering [off, off+n) of u.
func NewUIO(u *mem.UIO, off, n units.Size, hdr *Hdr) *Mbuf {
	if off < 0 || n < 0 || off+n > u.Total() {
		panic(fmt.Sprintf("mbuf: UIO window [%v,+%v) outside %v", off, n, u.Total()))
	}
	return &Mbuf{typ: TUIO, uio: u, off: off, ln: n, hdr: hdr}
}

// NewWCAB returns an M_WCAB descriptor mbuf covering [off, off+n) of the
// outboard packet w, taking a reference.
func NewWCAB(w *WCAB, off, n units.Size, hdr *Hdr) *Mbuf {
	w.Ref()
	return &Mbuf{typ: TWCAB, wcab: w, off: off, ln: n, hdr: hdr}
}

// Type returns the mbuf's storage format.
func (m *Mbuf) Type() Type { return m.typ }

// Len returns the mbuf's data length (not the chain's).
func (m *Mbuf) Len() units.Size { return m.ln }

// Next returns the next mbuf in the chain.
func (m *Mbuf) Next() *Mbuf { return m.next }

// SetNext links n after m.
func (m *Mbuf) SetNext(n *Mbuf) { m.next = n }

// Hdr returns the uiowCABhdr, or nil for non-descriptor mbufs that have
// none.
func (m *Mbuf) Hdr() *Hdr { return m.hdr }

// SetHdr attaches a uiowCABhdr.
func (m *Mbuf) SetHdr(h *Hdr) { m.hdr = h }

// Span returns the telemetry span attached to m's header, or nil.
func (m *Mbuf) Span() *obs.Span {
	if m == nil || m.hdr == nil {
		return nil
	}
	return m.hdr.Span
}

// AttachSpan stores sp on m's header, creating an empty header if needed.
// A nil sp is a no-op, so the call is free on uninstrumented paths.
func (m *Mbuf) AttachSpan(sp *obs.Span) {
	if sp == nil {
		return
	}
	if m.hdr == nil {
		m.hdr = &Hdr{}
	}
	m.hdr.Span = sp
}

// Prov returns the data-touch provenance attached to m's header, or nil.
func (m *Mbuf) Prov() *ledger.Prov {
	if m == nil || m.hdr == nil {
		return nil
	}
	return m.hdr.Prov
}

// AttachProv stores p on m's header, creating an empty header if needed.
// A nil p is a no-op, so the call is free when the ledger is off.
func (m *Mbuf) AttachProv(p *ledger.Prov) {
	if p == nil {
		return
	}
	if m.hdr == nil {
		m.hdr = &Hdr{}
	}
	m.hdr.Prov = p
}

// CritEv returns the causal writer-event id recorded on m's header (0 when
// the critical-path recorder is off).
func (m *Mbuf) CritEv() int32 {
	if m == nil || m.hdr == nil {
		return 0
	}
	return m.hdr.CritEv
}

// SetCritEv stamps the causal writer-event id on m's header, creating an
// empty header if needed. Id 0 is a no-op, so the call is free when the
// recorder is off.
func (m *Mbuf) SetCritEv(id int32) {
	if id == 0 {
		return
	}
	if m.hdr == nil {
		m.hdr = &Hdr{}
	}
	m.hdr.CritEv = id
}

// DescID returns the sosend descriptor id recorded on m's header (0 when
// none).
func (m *Mbuf) DescID() int64 {
	if m == nil || m.hdr == nil {
		return 0
	}
	return m.hdr.DescID
}

// UIO returns the user-space region descriptor of a TUIO mbuf.
func (m *Mbuf) UIO() *mem.UIO { return m.uio }

// WCABRef returns the outboard descriptor of a TWCAB mbuf.
func (m *Mbuf) WCABRef() *WCAB { return m.wcab }

// Off returns the descriptor window offset (TUIO: within the UIO's
// original coordinates; TWCAB: within the outboard packet).
func (m *Mbuf) Off() units.Size { return m.off }

// MarkPktHdr marks m as the first mbuf of a packet with total length n.
func (m *Mbuf) MarkPktHdr(n units.Size) {
	m.pktHdr = true
	m.pktLen = n
}

// IsPktHdr reports whether m is a packet-header mbuf.
func (m *Mbuf) IsPktHdr() bool { return m.pktHdr }

// PktLen returns the packet length recorded in the packet header.
func (m *Mbuf) PktLen() units.Size { return m.pktLen }

// Bytes returns the live data window of a byte-holding mbuf. It panics for
// descriptor mbufs: their data is not host-memory resident, which is the
// whole point — code that would touch it must go through the driver.
func (m *Mbuf) Bytes() []byte {
	switch m.typ {
	case TData:
		return m.buf[m.off : m.off+m.ln]
	case TCluster:
		return m.cl.data[m.off : m.off+m.ln]
	default:
		panic(fmt.Sprintf("mbuf: Bytes() on %v descriptor mbuf", m.typ))
	}
}

// Prepend grows the data window n bytes at the front, in place if the mbuf
// has leading space, otherwise by returning a new packet-header mbuf
// chained before m. The returned mbuf is the (possibly new) chain head.
func (m *Mbuf) Prepend(n units.Size) *Mbuf {
	if m.typ == TData && m.off >= n {
		m.off -= n
		m.ln += n
		if m.pktHdr {
			m.pktLen += n
		}
		return m
	}
	nm := NewEmptyData()
	nm.off = HeaderRoom - n
	if nm.off < 0 {
		panic(fmt.Sprintf("mbuf: prepend %v exceeds header room", n))
	}
	nm.ln = n
	nm.next = m
	if m.pktHdr {
		nm.MarkPktHdr(m.pktLen + n)
		m.pktHdr = false
		m.pktLen = 0
	}
	return nm
}

// TrimFront drops n bytes from the front of this single mbuf.
func (m *Mbuf) TrimFront(n units.Size) {
	if n > m.ln {
		panic("mbuf: trim beyond length")
	}
	m.off += n
	m.ln -= n
}

// TrimBack drops n bytes from the back of this single mbuf.
func (m *Mbuf) TrimBack(n units.Size) {
	if n > m.ln {
		panic("mbuf: trim beyond length")
	}
	m.ln -= n
}

// Free releases one mbuf (dropping cluster/WCAB references) and returns
// its successor.
func (m *Mbuf) Free() *Mbuf {
	next := m.next
	switch m.typ {
	case TCluster:
		m.cl.refs--
		if m.cl.refs < 0 {
			panic("mbuf: cluster over-release")
		}
	case TWCAB:
		m.wcab.Unref()
	}
	m.next = nil
	return next
}

// FreeChain releases every mbuf in the chain.
func FreeChain(m *Mbuf) {
	for m != nil {
		m = m.Free()
	}
}
