// Package fabric assembles multi-switch HIPPI topologies on top of
// internal/hippi's per-hop machinery: a small topology grammar (linear
// chains, leaf/spine, 2-level fat-tree), deterministic seeded ECMP flow
// hashing across equal-cost uplinks, rack-aware node placement, and the
// standard CE marker for fabric-side ECN (queue-threshold marking that
// rewrites the IP header checksum in flight).
//
// The package is pure policy: internal/hippi owns serialization, HOL
// coupling, telemetry, and ledger charges per hop; fabric only decides
// which trunk each (frame, switch) pair takes and how frames are marked.
package fabric

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/checksum"
	"repro/internal/hippi"
	"repro/internal/wire"
)

// Kind enumerates the topology families.
type Kind int

const (
	// Single is the classic one-switch network: Install is a no-op and
	// every node stays on switch 0.
	Single Kind = iota
	// Linear is a chain of N switches, deterministic shortest-path routing
	// along the chain (no equal-cost choice, so no ECMP).
	Linear
	// LeafSpine is L edge switches each trunked to S spines: one
	// equal-cost uplink per spine, picked by ECMP flow hash.
	LeafSpine
	// FatTree is LeafSpine with two parallel trunks per leaf-spine pair
	// (a 2-level fat tree): 2*S equal-cost uplinks per leaf.
	FatTree
)

// Topology is a parsed topology spec.
type Topology struct {
	Kind Kind
	// N is the switch count for Linear.
	N int
	// Leaves and Spines size LeafSpine/FatTree; Parallel is the number of
	// trunks per leaf-spine pair (1 for LeafSpine, 2 for FatTree).
	Leaves, Spines, Parallel int
}

// Parse reads a topology spec:
//
//	single           one switch (the classic network)
//	linear:N         N switches in a chain          (N >= 2)
//	leafspine:LxS    L leaves, S spines             (L >= 2, S >= 1)
//	fattree:LxS      leafspine with 2 parallel trunks per pair
func Parse(spec string) (Topology, error) {
	bad := func() (Topology, error) {
		return Topology{}, fmt.Errorf("bad topology %q (want single|linear:N|leafspine:LxS|fattree:LxS)", spec)
	}
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "single":
		if arg != "" {
			return bad()
		}
		return Topology{Kind: Single}, nil
	case "linear":
		n, err := strconv.Atoi(arg)
		if err != nil || n < 2 {
			return bad()
		}
		return Topology{Kind: Linear, N: n}, nil
	case "leafspine", "fattree":
		ls, ss, ok := strings.Cut(arg, "x")
		l, err1 := strconv.Atoi(ls)
		s, err2 := strconv.Atoi(ss)
		if !ok || err1 != nil || err2 != nil || l < 2 || s < 1 {
			return bad()
		}
		t := Topology{Kind: LeafSpine, Leaves: l, Spines: s, Parallel: 1}
		if name == "fattree" {
			t.Kind = FatTree
			t.Parallel = 2
		}
		return t, nil
	}
	return bad()
}

// MustParse is Parse for known-good specs (tests, experiment tables).
func MustParse(spec string) Topology {
	t, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return t
}

// String renders the canonical spec.
func (tp Topology) String() string {
	switch tp.Kind {
	case Linear:
		return fmt.Sprintf("linear:%d", tp.N)
	case LeafSpine:
		return fmt.Sprintf("leafspine:%dx%d", tp.Leaves, tp.Spines)
	case FatTree:
		return fmt.Sprintf("fattree:%dx%d", tp.Leaves, tp.Spines)
	}
	return "single"
}

// Edges is the number of edge switches nodes can be placed on: every
// switch in a chain, the leaves of a leaf/spine fabric.
func (tp Topology) Edges() int {
	switch tp.Kind {
	case Linear:
		return tp.N
	case LeafSpine, FatTree:
		return tp.Leaves
	}
	return 1
}

// Install assembles the topology on net: trunks plus the seeded ECMP
// route function. Single installs nothing (the classic single-switch
// path stays byte-identical). Node placement is the caller's choice
// (PlaceRacked is the standard one); ECN marking is opt-in via
// net.SetECN(threshold, fabric.MarkCE).
//
// Leaf i is switch i; spine j is switch Leaves+j. Trunk names follow the
// fault grammar's link= parameter: "leaf0-spine1" for leaf/spine,
// "leaf0-spine1.0" / ".1" for a fat tree's parallel pair, "sw0-sw1" for
// chain segments.
func (tp Topology) Install(net *hippi.Network, seed uint64) {
	switch tp.Kind {
	case Single:
		return
	case Linear:
		for i := 0; i < tp.N-1; i++ {
			net.AddTrunk(chainTrunk(i), hippi.SwitchID(i), hippi.SwitchID(i+1))
		}
	case LeafSpine, FatTree:
		for i := 0; i < tp.Leaves; i++ {
			for j := 0; j < tp.Spines; j++ {
				for p := 0; p < tp.Parallel; p++ {
					net.AddTrunk(tp.TrunkName(i, j, p),
						hippi.SwitchID(i), hippi.SwitchID(tp.Leaves+j))
				}
			}
		}
	}
	net.SetRoute(tp.router(seed))
}

// TrunkName names the trunk between leaf i and spine j (parallel copy p).
func (tp Topology) TrunkName(i, j, p int) string {
	if tp.Parallel <= 1 {
		return fmt.Sprintf("leaf%d-spine%d", i, j)
	}
	return fmt.Sprintf("leaf%d-spine%d.%d", i, j, p)
}

func chainTrunk(i int) string { return fmt.Sprintf("sw%d-sw%d", i, i+1) }

// router builds the per-hop route function. Chains walk toward the
// destination; leaf/spine fabrics hash each flow onto one of the
// equal-cost uplinks (seeded FNV-1a over the 5-tuple, so the same seed
// reproduces the same path assignment exactly) and take the direct
// downlink from the spine. Routing is static: a partitioned trunk keeps
// eating its flows until the window heals — the blast radius the
// partition experiments measure.
func (tp Topology) router(seed uint64) hippi.RouteFunc {
	switch tp.Kind {
	case Linear:
		return func(f *hippi.Frame, at, dstSw hippi.SwitchID) string {
			if dstSw > at {
				return chainTrunk(int(at))
			}
			return chainTrunk(int(at) - 1)
		}
	case LeafSpine, FatTree:
		uplinks := uint64(tp.Spines * tp.Parallel)
		return func(f *hippi.Frame, at, dstSw hippi.SwitchID) string {
			u := int(flowHash(seed, f) % uplinks)
			if int(at) >= tp.Leaves {
				// Spine: one direct downlink per parallel copy; keep the
				// flow's copy so both directions of a parallel pair stay
				// flow-consistent.
				return tp.TrunkName(int(dstSw), int(at)-tp.Leaves, u%tp.Parallel)
			}
			return tp.TrunkName(int(at), u/tp.Parallel, u%tp.Parallel)
		}
	}
	return nil
}

// FNV-1a, by the book.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// flowHash is the ECMP hash: seeded FNV-1a over source node, destination
// node, IP protocol, and the transport port pair. Fragments (any frame
// whose IP fragment field is nonzero, including the first) fall back to
// the 3-tuple so every fragment of a datagram takes the same path.
func flowHash(seed uint64, f *hippi.Frame) uint64 {
	h := uint64(fnvOffset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime
			v >>= 8
		}
	}
	mix(seed)
	mix(uint64(f.Src))
	mix(uint64(f.Dst))
	d := f.Data
	ip := int(wire.LinkHdrLen)
	tr := ip + int(wire.IPHdrLen)
	if len(d) < tr {
		return h
	}
	mix(uint64(d[ip+9])) // protocol
	frag := binary.BigEndian.Uint16(d[ip+6:]) & 0x3fff
	if frag == 0 && len(d) >= tr+4 {
		mix(uint64(binary.BigEndian.Uint32(d[tr:]))) // src+dst ports
	}
	// Avalanche finalizer (splitmix64's): raw FNV-1a mod a power-of-two
	// uplink count degenerates to input-byte parity (the multiplier is
	// odd, so the low bit never mixes upward), and structured workloads
	// — sequential node ids, one well-known server port — make that
	// parity flow-invariant, collapsing ECMP onto a single uplink.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// MarkCE is the standard ECN marker for hippi.Network.SetECN: it CE-marks
// an ECN-capable (ECT) frame in place and rewrites the IP header checksum
// so the receiver's header validation still passes. Non-ECT frames and
// frames already carrying CE are left alone (reported as unmarked). The
// transport checksum is unaffected: the pseudo-header excludes the TOS
// byte, and the CAB's receive engine sums past the first 80 bytes.
func MarkCE(data []byte) bool {
	ip := data[wire.LinkHdrLen:]
	if len(ip) < int(wire.IPHdrLen) {
		return false
	}
	if ip[wire.ECNOff]&0x3 != wire.ECNECT0 {
		return false
	}
	ip[wire.ECNOff] = ip[wire.ECNOff]&^byte(0x3) | wire.ECNCE
	binary.BigEndian.PutUint16(ip[10:], 0)
	binary.BigEndian.PutUint16(ip[10:], checksum.Checksum(ip[:wire.IPHdrLen]))
	return true
}

// PlaceRacked is the standard workload placement: every server in the
// rack behind edge switch 0, clients spread round-robin across the
// remaining edge switches (or all of them when the fabric has a single
// edge). Unlisted nodes land on switch 0.
func (tp Topology) PlaceRacked(servers, clients []hippi.NodeID) func(hippi.NodeID) hippi.SwitchID {
	m := make(map[hippi.NodeID]hippi.SwitchID, len(servers)+len(clients))
	for _, s := range servers {
		m[s] = 0
	}
	edges := tp.Edges()
	for i, c := range clients {
		if edges > 1 {
			m[c] = hippi.SwitchID(1 + i%(edges-1))
		} else {
			m[c] = 0
		}
	}
	return func(id hippi.NodeID) hippi.SwitchID { return m[id] }
}
