package fabric

import (
	"testing"

	"repro/internal/hippi"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

func TestParse(t *testing.T) {
	for _, spec := range []string{"single", "linear:3", "leafspine:4x2", "fattree:2x2"} {
		tp, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if tp.String() != spec {
			t.Errorf("Parse(%q).String() = %q", spec, tp.String())
		}
	}
	if tp := MustParse("fattree:4x2"); tp.Parallel != 2 || tp.Leaves != 4 || tp.Spines != 2 {
		t.Errorf("fattree:4x2 = %+v", tp)
	}
	if tp := MustParse("linear:5"); tp.Edges() != 5 {
		t.Errorf("linear:5 edges = %d", tp.Edges())
	}
	if tp := MustParse("leafspine:4x2"); tp.Edges() != 4 {
		t.Errorf("leafspine:4x2 edges = %d", tp.Edges())
	}
	for _, bad := range []string{
		"", "ring:4", "linear:1", "linear:x", "leafspine:4", "leafspine:1x2",
		"leafspine:4x0", "fattree:ax2", "single:2",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

// frame builds a minimal wire-correct frame: link header, IP header with
// the given ECN codepoint, and a 4-byte transport port pair.
func frame(src, dst hippi.NodeID, sport, dport uint16, ecn uint8) *hippi.Frame {
	b := make([]byte, int(wire.LinkHdrLen+wire.IPHdrLen)+4)
	wire.LinkHdr{Dst: uint32(dst), Src: uint32(src), Type: wire.EtherTypeIP,
		Len: uint32(len(b))}.Marshal(b)
	wire.IPHdr{TotLen: wire.IPHdrLen + 4, TTL: 16, Proto: wire.ProtoTCP,
		ECN: ecn, Src: wire.Addr(src), Dst: wire.Addr(dst)}.Marshal(b[wire.LinkHdrLen:])
	tr := b[wire.LinkHdrLen+wire.IPHdrLen:]
	tr[0], tr[1] = byte(sport>>8), byte(sport)
	tr[2], tr[3] = byte(dport>>8), byte(dport)
	return &hippi.Frame{Src: src, Dst: dst, Data: b}
}

func TestMarkCE(t *testing.T) {
	f := frame(1, 2, 5001, 40000, wire.ECNECT0)
	if !MarkCE(f.Data) {
		t.Fatal("ECT frame not marked")
	}
	iph, err := wire.ParseIPHdr(f.Data[wire.LinkHdrLen:])
	if err != nil {
		t.Fatalf("header checksum broken by marking: %v", err)
	}
	if iph.ECN != wire.ECNCE {
		t.Fatalf("ECN = %#b, want CE", iph.ECN)
	}
	if MarkCE(f.Data) {
		t.Fatal("already-CE frame marked again")
	}
	if MarkCE(frame(1, 2, 5001, 40000, 0).Data) {
		t.Fatal("non-ECT frame marked")
	}
}

// TestECMPDeterminism pins the hashing contract: the same seed assigns
// every flow the same uplink (run to run), and different seeds produce a
// measurably different assignment.
func TestECMPDeterminism(t *testing.T) {
	tp := MustParse("leafspine:4x2")
	r1, r1b, r2 := tp.router(7), tp.router(7), tp.router(8)
	diff := 0
	for port := uint16(0); port < 64; port++ {
		f := frame(2, 9, 40000+port, 5001, 0)
		a, b, c := r1(f, 1, 0), r1b(f, 1, 0), r2(f, 1, 0)
		if a != b {
			t.Fatalf("same seed diverged: %q vs %q", a, b)
		}
		if a != c {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 7 and 8 produced identical path assignment for 64 flows")
	}

	// Port-insensitive fallback: fragments hash on the 3-tuple only, so
	// every fragment of a datagram takes one path.
	fr := frame(2, 9, 40000, 5001, 0)
	fr.Data[wire.LinkHdrLen+6] |= 0x20 // MF
	wantFrag := r1(fr, 1, 0)
	fr2 := frame(2, 9, 41111, 5001, 0)
	fr2.Data[wire.LinkHdrLen+6] |= 0x20
	if got := r1(fr2, 1, 0); got != wantFrag {
		t.Fatalf("fragments of one src/dst pair split paths: %q vs %q", got, wantFrag)
	}
}

func TestLinearRoute(t *testing.T) {
	r := MustParse("linear:4").router(1)
	f := frame(1, 9, 1, 2, 0)
	if got := r(f, 0, 3); got != "sw0-sw1" {
		t.Fatalf("0→3 first hop %q", got)
	}
	if got := r(f, 2, 3); got != "sw2-sw3" {
		t.Fatalf("2→3 hop %q", got)
	}
	if got := r(f, 3, 0); got != "sw2-sw3" {
		t.Fatalf("3→0 first hop %q", got)
	}
}

func TestPlaceRacked(t *testing.T) {
	tp := MustParse("leafspine:4x2")
	place := tp.PlaceRacked([]hippi.NodeID{1}, []hippi.NodeID{2, 3, 4, 5})
	if place(1) != 0 {
		t.Fatalf("server on switch %d", place(1))
	}
	want := []hippi.SwitchID{1, 2, 3, 1}
	for i, id := range []hippi.NodeID{2, 3, 4, 5} {
		if place(id) != want[i] {
			t.Fatalf("client %d on switch %d, want %d", id, place(id), want[i])
		}
	}
}

// TestFabricDelivery drives frames across a leaf/spine fabric end to end:
// every frame arrives exactly once, trunk byte counters account the
// crossing traffic, and a partitioned spine link eats exactly the flows
// hashed onto it.
func TestFabricDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	net := hippi.NewNetwork(eng, 100*units.MBytePerSec, 5*units.Microsecond)
	tp := MustParse("leafspine:2x2")
	tp.Install(net, 42)
	net.SetPlacement(tp.PlaceRacked([]hippi.NodeID{1}, []hippi.NodeID{2, 3}))

	got := map[hippi.NodeID]int{}
	for _, id := range []hippi.NodeID{1, 2, 3} {
		id := id
		net.Attach(id, func(f hippi.Frame) { got[id]++ })
	}
	for i := 0; i < 8; i++ {
		net.SendFrame(*frame(2, 1, uint16(40000+i), 5001, 0), nil)
		net.SendFrame(*frame(3, 1, uint16(41000+i), 5001, 0), nil)
	}
	net.SendFrame(*frame(1, 2, 5001, 40000, 0), nil)
	eng.Run()

	if got[1] != 16 || got[2] != 1 {
		t.Fatalf("delivered %v, want 16 to node 1 and 1 to node 2", got)
	}
	if net.Delivered != 17 || net.Dropped != 0 {
		t.Fatalf("Delivered=%d Dropped=%d", net.Delivered, net.Dropped)
	}
	var crossed units.Size
	for _, ts := range net.TrunkStats() {
		crossed += ts.AB + ts.BA
	}
	flen := units.Size(int(wire.LinkHdrLen+wire.IPHdrLen) + 4)
	if want := 17 * 2 * flen; crossed != want {
		t.Fatalf("trunk bytes %d, want %d (every frame crosses two trunks)", crossed, want)
	}
}

type downLink string

func (d downLink) LinkDown(name string, now units.Time) bool { return string(d) == name }

func TestFabricPartitionDropsOnlyHashedFlows(t *testing.T) {
	eng := sim.NewEngine(1)
	net := hippi.NewNetwork(eng, 100*units.MBytePerSec, 5*units.Microsecond)
	tp := MustParse("leafspine:2x2")
	tp.Install(net, 42)
	net.SetPlacement(tp.PlaceRacked([]hippi.NodeID{1}, []hippi.NodeID{2}))
	net.SetLinkInjector(downLink("leaf1-spine0"))

	delivered := 0
	net.Attach(1, func(hippi.Frame) { delivered++ })
	net.Attach(2, func(hippi.Frame) {})
	r := tp.router(42)
	viaDown := 0
	for i := 0; i < 16; i++ {
		f := frame(2, 1, uint16(40000+i), 5001, 0)
		if r(f, 1, 0) == "leaf1-spine0" {
			viaDown++
		}
		net.SendFrame(*f, nil)
	}
	eng.Run()
	if viaDown == 0 || viaDown == 16 {
		t.Fatalf("degenerate hash split: %d/16 via downed link", viaDown)
	}
	if delivered != 16-viaDown || net.DroppedInj != viaDown {
		t.Fatalf("delivered=%d droppedInj=%d, want %d/%d",
			delivered, net.DroppedInj, 16-viaDown, viaDown)
	}
}
