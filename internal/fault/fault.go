// Package fault is the deterministic fault-injection subsystem: seeded,
// composable fault plans scheduled in virtual time, injected at three
// surfaces — the wire (drop, bit-flip corruption, duplication, reordering,
// delay via hippi.Network's Injector hook), the CAB hardware (SDMA
// transfer failures, checksum-engine miscomputation, network-memory
// pressure), and the kernel (mbuf/page allocation failures).
//
// Everything is driven by the injector's own rand.Rand, seeded explicitly:
// the same plan and seed produce the same faults at the same virtual
// times, so every failure a soak run finds replays exactly.
package fault

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/cab"
	"repro/internal/hippi"
	"repro/internal/kern"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

// Kind enumerates the injectable fault kinds.
type Kind int

// Fault kinds. Drop..Delay are wire faults (consulted per frame); the
// rest target the CAB hardware and the kernel allocator.
const (
	Drop      Kind = iota // wire: discard the frame
	Corrupt               // wire: flip one bit in the transport segment
	Dup                   // wire: deliver extra copies
	Reorder               // wire: deliver out of order (extra delay, bypassing rx serialization)
	Delay                 // wire: extra propagation delay
	Partition             // wire: link partition window — drop everything, then heal
	DMAFail               // CAB: SDMA transfer fails (the engine retries)
	TxCsum                // CAB: transmit checksum engine miscomputes
	RxCsum                // CAB: receive checksum engine miscomputes
	Netmem                // CAB: network-memory pressure window
	AllocFail             // kernel: mbuf/page allocation failure
	CABReset              // CAB: firmware reset — netmem, descriptors, WCAB state wiped
	numKinds
)

var kindNames = [numKinds]string{
	"drop", "corrupt", "dup", "reorder", "delay", "partition",
	"dmafail", "txcsum", "rxcsum", "netmem", "allocfail", "cabreset",
}

func (k Kind) String() string {
	if k >= 0 && k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

func wireKind(k Kind) bool { return k <= Partition }

// statefulKind reports the kinds scheduled by virtual-time window (From /
// Dur / Until) rather than by a per-event Schedule.
func statefulKind(k Kind) bool { return k == Partition || k == Netmem || k == CABReset }

// corruptSkip is where bit-flip corruption starts: past the link and IP
// headers, inside the transport segment, so the corruption is always
// caught (and counted) by the transport checksum rather than vanishing
// into a link-parse drop.
const corruptSkip = wire.LinkHdrLen + wire.IPHdrLen

// Schedule decides, event by event, whether a rule fires. Implementations
// are stateful (counters, one-shot latches, rng streams) and belong to
// exactly one Rule.
type Schedule interface {
	fire(now units.Time) bool
	// seed hands probabilistic schedules their deterministic rng stream;
	// called once when the rule is added to an injector.
	seed(rng *rand.Rand)
}

type everySched struct {
	n   int64
	cnt int64
}

func (s *everySched) fire(units.Time) bool { s.cnt++; return s.cnt%s.n == 0 }
func (s *everySched) seed(*rand.Rand)      {}

// Every fires on every nth eligible event.
func Every(n int) Schedule {
	if n < 1 {
		n = 1
	}
	return &everySched{n: int64(n)}
}

type probSched struct {
	p   float64
	rng *rand.Rand
}

func (s *probSched) fire(units.Time) bool { return s.rng.Float64() < s.p }
func (s *probSched) seed(r *rand.Rand)    { s.rng = r }

// Prob fires on each eligible event with probability p, from the
// injector's seeded stream.
func Prob(p float64) Schedule { return &probSched{p: p} }

type burstSched struct {
	start, length int64
	cnt           int64
}

func (s *burstSched) fire(units.Time) bool {
	s.cnt++
	return s.cnt > s.start && s.cnt <= s.start+s.length
}
func (s *burstSched) seed(*rand.Rand) {}

// Burst fires on length consecutive eligible events after skipping the
// first start.
func Burst(start, length int) Schedule {
	return &burstSched{start: int64(start), length: int64(length)}
}

type onceSched struct {
	t    units.Time
	done bool
}

func (s *onceSched) fire(now units.Time) bool {
	if s.done || now < s.t {
		return false
	}
	s.done = true
	return true
}
func (s *onceSched) seed(*rand.Rand) {}

// At fires once, on the first eligible event at or after virtual time t.
func At(t units.Time) Schedule { return &onceSched{t: t} }

type windowSched struct{ from, to units.Time }

func (s *windowSched) fire(now units.Time) bool { return now >= s.from && now < s.to }
func (s *windowSched) seed(*rand.Rand)          {}

// Window fires on every eligible event within [from, to) of virtual time.
func Window(from, to units.Time) Schedule { return &windowSched{from: from, to: to} }

// Rule is one fault: a kind, a schedule, and kind-specific parameters.
type Rule struct {
	Kind Kind
	// When schedules the rule. Required for every kind except Netmem,
	// which is scheduled purely by From/Until.
	When Schedule

	// MinLen restricts wire rules to frames at least this long (sparing
	// handshake and ACK traffic). 0 matches everything.
	MinLen units.Size
	// Match further restricts wire rules (nil: all frames). It runs
	// before the schedule, so filtered frames do not advance it.
	Match func(*hippi.Frame) bool
	// Delay is the extra delay for Delay/Reorder rules (0: kind default).
	Delay units.Time
	// Dup is how many extra copies a Dup rule delivers (0: one).
	Dup int

	// Netmem: reserve Pages pages (0: all of them) from From until Until
	// (Until 0: for the rest of the run).
	Pages       int
	From, Until units.Time
	// Dur is sugar for Until = From + Dur on window-scheduled kinds
	// (Partition, Netmem); normalized by Add.
	Dur units.Time

	// Partition: drop every frame in [From, Until) — the link is down, then
	// heals. SrcNode/DstNode (0: any) restrict the partition to one wire
	// direction.
	SrcNode, DstNode hippi.NodeID
	// Link restricts a Partition to one named fabric trunk (e.g.
	// "leaf0-spine1") instead of the host wire: the rule is consulted via
	// the network's LinkInjector hook on every hop over that trunk, and
	// never matches host-edge frames. Mutually exclusive with src/dst.
	Link string

	// CABReset: fire the firmware reset at From on the adaptor with Node
	// (0: every wired adaptor).
	Node hippi.NodeID
}

// Injector owns a fault plan and implements every injection surface:
// hippi.Injector for the wire, the cab fault hooks, and kern.AllocFault.
type Injector struct {
	eng   *sim.Engine
	rng   *rand.Rand
	rules []*Rule

	// Fired counts, per kind, how many faults were actually injected.
	Fired [numKinds]int64

	ctr   [numKinds]*obs.Counter
	trace *obs.Trace
}

// New returns an empty injector on engine eng with its own deterministic
// rng stream.
func New(eng *sim.Engine, seed int64) *Injector {
	return &Injector{eng: eng, rng: rand.New(rand.NewSource(seed))}
}

// Add appends a rule to the plan. Rule addition order is part of the
// plan's identity: each schedule's rng stream derives from the injector
// seed in order. Add rules before wiring the injector into a testbed.
func (in *Injector) Add(r Rule) *Injector {
	if r.Kind < 0 || r.Kind >= numKinds {
		panic(fmt.Sprintf("fault: bad kind %d", int(r.Kind)))
	}
	if r.When == nil && !statefulKind(r.Kind) {
		panic(fmt.Sprintf("fault: %v rule needs a schedule", r.Kind))
	}
	if r.Dur > 0 && r.Until == 0 {
		r.Until = r.From + r.Dur
	}
	if r.When != nil {
		r.When.seed(rand.New(rand.NewSource(in.rng.Int63())))
	}
	in.rules = append(in.rules, &r)
	return in
}

// Rules returns how many rules the plan holds.
func (in *Injector) Rules() int { return len(in.rules) }

func (in *Injector) has(k Kind) bool {
	for _, r := range in.rules {
		if r.Kind == k {
			return true
		}
	}
	return false
}

// hit records one injected fault of kind k.
func (in *Injector) hit(k Kind) {
	in.Fired[k]++
	in.ctr[k].Inc()
	in.trace.Event("fault", kindNames[k], "fault."+kindNames[k])
}

// Frame implements hippi.Injector: it runs the wire rules against one
// frame, mutating f.Data in place for corruption and folding the rest
// into the verdict.
func (in *Injector) Frame(f *hippi.Frame) hippi.Verdict {
	var v hippi.Verdict
	// Partition windows first: while the link is down nothing traverses, so
	// a partitioned frame never reaches (or advances) the per-packet rules.
	for _, r := range in.rules {
		if r.Kind != Partition || r.Link != "" {
			continue
		}
		if now := in.eng.Now(); now < r.From || (r.Until > 0 && now >= r.Until) {
			continue
		}
		if r.SrcNode != 0 && f.Src != r.SrcNode {
			continue
		}
		if r.DstNode != 0 && f.Dst != r.DstNode {
			continue
		}
		in.hit(Partition)
		v.Drop = true
		return v
	}
	for _, r := range in.rules {
		if !wireKind(r.Kind) || r.Kind == Partition {
			continue
		}
		if r.MinLen > 0 && units.Size(len(f.Data)) < r.MinLen {
			continue
		}
		if r.Match != nil && !r.Match(f) {
			continue
		}
		if r.Kind == Corrupt && units.Size(len(f.Data)) <= corruptSkip {
			continue
		}
		if !r.When.fire(in.eng.Now()) {
			continue
		}
		in.hit(r.Kind)
		switch r.Kind {
		case Drop:
			v.Drop = true
		case Corrupt:
			off := int(corruptSkip) + in.rng.Intn(len(f.Data)-int(corruptSkip))
			f.Data[off] ^= 1 << uint(in.rng.Intn(8))
		case Dup:
			d := r.Dup
			if d < 1 {
				d = 1
			}
			v.Dup += d
		case Reorder, Delay:
			d := r.Delay
			if d == 0 {
				if r.Kind == Reorder {
					d = defaultReorderDelay
				} else {
					d = defaultExtraDelay
				}
			}
			v.Delay += d
		}
	}
	return v
}

// LinkDown implements hippi.LinkInjector: it reports whether a named
// fabric trunk is inside a Partition window, counting each frame the
// downed link eats. Rules without a Link never match here, and Link
// rules never match in Frame, so a plan can partition host wires and
// fabric trunks independently.
func (in *Injector) LinkDown(name string, now units.Time) bool {
	for _, r := range in.rules {
		if r.Kind != Partition || r.Link != name {
			continue
		}
		if now < r.From || (r.Until > 0 && now >= r.Until) {
			continue
		}
		in.hit(Partition)
		return true
	}
	return false
}

// Kind-default delays: a Delay rule adds modest jitter; a Reorder rule
// delays long enough to land the frame behind several successors at HIPPI
// frame spacing.
const (
	defaultExtraDelay   = 200 * units.Microsecond
	defaultReorderDelay = 1 * units.Millisecond
)

// hwFire runs every rule of kind k once (one hardware event: an SDMA
// transfer, an allocation attempt) and reports whether any fired.
func (in *Injector) hwFire(k Kind) bool {
	fired := false
	for _, r := range in.rules {
		if r.Kind != k {
			continue
		}
		if r.When.fire(in.eng.Now()) {
			in.hit(k)
			fired = true
		}
	}
	return fired
}

// csumMask runs the checksum-engine rules of kind k for one computation
// and returns the xor mask to apply to the body sum: 0 when no rule
// fired, otherwise a mask in [1, 0xfffe] — never 0xffff, whose flip can
// alias under one's-complement folding and escape detection.
func (in *Injector) csumMask(k Kind) uint32 {
	var m uint32
	fired := false
	for _, r := range in.rules {
		if r.Kind != k {
			continue
		}
		if r.When.fire(in.eng.Now()) {
			in.hit(k)
			fired = true
			m ^= uint32(1 + in.rng.Intn(0xfffe))
		}
	}
	if fired && (m == 0 || m == 0xffff) {
		m = 0x5555
	}
	return m
}

// WireNet installs the injector on a network (the wire surface).
func (in *Injector) WireNet(n *hippi.Network) { n.Inj = in }

// WireCAB installs the hardware-surface hooks on one adaptor and
// schedules its netmem-pressure windows. Hooks are installed only for
// kinds the plan contains, so absent faults stay allocation-free no-ops.
func (in *Injector) WireCAB(c *cab.CAB) {
	if in.has(DMAFail) {
		c.FaultSDMA = func() bool { return in.hwFire(DMAFail) }
	}
	if in.has(TxCsum) {
		c.FaultTxCsum = func() uint32 { return in.csumMask(TxCsum) }
	}
	if in.has(RxCsum) {
		c.FaultRxCsum = func() uint32 { return in.csumMask(RxCsum) }
	}
	for _, r := range in.rules {
		switch r.Kind {
		case Netmem:
			pages := r.Pages
			if pages <= 0 {
				pages = c.TotalPages()
			}
			until := r.Until
			in.eng.At(r.From, func() {
				in.hit(Netmem)
				c.SetReserve(pages)
			})
			if until > r.From {
				in.eng.At(until, func() { c.SetReserve(0) })
			}
		case CABReset:
			if r.Node != 0 && c.NodeID() != r.Node {
				continue
			}
			in.eng.At(r.From, func() {
				in.hit(CABReset)
				c.Reset()
			})
		}
	}
}

// WireKernel installs the allocation-fault hook on one kernel.
func (in *Injector) WireKernel(k *kern.Kernel) {
	if in.has(AllocFail) {
		k.AllocFault = func() bool { return in.hwFire(AllocFail) }
	}
}

// SetObs attaches telemetry: a fault.<kind> counter per kind present in
// the plan, and an instant trace event per injected fault.
func (in *Injector) SetObs(r *obs.Registry, tr *obs.Trace) {
	if r != nil {
		for k := Kind(0); k < numKinds; k++ {
			if in.has(k) {
				in.ctr[k] = r.Counter("fault." + kindNames[k])
			}
		}
	}
	in.trace = tr
}

// FiredMap returns the per-kind injected-fault counts, keyed by kind name,
// for kinds present in the plan (fired or not). Flight dumps embed it so a
// wedged soak case is diagnosable from the dump alone.
func (in *Injector) FiredMap() map[string]int64 {
	m := make(map[string]int64)
	for k := Kind(0); k < numKinds; k++ {
		if in.has(k) || in.Fired[k] > 0 {
			m[kindNames[k]] = in.Fired[k]
		}
	}
	return m
}

// FaultWindow is one scheduled stateful-fault window: the virtual-time
// span a partition or netmem reservation covers, or the instant of a
// cabreset (Until == From).
type FaultWindow struct {
	Kind        Kind
	From, Until units.Time
}

// Windows lists the plan's stateful-fault windows in rule order, so
// recovery tooling can report time-to-recover against the injection
// schedule without re-parsing the plan.
func (in *Injector) Windows() []FaultWindow {
	var ws []FaultWindow
	for _, r := range in.rules {
		if !statefulKind(r.Kind) {
			continue
		}
		w := FaultWindow{Kind: r.Kind, From: r.From, Until: r.Until}
		if r.Kind == CABReset {
			w.Until = r.From
		}
		ws = append(ws, w)
	}
	return ws
}

// Report summarizes what fired, for CLI output.
func (in *Injector) Report() string {
	var b strings.Builder
	b.WriteString("fault injection:")
	any := false
	for k := Kind(0); k < numKinds; k++ {
		if in.Fired[k] > 0 {
			fmt.Fprintf(&b, " %s=%d", kindNames[k], in.Fired[k])
			any = true
		}
	}
	if !any {
		b.WriteString(" none fired")
	}
	return b.String()
}
