package fault

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/hippi"
	"repro/internal/units"
)

// ParsePlan parses a fault plan spec into rules. The grammar is
// semicolon-separated rules, each `kind` or `kind:param,param,...`:
//
//	kind   := drop | corrupt | dup | reorder | delay | partition
//	        | dmafail | txcsum | rxcsum | netmem | allocfail | cabreset
//	param  := every=N        fire on every Nth eligible event
//	        | p=F            fire with probability F (seeded)
//	        | burst=S+L      fire on L consecutive events after the first S
//	        | at=DUR         fire once at virtual time DUR (window start for
//	                         the stateful kinds partition/netmem/cabreset)
//	        | window=D1+D2   fire on every event in [D1, D2)
//	        | min=SIZE       per-packet wire rules: only frames >= SIZE
//	        | delay=DUR      delay/reorder rules: the extra delay
//	        | dup=N          dup rules: extra copies per fire
//	        | pages=N        netmem: pages to reserve (default: all)
//	        | until=DUR      netmem/partition: window end (with at=DUR start)
//	        | dur=DUR        netmem/partition: window length (until = at+dur;
//	                         omitted: the window never closes)
//	        | src=N          partition: only frames from HIPPI node N
//	        | dst=N          partition: only frames to HIPPI node N
//	        | link=NAME      partition: the named fabric trunk (e.g.
//	                         leaf0-spine1) instead of the host wire
//	        | node=N         cabreset: only the adaptor on HIPPI node N
//	DUR    := <int>ns|us|ms|s     SIZE := <int>[K|M]
//
// Parameters are validated per kind: a param that does not apply to the
// rule's kind is a positional parse error, never a silently ignored
// zero-value schedule. A per-packet rule with no schedule param defaults
// to every=100; cabreset requires an explicit at=. Examples:
//
//	drop:every=13,min=1000
//	corrupt:p=0.01;dup:every=97
//	netmem:at=1ms,until=6ms;dmafail:burst=50+20
//	partition:at=5ms,dur=20ms
//	cabreset:at=8ms,node=1
func ParsePlan(spec string) ([]Rule, error) {
	var rules []Rule
	idx := 0
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		idx++
		name, params, _ := strings.Cut(part, ":")
		kind, err := parseKind(strings.TrimSpace(name))
		if err != nil {
			return nil, fmt.Errorf("fault plan: rule %d: %w", idx, err)
		}
		r := Rule{Kind: kind}
		sawAnchor := false
		if params != "" {
			for _, ps := range strings.Split(params, ",") {
				ps = strings.TrimSpace(ps)
				if err := parseParam(&r, ps, &sawAnchor); err != nil {
					return nil, fmt.Errorf("fault plan: rule %d (%s): %w", idx, kind, err)
				}
			}
		}
		if err := finishRule(&r, sawAnchor); err != nil {
			return nil, fmt.Errorf("fault plan: rule %d (%s): %w", idx, kind, err)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault plan: empty plan %q", spec)
	}
	return rules, nil
}

// finishRule applies per-kind defaults and structural checks after all
// params are parsed.
func finishRule(r *Rule, sawAnchor bool) error {
	if r.Dur > 0 && r.Until == 0 {
		r.Until = r.From + r.Dur
	}
	switch {
	case statefulKind(r.Kind):
		if r.Kind == CABReset && !sawAnchor {
			return fmt.Errorf("needs an at=DUR reset time")
		}
		if r.Link != "" && (r.SrcNode != 0 || r.DstNode != 0) {
			return fmt.Errorf("link=%s excludes src/dst (a trunk has no host endpoints)", r.Link)
		}
		if r.Until != 0 && r.Until <= r.From {
			return fmt.Errorf("window end %v not after start %v", r.Until, r.From)
		}
	default:
		if r.When == nil {
			r.When = Every(100)
		}
	}
	return nil
}

// MustPlan is ParsePlan for known-good specs (tests, experiment tables).
func MustPlan(spec string) []Rule {
	rs, err := ParsePlan(spec)
	if err != nil {
		panic(err)
	}
	return rs
}

// AddPlan parses spec and adds every rule to the injector.
func (in *Injector) AddPlan(spec string) error {
	rs, err := ParsePlan(spec)
	if err != nil {
		return err
	}
	for _, r := range rs {
		in.Add(r)
	}
	return nil
}

func parseKind(s string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if s == kindNames[k] {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown kind %q (want %s)", s, strings.Join(kindNames[:], "|"))
}

// paramAllowed is the per-kind parameter matrix: a key that is not
// meaningful for the rule's kind is rejected at parse time rather than
// silently producing a zero-value schedule.
func paramAllowed(k Kind, key string) bool {
	perPacket := !statefulKind(k)
	switch key {
	case "every", "p", "burst":
		return perPacket
	case "at":
		return true // time anchor is valid for every kind
	case "window":
		return k != CABReset
	case "until", "dur":
		return k == Netmem || k == Partition
	case "min":
		return k <= Delay
	case "delay":
		return k == Delay || k == Reorder
	case "dup":
		return k == Dup
	case "pages":
		return k == Netmem
	case "src", "dst", "link":
		return k == Partition
	case "node":
		return k == CABReset
	}
	return false
}

func parseParam(r *Rule, p string, sawAnchor *bool) error {
	key, val, ok := strings.Cut(p, "=")
	if !ok {
		return fmt.Errorf("bad param %q (want key=value)", p)
	}
	if !paramAllowed(r.Kind, key) {
		return fmt.Errorf("param %q does not apply to kind %s", p, r.Kind)
	}
	switch key {
	case "every":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return fmt.Errorf("bad every=%q", val)
		}
		r.When = Every(n)
	case "p":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 || f > 1 {
			return fmt.Errorf("bad p=%q", val)
		}
		r.When = Prob(f)
	case "burst":
		s, l, ok := strings.Cut(val, "+")
		start, err1 := strconv.Atoi(s)
		length, err2 := strconv.Atoi(l)
		if !ok || err1 != nil || err2 != nil || start < 0 || length < 1 {
			return fmt.Errorf("bad burst=%q (want S+L)", val)
		}
		r.When = Burst(start, length)
	case "at":
		t, err := parseDur(val)
		if err != nil {
			return err
		}
		*sawAnchor = true
		if statefulKind(r.Kind) {
			r.From = t
		} else {
			r.When = At(t)
		}
	case "window":
		f, u, ok := strings.Cut(val, "+")
		from, err1 := parseDur(f)
		to, err2 := parseDur(u)
		if !ok || err1 != nil || err2 != nil || to <= from {
			return fmt.Errorf("bad window=%q (want FROM+TO)", val)
		}
		*sawAnchor = true
		if statefulKind(r.Kind) {
			r.From, r.Until = from, to
		} else {
			r.When = Window(from, to)
		}
	case "until":
		t, err := parseDur(val)
		if err != nil {
			return err
		}
		r.Until = t
	case "dur":
		t, err := parseDur(val)
		if err != nil {
			return err
		}
		if t == 0 {
			return fmt.Errorf("bad dur=%q (want a positive duration)", val)
		}
		r.Dur = t
	case "min":
		n, err := parseSize(val)
		if err != nil {
			return err
		}
		r.MinLen = n
	case "delay":
		t, err := parseDur(val)
		if err != nil {
			return err
		}
		r.Delay = t
	case "dup":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return fmt.Errorf("bad dup=%q", val)
		}
		r.Dup = n
	case "pages":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return fmt.Errorf("bad pages=%q", val)
		}
		r.Pages = n
	case "link":
		if val == "" {
			return fmt.Errorf("bad link=%q (want a fabric link name like leaf0-spine1)", val)
		}
		r.Link = val
	case "src", "dst", "node":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return fmt.Errorf("bad %s=%q (want a HIPPI node id >= 1)", key, val)
		}
		switch key {
		case "src":
			r.SrcNode = hippi.NodeID(n)
		case "dst":
			r.DstNode = hippi.NodeID(n)
		case "node":
			r.Node = hippi.NodeID(n)
		}
	default:
		return fmt.Errorf("unknown param %q", key)
	}
	return nil
}

func parseDur(s string) (units.Time, error) {
	mult := units.Time(0)
	num := s
	switch {
	case strings.HasSuffix(s, "ns"):
		mult, num = units.Nanosecond, s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		mult, num = units.Microsecond, s[:len(s)-2]
	case strings.HasSuffix(s, "ms"):
		mult, num = units.Millisecond, s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		mult, num = units.Second, s[:len(s)-1]
	default:
		return 0, fmt.Errorf("bad duration %q (want <int>ns|us|ms|s)", s)
	}
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	return units.Time(n) * mult, nil
}

func parseSize(s string) (units.Size, error) {
	mult := units.Size(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = units.KB, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = units.MB, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return units.Size(n) * mult, nil
}
