package soak

import (
	"bytes"
	"testing"
)

// TestSoakMatrix runs the full adversarial suite: every case must satisfy
// all four invariants (byte-exact delivery, zero leaks, forward progress,
// counter conservation).
func TestSoakMatrix(t *testing.T) {
	for _, c := range Matrix() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			o := Run(c)
			for _, f := range o.Failures {
				t.Errorf("%s", f)
			}
			if c.Plan != "" && o.Report == "fault injection: none fired" {
				t.Error("vacuous: the plan injected nothing")
			}
			if t.Failed() {
				t.Logf("delivered %v; %s", o.Delivered, o.Report)
			}
		})
	}
}

// TestSoakDeterminism: the same case run twice must reproduce its
// telemetry snapshot byte for byte — the whole point of seeded injection.
func TestSoakDeterminism(t *testing.T) {
	for _, c := range []Case{
		{Name: "det-tcp", Plan: "drop:every=13,min=200;corrupt:p=0.05,min=200", Seed: 99, Proto: "tcp"},
		{Name: "det-udp", Plan: "drop:p=0.1,min=1000;dup:every=6,min=1000", Seed: 99, Proto: "udp"},
	} {
		o1, o2 := Run(c), Run(c)
		if len(o1.Failures) > 0 {
			t.Fatalf("%s: %v", c.Name, o1.Failures)
		}
		if !bytes.Equal(o1.MetricsJSON, o2.MetricsJSON) {
			t.Fatalf("%s: same plan+seed produced different metrics JSON", c.Name)
		}
		if o1.Report != o2.Report {
			t.Fatalf("%s: fire counts diverged: %q vs %q", c.Name, o1.Report, o2.Report)
		}
	}
}

// TestSoakCatchesViolations: a plan that genuinely breaks an invariant
// must be reported, not absorbed — guards against a vacuously green suite.
func TestSoakCatchesViolations(t *testing.T) {
	// Dropping every data frame forever wedges the connection: the
	// progress invariant must trip.
	o := Run(Case{Name: "wedge", Plan: "drop:every=1,min=1000", Seed: 1, Proto: "tcp"})
	if len(o.Failures) == 0 {
		t.Fatal("total loss reported no invariant violation")
	}
}

// TestFiredCountersExported: fault counters appear in the telemetry
// snapshot under fault.<kind> when the plan contains the kind.
func TestFiredCountersExported(t *testing.T) {
	o := Run(Case{Name: "ctr", Plan: "drop:every=13,min=200", Seed: 3, Proto: "tcp"})
	if len(o.Failures) > 0 {
		t.Fatalf("%v", o.Failures)
	}
	if !bytes.Contains(o.MetricsJSON, []byte(`"fault.drop"`)) {
		t.Fatal("fault.drop counter missing from telemetry snapshot")
	}
}
