package soak

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/cab"
	"repro/internal/cabdrv"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/tcpip"
	"repro/internal/units"
)

// Keepalive tuning for recovery cases: aggressive enough that a dead peer
// is declared within ~1.5s of virtual time, comfortably inside the 5s
// progress watchdog.
const (
	kaIdle  = 500 * units.Millisecond
	kaIntvl = 250 * units.Millisecond
	kaCount = 3
)

// RecoverCase is one fault-domain recovery scenario: a transfer under a
// stateful fault plan (partition window, adaptor reset, peer death), with
// the set of clean outcomes each flow is allowed to reach.
type RecoverCase struct {
	Name string
	// Plan is the fault plan (must parse; see fault.ParsePlan).
	Plan string
	Seed int64
	Mode socket.Mode
	// Flows is the concurrent connection count (0/1: one flow). Total is
	// per flow; zero picks 1 MB (256 KB when Flows > 1) with 64 KB I/O.
	Flows         int
	Total, RWSize units.Size
	// Arbiter installs the per-flow netmem arbiter on both hosts.
	Arbiter bool
	// KeepAlive enables keepalive probing on every connection (both ends);
	// UserTimeout, when non-zero, bounds sender-side stalls. Cases whose
	// fault can silently kill one end (cabreset, peer death) need these to
	// terminate with a clean error instead of wedging.
	KeepAlive   bool
	UserTimeout units.Time
	// AllowSnd / AllowRcv are the errors a flow's writer / reader may end
	// with. A flow must either complete byte-exact or end in an allowed
	// error on the side that failed; anything else fails the case.
	AllowSnd, AllowRcv []error
	// WantResets / WantPartition are vacuity guards: the scheduled fault
	// must actually have fired.
	WantResets    bool
	WantPartition bool
}

// RecoverFlow is one flow's fate.
type RecoverFlow struct {
	Delivered      units.Size
	SndErr, RcvErr error
	// Complete: the full total arrived byte-exact and both ends finished
	// cleanly.
	Complete bool
}

// RecoverOutcome is a finished recovery case.
type RecoverOutcome struct {
	Case     RecoverCase
	Flows    []RecoverFlow
	Failures []string
	Report   string
	// FlightRec is the flight-recorder dump, taken only when the watchdog
	// declared the run wedged.
	FlightRec []byte

	// Injection schedule (virtual time): FaultAt is the earliest stateful
	// window's start, HealAt the latest heal instant (== FaultAt for an
	// instantaneous cabreset).
	FaultAt, HealAt units.Time
	// FirstGoodputAt is when the first application-level byte landed at or
	// after HealAt (0: no goodput after the fault cleared — the flows
	// died). RecoveryTime is its distance from HealAt.
	FirstGoodputAt units.Time
	RecoveryTime   units.Time
	// EndTime is the virtual time the workload finished.
	EndTime units.Time

	Delivered      units.Size
	Resets         int
	PartitionDrops int64

	A, B *core.Host
}

func (o *RecoverOutcome) failf(format string, args ...any) {
	o.Failures = append(o.Failures, fmt.Sprintf(format, args...))
}

// errAllowed reports whether err matches one of the allowed sentinels.
func errAllowed(err error, allowed []error) bool {
	for _, a := range allowed {
		if errors.Is(err, a) {
			return true
		}
	}
	return false
}

// RunRecover executes one fault-domain recovery case: Flows transfers run
// under the plan; every flow must end byte-exact or in an allowed error,
// with zero netmem/pin leaks and conserved fault counters afterwards.
func RunRecover(c RecoverCase) RecoverOutcome {
	if c.Flows < 1 {
		c.Flows = 1
	}
	if c.Total == 0 {
		if c.Flows > 1 {
			c.Total = 256 * units.KB
		} else {
			c.Total = 1 * units.MB
		}
	}
	if c.RWSize == 0 {
		c.RWSize = 64 * units.KB
	}
	o := RecoverOutcome{Case: c, Flows: make([]RecoverFlow, c.Flows)}

	tb := core.NewTestbed(c.Seed)
	tb.EnableTelemetry()
	tb.EnableLedger()
	inj := fault.New(tb.Eng, c.Seed)
	if err := inj.AddPlan(c.Plan); err != nil {
		o.failf("plan: %v", err)
		return o
	}
	tb.EnableFaults(inj)
	var arb *cab.ArbConfig
	if c.Arbiter {
		arb = &cab.ArbConfig{}
	}
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mode: c.Mode, CABNode: 1, Arbiter: arb})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mode: c.Mode, CABNode: 2, Arbiter: arb})
	tb.RouteCAB(a, b)
	o.A, o.B = a, b

	for _, w := range inj.Windows() {
		if o.HealAt == 0 || w.Until > o.HealAt {
			o.HealAt = w.Until
		}
		if o.FaultAt == 0 || w.From < o.FaultAt {
			o.FaultAt = w.From
		}
		if w.Until == 0 {
			// An unbounded window never heals; recovery is measured against
			// the liveness bound instead, so leave HealAt at the last
			// bounded heal (or the fault instant).
			if o.HealAt < w.From {
				o.HealAt = w.From
			}
		}
	}

	st := a.NewUserTask("recover-snd", 0)
	rt := b.NewUserTask("recover-rcv", 0)

	var (
		got, sent    units.Size
		flowsLeft    = 2 * c.Flows // reader + writer per flow
		done, stuck  bool
		firstGoodput units.Time
	)
	finish := func() {
		if flowsLeft--; flowsLeft == 0 {
			done = true
			o.EndTime = tb.Eng.Now()
		}
	}

	lis := b.Stk.ListenBacklog(port, c.Flows+8)
	tb.Eng.Go("recover-accept", func(p *sim.Proc) {
		for i := 0; i < c.Flows; i++ {
			s := b.Accept(p, rt, lis)
			if s == nil {
				return
			}
			if c.KeepAlive {
				s.Conn.SetKeepAlive(p, kaIdle, kaIntvl, kaCount)
			}
			tb.Eng.Go(fmt.Sprintf("recover-rcv%d", i), func(p *sim.Proc) {
				runRecoverReader(p, tb, b, rt, s, c, &o, &got, &firstGoodput, finish)
			})
		}
	})

	for f := 0; f < c.Flows; f++ {
		f := f
		tb.Eng.Go(fmt.Sprintf("recover-snd%d", f), func(p *sim.Proc) {
			defer finish()
			s, err := a.Dial(p, st, addrB, port)
			if err != nil {
				o.Flows[f].SndErr = err
				return
			}
			if c.KeepAlive {
				s.Conn.SetKeepAlive(p, kaIdle, kaIntvl, kaCount)
			}
			if c.UserTimeout > 0 {
				s.Conn.SetUserTimeout(c.UserTimeout)
			}
			buf := st.Space.Alloc(flowHdrLen+c.RWSize, 8)
			binary.BigEndian.PutUint64(buf.Bytes()[:flowHdrLen], uint64(f))
			if err := s.WriteAll(p, buf.Slice(0, flowHdrLen)); err != nil {
				o.Flows[f].SndErr = err
				s.Conn.Abort(a.K.TaskCtx(p, st))
				return
			}
			var off units.Size
			for off < c.Total {
				n := c.RWSize
				if n > c.Total-off {
					n = c.Total - off
				}
				w := buf.Slice(flowHdrLen, n)
				for i := range w.Bytes() {
					w.Bytes()[i] = patternF(f, off+units.Size(i))
				}
				if err := s.WriteAll(p, w); err != nil {
					o.Flows[f].SndErr = err
					// Tear the connection down hard so the peer's reader
					// sees a RST instead of waiting out its own liveness
					// bound.
					s.Conn.Abort(a.K.TaskCtx(p, st))
					return
				}
				off += n
				sent += n
			}
			s.Close(p)
		})
	}

	// Progress watchdog (see Run): a full quiet window while flows are
	// still outstanding is a wedge — recovery must end in bytes or in a
	// clean error, never in silence.
	tb.Eng.Go("recover-watchdog", func(p *sim.Proc) {
		last := units.Size(0)
		for {
			p.Sleep(watchWindow)
			if done {
				return
			}
			if cur := got + sent; cur != last {
				last = cur
				continue
			}
			stuck = true
			tb.Eng.Stop()
			return
		}
	})

	tb.Eng.Run()
	parked := tb.Eng.LiveProcNames()
	tb.Eng.KillAll()
	o.Delivered = got
	o.Report = inj.Report()
	o.FirstGoodputAt = firstGoodput
	if firstGoodput > o.HealAt {
		o.RecoveryTime = firstGoodput - o.HealAt
	}
	o.Resets = a.CAB.Stats.Resets + b.CAB.Stats.Resets
	o.PartitionDrops = inj.Fired[fault.Partition]

	if stuck {
		o.FlightRec = tb.FlightDump()
		o.failf("progress: no forward progress in %v of virtual time (parked: %v)",
			watchWindow, parked)
		return o
	}

	// Invariant: every flow either completed byte-exact or ended in an
	// allowed, documented error.
	for f := range o.Flows {
		fl := &o.Flows[f]
		if fl.SndErr == nil && fl.RcvErr == nil {
			if fl.Delivered != c.Total {
				o.failf("flow %d: clean end but delivered %v of %v", f, fl.Delivered, c.Total)
				continue
			}
			fl.Complete = true
			continue
		}
		if fl.SndErr != nil && !errAllowed(fl.SndErr, c.AllowSnd) {
			o.failf("flow %d: sender error %q not in the allowed set", f, fl.SndErr)
		}
		if fl.RcvErr != nil && !errAllowed(fl.RcvErr, c.AllowRcv) {
			o.failf("flow %d: reader error %q not in the allowed set", f, fl.RcvErr)
		}
	}

	// Invariant: zero resource leaks — no netmem page may stay allocated
	// and no user page pinned once the run drains, even though the reset
	// wiped descriptors mid-flight.
	for _, h := range []*core.Host{a, b} {
		if free, tot := h.CAB.FreePages(), h.CAB.TotalPages(); free != tot {
			o.failf("leak: host %s holds %d netmem pages after drain", h.Name, tot-free)
		}
	}
	for _, t := range []*kern.Task{st, rt} {
		if n := t.Space.PinnedPages(); n != 0 {
			o.failf("leak: task %s holds %d pinned pages after drain", t.Name, n)
		}
	}

	// Invariant: conservation. Partitioned frames are wire drops accounted
	// to the partition window.
	net := tb.Net
	if net.Sent+net.Duped != net.Delivered+net.Dropped {
		o.failf("conservation: frames sent %d + duped %d != delivered %d + dropped %d",
			net.Sent, net.Duped, net.Delivered, net.Dropped)
	}
	if int64(net.Dropped) != inj.Fired[fault.Drop]+inj.Fired[fault.Partition] {
		o.failf("conservation: wire dropped %d frames, drop faults %d + partition %d",
			net.Dropped, inj.Fired[fault.Drop], inj.Fired[fault.Partition])
	}
	if net.DroppedInj+net.DroppedUnattached+net.DroppedFull != net.Dropped {
		o.failf("conservation: drop split inj %d + unattached %d != dropped %d",
			net.DroppedInj, net.DroppedUnattached, net.Dropped)
	}
	if c.WantResets {
		if inj.Fired[fault.CABReset] == 0 {
			o.failf("vacuous: no cabreset fired")
		}
		if o.Resets == 0 {
			o.failf("vacuous: cabreset fired but no adaptor recorded a reset")
		}
	}
	if c.WantPartition && o.PartitionDrops == 0 {
		o.failf("vacuous: partition window scheduled but no frame was partitioned")
	}
	return o
}

// runRecoverReader drains one accepted flow, verifying the per-flow byte
// pattern and recording the first post-heal goodput instant.
func runRecoverReader(proc *sim.Proc, tb *core.Testbed, b *core.Host, rt *kern.Task,
	s *socket.Socket, c RecoverCase, o *RecoverOutcome, got *units.Size,
	firstGoodput *units.Time, finish func()) {
	defer finish()
	buf := rt.Space.Alloc(c.RWSize, 8)
	var hdr [flowHdrLen]byte
	hb := rt.Space.Alloc(flowHdrLen, 8)
	for hoff := units.Size(0); hoff < flowHdrLen; {
		n, err := s.Read(proc, hb.Slice(hoff, flowHdrLen-hoff))
		copy(hdr[hoff:], hb.Slice(hoff, n).Bytes())
		hoff += n
		if err != nil && hoff < flowHdrLen {
			// The connection died before the 8-byte flow header arrived
			// (an early fault can beat the first data segment). With one
			// flow the attribution is unambiguous — record the error
			// against flow 0 and let the allow-list judge it; with many
			// flows the identity is lost, which is itself a failure.
			if c.Flows == 1 {
				o.Flows[0].RcvErr = err
			} else {
				o.failf("flow header read: %v", err)
			}
			s.Conn.Abort(b.K.TaskCtx(proc, rt))
			return
		}
	}
	flow := int(binary.BigEndian.Uint64(hdr[:]))
	fl := &o.Flows[flow]
	off := units.Size(0)
	for {
		n, err := s.Read(proc, buf)
		for i := units.Size(0); i < n; i++ {
			if w := patternF(flow, off+i); buf.Bytes()[i] != w {
				o.failf("bytes: flow %d offset %d = %#x, want %#x", flow, off+i, buf.Bytes()[i], w)
				tb.Eng.Stop()
				return
			}
		}
		off += n
		*got += n
		fl.Delivered = off
		if n > 0 && *firstGoodput == 0 && tb.Eng.Now() >= o.HealAt {
			*firstGoodput = tb.Eng.Now()
		}
		if err != nil {
			if !errors.Is(err, socket.ErrEOF) {
				fl.RcvErr = err
				// Release the connection so a still-writing sender gets a
				// RST promptly rather than filling a dead window.
				s.Conn.Abort(b.K.TaskCtx(proc, rt))
			}
			return
		}
	}
}

// RecoverMatrix is the fault-domain recovery suite: link partitions across
// connection phases and directions, adaptor resets on each side and both,
// peer death, and combinations with per-packet plans. Cases without
// AllowSnd/AllowRcv must complete every flow byte-exact.
func RecoverMatrix() []RecoverCase {
	sc := socket.ModeSingleCopy
	um := socket.ModeUnmodified
	resetSnd := []error{tcpip.ErrDeviceReset, tcpip.ErrConnReset, tcpip.ErrConnTimeout, tcpip.ErrTimeout, cabdrv.ErrReset}
	resetRcv := []error{tcpip.ErrDeviceReset, tcpip.ErrConnReset, tcpip.ErrTimeout, cabdrv.ErrReset}
	deathSnd := []error{tcpip.ErrTimeout, tcpip.ErrConnTimeout}
	deathRcv := []error{tcpip.ErrTimeout, tcpip.ErrConnReset}
	return []RecoverCase{
		// Link partitions: every flow must heal and complete byte-exact.
		{Name: "partition-slowstart", Plan: "partition:at=500us,dur=5ms", Seed: 41, Mode: sc, WantPartition: true},
		{Name: "partition-steady", Plan: "partition:at=10ms,dur=10ms", Seed: 42, Mode: sc, WantPartition: true},
		{Name: "partition-long", Plan: "partition:at=5ms,dur=300ms", Seed: 43, Mode: sc, WantPartition: true},
		{Name: "partition-data-dir", Plan: "partition:at=5ms,dur=20ms,src=1,dst=2", Seed: 44, Mode: sc, WantPartition: true},
		{Name: "partition-ack-dir", Plan: "partition:at=5ms,dur=20ms,src=2,dst=1", Seed: 45, Mode: sc, WantPartition: true},
		{Name: "partition-drop-combo", Plan: "partition:at=6ms,dur=15ms;drop:every=13,min=200", Seed: 46, Mode: sc, WantPartition: true},
		{Name: "partition-corrupt-combo", Plan: "partition:at=6ms,dur=15ms;corrupt:every=11,min=200", Seed: 47, Mode: sc, WantPartition: true},
		{Name: "partition-unmod", Plan: "partition:at=5ms,dur=20ms", Seed: 48, Mode: um, WantPartition: true},

		// Adaptor resets: flows with outboard state die with a clean typed
		// error; flows without it must recover via retransmission.
		{Name: "cabreset-sender", Plan: "cabreset:at=8ms,node=1", Seed: 51, Mode: sc, KeepAlive: true,
			AllowSnd: resetSnd, AllowRcv: resetRcv, WantResets: true},
		{Name: "cabreset-receiver", Plan: "cabreset:at=8ms,node=2", Seed: 52, Mode: sc, KeepAlive: true,
			AllowSnd: resetSnd, AllowRcv: resetRcv, WantResets: true},
		{Name: "cabreset-both", Plan: "cabreset:at=8ms", Seed: 53, Mode: sc, KeepAlive: true,
			AllowSnd: resetSnd, AllowRcv: resetRcv, WantResets: true},
		{Name: "cabreset-multiflow", Plan: "cabreset:at=6ms,node=1", Seed: 54, Mode: sc, KeepAlive: true,
			Flows: 4, Arbiter: true, AllowSnd: resetSnd, AllowRcv: resetRcv, WantResets: true},
		// The paper's fault-domain contrast: the unmodified stack keeps all
		// transport state in host memory, so a firmware reset loses nothing
		// the kernel cannot retransmit — every flow completes byte-exact.
		{Name: "cabreset-unmod", Plan: "cabreset:at=8ms", Seed: 55, Mode: um, WantResets: true},
		{Name: "cabreset-drop-combo", Plan: "cabreset:at=8ms,node=1;drop:every=17,min=200", Seed: 56, Mode: sc,
			KeepAlive: true, AllowSnd: resetSnd, AllowRcv: resetRcv, WantResets: true},

		// Peer death: an unbounded partition. Liveness (keepalive on the
		// idle reader, user-timeout on the stalled writer) must surface a
		// clean typed error within its bound on both ends.
		{Name: "peerdeath-steady", Plan: "partition:at=10ms", Seed: 57, Mode: sc, KeepAlive: true,
			UserTimeout: 2 * units.Second, AllowSnd: deathSnd, AllowRcv: deathRcv, WantPartition: true},
		{Name: "peerdeath-slowstart", Plan: "partition:at=1ms", Seed: 58, Mode: sc, KeepAlive: true,
			UserTimeout: 2 * units.Second, AllowSnd: deathSnd, AllowRcv: deathRcv, WantPartition: true},
	}
}
