package soak

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/units"
)

// Recovery-corner tests: each pins one specific end-to-end recovery
// mechanism under injected faults, beyond the matrix's blanket invariants.

// TestCorruptionCaughtByChecksum: injected bit flips must surface as
// receiver checksum errors and sender retransmissions — never as silently
// accepted corrupt data (the matrix's byte-exact check) and never as
// anything else (link parse drops would leave the csum counter at zero).
func TestCorruptionCaughtByChecksum(t *testing.T) {
	o := Run(Case{Name: "corrupt", Plan: "corrupt:every=5,min=1000", Seed: 31, Proto: "tcp"})
	if len(o.Failures) > 0 {
		t.Fatalf("%v", o.Failures)
	}
	if o.B.Stk.Stats.TCPCsumErrors == 0 {
		t.Fatal("no corruption was detected by the receive checksum")
	}
	if o.A.Stk.Stats.TCPRetransmits == 0 {
		t.Fatal("detected corruption caused no retransmission")
	}
}

// TestDupAndReorderDoNotCorruptReassembly: duplicated and reordered
// segments must be absorbed by TCP reassembly — visible in the dup/ooo
// counters, invisible in the byte stream.
func TestDupAndReorderDoNotCorruptReassembly(t *testing.T) {
	o := Run(Case{Name: "dup-reorder", Seed: 32, Proto: "tcp",
		Plan: "dup:every=6,min=1000;reorder:every=7,min=1000,delay=3ms"})
	if len(o.Failures) > 0 {
		t.Fatalf("%v", o.Failures)
	}
	if o.B.Stk.Stats.TCPDupSegs == 0 {
		t.Fatal("vacuous: receiver never saw a duplicate segment")
	}
	if o.B.Stk.Stats.TCPOutOfOrder == 0 {
		t.Fatal("vacuous: receiver never held an out-of-order segment")
	}
}

// TestRTOBackoffResetsAfterLossBurst samples the connection's RTO through
// a dense early loss burst: backoff must raise it above base while the
// burst starves ACKs, and forward progress afterwards must reset it.
func TestRTOBackoffResetsAfterLossBurst(t *testing.T) {
	tb := core.NewTestbed(33)
	inj := fault.New(tb.Eng, 33)
	// Drop 8 consecutive data frames early in the transfer.
	inj.Add(fault.Rule{Kind: fault.Drop, When: fault.Burst(4, 8), MinLen: 1000})
	tb.EnableFaults(inj)
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mode: socket.ModeSingleCopy, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mode: socket.ModeSingleCopy, CABNode: 2})
	tb.RouteCAB(a, b)

	const total = 1 * units.MB
	const ws = 64 * units.KB
	lis := b.Stk.Listen(port)
	var got units.Size
	rt := b.NewUserTask("rcv", 0)
	tb.Eng.Go("rcv", func(p *sim.Proc) {
		s := b.Accept(p, rt, lis)
		buf := rt.Space.Alloc(ws, 8)
		for {
			n, err := s.Read(p, buf)
			got += n
			if err != nil {
				return
			}
		}
	})
	st := a.NewUserTask("snd", 0)
	var maxRTO, lastRTO units.Time
	var sock *socket.Socket
	tb.Eng.Go("snd", func(p *sim.Proc) {
		s, err := a.Dial(p, st, addrB, port)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		sock = s
		buf := st.Space.Alloc(ws, 8)
		for sent := units.Size(0); sent < total; sent += ws {
			if err := s.WriteAll(p, buf); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		s.Close(p)
	})
	tb.Eng.Go("rto-sampler", func(p *sim.Proc) {
		for got < total {
			p.Sleep(10 * units.Millisecond)
			if sock != nil {
				lastRTO = sock.Conn.RTO()
				if lastRTO > maxRTO {
					maxRTO = lastRTO
				}
			}
		}
	})
	tb.Eng.Run()
	tb.Eng.KillAll()

	if got != total {
		t.Fatalf("transfer incomplete: %v of %v", got, total)
	}
	base := sock.Conn.RTO() // fully recovered connection sits at base
	if maxRTO <= base {
		t.Fatalf("loss burst never backed off the RTO (max %v, base %v)", maxRTO, base)
	}
	if lastRTO != base {
		t.Fatalf("RTO did not reset after recovery: %v, want %v", lastRTO, base)
	}
}

// TestIPReassemblyTimeoutUnderFragmentLoss shrinks the CAB MTU so UDP
// datagrams fragment, then drops fragments: incomplete datagrams must be
// reclaimed by the reassembly timer (counted, no leak), while intact ones
// still arrive.
func TestIPReassemblyTimeoutUnderFragmentLoss(t *testing.T) {
	tb := core.NewTestbed(34)
	inj := fault.New(tb.Eng, 34)
	inj.Add(fault.Rule{Kind: fault.Drop, When: fault.Every(7), MinLen: 2000})
	tb.EnableFaults(inj)
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mode: socket.ModeSingleCopy, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mode: socket.ModeSingleCopy, CABNode: 2})
	tb.RouteCAB(a, b)
	a.Drv.SetMTU(8 * units.KB) // a 32 KB datagram becomes 4+ fragments

	rt := b.NewUserTask("rcv", 0)
	st := a.NewUserTask("snd", 0)
	const dg = 32 * units.KB
	var rcvd int
	rx := socket.MustDGram(b.K, b.VM, rt, b.Stk, port, b.SocketConfig())
	tb.Eng.Go("rcv", func(p *sim.Proc) {
		buf := rt.Space.Alloc(dg, 8)
		for {
			if n, _, _ := rx.RecvFrom(p, buf); n == 0 {
				return
			}
			rcvd++
		}
	})
	tb.Eng.Go("snd", func(p *sim.Proc) {
		tx := socket.MustDGram(a.K, a.VM, st, a.Stk, 0, a.SocketConfig())
		buf := st.Space.Alloc(dg, 8)
		for i := 0; i < 40; i++ {
			tx.SendTo(p, buf, addrB, port)
		}
	})
	tb.Eng.Run()
	tb.Eng.KillAll()

	if rcvd == 0 {
		t.Fatal("no datagram survived fragment loss")
	}
	if b.Stk.Stats.IPReassTimeouts == 0 {
		t.Fatal("fragment loss never tripped the reassembly timeout")
	}
	if free, tot := b.CAB.FreePages(), b.CAB.TotalPages(); free != tot {
		t.Fatalf("reassembly timeout leaked %d netmem pages", tot-free)
	}
}

// TestNetmemPressureKeepsACKsFlowing is the regression test for the
// silent-drop fix: with the sender's CAB memory reserved mid-transfer,
// inbound ACKs (small frames) must be delivered straight from the auto-DMA
// buffer rather than dropped, and the transfer must complete.
func TestNetmemPressureKeepsACKsFlowing(t *testing.T) {
	tb := core.NewTestbed(35)
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mode: socket.ModeSingleCopy, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mode: socket.ModeSingleCopy, CABNode: 2})
	tb.RouteCAB(a, b)
	// Squeeze only the sender's adaptor, after the transfer is in full
	// flight: its inbound ACKs then hit the exhausted-memory path.
	inj := fault.New(tb.Eng, 35)
	inj.Add(fault.Rule{Kind: fault.Netmem, From: 2 * units.Millisecond, Until: 8 * units.Millisecond})
	inj.WireCAB(a.CAB)

	const total = 4 * units.MB
	const ws = 64 * units.KB
	lis := b.Stk.Listen(port)
	var got []byte
	rt := b.NewUserTask("rcv", 0)
	tb.Eng.Go("rcv", func(p *sim.Proc) {
		s := b.Accept(p, rt, lis)
		buf := rt.Space.Alloc(ws, 8)
		for {
			n, err := s.Read(p, buf)
			if n > 0 {
				got = append(got, buf.Slice(0, n).Bytes()...)
			}
			if err != nil {
				return
			}
		}
	})
	st := a.NewUserTask("snd", 0)
	want := make([]byte, ws)
	for i := range want {
		want[i] = byte(5 * i)
	}
	tb.Eng.Go("snd", func(p *sim.Proc) {
		s, err := a.Dial(p, st, addrB, port)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		buf := st.Space.Alloc(ws, 8)
		copy(buf.Bytes(), want)
		for sent := units.Size(0); sent < total; sent += ws {
			if err := s.WriteAll(p, buf); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		s.Close(p)
	})
	tb.Eng.Run()
	tb.Eng.KillAll()

	if units.Size(len(got)) != total {
		t.Fatalf("transfer incomplete under sender netmem pressure: %v", units.Size(len(got)))
	}
	for off := 0; off < len(got); off += len(want) {
		if !bytes.Equal(got[off:off+len(want)], want) {
			t.Fatalf("data corrupted at offset %d", off)
		}
	}
	if a.CAB.Stats.RxHdrDeliveries == 0 {
		t.Fatal("no ACK was delivered direct from the auto-DMA buffer under pressure")
	}
	if a.CAB.FreePages() != a.CAB.TotalPages() {
		t.Fatal("pages leaked after the pressure window")
	}
}
