// Package soak runs full end-to-end transfers under adversarial fault
// plans and checks the recovery invariants that make fault injection
// meaningful: byte-exact delivery, zero resource leaks, forward progress,
// and counter conservation. Every case is seeded and deterministic — a
// failing case replays exactly from its (plan, seed) pair.
package soak

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cab"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/obs/engine"
	"repro/internal/obs/ledger"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/units"
	"repro/internal/wire"
)

const (
	addrA = wire.Addr(0x0a000001)
	addrB = wire.Addr(0x0a000002)
	port  = 5001

	// watchWindow is the progress watchdog's sampling period. It must
	// exceed the worst-case quiet stretch of a healthy run (a maximal
	// 2s RTO backoff), so a window with no progress means a wedge.
	watchWindow = 5 * units.Second
)

// Case is one soak scenario: a transfer shape plus a fault plan.
type Case struct {
	Name string
	// Plan is the fault plan spec (see fault.ParsePlan); "" runs clean.
	Plan string
	Seed int64
	// Proto is "tcp" or "udp".
	Proto string
	Mode  socket.Mode
	// Total and RWSize shape the transfer; zero values pick defaults
	// (1 MB / 64 KB for TCP, 512 KB / 16 KB for UDP). With Flows > 1,
	// Total is per flow.
	Total, RWSize units.Size
	// Flows > 1 runs that many concurrent TCP connections (each moving
	// Total bytes with its own byte pattern); the audit then checks every
	// flow separately in loose mode.
	Flows int
	// Arbiter installs the per-flow netmem arbiter on both hosts.
	Arbiter bool
	// EngObs, when set, attaches the simulator meta-observer to the
	// case's engine (simbench runs the whole matrix through one observer).
	EngObs *engine.Observer
}

// Outcome is a finished soak case. Failures lists every violated
// invariant; an empty list means the case passed.
type Outcome struct {
	Case      Case
	Delivered units.Size
	Report    string
	Failures  []string
	// MetricsJSON is the run's telemetry snapshot, the determinism
	// oracle: the same case must reproduce it byte for byte.
	MetricsJSON []byte
	// FlightRec is the flight-recorder image (recent ledger and trace
	// events per host), dumped only when the watchdog declared the run
	// stuck; nil otherwise.
	FlightRec []byte
	// A (sender) and B (receiver) stay readable after the run so callers
	// can assert on protocol and hardware counters.
	A, B *core.Host

	// flowPorts holds each many-flow sender's local port (= ledger flow
	// id), in flow order, for the per-flow audit.
	flowPorts []uint16
}

func (o *Outcome) failf(format string, args ...any) {
	o.Failures = append(o.Failures, fmt.Sprintf(format, args...))
}

// Run executes one soak case.
func Run(c Case) Outcome {
	if c.Total == 0 {
		if c.Proto == "udp" {
			c.Total = 512 * units.KB
		} else {
			c.Total = 1 * units.MB
		}
	}
	if c.RWSize == 0 {
		if c.Proto == "udp" {
			c.RWSize = 16 * units.KB
		} else {
			c.RWSize = 64 * units.KB
		}
	}
	o := Outcome{Case: c}

	tb := core.NewTestbed(c.Seed)
	if c.EngObs != nil {
		tb.EnableEngineObs(c.EngObs)
	}
	tb.EnableTelemetry()
	led := tb.EnableLedger()
	inj := fault.New(tb.Eng, c.Seed)
	if c.Plan != "" {
		if err := inj.AddPlan(c.Plan); err != nil {
			o.failf("plan: %v", err)
			return o
		}
	}
	tb.EnableFaults(inj)
	var arb *cab.ArbConfig
	if c.Arbiter {
		arb = &cab.ArbConfig{}
	}
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mode: c.Mode, CABNode: 1, Arbiter: arb})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mode: c.Mode, CABNode: 2, Arbiter: arb})
	tb.RouteCAB(a, b)
	o.A, o.B = a, b

	st := a.NewUserTask("soak-snd", 0)
	rt := b.NewUserTask("soak-rcv", 0)

	var (
		got       units.Size // receiver progress, in bytes
		sent      units.Size // sender progress, in bytes
		senderRun = true
		done      bool
		stuck     bool
	)
	switch {
	case c.Proto == "udp":
		runUDP(tb, a, b, st, rt, c, inj, &o, &got, &sent, &senderRun)
	case c.Flows > 1:
		runTCPMany(tb, a, b, st, rt, c, &o, &got, &sent, &senderRun, &done)
	default:
		runTCP(tb, a, b, st, rt, c, &o, &got, &sent, &senderRun, &done)
	}

	// Progress watchdog: a full window with no byte-level progress while
	// the workload is still running means a stuck connection. For UDP a
	// quiet window after the sender finished is normal drain.
	tb.Eng.Go("soak-watchdog", func(p *sim.Proc) {
		last := units.Size(0)
		for {
			p.Sleep(watchWindow)
			if done {
				return
			}
			cur := got + sent
			if cur == last {
				if !senderRun && c.Proto == "udp" {
					return
				}
				stuck = true
				tb.Eng.Stop()
				return
			}
			last = cur
		}
	})

	tb.Eng.Run()
	tb.Eng.KillAll()
	o.Delivered = got
	o.Report = inj.Report()
	o.MetricsJSON = tb.Tel.Snapshot().JSON()

	// Invariant: progress. Everything below assumes a drained run. A
	// wedge dumps the flight recorder so the stall is diagnosable from
	// the outcome alone.
	if stuck {
		o.FlightRec = tb.FlightDump()
		o.failf("progress: no forward progress in %v of virtual time", watchWindow)
		return o
	}

	// Invariant: zero resource leaks.
	for _, h := range []*core.Host{a, b} {
		if free, tot := h.CAB.FreePages(), h.CAB.TotalPages(); free != tot {
			o.failf("leak: host %s holds %d netmem pages after drain", h.Name, tot-free)
		}
	}
	for _, t := range []*kern.Task{st, rt} {
		if n := t.Space.PinnedPages(); n != 0 {
			o.failf("leak: task %s holds %d pinned pages after drain", t.Name, n)
		}
	}

	checkConservation(&o, tb, a, b, inj)

	// Invariant: no path silently gains or loses a data touch during
	// recovery. The clean single-copy run must show the exact paper
	// counts; faulted runs get the documented retransmit allowance
	// (loose mode); the unmodified stack must still copy and checksum
	// every byte on both hosts. UDP transfers tolerate loss by design,
	// so per-byte stream coverage does not apply.
	if c.Proto == "tcp" && c.Flows <= 1 {
		cfg := ledger.AuditConfig{
			Flow: led.MainFlow(), Total: c.Total,
			SndHost: "A", RcvHost: "B", Strict: c.Plan == "",
		}
		var err error
		if c.Mode == socket.ModeSingleCopy {
			err = led.AssertSingleCopy(cfg)
		} else {
			err = led.AssertMultiCopy(cfg)
		}
		if err != nil {
			o.FlightRec = tb.FlightDump()
			o.failf("audit: %v", err)
		}
	}
	// Many-flow runs audit every flow separately, always in loose mode:
	// concurrent flows contend for netmem, so any flow may retransmit
	// even on a clean plan. Each sender's local port is its ledger flow.
	if c.Proto == "tcp" && c.Flows > 1 {
		if len(o.flowPorts) != c.Flows {
			o.failf("audit: only %d of %d flows dialed", len(o.flowPorts), c.Flows)
		}
		for i, fp := range o.flowPorts {
			cfg := ledger.AuditConfig{
				Flow: int(fp), Total: c.Total + flowHdrLen,
				SndHost: "A", RcvHost: "B", Strict: false,
			}
			var err error
			if c.Mode == socket.ModeSingleCopy {
				err = led.AssertSingleCopy(cfg)
			} else {
				err = led.AssertMultiCopy(cfg)
			}
			if err != nil {
				o.failf("audit: flow %d (port %d): %v", i, fp, err)
			}
		}
	}
	return o
}

// pattern fills data for the byte-exactness check: every offset of the
// stream (TCP) or every (seq, offset) of a datagram (UDP) has one expected
// value.
func pattern(off units.Size) byte { return byte(3*off + 7) }

func runTCP(tb *core.Testbed, a, b *core.Host, st, rt *kern.Task, c Case,
	o *Outcome, got, sent *units.Size, senderRun *bool, done *bool) {
	lis := b.Stk.Listen(port)
	tb.Eng.Go("soak-rcv", func(p *sim.Proc) {
		s := b.Accept(p, rt, lis)
		buf := rt.Space.Alloc(c.RWSize, 8)
		for {
			n, err := s.Read(p, buf)
			for i := units.Size(0); i < n; i++ {
				if w := pattern(*got + i); buf.Bytes()[i] != w {
					o.failf("bytes: offset %d = %#x, want %#x", *got+i, buf.Bytes()[i], w)
					tb.Eng.Stop()
					return
				}
			}
			*got += n
			if err != nil {
				*done = true
				return
			}
		}
	})
	tb.Eng.Go("soak-snd", func(p *sim.Proc) {
		defer func() { *senderRun = false }()
		s, err := a.Dial(p, st, addrB, port)
		if err != nil {
			o.failf("progress: dial: %v", err)
			return
		}
		buf := st.Space.Alloc(c.RWSize, 8)
		for *sent < c.Total {
			n := c.RWSize
			if n > c.Total-*sent {
				n = c.Total - *sent
			}
			w := buf.Slice(0, n)
			for i := range w.Bytes() {
				w.Bytes()[i] = pattern(*sent + units.Size(i))
			}
			if err := s.WriteAll(p, w); err != nil {
				o.failf("progress: write at %v: %v", *sent, err)
				return
			}
			*sent += n
		}
		s.Close(p)
	})
}

// flowHdrLen prefixes each many-flow TCP stream with its flow id, so the
// accept loop can pair a connection with its expected byte pattern
// without relying on accept order.
const flowHdrLen = 8

// patternF is flow f's stream pattern — distinct per flow, so cross-flow
// data mixups surface as corruption, not coincidence.
func patternF(f int, off units.Size) byte { return byte(f*131 + 3*int(off) + 7) }

// runTCPMany is runTCP at Case.Flows concurrent connections: every flow
// moves c.Total patterned bytes over its own connection, byte-exactness
// is checked per flow, and the aggregate progress feeds the watchdog.
func runTCPMany(tb *core.Testbed, a, b *core.Host, st, rt *kern.Task, c Case,
	o *Outcome, got, sent *units.Size, senderRun *bool, done *bool) {
	lis := b.Stk.ListenBacklog(port, c.Flows+8)
	readersLeft, sendersLeft := c.Flows, c.Flows
	o.flowPorts = make([]uint16, c.Flows)

	tb.Eng.Go("soak-accept", func(p *sim.Proc) {
		for i := 0; i < c.Flows; i++ {
			s := b.Accept(p, rt, lis)
			if s == nil {
				return
			}
			tb.Eng.Go(fmt.Sprintf("soak-rcv%d", i), func(p *sim.Proc) {
				buf := rt.Space.Alloc(c.RWSize, 8)
				// The stream leads with the flow id.
				var hdr [flowHdrLen]byte
				hb := rt.Space.Alloc(flowHdrLen, 8)
				for hoff := units.Size(0); hoff < flowHdrLen; {
					n, err := s.Read(p, hb.Slice(hoff, flowHdrLen-hoff))
					copy(hdr[hoff:], hb.Slice(hoff, n).Bytes())
					hoff += n
					if err != nil && hoff < flowHdrLen {
						o.failf("progress: flow header read: %v", err)
						return
					}
				}
				flow := int(binary.BigEndian.Uint64(hdr[:]))
				off := units.Size(0)
				for {
					n, err := s.Read(p, buf)
					for i := units.Size(0); i < n; i++ {
						if w := patternF(flow, off+i); buf.Bytes()[i] != w {
							o.failf("bytes: flow %d offset %d = %#x, want %#x",
								flow, off+i, buf.Bytes()[i], w)
							tb.Eng.Stop()
							return
						}
					}
					off += n
					*got += n
					if err != nil {
						break
					}
				}
				if off != c.Total {
					o.failf("bytes: flow %d delivered %d of %d", flow, off, c.Total)
				}
				if readersLeft--; readersLeft == 0 && sendersLeft == 0 {
					*done = true
				}
			})
		}
	})

	for f := 0; f < c.Flows; f++ {
		f := f
		tb.Eng.Go(fmt.Sprintf("soak-snd%d", f), func(p *sim.Proc) {
			defer func() {
				if sendersLeft--; sendersLeft == 0 {
					*senderRun = false
				}
			}()
			s, err := a.Dial(p, st, addrB, port)
			if err != nil {
				o.failf("progress: flow %d dial: %v", f, err)
				return
			}
			o.flowPorts[f] = s.Conn.LocalPort()
			buf := st.Space.Alloc(flowHdrLen+c.RWSize, 8)
			binary.BigEndian.PutUint64(buf.Bytes()[:flowHdrLen], uint64(f))
			if err := s.WriteAll(p, buf.Slice(0, flowHdrLen)); err != nil {
				o.failf("progress: flow %d header: %v", f, err)
				return
			}
			var off units.Size
			for off < c.Total {
				n := c.RWSize
				if n > c.Total-off {
					n = c.Total - off
				}
				w := buf.Slice(flowHdrLen, n)
				for i := range w.Bytes() {
					w.Bytes()[i] = patternF(f, off+units.Size(i))
				}
				if err := s.WriteAll(p, w); err != nil {
					o.failf("progress: flow %d write at %v: %v", f, off, err)
					return
				}
				off += n
				*sent += n
			}
			s.Close(p)
		})
	}
}

// udpSeqLen prefixes each datagram with its sequence number, so the
// receiver can verify payload integrity per datagram and detect
// duplicates, without relying on ordered or complete delivery.
const udpSeqLen = 8

func runUDP(tb *core.Testbed, a, b *core.Host, st, rt *kern.Task, c Case,
	inj *fault.Injector, o *Outcome, got, sent *units.Size, senderRun *bool) {
	nDg := int(c.Total / c.RWSize)
	seen := make(map[uint64]int)
	rx := socket.MustDGram(b.K, b.VM, rt, b.Stk, port, b.SocketConfig())
	tb.Eng.Go("soak-udp-rcv", func(p *sim.Proc) {
		buf := rt.Space.Alloc(c.RWSize, 8)
		for {
			n, _, _ := rx.RecvFrom(p, buf)
			if n == 0 {
				return
			}
			data := buf.Slice(0, n).Bytes()
			if n != c.RWSize {
				o.failf("bytes: datagram of %d bytes, want %d", n, c.RWSize)
				continue
			}
			seq := binary.BigEndian.Uint64(data)
			if seq >= uint64(nDg) {
				o.failf("bytes: datagram seq %d out of range [0,%d)", seq, nDg)
				continue
			}
			if seen[seq]++; seen[seq] > 1 && inj.Fired[fault.Dup] == 0 {
				o.failf("bytes: datagram %d delivered twice without a dup fault", seq)
			}
			ok := true
			for i := udpSeqLen; ok && i < len(data); i++ {
				if w := pattern(units.Size(seq)*c.RWSize + units.Size(i)); data[i] != w {
					o.failf("bytes: datagram %d offset %d = %#x, want %#x", seq, i, data[i], w)
					ok = false
				}
			}
			*got += n
		}
	})
	tb.Eng.Go("soak-udp-snd", func(p *sim.Proc) {
		defer func() { *senderRun = false }()
		tx := socket.MustDGram(a.K, a.VM, st, a.Stk, 0, a.SocketConfig())
		buf := st.Space.Alloc(c.RWSize, 8)
		for seq := 0; seq < nDg; seq++ {
			data := buf.Bytes()
			binary.BigEndian.PutUint64(data, uint64(seq))
			for i := udpSeqLen; i < len(data); i++ {
				data[i] = pattern(units.Size(seq)*c.RWSize + units.Size(i))
			}
			tx.SendTo(p, buf, addrB, port)
			*sent += c.RWSize
		}
	})
}

// checkConservation cross-checks the fault ledger against protocol and
// hardware counters: every injected fault must be visible in, and
// consistent with, what the stacks observed.
func checkConservation(o *Outcome, tb *core.Testbed, a, b *core.Host, inj *fault.Injector) {
	net := tb.Net
	if net.Sent+net.Duped != net.Delivered+net.Dropped {
		o.failf("conservation: frames sent %d + duped %d != delivered %d + dropped %d",
			net.Sent, net.Duped, net.Delivered, net.Dropped)
	}
	if int64(net.Dropped) != inj.Fired[fault.Drop]+inj.Fired[fault.Partition] {
		// Partitioned frames are wire drops too, but they are accounted to
		// the partition window, never to the per-packet drop schedule (the
		// partition pre-pass returns before per-packet rules advance).
		o.failf("conservation: wire dropped %d frames but drop faults fired %d and partition ate %d",
			net.Dropped, inj.Fired[fault.Drop], inj.Fired[fault.Partition])
	}
	if net.DroppedInj+net.DroppedUnattached+net.DroppedFull != net.Dropped {
		// The drop taxonomy must partition the total: every wire drop is
		// either injected (fault/partition) or a detached destination port.
		o.failf("conservation: drop split inj %d + unattached %d != dropped %d",
			net.DroppedInj, net.DroppedUnattached, net.Dropped)
	}
	if inj.Fired[fault.Dup] > 0 && net.Duped == 0 {
		o.failf("conservation: dup faults fired %d but no frame was duplicated", inj.Fired[fault.Dup])
	}

	csumSeen := a.Stk.Stats.TCPCsumErrors + b.Stk.Stats.TCPCsumErrors +
		a.Stk.Stats.UDPCsumErrors + b.Stk.Stats.UDPCsumErrors
	if inj.Fired[fault.Corrupt] > 0 && csumSeen == 0 {
		o.failf("conservation: %d corruptions injected but no checksum error detected",
			inj.Fired[fault.Corrupt])
	}
	if inj.Fired[fault.RxCsum] > 0 && csumSeen == 0 {
		o.failf("conservation: %d rx-checksum faults injected but none detected",
			inj.Fired[fault.RxCsum])
	}
	if inj.Fired[fault.TxCsum] > 0 && csumSeen == 0 {
		o.failf("conservation: %d tx-checksum faults injected but none detected",
			inj.Fired[fault.TxCsum])
	}
	if inj.Fired[fault.DMAFail] > 0 && a.CAB.Stats.SDMAFails+b.CAB.Stats.SDMAFails == 0 {
		o.failf("conservation: DMA faults fired but no SDMA failure recorded")
	}
	if inj.Fired[fault.AllocFail] > 0 && a.K.AllocFailures+b.K.AllocFailures == 0 {
		o.failf("conservation: alloc faults fired but no allocation failure recorded")
	}
	if inj.Fired[fault.Netmem] > 0 &&
		a.CAB.Stats.RxRetries+b.CAB.Stats.RxRetries+
			a.CAB.Stats.RxHdrDeliveries+b.CAB.Stats.RxHdrDeliveries+
			a.CAB.Stats.ArbWaits+b.CAB.Stats.ArbWaits == 0 {
		// Under the arbiter, memory pressure surfaces as tx-admission waits
		// rather than rx-side retries, so both count as evidence.
		o.failf("conservation: netmem pressure applied but no backpressure recorded")
	}

	if o.Case.Proto == "tcp" {
		// Any delivery-disturbing fault must surface as retransmissions,
		// and with the single-copy stack those retransmissions must come
		// from outboard memory (overlay) or the fallback re-read.
		lossy := inj.Fired[fault.Drop] + inj.Fired[fault.Corrupt] +
			inj.Fired[fault.RxCsum] + inj.Fired[fault.TxCsum]
		if lossy > 0 && a.Stk.Stats.TCPRetransmits == 0 {
			o.failf("conservation: %d delivery faults but no TCP retransmission", lossy)
		}
		if o.Case.Mode == socket.ModeSingleCopy && a.Stk.Stats.TCPRetransmits > 0 &&
			a.Drv.Stats.TxOverlays+a.Drv.Stats.TxFallbackReads == 0 {
			o.failf("conservation: %d retransmits but no overlay or fallback read",
				a.Stk.Stats.TCPRetransmits)
		}
		want := o.Case.Total
		if o.Case.Flows > 1 {
			want = o.Case.Total * units.Size(o.Case.Flows)
		}
		if o.Delivered != want {
			o.failf("bytes: delivered %v of %v", o.Delivered, want)
		}
	} else {
		// UDP: losses are legal, silence is not. Every sent datagram is
		// either delivered or accounted for by a drop/corruption counter.
		sentDg := a.Stk.Stats.UDPOut
		rcvdDg := b.Stk.Stats.UDPIn
		accounted := int(inj.Fired[fault.Drop]) +
			b.Stk.Stats.UDPCsumErrors + b.Stk.Stats.UDPRcvFull +
			b.CAB.Stats.DropNoMem + b.CAB.Stats.DropNoBuf +
			b.Stk.Stats.IPReassTimeouts
		if rcvdDg > sentDg+int(inj.Fired[fault.Dup]) {
			o.failf("conservation: received %d datagrams, sent only %d (+%d dups)",
				rcvdDg, sentDg, inj.Fired[fault.Dup])
		}
		if rcvdDg+accounted < sentDg {
			o.failf("conservation: %d datagrams unaccounted for (sent %d, received %d, accounted %d)",
				sentDg-rcvdDg-accounted, sentDg, rcvdDg, accounted)
		}
	}
}

// Matrix is the full adversarial soak suite: every fault surface, both
// protocols, both stack modes, and a combined-plan stress case. TCP plans
// carry min=200 so the handshake survives; UDP data plans use min=1000.
func Matrix() []Case {
	sc := socket.ModeSingleCopy
	um := socket.ModeUnmodified
	return []Case{
		{Name: "tcp-clean", Plan: "", Seed: 1, Proto: "tcp", Mode: sc},
		{Name: "tcp-drop", Plan: "drop:every=13,min=200", Seed: 2, Proto: "tcp", Mode: sc},
		{Name: "tcp-drop-burst", Plan: "drop:burst=10+6,min=200", Seed: 3, Proto: "tcp", Mode: sc},
		{Name: "tcp-corrupt", Plan: "corrupt:every=11,min=200", Seed: 4, Proto: "tcp", Mode: sc},
		{Name: "tcp-dup", Plan: "dup:every=7,min=200", Seed: 5, Proto: "tcp", Mode: sc},
		{Name: "tcp-reorder", Plan: "reorder:every=7,min=1000,delay=3ms", Seed: 6, Proto: "tcp", Mode: sc},
		{Name: "tcp-delay", Plan: "delay:p=0.2,min=200", Seed: 7, Proto: "tcp", Mode: sc},
		{Name: "tcp-dmafail", Plan: "dmafail:every=23", Seed: 8, Proto: "tcp", Mode: sc},
		{Name: "tcp-txcsum", Plan: "txcsum:every=31", Seed: 9, Proto: "tcp", Mode: sc},
		{Name: "tcp-rxcsum", Plan: "rxcsum:every=29", Seed: 10, Proto: "tcp", Mode: sc},
		{Name: "tcp-netmem", Plan: "netmem:at=2ms,until=10ms", Seed: 11, Proto: "tcp", Mode: sc},
		{Name: "tcp-allocfail", Plan: "allocfail:every=17", Seed: 12, Proto: "tcp", Mode: sc},
		{Name: "tcp-combined", Seed: 13, Proto: "tcp", Mode: sc,
			Plan: "drop:every=11,min=200;corrupt:every=13,min=200;dup:every=17,min=200;delay:p=0.1,min=200"},
		{Name: "tcp-64flow-drop", Plan: "drop:every=29,min=500", Seed: 31, Proto: "tcp", Mode: sc,
			Flows: 64, Arbiter: true, Total: 64 * units.KB, RWSize: 16 * units.KB},
		{Name: "tcp-64flow-netmem", Plan: "netmem:at=2ms,until=10ms", Seed: 32, Proto: "tcp", Mode: sc,
			Flows: 64, Arbiter: true, Total: 64 * units.KB, RWSize: 16 * units.KB},
		{Name: "tcp-unmod-drop", Plan: "drop:every=13,min=200", Seed: 14, Proto: "tcp", Mode: um},
		{Name: "tcp-unmod-corrupt", Plan: "corrupt:every=11,min=200", Seed: 15, Proto: "tcp", Mode: um},
		{Name: "udp-clean", Plan: "", Seed: 16, Proto: "udp", Mode: sc},
		{Name: "udp-drop", Plan: "drop:every=5,min=1000", Seed: 17, Proto: "udp", Mode: sc},
		{Name: "udp-corrupt", Plan: "corrupt:every=4,min=1000", Seed: 18, Proto: "udp", Mode: sc},
		{Name: "udp-dup", Plan: "dup:every=6,min=1000", Seed: 19, Proto: "udp", Mode: sc},
		{Name: "udp-reorder", Plan: "reorder:every=5,min=1000", Seed: 20, Proto: "udp", Mode: sc},
		{Name: "udp-allocfail", Plan: "allocfail:every=13", Seed: 21, Proto: "udp", Mode: sc},
		{Name: "udp-unmod-drop", Plan: "drop:every=5,min=1000", Seed: 22, Proto: "udp", Mode: um},
	}
}
