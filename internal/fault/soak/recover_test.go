package soak

import (
	"encoding/json"
	"testing"

	"repro/internal/fault"
	"repro/internal/socket"
	"repro/internal/tcpip"
	"repro/internal/units"
)

// TestRecoverMatrix runs the full fault-domain recovery suite: every flow
// in every case must complete byte-exact or end in one of the case's
// allowed errors, with zero leaks and conserved fault accounting.
func TestRecoverMatrix(t *testing.T) {
	for _, c := range RecoverMatrix() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			o := RunRecover(c)
			for _, f := range o.Failures {
				t.Errorf("%s", f)
			}
			if t.Failed() {
				t.Logf("fault report:\n%s", o.Report)
				for i, fl := range o.Flows {
					t.Logf("flow %d: delivered=%v snd=%v rcv=%v complete=%v",
						i, fl.Delivered, fl.SndErr, fl.RcvErr, fl.Complete)
				}
				if o.FlightRec != nil {
					t.Logf("flight recorder:\n%s", o.FlightRec)
				}
			}
		})
	}
}

// TestRecoverDeterminism replays one partition and one reset case and
// demands identical flow fates and timing — recovery is part of the
// simulation, not a race against it.
func TestRecoverDeterminism(t *testing.T) {
	for _, name := range []string{"partition-steady", "cabreset-sender"} {
		var pick RecoverCase
		for _, c := range RecoverMatrix() {
			if c.Name == name {
				pick = c
			}
		}
		if pick.Name == "" {
			t.Fatalf("case %s missing from matrix", name)
		}
		o1 := RunRecover(pick)
		o2 := RunRecover(pick)
		if o1.FirstGoodputAt != o2.FirstGoodputAt || o1.RecoveryTime != o2.RecoveryTime ||
			o1.EndTime != o2.EndTime || o1.Delivered != o2.Delivered ||
			o1.Resets != o2.Resets || o1.PartitionDrops != o2.PartitionDrops {
			t.Errorf("%s: replay diverged: %+v vs %+v", name, o1, o2)
		}
		for i := range o1.Flows {
			if o1.Flows[i] != o2.Flows[i] {
				t.Errorf("%s: flow %d diverged: %+v vs %+v", name, i, o1.Flows[i], o2.Flows[i])
			}
		}
	}
}

// TestRecoverPartitionHealTiming pins the causal ordering a healed
// partition must show: no goodput inside the window, first goodput after
// the heal, bounded by the RTO backoff in effect when the link died.
func TestRecoverPartitionHealTiming(t *testing.T) {
	o := RunRecover(RecoverCase{
		Name: "timing", Plan: "partition:at=10ms,dur=10ms", Seed: 99,
		Mode: socket.ModeSingleCopy, WantPartition: true,
	})
	for _, f := range o.Failures {
		t.Errorf("%s", f)
	}
	if o.FaultAt != 10*units.Millisecond || o.HealAt != 20*units.Millisecond {
		t.Fatalf("window = [%v, %v], want [10ms, 20ms]", o.FaultAt, o.HealAt)
	}
	if o.FirstGoodputAt < o.HealAt {
		t.Fatalf("goodput at %v, inside the partition window ending %v", o.FirstGoodputAt, o.HealAt)
	}
	// The slowest legal resume is one maximal RTO backoff past the heal.
	if o.RecoveryTime > 2*units.Second {
		t.Fatalf("recovery took %v, beyond the 2s RTO ceiling", o.RecoveryTime)
	}
}

// TestRecoverPeerDeathSurfacesLiveness pins the liveness contract: with an
// unbounded partition, the stalled writer must die with its user-timeout
// error and the idle reader with a keepalive verdict — no wedge, no
// watchdog, within the configured bounds.
func TestRecoverPeerDeathSurfacesLiveness(t *testing.T) {
	o := RunRecover(RecoverCase{
		Name: "peerdeath", Plan: "partition:at=10ms", Seed: 77,
		Mode: socket.ModeSingleCopy, KeepAlive: true, UserTimeout: 2 * units.Second,
		AllowSnd:      []error{tcpip.ErrTimeout},
		AllowRcv:      []error{tcpip.ErrTimeout, tcpip.ErrConnReset},
		WantPartition: true,
	})
	for _, f := range o.Failures {
		t.Errorf("%s", f)
	}
	fl := o.Flows[0]
	if fl.Complete {
		t.Fatalf("flow completed across a dead link")
	}
	if fl.SndErr == nil || fl.RcvErr == nil {
		t.Fatalf("both ends must surface an error: snd=%v rcv=%v", fl.SndErr, fl.RcvErr)
	}
	// The writer's user-timeout clock starts at the stall; 2s timeout plus
	// scheduling slack must resolve well inside the 5s watchdog window.
	if o.EndTime > o.FaultAt+4*units.Second {
		t.Fatalf("liveness verdicts took until %v for a fault at %v", o.EndTime, o.FaultAt)
	}
	if o.B.Stk.Stats.TCPKaProbes == 0 {
		t.Fatalf("reader reached a verdict without sending keepalive probes")
	}
	if o.A.Stk.Stats.TCPLivenessDrops+o.B.Stk.Stats.TCPLivenessDrops == 0 {
		t.Fatalf("no liveness drop recorded")
	}
}

// TestRecoverCabresetLeakFree pins the reset reclamation contract directly:
// after a mid-transfer firmware reset on the sender's adaptor, every netmem
// page is back in the free pool and no user page stays pinned, while the
// victim flow ends in a typed error.
func TestRecoverCabresetLeakFree(t *testing.T) {
	o := RunRecover(RecoverCase{
		Name: "reset-leak", Plan: "cabreset:at=8ms,node=1", Seed: 88,
		Mode: socket.ModeSingleCopy, KeepAlive: true,
		AllowSnd:   []error{tcpip.ErrDeviceReset, tcpip.ErrConnReset, tcpip.ErrConnTimeout, tcpip.ErrTimeout},
		AllowRcv:   []error{tcpip.ErrDeviceReset, tcpip.ErrConnReset, tcpip.ErrTimeout},
		WantResets: true,
	})
	for _, f := range o.Failures {
		t.Errorf("%s", f)
	}
	if o.A.CAB.Stats.Resets != 1 {
		t.Fatalf("sender adaptor saw %d resets, want 1", o.A.CAB.Stats.Resets)
	}
	if o.B.CAB.Stats.Resets != 0 {
		t.Fatalf("receiver adaptor reset too (%d), plan targeted node 1", o.B.CAB.Stats.Resets)
	}
	if free, tot := o.A.CAB.FreePages(), o.A.CAB.TotalPages(); free != tot {
		t.Fatalf("reset adaptor leaked %d netmem pages", tot-free)
	}
}

// TestRecoverWatchdogFlightDumpHasFaultCounters wedges a run on purpose (a
// permanent partition with no liveness enabled) and checks the watchdog's
// flight-recorder dump carries the per-kind injector counters alongside the
// ledger and trace sections — the triage bundle for a stuck soak.
func TestRecoverWatchdogFlightDumpHasFaultCounters(t *testing.T) {
	o := RunRecover(RecoverCase{
		Name: "wedge", Plan: "partition:at=5ms", Seed: 66,
		Mode: socket.ModeSingleCopy, // no KeepAlive, no UserTimeout: must wedge
	})
	if len(o.Failures) == 0 {
		t.Fatalf("permanent partition without liveness should wedge")
	}
	if o.FlightRec == nil {
		t.Fatalf("wedged run produced no flight-recorder dump")
	}
	var dump struct {
		Ledger json.RawMessage  `json:"ledger"`
		Trace  json.RawMessage  `json:"trace"`
		Faults map[string]int64 `json:"faults"`
	}
	if err := json.Unmarshal(o.FlightRec, &dump); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v\n%s", err, o.FlightRec)
	}
	if dump.Faults == nil {
		t.Fatalf("flight dump has no fault-counter section:\n%s", o.FlightRec)
	}
	if dump.Faults[fault.Partition.String()] == 0 {
		t.Fatalf("fault section missing partition count: %v", dump.Faults)
	}
	if len(dump.Ledger) == 0 || len(dump.Trace) == 0 {
		t.Fatalf("flight dump missing ledger or trace section")
	}
}
