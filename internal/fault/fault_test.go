package fault

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cab"
	"repro/internal/cost"
	"repro/internal/hippi"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestSchedules(t *testing.T) {
	fires := func(s Schedule, times []units.Time) []bool {
		s.seed(rand.New(rand.NewSource(1)))
		var out []bool
		for _, now := range times {
			out = append(out, s.fire(now))
		}
		return out
	}
	zeros := make([]units.Time, 8)
	if got := fires(Every(3), zeros); !equal(got, []bool{false, false, true, false, false, true, false, false}) {
		t.Fatalf("Every(3) = %v", got)
	}
	if got := fires(Burst(2, 3), zeros); !equal(got, []bool{false, false, true, true, true, false, false, false}) {
		t.Fatalf("Burst(2,3) = %v", got)
	}
	ms := func(n int) units.Time { return units.Time(n) * units.Millisecond }
	clock := []units.Time{ms(0), ms(1), ms(2), ms(3), ms(4), ms(5), ms(6), ms(7)}
	if got := fires(At(ms(3)), clock); !equal(got, []bool{false, false, false, true, false, false, false, false}) {
		t.Fatalf("At(3ms) = %v", got)
	}
	if got := fires(Window(ms(2), ms(5)), clock); !equal(got, []bool{false, false, true, true, true, false, false, false}) {
		t.Fatalf("Window(2ms,5ms) = %v", got)
	}
	// Prob is deterministic under the same seed and sensible in aggregate.
	long := make([]units.Time, 10000)
	a, b := fires(Prob(0.3), long), fires(Prob(0.3), long)
	if !equal(a, b) {
		t.Fatal("same-seed Prob schedules diverged")
	}
	n := 0
	for _, f := range a {
		if f {
			n++
		}
	}
	if n < 2700 || n > 3300 {
		t.Fatalf("Prob(0.3) fired %d/10000 times", n)
	}
}

func equal(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestInjectorDeterminism runs the same plan+seed against the same frame
// sequence twice: verdicts, mutations, and fire counts must be identical.
func TestInjectorDeterminism(t *testing.T) {
	run := func() ([]hippi.Verdict, [][]byte, [numKinds]int64) {
		eng := sim.NewEngine(1)
		in := New(eng, 42)
		in.Add(Rule{Kind: Drop, When: Prob(0.1)})
		in.Add(Rule{Kind: Corrupt, When: Every(7)})
		in.Add(Rule{Kind: Dup, When: Burst(5, 3)})
		in.Add(Rule{Kind: Delay, When: Prob(0.2)})
		var vs []hippi.Verdict
		var datas [][]byte
		for i := 0; i < 200; i++ {
			data := make([]byte, 500)
			for j := range data {
				data[j] = byte(i + j)
			}
			f := hippi.Frame{Src: 1, Dst: 2, Data: data}
			vs = append(vs, in.Frame(&f))
			datas = append(datas, f.Data)
		}
		return vs, datas, in.Fired
	}
	v1, d1, f1 := run()
	v2, d2, f2 := run()
	if f1 != f2 {
		t.Fatalf("fire counts diverged: %v vs %v", f1, f2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("verdict %d diverged: %+v vs %+v", i, v1[i], v2[i])
		}
		if string(d1[i]) != string(d2[i]) {
			t.Fatalf("frame %d mutated differently", i)
		}
	}
	if f1[Drop] == 0 || f1[Corrupt] == 0 || f1[Dup] == 0 || f1[Delay] == 0 {
		t.Fatalf("vacuous: fired = %v", f1)
	}
}

// TestCorruptStaysInTransportSegment asserts bit flips never land in the
// link or IP header (where they would cause parse drops instead of
// checksum detections), and that too-short frames are spared.
func TestCorruptStaysInTransportSegment(t *testing.T) {
	eng := sim.NewEngine(1)
	in := New(eng, 7)
	in.Add(Rule{Kind: Corrupt, When: Every(1)})
	for i := 0; i < 100; i++ {
		orig := make([]byte, 300)
		f := hippi.Frame{Data: make([]byte, 300)}
		copy(f.Data, orig)
		in.Frame(&f)
		for off := 0; off < int(corruptSkip); off++ {
			if f.Data[off] != orig[off] {
				t.Fatalf("corruption at offset %d, inside headers (< %d)", off, corruptSkip)
			}
		}
	}
	if in.Fired[Corrupt] != 100 {
		t.Fatalf("fired %d, want 100", in.Fired[Corrupt])
	}
	// A frame with no transport payload is never corrupted.
	short := hippi.Frame{Data: make([]byte, int(corruptSkip))}
	in.Frame(&short)
	if in.Fired[Corrupt] != 100 {
		t.Fatal("corrupted a frame with no transport segment")
	}
}

// TestCsumMaskNeverAliases: the xor mask applied to a checksum must never
// be 0 (no fault) or 0xffff (aliases under one's-complement folding).
func TestCsumMaskNeverAliases(t *testing.T) {
	eng := sim.NewEngine(1)
	in := New(eng, 3)
	in.Add(Rule{Kind: TxCsum, When: Every(1)})
	in.Add(Rule{Kind: TxCsum, When: Every(1)}) // two rules xor-combine
	for i := 0; i < 1000; i++ {
		m := in.csumMask(TxCsum)
		if m == 0 || m == 0xffff || m > 0xffff {
			t.Fatalf("mask %#x can escape checksum detection", m)
		}
	}
}

func TestParsePlan(t *testing.T) {
	rs := MustPlan("drop:every=13,min=1000; corrupt:p=0.01 ;dup:burst=50+20,dup=2")
	if len(rs) != 3 {
		t.Fatalf("got %d rules", len(rs))
	}
	if rs[0].Kind != Drop || rs[0].MinLen != 1000 {
		t.Fatalf("rule 0 = %+v", rs[0])
	}
	if rs[2].Dup != 2 {
		t.Fatalf("rule 2 dup = %d", rs[2].Dup)
	}

	rs = MustPlan("netmem:at=1ms,until=6ms,pages=100")
	if rs[0].From != 1*units.Millisecond || rs[0].Until != 6*units.Millisecond || rs[0].Pages != 100 {
		t.Fatalf("netmem rule = %+v", rs[0])
	}
	if rs[0].When != nil {
		t.Fatal("netmem rule should have no event schedule")
	}

	rs = MustPlan("delay:window=1ms+2ms,delay=500us;reorder:every=40")
	if _, ok := rs[0].When.(*windowSched); !ok || rs[0].Delay != 500*units.Microsecond {
		t.Fatalf("delay rule = %+v", rs[0])
	}

	rs = MustPlan("partition:at=5ms,dur=20ms,link=leaf0-spine1")
	if rs[0].Link != "leaf0-spine1" || rs[0].From != 5*units.Millisecond {
		t.Fatalf("link partition rule = %+v", rs[0])
	}

	// Default schedule when none is given.
	rs = MustPlan("drop:min=32K")
	if _, ok := rs[0].When.(*everySched); !ok || rs[0].MinLen != 32*units.KB {
		t.Fatalf("default-schedule rule = %+v", rs[0])
	}

	for _, bad := range []string{
		"", "bogus", "drop:every=0", "drop:p=2", "drop:burst=5",
		"netmem:pages=-1", "drop:at=5", "drop:wat=1", "drop:min=1z",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Fatalf("plan %q parsed without error", bad)
		}
	}
}

// TestParsePlanPositionalErrors pins the parse-error contract: a bad plan
// names the 1-based rule it failed on, the rule's kind once that is known,
// and the offending token — so a twelve-rule soak spec is debuggable from
// the message alone.
func TestParsePlanPositionalErrors(t *testing.T) {
	cases := []struct {
		spec string
		want []string // substrings the error must carry
	}{
		// The failing rule's index, even past healthy rules.
		{"drop:every=13;corrupt:p=0.5;zap:at=1ms",
			[]string{"rule 3", `unknown kind "zap"`}},
		// Kind plus the literal offending token.
		{"drop:every=13;partition:dur=0ms",
			[]string{"rule 2", "partition", `dur="0ms"`}},
		{"cabreset:node=1",
			[]string{"rule 1", "cabreset", "at=DUR"}},
		{"partition:at=5ms,node=2",
			[]string{"rule 1", "partition", `"node=2"`}},
		{"cabreset:at=8ms,dur=2ms",
			[]string{"rule 1", "cabreset", `"dur=2ms"`}},
		{"partition:at=9ms,dur=bogus",
			[]string{"rule 1", "partition", `"bogus"`}},
		{"drop:every=13;partition:at=6ms,until=5ms",
			[]string{"rule 2", "partition", "not after"}},
		// Fabric-link partitions: link= only applies to partition, needs a
		// name, and excludes the host-wire src/dst filters.
		{"drop:link=leaf0-spine1",
			[]string{"rule 1", "drop", `"link=leaf0-spine1"`}},
		{"partition:at=5ms,dur=2ms,link=",
			[]string{"rule 1", "partition", `link=""`, "leaf0-spine1"}},
		{"partition:at=5ms,dur=2ms,link=leaf0-spine1,src=2",
			[]string{"rule 1", "partition", "link=leaf0-spine1", "src/dst"}},
	}
	for _, c := range cases {
		_, err := ParsePlan(c.spec)
		if err == nil {
			t.Errorf("plan %q parsed without error", c.spec)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("plan %q: error %q missing %q", c.spec, err, w)
			}
		}
	}
}

func TestAddPlanAndReport(t *testing.T) {
	eng := sim.NewEngine(1)
	in := New(eng, 1)
	if err := in.AddPlan("drop:every=2"); err != nil {
		t.Fatal(err)
	}
	if err := in.AddPlan("nope"); err == nil {
		t.Fatal("bad plan accepted")
	}
	if got := in.Report(); got != "fault injection: none fired" {
		t.Fatalf("empty report = %q", got)
	}
	for i := 0; i < 4; i++ {
		f := hippi.Frame{Data: make([]byte, 100)}
		in.Frame(&f)
	}
	if got := in.Report(); !strings.Contains(got, "drop=2") {
		t.Fatalf("report = %q", got)
	}
}

// TestDisabledHooksStayNil: wiring an injector installs only the hooks its
// plan needs, so absent fault kinds cost nothing on the hot path.
func TestDisabledHooksStayNil(t *testing.T) {
	eng := sim.NewEngine(1)
	in := New(eng, 1)
	in.Add(Rule{Kind: DMAFail, When: Every(5)})
	net := hippi.NewNetwork(eng, hippi.LineRate, 0)
	c := cab.New(eng, cost.Alpha400(), net, 1, cab.DefaultConfig())
	in.WireCAB(c)
	if c.FaultSDMA == nil {
		t.Fatal("DMAFail rule did not install the SDMA hook")
	}
	if c.FaultTxCsum != nil || c.FaultRxCsum != nil {
		t.Fatal("checksum hooks installed without checksum rules")
	}
}
