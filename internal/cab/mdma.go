package cab

import (
	"repro/internal/checksum"
	"repro/internal/hippi"
	"repro/internal/obs"
	"repro/internal/obs/ledger"
	"repro/internal/sim"
	"repro/internal/units"
)

// txEntry is one media-transmit request on a logical channel.
type txEntry struct {
	pkt  *Packet
	dst  hippi.NodeID
	span *obs.Span
	prov *ledger.Prov
	done func()
}

// MDMATx queues packet pk for media transmission to dst on the logical
// channel for that destination. done (optional) runs in hardware context
// once the frame has fully left the adaptor. The packet is NOT freed: for
// TCP it stays in network memory as retransmit data until the host frees
// it (on acknowledgement). span (nil when telemetry is disabled) rides the
// frame so the receiver continues the packet's data-path span; prov (nil
// when the ledger is disabled) does the same for data-touch attribution.
func (c *CAB) MDMATx(pk *Packet, dst hippi.NodeID, span *obs.Span, prov *ledger.Prov, done func()) {
	if pk.zapped {
		// Firmware reset wiped the packet between the host's decision to
		// transmit and this posting; the frame is never sent.
		c.Stats.TxKilled++
		return
	}
	if pk.freed {
		panic("cab: MDMATx on freed packet")
	}
	ch := int(dst) % len(c.channels)
	c.channels[ch].Put(&txEntry{pkt: pk, dst: dst, span: span, prov: prov, done: done})
	c.txPend.Signal()
}

// mdmaTxProc drains the logical channels round-robin and serializes frames
// onto the media. With multiple channels a busy destination would only
// stall its own channel; the functional network model never blocks a
// destination, so round-robin service is sufficient here (the head-of-line
// effect itself is quantified by the hol.go study).
func (c *CAB) mdmaTxProc(p *sim.Proc) {
	next := 0
	for {
		var e *txEntry
		for e == nil {
			found := false
			for i := 0; i < len(c.channels); i++ {
				ch := (next + i) % len(c.channels)
				if v, ok := c.channels[ch].TryGet(); ok {
					e = v
					next = ch + 1
					found = true
					break
				}
			}
			if !found {
				c.txPend.Wait(p)
			}
		}
		if e.pkt.freed {
			// The host freed the packet (e.g. connection teardown) while
			// the request sat on its channel; drop the frame.
			continue
		}
		e.span.CritEv(obs.CauseQueue, "mdma_start")
		// The MDMA engine reads the packet out of network memory as the
		// frame serializes; copy the bytes so the host may overlay a new
		// header (retransmit) without racing the in-flight frame.
		data := make([]byte, e.pkt.Len())
		copy(data, e.pkt.buf)
		c.Led.TouchP(e.prov, 0, e.pkt.Len(), ledger.MDMATx, "mdma", 0)
		sent := sim.NewSignal(c.eng)
		c.net.SendFrame(hippi.Frame{Src: c.nodeID, Dst: e.dst, Data: data, Span: e.span, Prov: e.prov, Flow: e.pkt.flow},
			func() { sent.Broadcast() })
		sent.Wait(p)
		e.span.CritEv(obs.CauseWire, "mdma_xmit")
		c.Stats.TxPackets++
		if e.done != nil {
			e.done()
		}
	}
}

// Bounded receive backpressure: when network memory or auto-DMA buffers
// are exhausted, the MDMA receive engine holds the arriving frame on the
// link and retries instead of silently discarding it. Held frames form a
// FIFO serviced strictly in arrival order — letting a later frame claim
// freed memory first would open a sequence gap whose successors then pin
// the remaining memory in the reassembly queue, deadlocking the very
// reader whose progress frees pages. The hold is bounded (rxRetryLimit ×
// rxRetryDelay ≈ 10ms at the head of the queue) so a wedged host still
// sheds load — past the bound the drop is counted as before, from the
// head, so the tail that remains is contiguous.
const (
	rxRetryDelay = 25 * units.Microsecond
	rxRetryLimit = 400
)

// FlowKey is the arbiter account key for traffic received from a remote
// sender: the (source node, sender local port) pair packed into one int.
// Port numbers alone collide across hosts — every stack hands out
// ephemeral ports from the same base — so receive-side accounts must
// carry the node. Zero (unattributed/control traffic) stays zero.
func FlowKey(src hippi.NodeID, port int) int {
	if port == 0 {
		return 0
	}
	return int(src)<<16 | port
}

// rxFlowKey is FlowKey applied to a received frame.
func rxFlowKey(f hippi.Frame) int { return FlowKey(f.Src, f.Flow) }

// heldRx is one frame held on the link under resource pressure.
type heldRx struct {
	f        hippi.Frame
	attempts int
}

// rxFrame handles a frame arriving from the media: the MDMA receive engine
// moves it into network memory, computing the receive checksum on the way
// in; the first L bytes are then auto-DMAed to a preallocated host buffer
// and the host is notified (Section 2.2).
func (c *CAB) rxFrame(f hippi.Frame) {
	f.Span.EnterOn(obs.StageMDMA, c.Host)
	f.Span.CritEv(obs.CauseWire, "wire_rx")
	c.Led.TouchP(f.Prov, 0, units.Size(len(f.Data)), ledger.MDMARx, "mdma", 0)
	if c.Arb != nil {
		c.rxFrameArb(f)
		return
	}
	// Preserve arrival order: never overtake frames already held.
	if len(c.rxHold) == 0 && c.tryRx(f) {
		return
	}
	c.rxHold = append(c.rxHold, heldRx{f: f})
	if !c.rxHoldArmed {
		c.rxHoldArmed = true
		c.eng.AfterKind(rxRetryDelay, sim.KindTimer, c.rxHoldPump)
	}
}

// rxFrameArb is rxFrame under the netmem arbiter: held frames form one
// FIFO *per flow* served round-robin, so a flow wedged on its quota delays
// only its own successors. Per-flow arrival order is still strict — the
// sequence-gap deadlock the global FIFO guards against is a per-flow
// property — while cross-flow reordering is harmless.
func (c *CAB) rxFrameArb(f hippi.Frame) {
	key := rxFlowKey(f)
	q := c.rxHoldQ[key]
	if len(q) == 0 && c.tryRx(f) {
		return
	}
	if len(q) == 0 {
		c.rxHoldFlows = append(c.rxHoldFlows, key)
	}
	c.rxHoldQ[key] = append(q, heldRx{f: f})
	if !c.rxHoldArmed {
		c.rxHoldArmed = true
		c.eng.AfterKind(rxRetryDelay, sim.KindTimer, c.rxHoldPump)
	}
}

// rxHoldPump retries held frames after rxRetryDelay.
func (c *CAB) rxHoldPump() {
	if c.Arb != nil {
		c.rxHoldPumpArb()
		return
	}
	for len(c.rxHold) > 0 {
		h := &c.rxHold[0]
		if c.tryRx(h.f) {
			// The frame was held on the link waiting for adaptor memory.
			h.f.Span.CritEv(obs.CauseNetmem, "rx_admit")
			c.rxHold = c.rxHold[1:]
			continue
		}
		c.Stats.RxRetries++
		if h.attempts++; h.attempts >= rxRetryLimit {
			if len(c.rxBufs) == 0 {
				c.Stats.DropNoBuf++
			} else {
				c.Stats.DropNoMem++
			}
			c.rxHold = c.rxHold[1:]
			continue
		}
		c.eng.AfterKind(rxRetryDelay, sim.KindTimer, c.rxHoldPump)
		return
	}
	c.rxHoldArmed = false
}

// rxHoldPumpArb services the per-flow hold queues: one attempt per flow
// head per tick, visiting flows in circular order from a rotating start so
// freed memory is offered to each flow in turn.
func (c *CAB) rxHoldPumpArb() {
	if n := len(c.rxHoldFlows); n > 0 {
		if c.rxRR >= n {
			c.rxRR %= n
		}
		order := make([]int, 0, n)
		order = append(order, c.rxHoldFlows[c.rxRR:]...)
		order = append(order, c.rxHoldFlows[:c.rxRR]...)
		c.rxRR++
		for _, flow := range order {
			q := c.rxHoldQ[flow]
			if len(q) == 0 {
				continue
			}
			h := &q[0]
			if c.tryRx(h.f) {
				h.f.Span.CritEv(obs.CauseNetmem, "rx_admit")
			} else {
				c.Stats.RxRetries++
				if h.attempts++; h.attempts < rxRetryLimit {
					continue
				}
				if len(c.rxBufs) == 0 {
					c.Stats.DropNoBuf++
				} else {
					c.Stats.DropNoMem++
				}
			}
			q[0] = heldRx{}
			if q = q[1:]; len(q) == 0 {
				delete(c.rxHoldQ, flow)
				for i, fl := range c.rxHoldFlows {
					if fl == flow {
						c.rxHoldFlows = append(c.rxHoldFlows[:i], c.rxHoldFlows[i+1:]...)
						break
					}
				}
			} else {
				c.rxHoldQ[flow] = q
			}
		}
	}
	if len(c.rxHoldFlows) > 0 {
		c.eng.AfterKind(rxRetryDelay, sim.KindTimer, c.rxHoldPump)
		return
	}
	c.rxHoldArmed = false
}

// tryRx attempts to accept one frame into the adaptor; it reports false
// when a required resource (rx buffer, network memory) is missing or the
// netmem arbiter denies the flow's staging allocation.
func (c *CAB) tryRx(f hippi.Frame) bool {
	n := units.Size(len(f.Data))
	if len(c.rxBufs) == 0 {
		return false
	}
	key := rxFlowKey(f)
	var pk *Packet
	ok := false
	if c.Arb == nil || c.Arb.rxAdmit(key, n) {
		pk, ok = c.AllocPacketFlow(n, key)
	}
	if !ok {
		// Network memory exhausted. Frames that fit in the auto-DMA
		// buffer (ACKs, control traffic) are delivered straight from it so
		// the protocol keeps making the progress that drains memory;
		// larger frames get the bounded hold-and-retry.
		if n <= c.Cfg.AutoDMALen {
			c.rxDeliverDirect(f)
			return true
		}
		return false
	}
	copy(pk.buf, f.Data)
	c.Stats.RxPackets++

	var bodySum uint32
	if n > c.Cfg.RxCsumSkip {
		bodySum = checksum.Sum(pk.buf[c.Cfg.RxCsumSkip:])
	}
	if c.FaultRxCsum != nil {
		bodySum ^= c.FaultRxCsum()
	}

	buf := c.rxBufs[0]
	c.rxBufs = c.rxBufs[1:]

	l := c.Cfg.AutoDMALen
	if l > n {
		l = n
	}
	span := f.Span
	prov := f.Prov
	c.SDMA(&SDMAReq{
		Dir:     ToHost,
		Pkt:     pk,
		PktOff:  0,
		Scatter: [][]byte{buf[:l]},
		Prov:    prov,
		AutoDMA: true,
		Span:    span,
		Done: func(*SDMAReq) {
			if c.OnRx == nil {
				pk.Free()
				return
			}
			c.OnRx(&RxEvent{Pkt: pk, Buf: buf, HdrLen: l, Len: n, BodySum: bodySum, Span: span, Prov: prov})
		},
	})
	return true
}

// rxDeliverDirect streams a frame that fits in the auto-DMA buffer through
// to the host without staging it in network memory (the netmem-pressure
// fallback). The host sees a normal RxEvent whose Pkt is nil: the whole
// packet is in Buf.
func (c *CAB) rxDeliverDirect(f hippi.Frame) {
	n := units.Size(len(f.Data))
	var bodySum uint32
	if n > c.Cfg.RxCsumSkip {
		bodySum = checksum.Sum(f.Data[c.Cfg.RxCsumSkip:])
	}
	if c.FaultRxCsum != nil {
		bodySum ^= c.FaultRxCsum()
	}
	buf := c.rxBufs[0]
	c.rxBufs = c.rxBufs[1:]
	copy(buf, f.Data)
	c.Stats.RxPackets++
	c.Stats.RxHdrDeliveries++
	span := f.Span
	prov := f.Prov
	c.eng.AfterKind(c.Mach.DMATime(n), sim.KindDMA, func() {
		c.Led.TouchP(prov, 0, n, ledger.SDMAToHost, "sdma", ledger.FlagAutoDMA)
		span.CritEv(obs.CauseDMA, "auto_dma")
		if c.OnRx == nil {
			return
		}
		c.OnRx(&RxEvent{Pkt: nil, Buf: buf, HdrLen: n, Len: n, BodySum: bodySum, Span: span, Prov: prov})
	})
}
