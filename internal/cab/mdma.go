package cab

import (
	"repro/internal/checksum"
	"repro/internal/hippi"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/units"
)

// txEntry is one media-transmit request on a logical channel.
type txEntry struct {
	pkt  *Packet
	dst  hippi.NodeID
	span *obs.Span
	done func()
}

// MDMATx queues packet pk for media transmission to dst on the logical
// channel for that destination. done (optional) runs in hardware context
// once the frame has fully left the adaptor. The packet is NOT freed: for
// TCP it stays in network memory as retransmit data until the host frees
// it (on acknowledgement). span (nil when telemetry is disabled) rides the
// frame so the receiver continues the packet's data-path span.
func (c *CAB) MDMATx(pk *Packet, dst hippi.NodeID, span *obs.Span, done func()) {
	if pk.freed {
		panic("cab: MDMATx on freed packet")
	}
	ch := int(dst) % len(c.channels)
	c.channels[ch].Put(&txEntry{pkt: pk, dst: dst, span: span, done: done})
	c.txPend.Signal()
}

// mdmaTxProc drains the logical channels round-robin and serializes frames
// onto the media. With multiple channels a busy destination would only
// stall its own channel; the functional network model never blocks a
// destination, so round-robin service is sufficient here (the head-of-line
// effect itself is quantified by the hol.go study).
func (c *CAB) mdmaTxProc(p *sim.Proc) {
	next := 0
	for {
		var e *txEntry
		for e == nil {
			found := false
			for i := 0; i < len(c.channels); i++ {
				ch := (next + i) % len(c.channels)
				if v, ok := c.channels[ch].TryGet(); ok {
					e = v
					next = ch + 1
					found = true
					break
				}
			}
			if !found {
				c.txPend.Wait(p)
			}
		}
		if e.pkt.freed {
			// The host freed the packet (e.g. connection teardown) while
			// the request sat on its channel; drop the frame.
			continue
		}
		// The MDMA engine reads the packet out of network memory as the
		// frame serializes; copy the bytes so the host may overlay a new
		// header (retransmit) without racing the in-flight frame.
		data := make([]byte, e.pkt.Len())
		copy(data, e.pkt.buf)
		sent := sim.NewSignal(c.eng)
		c.net.SendFrame(hippi.Frame{Src: c.nodeID, Dst: e.dst, Data: data, Span: e.span},
			func() { sent.Broadcast() })
		sent.Wait(p)
		c.Stats.TxPackets++
		if e.done != nil {
			e.done()
		}
	}
}

// rxFrame handles a frame arriving from the media: the MDMA receive engine
// moves it into network memory, computing the receive checksum on the way
// in; the first L bytes are then auto-DMAed to a preallocated host buffer
// and the host is notified (Section 2.2).
func (c *CAB) rxFrame(f hippi.Frame) {
	f.Span.Enter(obs.StageMDMA)
	n := units.Size(len(f.Data))
	pk, ok := c.AllocPacket(n)
	if !ok {
		c.Stats.DropNoMem++
		return
	}
	copy(pk.buf, f.Data)
	c.Stats.RxPackets++

	var bodySum uint32
	if n > c.Cfg.RxCsumSkip {
		bodySum = checksum.Sum(pk.buf[c.Cfg.RxCsumSkip:])
	}

	if len(c.rxBufs) == 0 {
		c.Stats.DropNoBuf++
		pk.Free()
		return
	}
	buf := c.rxBufs[0]
	c.rxBufs = c.rxBufs[1:]

	l := c.Cfg.AutoDMALen
	if l > n {
		l = n
	}
	span := f.Span
	c.SDMA(&SDMAReq{
		Dir:     ToHost,
		Pkt:     pk,
		PktOff:  0,
		Scatter: [][]byte{buf[:l]},
		Done: func(*SDMAReq) {
			if c.OnRx == nil {
				pk.Free()
				return
			}
			c.OnRx(&RxEvent{Pkt: pk, Buf: buf, HdrLen: l, BodySum: bodySum, Span: span})
		},
	})
}
