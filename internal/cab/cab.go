// Package cab is a functional model of the Gigabit Nectar Communication
// Acceleration Board (Section 2): a bank of outboard network memory fed by
// one system DMA engine (SDMA, host ↔ network memory over the IO bus, with
// scatter/gather and a transmit checksum engine) and media DMA engines
// (MDMA, network memory ↔ HIPPI, with a receive checksum engine), plus
// per-destination logical channels for media transmission and automatic
// DMA of each incoming packet's first L bytes into preallocated host
// buffers.
//
// The model is functional — real bytes are stored in network memory and
// real checksums are computed by the "hardware" — and temporal: SDMA
// transfers occupy the simulated IO bus per the machine's DMA timing
// model, and media transmission is serialized by the HIPPI network model.
//
// Packets in network memory always start on a page boundary and occupy
// whole pages except the last (the constraint that forces the host
// software to form complete packets before transfer, Section 2.2).
package cab

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/hippi"
	"repro/internal/obs"
	"repro/internal/obs/ledger"
	"repro/internal/sim"
	"repro/internal/units"
)

// Config selects the host-visible CAB parameters.
type Config struct {
	// MemSize is the network memory size.
	MemSize units.Size
	// PageSize is the network memory page size.
	PageSize units.Size
	// AutoDMALen is L: how many leading bytes of each received packet the
	// CAB DMAs into a preallocated host buffer before interrupting.
	AutoDMALen units.Size
	// RxCsumSkip is the fixed offset at which the receive checksum engine
	// starts summing (20 words in the paper's configuration: the HIPPI
	// and IP headers are skipped).
	RxCsumSkip units.Size
	// Channels is the number of logical channels for media transmission.
	Channels int
}

// DefaultConfig returns the configuration used in the paper's experiments.
func DefaultConfig() Config {
	return Config{
		MemSize:    4 * units.MB,
		PageSize:   8 * units.KB,
		AutoDMALen: 784, // link + IP + TCP headers plus one mbuf (176 words) of data
		RxCsumSkip: 80,  // 20 words
		Channels:   8,
	}
}

// RxEvent is delivered to the host (driver) when a packet has arrived and
// its first L bytes have been auto-DMAed into a host buffer.
type RxEvent struct {
	// Pkt is the packet resident in network memory. For packets that fit
	// entirely within the auto-DMA buffer the driver typically frees it
	// immediately. Nil when the adaptor delivered the frame straight from
	// the auto-DMA buffer under network-memory pressure (the whole packet
	// is then in Buf).
	Pkt *Packet
	// Buf holds the packet's first min(L, len) bytes in host memory.
	Buf []byte
	// HdrLen is how many bytes of Buf are valid.
	HdrLen units.Size
	// Len is the packet's full length on the wire (equals Pkt.Len() when
	// Pkt is non-nil).
	Len units.Size
	// BodySum is the receive checksum engine's unfolded partial sum over
	// the packet from RxCsumSkip to its end, available to the host as
	// soon as the packet is (Section 2.1).
	BodySum uint32
	// Span is the sender's data-path span carried across the wire (nil
	// when telemetry is disabled).
	Span *obs.Span
	// Prov is the sender's data-touch provenance carried across the wire
	// (nil when the ledger is disabled).
	Prov *ledger.Prov
}

// Stats counts adaptor activity.
type Stats struct {
	TxPackets          int
	RxPackets          int
	SDMAOps            int
	SDMABytes          units.Size
	DropNoMem          int // packets dropped: network memory exhausted
	DropNoBuf          int // packets dropped: no auto-DMA host buffer available
	RetransmitOverlays int
	SDMAFails          int // SDMA transfers failed by fault injection (each is retried)
	Resets             int // firmware resets (fault injection)
	SDMAKilled         int // SDMA descriptors killed by a firmware reset
	TxKilled           int // media-transmit descriptors killed by a firmware reset
	RxKilled           int // held rx frames lost to a firmware reset
	RxRetries          int // rx frames held on the link and retried (memory/buffer pressure)
	RxHdrDeliveries    int // rx frames delivered straight from the auto-DMA buffer (netmem pressure)
	ArbWaits           int // tx admissions blocked by the netmem arbiter
	ArbBorrows         int // over-share allocations admitted from slack (arbiter)
	ArbReclaims        int // idle flow registrations reclaimed (arbiter)
}

// CAB is one adaptor instance.
type CAB struct {
	Cfg  Config
	Mach *cost.Machine

	eng    *sim.Engine
	net    *hippi.Network
	nodeID hippi.NodeID

	freePages  int
	totalPages int
	reserved   int
	nextPktID  int
	freeSig    *sim.Signal
	live       map[int]*Packet

	sdmaQ *sim.Queue[*SDMAReq]

	channels []*sim.Queue[*txEntry]
	txPend   *sim.Signal
	txSent   *sim.Signal

	rxBufs [][]byte

	// rxHold is the FIFO of frames held on the link under resource
	// pressure (see mdma.go); rxHoldArmed is true while a pump event is
	// pending. With the arbiter installed the hold becomes one FIFO per
	// flow (rxHoldQ), served round-robin from rxRR over the arrival-order
	// flow list rxHoldFlows.
	rxHold      []heldRx
	rxHoldArmed bool
	rxHoldQ     map[int][]heldRx
	rxHoldFlows []int
	rxRR        int

	// OnRx is the host's receive notification (installed by the driver;
	// runs in hardware/event context — the driver is responsible for
	// posting a host interrupt).
	OnRx func(ev *RxEvent)

	// OnReset is the host's firmware-reset notification (installed by the
	// driver; runs in hardware/event context after Reset has wiped the
	// adaptor). The driver re-arms auto-DMA buffers and tells the stack
	// which connections lost adaptor-resident state.
	OnReset func()

	// Fault hooks (nil in production: each guard is a single nil check on
	// the hot path). FaultSDMA, consulted once per SDMA transfer, fails
	// the transfer when true (the engine retries it). FaultTxCsum /
	// FaultRxCsum, consulted once per checksum-engine computation, return
	// a 16-bit xor mask applied to the computed body sum (0: no fault).
	FaultSDMA   func() bool
	FaultTxCsum func() uint32
	FaultRxCsum func() uint32

	Stats Stats

	// Led records the adaptor's DMA data touches in the data-touch ledger
	// (nil when disabled: each record site is a single nil check). Host is
	// the owning host's name, used to re-host telemetry spans when a frame
	// arrives from the wire.
	Led  *ledger.Hook
	Host string

	// pagesUsed tracks network-memory page occupancy (with high-water
	// mark) when telemetry is enabled; nil otherwise.
	pagesUsed *obs.Gauge

	// Arb, when installed (NewArbiter), accounts network-memory pages per
	// flow and arbitrates allocation between flows. Nil means the seed
	// first-come global policy; every hook below is a single nil check.
	Arb *Arbiter
}

// SetObs registers the adaptor's metrics on r (nil: no-op).
func (c *CAB) SetObs(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Func("cab.tx_pkts", func() int64 { return int64(c.Stats.TxPackets) })
	r.Func("cab.rx_pkts", func() int64 { return int64(c.Stats.RxPackets) })
	r.Func("cab.sdma_ops", func() int64 { return int64(c.Stats.SDMAOps) })
	r.Func("cab.sdma_bytes", func() int64 { return int64(c.Stats.SDMABytes) })
	r.Func("cab.drop_no_mem", func() int64 { return int64(c.Stats.DropNoMem) })
	r.Func("cab.drop_no_buf", func() int64 { return int64(c.Stats.DropNoBuf) })
	r.Func("cab.retransmit_overlays", func() int64 { return int64(c.Stats.RetransmitOverlays) })
	r.Func("cab.sdma_fails", func() int64 { return int64(c.Stats.SDMAFails) })
	r.Func("cab.rx_retries", func() int64 { return int64(c.Stats.RxRetries) })
	r.Func("cab.rx_hdr_deliveries", func() int64 { return int64(c.Stats.RxHdrDeliveries) })
	r.Func("cab.arb_waits", func() int64 { return int64(c.Stats.ArbWaits) })
	r.Func("cab.arb_borrows", func() int64 { return int64(c.Stats.ArbBorrows) })
	r.Func("cab.arb_reclaims", func() int64 { return int64(c.Stats.ArbReclaims) })
	r.Func("cab.resets", func() int64 { return int64(c.Stats.Resets) })
	r.Func("cab.sdma_killed", func() int64 { return int64(c.Stats.SDMAKilled) })
	r.Func("cab.tx_killed", func() int64 { return int64(c.Stats.TxKilled) })
	r.Func("cab.rx_killed", func() int64 { return int64(c.Stats.RxKilled) })
	r.Func("cab.arb_flows", func() int64 {
		if c.Arb == nil {
			return 0
		}
		return int64(c.Arb.ActiveFlows())
	})
	c.pagesUsed = r.Gauge("cab.netmem_pages")
}

// New attaches a CAB to the network as node id.
func New(eng *sim.Engine, mach *cost.Machine, net *hippi.Network, id hippi.NodeID, cfg Config) *CAB {
	if cfg.PageSize <= 0 || cfg.MemSize%cfg.PageSize != 0 {
		panic("cab: bad memory geometry")
	}
	if cfg.Channels < 1 {
		cfg.Channels = 1
	}
	c := &CAB{
		Cfg:       cfg,
		Mach:      mach,
		eng:       eng,
		net:       net,
		nodeID:    id,
		freePages: int(cfg.MemSize / cfg.PageSize),
		freeSig:   sim.NewSignal(eng),
		sdmaQ:     sim.NewQueue[*SDMAReq](eng),
		txPend:    sim.NewSignal(eng),
		txSent:    sim.NewSignal(eng),
		live:      make(map[int]*Packet),
	}
	c.totalPages = c.freePages
	for i := 0; i < cfg.Channels; i++ {
		c.channels = append(c.channels, sim.NewQueue[*txEntry](eng))
	}
	net.Attach(id, c.rxFrame)
	eng.Go(fmt.Sprintf("cab%d/sdma", id), c.sdmaProc)
	eng.Go(fmt.Sprintf("cab%d/mdma-tx", id), c.mdmaTxProc)
	return c
}

// NodeID returns the adaptor's network address.
func (c *CAB) NodeID() hippi.NodeID { return c.nodeID }

// FreePages returns the number of unallocated network memory pages.
func (c *CAB) FreePages() int { return c.freePages }

// TotalPages returns the network memory size in pages.
func (c *CAB) TotalPages() int { return c.totalPages }

// Packet is a packet resident in network memory.
type Packet struct {
	cab   *CAB
	ID    int
	buf   []byte
	pages int
	flow  int
	freed bool
	// zapped marks a packet wiped by a firmware reset: its pages were
	// bulk-reclaimed, so a later host-side Free is a no-op rather than a
	// double free — the host's reference outlived the hardware state.
	zapped bool

	// BodySum is the transmit checksum engine's saved partial sum over
	// the packet body (beyond CsumSkip); it allows retransmission with a
	// fresh header without re-reading the body (Section 4.3).
	BodySum uint32
	// HasBodySum records whether BodySum is valid.
	HasBodySum bool
}

// Len returns the packet length in bytes.
func (pk *Packet) Len() units.Size { return units.Size(len(pk.buf)) }

// Freed reports whether the packet's pages have been returned.
func (pk *Packet) Freed() bool { return pk.freed }

// Owner returns the adaptor holding this packet.
func (pk *Packet) Owner() *CAB { return pk.cab }

// Flow returns the transport flow the packet's pages are accounted to
// (0: unattributed).
func (pk *Packet) Flow() int { return pk.flow }

// Bytes returns the live network memory contents of the packet. A zapped
// packet (firmware reset) yields the wiped — zeroed — memory rather than
// panicking: the host may legitimately hold a stale reference across the
// reset, and the wiped bytes then fail checksum/verification downstream.
func (pk *Packet) Bytes() []byte {
	if pk.freed && !pk.zapped {
		panic("cab: access to freed packet")
	}
	return pk.buf
}

// Zapped reports whether the packet was wiped by a firmware reset (its
// contents are gone; Bytes panics, Free is a no-op).
func (pk *Packet) Zapped() bool { return pk.zapped }

// Free returns the packet's pages to the pool.
func (pk *Packet) Free() {
	if pk.zapped {
		return
	}
	if pk.freed {
		panic("cab: double free of packet")
	}
	pk.freed = true
	pk.cab.freePages += pk.pages
	delete(pk.cab.live, pk.ID)
	pk.cab.pagesUsed.Set(int64(pk.cab.totalPages - pk.cab.freePages))
	if pk.cab.Arb != nil {
		pk.cab.Arb.freeNotify(pk.flow, pk.pages)
	}
	pk.cab.freeSig.Broadcast()
}

// LivePackets returns the sizes of packets currently allocated in network
// memory (diagnostics and leak tests).
func (c *CAB) LivePackets() []units.Size {
	var out []units.Size
	for _, pk := range c.live {
		out = append(out, pk.Len())
	}
	return out
}

// AllocPacket reserves network memory for an n-byte packet. It fails (nil,
// false) when memory is exhausted; callers in process context can use
// AllocPacketWait.
func (c *CAB) AllocPacket(n units.Size) (*Packet, bool) {
	return c.AllocPacketFlow(n, 0)
}

// AllocPacketFlow is AllocPacket with the pages accounted to flow in the
// netmem arbiter (0: unattributed; identical to AllocPacket).
func (c *CAB) AllocPacketFlow(n units.Size, flow int) (*Packet, bool) {
	if n <= 0 {
		panic("cab: zero-length packet")
	}
	pages := int((n + c.Cfg.PageSize - 1) / c.Cfg.PageSize)
	if pages > c.freePages-c.reserved {
		return nil, false
	}
	c.freePages -= pages
	c.nextPktID++
	pk := &Packet{cab: c, ID: c.nextPktID, buf: make([]byte, n), pages: pages, flow: flow}
	c.live[pk.ID] = pk
	c.pagesUsed.Set(int64(c.totalPages - c.freePages))
	if c.Arb != nil {
		c.Arb.allocNotify(flow, pages)
	}
	return pk, true
}

// AllocPacketWait blocks p until network memory for n bytes is available.
func (c *CAB) AllocPacketWait(p *sim.Proc, n units.Size) *Packet {
	return c.AllocPacketWaitFlow(p, n, 0)
}

// AllocPacketWaitFlow is AllocPacketWait with per-flow page accounting.
func (c *CAB) AllocPacketWaitFlow(p *sim.Proc, n units.Size, flow int) *Packet {
	for {
		if pk, ok := c.AllocPacketFlow(n, flow); ok {
			return pk
		}
		c.freeSig.Wait(p)
	}
}

// SetReserve withholds n pages from allocation, shrinking the network
// memory visible to AllocPacket (the netmem-pressure fault mode). Lowering
// the reserve wakes blocked allocators. Pages already allocated are
// unaffected.
func (c *CAB) SetReserve(n int) {
	if n < 0 {
		n = 0
	}
	if n > c.totalPages {
		n = c.totalPages
	}
	old := c.reserved
	c.reserved = n
	if n < old {
		c.freeSig.Broadcast()
	}
}

// Reset models a CAB firmware reset: network memory, in-flight SDMA and
// MDMA descriptors, posted auto-DMA buffers, and all WCAB state (saved body
// sums live inside the wiped packets) vanish at once. Every live packet is
// zapped — host-side references see Freed()==true and a no-op Free — and
// every queued descriptor is killed (its Fail hook runs instead of Done).
// Runs in hardware/event context; finishes by notifying the driver through
// OnReset so it can re-arm receive and sweep dead connections.
func (c *CAB) Reset() {
	c.Stats.Resets++
	// Network memory: bulk-reclaim every page. Host-side holders keep their
	// Packet references but the data is gone.
	for _, pk := range c.live {
		pk.freed = true
		pk.zapped = true
		for i := range pk.buf {
			pk.buf[i] = 0
		}
		if c.Arb != nil {
			c.Arb.freeNotify(pk.flow, pk.pages)
		}
	}
	c.live = make(map[int]*Packet)
	c.freePages = c.totalPages
	c.pagesUsed.Set(0)
	// SDMA engine: the descriptor queue is wiped. Each killed request's
	// Fail hook (if any) runs so host-side waiters are unblocked; Done
	// never fires for a killed transfer. The in-service transfer (if any)
	// is caught by sdmaProc's zapped check when its bus time expires.
	for {
		req, ok := c.sdmaQ.TryGet()
		if !ok {
			break
		}
		c.killSDMA(req)
	}
	// MDMA transmit: logical-channel entries are wiped.
	for _, ch := range c.channels {
		for {
			if _, ok := ch.TryGet(); !ok {
				break
			}
			c.Stats.TxKilled++
		}
	}
	// MDMA receive: frames held on the link against a live adaptor are
	// lost; posted auto-DMA buffers are forgotten (the driver re-arms).
	if n := len(c.rxHold); n > 0 {
		c.Stats.RxKilled += n
		c.rxHold = nil
	}
	for _, q := range c.rxHoldQ {
		c.Stats.RxKilled += len(q)
	}
	if c.rxHoldQ != nil {
		c.rxHoldQ = make(map[int][]heldRx)
	}
	c.rxHoldFlows = nil
	c.rxBufs = nil
	// Pages are free again; wake any allocator blocked on the old memory.
	c.freeSig.Broadcast()
	if c.OnReset != nil {
		c.OnReset()
	}
}

// killSDMA fails one descriptor killed by a firmware reset.
func (c *CAB) killSDMA(req *SDMAReq) {
	c.Stats.SDMAKilled++
	if req.Fail != nil {
		req.Fail(req)
	}
}

// ProvideRxBuf hands the adaptor a preallocated host buffer for auto-DMA
// of incoming packet heads. Buffers must be at least AutoDMALen long.
func (c *CAB) ProvideRxBuf(b []byte) {
	if units.Size(len(b)) < c.Cfg.AutoDMALen {
		panic("cab: auto-DMA buffer too small")
	}
	c.rxBufs = append(c.rxBufs, b)
}

// RxBufCount returns the number of available auto-DMA buffers.
func (c *CAB) RxBufCount() int { return len(c.rxBufs) }
