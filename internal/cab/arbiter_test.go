package cab

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// arbRig is testRig plus an arbiter with reclaim effectively disabled, so
// share-math tests aren't raced by the idle sweep.
func arbRig(cfg ArbConfig) (*sim.Engine, *CAB, *Arbiter) {
	e, _, a, _ := testRig()
	if cfg.IdleExpiry == 0 {
		cfg.IdleExpiry = units.Second
	}
	return e, a, NewArbiter(a, cfg)
}

func TestArbShareMath(t *testing.T) {
	e, c, a := arbRig(ArbConfig{MinSharePages: 2})
	defer e.KillAll()
	total := c.TotalPages()

	// A lone flow owns the whole memory.
	a.touch(1)
	if got := a.Share(1); got != total {
		t.Fatalf("lone share = %d, want %d", got, total)
	}
	// Two equal flows split it.
	a.touch(2)
	if got := a.Share(1); got != total/2 {
		t.Fatalf("equal share = %d, want %d", got, total/2)
	}
	// Weights skew the split proportionally.
	a.SetWeight(1, 3)
	if got := a.Share(1); got != total*3/4 {
		t.Fatalf("weighted share = %d, want %d", got, total*3/4)
	}
	if got := a.Share(2); got != total/4 {
		t.Fatalf("light share = %d, want %d", got, total/4)
	}
	// MinSharePages floors the share no matter how crowded.
	for f := 3; f < 3+4*total; f++ {
		a.touch(f)
	}
	if got := a.Share(2); got != 2 {
		t.Fatalf("crowded share = %d, want MinSharePages floor 2", got)
	}
	// A reservation lifts the floor further.
	a.Reserve(2, 7)
	if got := a.Share(2); got != 7 {
		t.Fatalf("reserved share = %d, want 7", got)
	}
	// Inactive flows have no share.
	if got := a.Share(9999); got != 0 {
		t.Fatalf("unknown flow share = %d, want 0", got)
	}
}

func TestArbFlowKey(t *testing.T) {
	if got := FlowKey(2, 10001); got != 2<<16|10001 {
		t.Fatalf("FlowKey(2,10001) = %#x", got)
	}
	// Same port from different senders must land in different accounts.
	if FlowKey(2, 10001) == FlowKey(3, 10001) {
		t.Fatal("FlowKey collides across nodes")
	}
	// Port 0 is unattributed control traffic: stays flow 0 (exempt).
	if got := FlowKey(7, 0); got != 0 {
		t.Fatalf("FlowKey(7,0) = %d, want 0", got)
	}
}

func TestArbRxAdmitAndBorrow(t *testing.T) {
	e, c, a := arbRig(ArbConfig{MinSharePages: 1, BorrowHeadroomPages: 2})
	defer e.KillAll()
	ps := c.Cfg.PageSize
	total := c.TotalPages()

	// Flow 0 is always admitted.
	if !a.rxAdmit(0, units.Size(total)*ps) {
		t.Fatal("flow 0 must be exempt")
	}

	// The sequence runs inside one proc at t=0, before the idle-reclaim
	// sweep can deactivate anything.
	e.Go("seq", func(p *sim.Proc) {
		a.touch(1)
		a.touch(2)
		share := a.Share(1) // total/2

		// Within share: admitted without borrowing.
		if !a.rxAdmit(1, units.Size(share)*ps) {
			t.Error("within-share admission denied")
		}
		if c.Stats.ArbBorrows != 0 {
			t.Error("within-share admission counted as borrow")
		}

		// Push flow 1 to its share, then go over: granted only as a
		// borrow while the free pool keeps BorrowHeadroomPages of slack.
		a.AdmitTx(p, 1, units.Size(share)*ps)
		if !a.rxAdmit(1, ps) {
			t.Error("over-share borrow denied with a nearly free pool")
		}
		if c.Stats.ArbBorrows != 1 {
			t.Errorf("borrows = %d, want 1", c.Stats.ArbBorrows)
		}

		// Drain the free pool to exactly the headroom: borrowing must
		// stop (an over-share borrow of one page would dip below it).
		pk, ok := c.AllocPacket(units.Size(total-2) * ps)
		if !ok {
			t.Error("pool drain alloc failed")
			return
		}
		defer pk.Free()
		if a.rxAdmit(1, ps) {
			t.Error("over-share borrow granted below headroom")
		}
		// An under-share flow is still admitted: the policy only gates,
		// the physical pool is enforced by AllocPacket.
		if !a.rxAdmit(2, ps) {
			t.Error("under-share admission denied by borrow rules")
		}
	})
	e.Run()
}

func TestArbReserveBlocksBorrowers(t *testing.T) {
	e, c, a := arbRig(ArbConfig{MinSharePages: 1, BorrowHeadroomPages: 1})
	defer e.KillAll()
	ps := c.Cfg.PageSize
	total := c.TotalPages()

	e.Go("seq", func(p *sim.Proc) {
		a.touch(1)
		a.touch(2)
		// Flow 1 fills its share with real pages.
		share := a.Share(1)
		a.AdmitTx(p, 1, units.Size(share)*ps)
		pk, ok := c.AllocPacketFlow(units.Size(share)*ps, 1)
		if !ok {
			t.Error("share-sized alloc failed")
			return
		}
		defer pk.Free()
		// Control: with no reservations outstanding the over-share page is
		// borrowable from slack.
		if !a.rxAdmit(1, ps) {
			t.Error("borrow denied with free slack and no reservations")
		}
		// Flow 2 reserves (but hasn't used) most of the remaining memory:
		// the unmet reservation is withheld from flow 1's borrowing.
		a.Reserve(2, total-share)
		if a.rxAdmit(1, ps) {
			t.Error("borrow granted out of another flow's unmet reservation")
		}
	})
	e.Run()
}

func TestArbAdmitTxBlocksAndWakes(t *testing.T) {
	// Borrowing disabled (headroom = whole memory): admission beyond the
	// share must queue until pages flow back.
	e, c, a := arbRig(ArbConfig{MinSharePages: 1, BorrowHeadroomPages: 1 << 20})
	defer e.KillAll()
	ps := c.Cfg.PageSize

	var wokeAt units.Time
	const freeAt = 50 * units.Microsecond
	e.Go("writer", func(p *sim.Proc) {
		a.touch(1)
		a.touch(2) // second active flow halves the share
		share := a.Share(1)
		// Fill the share and land the allocation.
		a.AdmitTx(p, 1, units.Size(share)*ps)
		pk, ok := c.AllocPacketFlow(units.Size(share)*ps, 1)
		if !ok {
			t.Error("share-sized alloc failed")
			return
		}
		e.At(freeAt, func() { pk.Free() })
		// One page over: must block until the packet is freed.
		a.AdmitTx(p, 1, ps)
		wokeAt = p.Now()
	})
	e.Run()

	if c.Stats.ArbWaits != 1 {
		t.Fatalf("waits = %d, want 1", c.Stats.ArbWaits)
	}
	if wokeAt != freeAt {
		t.Fatalf("waiter woke at %v, want %v (the free)", wokeAt, freeAt)
	}
}

func TestArbIdleReclaim(t *testing.T) {
	e, c, a := arbRig(ArbConfig{IdleExpiry: units.Millisecond})
	defer e.KillAll()
	ps := c.Cfg.PageSize

	// Two flows allocate and free at t=0, then go idle.
	for f := 1; f <= 2; f++ {
		pk, ok := c.AllocPacketFlow(ps, f)
		if !ok {
			t.Fatal("alloc failed")
		}
		pk.Free()
	}
	if a.ActiveFlows() != 2 {
		t.Fatalf("active = %d, want 2", a.ActiveFlows())
	}
	e.Run()
	// The idle sweep reclaimed both registrations...
	if a.ActiveFlows() != 0 {
		t.Fatalf("active after expiry = %d, want 0", a.ActiveFlows())
	}
	if c.Stats.ArbReclaims != 2 {
		t.Fatalf("reclaims = %d, want 2", c.Stats.ArbReclaims)
	}
	// ...so a newcomer owns the whole memory again.
	a.touch(5)
	if got := a.Share(5); got != c.TotalPages() {
		t.Fatalf("post-reclaim share = %d, want %d", got, c.TotalPages())
	}
}

// TestArbReclaimLiveness pins the reclaim timer's termination contract: an
// account that still holds pages (e.g. reassembly data stranded by a dead
// peer) must NOT keep the timer re-arming forever — that would keep the
// event loop alive and hang every Engine.Run for good. The test passes by
// returning: a regression turns it into a test-timeout hang.
func TestArbReclaimLiveness(t *testing.T) {
	e, c, a := arbRig(ArbConfig{IdleExpiry: units.Millisecond})
	defer e.KillAll()
	pk, ok := c.AllocPacketFlow(c.Cfg.PageSize, 1)
	if !ok {
		t.Fatal("alloc failed")
	}
	e.Run() // must drain even though flow 1 never frees

	if a.ActiveFlows() != 1 || a.Held(1) == 0 {
		t.Fatal("page-holding account was reclaimed")
	}
	// When the account finally drains, freeNotify re-arms the sweep and
	// the registration is reclaimed on the next expiry.
	pk.Free()
	e.Run()
	if a.ActiveFlows() != 0 {
		t.Fatalf("active after drain+expiry = %d, want 0", a.ActiveFlows())
	}
}
