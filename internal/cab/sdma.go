package cab

import (
	"fmt"

	"repro/internal/checksum"
	"repro/internal/obs"
	"repro/internal/obs/ledger"
	"repro/internal/sim"
	"repro/internal/units"
)

// Dir is an SDMA transfer direction.
type Dir int

// SDMA directions.
const (
	// ToCAB moves data from host memory into network memory (transmit).
	ToCAB Dir = iota
	// ToHost moves data from network memory into host memory (receive
	// copy-out and auto-DMA).
	ToHost
)

// SDMAReq is one system-DMA request queued through the register file.
// Completion is signaled by calling Done in hardware (event) context; the
// paper's convention is that only the final request of a burst is flagged
// to raise a host interrupt — raising it is the driver's job inside Done.
type SDMAReq struct {
	Dir Dir
	Pkt *Packet

	// ToCAB: Gather lists the host memory segments (header first, then
	// data) whose concatenation forms the packet (or just the new header
	// when HeaderOnly retransmission is used).
	Gather [][]byte
	// HeaderOnly overlays Gather at the start of an existing packet and
	// recomputes the checksum field from the saved body sum (retransmit,
	// Section 4.3).
	HeaderOnly bool

	// Csum engages the transmit checksum engine: it sums the packet body
	// beyond CsumSkip during the transfer, combines it with the 16-bit
	// seed the host placed at CsumOff, and stores the finished checksum
	// there.
	Csum     bool
	CsumOff  units.Size
	CsumSkip units.Size

	// ToHost: copy packet bytes [PktOff, PktOff+len(Scatter bytes)) into
	// the scatter segments.
	PktOff  units.Size
	Scatter [][]byte

	// Done runs at completion, in hardware context.
	Done func(*SDMAReq)

	// Fail runs instead of Done, in hardware context, when a firmware
	// reset kills the descriptor (queued, in service, or posted against an
	// already-wiped packet). Exactly one of Done/Fail fires per request.
	Fail func(*SDMAReq)

	// Prov attributes the transfer's data touches in the ledger (nil when
	// the ledger is off); AutoDMA marks a ToHost transfer as the adaptor's
	// automatic head delivery rather than a host-requested copy-out.
	Prov    *ledger.Prov
	AutoDMA bool

	// Span, when set, receives the transfer's critical-path events
	// (engine-queue wait, then DMA occupancy) on the packet's causal chain.
	Span *obs.Span

	// retries counts consecutive failed attempts under fault injection.
	retries int
}

// maxSDMARetries bounds consecutive failed attempts of one request; a
// fault plan that fails the same transfer this many times is declared
// persistent (the simulated hardware would be dead, not faulty).
const maxSDMARetries = 64

func (r *SDMAReq) bytes() units.Size {
	var n units.Size
	if r.Dir == ToCAB {
		for _, g := range r.Gather {
			n += units.Size(len(g))
		}
	} else {
		for _, s := range r.Scatter {
			n += units.Size(len(s))
		}
	}
	return n
}

// SDMA queues a system-DMA request. Requests execute in FIFO order on the
// single SDMA engine; each occupies the IO bus for the machine's DMA time.
func (c *CAB) SDMA(req *SDMAReq) {
	if req.Pkt == nil {
		panic("cab: SDMA on nil packet")
	}
	if req.Pkt.zapped {
		// The packet was wiped by a firmware reset after the host decided
		// to post this descriptor; fail it immediately.
		c.killSDMA(req)
		return
	}
	if req.Pkt.freed {
		panic("cab: SDMA on freed packet")
	}
	c.sdmaQ.Put(req)
}

// sdmaProc is the SDMA engine: one transfer at a time, charging bus time.
func (c *CAB) sdmaProc(p *sim.Proc) {
	for {
		req := c.sdmaQ.Get(p)
		req.Span.CritEv(obs.CauseQueue, "sdma_start")
		n := req.bytes()
		p.Sleep(c.Mach.DMATime(n))
		if req.Pkt.zapped {
			// A firmware reset wiped the packet while the transfer occupied
			// the bus: the descriptor dies with the adaptor state.
			c.killSDMA(req)
			continue
		}
		if c.FaultSDMA != nil && c.FaultSDMA() {
			// The transfer failed after occupying the bus; requeue it.
			// Completion (Done) fires only on success, so owners never see
			// a half-finished transfer.
			c.Stats.SDMAFails++
			req.retries++
			if req.retries > maxSDMARetries {
				panic("cab: SDMA fault persisted past retry limit")
			}
			c.sdmaQ.Put(req)
			continue
		}
		req.retries = 0
		c.Stats.SDMAOps++
		c.Stats.SDMABytes += n
		switch req.Dir {
		case ToCAB:
			c.performToCAB(req)
			if !req.HeaderOnly {
				var fl ledger.Flags
				if req.Csum {
					fl = ledger.FlagCsumFlight
				}
				c.Led.TouchP(req.Prov, 0, req.Pkt.Len(), ledger.SDMAToNet, "sdma", fl)
			}
		case ToHost:
			c.performToHost(req)
			var fl ledger.Flags
			if req.AutoDMA {
				fl = ledger.FlagAutoDMA
			}
			c.Led.TouchP(req.Prov, req.PktOff, n, ledger.SDMAToHost, "sdma", fl)
		}
		req.Span.CritEv(obs.CauseDMA, "sdma_done")
		if req.Done != nil {
			req.Done(req)
		}
	}
}

func (c *CAB) performToCAB(req *SDMAReq) {
	pk := req.Pkt
	off := units.Size(0)
	for _, g := range req.Gather {
		n := units.Size(copy(pk.buf[off:], g))
		if n != units.Size(len(g)) {
			panic(fmt.Sprintf("cab: gather overflow at %v into %v-byte packet", off, pk.Len()))
		}
		off += n
	}
	if !req.HeaderOnly && off != pk.Len() {
		panic(fmt.Sprintf("cab: packet not fully formed: %v of %v bytes", off, pk.Len()))
	}
	if !req.Csum {
		return
	}
	if req.CsumSkip%2 != 0 || req.CsumOff+2 > pk.Len() || req.CsumOff+2 > req.CsumSkip {
		panic(fmt.Sprintf("cab: bad checksum geometry off=%v skip=%v", req.CsumOff, req.CsumSkip))
	}
	if req.HeaderOnly {
		// Retransmission: new header, saved body sum (Section 4.3).
		if !pk.HasBodySum {
			panic("cab: header-only SDMA with no saved body checksum")
		}
		c.Stats.RetransmitOverlays++
	} else {
		pk.BodySum = checksum.Sum(pk.buf[req.CsumSkip:])
		if c.FaultTxCsum != nil {
			// Checksum-engine miscomputation: the saved body sum (and so
			// the wire checksum, here and on every header-only overlay
			// retransmit that reuses it) is wrong until the driver falls
			// back to a fresh multi-copy send.
			pk.BodySum ^= c.FaultTxCsum()
		}
		pk.HasBodySum = true
	}
	seed := uint32(pk.buf[req.CsumOff])<<8 | uint32(pk.buf[req.CsumOff+1])
	final := checksum.Finish(checksum.Add(seed, pk.BodySum))
	pk.buf[req.CsumOff] = byte(final >> 8)
	pk.buf[req.CsumOff+1] = byte(final)
}

func (c *CAB) performToHost(req *SDMAReq) {
	pk := req.Pkt
	off := req.PktOff
	for _, s := range req.Scatter {
		n := units.Size(copy(s, pk.buf[off:]))
		if n != units.Size(len(s)) {
			panic(fmt.Sprintf("cab: scatter underrun at %v of %v-byte packet", off, pk.Len()))
		}
		off += n
	}
}
