// Netmem arbiter: per-flow accounting of network-memory pages with
// weighted elastic quotas, so one elephant flow cannot monopolize the
// adaptor's outboard buffering (the seed policy is first-come global, and
// the rx hold queue only bounds the receive side).
//
// Policy. Each active flow f has a share
//
//	share(f) = max(MinSharePages, reserve(f), totalPages·w(f)/Σw(active))
//
// A flow may allocate freely while its usage (pages held in network memory
// plus pages admitted but not yet staged) stays within its share; beyond
// the share it may *borrow* from slack only while at least
// BorrowHeadroomPages would remain free and no other flow is queued
// waiting for admission. Transmit admission happens above the driver (the
// socket layer calls AdmitTx before appending to the send buffer), so the
// single per-host transmit daemon never blocks on an over-share flow;
// receive admission gates the staging allocation in the per-flow hold
// queues (mdma.go). Admission waiters are served FIFO; only the head of
// the queue holds the borrow privilege, so under-share flows cannot be
// overtaken by a borrower. Flow 0 (control traffic: bare ACKs, fragments)
// is exempt — small control frames must keep flowing or window/ACK clocks
// stall — which together with MinSharePages makes the policy
// deadlock-free: every flow can always stage at least one packet's worth.
//
// Shares are elastic: Σ share may exceed the memory (MinSharePages
// overcommit); the global free-page pool, enforced by AllocPacket, remains
// the hard limit, and a fully subscribed adaptor degrades every flow
// toward stop-and-wait rather than starving any of them.
//
// Reclaim. A flow that holds no pages and has not allocated for
// IdleExpiry of virtual time is deactivated on a lazy periodic sweep: its
// weight leaves the share denominator and any reservation is released, so
// the memory flows back to the live flows without explicit teardown.
package cab

import (
	"repro/internal/sim"
	"repro/internal/units"
)

// ArbConfig parameterizes the netmem arbiter. Zero values select the
// defaults noted on each field.
type ArbConfig struct {
	// MinSharePages is the floor of any active flow's share: enough pages
	// to stage one maximum-size packet (default 5 = 40KB at the default
	// 8KB page, covering a 32KB MTU packet plus headers).
	MinSharePages int
	// BorrowHeadroomPages is how many pages must remain free after an
	// over-share (borrowed) allocation (default totalPages/8).
	BorrowHeadroomPages int
	// IdleExpiry is how long a flow may sit with zero pages held before
	// its registration (weight, reservation) is reclaimed (default 10ms).
	IdleExpiry units.Time
	// DefaultWeight is the weight assigned to flows on first touch
	// (default 1).
	DefaultWeight int
}

type flowAcct struct {
	id       int
	weight   int
	reserve  int
	held     int // pages currently allocated in network memory
	inflight int // pages admitted by AdmitTx but not yet allocated
	lastUse  units.Time
	active   bool
}

func (f *flowAcct) usage() int { return f.held + f.inflight }

type arbWaiter struct {
	f       *flowAcct
	pages   int
	sig     *sim.Signal
	granted bool
}

// Arbiter arbitrates network-memory pages between flows. Install with
// NewArbiter; a nil CAB.Arb is the seed first-come policy.
type Arbiter struct {
	c   *CAB
	cfg ArbConfig

	flows map[int]*flowAcct
	order []*flowAcct // registration order: deterministic iteration
	// sumWeight is Σ weight over active flows; unmet is Σ max(0,
	// reserve-usage) over active flows (pages withheld from borrowers).
	sumWeight int
	unmet     int

	waiters      []*arbWaiter
	reclaimArmed bool
}

// NewArbiter installs a netmem arbiter on c and returns it.
func NewArbiter(c *CAB, cfg ArbConfig) *Arbiter {
	if cfg.MinSharePages <= 0 {
		cfg.MinSharePages = 5
	}
	if cfg.BorrowHeadroomPages <= 0 {
		cfg.BorrowHeadroomPages = c.totalPages / 8
	}
	if cfg.IdleExpiry <= 0 {
		cfg.IdleExpiry = 10 * units.Millisecond
	}
	if cfg.DefaultWeight <= 0 {
		cfg.DefaultWeight = 1
	}
	a := &Arbiter{c: c, cfg: cfg, flows: make(map[int]*flowAcct)}
	c.Arb = a
	if c.rxHoldQ == nil {
		c.rxHoldQ = make(map[int][]heldRx)
	}
	return a
}

// ActiveFlows returns the number of flows currently holding a share.
func (a *Arbiter) ActiveFlows() int {
	n := 0
	for _, f := range a.order {
		if f.active {
			n++
		}
	}
	return n
}

// Share returns flow's current share in pages (diagnostics and tests).
func (a *Arbiter) Share(flow int) int {
	f, ok := a.flows[flow]
	if !ok || !f.active {
		return 0
	}
	return a.share(f)
}

// Held returns the pages currently allocated to flow.
func (a *Arbiter) Held(flow int) int {
	if f, ok := a.flows[flow]; ok {
		return f.held
	}
	return 0
}

// SetWeight sets flow's arbitration weight (default 1). Larger weights
// earn proportionally larger shares.
func (a *Arbiter) SetWeight(flow int, w int) {
	if flow == 0 || w <= 0 {
		return
	}
	f := a.touch(flow)
	a.adjustUnmet(f, func() {
		a.sumWeight += w - f.weight
		f.weight = w
	})
	a.grantScan()
}

// Reserve sets a floor of pages held back for flow: its share never drops
// below the reservation, and unmet reservations shrink the slack other
// flows may borrow from. The reservation is released when the flow goes
// idle (IdleExpiry). Reservations are soft floors — they do not gate other
// flows' within-share allocations, only their borrowing.
func (a *Arbiter) Reserve(flow int, pages int) {
	if flow == 0 || pages < 0 {
		return
	}
	if pages > a.c.totalPages {
		pages = a.c.totalPages
	}
	f := a.touch(flow)
	a.adjustUnmet(f, func() { f.reserve = pages })
	a.grantScan()
}

// AdmitTx gates n bytes of transmit staging for flow, blocking p until the
// flow's allocation fits the arbitration policy. The admitted pages are
// charged to the flow until the driver's matching AllocPacketFlow lands.
// Flow 0 is admitted unconditionally.
func (a *Arbiter) AdmitTx(p *sim.Proc, flow int, n units.Size) {
	if flow == 0 {
		return
	}
	f := a.touch(flow)
	pages := a.pagesFor(n)
	if len(a.waiters) == 0 && a.admit(f, pages, true) {
		return
	}
	a.c.Stats.ArbWaits++
	w := &arbWaiter{f: f, pages: pages, sig: sim.NewSignal(a.c.eng)}
	a.waiters = append(a.waiters, w)
	for !w.granted {
		w.sig.Wait(p)
	}
}

// rxAdmit gates a receive staging allocation of pages for flow. It never
// blocks (the caller holds the frame in the per-flow rx hold queue and
// retries); flow 0 is always admitted.
func (a *Arbiter) rxAdmit(flow int, n units.Size) bool {
	if flow == 0 {
		return true
	}
	f := a.touch(flow)
	pages := a.pagesFor(n)
	if f.usage()+pages <= a.share(f) {
		return true
	}
	if a.borrowOK(f, pages) {
		a.c.Stats.ArbBorrows++
		return true
	}
	return false
}

func (a *Arbiter) pagesFor(n units.Size) int {
	return int((n + a.c.Cfg.PageSize - 1) / a.c.Cfg.PageSize)
}

func (a *Arbiter) share(f *flowAcct) int {
	s := 0
	if a.sumWeight > 0 {
		s = a.c.totalPages * f.weight / a.sumWeight
	}
	if s < a.cfg.MinSharePages {
		s = a.cfg.MinSharePages
	}
	if s < f.reserve {
		s = f.reserve
	}
	return s
}

// borrowOK reports whether an over-share allocation of pages for f may be
// served from slack: enough headroom stays free and no other flow's
// reservation would be eaten.
func (a *Arbiter) borrowOK(f *flowAcct, pages int) bool {
	unmetOthers := a.unmet
	if f.reserve > f.usage() {
		unmetOthers -= f.reserve - f.usage()
	}
	return a.c.freePages-a.c.reserved-pages >= a.cfg.BorrowHeadroomPages+unmetOthers
}

// admit charges pages to f if the policy allows it. borrowPriv grants the
// over-share borrow privilege (fast path with an empty queue, or the head
// waiter during a grant scan).
func (a *Arbiter) admit(f *flowAcct, pages int, borrowPriv bool) bool {
	switch {
	case f.usage()+pages <= a.share(f):
	case borrowPriv && a.borrowOK(f, pages):
		a.c.Stats.ArbBorrows++
	default:
		return false
	}
	a.adjustUnmet(f, func() { f.inflight += pages })
	f.lastUse = a.c.eng.Now()
	return true
}

// touch returns flow's accounting record, creating or re-activating it.
func (a *Arbiter) touch(flow int) *flowAcct {
	f, ok := a.flows[flow]
	if !ok {
		f = &flowAcct{id: flow, weight: a.cfg.DefaultWeight}
		a.flows[flow] = f
		a.order = append(a.order, f)
	}
	if !f.active {
		f.active = true
		a.sumWeight += f.weight
		a.unmet += max(0, f.reserve-f.usage())
	}
	f.lastUse = a.c.eng.Now()
	a.armReclaim()
	return f
}

// adjustUnmet runs mutate (which may change f's usage, reserve, or weight)
// keeping the aggregate unmet-reservation total consistent.
func (a *Arbiter) adjustUnmet(f *flowAcct, mutate func()) {
	if f.active {
		a.unmet -= max(0, f.reserve-f.usage())
	}
	mutate()
	if f.active {
		a.unmet += max(0, f.reserve-f.usage())
	}
}

// allocNotify transfers an admitted allocation from inflight to held
// (called from AllocPacketFlow).
func (a *Arbiter) allocNotify(flow int, pages int) {
	if flow == 0 {
		return
	}
	f := a.touch(flow)
	a.adjustUnmet(f, func() {
		f.held += pages
		if f.inflight > pages {
			f.inflight -= pages
		} else {
			f.inflight = 0
		}
	})
}

// freeNotify returns pages to flow's budget and re-evaluates admission
// waiters (called from Packet.Free).
func (a *Arbiter) freeNotify(flow int, pages int) {
	if flow != 0 {
		if f, ok := a.flows[flow]; ok {
			a.adjustUnmet(f, func() {
				f.held -= pages
				if f.held < 0 {
					f.held = 0
				}
			})
			f.lastUse = a.c.eng.Now()
			if f.active && f.held == 0 && f.inflight == 0 {
				// The account just drained: arm the timer that will
				// eventually reclaim it.
				a.armReclaim()
			}
		}
	}
	a.grantScan()
}

// grantScan serves queued admissions in FIFO order. Only the head of the
// remaining queue may borrow beyond its share.
func (a *Arbiter) grantScan() {
	if len(a.waiters) == 0 {
		return
	}
	kept := a.waiters[:0]
	for _, w := range a.waiters {
		if a.admit(w.f, w.pages, len(kept) == 0) {
			w.granted = true
			w.sig.Broadcast()
		} else {
			kept = append(kept, w)
		}
	}
	for i := len(kept); i < len(a.waiters); i++ {
		a.waiters[i] = nil
	}
	a.waiters = kept
}

func (a *Arbiter) armReclaim() {
	if a.reclaimArmed {
		return
	}
	a.reclaimArmed = true
	a.c.eng.AfterKind(a.cfg.IdleExpiry, sim.KindTimer, a.reclaimTick)
}

// reclaimTick deactivates flows idle for at least IdleExpiry, returning
// their weight and reservation to the live flows.
func (a *Arbiter) reclaimTick() {
	a.reclaimArmed = false
	now := a.c.eng.Now()
	rearm := len(a.waiters) > 0
	for _, f := range a.order {
		if !f.active {
			continue
		}
		if f.held == 0 && f.inflight == 0 {
			if now-f.lastUse >= a.cfg.IdleExpiry {
				a.unmet -= max(0, f.reserve-f.usage())
				f.active = false
				f.reserve = 0
				a.sumWeight -= f.weight
				a.c.Stats.ArbReclaims++
				continue
			}
			// Idle but not yet expired: a later tick will reclaim it.
			rearm = true
		}
		// Flows still holding pages cannot be reclaimed by the timer;
		// freeNotify re-arms it when such an account drains. Re-arming
		// for them here would keep the engine alive forever when pages
		// are stranded (e.g. reassembly data on a dead peer's
		// connection).
	}
	a.grantScan()
	if rearm {
		a.armReclaim()
	}
}
