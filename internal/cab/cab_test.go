package cab

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/checksum"
	"repro/internal/cost"
	"repro/internal/hippi"
	"repro/internal/sim"
	"repro/internal/units"
)

func testRig() (*sim.Engine, *hippi.Network, *CAB, *CAB) {
	e := sim.NewEngine(1)
	n := hippi.NewNetwork(e, hippi.LineRate, 5*units.Microsecond)
	a := New(e, cost.Alpha400(), n, 1, DefaultConfig())
	b := New(e, cost.Alpha400(), n, 2, DefaultConfig())
	return e, n, a, b
}

func TestAllocFreePages(t *testing.T) {
	e, _, a, _ := testRig()
	defer e.KillAll()
	total := a.FreePages()
	pk, ok := a.AllocPacket(20 * units.KB) // 3 pages of 8KB
	if !ok || pk.Len() != 20*units.KB {
		t.Fatal("alloc failed")
	}
	if a.FreePages() != total-3 {
		t.Fatalf("free pages = %d, want %d", a.FreePages(), total-3)
	}
	pk.Free()
	if a.FreePages() != total {
		t.Fatalf("pages leaked: %d of %d", a.FreePages(), total)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	e, _, a, _ := testRig()
	defer e.KillAll()
	pk, _ := a.AllocPacket(100)
	pk.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pk.Free()
}

func TestAllocExhaustionAndWait(t *testing.T) {
	e, _, a, _ := testRig()
	defer e.KillAll()
	big, ok := a.AllocPacket(a.Cfg.MemSize) // everything
	if !ok {
		t.Fatal("full-memory alloc failed")
	}
	if _, ok := a.AllocPacket(1); ok {
		t.Fatal("alloc should fail when memory exhausted")
	}
	var gotAt units.Time
	e.Go("waiter", func(p *sim.Proc) {
		pk := a.AllocPacketWait(p, 8*units.KB)
		gotAt = p.Now()
		pk.Free()
	})
	e.At(100*units.Microsecond, func() { big.Free() })
	e.Run()
	if gotAt != 100*units.Microsecond {
		t.Fatalf("waiter satisfied at %v, want 100us", gotAt)
	}
}

// buildPacket creates a (hdrLen+bodyLen)-byte packet image with a seeded
// checksum field at csumOff, returning the image with the seed in place
// and the expected final checksum.
func buildPacket(r *rand.Rand, hdrLen, bodyLen int, csumOff int) (img []byte, want uint16) {
	img = make([]byte, hdrLen+bodyLen)
	r.Read(img)
	img[csumOff], img[csumOff+1] = 0, 0
	want = checksum.Checksum(img) // checksum over the whole packet
	// Host-side seed: sum of the header with a zeroed checksum field.
	seed := checksum.Fold(checksum.Sum(img[:hdrLen]))
	img[csumOff], img[csumOff+1] = byte(seed>>8), byte(seed)
	return img, want
}

func TestSDMATxChecksumSeedProtocol(t *testing.T) {
	e, _, a, _ := testRig()
	defer e.KillAll()
	r := rand.New(rand.NewSource(2))
	const hdrLen, bodyLen, csumOff = 80, 3000, 56
	img, want := buildPacket(r, hdrLen, bodyLen, csumOff)

	pk, _ := a.AllocPacket(units.Size(len(img)))
	done := false
	a.SDMA(&SDMAReq{
		Dir:      ToCAB,
		Pkt:      pk,
		Gather:   [][]byte{img[:hdrLen], img[hdrLen:]},
		Csum:     true,
		CsumOff:  csumOff,
		CsumSkip: hdrLen,
		Done:     func(*SDMAReq) { done = true },
	})
	e.Run()
	if !done {
		t.Fatal("SDMA never completed")
	}
	got := uint16(pk.Bytes()[csumOff])<<8 | uint16(pk.Bytes()[csumOff+1])
	if got != want {
		t.Fatalf("hardware checksum %#x, want %#x", got, want)
	}
	if !pk.HasBodySum {
		t.Fatal("body sum not saved")
	}
	// Everything except the checksum field must match the source image.
	img[csumOff], img[csumOff+1] = byte(want>>8), byte(want)
	if !bytes.Equal(pk.Bytes(), img) {
		t.Fatal("packet bytes corrupted")
	}
}

func TestHeaderOnlyRetransmitOverlay(t *testing.T) {
	e, _, a, _ := testRig()
	defer e.KillAll()
	r := rand.New(rand.NewSource(3))
	const hdrLen, bodyLen, csumOff = 80, 5000, 56
	img, _ := buildPacket(r, hdrLen, bodyLen, csumOff)

	pk, _ := a.AllocPacket(units.Size(len(img)))
	a.SDMA(&SDMAReq{
		Dir: ToCAB, Pkt: pk, Gather: [][]byte{img},
		Csum: true, CsumOff: csumOff, CsumSkip: hdrLen,
	})
	e.Run()

	// Retransmission: the host supplies a fresh header (e.g. new window
	// field) with a fresh seed; the engine reuses the saved body sum.
	newHdr := make([]byte, hdrLen)
	r.Read(newHdr)
	newHdr[csumOff], newHdr[csumOff+1] = 0, 0
	// Expected checksum: whole packet with the new header.
	full := append(append([]byte{}, newHdr...), img[hdrLen:]...)
	want := checksum.Checksum(full)
	seed := checksum.Fold(checksum.Sum(newHdr))
	newHdr[csumOff], newHdr[csumOff+1] = byte(seed>>8), byte(seed)

	a.SDMA(&SDMAReq{
		Dir: ToCAB, Pkt: pk, Gather: [][]byte{newHdr},
		HeaderOnly: true, Csum: true, CsumOff: csumOff, CsumSkip: hdrLen,
	})
	e.Run()

	got := uint16(pk.Bytes()[csumOff])<<8 | uint16(pk.Bytes()[csumOff+1])
	if got != want {
		t.Fatalf("retransmit checksum %#x, want %#x", got, want)
	}
	if !bytes.Equal(pk.Bytes()[hdrLen:], img[hdrLen:]) {
		t.Fatal("body corrupted by header overlay")
	}
	if a.Stats.RetransmitOverlays != 1 {
		t.Fatalf("overlays = %d, want 1", a.Stats.RetransmitOverlays)
	}
}

func TestSDMAToHostScatter(t *testing.T) {
	e, _, a, _ := testRig()
	defer e.KillAll()
	r := rand.New(rand.NewSource(4))
	data := make([]byte, 10000)
	r.Read(data)
	pk, _ := a.AllocPacket(units.Size(len(data)))
	a.SDMA(&SDMAReq{Dir: ToCAB, Pkt: pk, Gather: [][]byte{data}})
	e.Run()

	d1, d2 := make([]byte, 3000), make([]byte, 4000)
	a.SDMA(&SDMAReq{
		Dir: ToHost, Pkt: pk, PktOff: 1000,
		Scatter: [][]byte{d1, d2},
	})
	e.Run()
	if !bytes.Equal(d1, data[1000:4000]) || !bytes.Equal(d2, data[4000:8000]) {
		t.Fatal("scatter copy-out mismatch")
	}
}

func TestSDMATiming(t *testing.T) {
	e, _, a, _ := testRig()
	defer e.KillAll()
	pk, _ := a.AllocPacket(32 * units.KB)
	data := make([]byte, 32*units.KB)
	var doneAt units.Time
	a.SDMA(&SDMAReq{Dir: ToCAB, Pkt: pk, Gather: [][]byte{data},
		Done: func(*SDMAReq) { doneAt = e.Now() }})
	e.Run()
	want := a.Mach.DMATime(32 * units.KB)
	if doneAt != want {
		t.Fatalf("SDMA completed at %v, want %v", doneAt, want)
	}
	// The engine serializes: a second request finishes after 2×.
	var secondAt units.Time
	pk2, _ := a.AllocPacket(32 * units.KB)
	a.SDMA(&SDMAReq{Dir: ToCAB, Pkt: pk, Gather: [][]byte{data}})
	a.SDMA(&SDMAReq{Dir: ToCAB, Pkt: pk2, Gather: [][]byte{data},
		Done: func(*SDMAReq) { secondAt = e.Now() }})
	e.Run()
	if secondAt != doneAt+2*want {
		t.Fatalf("second SDMA at %v, want %v", secondAt, doneAt+2*want)
	}
}

func TestMediaTransmitAndReceive(t *testing.T) {
	e, _, a, b := testRig()
	defer e.KillAll()
	r := rand.New(rand.NewSource(5))
	data := make([]byte, 12000)
	r.Read(data)

	for i := 0; i < 4; i++ {
		b.ProvideRxBuf(make([]byte, b.Cfg.AutoDMALen))
	}
	var ev *RxEvent
	b.OnRx = func(e *RxEvent) { ev = e }

	pk, _ := a.AllocPacket(units.Size(len(data)))
	a.SDMA(&SDMAReq{Dir: ToCAB, Pkt: pk, Gather: [][]byte{data},
		Done: func(*SDMAReq) { a.MDMATx(pk, 2, nil, nil, nil) }})
	e.Run()

	if ev == nil {
		t.Fatal("no receive event")
	}
	if ev.Pkt.Len() != units.Size(len(data)) {
		t.Fatalf("rx len = %v, want %d", ev.Pkt.Len(), len(data))
	}
	if !bytes.Equal(ev.Pkt.Bytes(), data) {
		t.Fatal("rx bytes mismatch")
	}
	if !bytes.Equal(ev.Buf[:ev.HdrLen], data[:ev.HdrLen]) {
		t.Fatal("auto-DMA head mismatch")
	}
	if ev.HdrLen != b.Cfg.AutoDMALen {
		t.Fatalf("auto-DMA length = %v, want %v", ev.HdrLen, b.Cfg.AutoDMALen)
	}
	want := checksum.Sum(data[b.Cfg.RxCsumSkip:])
	if checksum.Fold(ev.BodySum) != checksum.Fold(want) {
		t.Fatal("receive checksum engine mismatch")
	}
	if a.Stats.TxPackets != 1 || b.Stats.RxPackets != 1 {
		t.Fatalf("stats: tx=%d rx=%d", a.Stats.TxPackets, b.Stats.RxPackets)
	}
	if b.RxBufCount() != 3 {
		t.Fatalf("rx bufs = %d, want 3", b.RxBufCount())
	}
}

func TestSmallPacketFitsAutoDMA(t *testing.T) {
	e, _, a, b := testRig()
	defer e.KillAll()
	b.ProvideRxBuf(make([]byte, b.Cfg.AutoDMALen))
	var ev *RxEvent
	b.OnRx = func(e *RxEvent) { ev = e }
	data := make([]byte, 300) // < AutoDMALen
	pk, _ := a.AllocPacket(300)
	a.SDMA(&SDMAReq{Dir: ToCAB, Pkt: pk, Gather: [][]byte{data},
		Done: func(*SDMAReq) { a.MDMATx(pk, 2, nil, nil, nil) }})
	e.Run()
	if ev == nil || ev.HdrLen != 300 {
		t.Fatalf("small packet auto-DMA: %+v", ev)
	}
}

func TestRxDropNoBuf(t *testing.T) {
	e, _, a, b := testRig()
	defer e.KillAll()
	got := 0
	b.OnRx = func(*RxEvent) { got++ }
	pk, _ := a.AllocPacket(1000)
	a.SDMA(&SDMAReq{Dir: ToCAB, Pkt: pk, Gather: [][]byte{make([]byte, 1000)},
		Done: func(*SDMAReq) { a.MDMATx(pk, 2, nil, nil, nil) }})
	e.Run()
	if got != 0 || b.Stats.DropNoBuf != 1 {
		t.Fatalf("got=%d dropNoBuf=%d, want 0/1", got, b.Stats.DropNoBuf)
	}
	// Dropped packets must not leak network memory.
	if b.FreePages() != b.TotalPages() {
		t.Fatalf("pages leaked after drop: %d of %d", b.FreePages(), b.TotalPages())
	}
}

func TestLogicalChannelRoundRobin(t *testing.T) {
	e := sim.NewEngine(1)
	n := hippi.NewNetwork(e, hippi.LineRate, 0)
	a := New(e, cost.Alpha400(), n, 1, DefaultConfig())
	var order []hippi.NodeID
	for id := hippi.NodeID(2); id <= 4; id++ {
		id := id
		n.Attach(id, func(f hippi.Frame) { order = append(order, id) })
	}
	defer e.KillAll()
	// Queue 2 packets per destination; round-robin should interleave.
	for i := 0; i < 2; i++ {
		for id := hippi.NodeID(2); id <= 4; id++ {
			pk, _ := a.AllocPacket(1000)
			a.SDMA(&SDMAReq{Dir: ToCAB, Pkt: pk, Gather: [][]byte{make([]byte, 1000)}})
			a.MDMATx(pk, id, nil, nil, nil)
		}
	}
	e.Run()
	if len(order) != 6 {
		t.Fatalf("delivered %d, want 6", len(order))
	}
	// First three deliveries should cover all three destinations.
	seen := map[hippi.NodeID]bool{}
	for _, id := range order[:3] {
		seen[id] = true
	}
	if len(seen) != 3 {
		t.Fatalf("round-robin failed: first three went to %v", order[:3])
	}
}
