package mem

import (
	"fmt"

	"repro/internal/units"
)

// Iovec is one contiguous segment of a scatter/gather list.
type Iovec struct {
	Addr units.Size
	Len  units.Size
}

// UIO describes the user memory area of a read or write system call: an
// address space plus an iovec list, with a cursor tracking how much has
// been consumed. It corresponds to the BSD struct uio carried inside the
// paper's M_UIO mbufs.
type UIO struct {
	Space *AddrSpace
	iov   []Iovec
	total units.Size
	done  units.Size // bytes consumed from the front
}

// NewUIO builds a UIO over bufs, which must all belong to the same space.
func NewUIO(bufs ...Buf) *UIO {
	if len(bufs) == 0 {
		panic("mem: UIO needs at least one buffer")
	}
	u := &UIO{Space: bufs[0].Space}
	for _, b := range bufs {
		if b.Space != u.Space {
			panic("mem: UIO buffers must share one address space")
		}
		if b.Len == 0 {
			continue
		}
		u.iov = append(u.iov, Iovec{Addr: b.Addr, Len: b.Len})
		u.total += b.Len
	}
	return u
}

// Total returns the full byte count the UIO described initially.
func (u *UIO) Total() units.Size { return u.total }

// Resid returns the bytes not yet consumed.
func (u *UIO) Resid() units.Size { return u.total - u.done }

// Offset returns the bytes consumed so far.
func (u *UIO) Offset() units.Size { return u.done }

// Advance consumes n bytes from the front.
func (u *UIO) Advance(n units.Size) {
	if n < 0 || n > u.Resid() {
		panic(fmt.Sprintf("mem: UIO advance %v with resid %v", n, u.Resid()))
	}
	u.done += n
}

// Segments returns the iovec segments covering [off, off+n) in the UIO's
// original (un-consumed) coordinates.
func (u *UIO) Segments(off, n units.Size) []Iovec {
	if off < 0 || n < 0 || off+n > u.total {
		panic(fmt.Sprintf("mem: UIO segments [%v,+%v) outside %v", off, n, u.total))
	}
	var out []Iovec
	pos := units.Size(0)
	for _, v := range u.iov {
		if n == 0 {
			break
		}
		end := pos + v.Len
		if end <= off {
			pos = end
			continue
		}
		start := v.Addr
		avail := v.Len
		if off > pos {
			start += off - pos
			avail -= off - pos
		}
		take := avail
		if take > n {
			take = n
		}
		out = append(out, Iovec{Addr: start, Len: take})
		n -= take
		off += take
		pos = end
	}
	return out
}

// ReadAt copies n bytes starting at offset off (original coordinates) into
// dst, which must be at least n long. It returns the bytes copied.
func (u *UIO) ReadAt(dst []byte, off, n units.Size) units.Size {
	var copied units.Size
	for _, seg := range u.Segments(off, n) {
		copied += units.Size(copy(dst[copied:], u.Space.Bytes(seg.Addr, seg.Len)))
	}
	return copied
}

// WriteAt copies src into the UIO region starting at offset off.
func (u *UIO) WriteAt(src []byte, off units.Size) units.Size {
	var written units.Size
	n := units.Size(len(src))
	for _, seg := range u.Segments(off, n) {
		written += units.Size(copy(u.Space.Bytes(seg.Addr, seg.Len), src[written:]))
	}
	return written
}

// AlignedTo reports whether every segment of [off, off+n) starts on an
// a-byte boundary. The CAB's SDMA engine requires 32-bit word alignment of
// host addresses (Section 4.5).
func (u *UIO) AlignedTo(off, n, a units.Size) bool {
	for _, seg := range u.Segments(off, n) {
		if seg.Addr%a != 0 {
			return false
		}
	}
	return true
}

// PageSpan returns the number of pages covered by [off, off+n).
func (u *UIO) PageSpan(off, n units.Size) int {
	pages := 0
	for _, seg := range u.Segments(off, n) {
		pages += u.Space.PageSpan(seg.Addr, seg.Len)
	}
	return pages
}
