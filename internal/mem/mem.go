// Package mem models host memory: per-task address spaces backed by real
// bytes, page-granular pinning state, and the UIO (iovec) descriptors that
// read/write system calls and M_UIO mbufs use to describe data that is
// still in user space.
//
// The simulator moves real bytes through these spaces so that checksums and
// end-to-end data integrity are genuine; only the *time* the movement takes
// is virtual (charged by the kernel layer from the cost model).
package mem

import (
	"fmt"

	"repro/internal/units"
)

// AddrSpace is one task's (or the kernel's) address space: a flat byte
// array with page-granular pin accounting.
type AddrSpace struct {
	name     string
	pageSize units.Size
	data     []byte
	brk      units.Size // bump-allocator high-water mark
	pinned   []int      // per-page pin reference counts
	mapped   []bool     // per-page "mapped into kernel space" flags
}

// NewAddrSpace returns a size-byte address space with the given page size.
func NewAddrSpace(name string, size, pageSize units.Size) *AddrSpace {
	if pageSize <= 0 || size <= 0 || size%pageSize != 0 {
		panic(fmt.Sprintf("mem: bad address space geometry %v/%v", size, pageSize))
	}
	pages := int(size / pageSize)
	return &AddrSpace{
		name:     name,
		pageSize: pageSize,
		data:     make([]byte, size),
		pinned:   make([]int, pages),
		mapped:   make([]bool, pages),
	}
}

// Name returns the space's diagnostic name.
func (s *AddrSpace) Name() string { return s.name }

// PageSize returns the VM page size.
func (s *AddrSpace) PageSize() units.Size { return s.pageSize }

// Size returns the total size of the space.
func (s *AddrSpace) Size() units.Size { return units.Size(len(s.data)) }

// Alloc carves a new buffer of n bytes aligned to align (power-of-two or
// any positive value; 0 means page-aligned). It panics if the space is
// exhausted — simulation configs should size spaces generously.
func (s *AddrSpace) Alloc(n, align units.Size) Buf {
	if align <= 0 {
		align = s.pageSize
	}
	addr := (s.brk + align - 1) / align * align
	if addr+n > s.Size() {
		panic(fmt.Sprintf("mem: address space %q exhausted (%v + %v > %v)",
			s.name, addr, n, s.Size()))
	}
	s.brk = addr + n
	return Buf{Space: s, Addr: addr, Len: n}
}

// AllocMisaligned allocates n bytes starting misalign bytes past a page
// boundary, to exercise the unaligned-access fallback path.
func (s *AddrSpace) AllocMisaligned(n, misalign units.Size) Buf {
	b := s.Alloc(n+misalign, s.pageSize)
	return Buf{Space: s, Addr: b.Addr + misalign, Len: n}
}

// Bytes returns the live backing bytes for [addr, addr+n).
func (s *AddrSpace) Bytes(addr, n units.Size) []byte {
	if addr < 0 || n < 0 || addr+n > s.Size() {
		panic(fmt.Sprintf("mem: access [%v,+%v) outside space %q", addr, n, s.name))
	}
	return s.data[addr : addr+n]
}

// pageRange returns the page index range [first, last] covering
// [addr, addr+n).
func (s *AddrSpace) pageRange(addr, n units.Size) (int, int) {
	if n <= 0 {
		return 0, -1
	}
	return int(addr / s.pageSize), int((addr + n - 1) / s.pageSize)
}

// PageSpan returns the number of pages covering [addr, addr+n).
func (s *AddrSpace) PageSpan(addr, n units.Size) int {
	first, last := s.pageRange(addr, n)
	if last < first {
		return 0
	}
	return last - first + 1
}

// Pin increments the pin count of every page covering [addr, addr+n) and
// returns the number of pages that became newly pinned (for cost
// accounting: re-pinning an already pinned page is free in the lazy-unpin
// scheme).
func (s *AddrSpace) Pin(addr, n units.Size) int {
	first, last := s.pageRange(addr, n)
	fresh := 0
	for i := first; i <= last; i++ {
		if s.pinned[i] == 0 {
			fresh++
		}
		s.pinned[i]++
	}
	return fresh
}

// Unpin decrements the pin count of every page covering [addr, addr+n).
// It returns the number of pages whose count dropped to zero.
func (s *AddrSpace) Unpin(addr, n units.Size) int {
	first, last := s.pageRange(addr, n)
	freed := 0
	for i := first; i <= last; i++ {
		if s.pinned[i] <= 0 {
			panic(fmt.Sprintf("mem: unpin of unpinned page %d in %q", i, s.name))
		}
		s.pinned[i]--
		if s.pinned[i] == 0 {
			freed++
		}
	}
	return freed
}

// Pinned reports whether every page covering [addr, addr+n) is pinned.
func (s *AddrSpace) Pinned(addr, n units.Size) bool {
	first, last := s.pageRange(addr, n)
	for i := first; i <= last; i++ {
		if s.pinned[i] == 0 {
			return false
		}
	}
	return true
}

// PinnedPages returns the total number of currently pinned pages.
func (s *AddrSpace) PinnedPages() int {
	n := 0
	for _, c := range s.pinned {
		if c > 0 {
			n++
		}
	}
	return n
}

// MapKernel marks pages covering [addr, addr+n) as mapped into kernel
// space and returns the number of pages newly mapped.
func (s *AddrSpace) MapKernel(addr, n units.Size) int {
	first, last := s.pageRange(addr, n)
	fresh := 0
	for i := first; i <= last; i++ {
		if !s.mapped[i] {
			fresh++
			s.mapped[i] = true
		}
	}
	return fresh
}

// UnmapKernel clears the kernel mapping flags for [addr, addr+n).
func (s *AddrSpace) UnmapKernel(addr, n units.Size) {
	first, last := s.pageRange(addr, n)
	for i := first; i <= last; i++ {
		s.mapped[i] = false
	}
}

// MappedKernel reports whether all pages of [addr, addr+n) are mapped into
// kernel space.
func (s *AddrSpace) MappedKernel(addr, n units.Size) bool {
	first, last := s.pageRange(addr, n)
	for i := first; i <= last; i++ {
		if !s.mapped[i] {
			return false
		}
	}
	return true
}

// Buf is a contiguous region of one address space.
type Buf struct {
	Space *AddrSpace
	Addr  units.Size
	Len   units.Size
}

// Bytes returns the live backing bytes of the buffer.
func (b Buf) Bytes() []byte { return b.Space.Bytes(b.Addr, b.Len) }

// Slice returns the sub-buffer [off, off+n).
func (b Buf) Slice(off, n units.Size) Buf {
	if off < 0 || n < 0 || off+n > b.Len {
		panic(fmt.Sprintf("mem: slice [%v,+%v) outside buf of %v", off, n, b.Len))
	}
	return Buf{Space: b.Space, Addr: b.Addr + off, Len: n}
}

// AlignedTo reports whether the buffer's start address is a multiple of a.
func (b Buf) AlignedTo(a units.Size) bool { return a > 0 && b.Addr%a == 0 }

// Pages returns the number of pages the buffer spans.
func (b Buf) Pages() int { return b.Space.PageSpan(b.Addr, b.Len) }
