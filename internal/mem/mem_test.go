package mem

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/units"
)

func space(t *testing.T) *AddrSpace {
	t.Helper()
	return NewAddrSpace("test", 1*units.MB, 8*units.KB)
}

func TestAllocAlignment(t *testing.T) {
	s := space(t)
	b := s.Alloc(100, 64)
	if b.Addr%64 != 0 {
		t.Fatalf("addr %v not 64-aligned", b.Addr)
	}
	c := s.Alloc(100, 0) // page aligned
	if c.Addr%s.PageSize() != 0 {
		t.Fatalf("addr %v not page-aligned", c.Addr)
	}
	if c.Addr < b.Addr+b.Len {
		t.Fatal("allocations overlap")
	}
}

func TestAllocMisaligned(t *testing.T) {
	s := space(t)
	b := s.AllocMisaligned(100, 2)
	if b.Addr%4 != 2 {
		t.Fatalf("addr %v, want 2 past a word boundary", b.Addr)
	}
	if b.AlignedTo(4) {
		t.Fatal("misaligned buf reports word-aligned")
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	s := NewAddrSpace("tiny", 16*units.KB, 8*units.KB)
	s.Alloc(10*units.KB, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected exhaustion panic")
		}
	}()
	s.Alloc(10*units.KB, 1)
}

func TestBytesReadWrite(t *testing.T) {
	s := space(t)
	b := s.Alloc(256, 1)
	copy(b.Bytes(), []byte("hello"))
	if !bytes.Equal(s.Bytes(b.Addr, 5), []byte("hello")) {
		t.Fatal("backing bytes not shared")
	}
}

func TestPinUnpinCounts(t *testing.T) {
	s := space(t)
	b := s.Alloc(20*units.KB, 0) // spans 3 pages
	if got := s.Pin(b.Addr, b.Len); got != 3 {
		t.Fatalf("fresh pins = %d, want 3", got)
	}
	if got := s.Pin(b.Addr, b.Len); got != 0 {
		t.Fatalf("re-pin fresh = %d, want 0", got)
	}
	if !s.Pinned(b.Addr, b.Len) {
		t.Fatal("pages should be pinned")
	}
	if got := s.Unpin(b.Addr, b.Len); got != 0 {
		t.Fatalf("first unpin freed %d, want 0 (refcount 2)", got)
	}
	if got := s.Unpin(b.Addr, b.Len); got != 3 {
		t.Fatalf("second unpin freed %d, want 3", got)
	}
	if s.PinnedPages() != 0 {
		t.Fatalf("pinned pages = %d, want 0", s.PinnedPages())
	}
}

func TestUnpinUnpinnedPanics(t *testing.T) {
	s := space(t)
	b := s.Alloc(100, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Unpin(b.Addr, b.Len)
}

func TestMapKernel(t *testing.T) {
	s := space(t)
	b := s.Alloc(20*units.KB, 0)
	if got := s.MapKernel(b.Addr, b.Len); got != 3 {
		t.Fatalf("fresh maps = %d, want 3", got)
	}
	if !s.MappedKernel(b.Addr, b.Len) {
		t.Fatal("should be mapped")
	}
	if got := s.MapKernel(b.Addr, b.Len); got != 0 {
		t.Fatalf("re-map fresh = %d, want 0", got)
	}
	s.UnmapKernel(b.Addr, b.Len)
	if s.MappedKernel(b.Addr, b.Len) {
		t.Fatal("should be unmapped")
	}
}

func TestBufSlice(t *testing.T) {
	s := space(t)
	b := s.Alloc(100, 1)
	for i := range b.Bytes() {
		b.Bytes()[i] = byte(i)
	}
	sub := b.Slice(10, 20)
	if sub.Len != 20 || sub.Bytes()[0] != 10 {
		t.Fatalf("slice wrong: len=%v first=%d", sub.Len, sub.Bytes()[0])
	}
}

func TestPageSpan(t *testing.T) {
	s := space(t)
	if got := s.PageSpan(0, 8*units.KB); got != 1 {
		t.Fatalf("span = %d, want 1", got)
	}
	if got := s.PageSpan(8*units.KB-1, 2); got != 2 {
		t.Fatalf("span = %d, want 2", got)
	}
	if got := s.PageSpan(0, 0); got != 0 {
		t.Fatalf("span = %d, want 0", got)
	}
}

func TestUIOSegments(t *testing.T) {
	s := space(t)
	a := s.Alloc(100, 4)
	b := s.Alloc(50, 4)
	u := NewUIO(a, b)
	if u.Total() != 150 {
		t.Fatalf("total = %v, want 150", u.Total())
	}
	// A range spanning the buffer boundary yields two segments.
	segs := u.Segments(90, 30)
	if len(segs) != 2 || segs[0].Len != 10 || segs[1].Len != 20 {
		t.Fatalf("segments = %+v", segs)
	}
	if segs[0].Addr != a.Addr+90 || segs[1].Addr != b.Addr {
		t.Fatalf("segment addrs wrong: %+v", segs)
	}
}

func TestUIOReadWriteRoundTrip(t *testing.T) {
	s := space(t)
	r := rand.New(rand.NewSource(3))
	a := s.Alloc(333, 4)
	b := s.Alloc(77, 4)
	u := NewUIO(a, b)
	data := make([]byte, u.Total())
	r.Read(data)
	u.WriteAt(data, 0)
	got := make([]byte, u.Total())
	u.ReadAt(got, 0, u.Total())
	if !bytes.Equal(got, data) {
		t.Fatal("UIO round trip mismatch")
	}
	// Partial read across the seam.
	part := make([]byte, 100)
	u.ReadAt(part, 300, 100)
	if !bytes.Equal(part, data[300:400]) {
		t.Fatal("partial read mismatch")
	}
}

func TestUIOAdvanceResid(t *testing.T) {
	s := space(t)
	u := NewUIO(s.Alloc(1000, 4))
	u.Advance(300)
	if u.Resid() != 700 || u.Offset() != 300 {
		t.Fatalf("resid=%v offset=%v", u.Resid(), u.Offset())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-advance should panic")
		}
	}()
	u.Advance(701)
}

func TestUIOAlignedTo(t *testing.T) {
	s := space(t)
	aligned := NewUIO(s.Alloc(1000, 4))
	if !aligned.AlignedTo(0, 1000, 4) {
		t.Fatal("aligned UIO misreported")
	}
	mis := NewUIO(s.AllocMisaligned(1000, 2))
	if mis.AlignedTo(0, 1000, 4) {
		t.Fatal("misaligned UIO misreported")
	}
	// An interior range starting at an odd segment offset can still be
	// aligned if the segment base plus offset is aligned.
	if !mis.AlignedTo(2, 100, 4) {
		t.Fatal("offset 2 into a 2-misaligned buffer is word aligned")
	}
}

func TestUIOPageSpan(t *testing.T) {
	s := space(t)
	u := NewUIO(s.Alloc(64*units.KB, 0))
	if got := u.PageSpan(0, 64*units.KB); got != 8 {
		t.Fatalf("page span = %d, want 8", got)
	}
	if got := u.PageSpan(8*units.KB-4, 8); got != 2 {
		t.Fatalf("page span = %d, want 2", got)
	}
}
