// Package wire defines the simulated wire formats: a HIPPI-FP-style link
// header, an IPv4-style network header with a header checksum, and
// TCP/UDP-style transport headers whose data checksums can be produced
// either in software or by the CAB's outboard checksum engines.
//
// The geometry is chosen so that the CAB's fixed receive checksum offset of
// 20 words (80 bytes, Section 4.3) exactly covers the link and IP headers:
// the hardware sums the transport header and payload, and the host adjusts
// with the pseudo-header.
package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/checksum"
	"repro/internal/units"
)

// Header geometry.
const (
	// LinkHdrLen is the HIPPI-FP style link header length.
	LinkHdrLen = 60 * units.Byte
	// IPHdrLen is the network header length.
	IPHdrLen = 20 * units.Byte
	// TCPHdrLen is the TCP header length (no options on the wire; window
	// scaling uses a fixed, pre-agreed shift as RFC 1323 would negotiate).
	TCPHdrLen = 20 * units.Byte
	// UDPHdrLen is the UDP header length.
	UDPHdrLen = 8 * units.Byte

	// TCPCsumOff / UDPCsumOff are the checksum field offsets within the
	// transport header, used to program the CAB's transmit engine.
	TCPCsumOff = 16 * units.Byte
	UDPCsumOff = 6 * units.Byte
)

// IP protocol numbers.
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

// TCP header flags.
const (
	FlagFIN uint16 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	// FlagECE echoes congestion experienced back to the sender (RFC 3168
	// as DCTCP uses it: the receiver echoes the CE state of the segment it
	// is acknowledging).
	FlagECE
)

// ECN codepoints (the low two bits of the IP TOS byte).
const (
	// ECNECT0 marks a packet ECN-capable transport.
	ECNECT0 uint8 = 0b10
	// ECNCE marks congestion experienced, set by a fabric hop whose queue
	// crossed its marking threshold.
	ECNCE uint8 = 0b11

	// ECNOff is the byte offset of the TOS/ECN field within the IP header,
	// for in-flight CE marking (which must also rewrite the header
	// checksum — see IPHdr.Marshal).
	ECNOff = 1 * units.Byte
)

// WindowShift is the fixed RFC 1323 window-scale factor both ends use
// (the paper's stack "also supports TCP window scaling"); it lets a 16-bit
// window field advertise the 512 KByte windows the experiments need.
const WindowShift = 4

// Addr is a 32-bit network-layer address.
type Addr uint32

func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// LinkHdr is the media framing header. Src and Dst are switch port
// addresses (hippi.NodeID values for the CAB, arbitrary station ids for
// other media).
type LinkHdr struct {
	Dst, Src uint32
	Type     uint16 // 0x0800 for IP
	Len      uint32 // total frame length
}

// EtherTypeIP marks an IP payload.
const EtherTypeIP uint16 = 0x0800

// Marshal writes the link header into b[:LinkHdrLen].
func (h LinkHdr) Marshal(b []byte) {
	if len(b) < int(LinkHdrLen) {
		panic("wire: short link header buffer")
	}
	binary.BigEndian.PutUint32(b[0:], h.Dst)
	binary.BigEndian.PutUint32(b[4:], h.Src)
	binary.BigEndian.PutUint16(b[8:], h.Type)
	binary.BigEndian.PutUint32(b[10:], h.Len)
	for i := 14; i < int(LinkHdrLen); i++ {
		b[i] = 0
	}
}

// ParseLinkHdr reads a link header from b.
func ParseLinkHdr(b []byte) (LinkHdr, error) {
	if len(b) < int(LinkHdrLen) {
		return LinkHdr{}, fmt.Errorf("wire: link header truncated: %d bytes", len(b))
	}
	return LinkHdr{
		Dst:  binary.BigEndian.Uint32(b[0:]),
		Src:  binary.BigEndian.Uint32(b[4:]),
		Type: binary.BigEndian.Uint16(b[8:]),
		Len:  binary.BigEndian.Uint32(b[10:]),
	}, nil
}

// IPHdr is the network header.
type IPHdr struct {
	TotLen units.Size // header + payload
	ID     uint16
	// MF is the more-fragments flag; FragOff is the fragment's payload
	// offset in bytes (a multiple of 8, as the wire encoding requires).
	MF      bool
	FragOff units.Size
	TTL     uint8
	Proto   uint8
	// ECN is the two-bit ECN codepoint (low bits of the TOS byte): 0 for
	// non-ECN traffic, ECNECT0 on ECN-capable senders, ECNCE after a
	// fabric hop marked congestion.
	ECN      uint8
	Src, Dst Addr
}

// IsFragment reports whether the header describes anything other than a
// whole datagram.
func (h IPHdr) IsFragment() bool { return h.MF || h.FragOff != 0 }

// Marshal writes the header with a valid header checksum into
// b[:IPHdrLen].
func (h IPHdr) Marshal(b []byte) {
	if len(b) < int(IPHdrLen) {
		panic("wire: short IP header buffer")
	}
	b[0] = 0x45 // version 4, 5 words
	b[1] = h.ECN & 0x3
	binary.BigEndian.PutUint16(b[2:], uint16(h.TotLen))
	binary.BigEndian.PutUint16(b[4:], h.ID)
	if h.FragOff%8 != 0 {
		panic("wire: fragment offset must be a multiple of 8")
	}
	frag := uint16(h.FragOff / 8)
	if h.MF {
		frag |= 0x2000
	}
	binary.BigEndian.PutUint16(b[6:], frag)
	b[8] = h.TTL
	b[9] = h.Proto
	binary.BigEndian.PutUint16(b[10:], 0) // checksum placeholder
	binary.BigEndian.PutUint32(b[12:], uint32(h.Src))
	binary.BigEndian.PutUint32(b[16:], uint32(h.Dst))
	c := checksum.Checksum(b[:IPHdrLen])
	binary.BigEndian.PutUint16(b[10:], c)
}

// ParseIPHdr reads and validates the header checksum.
func ParseIPHdr(b []byte) (IPHdr, error) {
	if len(b) < int(IPHdrLen) {
		return IPHdr{}, fmt.Errorf("wire: IP header truncated: %d bytes", len(b))
	}
	if b[0] != 0x45 {
		return IPHdr{}, fmt.Errorf("wire: bad IP version/ihl %#x", b[0])
	}
	if !checksum.Verify(b[:IPHdrLen]) {
		return IPHdr{}, fmt.Errorf("wire: IP header checksum failure")
	}
	frag := binary.BigEndian.Uint16(b[6:])
	return IPHdr{
		TotLen:  units.Size(binary.BigEndian.Uint16(b[2:])),
		ID:      binary.BigEndian.Uint16(b[4:]),
		MF:      frag&0x2000 != 0,
		FragOff: units.Size(frag&0x1fff) * 8,
		TTL:     b[8],
		Proto:   b[9],
		ECN:     b[1] & 0x3,
		Src:     Addr(binary.BigEndian.Uint32(b[12:])),
		Dst:     Addr(binary.BigEndian.Uint32(b[16:])),
	}, nil
}

// TCPHdr is the transport header for TCP.
type TCPHdr struct {
	SPort, DPort uint16
	Seq, Ack     uint32
	Flags        uint16
	Wnd          uint16 // scaled by WindowShift
	Csum         uint16
}

// Marshal writes the header into b[:TCPHdrLen]; the checksum field is
// written as given (a zero, a seed, or a finished software checksum).
func (h TCPHdr) Marshal(b []byte) {
	if len(b) < int(TCPHdrLen) {
		panic("wire: short TCP header buffer")
	}
	binary.BigEndian.PutUint16(b[0:], h.SPort)
	binary.BigEndian.PutUint16(b[2:], h.DPort)
	binary.BigEndian.PutUint32(b[4:], h.Seq)
	binary.BigEndian.PutUint32(b[8:], h.Ack)
	binary.BigEndian.PutUint16(b[12:], 5<<12|h.Flags) // data offset 5 words
	binary.BigEndian.PutUint16(b[14:], h.Wnd)
	binary.BigEndian.PutUint16(b[16:], h.Csum)
	binary.BigEndian.PutUint16(b[18:], 0) // urgent pointer
}

// ParseTCPHdr reads a TCP header; checksum verification is the caller's
// job (it needs the pseudo-header and the payload).
func ParseTCPHdr(b []byte) (TCPHdr, error) {
	if len(b) < int(TCPHdrLen) {
		return TCPHdr{}, fmt.Errorf("wire: TCP header truncated: %d bytes", len(b))
	}
	return TCPHdr{
		SPort: binary.BigEndian.Uint16(b[0:]),
		DPort: binary.BigEndian.Uint16(b[2:]),
		Seq:   binary.BigEndian.Uint32(b[4:]),
		Ack:   binary.BigEndian.Uint32(b[8:]),
		Flags: binary.BigEndian.Uint16(b[12:]) & 0x3f,
		Wnd:   binary.BigEndian.Uint16(b[14:]),
		Csum:  binary.BigEndian.Uint16(b[16:]),
	}, nil
}

// ScaleWindow converts a byte count to the scaled 16-bit window field.
func ScaleWindow(n units.Size) uint16 {
	w := n >> WindowShift
	if w > 0xffff {
		w = 0xffff
	}
	return uint16(w)
}

// UnscaleWindow converts a window field back to bytes.
func UnscaleWindow(w uint16) units.Size {
	return units.Size(w) << WindowShift
}

// UDPHdr is the transport header for UDP.
type UDPHdr struct {
	SPort, DPort uint16
	Len          units.Size // header + payload
	Csum         uint16
}

// Marshal writes the header into b[:UDPHdrLen].
func (h UDPHdr) Marshal(b []byte) {
	if len(b) < int(UDPHdrLen) {
		panic("wire: short UDP header buffer")
	}
	binary.BigEndian.PutUint16(b[0:], h.SPort)
	binary.BigEndian.PutUint16(b[2:], h.DPort)
	binary.BigEndian.PutUint16(b[4:], uint16(h.Len))
	binary.BigEndian.PutUint16(b[6:], h.Csum)
}

// ParseUDPHdr reads a UDP header.
func ParseUDPHdr(b []byte) (UDPHdr, error) {
	if len(b) < int(UDPHdrLen) {
		return UDPHdr{}, fmt.Errorf("wire: UDP header truncated: %d bytes", len(b))
	}
	return UDPHdr{
		SPort: binary.BigEndian.Uint16(b[0:]),
		DPort: binary.BigEndian.Uint16(b[2:]),
		Len:   units.Size(binary.BigEndian.Uint16(b[4:])),
		Csum:  binary.BigEndian.Uint16(b[6:]),
	}, nil
}
