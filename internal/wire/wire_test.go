package wire

import (
	"testing"
	"testing/quick"

	"repro/internal/checksum"
	"repro/internal/units"
)

func TestGeometryMatchesCAB(t *testing.T) {
	// The CAB's receive checksum engine starts at a fixed 20-word offset;
	// our link + IP headers must fill exactly those 80 bytes.
	if LinkHdrLen+IPHdrLen != 80 {
		t.Fatalf("link+IP = %v, want 80 (20 words)", LinkHdrLen+IPHdrLen)
	}
}

func TestLinkHdrRoundTrip(t *testing.T) {
	h := LinkHdr{Dst: 7, Src: 3, Type: EtherTypeIP, Len: 12345}
	b := make([]byte, LinkHdrLen)
	h.Marshal(b)
	got, err := ParseLinkHdr(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("got %+v, want %+v", got, h)
	}
}

func TestLinkHdrTruncated(t *testing.T) {
	if _, err := ParseLinkHdr(make([]byte, 10)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestIPHdrRoundTripAndChecksum(t *testing.T) {
	h := IPHdr{TotLen: 1500, ID: 42, TTL: 30, Proto: ProtoTCP,
		Src: 0x0a000001, Dst: 0x0a000002}
	b := make([]byte, IPHdrLen)
	h.Marshal(b)
	if !checksum.Verify(b) {
		t.Fatal("marshaled IP header fails checksum")
	}
	got, err := ParseIPHdr(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("got %+v, want %+v", got, h)
	}
	// Corruption must be detected.
	b[12] ^= 1
	if _, err := ParseIPHdr(b); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestTCPHdrRoundTrip(t *testing.T) {
	h := TCPHdr{SPort: 5001, DPort: 5002, Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags: FlagACK | FlagPSH, Wnd: 32768, Csum: 0xabcd}
	b := make([]byte, TCPHdrLen)
	h.Marshal(b)
	got, err := ParseTCPHdr(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("got %+v, want %+v", got, h)
	}
}

func TestTCPCsumFieldOffset(t *testing.T) {
	h := TCPHdr{Csum: 0x1234}
	b := make([]byte, TCPHdrLen)
	h.Marshal(b)
	got := uint16(b[TCPCsumOff])<<8 | uint16(b[TCPCsumOff+1])
	if got != 0x1234 {
		t.Fatalf("checksum not at offset %d", TCPCsumOff)
	}
}

func TestUDPHdrRoundTrip(t *testing.T) {
	h := UDPHdr{SPort: 9, DPort: 10, Len: 520, Csum: 0x5678}
	b := make([]byte, UDPHdrLen)
	h.Marshal(b)
	got, err := ParseUDPHdr(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("got %+v, want %+v", got, h)
	}
	gotC := uint16(b[UDPCsumOff])<<8 | uint16(b[UDPCsumOff+1])
	if gotC != 0x5678 {
		t.Fatalf("checksum not at offset %d", UDPCsumOff)
	}
}

func TestWindowScaling(t *testing.T) {
	// The 512 KB experiment window must survive the scaled field.
	w := ScaleWindow(512 * units.KB)
	if got := UnscaleWindow(w); got != 512*units.KB {
		t.Fatalf("512KB window round-trips to %v", got)
	}
	// Saturation rather than wraparound for absurd windows.
	if UnscaleWindow(ScaleWindow(64*units.MB)) != units.Size(0xffff)<<WindowShift {
		t.Fatal("window should saturate")
	}
}

func TestAddrString(t *testing.T) {
	if Addr(0x0a000102).String() != "10.0.1.2" {
		t.Fatalf("got %s", Addr(0x0a000102).String())
	}
}

func TestHeaderRoundTripProperties(t *testing.T) {
	tcp := func(sport, dport uint16, seq, ack uint32, flags, wnd, csum uint16) bool {
		h := TCPHdr{SPort: sport, DPort: dport, Seq: seq, Ack: ack,
			Flags: flags & 0x3f, Wnd: wnd, Csum: csum}
		b := make([]byte, TCPHdrLen)
		h.Marshal(b)
		got, err := ParseTCPHdr(b)
		return err == nil && got == h
	}
	if err := quick.Check(tcp, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	ip := func(totlen uint16, id uint16, ttl, proto uint8, src, dst uint32) bool {
		h := IPHdr{TotLen: units.Size(totlen), ID: id, TTL: ttl, Proto: proto,
			Src: Addr(src), Dst: Addr(dst)}
		b := make([]byte, IPHdrLen)
		h.Marshal(b)
		got, err := ParseIPHdr(b)
		return err == nil && got == h && checksum.Verify(b)
	}
	if err := quick.Check(ip, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	udp := func(sport, dport, ln, csum uint16) bool {
		h := UDPHdr{SPort: sport, DPort: dport, Len: units.Size(ln), Csum: csum}
		b := make([]byte, UDPHdrLen)
		h.Marshal(b)
		got, err := ParseUDPHdr(b)
		return err == nil && got == h
	}
	if err := quick.Check(udp, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestIPFragmentFields(t *testing.T) {
	h := IPHdr{TotLen: 1500, ID: 7, MF: true, FragOff: 4096, TTL: 9,
		Proto: ProtoUDP, Src: 1, Dst: 2}
	b := make([]byte, IPHdrLen)
	h.Marshal(b)
	got, err := ParseIPHdr(b)
	if err != nil || got != h {
		t.Fatalf("round trip: %+v %v", got, err)
	}
	if !got.IsFragment() {
		t.Fatal("fragment not detected")
	}
	last := IPHdr{TotLen: 100, FragOff: 8192, TTL: 1, Proto: 1, Src: 1, Dst: 2}
	last.Marshal(b)
	got, _ = ParseIPHdr(b)
	if got.MF || got.FragOff != 8192 || !got.IsFragment() {
		t.Fatalf("final fragment: %+v", got)
	}
	whole := IPHdr{TotLen: 40, TTL: 1, Proto: 6, Src: 1, Dst: 2}
	whole.Marshal(b)
	got, _ = ParseIPHdr(b)
	if got.IsFragment() {
		t.Fatal("whole datagram misdetected as fragment")
	}
}

func TestIPFragOffMisalignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h := IPHdr{FragOff: 5}
	h.Marshal(make([]byte, IPHdrLen))
}
