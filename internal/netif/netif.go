// Package netif defines the interface between the protocol stack and
// network device drivers: the ifnet-style Interface abstraction, link
// addresses, capability flags (does the device accept descriptor mbufs and
// checksum outboard?), and the routing table the network layer uses for
// interface selection.
package netif

import (
	"fmt"

	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

// LinkAddr is a link-level station address (a HIPPI switch port for the
// CAB, an arbitrary station id for other media).
type LinkAddr uint32

// Caps describes what a device can do for the stack.
type Caps struct {
	// SingleCopy means the device accepts M_UIO and M_WCAB descriptor
	// mbufs and provides outboard buffering and checksumming — the CAB.
	// Devices without it require fully materialized kernel-buffer chains
	// and software checksums.
	SingleCopy bool
}

// Interface is one attached network device.
type Interface interface {
	// Name identifies the device ("cab0", "en0", "lo0").
	Name() string
	// MTU is the largest network-layer packet (IP header + payload) the
	// device carries.
	MTU() units.Size
	// Caps returns the device's capabilities.
	Caps() Caps
	// Output transmits the network-layer packet m (a chain whose first
	// mbuf begins with the IP header) to link destination dst. The driver
	// prepends its own link header. Output may be called in process or
	// interrupt context.
	Output(ctx kern.Ctx, m *mbuf.Mbuf, dst LinkAddr)
}

// InputFunc is the stack's receive entry point, called by drivers in
// interrupt context with the link header already stripped.
type InputFunc func(ctx kern.Ctx, m *mbuf.Mbuf, from Interface)

// Admitter is implemented by devices whose staging memory is arbitrated
// per flow (the CAB's netmem arbiter). Transports call AdmitTx in process
// context before committing n bytes of flow's data to the send path;
// the call blocks p until the flow's allocation fits the device's
// arbitration policy. Devices without arbitration simply do not implement
// the interface.
type Admitter interface {
	AdmitTx(p *sim.Proc, flow int, n units.Size)
}

// Route maps a destination address to an interface and a link-level next
// hop.
type Route struct {
	Dst  wire.Addr
	If   Interface
	Link LinkAddr
}

// Table is a routing table: host routes plus an optional default.
type Table struct {
	routes map[wire.Addr]Route
	def    *Route
}

// NewTable returns an empty routing table.
func NewTable() *Table { return &Table{routes: make(map[wire.Addr]Route)} }

// AddHost installs a host route.
func (t *Table) AddHost(dst wire.Addr, ifc Interface, link LinkAddr) {
	t.routes[dst] = Route{Dst: dst, If: ifc, Link: link}
}

// SetDefault installs the default route.
func (t *Table) SetDefault(ifc Interface, link LinkAddr) {
	t.def = &Route{If: ifc, Link: link}
}

// Lookup selects the route for dst — the interface selection the paper
// notes happens in the network layer, which is why a socket-level "stack
// switch" would be unreliable (Section 4.1).
func (t *Table) Lookup(dst wire.Addr) (Route, error) {
	if r, ok := t.routes[dst]; ok {
		return r, nil
	}
	if t.def != nil {
		r := *t.def
		r.Dst = dst
		return r, nil
	}
	return Route{}, fmt.Errorf("netif: no route to %v", dst)
}

// Remove deletes a host route (used to exercise route changes).
func (t *Table) Remove(dst wire.Addr) { delete(t.routes, dst) }
