package netif

import (
	"bytes"
	"testing"

	"repro/internal/cost"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

type fakeIf struct{ name string }

func (f *fakeIf) Name() string                          { return f.name }
func (f *fakeIf) MTU() units.Size                       { return 1500 }
func (f *fakeIf) Caps() Caps                            { return Caps{} }
func (f *fakeIf) Output(kern.Ctx, *mbuf.Mbuf, LinkAddr) {}

func TestRoutingTableHostAndDefault(t *testing.T) {
	tbl := NewTable()
	cab, eth := &fakeIf{"cab0"}, &fakeIf{"en0"}
	tbl.AddHost(wire.Addr(10), cab, 1)
	tbl.SetDefault(eth, 99)

	r, err := tbl.Lookup(wire.Addr(10))
	if err != nil || r.If != cab || r.Link != 1 {
		t.Fatalf("host route lookup: %+v %v", r, err)
	}
	r, err = tbl.Lookup(wire.Addr(20))
	if err != nil || r.If != eth || r.Link != 99 || r.Dst != wire.Addr(20) {
		t.Fatalf("default route lookup: %+v %v", r, err)
	}
	tbl.Remove(wire.Addr(10))
	r, err = tbl.Lookup(wire.Addr(10))
	if err != nil || r.If != eth {
		t.Fatal("removed host route should fall to default")
	}
}

func TestLookupNoRoute(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.Lookup(wire.Addr(1)); err == nil {
		t.Fatal("expected no-route error")
	}
}

// trackNotifier counts DMADone notifications.
type trackNotifier struct{ done units.Size }

func (n *trackNotifier) DMAStarted(units.Size) {}
func (n *trackNotifier) DMADone(s units.Size)  { n.done += s }

func TestConvertForLegacyMaterializes(t *testing.T) {
	eng := sim.NewEngine(1)
	k := kern.New("h", eng, cost.Alpha400())
	space := mem.NewAddrSpace("u", 1*units.MB, k.Mach.PageSize)
	buf := space.Alloc(20000, 4)
	for i := range buf.Bytes() {
		buf.Bytes()[i] = byte(i * 3)
	}
	u := mem.NewUIO(buf)

	eng.Go("t", func(p *sim.Proc) {
		ctx := k.TaskCtx(p, k.KernelTask)
		nt := &trackNotifier{}
		hdr := mbuf.NewData(make([]byte, 40))
		hdr.SetNext(mbuf.NewUIO(u, 0, 20000, &mbuf.Hdr{Owner: nt}))
		hdr.MarkPktHdr(20040)
		want := mbuf.Materialize(hdr)

		out := ConvertForLegacy(ctx, hdr)
		if mbuf.HasDescriptors(out) {
			t.Error("descriptors survived conversion")
		}
		if !out.IsPktHdr() || out.PktLen() != 20040 {
			t.Errorf("packet header lost: %v/%v", out.IsPktHdr(), out.PktLen())
		}
		if !bytes.Equal(mbuf.Materialize(out), want) {
			t.Error("conversion corrupted data")
		}
		// Without an OnConverted callback the shim notifies owners
		// directly.
		if nt.done != 20000 {
			t.Errorf("owner notified of %v bytes, want 20000", nt.done)
		}
		// The copy must have been charged.
		if k.CategoryTime(kern.CatCopy) == 0 {
			t.Error("conversion copy not charged")
		}
	})
	eng.Run()
	eng.KillAll()
}

func TestConvertForLegacyPassThrough(t *testing.T) {
	eng := sim.NewEngine(1)
	k := kern.New("h", eng, cost.Alpha400())
	eng.Go("t", func(p *sim.Proc) {
		ctx := k.TaskCtx(p, k.KernelTask)
		m := mbuf.NewCluster(make([]byte, 100))
		if got := ConvertForLegacy(ctx, m); got != m {
			t.Error("plain chains must pass through untouched")
		}
		if k.CategoryTime(kern.CatCopy) != 0 {
			t.Error("pass-through should be free")
		}
	})
	eng.Run()
	eng.KillAll()
}

func TestConvertForLegacyCallsOnConverted(t *testing.T) {
	eng := sim.NewEngine(1)
	k := kern.New("h", eng, cost.Alpha400())
	space := mem.NewAddrSpace("u", 1*units.MB, k.Mach.PageSize)
	u := mem.NewUIO(space.Alloc(5000, 4))
	eng.Go("t", func(p *sim.Proc) {
		ctx := k.TaskCtx(p, k.KernelTask)
		var converted *mbuf.Mbuf
		nt := &trackNotifier{}
		hdr := mbuf.NewData(make([]byte, 40))
		hdr.SetNext(mbuf.NewUIO(u, 0, 5000, &mbuf.Hdr{Owner: nt}))
		hdr.MarkPktHdr(5040)
		hdr.SetHdr(&mbuf.Hdr{OnConverted: func(m *mbuf.Mbuf) { converted = m }})
		ConvertForLegacy(ctx, hdr)
		if converted == nil {
			t.Fatal("OnConverted not invoked")
		}
		if mbuf.ChainLen(converted) != 5040 {
			t.Fatalf("converted length %v", mbuf.ChainLen(converted))
		}
		// With OnConverted present the transport owns notification.
		if nt.done != 0 {
			t.Fatalf("owner notified (%v) despite OnConverted", nt.done)
		}
	})
	eng.Run()
	eng.KillAll()
}
