package netif

import (
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/obs/ledger"
	"repro/internal/units"
	"repro/internal/wire"
)

// ConvertForLegacy is the "thin layer of code at the entry point to the
// driver" (Section 5): it materializes a packet chain containing M_UIO or
// M_WCAB descriptor mbufs into regular kernel buffers with a
// memory-to-memory copy, so drivers for existing devices never see the new
// mbuf types. The copy is charged to the calling context; as the paper
// notes, this does not increase the copy count over a traditional stack —
// the copy has merely been delayed.
//
// Copy-semantics bookkeeping: if the packet carries an OnConverted
// callback the transport takes responsibility for the displaced
// descriptors (replacing its socket-buffer range and notifying owners);
// otherwise the owners of converted M_UIO mbufs are notified here, since
// after this call their user memory is no longer referenced.
func ConvertForLegacy(ctx kern.Ctx, m *mbuf.Mbuf) *mbuf.Mbuf {
	if !mbuf.HasDescriptors(m) {
		return m
	}
	total := mbuf.ChainLen(m)
	buf := make([]byte, total)
	mbuf.ReadRange(m, 0, total, buf)
	ctx.Charge(ctx.K.Mach.CopyTime(total, total), kern.CatCopy)
	// The chain is a network-layer packet: its byte 0 sits at the link
	// header's end in wire coordinates.
	ctx.K.Led.TouchP(m.Prov(), wire.LinkHdrLen, total, ledger.CPUCopy, "shim", 0)

	// Rebuild as cluster mbufs.
	var head, tail *mbuf.Mbuf
	for off := units.Size(0); off < total; off += mbuf.MCLBYTES {
		n := total - off
		if n > mbuf.MCLBYTES {
			n = mbuf.MCLBYTES
		}
		c := mbuf.NewCluster(buf[off : off+n])
		if head == nil {
			head = c
		} else {
			tail.SetNext(c)
		}
		tail = c
	}
	if m.IsPktHdr() {
		head.MarkPktHdr(m.PktLen())
	}
	head.AttachProv(m.Prov())

	if h := m.Hdr(); h != nil && h.OnConverted != nil {
		h.OnConverted(head)
	} else {
		for cur := m; cur != nil; cur = cur.Next() {
			if cur.Type() == mbuf.TUIO {
				if ch := cur.Hdr(); ch != nil && ch.Owner != nil {
					ch.Owner.DMADone(cur.Len())
				}
			}
		}
	}
	mbuf.FreeChain(m)
	return head
}
