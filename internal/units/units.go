// Package units defines the base quantities used throughout the simulator:
// virtual time, data sizes, and data rates.
//
// Virtual time is an int64 nanosecond count so that event ordering is exact
// and the simulation is deterministic; rates are expressed in bits per
// second to match the Mbit/second units the paper reports.
package units

import "fmt"

// Time is a point in (or span of) virtual simulation time, in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Size is a data size in bytes.
type Size int64

// Common sizes.
const (
	Byte Size = 1
	KB   Size = 1024 * Byte
	MB   Size = 1024 * KB
)

func (s Size) String() string {
	switch {
	case s >= MB && s%MB == 0:
		return fmt.Sprintf("%dMB", int64(s/MB))
	case s >= KB && s%KB == 0:
		return fmt.Sprintf("%dKB", int64(s/KB))
	default:
		return fmt.Sprintf("%dB", int64(s))
	}
}

// Rate is a data rate in bits per second.
type Rate float64

// Common rates.
const (
	BitPerSec  Rate = 1
	Kbps       Rate = 1e3
	Mbps       Rate = 1e6
	Gbps       Rate = 1e9
	BytePerSec Rate = 8
	// MBytePerSec is 10^6 bytes/second, the convention used for media
	// rates such as HIPPI's 100 MByte/second line rate.
	MBytePerSec Rate = 8e6
)

// Mbit returns the rate in Mbit/second, the unit used in the paper's plots.
func (r Rate) Mbit() float64 { return float64(r) / float64(Mbps) }

func (r Rate) String() string { return fmt.Sprintf("%.1fMb/s", r.Mbit()) }

// TimeFor returns the time needed to move n bytes at rate r.
// A zero or negative rate yields zero time (infinitely fast), which keeps
// "disabled" cost entries harmless.
func (r Rate) TimeFor(n Size) Time {
	if r <= 0 || n <= 0 {
		return 0
	}
	bits := float64(n) * 8
	return Time(bits / float64(r) * float64(Second))
}

// RateOf returns the rate achieved moving n bytes in d time.
func RateOf(n Size, d Time) Rate {
	if d <= 0 {
		return 0
	}
	return Rate(float64(n) * 8 / d.Seconds())
}
