package units

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{3 * Microsecond, "3.000us"},
		{1500 * Microsecond, "1.500ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestSizeString(t *testing.T) {
	cases := []struct {
		in   Size
		want string
	}{
		{100, "100B"},
		{4 * KB, "4KB"},
		{3 * MB, "3MB"},
		{KB + 1, "1025B"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestRateTimeFor(t *testing.T) {
	// 100 Mb/s moves 1 MB in ~83.9 ms.
	r := 100 * Mbps
	d := r.TimeFor(1 * MB)
	ms := float64(d) / float64(Millisecond)
	if ms < 83 || ms > 85 {
		t.Fatalf("1MB at 100Mb/s = %.2fms, want ≈83.9", ms)
	}
	if (0 * Mbps).TimeFor(1*MB) != 0 {
		t.Fatal("zero rate should cost zero time")
	}
	if r.TimeFor(0) != 0 {
		t.Fatal("zero bytes should cost zero time")
	}
}

func TestRateOfInvertsTimeFor(t *testing.T) {
	f := func(kb uint16, mbit uint8) bool {
		n := Size(kb%1024+1) * KB
		r := Rate(mbit%200+1) * Mbps
		d := r.TimeFor(n)
		got := RateOf(n, d)
		// Within 1% (integer nanosecond rounding).
		ratio := float64(got) / float64(r)
		return ratio > 0.99 && ratio < 1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRateOfZeroDuration(t *testing.T) {
	if RateOf(1*KB, 0) != 0 {
		t.Fatal("zero elapsed should yield zero rate")
	}
}

func TestMBytePerSec(t *testing.T) {
	// HIPPI: 100 MByte/s = 800 Mb/s.
	if got := (100 * MBytePerSec).Mbit(); got != 800 {
		t.Fatalf("100 MByte/s = %.0f Mb/s, want 800", got)
	}
}

func TestSecondsAndMicros(t *testing.T) {
	if (1500 * Millisecond).Seconds() != 1.5 {
		t.Fatal("Seconds conversion wrong")
	}
	if (3 * Microsecond).Micros() != 3 {
		t.Fatal("Micros conversion wrong")
	}
}
