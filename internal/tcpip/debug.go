package tcpip

import (
	"fmt"

	"repro/internal/checksum"
	"repro/internal/mbuf"
	"repro/internal/wire"
)

// DebugCsum, when set, dumps detail on transport checksum failures.
var DebugCsum bool

func debugCsumFailure(m *mbuf.Mbuf, iph wire.IPHdr, proto uint8) {
	if !DebugCsum {
		return
	}
	segLen := mbuf.ChainLen(m)
	buf := make([]byte, segLen)
	mbuf.ReadRange(m, 0, segLen, buf)
	ps := pseudoSum(iph.Src, iph.Dst, proto, segLen)
	sw := checksum.Add(ps, checksum.Sum(buf))
	hw := uint32(0)
	if h := m.Hdr(); h != nil && h.HWRxValid {
		hw = checksum.Add(ps, h.HWRxSum)
	}
	thdr, _ := wire.ParseTCPHdr(buf)
	fmt.Printf("CSUMFAIL %v->%v seq=%d ack=%d wnd=%d csum=%x len=%v flags=%x swOK=%v hwOK=%v bytes=%x\n",
		iph.Src, iph.Dst, thdr.Seq, thdr.Ack, thdr.Wnd, thdr.Csum,
		segLen-wire.TCPHdrLen, thdr.Flags,
		checksum.VerifySum(sw), checksum.VerifySum(hw), buf[:20])
}

// DebugState dumps a connection's transmission state (diagnostics).
func (c *TCPConn) DebugState() string {
	return fmt.Sprintf("state=%v snd[una=%d nxt=%d max=%d len=%v wnd=%v] rcv[nxt=%d len=%v space=%v adv=%v] finSent=%v closePending=%v persist=%v rtx=%v ackPend=%d reass=%d bounds=%d",
		c.state, c.sndUna, c.sndNxt, c.sndMax, c.sndLen, c.sndWnd,
		c.rcvNxt, c.rcvLen, c.rcvSpace(), c.rcvAdvertised,
		c.finSent, c.closePending, c.persistOn, c.rtxArmed, c.ackPending, len(c.reass), len(c.boundaries))
}

// Conns returns the live connections (diagnostics).
func (s *Stack) Conns() []*TCPConn {
	var out []*TCPConn
	for _, c := range s.conns {
		out = append(out, c)
	}
	return out
}
