package tcpip

import (
	"testing"

	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

// wcabDatagram builds a queued datagram whose payload is one outboard
// (M_WCAB) mbuf; dead controls whether the fake adaptor has since reset.
func wcabDatagram(n units.Size, dead *bool) *UDPDatagram {
	w := &mbuf.WCAB{
		Valid:  n,
		ReadFn: func(off, ln units.Size) []byte { return make([]byte, ln) },
		Dead:   func() bool { return *dead },
	}
	return &UDPDatagram{Src: wire.Addr(2), SPort: 9, Chain: mbuf.NewWCAB(w, 0, n, nil), Len: n}
}

// TestDeviceResetSweepsDeadUDPDatagrams pins the data-integrity contract
// for UDP under adaptor reset: datagrams whose only payload copy was wiped
// outboard must be discarded as a counted loss — never delivered as zeros
// — while host-resident and still-live outboard datagrams stay queued.
func TestDeviceResetSweepsDeadUDPDatagrams(t *testing.T) {
	r := newRig(t, 61)
	u, err := r.sa.UDPBind(7000)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	deadA, deadB := false, false
	dgDead := wcabDatagram(512, &deadA)
	dgLive := wcabDatagram(256, &deadB)
	dgHost := &UDPDatagram{Src: wire.Addr(2), SPort: 9,
		Chain: mbuf.NewData(make([]byte, 128)), Len: 128}
	u.rcvQ = append(u.rcvQ, dgDead, dgLive, dgHost)
	u.rcvLen = 512 + 256 + 128

	r.eng.Go("reset", func(p *sim.Proc) {
		deadA = true // the adaptor behind dgDead's pages resets
		r.sa.DeviceReset(r.ka.TaskCtx(p, r.ka.KernelTask), nil)
	})
	r.eng.Run()

	if got := r.sa.Stats.UDPDevResetDrops; got != 1 {
		t.Fatalf("UDPDevResetDrops = %d, want 1", got)
	}
	if len(u.rcvQ) != 2 || u.rcvQ[0] != dgLive || u.rcvQ[1] != dgHost {
		t.Fatalf("rcvQ after sweep has %d entries, want live+host survivors", len(u.rcvQ))
	}
	if u.rcvLen != 256+128 {
		t.Fatalf("rcvLen = %v after sweep, want %v", u.rcvLen, 256+128)
	}
}
