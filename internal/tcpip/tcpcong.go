package tcpip

import (
	"repro/internal/kern"
	"repro/internal/obs/netobs"
	"repro/internal/units"
	"repro/internal/wire"
)

// Congestion control and round-trip timing, as the Net2-era stack had
// them: Jacobson/Karels RTT estimation with Karn's rule, slow start and
// congestion avoidance, and fast retransmit on three duplicate
// acknowledgements (4.3BSD-Reno vintage). The experiments of Section 7 run
// on an uncongested two-host HIPPI fabric, so these mechanisms are
// invisible there (the window ramps to 512 KB within a few round trips);
// they matter for the loss-injection scenarios and for protocol fidelity.

const (
	// minRTO bounds the retransmission timer from below.
	minRTO = 50 * units.Millisecond
	// dupAckThreshold triggers fast retransmission.
	dupAckThreshold = 3
	// initialCwndSegs is the initial congestion window in segments.
	initialCwndSegs = 4
)

// initCong sets the initial congestion state once the MSS is known.
func (c *TCPConn) initCong() {
	c.cc.init(c)
	c.noteNetObs()
}

// sendWindow is the effective transmit window: the peer's advertised
// window gated by the congestion window.
func (c *TCPConn) sendWindow() units.Size {
	w := c.sndWnd
	if c.cwnd > 0 && c.cwnd < w {
		w = c.cwnd
	}
	return w
}

// startRTTSample arms a round-trip measurement on a freshly sent segment
// (never on a retransmission — Karn's rule).
func (c *TCPConn) startRTTSample(endSeq uint32) {
	if c.rttPending {
		return
	}
	c.rttPending = true
	c.rttSeq = endSeq
	c.rttStart = c.stk.K.Eng.Now()
}

// cancelRTTSample discards an in-flight measurement (retransmission
// ambiguity).
func (c *TCPConn) cancelRTTSample() { c.rttPending = false }

// takeRTTSample folds a completed measurement into srtt/rttvar and
// recomputes the RTO (RFC 6298 coefficients, which match the BSD
// implementation).
func (c *TCPConn) takeRTTSample(ack uint32) {
	if !c.rttPending || seqLT(ack, c.rttSeq) {
		return
	}
	c.rttPending = false
	sample := c.stk.K.Eng.Now() - c.rttStart
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		diff := c.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	rto := c.srtt + 4*c.rttvar
	if rto < minRTO {
		rto = minRTO
	}
	if rto > maxRTO {
		rto = maxRTO
	}
	c.rto = rto
}

// openCwnd grows the congestion window on a new acknowledgement: slow
// start below ssthresh, congestion avoidance above.
func (c *TCPConn) openCwnd(acked units.Size) {
	if c.cwnd == 0 {
		return
	}
	if c.cwnd < c.ssthresh {
		grow := acked
		if grow > c.MaxSeg {
			grow = c.MaxSeg
		}
		c.cwnd += grow
	} else {
		c.cwnd += c.MaxSeg * c.MaxSeg / c.cwnd
	}
	if c.cwnd > c.SndLimit {
		c.cwnd = c.SndLimit
	}
}

// onDupAck handles a duplicate acknowledgement; at the threshold it fast
// retransmits the missing segment and halves the window.
func (c *TCPConn) onDupAck(ctx kern.Ctx) {
	c.stk.ctrDupAcks.Inc()
	c.dupAcks++
	if c.dupAcks != dupAckThreshold {
		return
	}
	c.stk.Stats.TCPFastRetransmits++
	c.nobs.Rtx(netobs.RtxFast)
	c.cc.onLoss(c)
	c.cancelRTTSample()
	// Resend just the missing segment.
	seglen := c.sndLen
	if seglen > c.MaxSeg {
		seglen = c.MaxSeg
	}
	seglen = c.capAtBoundary(c.sndUna, seglen)
	if seglen > 0 {
		c.sendSegment(ctx, c.sndUna, seglen, wire.FlagACK)
		c.armRtx()
	}
}

// onNewAck resets duplicate-ACK state and applies the policy's window
// growth; ece reports whether the acknowledgement echoed a CE mark.
func (c *TCPConn) onNewAck(acked units.Size, ece bool) {
	c.dupAcks = 0
	c.cc.onAck(c, acked, ece)
}

// onRtxTimeout applies the policy's multiplicative decrease for a timeout.
func (c *TCPConn) onRtxTimeout() {
	c.cc.onTimeout(c)
	c.cancelRTTSample()
}
