package tcpip

import (
	"strings"
	"testing"

	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/units"
)

// TestFragmentTracing covers the former tracing blind spot: fragmented
// output and pre-reassembly input must both emit fragment-marked
// TraceEvents, and only first fragments carry a parsed transport header.
func TestFragmentTracing(t *testing.T) {
	r := newRig(t, 61)
	var aOut, bIn []TraceEvent
	r.sa.Tracer = func(e TraceEvent) {
		if e.Dir == TraceOut {
			aOut = append(aOut, e)
		}
	}
	r.sb.Tracer = func(e TraceEvent) {
		if e.Dir == TraceIn {
			bIn = append(bIn, e)
		}
	}

	rx, _ := r.sb.UDPBind(9000)
	r.eng.Go("rx", func(p *sim.Proc) { rx.RecvFrom(p) })
	data := pattern(48*1024, 3) // far beyond the 8KB pipe MTU
	r.eng.Go("tx", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		tx, _ := r.sa.UDPBind(0)
		var chain *mbuf.Mbuf
		for off := 0; off < len(data); off += int(mbuf.MCLBYTES) {
			e := off + int(mbuf.MCLBYTES)
			if e > len(data) {
				e = len(data)
			}
			chain = mbuf.Cat(chain, mbuf.NewCluster(data[off:e]))
		}
		tx.SendTo(ctx, chain, units.Size(len(data)), r.sb.Addr, 9000)
	})
	r.eng.Run()
	defer r.eng.KillAll()

	check := func(name string, evs []TraceEvent) {
		t.Helper()
		frags, firsts, reassembled := 0, 0, 0
		for _, e := range evs {
			if !e.Frag {
				reassembled++
				continue
			}
			frags++
			if e.FragOff == 0 {
				firsts++
				if e.UDP == nil {
					t.Errorf("%s: first fragment lacks the UDP header", name)
				}
				if !e.MF {
					t.Errorf("%s: first fragment not marked MF", name)
				}
			} else if e.UDP != nil || e.TCP != nil {
				t.Errorf("%s: non-first fragment parsed a transport header", name)
			}
			if s := e.String(); !strings.Contains(s, "frag id") {
				t.Errorf("%s: fragment event renders without marker: %s", name, s)
			}
		}
		if frags < 6 {
			t.Errorf("%s: traced %d fragments, want ≥ 6", name, frags)
		}
		if firsts != 1 {
			t.Errorf("%s: traced %d first fragments, want 1", name, firsts)
		}
		if name == "B in" && reassembled != 1 {
			t.Errorf("%s: traced %d reassembled datagrams, want 1", name, reassembled)
		}
	}
	check("A out", aOut)
	check("B in", bIn)
	if r.sa.Stats.IPFragsOut < 6 {
		t.Fatalf("fragments out = %d, want ≥ 6", r.sa.Stats.IPFragsOut)
	}
}
