package tcpip

import (
	"repro/internal/checksum"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/netif"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

// UDPDatagram is one received datagram queued on a UDP socket.
type UDPDatagram struct {
	Src   wire.Addr
	SPort uint16
	Chain *mbuf.Mbuf // payload (headers stripped); may contain M_WCAB
	Len   units.Size
}

// UDPSock is a bound UDP endpoint.
type UDPSock struct {
	stk      *Stack
	port     uint16
	rcvQ     []*UDPDatagram
	rcvLen   units.Size
	RcvLimit units.Size
	rcvSig   *sim.Signal
	closed   bool
}

// UDPBind binds a UDP socket to port (0 selects an ephemeral port). It
// fails with ErrPortInUse for an occupied explicit port (the seed silently
// shadowed the earlier socket) and ErrPortExhausted when no ephemeral port
// is free.
func (s *Stack) UDPBind(port uint16) (*UDPSock, error) {
	if port == 0 {
		p, err := s.ephemeralPort()
		if err != nil {
			return nil, err
		}
		port = p
	} else if s.portInUse(port) {
		return nil, ErrPortInUse
	}
	u := &UDPSock{
		stk:      s,
		port:     port,
		RcvLimit: DefaultWindow,
		rcvSig:   sim.NewSignal(s.K.Eng),
	}
	s.udps[port] = u
	return u, nil
}

// TxAdmitter returns the per-flow netmem admitter for the device routing
// to dst (nil when the device has no arbitration).
func (u *UDPSock) TxAdmitter(dst wire.Addr) netif.Admitter {
	r, err := u.stk.Routes.Lookup(dst)
	if err != nil {
		return nil
	}
	if a, ok := r.If.(netif.Admitter); ok {
		return a
	}
	return nil
}

// Port returns the bound port.
func (u *UDPSock) Port() uint16 { return u.port }

// Close unbinds the socket.
func (u *UDPSock) Close() {
	u.closed = true
	delete(u.stk.udps, u.port)
	for _, d := range u.rcvQ {
		mbuf.FreeChain(d.Chain)
	}
	u.rcvQ = nil
	u.rcvSig.Broadcast()
}

// SendTo transmits an n-byte chain as one datagram to dst:dport. The chain
// may hold M_UIO descriptors on the single-copy path; the driver frees the
// outboard packet after the media send (UDP keeps no retransmit state), as
// directed by FreeAfterSend.
func (u *UDPSock) SendTo(ctx kern.Ctx, m *mbuf.Mbuf, n units.Size, dst wire.Addr, dport uint16) {
	ctx = ctx.In("udp_output").WithFlow(int(u.port))
	if wire.IPHdrLen+wire.UDPHdrLen+n > maxDatagram {
		// IPv4's 16-bit total length (and 13-bit fragment offset) cannot
		// represent it: EMSGSIZE in a real stack.
		u.stk.Stats.UDPOversize++
		mbuf.FreeChain(m)
		return
	}
	singleCopy, mtu := u.stk.RouteCaps(dst)
	segTotal := wire.UDPHdrLen + n
	hdr := wire.UDPHdr{SPort: u.port, DPort: dport, Len: segTotal}
	ps := pseudoSum(u.stk.Addr, dst, wire.ProtoUDP, segTotal)
	hb := make([]byte, wire.UDPHdrLen)
	var phdr *mbuf.Hdr

	// Datagrams that fragment cannot use the per-packet transmit checksum
	// engine (the field must cover the whole datagram): software checksum.
	if singleCopy && n > 0 && segTotal+wire.IPHdrLen <= mtu {
		hdr.Csum = 0
		hdr.Marshal(hb)
		seed := checksum.Fold(checksum.Add(ps, checksum.Sum(hb)))
		hdr.Csum = seed
		hdr.Marshal(hb)
		phdr = &mbuf.Hdr{
			NeedCsum:      true,
			CsumOff:       wire.UDPCsumOff,
			CsumSkip:      wire.UDPHdrLen,
			CsumSeed:      uint32(seed),
			FreeAfterSend: true,
		}
	} else {
		hdr.Csum = 0
		hdr.Marshal(hb)
		sum := checksum.Add(ps, checksum.Sum(hb))
		if n > 0 {
			buf := make([]byte, n)
			mbuf.ReadRange(m, 0, n, buf)
			sum = checksum.Combine(sum, ctx.ChecksumRead(buf, n), int(wire.UDPHdrLen))
		}
		hdr.Csum = checksum.UDPWire(checksum.Finish(sum))
		hdr.Marshal(hb)
	}

	if phdr == nil && n > 0 {
		// Carry the flow tag on the software path too (per-flow netmem
		// accounting in the driver).
		phdr = &mbuf.Hdr{}
	}
	hm := mbuf.NewData(hb)
	hm.SetNext(m)
	hm.MarkPktHdr(segTotal)
	if phdr != nil {
		phdr.Flow = int(u.port)
		hm.SetHdr(phdr)
	}
	ctx.Charge(u.stk.K.Mach.TCPPerPacket/2, kern.CatProto) // UDP is cheaper than TCP
	u.stk.Stats.UDPOut++
	u.stk.IPOutput(ctx, hm, wire.ProtoUDP, dst)
}

// RecvFrom blocks until a datagram arrives (nil once the socket closes).
func (u *UDPSock) RecvFrom(p *sim.Proc) *UDPDatagram {
	for len(u.rcvQ) == 0 && !u.closed {
		u.rcvSig.Wait(p)
	}
	if len(u.rcvQ) == 0 {
		return nil
	}
	d := u.rcvQ[0]
	u.rcvQ = u.rcvQ[1:]
	u.rcvLen -= d.Len
	return d
}

// Buffered returns the queued byte count.
func (u *UDPSock) Buffered() units.Size { return u.rcvLen }

// CountDevResetDrop records a datagram discarded because its outboard
// payload was wiped by an adaptor reset after dequeue (the socket layer
// detects this during copy-out, where the stack's DeviceReset sweep can no
// longer see the chain).
func (u *UDPSock) CountDevResetDrop() { u.stk.Stats.UDPDevResetDrops++ }

// udpInput demultiplexes a received UDP datagram.
func (s *Stack) udpInput(ctx kern.Ctx, m *mbuf.Mbuf, iph wire.IPHdr) {
	if m.Len() < wire.UDPHdrLen {
		s.Stats.IPHdrErrors++
		mbuf.FreeChain(m)
		return
	}
	hdr, err := wire.ParseUDPHdr(m.Bytes())
	if err != nil {
		s.Stats.IPHdrErrors++
		mbuf.FreeChain(m)
		return
	}
	ctx = ctx.In("udp_input").WithFlow(int(hdr.DPort))
	if hdr.Csum != 0 && !s.verifyTransportCsum(ctx, m, iph, wire.ProtoUDP) {
		s.Stats.UDPCsumErrors++
		mbuf.FreeChain(m)
		return
	}
	ctx.Charge(s.K.Mach.TCPPerPacket/2, kern.CatProto)
	s.Stats.UDPIn++
	u, ok := s.udps[hdr.DPort]
	if !ok {
		s.Stats.UDPDropNoPort++
		mbuf.FreeChain(m)
		return
	}
	n := mbuf.ChainLen(m) - wire.UDPHdrLen
	if u.rcvLen+n > u.RcvLimit {
		s.Stats.UDPRcvFull++ // socket buffer overflow: UDP drops
		mbuf.FreeChain(m)
		return
	}
	m.TrimFront(wire.UDPHdrLen)
	u.rcvQ = append(u.rcvQ, &UDPDatagram{Src: iph.Src, SPort: hdr.SPort, Chain: m, Len: n})
	u.rcvLen += n
	u.rcvSig.Signal()
}

// maxDatagram is IPv4's 16-bit total-length ceiling.
const maxDatagram = 65535 * units.Byte
