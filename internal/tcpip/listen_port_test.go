package tcpip

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// TestEphemeralPortRecycling proves closed connections return their local
// port to the allocator: with the ephemeral range narrowed to 4 ports, 12
// sequential connect/close cycles must all succeed, which is only
// possible if ports recycle.
func TestEphemeralPortRecycling(t *testing.T) {
	r := newRig(t, 21)
	r.sa.SetEphemeralRange(20000, 20003)
	lis := r.sb.Listen(80)
	const cycles = 12

	r.eng.Go("srv", func(p *sim.Proc) {
		for i := 0; i < cycles; i++ {
			c := lis.Accept(p)
			c.Close(r.kb.TaskCtx(p, r.kb.KernelTask))
			c.WaitClosed(p)
		}
	})
	seen := map[uint16]int{}
	r.eng.Go("cli", func(p *sim.Proc) {
		for i := 0; i < cycles; i++ {
			c, err := r.sa.Connect(r.ka.TaskCtx(p, r.ka.KernelTask), r.sb.Addr, 80)
			if err != nil {
				t.Errorf("connect %d: %v", i, err)
				return
			}
			seen[c.LocalPort()]++
			c.Close(r.ka.TaskCtx(p, r.ka.KernelTask))
			c.WaitClosed(p)
		}
	})
	r.eng.Run()
	defer r.eng.KillAll()

	if len(seen) > 4 {
		t.Fatalf("allocator left the narrowed range: ports %v", seen)
	}
	reused := false
	for _, n := range seen {
		if n > 1 {
			reused = true
		}
	}
	if !reused {
		t.Fatalf("no port reused across %d cycles in a 4-port range: %v", cycles, seen)
	}
}

// TestEphemeralPortExhaustion pins the allocator's failure mode: when
// every port in the range is held by a live connection, Connect fails
// with ErrPortExhausted instead of looping or silently colliding.
func TestEphemeralPortExhaustion(t *testing.T) {
	r := newRig(t, 22)
	r.sa.SetEphemeralRange(20000, 20001)
	lis := r.sb.Listen(80)

	r.eng.Go("srv", func(p *sim.Proc) {
		for {
			if lis.Accept(p) == nil {
				return
			}
		}
	})
	var exhaustErr error
	r.eng.Go("cli", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		for i := 0; i < 2; i++ {
			if _, err := r.sa.Connect(ctx, r.sb.Addr, 80); err != nil {
				t.Errorf("connect %d: %v", i, err)
				return
			}
		}
		_, exhaustErr = r.sa.Connect(ctx, r.sb.Addr, 80)
	})
	r.eng.Run()
	defer r.eng.KillAll()

	if exhaustErr != ErrPortExhausted {
		t.Fatalf("third connect: %v, want ErrPortExhausted", exhaustErr)
	}
}

// TestListenBacklogSynFlood floods a backlog-2 listener with 8
// simultaneous SYNs. The overflow SYNs must be dropped deterministically
// (counted in tcp.listen_overflow), the backlog bound must hold at every
// instant, and every client must still establish eventually via SYN
// retransmission as accepts drain the queue.
func TestListenBacklogSynFlood(t *testing.T) {
	r := newRig(t, 23)
	const backlog, clients = 2, 8
	lis := r.sb.ListenBacklog(80, backlog)

	maxBacklogged := 0
	r.eng.Go("srv", func(p *sim.Proc) {
		for i := 0; i < clients; i++ {
			c := lis.Accept(p)
			if b := lis.Backlogged(); b > maxBacklogged {
				maxBacklogged = b
			}
			// Hold accepted connections open; the flood pressure comes
			// from the un-accepted SYNs.
			_ = c
			// Pace accepts so the backlog stays saturated across several
			// retransmission rounds.
			p.Sleep(300 * units.Millisecond)
		}
	})
	established := 0
	for i := 0; i < clients; i++ {
		r.eng.Go("cli", func(p *sim.Proc) {
			c, err := r.sa.Connect(r.ka.TaskCtx(p, r.ka.KernelTask), r.sb.Addr, 80)
			if err != nil {
				t.Errorf("connect: %v", err)
				return
			}
			if c.State() == StateEstablished {
				established++
			}
		})
	}
	r.eng.Run()
	defer r.eng.KillAll()

	if established != clients {
		t.Fatalf("established %d of %d clients", established, clients)
	}
	if r.sb.Stats.TCPListenOverflow == 0 {
		t.Fatal("no SYN was dropped: the flood never overflowed the backlog")
	}
	if maxBacklogged > backlog {
		t.Fatalf("backlog bound violated: %d > %d", maxBacklogged, backlog)
	}
}
