package tcpip

import (
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/obs"
	"repro/internal/units"
	"repro/internal/wire"
)

// tcpInput demultiplexes and processes a received TCP segment. m's first
// mbuf starts with the TCP header; descriptor mbufs may follow (the CAB's
// WCAB receive path). Runs in interrupt context.
func (s *Stack) tcpInput(ctx kern.Ctx, m *mbuf.Mbuf, iph wire.IPHdr) {
	s.Stats.TCPSegsIn++
	if m.Len() < wire.TCPHdrLen {
		s.Stats.IPHdrErrors++
		mbuf.FreeChain(m)
		return
	}
	hdr, err := wire.ParseTCPHdr(m.Bytes())
	if err != nil {
		s.Stats.IPHdrErrors++
		mbuf.FreeChain(m)
		return
	}
	ctx = ctx.In("tcp_input").WithFlow(int(hdr.DPort))

	// Verify the data checksum before any state changes. On the
	// single-copy path this touches only the header: the CAB computed the
	// sum during the media transfer (Section 4.3).
	if !s.verifyTransportCsum(ctx, m, iph, wire.ProtoTCP) {
		debugCsumFailure(m, iph, wire.ProtoTCP)
		s.Stats.TCPCsumErrors++
		mbuf.FreeChain(m)
		return
	}
	ctx.Charge(s.K.Mach.TCPPerPacket/2, kern.CatProto)

	key := connKey{raddr: iph.Src, lport: hdr.DPort, rport: hdr.SPort}
	c, ok := s.conns[key]
	if !ok {
		// Passive open?
		if l, lok := s.listeners[hdr.DPort]; lok && hdr.Flags&wire.FlagSYN != 0 && hdr.Flags&wire.FlagACK == 0 {
			l.acceptSyn(ctx, key, hdr)
		} else {
			s.Stats.TCPDropNoConn++
			if hdr.Flags&wire.FlagRST == 0 {
				s.sendRst(ctx, key, hdr, mbuf.ChainLen(m)-wire.TCPHdrLen)
			}
		}
		mbuf.FreeChain(m)
		return
	}

	// Strip the TCP header; what remains is payload.
	m.TrimFront(wire.TCPHdrLen)
	seglen := mbuf.ChainLen(m)
	if seglen > 0 && iph.ECN != 0 {
		// DCTCP-style state echo: outgoing segments carry FlagECE exactly
		// while the most recent data segment arrived congestion-experienced,
		// so the echoed fraction of acknowledged bytes tracks the fabric's
		// actual marking rate (a consume-once latch would dilute it under
		// delayed ACKs).
		c.ceSeen = iph.ECN == wire.ECNCE
	}
	c.segInput(ctx, hdr, m, seglen)
}

// acceptSyn creates a connection in SYN_RCVD and answers SYN|ACK. The
// listener's backlog bounds half-open plus unaccepted connections: beyond
// it the SYN is dropped deterministically (no state, no reply) and the
// peer's SYN retransmission retries once the backlog drains.
func (l *TCPListener) acceptSyn(ctx kern.Ctx, key connKey, hdr wire.TCPHdr) {
	if l.pending+l.backlog.Len() >= l.limit {
		l.stk.Stats.TCPListenOverflow++
		return
	}
	l.pending++
	c := l.stk.newConn(key)
	c.listener = l
	c.setMaxSeg()
	c.irs = hdr.Seq
	c.rcvNxt = hdr.Seq + 1
	c.iss = l.stk.K.Eng.Rand().Uint32()
	c.sndUna, c.sndNxt = c.iss, c.iss
	c.sndWnd = wire.UnscaleWindow(hdr.Wnd)
	c.wl1, c.wl2 = hdr.Seq, hdr.Ack
	c.state = StateSynRcvd
	c.sendControl(ctx, c.sndNxt, wire.FlagSYN|wire.FlagACK)
	c.sndNxt++
	c.sndMax = c.sndNxt
	c.armRtx()
}

// segInput is the per-connection segment processor.
func (c *TCPConn) segInput(ctx kern.Ctx, hdr wire.TCPHdr, payload *mbuf.Mbuf, seglen units.Size) {
	// Any segment from the peer is proof of life: reset the keepalive
	// probe ladder.
	c.lastRcvd = c.stk.K.Eng.Now()
	c.kaProbes = 0
	if hdr.Flags&wire.FlagRST != 0 {
		// Only accept a RST that is plausibly in-window (blind-reset
		// hardening; trivial here, but the check documents itself).
		if c.state == StateSynSent || hdr.Seq == c.rcvNxt {
			c.stk.Stats.TCPRstsIn++
			c.teardown(ErrConnReset)
		}
		mbuf.FreeChain(payload)
		return
	}

	switch c.state {
	case StateSynSent:
		if hdr.Flags&(wire.FlagSYN|wire.FlagACK) == wire.FlagSYN|wire.FlagACK &&
			hdr.Ack == c.sndNxt {
			c.irs = hdr.Seq
			c.rcvNxt = hdr.Seq + 1
			c.sndUna = hdr.Ack
			c.sndWnd = wire.UnscaleWindow(hdr.Wnd)
			c.wl1, c.wl2 = hdr.Seq, hdr.Ack
			c.state = StateEstablished
			c.cancelRtx()
			c.ackNow = true
			c.Output(ctx)
			c.establishedSig.Broadcast()
		}
		mbuf.FreeChain(payload)
		return

	case StateSynRcvd:
		if hdr.Flags&wire.FlagACK != 0 && hdr.Ack == c.sndNxt {
			c.sndUna = hdr.Ack
			c.state = StateEstablished
			c.cancelRtx()
			if c.listener != nil {
				c.listener.pending--
				c.listener.backlog.Put(c)
				c.listener = nil
			}
			// Fall through: the ACK may carry data.
		} else {
			mbuf.FreeChain(payload)
			return
		}

	case StateClosed:
		mbuf.FreeChain(payload)
		return
	}

	if crit := c.stk.crit; crit != nil && hdr.Flags&wire.FlagACK != 0 &&
		seqGT(hdr.Ack, c.sndUna) && seqLEQ(hdr.Ack, c.sndMax) {
		if sp := payload.Span(); sp != nil {
			// A new-data acknowledgement arrived: the sender's ACK clock
			// ticks. Segments (and writer wakeups) it releases bind here.
			c.critAck = sp.CritEv(obs.CauseCPU, "ack_in")
			c.critTrig, c.critTrigC = c.critAck, obs.CauseAckClock
		}
	}

	if seglen == 0 && hdr.Flags&^wire.FlagECE == wire.FlagACK && hdr.Seq+1 == c.rcvNxt &&
		c.state >= StateEstablished {
		// A zero-length segment one sequence number below the window: a
		// keepalive probe (RFC 1122 4.2.3.6 style). Answer with a bare ACK
		// so the prober learns we are alive. Normal pure ACKs carry
		// hdr.Seq == rcvNxt, so they never take this branch.
		c.ackNow = true
	}

	if hdr.Flags&wire.FlagACK != 0 {
		if seglen == 0 && hdr.Flags&^wire.FlagECE == wire.FlagACK && hdr.Ack == c.sndUna &&
			c.state >= StateEstablished && seqGT(c.sndMax, c.sndUna) &&
			wire.UnscaleWindow(hdr.Wnd) == c.sndWnd {
			// A pure duplicate acknowledgement (any state with data
			// outstanding — the writer may already have half-closed). The
			// ECN-echo bit is masked out: a dupack is a dupack whether or
			// not it also echoes congestion.
			c.onDupAck(ctx)
		}
		c.processAck(ctx, hdr)
		if c.state == StateClosed {
			mbuf.FreeChain(payload)
			return
		}
	}

	fin := hdr.Flags&wire.FlagFIN != 0
	if seglen > 0 || fin {
		c.processData(ctx, hdr.Seq, payload, seglen, fin)
	} else {
		mbuf.FreeChain(payload)
	}

	if c.ackNow {
		if c.stk.crit != nil && c.critRcv != 0 {
			// Immediate ACK generation: triggered by the data (or FIN) this
			// segment delivered.
			c.critTrig, c.critTrigC = c.critRcv, obs.CauseCPU
		}
		c.Output(ctx)
	}
}

// processAck handles the acknowledgement and window fields.
func (c *TCPConn) processAck(ctx kern.Ctx, hdr wire.TCPHdr) {
	ack := hdr.Ack
	if seqGT(ack, c.sndUna) && seqLEQ(ack, c.sndMax) {
		c.progressAt = c.stk.K.Eng.Now() // forward progress: user-timeout clock restarts
		c.takeRTTSample(ack)
		advance := seqDiff(ack, c.sndUna)
		c.onNewAck(advance, hdr.Flags&wire.FlagECE != 0)
		// An acknowledgement past the buffered data covers the FIN's
		// sequence slot.
		finAcked := false
		if advance > c.sndLen {
			advance = c.sndLen
			finAcked = true
		}
		if advance > 0 {
			// Acknowledged data leaves the send buffer; M_WCAB mbufs
			// dropping to zero references free their outboard packets —
			// "freed when the data is acknowledged" (Section 4.2).
			c.sndBuf = mbuf.AdjFront(c.sndBuf, advance)
			c.sndLen -= advance
			c.sndSpaceSig.Broadcast()
		}
		c.sndUna = ack
		if seqGT(c.sndUna, c.sndNxt) {
			// A rewound sndNxt cannot lag the acknowledged point.
			c.sndNxt = c.sndUna
		}
		c.retries = 0
		c.rto = baseRTO
		if c.sndUna == c.sndMax {
			c.cancelRtx()
		} else {
			c.armRtx()
		}
		if finAcked {
			switch c.state {
			case StateFinWait1:
				c.state = StateFinWait2
			case StateLastAck:
				c.teardown(nil)
				return
			}
		}
		// The acknowledgement freed window space (advertised or
		// congestion): move more data, as tcp_input always finishes by
		// calling tcp_output.
		c.Output(ctx)
	}
	// Window update (RFC 793 wl1/wl2 discipline).
	if seqLT(c.wl1, hdr.Seq) || (c.wl1 == hdr.Seq && seqLEQ(c.wl2, ack)) {
		newWnd := wire.UnscaleWindow(hdr.Wnd)
		opened := newWnd > c.sndWnd
		c.sndWnd = newWnd
		c.wl1, c.wl2 = hdr.Seq, ack
		if c.sndWnd > 0 {
			c.cancelPersist()
		}
		if opened {
			if c.stk.crit != nil {
				// The peer's window opened: segments released here are
				// ACK-clocked.
				c.critTrig, c.critTrigC = c.critAck, obs.CauseAckClock
			}
			c.Output(ctx)
		}
	}
	c.noteQueues()
	c.noteNetObs()
}

// processData accepts in-order payload, queues out-of-order segments for
// reassembly, and handles FIN.
func (c *TCPConn) processData(ctx kern.Ctx, seq uint32, payload *mbuf.Mbuf, seglen units.Size, fin bool) {
	// Trim data that precedes rcvNxt (retransmitted overlap).
	if seqLT(seq, c.rcvNxt) {
		dup := seqDiff(c.rcvNxt, seq)
		if dup >= seglen {
			// Entirely duplicate (possibly a bare FIN retransmit).
			c.stk.Stats.TCPDupSegs++
			mbuf.FreeChain(payload)
			if fin && seqDiff(c.rcvNxt, seq) == seglen && !c.peerFin {
				c.acceptFin(ctx)
			}
			c.ackNow = true
			return
		}
		payload = mbuf.AdjFront(payload, dup)
		seq = c.rcvNxt
		seglen -= dup
	}

	if seq == c.rcvNxt {
		if seglen > c.rcvSpace() {
			// Beyond our advertised window: drop, re-advertise.
			mbuf.FreeChain(payload)
			c.ackNow = true
			return
		}
		if c.stk.crit != nil {
			if sp := payload.Span(); sp != nil {
				// In-order data reached the receive buffer; read wakeups
				// and the ACK it provokes hang off this event.
				c.critRcv = sp.CritEv(obs.CauseCPU, "rcv_enq")
			}
		}
		c.enqueueRcv(payload, seglen)
		if fin {
			c.acceptFin(ctx)
		}
		c.pullReassembly(ctx)
		c.ackPending++
		if c.ackPending >= delAckThreshold || c.peerFin {
			c.ackNow = true
		} else {
			c.armDelAck()
		}
		return
	}

	// Out of order: hold for reassembly (bounded by the offered window).
	c.stk.Stats.TCPOutOfOrder++
	if seglen <= c.rcvSpace() && len(c.reass) < 64 {
		c.reass = append(c.reass, reassSeg{seq: seq, len: seglen, chain: payload, fin: fin})
	} else {
		mbuf.FreeChain(payload)
	}
	c.ackNow = true // duplicate ACK tells the sender where we are
}

// enqueueRcv appends in-order payload to the receive buffer.
func (c *TCPConn) enqueueRcv(payload *mbuf.Mbuf, seglen units.Size) {
	c.rcvBuf = mbuf.Cat(c.rcvBuf, payload)
	c.rcvLen += seglen
	c.rcvNxt += uint32(seglen)
	c.noteQueues()
	c.rcvDataSig.Broadcast()
}

// pullReassembly drains any now-in-order held segments.
func (c *TCPConn) pullReassembly(ctx kern.Ctx) {
	for {
		progress := false
		for i, seg := range c.reass {
			if seg.seq == c.rcvNxt {
				c.reass = append(c.reass[:i], c.reass[i+1:]...)
				if c.stk.crit != nil {
					if sp := seg.chain.Span(); sp != nil {
						// Held out-of-order data became readable only once
						// the gap filled: a reassembly-queue wait.
						c.critRcv = sp.CritEv(obs.CauseQueue, "reass_pull")
					}
				}
				c.enqueueRcv(seg.chain, seg.len)
				if seg.fin {
					c.acceptFin(ctx)
				}
				progress = true
				break
			}
			if seqLT(seg.seq, c.rcvNxt) {
				// Obsoleted by what we already have.
				c.reass = append(c.reass[:i], c.reass[i+1:]...)
				mbuf.FreeChain(seg.chain)
				progress = true
				break
			}
		}
		if !progress {
			return
		}
	}
}

// acceptFin consumes the peer's FIN.
func (c *TCPConn) acceptFin(ctx kern.Ctx) {
	if c.peerFin {
		return
	}
	c.peerFin = true
	c.rcvNxt++
	c.ackNow = true
	c.rcvDataSig.Broadcast()
	switch c.state {
	case StateEstablished:
		c.state = StateCloseWait
	case StateFinWait1:
		// Our FIN not yet acked: simultaneous close; treat as LastAck.
		c.state = StateLastAck
	case StateFinWait2:
		// Orderly: ACK their FIN and finish.
		c.ackNow = true
		c.Output(ctx)
		c.teardown(nil)
	}
}

// sendRst answers a segment that reached no connection, as 4.3BSD's
// tcp_respond does: RST with sequencing derived from the offending
// segment so the peer accepts it.
func (s *Stack) sendRst(ctx kern.Ctx, key connKey, in wire.TCPHdr, seglen units.Size) {
	s.Stats.TCPRstsOut++
	var hdr wire.TCPHdr
	hdr.SPort, hdr.DPort = key.lport, key.rport
	if in.Flags&wire.FlagACK != 0 {
		hdr.Seq = in.Ack
		hdr.Flags = wire.FlagRST
	} else {
		ack := in.Seq + uint32(seglen)
		if in.Flags&wire.FlagSYN != 0 {
			ack++
		}
		hdr.Seq = 0
		hdr.Ack = ack
		hdr.Flags = wire.FlagRST | wire.FlagACK
	}
	hb := make([]byte, wire.TCPHdrLen)
	hdr.Marshal(hb)
	ps := pseudoSum(s.Addr, key.raddr, wire.ProtoTCP, wire.TCPHdrLen)
	hdr.Csum = checksumFinish(checksumAdd(ps, checksumSum(hb)))
	hdr.Marshal(hb)
	hm := mbuf.NewData(hb)
	hm.MarkPktHdr(wire.TCPHdrLen)
	s.IPOutput(ctx, hm, wire.ProtoTCP, key.raddr)
}
