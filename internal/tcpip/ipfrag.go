package tcpip

import (
	"repro/internal/checksum"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

// IP fragmentation and reassembly. The paper's HIPPI MTU (32 KB) makes
// fragmentation unnecessary for its experiments, but the stack it modifies
// is IP, and the descriptor machinery extends to fragments naturally:
//
//   - Fragmentation is symbolic — CopyRange splits M_UIO/M_WCAB chains
//     without touching data, so an oversize single-copy UDP datagram is
//     still DMAed straight from user pages, one fragment at a time.
//   - On receive, each fragment arriving through the CAB carries the
//     hardware checksum engine's partial sum over its own payload (the
//     engine's fixed skip offset lands on the fragment payload). The
//     reassembler combines the per-fragment sums with the ones-complement
//     concatenation rule, so even a reassembled datagram is verified
//     without the host reading the data.
//
// Transport checksum offload is not used for fragmented transmissions
// (the engine inserts a checksum per packet, but the field must cover the
// whole datagram), matching real stacks: oversize datagrams take the
// software checksum at the sender.

// reassTimeout evicts incomplete datagrams.
const reassTimeout = 30 * units.Second

// maxReassQueues bounds concurrent reassembly state.
const maxReassQueues = 64

// fragKey identifies a datagram being reassembled.
type fragKey struct {
	src, dst wire.Addr
	proto    uint8
	id       uint16
}

// fragPart is one held fragment.
type fragPart struct {
	off, ln units.Size
	chain   *mbuf.Mbuf
	// hwSum is the fragment's hardware payload sum, if the driver
	// supplied one.
	hwSum   uint32
	hwValid bool
}

// fragQueue accumulates one datagram.
type fragQueue struct {
	parts []fragPart
	total units.Size // set when the final fragment arrives; 0 = unknown
	gen   int
}

// fragmentOutput splits an oversize network-layer payload into fragments
// and transmits each through the interface. m is the transport packet
// (header + payload) of length n; mtu is the interface's network-layer
// MTU.
func (s *Stack) fragmentOutput(ctx kern.Ctx, m *mbuf.Mbuf, proto uint8, dst wire.Addr,
	r routeInfo, n, mtu units.Size) {
	maxPayload := (mtu - wire.IPHdrLen) &^ 7
	s.ipID++
	id := s.ipID
	for off := units.Size(0); off < n; off += maxPayload {
		ln := n - off
		mf := true
		if ln <= maxPayload {
			mf = false
		} else {
			ln = maxPayload
		}
		piece := mbuf.CopyRange(m, off, ln)
		hdr := wire.IPHdr{
			TotLen:  wire.IPHdrLen + ln,
			ID:      id,
			MF:      mf,
			FragOff: off,
			TTL:     30,
			Proto:   proto,
			Src:     s.Addr,
			Dst:     dst,
		}
		s.trace(TraceOut, hdr, piece)
		hm := piece.Prepend(wire.IPHdrLen)
		hdr.Marshal(hm.Bytes()[:wire.IPHdrLen])
		if !hm.IsPktHdr() {
			hm.MarkPktHdr(wire.IPHdrLen + ln)
		}
		ctx.Charge(s.K.Mach.IPPerPacket, kern.CatProto)
		s.Stats.IPOut++
		s.Stats.IPFragsOut++
		r.out(ctx, hm)
	}
	mbuf.FreeChain(m)
}

// reassemble folds a received fragment in; it returns the completed
// payload chain (transport header first) when the datagram is whole.
// The caller has already stripped the IP header from m.
func (s *Stack) reassemble(ctx kern.Ctx, m *mbuf.Mbuf, iph wire.IPHdr) *mbuf.Mbuf {
	s.Stats.IPFragsIn++
	key := fragKey{src: iph.Src, dst: iph.Dst, proto: iph.Proto, id: iph.ID}
	q := s.frags[key]
	if q == nil {
		if len(s.frags) >= maxReassQueues {
			// Refuse new reassembly state under pressure.
			mbuf.FreeChain(m)
			return nil
		}
		q = &fragQueue{}
		s.frags[key] = q
		s.armFragTimeout(key, q)
	}

	ln := mbuf.ChainLen(m)
	part := fragPart{off: iph.FragOff, ln: ln, chain: m}
	if h := m.Hdr(); h != nil && h.HWRxValid {
		part.hwSum, part.hwValid = h.HWRxSum, true
	}
	// Reject overlaps outright (simple and safe); duplicates are freed.
	for _, p := range q.parts {
		if part.off < p.off+p.ln && p.off < part.off+part.ln {
			mbuf.FreeChain(m)
			return nil
		}
	}
	q.parts = append(q.parts, part)
	if !iph.MF {
		q.total = iph.FragOff + ln
	}

	if q.total == 0 {
		return nil
	}
	var have units.Size
	for _, p := range q.parts {
		have += p.ln
	}
	if have < q.total {
		return nil
	}

	// Complete: stitch in offset order, combining hardware sums.
	ordered := make([]*fragPart, len(q.parts))
	for i := range q.parts {
		ordered[i] = &q.parts[i]
	}
	for i := range ordered { // insertion sort; fragment counts are small
		for j := i; j > 0 && ordered[j].off < ordered[j-1].off; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	var chain *mbuf.Mbuf
	hwSum := uint32(0)
	hwValid := true
	pos := 0
	for _, p := range ordered {
		chain = mbuf.Cat(chain, p.chain)
		if p.hwValid {
			hwSum = checksum.Combine(hwSum, p.hwSum, pos)
		} else {
			hwValid = false
		}
		pos += int(p.ln)
	}
	delete(s.frags, key)
	q.gen++ // cancel the timeout

	head := chain
	if hwValid {
		// The whole datagram is verified from per-fragment hardware sums:
		// the host never reads the payload (the paper's checksum
		// machinery, extended across fragmentation).
		h := head.Hdr()
		if h == nil {
			h = &mbuf.Hdr{}
			head.SetHdr(h)
		}
		h.HWRxValid, h.HWRxSum = true, hwSum
	} else if h := head.Hdr(); h != nil {
		h.HWRxValid = false
	}
	head.MarkPktHdr(q.total)
	s.Stats.IPReassembled++
	return head
}

// armFragTimeout schedules eviction of an incomplete datagram.
func (s *Stack) armFragTimeout(key fragKey, q *fragQueue) {
	gen := q.gen
	s.K.Eng.AfterKind(reassTimeout, sim.KindTimer, func() {
		s.K.PostIntr("ip-reass-timeout", func(p *sim.Proc) {
			s.Splnet(p)
			defer s.Splx()
			cur := s.frags[key]
			if cur != q || q.gen != gen {
				return
			}
			for _, part := range q.parts {
				mbuf.FreeChain(part.chain)
			}
			delete(s.frags, key)
			s.Stats.IPReassTimeouts++
		})
	})
}
