// Package tcpip implements the Internet protocol stack the paper modifies:
// an IP-style network layer with routing and interface selection, TCP with
// sliding windows, window scaling, and retransmission, and UDP — all
// operating on mbuf chains that may mix regular storage with the M_UIO and
// M_WCAB descriptors of the single-copy path.
//
// The package embodies the paper's central software idea (Section 3): the
// layered stack is kept intact, but formatting operations on data are
// performed symbolically on descriptors, checksum information is carried
// with the descriptor so the checksum can be set up in the transport layer
// yet calculated in the driver/hardware, and all data-touching operations
// collapse into the driver.
package tcpip

import (
	"fmt"

	"repro/internal/checksum"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/netif"
	"repro/internal/obs"
	"repro/internal/obs/netobs"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

// Stats counts stack-level events.
type Stats struct {
	IPIn, IPOut           int
	IPForwarded           int
	IPDropNoRoute         int
	IPHdrErrors           int
	IPFragsOut, IPFragsIn int
	IPReassembled         int
	IPReassTimeouts       int
	TCPSegsIn, TCPSegsOut int
	TCPCsumErrors         int
	TCPRetransmits        int
	TCPFastRetransmits    int
	TCPRstsIn, TCPRstsOut int
	TCPDropNoConn         int
	TCPOutOfOrder         int
	TCPDupSegs            int
	TCPListenOverflow     int
	TCPKaProbes           int
	TCPLivenessDrops      int
	TCPDeviceResets       int
	UDPIn, UDPOut         int
	UDPCsumErrors         int
	UDPDropNoPort         int
	UDPRcvFull            int
	UDPOversize           int
	UDPDevResetDrops      int
	HWCsumVerified        int
	SWCsumVerified        int
}

// Stack is one host's network stack instance.
type Stack struct {
	K      *kern.Kernel
	Addr   wire.Addr
	Routes *netif.Table
	Stats  Stats

	// Tracer, if set, observes every packet crossing the stack boundary
	// (see TraceEvent).
	Tracer func(TraceEvent)

	// CC selects the congestion-control algorithm for connections created
	// on this stack ("" or "reno" for the classic behavior, "dctcp" for
	// the ECN-reacting variant; see ValidCC). Set before any connections
	// are created.
	CC string

	ipID  uint16
	conns map[connKey]*TCPConn
	// listeners by local port.
	listeners map[uint16]*TCPListener
	udps      map[uint16]*UDPSock
	frags     map[fragKey]*fragQueue
	// Ephemeral port allocator state: next candidate and the inclusive
	// range it cycles over (narrowed by tests to force exhaustion).
	nextPort       uint16
	portLo, portHi uint16

	// spl serializes protocol-machine critical sections. The simulated
	// CPU preempts at charge boundaries, so — exactly like splnet in the
	// original kernel — input processing, output, and timers must not
	// interleave mid-operation. Blocking waits never happen under spl.
	spl *sim.Resource

	// Telemetry (all nil when disabled — the hot paths then skip every
	// telemetry branch without allocating).
	tr              *obs.Trace
	crit            *obs.CritRec
	ctrRtoFires     *obs.Counter
	ctrDupAcks      *obs.Counter
	ctrWindowStalls *obs.Counter
	ctrWCABConv     *obs.Counter
	// Queue/window gauges for the utilization time-series sampler: the
	// host-wide aggregates updated by every connection (last writer wins,
	// which for the sampler's per-interval peaks is what we want).
	gSndQ, gRcvQ, gSndWnd *obs.Gauge

	// Transport-dynamics recorder (netobs). nil when disabled; per-conn
	// FlowRecs then stay nil and every hook is a nil no-op.
	nrec  *netobs.Recorder
	nnode int
}

// SetNetObs attaches the transport-dynamics recorder. node is the host's
// fabric port id, used by the postmortem analyzer to join the flow series
// with the wire telemetry. Call before any connections are created.
func (s *Stack) SetNetObs(rec *netobs.Recorder, node int) {
	s.nrec = rec
	s.nnode = node
}

type connKey struct {
	raddr        wire.Addr
	lport, rport uint16
}

// NewStack returns a stack for host address addr on kernel k. When the
// kernel carries a telemetry registry the stack registers its counters and
// joins the shared data-path trace.
func NewStack(k *kern.Kernel, addr wire.Addr) *Stack {
	s := &Stack{
		K:         k,
		Addr:      addr,
		Routes:    netif.NewTable(),
		conns:     make(map[connKey]*TCPConn),
		listeners: make(map[uint16]*TCPListener),
		udps:      make(map[uint16]*UDPSock),
		frags:     make(map[fragKey]*fragQueue),
		nextPort:  10000,
		portLo:    10000,
		portHi:    65535,
		spl:       sim.NewResource(k.Eng, 1),
	}
	if r := k.Obs; r != nil {
		s.tr = r.TraceSink()
		s.crit = s.tr.Crit()
		s.gSndQ = r.Gauge("tcp.snd_q")
		s.gRcvQ = r.Gauge("tcp.rcv_q")
		s.gSndWnd = r.Gauge("tcp.snd_wnd")
		s.ctrRtoFires = r.Counter("tcp.rto_fires")
		s.ctrDupAcks = r.Counter("tcp.dupacks")
		s.ctrWindowStalls = r.Counter("tcp.window_stalls")
		s.ctrWCABConv = r.Counter("tcp.wcab_conversions")
		r.Func("tcp.segs_in", func() int64 { return int64(s.Stats.TCPSegsIn) })
		r.Func("tcp.segs_out", func() int64 { return int64(s.Stats.TCPSegsOut) })
		r.Func("tcp.retransmits", func() int64 { return int64(s.Stats.TCPRetransmits) })
		r.Func("tcp.fast_retransmits", func() int64 { return int64(s.Stats.TCPFastRetransmits) })
		r.Func("tcp.csum_errors", func() int64 { return int64(s.Stats.TCPCsumErrors) })
		r.Func("tcp.out_of_order", func() int64 { return int64(s.Stats.TCPOutOfOrder) })
		r.Func("tcp.dup_segs", func() int64 { return int64(s.Stats.TCPDupSegs) })
		r.Func("tcp.listen_overflow", func() int64 { return int64(s.Stats.TCPListenOverflow) })
		r.Func("tcp.ka_probes", func() int64 { return int64(s.Stats.TCPKaProbes) })
		r.Func("tcp.liveness_drops", func() int64 { return int64(s.Stats.TCPLivenessDrops) })
		r.Func("tcp.device_resets", func() int64 { return int64(s.Stats.TCPDeviceResets) })
		r.Func("ip.in", func() int64 { return int64(s.Stats.IPIn) })
		r.Func("ip.out", func() int64 { return int64(s.Stats.IPOut) })
		r.Func("ip.frags_in", func() int64 { return int64(s.Stats.IPFragsIn) })
		r.Func("ip.frags_out", func() int64 { return int64(s.Stats.IPFragsOut) })
		r.Func("ip.reassembled", func() int64 { return int64(s.Stats.IPReassembled) })
		r.Func("ip.drop_no_route", func() int64 { return int64(s.Stats.IPDropNoRoute) })
		r.Func("udp.in", func() int64 { return int64(s.Stats.UDPIn) })
		r.Func("udp.out", func() int64 { return int64(s.Stats.UDPOut) })
		r.Func("udp.csum_errors", func() int64 { return int64(s.Stats.UDPCsumErrors) })
		r.Func("udp.rcv_full", func() int64 { return int64(s.Stats.UDPRcvFull) })
		r.Func("udp.devreset_drops", func() int64 { return int64(s.Stats.UDPDevResetDrops) })
		r.Func("csum.hw_verified", func() int64 { return int64(s.Stats.HWCsumVerified) })
		r.Func("csum.sw_verified", func() int64 { return int64(s.Stats.SWCsumVerified) })
	}
	return s
}

// Splnet enters a protocol critical section (blocks until available).
func (s *Stack) Splnet(p *sim.Proc) { s.spl.Acquire(p, 0) }

// Splx leaves the critical section.
func (s *Stack) Splx() { s.spl.Release() }

// ErrPortExhausted is returned when every port in the ephemeral range is
// bound to a live connection, listener, or UDP socket.
var ErrPortExhausted = fmt.Errorf("tcpip: ephemeral port range exhausted")

// ErrPortInUse is returned for an explicit bind to an occupied port.
var ErrPortInUse = fmt.Errorf("tcpip: port already in use")

// SetEphemeralRange narrows the ephemeral port allocator to [lo, hi]
// (inclusive). A test and tooling knob: the default range is 10000-65535.
func (s *Stack) SetEphemeralRange(lo, hi uint16) {
	if lo == 0 || hi < lo {
		panic("tcpip: bad ephemeral range")
	}
	s.portLo, s.portHi = lo, hi
	s.nextPort = lo
}

// portInUse reports whether local port p is bound by any connection,
// listener, or UDP socket.
func (s *Stack) portInUse(p uint16) bool {
	if _, ok := s.listeners[p]; ok {
		return true
	}
	if _, ok := s.udps[p]; ok {
		return true
	}
	for k := range s.conns {
		if k.lport == p {
			return true
		}
	}
	return false
}

// ephemeralPort allocates a local port, scanning at most one full cycle of
// the ephemeral range so exhaustion surfaces as an error instead of an
// infinite loop (or a silent collision with a bound UDP port).
func (s *Stack) ephemeralPort() (uint16, error) {
	span := int(s.portHi) - int(s.portLo) + 1
	for i := 0; i < span; i++ {
		s.nextPort++
		if s.nextPort < s.portLo || s.nextPort > s.portHi {
			s.nextPort = s.portLo
		}
		if p := s.nextPort; !s.portInUse(p) {
			return p, nil
		}
	}
	return 0, ErrPortExhausted
}

// RouteCaps reports whether dst is reached through a single-copy capable
// interface, and that interface's MTU. The transport uses it to choose
// between outboard and software checksumming at output time — interface
// selection is a network-layer decision (Section 4.1).
func (s *Stack) RouteCaps(dst wire.Addr) (singleCopy bool, mtu units.Size) {
	r, err := s.Routes.Lookup(dst)
	if err != nil {
		return false, 1500
	}
	return r.If.Caps().SingleCopy, r.If.MTU()
}

// IPOutput routes and transmits a transport packet: it prepends the IP
// header (with header checksum) and hands the frame to the selected
// interface.
func (s *Stack) IPOutput(ctx kern.Ctx, m *mbuf.Mbuf, proto uint8, dst wire.Addr) {
	s.IPOutputECN(ctx, m, proto, dst, 0)
}

// IPOutputECN is IPOutput with an explicit ECN codepoint (ECN-capable TCP
// senders mark data segments ECT so fabric hops may CE them). Oversize
// packets lose the codepoint across fragmentation — ECN senders size
// segments to the route MTU, so the case never arises for them.
func (s *Stack) IPOutputECN(ctx kern.Ctx, m *mbuf.Mbuf, proto uint8, dst wire.Addr, ecn uint8) {
	ctx = ctx.In("ip_output")
	r, err := s.Routes.Lookup(dst)
	if err != nil {
		s.Stats.IPDropNoRoute++
		mbuf.FreeChain(m)
		return
	}
	if n := mbuf.ChainLen(m); n+wire.IPHdrLen > r.If.MTU() {
		// Oversize for the route: fragment. Each fragment is traced as it
		// is cut (with a fragment marker), inside fragmentOutput.
		ri := routeInfo{out: func(c kern.Ctx, pkt *mbuf.Mbuf) { r.If.Output(c, pkt, r.Link) }}
		s.fragmentOutput(ctx, m, proto, dst, ri, n, r.If.MTU())
		return
	}
	ctx.Charge(s.K.Mach.IPPerPacket, kern.CatProto)
	s.ipID++
	hdr := wire.IPHdr{
		TotLen: mbuf.ChainLen(m) + wire.IPHdrLen,
		ID:     s.ipID,
		TTL:    30,
		Proto:  proto,
		ECN:    ecn,
		Src:    s.Addr,
		Dst:    dst,
	}
	s.trace(TraceOut, hdr, m)
	hm := m.Prepend(wire.IPHdrLen)
	hdr.Marshal(hm.Bytes()[:wire.IPHdrLen])
	s.Stats.IPOut++
	r.If.Output(ctx, hm, r.Link)
}

// Input is the stack's receive entry point (registered with drivers). m's
// first mbuf starts with the IP header; drivers have stripped the link
// header.
func (s *Stack) Input(ctx kern.Ctx, m *mbuf.Mbuf, from netif.Interface) {
	ctx = ctx.In("ip_input")
	s.Splnet(ctx.P)
	defer s.Splx()
	first := m
	if first.Len() < wire.IPHdrLen {
		s.Stats.IPHdrErrors++
		mbuf.FreeChain(m)
		return
	}
	iph, err := wire.ParseIPHdr(first.Bytes())
	if err != nil {
		s.Stats.IPHdrErrors++
		mbuf.FreeChain(m)
		return
	}
	ctx.Charge(s.K.Mach.IPPerPacket, kern.CatProto)
	s.Stats.IPIn++

	if iph.Dst != s.Addr {
		s.forward(ctx, m, iph)
		return
	}

	// Trim any link-layer padding and strip the IP header.
	if have := mbuf.ChainLen(m); have > iph.TotLen {
		if DebugCsum && have > iph.TotLen+4 {
			fmt.Printf("IPTRIM have=%v totlen=%v proto=%d %v->%v\n",
				have, iph.TotLen, iph.Proto, iph.Src, iph.Dst)
		}
		m, _ = mbuf.SplitAt(m, iph.TotLen)
	}
	first.TrimFront(wire.IPHdrLen)

	if iph.IsFragment() {
		// Trace the fragment itself before reassembly swallows it; the
		// whole datagram is traced again below once complete.
		s.trace(TraceIn, iph, m)
		m = s.reassemble(ctx, m, iph)
		if m == nil {
			return // incomplete (or discarded)
		}
		iph.MF, iph.FragOff = false, 0
		iph.TotLen = wire.IPHdrLen + mbuf.ChainLen(m)
	}
	s.trace(TraceIn, iph, m)

	sp := m.Span()
	switch iph.Proto {
	case wire.ProtoTCP:
		s.tcpInput(ctx, m, iph)
	case wire.ProtoUDP:
		s.udpInput(ctx, m, iph)
	default:
		mbuf.FreeChain(m)
	}
	// The packet's data-path span (attached by the driver) ends once
	// receive-side protocol processing has run.
	sp.End()
}

// forward routes a packet onward to another interface (the paper's
// argument for a single stack: routing between unlike interfaces relies on
// one network layer, Section 4.1). Descriptor chains are handed to the
// outgoing driver as-is; legacy drivers convert at their entry point.
func (s *Stack) forward(ctx kern.Ctx, m *mbuf.Mbuf, iph wire.IPHdr) {
	if iph.TTL <= 1 {
		mbuf.FreeChain(m)
		return
	}
	r, err := s.Routes.Lookup(iph.Dst)
	if err != nil {
		s.Stats.IPDropNoRoute++
		mbuf.FreeChain(m)
		return
	}
	// Rewrite TTL (and header checksum) in place.
	iph.TTL--
	iph.Marshal(m.Bytes()[:wire.IPHdrLen])
	s.Stats.IPForwarded++
	r.If.Output(ctx, m, r.Link)
}

// routeInfo carries the bound output function for fragmentation.
type routeInfo struct {
	out func(kern.Ctx, *mbuf.Mbuf)
}

// pseudoSum returns the transport pseudo-header partial sum.
func pseudoSum(src, dst wire.Addr, proto uint8, segLen units.Size) uint32 {
	return checksum.PseudoHeaderSum(uint32(src), uint32(dst), proto, uint32(segLen))
}

// verifyTransportCsum checks a received transport segment's checksum,
// using the hardware partial sum when the driver supplied one (the
// single-copy path: only the header is touched) and a software read of the
// whole segment otherwise.
func (s *Stack) verifyTransportCsum(ctx kern.Ctx, m *mbuf.Mbuf, iph wire.IPHdr, proto uint8) bool {
	segLen := mbuf.ChainLen(m)
	ps := pseudoSum(iph.Src, iph.Dst, proto, segLen)
	if h := m.Hdr(); h != nil && h.HWRxValid {
		s.Stats.HWCsumVerified++
		// The hardware summed the body in flight: the host touched only
		// the header — a plain cpu edge on the segment's causal chain.
		m.Span().CritEv(obs.CauseCPU, "tcp_in")
		return checksum.VerifySum(checksum.Add(ps, h.HWRxSum))
	}
	s.Stats.SWCsumVerified++
	buf := make([]byte, segLen)
	mbuf.ReadRange(m, 0, segLen, buf)
	if pv := m.Prov(); pv != nil && ctx.K.Led != nil {
		// The buffer starts at the transport header: payload byte 0 (stream
		// byte pv.Off) sits at buffer offset segLen-pv.Len; the provenance
		// window clips the header bytes out of the record.
		ctx = ctx.OnStreamProv(pv, pv.Off-(segLen-pv.Len))
	}
	sum := ctx.ChecksumRead(buf, segLen)
	// Software verification read every payload byte: the data-touching CPU
	// time the single-copy path eliminates.
	m.Span().CritEv(obs.CauseCPUCsum, "tcp_in")
	return checksum.VerifySum(checksum.Add(ps, sum))
}

// checksum helper aliases for files that build raw segments.
var (
	checksumFinish = checksum.Finish
	checksumAdd    = checksum.Add
	checksumSum    = checksum.Sum
)

func (s *Stack) String() string {
	return fmt.Sprintf("stack(%v)", s.Addr)
}
