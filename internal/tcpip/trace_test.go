package tcpip

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/wire"
)

func TestTracerObservesBothDirections(t *testing.T) {
	r := newRig(t, 30)
	var outEvents, inEvents []TraceEvent
	r.sa.Tracer = func(e TraceEvent) {
		if e.Dir == TraceOut {
			outEvents = append(outEvents, e)
		}
	}
	r.sb.Tracer = func(e TraceEvent) {
		if e.Dir == TraceIn {
			inEvents = append(inEvents, e)
		}
	}
	data := pattern(64*1024, 1)
	got := runTransfer(t, r, data)
	if len(got) != len(data) {
		t.Fatalf("transfer broken: %d bytes", len(got))
	}
	if len(outEvents) == 0 || len(inEvents) == 0 {
		t.Fatalf("tracer saw out=%d in=%d events", len(outEvents), len(inEvents))
	}
	// The first outbound event is the SYN.
	syn := outEvents[0]
	if syn.TCP == nil || syn.TCP.Flags&wire.FlagSYN == 0 {
		t.Fatalf("first out event not a SYN: %v", syn)
	}
	// Every A-out data segment should be seen arriving at B.
	var outData, inData int
	for _, e := range outEvents {
		if e.TCP != nil && e.PayloadLen > 0 {
			outData++
		}
	}
	for _, e := range inEvents {
		if e.TCP != nil && e.PayloadLen > 0 {
			inData++
		}
	}
	if outData == 0 || inData != outData {
		t.Fatalf("data segments out=%d in=%d", outData, inData)
	}
}

func TestTraceEventString(t *testing.T) {
	ev := TraceEvent{
		Dir: TraceOut,
		IP:  wire.IPHdr{Src: 0x0a000001, Dst: 0x0a000002, Proto: wire.ProtoTCP},
		TCP: &wire.TCPHdr{SPort: 1000, DPort: 80, Seq: 7, Ack: 9,
			Flags: wire.FlagSYN | wire.FlagACK, Wnd: 100},
		PayloadLen: 0,
	}
	s := ev.String()
	for _, want := range []string{"10.0.0.1 > 10.0.0.2", "tcp 1000>80", "[S.]", "seq 7", "ack 9"} {
		if !strings.Contains(s, want) {
			t.Fatalf("trace line %q missing %q", s, want)
		}
	}
}

func TestTracerSeesUDPAndDescriptors(t *testing.T) {
	r := newRig(t, 31)
	var udpSeen bool
	r.sb.Tracer = func(e TraceEvent) {
		if e.UDP != nil && e.Dir == TraceIn {
			udpSeen = true
		}
	}
	rx, _ := r.sb.UDPBind(9100)
	r.eng.Go("rx", func(p *sim.Proc) { rx.RecvFrom(p) })
	r.eng.Go("tx", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		tx, _ := r.sa.UDPBind(0)
		tx.SendTo(ctx, nil, 0, r.sb.Addr, 9100)
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if !udpSeen {
		t.Fatal("tracer missed the UDP datagram")
	}
}
