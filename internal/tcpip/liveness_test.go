package tcpip

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// livenessPair establishes a connection over the pipe rig and returns both
// ends; the caller configures liveness and drives the fault.
func livenessPair(t *testing.T, seed int64) (*rig, *TCPConn, *TCPConn) {
	t.Helper()
	r := newRig(t, seed)
	lis := r.sb.Listen(80)
	var srv, cli *TCPConn
	r.eng.Go("srv", func(p *sim.Proc) { srv = lis.Accept(p) })
	r.eng.Go("cli", func(p *sim.Proc) {
		c, err := r.sa.Connect(r.ka.TaskCtx(p, r.ka.KernelTask), r.sb.Addr, 80)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		cli = c
	})
	r.eng.Run()
	if cli == nil || srv == nil {
		t.Fatal("handshake incomplete")
	}
	return r, cli, srv
}

// TestKeepAliveIdleConnectionSurvives pins the false-positive guard: over a
// healthy link an idle connection must answer every probe and stay
// established indefinitely — keepalive detects dead peers, not quiet ones.
func TestKeepAliveIdleConnectionSurvives(t *testing.T) {
	r, cli, srv := livenessPair(t, 51)
	r.eng.Go("ka", func(p *sim.Proc) {
		cli.SetKeepAlive(p, 50*units.Millisecond, 25*units.Millisecond, 3)
	})
	r.eng.RunUntil(1 * units.Second)
	defer r.eng.KillAll()
	if cli.State() != StateEstablished || srv.State() != StateEstablished {
		t.Fatalf("states cli=%v/%v srv=%v/%v after idle with keepalive",
			cli.State(), cli.Err, srv.State(), srv.Err)
	}
	if r.sa.Stats.TCPKaProbes == 0 {
		t.Fatal("no probes sent over 1s of idle with a 50ms idle threshold")
	}
	if r.sa.Stats.TCPLivenessDrops+r.sb.Stats.TCPLivenessDrops != 0 {
		t.Fatal("healthy idle connection declared dead")
	}
}

// TestKeepAliveDeadPeerTimesOut pins the detection bound: once the peer
// vanishes, count unanswered probes must surface ErrTimeout within
// idle + count*intvl plus one interval of scheduling slack.
func TestKeepAliveDeadPeerTimesOut(t *testing.T) {
	r, cli, _ := livenessPair(t, 53)
	const (
		idle  = 50 * units.Millisecond
		intvl = 25 * units.Millisecond
		count = 3
	)
	r.eng.Go("ka", func(p *sim.Proc) {
		// The peer dies silently: every reply vanishes from here on.
		r.ib.drop = func(int, []byte) bool { return true }
		cli.SetKeepAlive(p, idle, intvl, count)
	})
	r.eng.RunUntil(1 * units.Second)
	defer r.eng.KillAll()
	if cli.State() != StateClosed || cli.Err != ErrTimeout {
		t.Fatalf("state=%v err=%v, want ErrTimeout teardown", cli.State(), cli.Err)
	}
	bound := idle + (count+1)*intvl
	if now := r.eng.Now(); cli.Err == ErrTimeout && r.sa.Stats.TCPLivenessDrops == 1 && now > 0 {
		// The engine drains all remaining timers after teardown, so Now()
		// overshoots; the drop instant itself is bounded by construction:
		// probes fire on a strict idle+k*intvl ladder. Assert the ladder
		// ran exactly count probes — the timing bound restated as a count.
		if r.sa.Stats.TCPKaProbes != count {
			t.Fatalf("sent %d probes before giving up, want %d (bound %v)",
				r.sa.Stats.TCPKaProbes, count, bound)
		}
	}
}

// TestUserTimeoutBoundsStalledWrite pins the sender-side bound: with every
// ACK lost, pending data must surface ErrTimeout within the configured
// user-timeout plus one RTO — far sooner than the ~15s retransmission
// ladder would take on its own.
func TestUserTimeoutBoundsStalledWrite(t *testing.T) {
	r, cli, _ := livenessPair(t, 57)
	const timeout = 300 * units.Millisecond
	var sendErr error
	var stallStart, errAt units.Time
	r.eng.Go("writer", func(p *sim.Proc) {
		cli.SetUserTimeout(timeout)
		r.ib.drop = func(int, []byte) bool { return true } // peer's ACKs vanish
		stallStart = r.eng.Now()
		sendErr = sendAll(p, r.ka, cli, pattern(256*1024, 3))
		if sendErr == nil {
			// The buffer may absorb the whole payload; the stall then
			// surfaces on the next blocking call.
			sendErr = cli.WaitSndSpace(p)
			for sendErr == nil && cli.Err == nil {
				p.Sleep(10 * units.Millisecond)
			}
			if sendErr == nil {
				sendErr = cli.Err
			}
		}
		errAt = r.eng.Now()
	})
	r.eng.RunUntil(20 * units.Second)
	defer r.eng.KillAll()
	if sendErr != ErrTimeout {
		t.Fatalf("stalled write ended with %v, want ErrTimeout", sendErr)
	}
	// The timeout is checked when the retransmission timer fires, so the
	// verdict lands within the user timeout plus one backed-off RTO.
	if took := errAt - stallStart; took > timeout+2*maxRTO {
		t.Fatalf("verdict took %v, want <= %v", took, timeout+2*maxRTO)
	}
	if r.sa.Stats.TCPLivenessDrops != 1 {
		t.Fatalf("liveness drops = %d, want 1", r.sa.Stats.TCPLivenessDrops)
	}
}

// TestKeepAliveDisabledByDefault guards the baseline contract: a connection
// that never opts in must send zero probes no matter how long it idles —
// fault-free runs keep their exact event sequence.
func TestKeepAliveDisabledByDefault(t *testing.T) {
	r, cli, srv := livenessPair(t, 59)
	r.eng.RunUntil(5 * units.Second)
	defer r.eng.KillAll()
	if r.sa.Stats.TCPKaProbes+r.sb.Stats.TCPKaProbes != 0 {
		t.Fatal("probes sent without SetKeepAlive")
	}
	if cli.State() != StateEstablished || srv.State() != StateEstablished {
		t.Fatal("idle connection did not survive without keepalive")
	}
}
