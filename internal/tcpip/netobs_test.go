package tcpip

import (
	"testing"

	"repro/internal/obs/netobs"
)

// TestNetObsFlowSeriesRecorded checks the stack-side instrumentation: a
// plain transfer on an instrumented rig must yield one state series per
// connection, sampled on change (strictly increasing timestamps, no
// consecutive duplicate states) with live congestion values.
func TestNetObsFlowSeriesRecorded(t *testing.T) {
	r := newRig(t, 31)
	rec := netobs.New(r.eng.Now)
	r.sa.SetNetObs(rec, 1)
	r.sb.SetNetObs(rec, 2)

	data := pattern(256*1024, 3)
	got := runTransfer(t, r, data)
	if len(got) != len(data) {
		t.Fatalf("transfer broke under instrumentation: %d/%d bytes", len(got), len(data))
	}

	d := rec.Snapshot()
	if len(d.Flows) != 2 {
		t.Fatalf("%d flow series, want 2 (client and server side)", len(d.Flows))
	}
	for _, f := range d.Flows {
		if len(f.Samples) == 0 {
			t.Fatalf("flow %s:%d-%d recorded no samples", f.Host, f.Port, f.RPort)
		}
		for i := 1; i < len(f.Samples); i++ {
			if f.Samples[i].TNs <= f.Samples[i-1].TNs {
				t.Fatalf("flow %s:%d samples not strictly ordered at %d", f.Host, f.Port, i)
			}
			if f.Samples[i].FlowState == f.Samples[i-1].FlowState {
				t.Fatalf("flow %s:%d consecutive duplicate state at %d (on-change dedup broken)",
					f.Host, f.Port, i)
			}
		}
		if f.DroppedSamples != 0 {
			t.Fatalf("flow %s:%d dropped %d samples in a short transfer", f.Host, f.Port, f.DroppedSamples)
		}
	}
	// The sender's series must show the congestion window opening from its
	// initial value.
	var snd *netobs.FlowDump
	for i := range d.Flows {
		if d.Flows[i].Host == "A" {
			snd = &d.Flows[i]
		}
	}
	if snd == nil {
		t.Fatal("no client-side series")
	}
	first, last := snd.Samples[0], snd.Samples[len(snd.Samples)-1]
	if first.Cwnd <= 0 || last.Cwnd <= first.Cwnd {
		t.Fatalf("cwnd did not open: first=%d last=%d", first.Cwnd, last.Cwnd)
	}
	if last.SrttNs <= 0 || last.RtoNs <= 0 {
		t.Fatalf("no RTT estimate in final sample: %+v", last)
	}
}

// TestNetObsDisabledHookZeroAlloc pins the cost of the instrumentation on
// an uninstrumented stack: the per-segment noteNetObs hook must allocate
// nothing when no recorder is attached.
func TestNetObsDisabledHookZeroAlloc(t *testing.T) {
	c := &TCPConn{}
	if n := testing.AllocsPerRun(200, func() { c.noteNetObs() }); n != 0 {
		t.Fatalf("disabled noteNetObs allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { c.nobs.Rtx(netobs.RtxRTO) }); n != 0 {
		t.Fatalf("disabled Rtx hook allocates %.1f/op, want 0", n)
	}
}
