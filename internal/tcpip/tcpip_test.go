package tcpip

import (
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/netif"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

// pipeIf is a minimal legacy interface joining two stacks directly: output
// materializes the packet and injects it into the peer stack after a fixed
// delay, optionally dropping packets. It has no single-copy capabilities,
// so these tests exercise the pure software TCP/UDP/IP paths.
type pipeIf struct {
	name  string
	k     *kern.Kernel
	stk   *Stack
	peer  *pipeIf
	mtu   units.Size
	delay units.Time
	drop  func(n int, data []byte) bool
	sent  int
}

func (i *pipeIf) Name() string     { return i.name }
func (i *pipeIf) MTU() units.Size  { return i.mtu }
func (i *pipeIf) Caps() netif.Caps { return netif.Caps{} }
func (i *pipeIf) Output(ctx kern.Ctx, m *mbuf.Mbuf, dst netif.LinkAddr) {
	if mbuf.HasDescriptors(m) {
		m = netif.ConvertForLegacy(ctx, m)
	}
	data := mbuf.Materialize(m)
	mbuf.FreeChain(m)
	i.sent++
	if i.drop != nil && i.drop(i.sent, data) {
		return
	}
	peer := i.peer
	i.k.Eng.After(i.delay, func() {
		peer.k.PostIntr("pipe-rx", func(p *sim.Proc) {
			var chain *mbuf.Mbuf
			for off := 0; off < len(data); off += int(mbuf.MCLBYTES) {
				n := len(data) - off
				if n > int(mbuf.MCLBYTES) {
					n = int(mbuf.MCLBYTES)
				}
				chain = mbuf.Cat(chain, mbuf.NewCluster(data[off:off+n]))
			}
			chain.MarkPktHdr(units.Size(len(data)))
			peer.stk.Input(peer.k.IntrCtx(p), chain, peer)
		})
	})
}

// rig builds two stacks joined by a pipe.
type rig struct {
	eng    *sim.Engine
	ka, kb *kern.Kernel
	sa, sb *Stack
	ia, ib *pipeIf
}

func newRig(t *testing.T, seed int64) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	r := &rig{eng: eng}
	r.ka = kern.New("A", eng, cost.Alpha400())
	r.kb = kern.New("B", eng, cost.Alpha400())
	r.sa = NewStack(r.ka, 0x0a000001)
	r.sb = NewStack(r.kb, 0x0a000002)
	r.ia = &pipeIf{name: "pipeA", k: r.ka, stk: r.sa, mtu: 8 * units.KB, delay: 20 * units.Microsecond}
	r.ib = &pipeIf{name: "pipeB", k: r.kb, stk: r.sb, mtu: 8 * units.KB, delay: 20 * units.Microsecond}
	r.ia.peer, r.ib.peer = r.ib, r.ia
	r.sa.Routes.AddHost(r.sb.Addr, r.ia, 2)
	r.sb.Routes.AddHost(r.sa.Addr, r.ib, 1)
	return r
}

// sendAll appends data to the connection from a kernel proc, blocking on
// buffer space.
func sendAll(p *sim.Proc, k *kern.Kernel, c *TCPConn, data []byte) error {
	ctx := k.TaskCtx(p, k.KernelTask)
	for off := 0; off < len(data); {
		if err := c.WaitSndSpace(p); err != nil {
			return err
		}
		n := units.Size(len(data) - off)
		if avail := c.SndAvail(); n > avail {
			n = avail
		}
		chunk := data[off : off+int(n)]
		var chain *mbuf.Mbuf
		for co := 0; co < len(chunk); co += int(mbuf.MCLBYTES) {
			ce := co + int(mbuf.MCLBYTES)
			if ce > len(chunk) {
				ce = len(chunk)
			}
			chain = mbuf.Cat(chain, mbuf.NewCluster(chunk[co:ce]))
		}
		if err := c.Append(ctx, chain, n, off == 0); err != nil {
			return err
		}
		off += int(n)
	}
	return nil
}

// recvAll drains the stream until EOF.
func recvAll(p *sim.Proc, k *kern.Kernel, c *TCPConn) []byte {
	ctx := k.TaskCtx(p, k.KernelTask)
	var out []byte
	for c.WaitRcvData(p) {
		chain, n := c.DequeueRcv(1 << 20)
		if n == 0 {
			break
		}
		out = append(out, mbuf.Materialize(chain)...)
		mbuf.FreeChain(chain)
		c.WindowUpdate(ctx)
	}
	return out
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
	return b
}

func TestHandshakeEstablishes(t *testing.T) {
	r := newRig(t, 1)
	lis := r.sb.Listen(80)
	var srv, cli *TCPConn
	r.eng.Go("srv", func(p *sim.Proc) { srv = lis.Accept(p) })
	r.eng.Go("cli", func(p *sim.Proc) {
		c, err := r.sa.Connect(r.ka.TaskCtx(p, r.ka.KernelTask), r.sb.Addr, 80)
		if err != nil {
			t.Errorf("connect: %v", err)
		}
		cli = c
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if cli == nil || srv == nil {
		t.Fatal("handshake incomplete")
	}
	if cli.State() != StateEstablished || srv.State() != StateEstablished {
		t.Fatalf("states: cli=%v srv=%v", cli.State(), srv.State())
	}
	if cli.MaxSeg != 8*units.KB-wire.IPHdrLen-wire.TCPHdrLen {
		t.Fatalf("maxseg = %v", cli.MaxSeg)
	}
}

func TestConnectNoListenerResetsFast(t *testing.T) {
	r := newRig(t, 2)
	var err error
	var failedAt units.Time
	r.eng.Go("cli", func(p *sim.Proc) {
		_, err = r.sa.Connect(r.ka.TaskCtx(p, r.ka.KernelTask), r.sb.Addr, 81)
		failedAt = p.Now()
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if err != ErrConnReset {
		t.Fatalf("err = %v, want ErrConnReset", err)
	}
	// The RST arrives in one round trip, not after retransmission
	// timeouts.
	if failedAt > 50*units.Millisecond {
		t.Fatalf("connect failed at %v; RST should be immediate", failedAt)
	}
	if r.sb.Stats.TCPRstsOut == 0 || r.sa.Stats.TCPRstsIn == 0 {
		t.Fatalf("rsts out=%d in=%d", r.sb.Stats.TCPRstsOut, r.sa.Stats.TCPRstsIn)
	}
}

// runTransfer moves data A→B over the rig and returns what B read.
func runTransfer(t *testing.T, r *rig, data []byte) []byte {
	t.Helper()
	lis := r.sb.Listen(80)
	var got []byte
	r.eng.Go("srv", func(p *sim.Proc) {
		c := lis.Accept(p)
		got = recvAll(p, r.kb, c)
	})
	r.eng.Go("cli", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		c, err := r.sa.Connect(ctx, r.sb.Addr, 80)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if err := sendAll(p, r.ka, c, data); err != nil {
			t.Errorf("send: %v", err)
		}
		c.Close(r.ka.TaskCtx(p, r.ka.KernelTask))
	})
	r.eng.Run()
	r.eng.KillAll()
	return got
}

func TestBulkTransferIntegrity(t *testing.T) {
	r := newRig(t, 3)
	data := pattern(1<<20, 5)
	got := runTransfer(t, r, data)
	if len(got) != len(data) {
		t.Fatalf("got %d bytes, want %d", len(got), len(data))
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("byte %d corrupted", i)
		}
	}
	if r.sb.Stats.TCPCsumErrors != 0 {
		t.Fatalf("checksum errors: %d", r.sb.Stats.TCPCsumErrors)
	}
}

func TestSegmentationRespectsMSS(t *testing.T) {
	r := newRig(t, 4)
	runTransfer(t, r, pattern(100*1024, 1))
	// 100KB over an 8KB MTU: at least 13 data segments.
	if r.sa.Stats.TCPSegsOut < 13 {
		t.Fatalf("segments out = %d, want ≥ 13", r.sa.Stats.TCPSegsOut)
	}
}

func TestRetransmissionUnderLoss(t *testing.T) {
	r := newRig(t, 5)
	n := 0
	r.ia.drop = func(_ int, data []byte) bool {
		if len(data) < 1000 {
			return false
		}
		n++
		return n%7 == 0
	}
	data := pattern(512*1024, 9)
	got := runTransfer(t, r, data)
	if len(got) != len(data) {
		t.Fatalf("got %d bytes, want %d", len(got), len(data))
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("byte %d corrupted under loss", i)
		}
	}
	if r.sa.Stats.TCPRetransmits == 0 {
		t.Fatal("expected retransmissions")
	}
	if r.sb.Stats.TCPOutOfOrder == 0 {
		t.Fatal("expected out-of-order segments held for reassembly")
	}
}

func TestLostFinRetransmitted(t *testing.T) {
	r := newRig(t, 6)
	finDropped := false
	r.ia.drop = func(_ int, data []byte) bool {
		// Drop the first FIN-bearing segment (possibly piggybacked on
		// data).
		if len(data) >= int(wire.IPHdrLen+wire.TCPHdrLen) && !finDropped {
			h, err := wire.ParseTCPHdr(data[wire.IPHdrLen:])
			if err == nil && h.Flags&wire.FlagFIN != 0 {
				finDropped = true
				return true
			}
		}
		return false
	}
	got := runTransfer(t, r, pattern(64*1024, 2))
	if len(got) != 64*1024 {
		t.Fatalf("got %d bytes", len(got))
	}
	if !finDropped {
		t.Fatal("test never saw a FIN")
	}
}

func TestZeroWindowAndPersist(t *testing.T) {
	r := newRig(t, 7)
	lis := r.sb.Listen(80)
	data := pattern(256*1024, 3)
	var got []byte
	r.eng.Go("srv", func(p *sim.Proc) {
		c := lis.Accept(p)
		c.RcvLimit = 32 * units.KB // tiny window
		// Sleep long enough for the sender to fill the window and go
		// idle, then drain slowly.
		p.Sleep(2 * units.Second)
		got = recvAll(p, r.kb, c)
	})
	r.eng.Go("cli", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		c, err := r.sa.Connect(ctx, r.sb.Addr, 80)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		c.SndLimit = 512 * units.KB
		if err := sendAll(p, r.ka, c, data); err != nil {
			t.Errorf("send: %v", err)
		}
		c.Close(r.ka.TaskCtx(p, r.ka.KernelTask))
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if len(got) != len(data) {
		t.Fatalf("got %d bytes, want %d", len(got), len(data))
	}
}

func TestDuplicateSegmentsIgnored(t *testing.T) {
	r := newRig(t, 8)
	// Duplicate every data frame: deliver twice.
	orig := r.ia.peer
	r.ia.drop = func(_ int, data []byte) bool {
		if len(data) > 1000 {
			// Inject a duplicate copy after a short delay.
			cp := append([]byte{}, data...)
			r.ka.Eng.After(300*units.Microsecond, func() {
				orig.k.PostIntr("dup-rx", func(p *sim.Proc) {
					var chain *mbuf.Mbuf
					for off := 0; off < len(cp); off += int(mbuf.MCLBYTES) {
						e := off + int(mbuf.MCLBYTES)
						if e > len(cp) {
							e = len(cp)
						}
						chain = mbuf.Cat(chain, mbuf.NewCluster(cp[off:e]))
					}
					chain.MarkPktHdr(units.Size(len(cp)))
					orig.stk.Input(orig.k.IntrCtx(p), chain, orig)
				})
			})
		}
		return false
	}
	data := pattern(128*1024, 4)
	got := runTransfer(t, r, data)
	if len(got) != len(data) {
		t.Fatalf("got %d, want %d (duplicates must not corrupt the stream)", len(got), len(data))
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("byte %d corrupted by duplicates", i)
		}
	}
	if r.sb.Stats.TCPDupSegs == 0 {
		t.Fatal("expected duplicate segments to be counted")
	}
}

func TestCorruptedSegmentDropped(t *testing.T) {
	r := newRig(t, 9)
	flipped := 0
	r.ia.drop = func(n int, data []byte) bool {
		// Flip a payload bit in some data frames; the checksum must
		// catch it and TCP must recover by retransmission.
		if len(data) > 2000 && n%5 == 0 {
			data[len(data)-3] ^= 0x40
			flipped++
		}
		return false
	}
	data := pattern(256*1024, 6)
	got := runTransfer(t, r, data)
	if flipped == 0 {
		t.Fatal("no frames corrupted; test is vacuous")
	}
	if r.sb.Stats.TCPCsumErrors == 0 {
		t.Fatal("checksum verification failed to catch corruption")
	}
	if len(got) != len(data) {
		t.Fatalf("got %d bytes, want %d", len(got), len(data))
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("corrupted byte %d reached the application", i)
		}
	}
}

func TestOrderlyCloseBothStates(t *testing.T) {
	r := newRig(t, 10)
	lis := r.sb.Listen(80)
	var srv, cli *TCPConn
	r.eng.Go("srv", func(p *sim.Proc) {
		srv = lis.Accept(p)
		recvAll(p, r.kb, srv)
		srv.Close(r.kb.TaskCtx(p, r.kb.KernelTask)) // close our side too
		srv.WaitClosed(p)
	})
	r.eng.Go("cli", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		var err error
		cli, err = r.sa.Connect(ctx, r.sb.Addr, 80)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		sendAll(p, r.ka, cli, pattern(64*1024, 8))
		cli.Close(r.ka.TaskCtx(p, r.ka.KernelTask))
		cli.WaitClosed(p)
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if cli.State() != StateClosed || srv.State() != StateClosed {
		t.Fatalf("states after close: cli=%v srv=%v", cli.State(), srv.State())
	}
	if len(r.sa.conns) != 0 || len(r.sb.conns) != 0 {
		t.Fatalf("connection tables not empty: %d/%d", len(r.sa.conns), len(r.sb.conns))
	}
}

func TestSeqArithmeticProperties(t *testing.T) {
	lt := func(a, b uint32) bool {
		// Within a half-space window, seqLT matches integer comparison.
		if b-a < 1<<31 {
			return seqLT(a, b) == (a != b)
		}
		return true
	}
	if err := quick.Check(lt, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	diff := func(a uint32, d uint16) bool {
		b := a + uint32(d)
		return seqDiff(b, a) == units.Size(d)
	}
	if err := quick.Check(diff, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	r := newRig(t, 11)
	rx, _ := r.sb.UDPBind(9000)
	var got []*UDPDatagram
	r.eng.Go("rx", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, rx.RecvFrom(p))
		}
	})
	r.eng.Go("tx", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		tx, _ := r.sa.UDPBind(0)
		for i := 0; i < 3; i++ {
			tx.SendTo(ctx, mbuf.NewCluster(pattern(2048, byte(i))), 2048, r.sb.Addr, 9000)
		}
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if len(got) != 3 {
		t.Fatalf("received %d datagrams, want 3", len(got))
	}
	for i, d := range got {
		want := pattern(2048, byte(i))
		buf := mbuf.Materialize(d.Chain)
		if string(buf) != string(want) {
			t.Fatalf("datagram %d corrupted", i)
		}
	}
}

func TestUDPChecksumCatchesCorruption(t *testing.T) {
	r := newRig(t, 12)
	r.ia.drop = func(_ int, data []byte) bool {
		if len(data) > 1000 {
			data[500] ^= 1
		}
		return false
	}
	rx, _ := r.sb.UDPBind(9000)
	delivered := false
	r.eng.Go("rx", func(p *sim.Proc) {
		rx.RecvFrom(p)
		delivered = true
	})
	r.eng.Go("tx", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		tx, _ := r.sa.UDPBind(0)
		tx.SendTo(ctx, mbuf.NewCluster(pattern(2048, 1)), 2048, r.sb.Addr, 9000)
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if delivered {
		t.Fatal("corrupted datagram delivered")
	}
	if r.sb.Stats.UDPCsumErrors != 1 {
		t.Fatalf("csum errors = %d, want 1", r.sb.Stats.UDPCsumErrors)
	}
}

func TestUDPUnboundPortDropped(t *testing.T) {
	r := newRig(t, 13)
	r.eng.Go("tx", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		tx, _ := r.sa.UDPBind(0)
		tx.SendTo(ctx, mbuf.NewCluster(pattern(100, 1)), 100, r.sb.Addr, 9999)
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if r.sb.Stats.UDPDropNoPort != 1 {
		t.Fatalf("drops = %d, want 1", r.sb.Stats.UDPDropNoPort)
	}
}

func TestIPForwarding(t *testing.T) {
	// A → R → B with R routing between two pipe interfaces.
	eng := sim.NewEngine(14)
	ka := kern.New("A", eng, cost.Alpha400())
	kr := kern.New("R", eng, cost.Alpha400())
	kb := kern.New("B", eng, cost.Alpha400())
	sa := NewStack(ka, 0x0a000001)
	sr := NewStack(kr, 0x0a0000fe)
	sb := NewStack(kb, 0x0a000002)

	mk := func(name string, k *kern.Kernel, s *Stack) *pipeIf {
		return &pipeIf{name: name, k: k, stk: s, mtu: 8 * units.KB, delay: 10 * units.Microsecond}
	}
	// Two links: A—R and R—B.
	ar, ra := mk("ar", ka, sa), mk("ra", kr, sr)
	ar.peer, ra.peer = ra, ar
	rb, br := mk("rb", kr, sr), mk("br", kb, sb)
	rb.peer, br.peer = br, rb

	sa.Routes.AddHost(sb.Addr, ar, 0) // A sends via R
	sr.Routes.AddHost(sb.Addr, rb, 0)
	sr.Routes.AddHost(sa.Addr, ra, 0)
	sb.Routes.AddHost(sa.Addr, br, 0) // B replies via R

	lis := sb.Listen(80)
	var got []byte
	data := pattern(100*1024, 5)
	eng.Go("srv", func(p *sim.Proc) {
		c := lis.Accept(p)
		got = recvAll(p, kb, c)
	})
	eng.Go("cli", func(p *sim.Proc) {
		ctx := ka.TaskCtx(p, ka.KernelTask)
		c, err := sa.Connect(ctx, sb.Addr, 80)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		sendAll(p, ka, c, data)
		c.Close(ka.TaskCtx(p, ka.KernelTask))
	})
	eng.Run()
	defer eng.KillAll()
	if len(got) != len(data) {
		t.Fatalf("got %d bytes via router, want %d", len(got), len(data))
	}
	if sr.Stats.IPForwarded == 0 {
		t.Fatal("router forwarded nothing")
	}
}

func TestTTLExpiryDropsPacket(t *testing.T) {
	r := newRig(t, 15)
	// Deliver a hand-built packet with TTL 1 addressed elsewhere: the
	// stack must not forward it.
	r.eng.Go("inject", func(p *sim.Proc) {
		hdr := wire.IPHdr{TotLen: wire.IPHdrLen, ID: 1, TTL: 1, Proto: 99,
			Src: r.sa.Addr, Dst: 0x0a0000aa}
		b := make([]byte, wire.IPHdrLen)
		hdr.Marshal(b)
		m := mbuf.NewCluster(b)
		m.MarkPktHdr(wire.IPHdrLen)
		r.sb.Input(r.kb.IntrCtx(p), m, r.ib)
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if r.sb.Stats.IPForwarded != 0 {
		t.Fatal("TTL-1 packet must not be forwarded")
	}
}

func TestBoundariesPreventCoalescing(t *testing.T) {
	r := newRig(t, 16)
	lis := r.sb.Listen(80)
	var srv *TCPConn
	r.eng.Go("srv", func(p *sim.Proc) {
		srv = lis.Accept(p)
		recvAll(p, r.kb, srv)
	})
	const writes, wsize = 16, 2048
	r.eng.Go("cli", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		c, err := r.sa.Connect(ctx, r.sb.Addr, 80)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		c.NoCoalesce = true
		for i := 0; i < writes; i++ {
			if err := sendAll(p, r.ka, c, pattern(wsize, byte(i))); err != nil {
				t.Errorf("send: %v", err)
			}
		}
		c.Close(r.ka.TaskCtx(p, r.ka.KernelTask))
	})
	r.eng.Run()
	defer r.eng.KillAll()
	// With NoCoalesce each 2KB write is its own segment even though the
	// MSS is ~8KB: at least `writes` data segments.
	if r.sa.Stats.TCPSegsOut < writes {
		t.Fatalf("segments out = %d, want ≥ %d (no coalescing)", r.sa.Stats.TCPSegsOut, writes)
	}
}

func TestWindowScalingCarries512KB(t *testing.T) {
	r := newRig(t, 17)
	lis := r.sb.Listen(80)
	var srv *TCPConn
	r.eng.Go("srv", func(p *sim.Proc) { srv = lis.Accept(p) })
	var cli *TCPConn
	r.eng.Go("cli", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		cli, _ = r.sa.Connect(ctx, r.sb.Addr, 80)
	})
	r.eng.Run()
	defer r.eng.KillAll()
	// B advertised its default 512KB receive window through the scaled
	// field; A must see it in full.
	if cli.sndWnd != DefaultWindow {
		t.Fatalf("advertised window = %v, want %v", cli.sndWnd, DefaultWindow)
	}
	_ = srv
}

func TestAbortSendsRst(t *testing.T) {
	r := newRig(t, 18)
	lis := r.sb.Listen(80)
	var srv *TCPConn
	r.eng.Go("srv", func(p *sim.Proc) {
		srv = lis.Accept(p)
		// Block reading; the peer will abort.
		srv.WaitRcvData(p)
	})
	r.eng.Go("cli", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		c, err := r.sa.Connect(ctx, r.sb.Addr, 80)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		p.Sleep(10 * units.Millisecond)
		c.Abort(r.ka.TaskCtx(p, r.ka.KernelTask))
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if srv == nil {
		t.Fatal("no accept")
	}
	if srv.State() != StateClosed || srv.Err != ErrConnReset {
		t.Fatalf("server state=%v err=%v, want reset teardown", srv.State(), srv.Err)
	}
}
