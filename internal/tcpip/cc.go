package tcpip

import (
	"fmt"

	"repro/internal/units"
)

// Pluggable congestion control. The window-math policy — how cwnd and
// ssthresh move on acknowledgements, losses and timeouts — lives behind
// congCtrl; the mechanics (duplicate-ACK counting, retransmission, RTT
// estimation, the retransmit timers) stay in tcpcong.go and the timer
// files, shared by every algorithm. The default is the stack's original
// Reno-vintage behavior, byte-identical to the pre-interface code; the
// DCTCP variant reacts to fabric ECN marks instead of waiting for loss.

// Congestion-control algorithm names (Stack.CC).
const (
	CCReno  = "reno"
	CCDctcp = "dctcp"
)

// ValidCC reports whether name selects a known congestion-control
// algorithm ("" selects the default, Reno).
func ValidCC(name string) bool {
	switch name {
	case "", CCReno, CCDctcp:
		return true
	}
	return false
}

// congCtrl is the window-math policy of one connection.
type congCtrl interface {
	name() string
	// ecnCapable marks outgoing data segments ECT so fabric hops may CE
	// them instead of dropping.
	ecnCapable() bool
	// init sets the initial window state once the MSS is known.
	init(c *TCPConn)
	// onAck applies window growth (and any ECN reaction) for a new
	// acknowledgement of acked bytes; ece reports the segment's ECN-echo
	// flag.
	onAck(c *TCPConn, acked units.Size, ece bool)
	// onLoss applies the multiplicative decrease for a 3-dupack fast
	// retransmit.
	onLoss(c *TCPConn)
	// onTimeout applies the decrease for a retransmission-timer fire.
	onTimeout(c *TCPConn)
}

// newCC builds the policy named by the stack's CC field; the name has been
// validated by the caller (ValidCC), so an unknown name is a programming
// error.
func newCC(name string) congCtrl {
	switch name {
	case "", CCReno:
		return renoCC{}
	case CCDctcp:
		return &dctcpCC{alpha: dctcpAlphaScale}
	}
	panic(fmt.Sprintf("tcpip: unknown congestion control %q", name))
}

// halveOnLoss is the classic Reno cut shared by both algorithms when real
// loss (not a mark) is detected: ssthresh to half the flight, floored at
// two segments.
func halveOnLoss(c *TCPConn) {
	flight := seqDiff(c.sndNxt, c.sndUna)
	half := flight / 2
	if half < 2*c.MaxSeg {
		half = 2 * c.MaxSeg
	}
	c.ssthresh = half
}

// renoCC is the stack's original 4.3BSD-Reno-vintage behavior.
type renoCC struct{}

func (renoCC) name() string     { return CCReno }
func (renoCC) ecnCapable() bool { return false }

func (renoCC) init(c *TCPConn) {
	c.cwnd = initialCwndSegs * c.MaxSeg
	c.ssthresh = c.SndLimit
}

func (renoCC) onAck(c *TCPConn, acked units.Size, ece bool) {
	c.openCwnd(acked)
}

func (renoCC) onLoss(c *TCPConn) {
	halveOnLoss(c)
	c.cwnd = c.ssthresh
}

func (renoCC) onTimeout(c *TCPConn) {
	halveOnLoss(c)
	if c.cwnd > 0 {
		c.cwnd = c.MaxSeg
	}
}

// DCTCP estimator constants: alpha is a fixed-point fraction scaled by
// dctcpAlphaScale, updated once per congestion window with gain 1/16
// (g = 1/2^dctcpGainShift), as in the DCTCP paper.
const (
	dctcpAlphaScale int64 = 1024
	dctcpGainShift        = 4
)

// dctcpCC reacts to the *fraction* of CE-marked acknowledgements: a window
// with few marks is cut a little, a fully marked window is cut in half —
// instead of Reno's halving on every loss event. The fabric marks frames
// whose hop queue crossed its threshold (hippi.SetECN), so incast bursts
// are absorbed with shallow queues and no RTO-driven collapse.
type dctcpCC struct {
	alpha       int64 // marked fraction estimate, scaled by dctcpAlphaScale
	ackedBytes  int64 // bytes acked this observation window
	markedBytes int64 // of those, bytes whose ACK carried ECE
}

func (*dctcpCC) name() string     { return CCDctcp }
func (*dctcpCC) ecnCapable() bool { return true }

func (d *dctcpCC) init(c *TCPConn) {
	c.cwnd = initialCwndSegs * c.MaxSeg
	c.ssthresh = c.SndLimit
	d.ackedBytes, d.markedBytes = 0, 0
}

func (d *dctcpCC) onAck(c *TCPConn, acked units.Size, ece bool) {
	d.ackedBytes += int64(acked)
	if ece {
		d.markedBytes += int64(acked)
	}
	// One observation window ≈ one cwnd of acknowledged bytes.
	if d.ackedBytes >= int64(c.cwnd) && d.ackedBytes > 0 {
		f := d.markedBytes * dctcpAlphaScale / d.ackedBytes
		d.alpha += (f - d.alpha) >> dctcpGainShift
		if d.markedBytes > 0 {
			cut := units.Size(int64(c.cwnd) * d.alpha / (2 * dctcpAlphaScale))
			c.cwnd -= cut
			if c.cwnd < 2*c.MaxSeg {
				c.cwnd = 2 * c.MaxSeg
			}
			c.ssthresh = c.cwnd
		}
		d.ackedBytes, d.markedBytes = 0, 0
	}
	if !ece {
		c.openCwnd(acked)
	}
}

func (d *dctcpCC) onLoss(c *TCPConn) {
	// Real loss still halves, as DCTCP specifies.
	halveOnLoss(c)
	c.cwnd = c.ssthresh
}

func (d *dctcpCC) onTimeout(c *TCPConn) {
	halveOnLoss(c)
	if c.cwnd > 0 {
		c.cwnd = c.MaxSeg
	}
}
