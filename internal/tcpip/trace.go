package tcpip

import (
	"fmt"
	"strings"

	"repro/internal/mbuf"
	"repro/internal/units"
	"repro/internal/wire"
)

// Packet tracing: a tcpdump-style observation hook. Install a function on
// Stack.Tracer to see every packet the stack emits or accepts; the
// formatters below render events in a familiar one-line style. Tracing
// reads only headers (never payload descriptors), so it works identically
// on the single-copy and traditional paths.

// TraceDir distinguishes input from output events.
type TraceDir int

// Trace directions.
const (
	TraceOut TraceDir = iota
	TraceIn
)

func (d TraceDir) String() string {
	if d == TraceOut {
		return "out"
	}
	return "in"
}

// TraceEvent describes one packet crossing the stack boundary.
type TraceEvent struct {
	Time units.Time
	Dir  TraceDir
	IP   wire.IPHdr
	// TCP is set for TCP segments (UDP for datagrams).
	TCP *wire.TCPHdr
	UDP *wire.UDPHdr
	// PayloadLen is the transport payload length.
	PayloadLen units.Size
	// Descriptor reports whether the chain carried M_UIO/M_WCAB mbufs.
	Descriptor bool
	// Frag marks an IP fragment (outbound as cut, inbound before
	// reassembly); FragOff and MF mirror the IP header. Only a first
	// fragment (FragOff 0) carries a parsed transport header.
	Frag    bool
	FragOff units.Size
	MF      bool
}

// String renders the event tcpdump-style.
func (e TraceEvent) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v %-3v %v > %v", e.Time, e.Dir, e.IP.Src, e.IP.Dst)
	switch {
	case e.TCP != nil:
		var flags []string
		for _, f := range []struct {
			bit  uint16
			name string
		}{{wire.FlagSYN, "S"}, {wire.FlagFIN, "F"}, {wire.FlagRST, "R"},
			{wire.FlagPSH, "P"}, {wire.FlagACK, "."}} {
			if e.TCP.Flags&f.bit != 0 {
				flags = append(flags, f.name)
			}
		}
		fmt.Fprintf(&b, " tcp %d>%d [%s] seq %d ack %d win %d len %v",
			e.TCP.SPort, e.TCP.DPort, strings.Join(flags, ""),
			e.TCP.Seq, e.TCP.Ack, e.TCP.Wnd, e.PayloadLen)
	case e.UDP != nil:
		fmt.Fprintf(&b, " udp %d>%d len %v", e.UDP.SPort, e.UDP.DPort, e.PayloadLen)
	default:
		fmt.Fprintf(&b, " proto %d len %v", e.IP.Proto, e.PayloadLen)
	}
	if e.Frag {
		more := ""
		if e.MF {
			more = "+"
		}
		fmt.Fprintf(&b, " frag id %d off %d%s", e.IP.ID, int64(e.FragOff), more)
	}
	if e.Descriptor {
		b.WriteString(" (descriptor)")
	}
	return b.String()
}

// trace emits an event if a tracer is installed. m is the chain whose
// first mbuf begins with the transport header (IP already parsed/stripped
// conceptually); hdrBytes supplies those header bytes.
func (s *Stack) trace(dir TraceDir, iph wire.IPHdr, m *mbuf.Mbuf) {
	if s.Tracer == nil {
		return
	}
	ev := TraceEvent{
		Time:       s.K.Eng.Now(),
		Dir:        dir,
		IP:         iph,
		Descriptor: mbuf.HasDescriptors(m),
	}
	if iph.IsFragment() {
		ev.Frag, ev.FragOff, ev.MF = true, iph.FragOff, iph.MF
	}
	total := mbuf.ChainLen(m)
	if ev.Frag && ev.FragOff > 0 {
		// A non-first fragment starts mid-payload: no transport header to
		// parse.
		ev.PayloadLen = total
		s.Tracer(ev)
		return
	}
	switch iph.Proto {
	case wire.ProtoTCP:
		if m.Len() >= wire.TCPHdrLen {
			if h, err := wire.ParseTCPHdr(m.Bytes()); err == nil {
				ev.TCP = &h
				ev.PayloadLen = total - wire.TCPHdrLen
			}
		}
	case wire.ProtoUDP:
		if m.Len() >= wire.UDPHdrLen {
			if h, err := wire.ParseUDPHdr(m.Bytes()); err == nil {
				ev.UDP = &h
				ev.PayloadLen = total - wire.UDPHdrLen
			}
		}
	default:
		ev.PayloadLen = total
	}
	s.Tracer(ev)
}
