package tcpip

import (
	"bytes"
	"testing"

	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

func TestUDPFragmentationRoundTrip(t *testing.T) {
	r := newRig(t, 60)
	rx, _ := r.sb.UDPBind(9000)
	var got []byte
	r.eng.Go("rx", func(p *sim.Proc) {
		d := rx.RecvFrom(p)
		if d != nil {
			got = mbuf.Materialize(d.Chain)
		}
	})
	data := pattern(48*1024, 3) // far beyond the 8KB pipe MTU
	r.eng.Go("tx", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		tx, _ := r.sa.UDPBind(0)
		var chain *mbuf.Mbuf
		for off := 0; off < len(data); off += int(mbuf.MCLBYTES) {
			e := off + int(mbuf.MCLBYTES)
			if e > len(data) {
				e = len(data)
			}
			chain = mbuf.Cat(chain, mbuf.NewCluster(data[off:e]))
		}
		tx.SendTo(ctx, chain, units.Size(len(data)), r.sb.Addr, 9000)
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if !bytes.Equal(got, data) {
		t.Logf("A stats: %+v", r.sa.Stats)
		t.Logf("B stats: %+v", r.sb.Stats)
		t.Fatalf("reassembled datagram mismatch: got %d bytes", len(got))
	}
	if r.sa.Stats.IPFragsOut < 6 {
		t.Fatalf("fragments out = %d, want ≥ 6", r.sa.Stats.IPFragsOut)
	}
	if r.sb.Stats.IPReassembled != 1 {
		t.Fatalf("reassembled = %d, want 1", r.sb.Stats.IPReassembled)
	}
	if len(r.sb.frags) != 0 {
		t.Fatal("reassembly state leaked")
	}
}

// injectFragment hand-delivers one fragment to a stack.
func injectFragment(p *sim.Proc, s *Stack, from *pipeIf, iph wire.IPHdr, payload []byte) {
	b := make([]byte, int(wire.IPHdrLen)+len(payload))
	iph.TotLen = wire.IPHdrLen + units.Size(len(payload))
	iph.Marshal(b)
	copy(b[wire.IPHdrLen:], payload)
	m := mbuf.NewCluster(b)
	m.MarkPktHdr(units.Size(len(b)))
	s.Input(s.K.IntrCtx(p), m, from)
}

func TestReassemblyOutOfOrder(t *testing.T) {
	r := newRig(t, 61)
	rx, _ := r.sb.UDPBind(9000)
	var got []byte
	r.eng.Go("rx", func(p *sim.Proc) {
		if d := rx.RecvFrom(p); d != nil {
			got = mbuf.Materialize(d.Chain)
		}
	})
	// Build a 3-fragment UDP datagram by hand and deliver 2,0,1.
	payload := pattern(48, 9)
	seg := make([]byte, wire.UDPHdrLen+units.Size(len(payload)))
	uh := wire.UDPHdr{SPort: 7, DPort: 9000, Len: units.Size(len(seg))}
	uh.Marshal(seg) // checksum 0: unchecked
	copy(seg[wire.UDPHdrLen:], payload)

	base := wire.IPHdr{ID: 42, TTL: 9, Proto: wire.ProtoUDP, Src: r.sa.Addr, Dst: r.sb.Addr}
	frag := func(off, end int, mf bool) (wire.IPHdr, []byte) {
		h := base
		h.FragOff = units.Size(off)
		h.MF = mf
		return h, seg[off:end]
	}
	r.eng.Go("inject", func(p *sim.Proc) {
		h2, p2 := frag(32, len(seg), false)
		injectFragment(p, r.sb, r.ib, h2, p2)
		h0, p0 := frag(0, 16, true)
		injectFragment(p, r.sb, r.ib, h0, p0)
		h1, p1 := frag(16, 32, true)
		injectFragment(p, r.sb, r.ib, h1, p1)
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if !bytes.Equal(got, payload) {
		t.Fatalf("out-of-order reassembly failed: %d bytes", len(got))
	}
}

func TestReassemblyDuplicateFragmentIgnored(t *testing.T) {
	r := newRig(t, 62)
	rx, _ := r.sb.UDPBind(9000)
	var got []byte
	r.eng.Go("rx", func(p *sim.Proc) {
		if d := rx.RecvFrom(p); d != nil {
			got = mbuf.Materialize(d.Chain)
		}
	})
	payload := pattern(40, 4)
	seg := make([]byte, wire.UDPHdrLen+units.Size(len(payload)))
	uh := wire.UDPHdr{SPort: 7, DPort: 9000, Len: units.Size(len(seg))}
	uh.Marshal(seg)
	copy(seg[wire.UDPHdrLen:], payload)
	base := wire.IPHdr{ID: 43, TTL: 9, Proto: wire.ProtoUDP, Src: r.sa.Addr, Dst: r.sb.Addr}
	r.eng.Go("inject", func(p *sim.Proc) {
		h0 := base
		h0.MF = true
		injectFragment(p, r.sb, r.ib, h0, seg[:16])
		injectFragment(p, r.sb, r.ib, h0, seg[:16]) // duplicate
		h1 := base
		h1.FragOff = 16
		injectFragment(p, r.sb, r.ib, h1, seg[16:])
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if !bytes.Equal(got, payload) {
		t.Fatalf("duplicate fragment broke reassembly: %d bytes", len(got))
	}
}

func TestReassemblyTimeoutEvicts(t *testing.T) {
	r := newRig(t, 63)
	r.sb.UDPBind(9000)
	base := wire.IPHdr{ID: 44, TTL: 9, Proto: wire.ProtoUDP, Src: r.sa.Addr, Dst: r.sb.Addr}
	r.eng.Go("inject", func(p *sim.Proc) {
		h := base
		h.MF = true
		injectFragment(p, r.sb, r.ib, h, make([]byte, 16)) // never completed
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if r.sb.Stats.IPReassTimeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", r.sb.Stats.IPReassTimeouts)
	}
	if len(r.sb.frags) != 0 {
		t.Fatal("stale reassembly state retained")
	}
}

func TestFragmentedUDPChecksumCoversWholeDatagram(t *testing.T) {
	// Corrupt one middle fragment's payload in flight: the software
	// checksum over the reassembled datagram must reject it.
	r := newRig(t, 64)
	rx, _ := r.sb.UDPBind(9000)
	delivered := false
	r.eng.Go("rx", func(p *sim.Proc) {
		rx.RecvFrom(p)
		delivered = true
	})
	n := 0
	r.ia.drop = func(_ int, data []byte) bool {
		if len(data) > 4000 {
			n++
			if n == 2 {
				data[len(data)-7] ^= 0x08
			}
		}
		return false
	}
	data := pattern(40*1024, 5)
	r.eng.Go("tx", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		tx, _ := r.sa.UDPBind(0)
		var chain *mbuf.Mbuf
		for off := 0; off < len(data); off += int(mbuf.MCLBYTES) {
			e := off + int(mbuf.MCLBYTES)
			if e > len(data) {
				e = len(data)
			}
			chain = mbuf.Cat(chain, mbuf.NewCluster(data[off:e]))
		}
		tx.SendTo(ctx, chain, units.Size(len(data)), r.sb.Addr, 9000)
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if delivered {
		t.Fatal("corrupted reassembled datagram delivered")
	}
	if r.sb.Stats.UDPCsumErrors != 1 {
		t.Fatalf("csum errors = %d, want 1", r.sb.Stats.UDPCsumErrors)
	}
}

func TestUDPOversizeDatagramRejected(t *testing.T) {
	r := newRig(t, 65)
	r.eng.Go("tx", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		tx, _ := r.sa.UDPBind(0)
		big := make([]byte, 70*1024) // beyond IPv4's 64KB ceiling
		var chain *mbuf.Mbuf
		for off := 0; off < len(big); off += int(mbuf.MCLBYTES) {
			e := off + int(mbuf.MCLBYTES)
			if e > len(big) {
				e = len(big)
			}
			chain = mbuf.Cat(chain, mbuf.NewCluster(big[off:e]))
		}
		tx.SendTo(ctx, chain, units.Size(len(big)), r.sb.Addr, 9000)
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if r.sa.Stats.UDPOversize != 1 {
		t.Fatalf("oversize = %d, want 1", r.sa.Stats.UDPOversize)
	}
	if r.sa.Stats.IPFragsOut != 0 {
		t.Fatal("oversize datagram must not be transmitted")
	}
}
