package tcpip

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

func TestFastRetransmitRecoversWithoutTimeout(t *testing.T) {
	r := newRig(t, 40)
	// Drop exactly one mid-stream data segment; the duplicate ACKs from
	// subsequent segments must trigger fast retransmission well before
	// the retransmission timer would fire.
	dropped := false
	n := 0
	r.ia.drop = func(_ int, data []byte) bool {
		if len(data) < 4000 {
			return false
		}
		n++
		if n == 10 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	data := pattern(512*1024, 1)
	got := runTransfer(t, r, data)
	if len(got) != len(data) {
		t.Fatalf("got %d bytes, want %d", len(got), len(data))
	}
	if !dropped {
		t.Fatal("vacuous: nothing dropped")
	}
	if r.sa.Stats.TCPFastRetransmits == 0 {
		t.Fatal("expected a fast retransmission")
	}
}

func TestRTTEstimatorAdapts(t *testing.T) {
	r := newRig(t, 41)
	// Links have 20 µs delay; after a transfer the smoothed RTT must be
	// far below the 200 ms initial RTO.
	lis := r.sb.Listen(80)
	var cli *TCPConn
	r.eng.Go("srv", func(p *sim.Proc) {
		c := lis.Accept(p)
		recvAll(p, r.kb, c)
	})
	r.eng.Go("cli", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		var err error
		cli, err = r.sa.Connect(ctx, r.sb.Addr, 80)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		sendAll(p, r.ka, cli, pattern(256*1024, 2))
		cli.Close(r.ka.TaskCtx(p, r.ka.KernelTask))
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if cli.srtt == 0 {
		t.Fatal("no RTT samples taken")
	}
	if cli.srtt > 50*units.Millisecond {
		t.Fatalf("srtt = %v, implausibly high for a 20µs link", cli.srtt)
	}
	if cli.rto < minRTO {
		t.Fatalf("rto = %v below floor", cli.rto)
	}
}

func TestSlowStartLimitsInitialBurst(t *testing.T) {
	r := newRig(t, 42)
	// Count data frames in flight before the first ACK returns: must be
	// bounded by the initial congestion window, not the 512 KB advertised
	// window.
	var firstBurst int
	sawAck := false
	r.ia.drop = func(_ int, data []byte) bool {
		if len(data) > 4000 && !sawAck {
			firstBurst++
		}
		return false
	}
	r.ib.drop = func(_ int, data []byte) bool {
		// Only ACKs sent after data started flowing end the window.
		if len(data) < 1000 && firstBurst > 0 {
			sawAck = true
		}
		return false
	}
	runTransfer(t, r, pattern(512*1024, 3))
	if firstBurst == 0 {
		t.Fatal("no initial burst observed")
	}
	// initialCwndSegs plus a little slack for the measurement window.
	if firstBurst > initialCwndSegs+2 {
		t.Fatalf("initial burst = %d segments, want ≤ %d (slow start)",
			firstBurst, initialCwndSegs+2)
	}
}

func TestCwndGrowsAndCapsAtWindow(t *testing.T) {
	r := newRig(t, 43)
	lis := r.sb.Listen(80)
	var cli *TCPConn
	r.eng.Go("srv", func(p *sim.Proc) {
		c := lis.Accept(p)
		recvAll(p, r.kb, c)
	})
	r.eng.Go("cli", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		var err error
		cli, err = r.sa.Connect(ctx, r.sb.Addr, 80)
		if err != nil {
			return
		}
		sendAll(p, r.ka, cli, pattern(2*1024*1024, 4))
		cli.Close(r.ka.TaskCtx(p, r.ka.KernelTask))
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if cli.cwnd <= initialCwndSegs*cli.MaxSeg {
		t.Fatalf("cwnd = %v never grew past initial %v", cli.cwnd, initialCwndSegs*cli.MaxSeg)
	}
	if cli.cwnd > cli.SndLimit {
		t.Fatalf("cwnd = %v exceeds the send buffer bound %v", cli.cwnd, cli.SndLimit)
	}
}

func TestTimeoutShrinksCwnd(t *testing.T) {
	r := newRig(t, 44)
	// Kill the link entirely for a stretch mid-transfer so the rtx timer
	// (not fast retransmit) fires.
	blackout := false
	r.ia.drop = func(n int, data []byte) bool {
		if n == 20 {
			blackout = true
		}
		if n == 40 {
			blackout = false
		}
		return blackout
	}
	var minCwnd units.Size = 1 << 40
	r.sa.Tracer = func(e TraceEvent) {
		if e.Dir != TraceOut {
			return
		}
		for _, c := range r.sa.Conns() {
			if c.cwnd > 0 && c.cwnd < minCwnd {
				minCwnd = c.cwnd
			}
		}
	}
	data := pattern(1024*1024, 5)
	got := runTransfer(t, r, data)
	if len(got) != len(data) {
		t.Fatalf("got %d bytes", len(got))
	}
	if r.sa.Stats.TCPRetransmits == 0 {
		t.Fatal("expected timer retransmissions through the blackout")
	}
	// The multiplicative decrease must have bitten at least once.
	if minCwnd > 2*(8*units.KB) {
		t.Fatalf("min cwnd = %v, timeout never shrank the window", minCwnd)
	}
}

func TestDupAckCounterResetsOnNewAck(t *testing.T) {
	r := newRig(t, 45)
	// Two isolated single drops far apart: each should cost exactly one
	// fast retransmit (the counter must not accumulate across recoveries).
	n := 0
	r.ia.drop = func(_ int, data []byte) bool {
		if len(data) < 4000 {
			return false
		}
		n++
		return n == 8 || n == 40
	}
	data := pattern(1024*1024, 6)
	got := runTransfer(t, r, data)
	if len(got) != len(data) {
		t.Fatalf("got %d bytes", len(got))
	}
	fr := r.sa.Stats.TCPFastRetransmits
	if fr < 1 || fr > 3 {
		t.Fatalf("fast retransmits = %d, want 1-3 for two isolated drops", fr)
	}
}

func TestPiggybackedFin(t *testing.T) {
	// The FIN may ride the last data segment; the receiver must deliver
	// all bytes and see EOF.
	r := newRig(t, 46)
	finWithData := false
	r.ia.drop = func(_ int, data []byte) bool {
		if len(data) > int(wire.IPHdrLen+wire.TCPHdrLen) {
			if h, err := wire.ParseTCPHdr(data[wire.IPHdrLen:]); err == nil &&
				h.Flags&wire.FlagFIN != 0 {
				finWithData = true
			}
		}
		return false
	}
	data := pattern(16*1024, 7)
	got := runTransfer(t, r, data)
	if len(got) != len(data) {
		t.Fatalf("got %d bytes", len(got))
	}
	_ = finWithData // informational: either form is legal
}
