package tcpip

import (
	"repro/internal/kern"
	"repro/internal/obs"
	"repro/internal/obs/netobs"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

// TCP timers. Timer expirations are hardware (clock) events; the handlers
// run in interrupt context via the kernel's interrupt daemon, like the
// softclock-driven tcp_slowtimo of the original stack.

// armRtx (re)starts the retransmission timer for the oldest outstanding
// data.
func (c *TCPConn) armRtx() {
	c.rtxGen++
	gen := c.rtxGen
	c.rtxArmed = true
	c.stk.K.Eng.AfterKind(c.rto, sim.KindTimer, func() {
		if gen != c.rtxGen || c.state == StateClosed {
			return
		}
		c.stk.K.PostIntr("tcp-rtx", func(p *sim.Proc) {
			c.stk.Splnet(p)
			defer c.stk.Splx()
			if gen != c.rtxGen || c.state == StateClosed {
				return
			}
			c.rtxTimeout(c.stk.K.IntrCtx(p).In("tcp_timer"))
		})
	})
}

// cancelRtx stops the retransmission timer.
func (c *TCPConn) cancelRtx() {
	c.rtxGen++
	c.rtxArmed = false
}

// rtxTimeout retransmits go-back-N from the last acknowledged byte with
// exponential backoff.
func (c *TCPConn) rtxTimeout(ctx kern.Ctx) {
	c.stk.ctrRtoFires.Inc()
	c.nobs.Rtx(netobs.RtxRTO)
	if crit := c.stk.crit; crit != nil {
		// The dead time since the last forward progress (the previous
		// ACK, or connection start) is charged to the RTO.
		ev := crit.Ev(c.critAck, obs.CauseRTO, "rto_fire", c.stk.K.Name, int(c.key.lport), 0, 0)
		c.critTrig, c.critTrigC = ev, obs.CauseCPU
	}
	if c.userTimedOut() {
		return
	}
	c.retries++
	if c.retries > maxRetries {
		c.teardown(ErrConnTimeout)
		return
	}
	c.rto *= 2
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
	switch c.state {
	case StateSynSent:
		c.sendControl(ctx, c.iss, wire.FlagSYN)
		c.armRtx()
	case StateSynRcvd:
		c.sendControl(ctx, c.iss, wire.FlagSYN|wire.FlagACK)
		c.armRtx()
	default:
		// Multiplicative decrease, then rewind and resend; the driver
		// retransmits M_WCAB data from network memory with a header-only
		// SDMA (Section 4.3).
		c.onRtxTimeout()
		c.sndNxt = c.sndUna
		c.finSent = false
		c.Output(ctx)
	}
	c.noteNetObs()
}

// armPersist starts the zero-window probe timer.
func (c *TCPConn) armPersist() {
	if c.persistOn || c.state == StateClosed {
		return
	}
	c.stk.ctrWindowStalls.Inc()
	c.persistOn = true
	c.persistGen++
	gen := c.persistGen
	c.stk.K.Eng.AfterKind(persistInterval, sim.KindTimer, func() {
		if gen != c.persistGen {
			return
		}
		c.stk.K.PostIntr("tcp-persist", func(p *sim.Proc) {
			c.stk.Splnet(p)
			defer c.stk.Splx()
			if gen != c.persistGen || c.state == StateClosed {
				return
			}
			c.persistOn = false
			c.persistProbe(c.stk.K.IntrCtx(p).In("tcp_timer"))
		})
	})
}

// cancelPersist stops the probe timer.
func (c *TCPConn) cancelPersist() {
	c.persistGen++
	c.persistOn = false
}

// userTimedOut applies the optional user-timeout bound: with send data
// pending and no forward progress for userTimeout, the connection is torn
// down with ErrTimeout. Called from the retransmission and persist timers;
// reports true when the connection was torn down.
func (c *TCPConn) userTimedOut() bool {
	if c.userTimeout <= 0 {
		return false
	}
	pending := c.sndLen > 0 || c.finSent || c.state == StateSynSent || c.state == StateSynRcvd
	if !pending || c.stk.K.Eng.Now()-c.progressAt < c.userTimeout {
		return false
	}
	c.stk.Stats.TCPLivenessDrops++
	c.teardown(ErrTimeout)
	return true
}

// persistProbe forces one byte into a zero window so a lost window update
// cannot deadlock the connection.
func (c *TCPConn) persistProbe(ctx kern.Ctx) {
	if crit := c.stk.crit; crit != nil {
		ev := crit.Ev(c.critAck, obs.CausePersist, "persist_probe", c.stk.K.Name, int(c.key.lport), 0, 0)
		c.critTrig, c.critTrigC = ev, obs.CauseCPU
	}
	if c.userTimedOut() {
		return
	}
	off := seqDiff(c.sndNxt, c.sndUna)
	if c.finSent && off > 0 {
		off--
	}
	avail := c.sndLen - off
	if avail == 0 || c.sndWnd > off {
		// Window opened (or nothing to probe with) in the meantime.
		c.Output(ctx)
		return
	}
	probe := units.Size(1)
	c.nobs.Rtx(netobs.RtxPersist)
	c.sendSegment(ctx, c.sndNxt, probe, wire.FlagACK)
	c.sndNxt += uint32(probe)
	if seqGT(c.sndNxt, c.sndMax) {
		c.sndMax = c.sndNxt
	}
	c.armRtx()
}

// armDelAck bounds how long an acknowledgement may be withheld.
func (c *TCPConn) armDelAck() {
	c.delAckGen++
	gen := c.delAckGen
	c.stk.K.Eng.AfterKind(delAckTimeout, sim.KindTimer, func() {
		if gen != c.delAckGen {
			return
		}
		c.stk.K.PostIntr("tcp-delack", func(p *sim.Proc) {
			c.stk.Splnet(p)
			defer c.stk.Splx()
			if gen != c.delAckGen || c.state == StateClosed || c.ackPending == 0 {
				return
			}
			c.ackNow = true
			if c.stk.crit != nil {
				// The ACK was withheld by the delayed-ACK policy; charge
				// the wait since the data that earned it arrived.
				c.critTrig, c.critTrigC = c.critRcv, obs.CauseDelAck
			}
			c.Output(c.stk.K.IntrCtx(p).In("tcp_timer"))
		})
	})
}

// persistInterval is the zero-window probe period.
const persistInterval = 500 * units.Millisecond

// armKeepAlive schedules the next keepalive check: at the idle-threshold
// expiry when no probe is outstanding, or one probe interval ahead while
// probing. A no-op unless SetKeepAlive configured the connection.
func (c *TCPConn) armKeepAlive() {
	if c.kaIdle <= 0 || c.state == StateClosed {
		return
	}
	c.kaGen++
	gen := c.kaGen
	d := c.kaIntvl
	if c.kaProbes == 0 {
		if idle := c.stk.K.Eng.Now() - c.lastRcvd; idle < c.kaIdle {
			d = c.kaIdle - idle
		}
	}
	c.stk.K.Eng.AfterKind(d, sim.KindTimer, func() {
		if gen != c.kaGen || c.state == StateClosed {
			return
		}
		c.stk.K.PostIntr("tcp-keepalive", func(p *sim.Proc) {
			c.stk.Splnet(p)
			defer c.stk.Splx()
			if gen != c.kaGen || c.state == StateClosed {
				return
			}
			c.keepAliveTimeout(c.stk.K.IntrCtx(p).In("tcp_timer"))
		})
	})
}

// keepAliveTimeout probes an idle peer or declares it dead. The probe is a
// zero-length segment one sequence number below the receive window; an
// alive peer answers it with a bare ACK (segInput's below-window reply),
// which resets the probe count via lastRcvd.
func (c *TCPConn) keepAliveTimeout(ctx kern.Ctx) {
	if c.state != StateEstablished && c.state != StateCloseWait &&
		c.state != StateFinWait1 && c.state != StateFinWait2 {
		// Handshake and final-teardown states: the retransmission timer
		// owns liveness there.
		c.armKeepAlive()
		return
	}
	if idle := c.stk.K.Eng.Now() - c.lastRcvd; idle < c.kaIdle {
		// The peer spoke since the timer was armed: back to idle watch.
		c.kaProbes = 0
		c.armKeepAlive()
		return
	}
	if c.kaProbes >= c.kaCount {
		c.stk.Stats.TCPLivenessDrops++
		c.teardown(ErrTimeout)
		return
	}
	c.kaProbes++
	c.stk.Stats.TCPKaProbes++
	c.nobs.Rtx(netobs.RtxKeepalive)
	c.sendControl(ctx, c.sndNxt-1, wire.FlagACK)
	c.armKeepAlive()
}
