package tcpip

import (
	"fmt"

	"repro/internal/checksum"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/obs"
	"repro/internal/obs/ledger"
	"repro/internal/units"
	"repro/internal/wire"
)

// Output drives the send side: it emits as many segments as the peer's
// window and the send buffer allow, plus any pending pure ACK or FIN. It
// is the Net2 tcp_output analogue and runs in either process context
// (after a write) or interrupt context (after an ACK opens the window).
func (c *TCPConn) Output(ctx kern.Ctx) {
	if c.state == StateClosed || c.state == StateSynSent || c.state == StateSynRcvd {
		return
	}
	defer c.noteNetObs()
	for {
		off := seqDiff(c.sndNxt, c.sndUna)
		if c.finSent && off > 0 {
			off-- // the FIN's sequence slot holds no buffer data
		}
		avail := c.sndLen - off
		if avail < 0 {
			panic(fmt.Sprintf("tcpip: negative avail: sndUna=%d sndNxt=%d sndLen=%v finSent=%v state=%v",
				c.sndUna, c.sndNxt, c.sndLen, c.finSent, c.state))
		}
		var seglen units.Size
		wnd := c.sendWindow()
		if wnd > off {
			seglen = wnd - off
			if seglen > avail {
				seglen = avail
			}
			if seglen > c.MaxSeg {
				seglen = c.MaxSeg
			}
			seglen = c.capAtBoundary(c.sndNxt, seglen)
		}
		// Zero advertised window with data pending: let the persist
		// timer probe (a congestion-closed window recovers via ACKs, not
		// probes).
		if seglen == 0 && avail > 0 && c.sndWnd <= off {
			c.armPersist()
		}

		sendFin := c.closePending && !c.finSent && seglen == avail &&
			(c.state == StateFinWait1 || c.state == StateLastAck)

		if seglen == 0 && !sendFin && !c.ackNow {
			return
		}

		flags := wire.FlagACK
		if sendFin {
			flags |= wire.FlagFIN
		}
		if seglen > 0 && seglen == avail {
			flags |= wire.FlagPSH
		}
		c.sendSegment(ctx, c.sndNxt, seglen, flags)
		if seglen > 0 && c.sndNxt == c.sndMax {
			// Fresh data, not a retransmission: time it (Karn's rule).
			c.startRTTSample(c.sndNxt + uint32(seglen))
		}
		c.sndNxt += uint32(seglen)
		if sendFin {
			c.sndNxt++
			c.finSent = true
		}
		if seqGT(c.sndNxt, c.sndMax) {
			c.sndMax = c.sndNxt
		}
		if seglen > 0 || sendFin {
			c.armRtx()
		}
		c.ackNow = false
		c.ackPending = 0
		if seglen == 0 && !sendFin {
			return // pure ACK sent; nothing more to move
		}
	}
}

// sendControl emits a data-less control segment (SYN, SYN|ACK, bare ACK
// during handshake).
func (c *TCPConn) sendControl(ctx kern.Ctx, seq uint32, flags uint16) {
	c.sendSegmentRaw(ctx, seq, 0, flags, nil)
}

// sendSegment emits one segment carrying seglen bytes starting at sequence
// seq, cutting the data symbolically out of the send buffer (the paper's
// "search the transmit queue for a block of data at a specific offset",
// which must cope with chains mixing regular, M_UIO, and M_WCAB mbufs).
func (c *TCPConn) sendSegment(ctx kern.Ctx, seq uint32, seglen units.Size, flags uint16) {
	var data *mbuf.Mbuf
	if seglen > 0 {
		data = mbuf.CopyRange(c.sndBuf, seqDiff(seq, c.sndUna), seglen)
		if seqLT(seq, c.sndMax) {
			c.stk.Stats.TCPRetransmits++
		}
	}
	c.sendSegmentRaw(ctx, seq, seglen, flags, data)
}

// sendSegmentRaw builds the header, arranges checksumming (outboard when
// the route's interface supports it, software otherwise), and hands the
// packet to IP.
func (c *TCPConn) sendSegmentRaw(ctx kern.Ctx, seq uint32, seglen units.Size, flags uint16, data *mbuf.Mbuf) {
	ctx = ctx.In("tcp_output").WithFlow(int(c.key.lport))
	// Data-touch provenance for data segments: the stream byte range this
	// packet carries (data byte 0 is sequence iss+1), the retransmit flag,
	// and the sosend descriptor the bytes came from.
	var prov *ledger.Prov
	if c.stk.K.Led != nil && seglen > 0 {
		prov = &ledger.Prov{
			Flow:       int(c.key.lport),
			Off:        seqDiff(seq, c.iss) - 1,
			Len:        seglen,
			PayloadOff: wire.LinkHdrLen + wire.IPHdrLen + wire.TCPHdrLen,
			Desc:       firstDescID(data),
			Rtx:        seqLT(seq, c.sndMax),
		}
	}
	// Open a data-path span for data segments. A fresh segment's span is
	// backdated to when its first byte was enqueued (the socket stage); a
	// retransmission starts now and is tagged.
	var span *obs.Span
	if tr := c.stk.tr; tr != nil && seglen > 0 {
		rtx := seqLT(seq, c.sndMax)
		if t, ok := c.enqueueTime(seq); ok && !rtx {
			span = tr.StartSpanAt(c.stk.K.Name, t)
			span.EnterAt(obs.StageSocket, t)
		} else {
			span = tr.StartSpan(c.stk.K.Name)
		}
		if rtx {
			span.MarkRetransmit()
		}
		span.SetFlow(int(c.key.lport))
		span.SetRange(int64(seqDiff(seq, c.iss))-1, int64(seglen))
		span.SetDesc(firstDescID(data))
		span.Enter(obs.StagePacketize)
	}
	if crit := c.stk.crit; crit != nil {
		if span != nil {
			// The segment could be cut once its data was enqueued (the
			// writer's event, via the queue edge: time the bytes sat in the
			// send buffer) AND its trigger fired (append, ACK, window open,
			// timer); the later of the two binds.
			span.SetCritCur(c.critEvFor(seq))
			span.CritEvJoin(obs.CauseQueue, c.critTrig, c.critTrigC, "tcp_output")
		} else {
			// Data-less segment (pure ACK, control): open a silent carrier
			// span so the ACK's causal chain rides the wire with it.
			span = c.stk.tr.StartCarrier(c.stk.K.Name)
			span.SetFlow(int(c.key.lport))
			span.SetCritCur(c.critTrig)
			span.CritEv(c.critTrigC, "ack_gen")
		}
		// Later segments of the same burst queue behind this one's CPU.
		c.critTrig, c.critTrigC = span.CritCur(), obs.CauseCPU
	}
	if c.ceSeen {
		// Echo the current congestion-experienced state back to the sender;
		// DCTCP's estimator works on the echoed fraction of acknowledged
		// bytes, so the echo persists until an unmarked data segment arrives.
		flags |= wire.FlagECE
	}
	singleCopy, _ := c.stk.RouteCaps(c.key.raddr)
	segTotal := wire.TCPHdrLen + seglen
	wnd := c.rcvSpace()
	hdr := wire.TCPHdr{
		SPort: c.key.lport,
		DPort: c.key.rport,
		Seq:   seq,
		Ack:   c.rcvNxt,
		Flags: flags,
		Wnd:   wire.ScaleWindow(wnd),
	}
	c.rcvAdvertised = wnd

	ps := pseudoSum(c.stk.Addr, c.key.raddr, wire.ProtoTCP, segTotal)
	hb := make([]byte, wire.TCPHdrLen)
	var phdr *mbuf.Hdr

	useHW := singleCopy && seglen > 0
	if useHW {
		// Outboard checksumming (Section 4.3): the host covers the TCP
		// header and pseudo-header with a seed placed in the checksum
		// field; the CAB sums the payload during the SDMA into network
		// memory and combines.
		hdr.Csum = 0
		hdr.Marshal(hb)
		seed := checksum.Fold(checksum.Add(ps, checksum.Sum(hb)))
		hdr.Csum = seed
		hdr.Marshal(hb)
		phdr = &mbuf.Hdr{
			NeedCsum: true,
			CsumOff:  wire.TCPCsumOff,
			CsumSkip: wire.TCPHdrLen,
			CsumSeed: uint32(seed),
		}
		seqCopy, lenCopy := seq, seglen
		phdr.OnOutboard = func(w *mbuf.WCAB) { c.onOutboard(seqCopy, lenCopy, w) }
	} else {
		// Software checksum: the CPU reads the segment (this is the
		// per-byte cost the single-copy path eliminates).
		hdr.Csum = 0
		hdr.Marshal(hb)
		sum := checksum.Add(ps, checksum.Sum(hb))
		if seglen > 0 {
			buf := make([]byte, seglen)
			mbuf.ReadRange(data, 0, seglen, buf)
			// The checksum read's cache working set is the retransmit
			// queue the segment was cut from: with a large window the
			// buffered kernel data cycles through the cache (the paper's
			// Section 7.2 observation that a smaller TCP window raises
			// efficiency).
			region := c.sndLen
			if region < seglen {
				region = seglen
			}
			csCtx := ctx
			if prov != nil {
				// The buffer is payload only: offset 0 is stream byte
				// prov.Off.
				csCtx = ctx.OnStreamProv(prov, prov.Off)
			}
			sum = checksum.Combine(sum, csCtx.ChecksumRead(buf, region), int(wire.TCPHdrLen))
			// The CPU read every payload byte to checksum it — the
			// data-touching edge absent from the single-copy sender.
			span.CritEv(obs.CauseCPUCsum, "tcp_csum")
		}
		hdr.Csum = checksum.Finish(sum)
		hdr.Marshal(hb)
		if seglen > 0 {
			// Carry the flow tag even on the software path so the driver's
			// netmem accounting stays per flow.
			phdr = &mbuf.Hdr{}
		}
		if data != nil && mbuf.HasDescriptors(data) {
			// Headed for a legacy device: ask the driver-entry shim to
			// hand back the materialized data so the send buffer stops
			// referencing user memory (Section 5).
			phdr = &mbuf.Hdr{}
			seqCopy, lenCopy := seq, seglen
			phdr.OnConverted = func(m *mbuf.Mbuf) { c.onConverted(seqCopy, lenCopy, m) }
		}
	}

	hm := mbuf.NewData(hb)
	hm.SetNext(data)
	hm.MarkPktHdr(segTotal)
	if phdr != nil {
		phdr.Flow = int(c.key.lport)
		hm.SetHdr(phdr)
	}
	hm.AttachSpan(span)
	hm.AttachProv(prov)
	ctx.Charge(c.stk.K.Mach.TCPPerPacket, kern.CatProto)
	c.stk.Stats.TCPSegsOut++
	var ecn uint8
	if seglen > 0 && c.cc.ecnCapable() {
		ecn = wire.ECNECT0
	}
	c.stk.IPOutputECN(ctx, hm, wire.ProtoTCP, c.key.raddr, ecn)
}

// onOutboard runs in interrupt context once a transmitted packet's data
// resides in network memory: the corresponding range of the send buffer is
// converted to an M_WCAB mbuf so retransmission reads network memory, the
// displaced M_UIO descriptors' owners are notified (waking the writer when
// its last DMA completes), and the paper's invariant — WCAB data freed
// only on acknowledgement — is preserved by the mbuf reference counts.
func (c *TCPConn) onOutboard(seq uint32, n units.Size, w *mbuf.WCAB) {
	if c.state == StateClosed {
		discardWCAB(w)
		return
	}
	// Clamp away any part that was acknowledged while the completion
	// notification was pending.
	skip := units.Size(0)
	if seqLT(seq, c.sndUna) {
		skip = seqDiff(c.sndUna, seq)
		if skip >= n {
			discardWCAB(w)
			return
		}
		seq = c.sndUna
		n -= skip
	}
	off := seqDiff(seq, c.sndUna)
	if off+n > c.sndLen {
		// Shouldn't happen: the range was cut from the buffer.
		discardWCAB(w)
		return
	}
	front, rest := mbuf.SplitAt(c.sndBuf, off)
	mid, back := mbuf.SplitAt(rest, n)

	// Notify descriptor owners that their bytes are secured outboard.
	for m := mid; m != nil; m = m.Next() {
		if m.Type() == mbuf.TUIO {
			if h := m.Hdr(); h != nil && h.Owner != nil {
				h.Owner.DMADone(m.Len())
			}
		}
	}
	wm := mbuf.NewWCAB(w, skip, n, nil)
	mbuf.FreeChain(mid)
	c.sndBuf = mbuf.Cat(mbuf.Cat(front, wm), back)
	c.stk.ctrWCABConv.Inc()
}

// onConverted is the legacy-device analogue of onOutboard: the driver-entry
// shim materialized the packet into kernel buffers; the send buffer range
// is replaced with (clones of) those buffers so retransmission no longer
// touches user memory, preserving copy semantics (Section 5).
func (c *TCPConn) onConverted(seq uint32, n units.Size, converted *mbuf.Mbuf) {
	if c.state == StateClosed {
		return
	}
	// converted is the whole materialized packet (link/IP/TCP headers plus
	// payload); the payload is its tail.
	payloadOff := mbuf.ChainLen(converted) - n
	repl := mbuf.CopyRange(converted, payloadOff, n)
	if seqLT(seq, c.sndUna) {
		skip := seqDiff(c.sndUna, seq)
		if skip >= n {
			mbuf.FreeChain(repl)
			return
		}
		repl = mbuf.AdjFront(repl, skip)
		seq = c.sndUna
		n -= skip
	}
	off := seqDiff(seq, c.sndUna)
	if off+n > c.sndLen {
		mbuf.FreeChain(repl)
		return
	}
	front, rest := mbuf.SplitAt(c.sndBuf, off)
	mid, back := mbuf.SplitAt(rest, n)
	for m := mid; m != nil; m = m.Next() {
		if m.Type() == mbuf.TUIO {
			if h := m.Hdr(); h != nil && h.Owner != nil {
				h.Owner.DMADone(m.Len())
			}
		}
	}
	mbuf.FreeChain(mid)
	c.sndBuf = mbuf.Cat(mbuf.Cat(front, repl), back)
}

// discardWCAB frees an outboard packet that found no send-buffer home.
func discardWCAB(w *mbuf.WCAB) {
	w.Ref()
	w.Unref()
}

// firstDescID returns the first sosend descriptor id recorded on the chain
// (0 when none — regular data, or the ledger is off).
func firstDescID(m *mbuf.Mbuf) int64 {
	for ; m != nil; m = m.Next() {
		if id := m.DescID(); id != 0 {
			return id
		}
	}
	return 0
}
