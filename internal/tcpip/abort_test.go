package tcpip

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// TestAbortHalfOpenPeerReleasesBacklog pins the SYN-SENT abort contract:
// when the active opener gives up before the handshake completes, its bare
// RST (no ACK — we never saw the peer's SYN) must land on the peer's
// half-open SYN-RECEIVED connection, tear it down, and release the
// listener backlog slot it was burning. Before the fix the embryonic
// connection kept retransmitting SYN|ACK until its retry budget expired,
// pinning a backlog slot for seconds.
func TestAbortHalfOpenPeerReleasesBacklog(t *testing.T) {
	r := newRig(t, 31)
	// B's replies all vanish: A stays SYN-SENT, B half-open in SYN-RCVD.
	r.ib.drop = func(int, []byte) bool { return true }
	lis := r.sb.Listen(80)
	var connErr error
	r.eng.Go("cli", func(p *sim.Proc) {
		_, connErr = r.sa.Connect(r.ka.TaskCtx(p, r.ka.KernelTask), r.sb.Addr, 80)
	})
	r.eng.Go("abort", func(p *sim.Proc) {
		p.Sleep(5 * units.Millisecond)
		if lis.Backlogged() != 1 {
			t.Errorf("backlog before abort = %d, want 1 half-open", lis.Backlogged())
		}
		var cli *TCPConn
		for _, c := range r.sa.conns {
			cli = c
		}
		if cli == nil {
			t.Error("no client connection in SYN-SENT")
			return
		}
		if cli.State() != StateSynSent {
			t.Errorf("client state = %v, want SynSent", cli.State())
		}
		cli.Abort(r.ka.TaskCtx(p, r.ka.KernelTask))
	})
	r.eng.RunUntil(2 * units.Second)
	defer r.eng.KillAll()
	if connErr == nil {
		t.Fatal("connect succeeded across a dead reply path")
	}
	if lis.Backlogged() != 0 {
		t.Fatalf("backlog after abort = %d, want 0 (slot leaked)", lis.Backlogged())
	}
	if n := len(r.sb.conns); n != 0 {
		t.Fatalf("%d embryonic connections survive on the passive side", n)
	}
	if n := len(r.sa.conns); n != 0 {
		t.Fatalf("%d connections survive on the active side", n)
	}
	if r.sb.Stats.TCPRstsIn != 1 {
		t.Fatalf("passive side counted %d RSTs in, want 1", r.sb.Stats.TCPRstsIn)
	}
}

// TestAbortStateMatrix aborts a fully set-up connection from each local
// state it can legitimately occupy and demands the same postcondition
// everywhere: both endpoints closed, the peer holding ErrConnReset, and
// neither stack retaining connection state.
func TestAbortStateMatrix(t *testing.T) {
	cases := []struct {
		name  string
		state TCPState
		// arrange drives the connection pair into the target state; it
		// runs in a proc after establishment with the client conn.
		arrange func(p *sim.Proc, r *rig, cli, srv *TCPConn)
	}{
		{"established", StateEstablished,
			func(p *sim.Proc, r *rig, cli, srv *TCPConn) {}},
		{"finwait", StateFinWait1,
			func(p *sim.Proc, r *rig, cli, srv *TCPConn) {
				// Half-close with unacknowledged data in flight so the
				// FIN cannot complete and the state holds.
				r.ib.drop = func(int, []byte) bool { return true }
				_ = sendAll(p, r.ka, cli, pattern(512, 5))
				cli.Close(r.ka.TaskCtx(p, r.ka.KernelTask))
			}},
		{"closewait", StateCloseWait,
			func(p *sim.Proc, r *rig, cli, srv *TCPConn) {
				// The peer half-closes; our side consumes the FIN and
				// holds in CLOSE-WAIT until the app closes.
				srv.Close(r.kb.TaskCtx(p, r.kb.KernelTask))
				p.Sleep(5 * units.Millisecond)
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, 37)
			lis := r.sb.Listen(80)
			var srv, cli *TCPConn
			r.eng.Go("srv", func(p *sim.Proc) { srv = lis.Accept(p) })
			r.eng.Go("cli", func(p *sim.Proc) {
				c, err := r.sa.Connect(r.ka.TaskCtx(p, r.ka.KernelTask), r.sb.Addr, 80)
				if err != nil {
					t.Errorf("connect: %v", err)
					return
				}
				cli = c
				for srv == nil {
					p.Sleep(units.Millisecond) // accept lands on its own proc
				}
				tc.arrange(p, r, cli, srv)
				if got := cli.State(); got != tc.state {
					t.Errorf("arranged state = %v, want %v", got, tc.state)
				}
				// Abort must work from this state; reopen the pipe so the
				// RST reaches the peer.
				r.ib.drop = nil
				r.ia.drop = nil
				cli.Abort(r.ka.TaskCtx(p, r.ka.KernelTask))
			})
			r.eng.RunUntil(2 * units.Second)
			defer r.eng.KillAll()
			if cli == nil || srv == nil {
				t.Fatal("setup incomplete")
			}
			if cli.State() != StateClosed {
				t.Fatalf("aborting side state = %v", cli.State())
			}
			if srv.State() != StateClosed || srv.Err != ErrConnReset {
				t.Fatalf("peer state=%v err=%v, want reset teardown", srv.State(), srv.Err)
			}
			if len(r.sa.conns)+len(r.sb.conns) != 0 {
				t.Fatalf("connection state survives: A=%d B=%d", len(r.sa.conns), len(r.sb.conns))
			}
		})
	}
}

// TestAbortiveTeardownFreesRcvBuf pins the teardown leak fix: a connection
// reset with undelivered receive data must free that chain immediately —
// the app will only ever see c.Err, so an attached rcvBuf (which on the
// single-copy path references pinned netmem pages) would leak forever.
// An orderly close must keep it: the app is still entitled to the data.
func TestAbortiveTeardownFreesRcvBuf(t *testing.T) {
	r := newRig(t, 41)
	lis := r.sb.Listen(80)
	var srv *TCPConn
	payload := pattern(4096, 9)
	r.eng.Go("srv", func(p *sim.Proc) {
		srv = lis.Accept(p)
		// Never read: data parks in rcvBuf.
	})
	r.eng.Go("cli", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		c, err := r.sa.Connect(ctx, r.sb.Addr, 80)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if err := sendAll(p, r.ka, c, payload); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		p.Sleep(20 * units.Millisecond) // let the data land in srv.rcvBuf
		if srv == nil || srv.rcvLen == 0 {
			t.Error("no undelivered data staged on the receiver")
		}
		c.Abort(r.ka.TaskCtx(p, r.ka.KernelTask))
	})
	r.eng.RunUntil(2 * units.Second)
	defer r.eng.KillAll()
	if srv == nil {
		t.Fatal("no accept")
	}
	if srv.Err != ErrConnReset {
		t.Fatalf("receiver err = %v, want ErrConnReset", srv.Err)
	}
	if srv.rcvBuf != nil || srv.rcvLen != 0 {
		t.Fatalf("abortive teardown left %v undelivered bytes attached", srv.rcvLen)
	}
	if srv.sndBuf != nil || len(srv.reass) != 0 {
		t.Fatal("teardown left send or reassembly state attached")
	}
}

// TestOrderlyCloseKeepsRcvBuf is the counterpart guard: a clean FIN must
// NOT discard undelivered data — draining after EOF is the sockets
// contract.
func TestOrderlyCloseKeepsRcvBuf(t *testing.T) {
	r := newRig(t, 43)
	lis := r.sb.Listen(80)
	payload := pattern(2048, 11)
	var got []byte
	r.eng.Go("srv", func(p *sim.Proc) {
		srv := lis.Accept(p)
		p.Sleep(30 * units.Millisecond) // close lands before we read
		got = recvAll(p, r.kb, srv)
	})
	r.eng.Go("cli", func(p *sim.Proc) {
		ctx := r.ka.TaskCtx(p, r.ka.KernelTask)
		c, err := r.sa.Connect(ctx, r.sb.Addr, 80)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if err := sendAll(p, r.ka, c, payload); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		c.Close(ctx)
	})
	r.eng.Run()
	defer r.eng.KillAll()
	if string(got) != string(payload) {
		t.Fatalf("drained %d bytes after close, want %d intact", len(got), len(payload))
	}
}
