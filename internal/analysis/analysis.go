// Package analysis implements the back-of-envelope cost analysis of
// Section 7.3: using estimates of the per-byte, per-page, and per-packet
// overheads, it predicts the communication efficiency of the unmodified
// and single-copy stacks and apportions the overhead between per-byte and
// per-packet costs.
//
// With the paper's Alpha 3000/400 numbers (copy at 350 Mbit/s over a
// 1 MByte region, checksum read at 630 Mbit/s over the 512 KByte window,
// ~300 µs per packet, and Table 2's VM costs), the model reproduces the
// paper's estimates: ≈180 Mbit/s for the unmodified stack and ≈490 Mbit/s
// for the single-copy stack at 32 KByte packets, with the per-byte share
// of overhead dropping from ≈80% to ≈43%.
package analysis

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/units"
)

// Estimate is the predicted cost structure for transmitting one packet.
type Estimate struct {
	Stack     string
	PktSize   units.Size
	PerByte   units.Time // data-touching (copy + checksum) or VM time
	PerPacket units.Time // fixed protocol/driver/interrupt time
	Total     units.Time
	// Efficiency is the throughput the host could sustain at 100% CPU.
	Efficiency units.Rate
	// PerByteShare is PerByte / Total.
	PerByteShare float64
}

func (e Estimate) String() string {
	return fmt.Sprintf("%-12s %v packets: per-byte %v + per-packet %v = %v → %.0f Mb/s (per-byte share %.0f%%)",
		e.Stack, e.PktSize, e.PerByte, e.PerPacket, e.Total,
		e.Efficiency.Mbit(), 100*e.PerByteShare)
}

// Unmodified estimates the original stack: the application's data is
// copied once (socket layer) and read once (checksum) per packet.
// copyRegion and csumRegion set the cache-locality working sets; the
// paper's estimate uses a 1 MByte copy region (no locality) and the
// 512 KByte window for the checksum read.
func Unmodified(m *cost.Machine, pktSize, copyRegion, csumRegion units.Size) Estimate {
	perByte := m.CopyTime(pktSize, copyRegion) + m.CsumTime(pktSize, csumRegion)
	perPkt := m.PerPacketSendWithAcks()
	return finish("unmodified", pktSize, perByte, perPkt)
}

// SingleCopy estimates the modified stack: copy and checksum are replaced
// by the VM operations — pin, unpin, and map of the packet's pages
// (Section 7.3).
func SingleCopy(m *cost.Machine, pktSize units.Size) Estimate {
	pages := m.Pages(0, pktSize)
	perByte := m.PinTime(pages) + m.UnpinTime(pages) + m.MapTime(pages)
	perPkt := m.PerPacketSendWithAcks()
	return finish("single-copy", pktSize, perByte, perPkt)
}

// SingleCopyLazy estimates the modified stack with the Section 4.4.1
// buffer-reuse optimization: pinning and mapping amortize away, leaving
// only the per-packet costs.
func SingleCopyLazy(m *cost.Machine, pktSize units.Size) Estimate {
	perByte := 2 * units.Microsecond // pin-cache hit check
	perPkt := m.PerPacketSendWithAcks()
	return finish("single-copy-lazy", pktSize, perByte, perPkt)
}

func finish(stack string, pktSize units.Size, perByte, perPkt units.Time) Estimate {
	e := Estimate{
		Stack:     stack,
		PktSize:   pktSize,
		PerByte:   perByte,
		PerPacket: perPkt,
		Total:     perByte + perPkt,
	}
	e.Efficiency = units.RateOf(pktSize, e.Total)
	e.PerByteShare = float64(perByte) / float64(e.Total)
	return e
}

// PaperTable reproduces the Section 7.3 analysis for the Alpha 3000/400 at
// the paper's 32 KByte packet size.
func PaperTable() []Estimate {
	m := cost.Alpha400()
	pkt := 32 * units.KB
	return []Estimate{
		Unmodified(m, pkt, 1*units.MB, 512*units.KB),
		SingleCopy(m, pkt),
		SingleCopyLazy(m, pkt),
	}
}
