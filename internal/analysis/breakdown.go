package analysis

import "fmt"

// Thresholds for the Section 7/8 structural claim. The paper's measured
// breakdowns put copy+checksum at ~3/4 of the unmodified stack's CPU time;
// the single-copy stack moves no payload bytes with the CPU, so its
// data-touching share should be noise.
const (
	// UnmodDataShareMin is the least copy+checksum share at which the
	// multi-copy stack still counts as "dominated by data touching".
	UnmodDataShareMin = 0.50
	// ModDataShareMax is the most copy+checksum share the single-copy
	// stack may show (receiver-side auto-DMA head copies are the only
	// residual).
	ModDataShareMax = 0.05
)

// CheckOutboardClaim verifies the paper's central claim against measured
// CPU-category shares: the unmodified (multi-copy) stack's copy+checksum
// share must dominate its busy time, and the modified (single-copy)
// stack's must be near zero — outboard buffering and checksumming really
// did eliminate the data-touching operations, not just shuffle them.
func CheckOutboardClaim(unmodDataShare, modDataShare float64) error {
	if unmodDataShare < UnmodDataShareMin {
		return fmt.Errorf("unmodified stack's copy+csum share %.2f < %.2f: data touching should dominate the multi-copy path",
			unmodDataShare, UnmodDataShareMin)
	}
	if modDataShare > ModDataShareMax {
		return fmt.Errorf("single-copy stack's copy+csum share %.2f > %.2f: outboard buffering should eliminate data touching",
			modDataShare, ModDataShareMax)
	}
	return nil
}
