package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/exp"
	"repro/internal/units"
)

// dataShare sums the copy and csum shares of one breakdown point.
func dataShare(p exp.BreakdownPoint) float64 {
	return p.Share("copy") + p.Share("csum")
}

// TestOutboardClaimOnMeasuredBreakdown runs one Figure-7/8 cell and checks
// the paper's structural claim on the measured shares: the multi-copy
// stack is dominated by copy+checksum, the single-copy stack shows almost
// none, on both the sender and the receiver.
func TestOutboardClaimOnMeasuredBreakdown(t *testing.T) {
	fig7, fig8, _ := exp.RunBreakdowns([]units.Size{64 * units.KB})
	for _, fig := range []exp.BreakdownFigure{fig7, fig8} {
		unmod := fig.Series["Unmodified"][0]
		mod := fig.Series["Modified"][0]
		if err := analysis.CheckOutboardClaim(dataShare(unmod), dataShare(mod)); err != nil {
			t.Errorf("%s (%s): %v", fig.Name, fig.Side, err)
		}
	}
}

// TestCheckOutboardClaimRejects is the negative case: shares that
// contradict the claim must fail.
func TestCheckOutboardClaimRejects(t *testing.T) {
	if err := analysis.CheckOutboardClaim(0.2, 0.01); err == nil {
		t.Error("want error when the multi-copy data share does not dominate")
	}
	if err := analysis.CheckOutboardClaim(0.8, 0.3); err == nil {
		t.Error("want error when the single-copy data share is large")
	}
}
