package analysis

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/units"
)

func TestUnmodifiedEstimateMatchesPaper(t *testing.T) {
	m := cost.Alpha400()
	e := Unmodified(m, 32*units.KB, 1*units.MB, 512*units.KB)
	// Paper: "These estimates add up to an efficiency of 180 Mbit/second".
	if got := e.Efficiency.Mbit(); got < 170 || got > 190 {
		t.Fatalf("unmodified efficiency = %.0f Mb/s, want ≈180", got)
	}
	// Paper: "the estimated per-byte cost accounts for 80% of the
	// overhead".
	if e.PerByteShare < 0.75 || e.PerByteShare > 0.85 {
		t.Fatalf("per-byte share = %.2f, want ≈0.80", e.PerByteShare)
	}
}

func TestSingleCopyEstimateMatchesPaper(t *testing.T) {
	m := cost.Alpha400()
	e := SingleCopy(m, 32*units.KB)
	// Paper: "the efficiency of the modified stack for 32 KBytes packets
	// is 490 Mbit/second".
	if got := e.Efficiency.Mbit(); got < 460 || got > 520 {
		t.Fatalf("single-copy efficiency = %.0f Mb/s, want ≈490", got)
	}
	// Paper: "this number drops to 43%".
	if e.PerByteShare < 0.38 || e.PerByteShare > 0.48 {
		t.Fatalf("per-byte share = %.2f, want ≈0.43", e.PerByteShare)
	}
	// "the per-packet overhead ... is now more significant than the
	// per-byte cost".
	if e.PerByte >= e.PerPacket {
		t.Fatal("per-packet cost should dominate the single-copy stack")
	}
}

func TestEfficiencyRatioAlmostThree(t *testing.T) {
	m := cost.Alpha400()
	un := Unmodified(m, 32*units.KB, 1*units.MB, 512*units.KB)
	sc := SingleCopy(m, 32*units.KB)
	ratio := float64(sc.Efficiency) / float64(un.Efficiency)
	if ratio < 2.4 || ratio > 3.2 {
		t.Fatalf("efficiency ratio = %.2f, want 'almost three times'", ratio)
	}
}

func TestLazyPinningBeatsEager(t *testing.T) {
	m := cost.Alpha400()
	eager := SingleCopy(m, 32*units.KB)
	lazy := SingleCopyLazy(m, 32*units.KB)
	if lazy.Efficiency <= eager.Efficiency {
		t.Fatal("lazy unpinning should raise the efficiency ceiling")
	}
}

func TestEstimateScalesWithPacketSize(t *testing.T) {
	m := cost.Alpha400()
	small := SingleCopy(m, 4*units.KB)
	large := SingleCopy(m, 32*units.KB)
	// Bigger packets amortize the per-packet cost: higher efficiency.
	if large.Efficiency <= small.Efficiency {
		t.Fatalf("efficiency should grow with packet size: %v vs %v",
			small.Efficiency, large.Efficiency)
	}
}

func TestAlpha300HalvesEfficiency(t *testing.T) {
	e400 := SingleCopy(cost.Alpha400(), 32*units.KB)
	e300 := SingleCopy(cost.Alpha300(), 32*units.KB)
	ratio := float64(e400.Efficiency) / float64(e300.Efficiency)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("3000/400 vs 3000/300 efficiency ratio = %.2f, want ≈2", ratio)
	}
}

func TestPaperTable(t *testing.T) {
	rows := PaperTable()
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Total <= 0 || r.Efficiency <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		t.Log(r)
	}
}
