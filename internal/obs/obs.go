// Package obs is the unified telemetry layer for the simulated stack: a
// per-host metrics registry (counters, gauges, pull functions), virtual-time
// histograms, and packet-scoped data-path spans, with deterministic
// exporters (human-readable table, JSON, Chrome trace-event JSON).
//
// Two properties shape the design:
//
//   - Determinism. The simulation is a deterministic discrete-event system,
//     so identical seeds must produce byte-identical snapshots; every
//     exporter iterates in a defined order (sorted metric names, host
//     creation order, span/event creation order) and never ranges over a
//     map. This makes the whole telemetry layer a regression oracle.
//
//   - Zero cost when disabled. Every hot-path hook is a method on a
//     possibly-nil pointer (*Counter, *Gauge, *Span, *Trace); the nil
//     receiver is a no-op and allocates nothing, so instrumented code runs
//     unchanged — and benchmark-neutral — when telemetry is off.
//
// Telemetry charges no simulated CPU or bus time: observing the system
// never changes virtual-time results, enabled or not.
package obs

import (
	"repro/internal/units"
)

// Counter is a monotonically increasing event count. A nil *Counter is a
// valid no-op sink.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous level that also tracks two high-water marks:
// an all-time one (snapshots export it under "<name>.hwm") and an
// interval one that samplers reset between measurement windows so each
// window reports its own peak, not the run's. A nil *Gauge is a valid
// no-op sink.
type Gauge struct {
	v, hwm, iwm int64
}

// Set records the current level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.hwm {
		g.hwm = v
	}
	if v > g.iwm {
		g.iwm = v
	}
}

// Value returns the current level (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// HighWater returns the highest level ever set (0 for nil).
func (g *Gauge) HighWater() int64 {
	if g == nil {
		return 0
	}
	return g.hwm
}

// IntervalHighWater returns the highest level since the last Reset (0 for
// nil).
func (g *Gauge) IntervalHighWater() int64 {
	if g == nil {
		return 0
	}
	return g.iwm
}

// Reset starts a new measurement interval: the interval high-water mark
// drops to the current level (the peak of any window containing now is at
// least the present value). The all-time mark is untouched.
func (g *Gauge) Reset() {
	if g == nil {
		return
	}
	g.iwm = g.v
}

type entryKind int

const (
	kindCounter entryKind = iota
	kindGauge
	kindFunc
)

type entry struct {
	name string
	kind entryKind
	c    *Counter
	g    *Gauge
	fn   func() int64
}

// Registry holds one host's named metrics. Names follow the
// "subsystem.name" convention (tcp.retransmits, cab.sdma_ops, ...).
// A nil *Registry is valid: every method is a no-op returning nil sinks,
// which is the disabled-telemetry fast path.
type Registry struct {
	host    string
	tel     *Telemetry
	entries []entry
	byName  map[string]int
}

// Host returns the registry's host label.
func (r *Registry) Host() string {
	if r == nil {
		return ""
	}
	return r.host
}

// Counter returns the named counter, creating it on first use. Re-requests
// of the same name share one counter (transient objects like sockets
// accumulate into a host-lifetime count).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if i, ok := r.byName[name]; ok {
		return r.entries[i].c
	}
	c := &Counter{}
	r.add(entry{name: name, kind: kindCounter, c: c})
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if i, ok := r.byName[name]; ok {
		return r.entries[i].g
	}
	g := &Gauge{}
	r.add(entry{name: name, kind: kindGauge, g: g})
	return g
}

// Func registers a pull metric: fn is evaluated at snapshot time. Use it to
// re-export counters a subsystem already keeps (Stats structs, CPU
// accounting) without double bookkeeping. First registration of a name
// wins.
func (r *Registry) Func(name string, fn func() int64) {
	if r == nil {
		return
	}
	if _, ok := r.byName[name]; ok {
		return
	}
	r.add(entry{name: name, kind: kindFunc, fn: fn})
}

func (r *Registry) add(e entry) {
	if r.byName == nil {
		r.byName = make(map[string]int)
	}
	r.byName[e.name] = len(r.entries)
	r.entries = append(r.entries, e)
}

// TraceSink returns the shared data-path trace (nil when telemetry is
// disabled), for subsystems that create spans.
func (r *Registry) TraceSink() *Trace {
	if r == nil || r.tel == nil {
		return nil
	}
	return r.tel.trace
}

// Telemetry aggregates a testbed's registries and its shared data-path
// trace. Construct one per testbed with New and hand each host a Registry.
type Telemetry struct {
	trace *Trace
	regs  []*Registry
}

// New returns a Telemetry whose spans and trace events are timestamped by
// now — the simulation engine's virtual clock.
func New(now func() units.Time) *Telemetry {
	return &Telemetry{trace: NewTrace(now)}
}

// Trace returns the shared data-path trace.
func (t *Telemetry) Trace() *Trace { return t.trace }

// EnableCritPath turns on the causal critical-path recorder: spans started
// afterwards record happens-before events for the critpath analyzer.
func (t *Telemetry) EnableCritPath() { t.trace.EnableCrit() }

// Crit returns the causal recorder (nil unless EnableCritPath was called).
func (t *Telemetry) Crit() *CritRec { return t.trace.Crit() }

// Registry creates (or returns) the registry labeled host. Hosts appear in
// snapshots in creation order.
func (t *Telemetry) Registry(host string) *Registry {
	for _, r := range t.regs {
		if r.host == host {
			return r
		}
	}
	r := &Registry{host: host, tel: t}
	t.regs = append(t.regs, r)
	return r
}
