package netobs

import (
	"encoding/json"
	"sort"
	"strconv"

	"repro/internal/units"
)

// Chrome-trace counter events.  The obs package's event struct is
// unexported, and counter tracks ("ph":"C") need a different shape anyway:
// one numeric arg per named counter, grouped by pid.
type chromeCounter struct {
	Name string     `json:"name"`
	Ph   string     `json:"ph"`
	TS   float64    `json:"ts"`
	PID  string     `json:"pid"`
	Args counterVal `json:"args"`
}

type counterVal struct {
	V int64 `json:"v"`
}

type chromeFile struct {
	TraceEvents []chromeCounter `json:"traceEvents"`
}

func micros(t int64) float64 { return float64(t) / float64(units.Microsecond) }

// Chrome renders the recorder's series as Chrome-trace counter tracks
// (load chrome://tracing or Perfetto).  Each flow contributes cwnd,
// ssthresh, flight and snd_wnd tracks under its host's pid; each wire port
// contributes tx/rx busy-fraction tracks under the wire's pid.
func (r *Recorder) Chrome() []byte {
	if r == nil {
		return nil
	}
	f := chromeFile{TraceEvents: []chromeCounter{}}
	add := func(pid, name string, tNs, v int64) {
		f.TraceEvents = append(f.TraceEvents, chromeCounter{
			Name: name, Ph: "C", TS: micros(tNs), PID: pid, Args: counterVal{V: v},
		})
	}
	for _, fr := range r.flows {
		tag := "flow " + strconv.Itoa(fr.Port) + ":" + strconv.Itoa(fr.RPort)
		for i := range fr.samples {
			s := &fr.samples[i]
			add(fr.Host, tag+" cwnd", s.TNs, s.Cwnd)
			add(fr.Host, tag+" ssthresh", s.TNs, s.Ssthresh)
			add(fr.Host, tag+" flight", s.TNs, s.Flight)
			add(fr.Host, tag+" snd_wnd", s.TNs, s.SndWnd)
		}
	}
	for _, w := range r.wires {
		for _, node := range sortedNodes(w) {
			p := w.ports[node]
			emitBusy(add, "wire "+w.Label, "node "+strconv.Itoa(node)+" tx_busy_pm", p.txBusy, w.window)
			emitBusy(add, "wire "+w.Label, "node "+strconv.Itoa(node)+" rx_busy_pm", p.rxBusy, w.window)
		}
	}
	b, err := json.Marshal(f)
	if err != nil {
		panic("netobs: chrome marshal: " + err.Error())
	}
	return b
}

func emitBusy(add func(pid, name string, tNs, v int64), pid, name string, busy []units.Time, window units.Time) {
	for i, b := range busy {
		pmv := int64(b) * 1000 / int64(window)
		if pmv > 1000 {
			pmv = 1000
		}
		add(pid, name, int64(window)*int64(i), pmv)
	}
}

func sortedNodes(w *WireRec) []int {
	nodes := append([]int(nil), w.portOrder...)
	sort.Ints(nodes)
	return nodes
}
