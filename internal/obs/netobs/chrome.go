package netobs

import (
	"encoding/json"
	"strconv"

	"repro/internal/units"
)

// Chrome-trace counter events.  The obs package's event struct is
// unexported, and counter tracks ("ph":"C") need a different shape anyway:
// one numeric arg per named counter, grouped by pid.
type chromeCounter struct {
	Name string     `json:"name"`
	Ph   string     `json:"ph"`
	TS   float64    `json:"ts"`
	PID  string     `json:"pid"`
	Args counterVal `json:"args"`
}

type counterVal struct {
	V int64 `json:"v"`
}

type chromeFile struct {
	TraceEvents []chromeCounter `json:"traceEvents"`
}

func micros(t int64) float64 { return float64(t) / float64(units.Microsecond) }

// Chrome renders the recorder's series as Chrome-trace counter tracks
// (load chrome://tracing or Perfetto).  Each flow contributes cwnd,
// ssthresh, flight and snd_wnd tracks under its host's pid; each wire port
// contributes tx/rx busy-fraction tracks under the wire's pid.
func (r *Recorder) Chrome() []byte {
	if r == nil {
		return nil
	}
	return r.Snapshot().Chrome()
}

// Chrome renders a saved wire-series dump (the loadgen -netobs-json
// format) as the same counter tracks the live recorder produces, so
// cmd/trace can re-render a capture without re-running the simulation.
// Multi-switch fabrics carry named trunk ports whose synthetic ids are
// namespaced above host nodes; those tracks are labeled by trunk name so
// ports from different switches can't collide on a port number.
func (d *Dump) Chrome() []byte {
	if d == nil {
		return nil
	}
	f := chromeFile{TraceEvents: []chromeCounter{}}
	add := func(pid, name string, tNs, v int64) {
		f.TraceEvents = append(f.TraceEvents, chromeCounter{
			Name: name, Ph: "C", TS: micros(tNs), PID: pid, Args: counterVal{V: v},
		})
	}
	for i := range d.Flows {
		fr := &d.Flows[i]
		tag := "flow " + strconv.Itoa(fr.Port) + ":" + strconv.Itoa(fr.RPort)
		for j := range fr.Samples {
			s := &fr.Samples[j]
			add(fr.Host, tag+" cwnd", s.TNs, s.Cwnd)
			add(fr.Host, tag+" ssthresh", s.TNs, s.Ssthresh)
			add(fr.Host, tag+" flight", s.TNs, s.Flight)
			add(fr.Host, tag+" snd_wnd", s.TNs, s.SndWnd)
		}
	}
	for _, w := range d.Wires {
		for _, p := range w.Ports {
			label := "node " + strconv.Itoa(p.Node)
			if p.Name != "" {
				label = "link " + p.Name
			}
			emitPerMille(add, "wire "+w.Label, label+" tx_busy_pm", p.TxBusyPerMille, w.WindowNs)
			emitPerMille(add, "wire "+w.Label, label+" rx_busy_pm", p.RxBusyPerMille, w.WindowNs)
		}
	}
	b, err := json.Marshal(f)
	if err != nil {
		panic("netobs: chrome marshal: " + err.Error())
	}
	return b
}

func emitPerMille(add func(pid, name string, tNs, v int64), pid, name string, pm []int64, windowNs int64) {
	for i, v := range pm {
		add(pid, name, windowNs*int64(i), v)
	}
}
