// Package netobs is the transport-dynamics observatory: a deterministic,
// virtual-time recorder for how congestion state and wire contention
// *evolve* during a run, as opposed to the finished-transfer summaries the
// ledger and critpath layers produce.
//
// It records two kinds of series:
//
//   - Per-flow TCP state series (FlowRec), sampled on state *change* rather
//     than on a ticker: cwnd, ssthresh, srtt/rttvar, RTO, flight size and
//     the advertised windows, plus a retransmission taxonomy (RTO fire vs
//     fast retransmit vs persist probe vs keepalive probe).  Sampling on
//     change keeps the series exact — a ticker either misses the 3-dupack
//     cwnd collapse between ticks or burns samples on idle flows — and it
//     makes the series a pure function of the event sequence, so two
//     same-seed runs produce byte-identical dumps.
//
//   - Per-port wire telemetry (WireRec): tx/rx busy time accumulated into
//     fixed virtual-time windows (a busy-fraction series), stall-duration
//     histograms, per-cause drop counters, and per-(src,flow) bytes-on-wire
//     attribution using the fabric's Frame.Flow tag.
//
// The analyzer (analyze.go) joins the two with per-host adaptor-memory
// stats into a per-flow congestion verdict.
//
// Like every obs layer before it, netobs follows the nil-hook discipline:
// every method on a nil *Recorder, *FlowRec or *WireRec is a no-op, takes
// only scalar arguments, and allocates nothing, so a disabled recorder
// costs two compare-and-branch per hook site and the instrumented code
// needs no conditionals.  Telemetry charges no simulated time.
package netobs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/obs"
	"repro/internal/units"
)

// Caps keep a runaway flow from holding the whole run's history in memory.
// Overflow is counted, never silent.
const (
	maxFlowSamples = 1 << 15 // per flow; on-change sampling stays well under
	maxRtxEvents   = 1 << 12 // per flow retransmission-event log
)

// DefaultWireWindow is the busy-fraction accumulation window used when
// Wire() is given a zero window.  1ms spans ~80 max-size HIPPI frames at
// line rate: coarse enough to smooth per-frame jitter, fine enough to see
// an incast burst saturate a port.
const DefaultWireWindow = units.Millisecond

// RtxKind classifies why a segment was (re)sent outside the normal
// data-driven output path.
type RtxKind int

const (
	// RtxRTO is a retransmission timer fire (go-back-N resend).
	RtxRTO RtxKind = iota
	// RtxFast is a 3-dupack fast retransmit.
	RtxFast
	// RtxPersist is a 1-byte zero-window persist probe.
	RtxPersist
	// RtxKeepalive is a keepalive probe on an idle connection.
	RtxKeepalive

	numRtxKinds
)

var rtxNames = [numRtxKinds]string{"rto", "fast", "persist", "keepalive"}

func (k RtxKind) String() string {
	if k < 0 || k >= numRtxKinds {
		return "?"
	}
	return rtxNames[k]
}

// FlowState is the congestion-relevant slice of a TCP connection's state,
// passed by value so a disabled hook allocates nothing.
type FlowState struct {
	Cwnd     int64 // congestion window, bytes
	Ssthresh int64 // slow-start threshold, bytes
	SrttNs   int64 // smoothed RTT estimate
	RttvarNs int64 // RTT variance estimate
	RtoNs    int64 // current retransmission timeout
	Flight   int64 // bytes in flight (sndNxt - sndUna)
	SndWnd   int64 // peer-advertised send window, bytes
	RcvWnd   int64 // our last advertised receive window, bytes
}

// FlowSample is one row of a per-flow series: a FlowState plus the virtual
// time it was observed.
type FlowSample struct {
	TNs int64 `json:"t_ns"`
	FlowState
}

// MarshalJSON flattens the embedded state so dumps read as one object.
func (s FlowSample) MarshalJSON() ([]byte, error) {
	type flat struct {
		TNs      int64 `json:"t_ns"`
		Cwnd     int64 `json:"cwnd"`
		Ssthresh int64 `json:"ssthresh"`
		SrttNs   int64 `json:"srtt_ns"`
		RttvarNs int64 `json:"rttvar_ns"`
		RtoNs    int64 `json:"rto_ns"`
		Flight   int64 `json:"flight"`
		SndWnd   int64 `json:"snd_wnd"`
		RcvWnd   int64 `json:"rcv_wnd"`
	}
	return json.Marshal(flat{s.TNs, s.Cwnd, s.Ssthresh, s.SrttNs,
		s.RttvarNs, s.RtoNs, s.Flight, s.SndWnd, s.RcvWnd})
}

// UnmarshalJSON is the inverse flattening, so saved dumps round-trip
// (cmd/trace re-renders loadgen -netobs-json captures).
func (s *FlowSample) UnmarshalJSON(b []byte) error {
	var flat struct {
		TNs      int64 `json:"t_ns"`
		Cwnd     int64 `json:"cwnd"`
		Ssthresh int64 `json:"ssthresh"`
		SrttNs   int64 `json:"srtt_ns"`
		RttvarNs int64 `json:"rttvar_ns"`
		RtoNs    int64 `json:"rto_ns"`
		Flight   int64 `json:"flight"`
		SndWnd   int64 `json:"snd_wnd"`
		RcvWnd   int64 `json:"rcv_wnd"`
	}
	if err := json.Unmarshal(b, &flat); err != nil {
		return err
	}
	*s = FlowSample{TNs: flat.TNs, FlowState: FlowState{
		Cwnd: flat.Cwnd, Ssthresh: flat.Ssthresh, SrttNs: flat.SrttNs,
		RttvarNs: flat.RttvarNs, RtoNs: flat.RtoNs, Flight: flat.Flight,
		SndWnd: flat.SndWnd, RcvWnd: flat.RcvWnd,
	}}
	return nil
}

// RtxEvent is one entry of a flow's retransmission-event log.
type RtxEvent struct {
	TNs  int64  `json:"t_ns"`
	Kind string `json:"kind"`
}

// FlowRec records one connection's state series.  All methods are nil-safe
// no-ops.
type FlowRec struct {
	rec   *Recorder
	Host  string
	Node  int // fabric port id of the host, for the wire join
	Port  int // local port: the flow id carried in Frame.Flow on tx
	RPort int // remote port

	samples   []FlowSample
	dropped   int64 // samples beyond maxFlowSamples
	rtx       [numRtxKinds]int64
	rtxEvents []RtxEvent
	rtxDrop   int64
}

// Note records the connection state if it differs from the last recorded
// sample.  Several state changes at the same virtual instant coalesce into
// one row holding the final state, so a sample never shows a half-applied
// update.
func (f *FlowRec) Note(st FlowState) {
	if f == nil {
		return
	}
	now := int64(f.rec.now())
	if n := len(f.samples); n > 0 {
		last := &f.samples[n-1]
		if last.FlowState == st {
			return
		}
		if last.TNs == now {
			last.FlowState = st
			return
		}
	}
	if len(f.samples) >= maxFlowSamples {
		f.dropped++
		return
	}
	f.samples = append(f.samples, FlowSample{TNs: now, FlowState: st})
}

// Rtx records a retransmission-taxonomy event.
func (f *FlowRec) Rtx(kind RtxKind) {
	if f == nil || kind < 0 || kind >= numRtxKinds {
		return
	}
	f.rtx[kind]++
	if len(f.rtxEvents) >= maxRtxEvents {
		f.rtxDrop++
		return
	}
	f.rtxEvents = append(f.rtxEvents, RtxEvent{TNs: int64(f.rec.now()), Kind: kind.String()})
}

// digest is an FNV-1a hash over the sample rows, used by the postmortem to
// pin series content without embedding the full series in bench JSON.
func (f *FlowRec) digest() string {
	h := fnv.New64a()
	var b [8]byte
	word := func(v int64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(uint64(v) >> (8 * i))
		}
		h.Write(b[:])
	}
	for i := range f.samples {
		s := &f.samples[i]
		word(s.TNs)
		word(s.Cwnd)
		word(s.Ssthresh)
		word(s.SrttNs)
		word(s.RttvarNs)
		word(s.RtoNs)
		word(s.Flight)
		word(s.SndWnd)
		word(s.RcvWnd)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// portRec accumulates one fabric port's tx/rx activity.
type portRec struct {
	node int
	// name labels synthetic fabric ports (trunk directions like
	// "leaf0-spine1>"); empty for host ports, whose node id is the label.
	name string

	txBusy []units.Time // busy ns per window
	rxBusy []units.Time

	txFrames, rxFrames   int64
	txBytes, rxBytes     int64
	txStalls, rxStalls   int64
	txLastEnd, rxLastEnd units.Time

	txStallHist *obs.Histogram
	rxStallHist *obs.Histogram
}

// flowKey attributes wire bytes to a (source node, flow tag) pair.
type flowKey struct {
	src  int
	flow int
}

type flowWire struct {
	dst    int
	bytes  int64
	frames int64
}

// WireRec records one fabric's port telemetry.  All methods are nil-safe
// no-ops.
type WireRec struct {
	rec    *Recorder
	Label  string
	window units.Time

	ports     map[int]*portRec
	portOrder []int // first-use order; sorted at snapshot time

	flows map[flowKey]*flowWire

	dropInj        int64 // frames dropped by the fault injector
	dropUnattached int64 // frames addressed to a node with no attached port
	dropFull       int64 // frames tail-dropped at a full trunk queue
}

func (w *WireRec) port(node int) *portRec {
	p := w.ports[node]
	if p == nil {
		p = &portRec{
			node:        node,
			txStallHist: &obs.Histogram{},
			rxStallHist: &obs.Histogram{},
		}
		w.ports[node] = p
		w.portOrder = append(w.portOrder, node)
	}
	return p
}

// accBusy folds the busy interval [start, end) into per-window busy time.
func accBusy(busy []units.Time, window, start, end units.Time) []units.Time {
	for start < end {
		i := int(start / window)
		for i >= len(busy) {
			busy = append(busy, 0)
		}
		edge := units.Time(i+1) * window
		if edge > end {
			edge = end
		}
		busy[i] += edge - start
		start = edge
	}
	return busy
}

// Tx records one frame's transmit serialization on the source port:
// the stall behind earlier frames, the busy interval [start, end), and the
// per-flow bytes-on-wire attribution (dst is the frame's destination node,
// flow the Frame.Flow tag).
func (w *WireRec) Tx(src, dst, flow, bytes int, stall, start, end units.Time) {
	if w == nil {
		return
	}
	p := w.port(src)
	p.txFrames++
	p.txBytes += int64(bytes)
	p.txBusy = accBusy(p.txBusy, w.window, start, end)
	if end > p.txLastEnd {
		p.txLastEnd = end
	}
	if stall > 0 {
		p.txStalls++
		p.txStallHist.Observe(stall)
	}
	fk := flowKey{src: src, flow: flow}
	fw := w.flows[fk]
	if fw == nil {
		fw = &flowWire{dst: dst}
		w.flows[fk] = fw
	}
	fw.dst = dst
	fw.bytes += int64(bytes)
	fw.frames++
}

// Trunk records one frame's transmit serialization across a fabric trunk
// direction. portID is a synthetic port id namespaced above host nodes
// (so multi-switch fabrics can't collide with host ports) and name labels
// it (e.g. "leaf0-spine1>"). Unlike Tx, no per-flow bytes-on-wire
// attribution happens here: a flow's wire bytes are counted once, at its
// source host port, and trunk rows would double-count them.
func (w *WireRec) Trunk(portID int, name string, bytes int, stall, start, end units.Time) {
	if w == nil {
		return
	}
	p := w.port(portID)
	p.name = name
	p.txFrames++
	p.txBytes += int64(bytes)
	p.txBusy = accBusy(p.txBusy, w.window, start, end)
	if end > p.txLastEnd {
		p.txLastEnd = end
	}
	if stall > 0 {
		p.txStalls++
		p.txStallHist.Observe(stall)
	}
}

// Rx records one frame's receive serialization on the destination port.
func (w *WireRec) Rx(dst, bytes int, stall, start, end units.Time) {
	if w == nil {
		return
	}
	p := w.port(dst)
	p.rxFrames++
	p.rxBytes += int64(bytes)
	p.rxBusy = accBusy(p.rxBusy, w.window, start, end)
	if end > p.rxLastEnd {
		p.rxLastEnd = end
	}
	if stall > 0 {
		p.rxStalls++
		p.rxStallHist.Observe(stall)
	}
}

// Drop counts a frame that left a source port but never reached a
// destination port, split by cause.
func (w *WireRec) Drop(injected bool) {
	if w == nil {
		return
	}
	if injected {
		w.dropInj++
	} else {
		w.dropUnattached++
	}
}

// DropFull counts a frame tail-dropped at a trunk whose output queue was
// over its configured cap (hippi.SetQueueCap).
func (w *WireRec) DropFull() {
	if w == nil {
		return
	}
	w.dropFull++
}

// Recorder owns the run's flow and wire records.  The zero value of the
// pointer (nil) is a valid disabled recorder.
type Recorder struct {
	now   func() units.Time
	flows []*FlowRec
	wires []*WireRec
}

// New returns a Recorder stamping samples with the given virtual clock.
func New(now func() units.Time) *Recorder {
	return &Recorder{now: now}
}

// Flow registers a connection and returns its series recorder.  Identity is
// (host, local port, remote port): server-side connections share the
// listening local port and are told apart by the remote port.  Returns nil
// (a valid no-op recorder) on a nil Recorder.
func (r *Recorder) Flow(host string, node, lport, rport int) *FlowRec {
	if r == nil {
		return nil
	}
	f := &FlowRec{rec: r, Host: host, Node: node, Port: lport, RPort: rport}
	r.flows = append(r.flows, f)
	return f
}

// Wire registers a fabric and returns its port-telemetry recorder.  A zero
// window selects DefaultWireWindow.
func (r *Recorder) Wire(label string, window units.Time) *WireRec {
	if r == nil {
		return nil
	}
	if window <= 0 {
		window = DefaultWireWindow
	}
	w := &WireRec{
		rec:    r,
		Label:  label,
		window: window,
		ports:  make(map[int]*portRec),
		flows:  make(map[flowKey]*flowWire),
	}
	r.wires = append(r.wires, w)
	return w
}

// FlowDump is one flow's full series in a Snapshot.
type FlowDump struct {
	Host           string       `json:"host"`
	Node           int          `json:"node"`
	Port           int          `json:"port"`
	RPort          int          `json:"rport"`
	Samples        []FlowSample `json:"samples"`
	DroppedSamples int64        `json:"dropped_samples,omitempty"`
	Rtx            []RtxEvent   `json:"rtx,omitempty"`
	DroppedRtx     int64        `json:"dropped_rtx,omitempty"`
	Digest         string       `json:"digest"`
}

// FlowWireDump is one (src node, flow tag) bytes-on-wire attribution row.
type FlowWireDump struct {
	Src    int   `json:"src"`
	Flow   int   `json:"flow"`
	Dst    int   `json:"dst"`
	Bytes  int64 `json:"bytes"`
	Frames int64 `json:"frames"`
}

// PortDump is one port's wire telemetry in a Snapshot.
type PortDump struct {
	Node           int              `json:"node"`
	Name           string           `json:"name,omitempty"`    // trunk ports only
	TxBusyPerMille []int64          `json:"tx_busy_per_mille"` // per window
	RxBusyPerMille []int64          `json:"rx_busy_per_mille"`
	TxFrames       int64            `json:"tx_frames"`
	RxFrames       int64            `json:"rx_frames"`
	TxBytes        int64            `json:"tx_bytes"`
	RxBytes        int64            `json:"rx_bytes"`
	TxStalls       int64            `json:"tx_stalls"`
	RxStalls       int64            `json:"rx_stalls"`
	TxStallNs      obs.HistSnapshot `json:"tx_stall_ns"`
	RxStallNs      obs.HistSnapshot `json:"rx_stall_ns"`
}

// WireDump is one fabric's telemetry in a Snapshot.
type WireDump struct {
	Label          string         `json:"label"`
	WindowNs       int64          `json:"window_ns"`
	Ports          []PortDump     `json:"ports"`
	Flows          []FlowWireDump `json:"flows"`
	DropInj        int64          `json:"drop_inj"`
	DropUnattached int64          `json:"drop_unattached"`
	DropFull       int64          `json:"drop_full,omitempty"`
}

// Dump is the recorder's full state: every flow series and every wire's
// port telemetry, in deterministic order.
type Dump struct {
	Flows []FlowDump `json:"flows"`
	Wires []WireDump `json:"wires"`
}

func perMille(busy []units.Time, window units.Time) []int64 {
	out := make([]int64, len(busy))
	for i, b := range busy {
		pm := int64(b) * 1000 / int64(window)
		if pm > 1000 {
			pm = 1000
		}
		out[i] = pm
	}
	return out
}

// Snapshot renders the recorder's state.  Flows appear in registration
// order (deterministic under the seeded engine); ports and wire flows are
// sorted.
func (r *Recorder) Snapshot() *Dump {
	if r == nil {
		return nil
	}
	d := &Dump{}
	for _, f := range r.flows {
		fd := FlowDump{
			Host:           f.Host,
			Node:           f.Node,
			Port:           f.Port,
			RPort:          f.RPort,
			Samples:        f.samples,
			DroppedSamples: f.dropped,
			Rtx:            f.rtxEvents,
			DroppedRtx:     f.rtxDrop,
			Digest:         f.digest(),
		}
		if fd.Samples == nil {
			fd.Samples = []FlowSample{}
		}
		d.Flows = append(d.Flows, fd)
	}
	if d.Flows == nil {
		d.Flows = []FlowDump{}
	}
	for _, w := range r.wires {
		wd := WireDump{
			Label:          w.Label,
			WindowNs:       int64(w.window),
			DropInj:        w.dropInj,
			DropUnattached: w.dropUnattached,
			DropFull:       w.dropFull,
		}
		nodes := append([]int(nil), w.portOrder...)
		sort.Ints(nodes)
		for _, node := range nodes {
			p := w.ports[node]
			wd.Ports = append(wd.Ports, PortDump{
				Node:           p.node,
				Name:           p.name,
				TxBusyPerMille: perMille(p.txBusy, w.window),
				RxBusyPerMille: perMille(p.rxBusy, w.window),
				TxFrames:       p.txFrames,
				RxFrames:       p.rxFrames,
				TxBytes:        p.txBytes,
				RxBytes:        p.rxBytes,
				TxStalls:       p.txStalls,
				RxStalls:       p.rxStalls,
				TxStallNs:      p.txStallHist.Snapshot(),
				RxStallNs:      p.rxStallHist.Snapshot(),
			})
		}
		if wd.Ports == nil {
			wd.Ports = []PortDump{}
		}
		keys := make([]flowKey, 0, len(w.flows))
		for k := range w.flows {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].src != keys[j].src {
				return keys[i].src < keys[j].src
			}
			return keys[i].flow < keys[j].flow
		})
		for _, k := range keys {
			fw := w.flows[k]
			wd.Flows = append(wd.Flows, FlowWireDump{
				Src: k.src, Flow: k.flow, Dst: fw.dst,
				Bytes: fw.bytes, Frames: fw.frames,
			})
		}
		if wd.Flows == nil {
			wd.Flows = []FlowWireDump{}
		}
		d.Wires = append(d.Wires, wd)
	}
	if d.Wires == nil {
		d.Wires = []WireDump{}
	}
	return d
}

// JSON renders the dump as deterministic indented JSON.
func (d *Dump) JSON() []byte {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		panic("netobs: dump marshal: " + err.Error())
	}
	return append(b, '\n')
}
