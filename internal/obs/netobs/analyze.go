package netobs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/units"
)

// HostMem is the per-host adaptor-memory and arbiter view the analyzer
// joins against, supplied by the caller so netobs stays decoupled from the
// cab package.
type HostMem struct {
	Host        string `json:"host"`
	Node        int    `json:"node"`
	DropNoMem   int64  `json:"drop_no_mem"`
	DropNoBuf   int64  `json:"drop_no_buf"`
	RxRetries   int64  `json:"rx_retries"`
	ArbWaits    int64  `json:"arb_waits"`
	ArbBorrows  int64  `json:"arb_borrows"`
	ArbReclaims int64  `json:"arb_reclaims"`
}

// Options configures a postmortem.
type Options struct {
	// After excludes retransmission events and busy windows before this
	// virtual time (typically the warmup cutoff).  Series digests always
	// cover the whole run.
	After units.Time
}

// Verdicts, ordered from most to least specific; the analyzer assigns the
// first whose rule fires.
const (
	// VerdictNetmemStarved: the flow kept hitting its retransmission
	// timer while the receiving host's adaptor was dropping frames for
	// lack of network memory — the paper's outboard-buffer exhaustion
	// failure mode.
	VerdictNetmemStarved = "netmem-starved"
	// VerdictRTOBound: repeated RTO fires without receiver memory
	// pressure (loss or a silent peer dominates the timeline).
	VerdictRTOBound = "RTO-bound"
	// VerdictWindowBound: the peer's advertised window closed and the
	// flow sat in persist, probing a zero window.
	VerdictWindowBound = "window-bound"
	// VerdictPortContended: the flow's source port spent almost all of
	// its active span busy or stalled behind other traffic.
	VerdictPortContended = "port-contended"
	// VerdictHealthy: none of the above.
	VerdictHealthy = "healthy"
)

// Analyzer thresholds.  Tuned on the PR-5 incast pair: starved elephants
// fire their retransmission timer many times (backoff through teardown),
// healthy arbitrated elephants at most once.
const (
	rtoBoundMin         = 2   // RTO fires after cutoff to call a flow RTO-bound
	portBusyPerMilleMin = 950 // source-port busy fraction to call it contended
)

// FlowVerdict is one flow's postmortem row.
type FlowVerdict struct {
	Host    string `json:"host"`
	Node    int    `json:"node"`
	Port    int    `json:"port"`
	RPort   int    `json:"rport"`
	Verdict string `json:"verdict"`

	// Post-cutoff retransmission taxonomy.
	RtoFires   int64 `json:"rto_fires"`
	FastRtx    int64 `json:"fast_rtx"`
	Persists   int64 `json:"persists"`
	Keepalives int64 `json:"keepalives"`

	// Series shape: sample count and content digest (whole run), final
	// cwnd/RTO, and virtual time spent with a zero send window.
	Samples   int    `json:"samples"`
	Digest    string `json:"digest"`
	LastCwnd  int64  `json:"last_cwnd"`
	LastRtoNs int64  `json:"last_rto_ns"`
	ZeroWndNs int64  `json:"zero_wnd_ns"`

	// Wire join: bytes this flow put on the wire and where they went.
	BytesOnWire int64 `json:"bytes_on_wire"`
	DstNode     int   `json:"dst_node"`

	// Source-port tx busy fraction over the post-cutoff span.
	TxBusyPerMille int64 `json:"tx_busy_per_mille"`

	// Receiver-side memory pressure (from the joined HostMem, if any).
	PeerDropNoMem int64 `json:"peer_drop_no_mem"`
}

// PortSummary condenses one port's wire telemetry for the postmortem.
type PortSummary struct {
	Node           int    `json:"node"`
	Name           string `json:"name,omitempty"`    // trunk ports only
	TxBusyPerMille int64  `json:"tx_busy_per_mille"` // post-cutoff mean
	RxBusyPerMille int64  `json:"rx_busy_per_mille"`
	TxFrames       int64  `json:"tx_frames"`
	RxFrames       int64  `json:"rx_frames"`
	TxBytes        int64  `json:"tx_bytes"`
	RxBytes        int64  `json:"rx_bytes"`
	TxStalls       int64  `json:"tx_stalls"`
	RxStalls       int64  `json:"rx_stalls"`
	TxStallP99Ns   int64  `json:"tx_stall_p99_ns"`
	RxStallP99Ns   int64  `json:"rx_stall_p99_ns"`
}

// WireSummary condenses one fabric for the postmortem.
type WireSummary struct {
	Label          string        `json:"label"`
	Ports          []PortSummary `json:"ports"`
	DropInj        int64         `json:"drop_inj"`
	DropUnattached int64         `json:"drop_unattached"`
	DropFull       int64         `json:"drop_full,omitempty"`
}

// Postmortem is the analyzer's output: one verdict per flow plus the wire
// and host-memory context the verdicts were derived from.
type Postmortem struct {
	AfterNs int64         `json:"after_ns"`
	Flows   []FlowVerdict `json:"flows"`
	Wires   []WireSummary `json:"wires"`
	Hosts   []HostMem     `json:"hosts"`
}

// busyOver returns the mean busy per-mille of the windows at or after the
// cutoff, up to the last active window.
func busyOver(busy []units.Time, window, after units.Time) int64 {
	first := int(after / window)
	if first >= len(busy) {
		return 0
	}
	var sum units.Time
	n := 0
	for i := first; i < len(busy); i++ {
		sum += busy[i]
		n++
	}
	if n == 0 {
		return 0
	}
	pm := int64(sum) * 1000 / (int64(window) * int64(n))
	if pm > 1000 {
		pm = 1000
	}
	return pm
}

// zeroWndTime sums the virtual time the series spent with SndWnd == 0
// while data was pending (flight or the sample after shows activity).
func zeroWndTime(samples []FlowSample) int64 {
	var total int64
	for i := 0; i+1 < len(samples); i++ {
		if samples[i].SndWnd == 0 {
			total += samples[i+1].TNs - samples[i].TNs
		}
	}
	return total
}

// Analyze joins the recorder's flow series, wire telemetry and the given
// per-host memory stats into per-flow verdicts.  Returns nil on a nil
// recorder.
func (r *Recorder) Analyze(mem []HostMem, opt Options) *Postmortem {
	if r == nil {
		return nil
	}
	after := opt.After
	pm := &Postmortem{AfterNs: int64(after)}

	memByNode := make(map[int]HostMem, len(mem))
	for _, m := range mem {
		memByNode[m.Node] = m
	}
	pm.Hosts = append([]HostMem(nil), mem...)
	sort.Slice(pm.Hosts, func(i, j int) bool {
		if pm.Hosts[i].Node != pm.Hosts[j].Node {
			return pm.Hosts[i].Node < pm.Hosts[j].Node
		}
		return pm.Hosts[i].Host < pm.Hosts[j].Host
	})
	if pm.Hosts == nil {
		pm.Hosts = []HostMem{}
	}

	for _, f := range r.flows {
		v := FlowVerdict{
			Host:    f.Host,
			Node:    f.Node,
			Port:    f.Port,
			RPort:   f.RPort,
			Samples: len(f.samples),
			Digest:  f.digest(),
			DstNode: -1,
		}
		for _, e := range f.rtxEvents {
			if units.Time(e.TNs) < after {
				continue
			}
			switch e.Kind {
			case rtxNames[RtxRTO]:
				v.RtoFires++
			case rtxNames[RtxFast]:
				v.FastRtx++
			case rtxNames[RtxPersist]:
				v.Persists++
			case rtxNames[RtxKeepalive]:
				v.Keepalives++
			}
		}
		if n := len(f.samples); n > 0 {
			v.LastCwnd = f.samples[n-1].Cwnd
			v.LastRtoNs = f.samples[n-1].RtoNs
		}
		v.ZeroWndNs = zeroWndTime(f.samples)

		// Wire join: the flow tag on tx frames is the sender's local
		// port, so (node, port) finds this flow's bytes and its
		// destination node — and through it the receiver's memory
		// stats.
		for _, w := range r.wires {
			if fw := w.flows[flowKey{src: f.Node, flow: f.Port}]; fw != nil {
				v.BytesOnWire += fw.bytes
				v.DstNode = fw.dst
			}
			if p := w.ports[f.Node]; p != nil {
				if bpm := busyOver(p.txBusy, w.window, after); bpm > v.TxBusyPerMille {
					v.TxBusyPerMille = bpm
				}
			}
		}
		if m, ok := memByNode[v.DstNode]; ok {
			v.PeerDropNoMem = m.DropNoMem
		}

		switch {
		case v.RtoFires >= rtoBoundMin && v.PeerDropNoMem > 0:
			v.Verdict = VerdictNetmemStarved
		case v.RtoFires >= rtoBoundMin:
			v.Verdict = VerdictRTOBound
		case v.Persists > 0:
			v.Verdict = VerdictWindowBound
		case v.TxBusyPerMille >= portBusyPerMilleMin:
			v.Verdict = VerdictPortContended
		default:
			v.Verdict = VerdictHealthy
		}
		pm.Flows = append(pm.Flows, v)
	}
	sort.SliceStable(pm.Flows, func(i, j int) bool {
		a, b := &pm.Flows[i], &pm.Flows[j]
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		return a.RPort < b.RPort
	})
	if pm.Flows == nil {
		pm.Flows = []FlowVerdict{}
	}

	for _, w := range r.wires {
		ws := WireSummary{
			Label:          w.Label,
			DropInj:        w.dropInj,
			DropUnattached: w.dropUnattached,
			DropFull:       w.dropFull,
		}
		nodes := append([]int(nil), w.portOrder...)
		sort.Ints(nodes)
		for _, node := range nodes {
			p := w.ports[node]
			ws.Ports = append(ws.Ports, PortSummary{
				Node:           p.node,
				Name:           p.name,
				TxBusyPerMille: busyOver(p.txBusy, w.window, after),
				RxBusyPerMille: busyOver(p.rxBusy, w.window, after),
				TxFrames:       p.txFrames,
				RxFrames:       p.rxFrames,
				TxBytes:        p.txBytes,
				RxBytes:        p.rxBytes,
				TxStalls:       p.txStalls,
				RxStalls:       p.rxStalls,
				TxStallP99Ns:   int64(p.txStallHist.Quantile(0.99)),
				RxStallP99Ns:   int64(p.rxStallHist.Quantile(0.99)),
			})
		}
		if ws.Ports == nil {
			ws.Ports = []PortSummary{}
		}
		pm.Wires = append(pm.Wires, ws)
	}
	if pm.Wires == nil {
		pm.Wires = []WireSummary{}
	}
	return pm
}

// Verdict returns the verdict string for (host, port, rport), or "" if the
// flow is unknown.  Convenience for machine checks.
func (p *Postmortem) Verdict(host string, port, rport int) string {
	if p == nil {
		return ""
	}
	for i := range p.Flows {
		f := &p.Flows[i]
		if f.Host == host && f.Port == port && f.RPort == rport {
			return f.Verdict
		}
	}
	return ""
}

// JSON renders the postmortem as deterministic indented JSON.
func (p *Postmortem) JSON() []byte {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		panic("netobs: postmortem marshal: " + err.Error())
	}
	return append(b, '\n')
}

// Format renders the postmortem as a human report.
func (p *Postmortem) Format() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "transport-dynamics postmortem (after %s)\n", units.Time(p.AfterNs))
	fmt.Fprintf(&b, "  %-8s %-6s %-6s %-16s %6s %6s %6s %6s %10s %8s %8s\n",
		"host", "port", "rport", "verdict", "rto", "fast", "prst", "ka", "wirebytes", "txbusy", "0wnd")
	for i := range p.Flows {
		f := &p.Flows[i]
		fmt.Fprintf(&b, "  %-8s %-6d %-6d %-16s %6d %6d %6d %6d %10d %7d‰ %8s\n",
			f.Host, f.Port, f.RPort, f.Verdict,
			f.RtoFires, f.FastRtx, f.Persists, f.Keepalives,
			f.BytesOnWire, f.TxBusyPerMille, units.Time(f.ZeroWndNs))
	}
	for _, w := range p.Wires {
		if len(w.Ports) == 0 && w.DropInj == 0 && w.DropUnattached == 0 && w.DropFull == 0 {
			continue
		}
		fmt.Fprintf(&b, "  wire %s: drops inj=%d unattached=%d", w.Label, w.DropInj, w.DropUnattached)
		if w.DropFull > 0 {
			fmt.Fprintf(&b, " full=%d", w.DropFull)
		}
		b.WriteString("\n")
		for _, pt := range w.Ports {
			label := strconv.Itoa(pt.Node)
			if pt.Name != "" {
				label = pt.Name
			}
			fmt.Fprintf(&b, "    node %-3s tx %4d‰ busy %8d frames %6d stalls (p99 %s)  rx %4d‰ busy %8d frames %6d stalls (p99 %s)\n",
				label,
				pt.TxBusyPerMille, pt.TxFrames, pt.TxStalls, units.Time(pt.TxStallP99Ns),
				pt.RxBusyPerMille, pt.RxFrames, pt.RxStalls, units.Time(pt.RxStallP99Ns))
		}
	}
	for _, h := range p.Hosts {
		if h.DropNoMem == 0 && h.DropNoBuf == 0 && h.RxRetries == 0 && h.ArbWaits == 0 {
			continue
		}
		fmt.Fprintf(&b, "  host %s (node %d): drop_no_mem=%d drop_no_buf=%d rx_retries=%d arb_waits=%d borrows=%d reclaims=%d\n",
			h.Host, h.Node, h.DropNoMem, h.DropNoBuf, h.RxRetries,
			h.ArbWaits, h.ArbBorrows, h.ArbReclaims)
	}
	return b.String()
}
