package netobs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/units"
)

// clock is a settable virtual clock for tests.
type clock struct{ t units.Time }

func (c *clock) now() units.Time { return c.t }

func TestNetObsNilSafety(t *testing.T) {
	var r *Recorder
	f := r.Flow("h", 1, 10, 20)
	if f != nil {
		t.Fatalf("nil recorder Flow() = %v, want nil", f)
	}
	w := r.Wire("hippi", 0)
	if w != nil {
		t.Fatalf("nil recorder Wire() = %v, want nil", w)
	}
	if d := r.Snapshot(); d != nil {
		t.Fatalf("nil recorder Snapshot() = %v, want nil", d)
	}
	if pm := r.Analyze(nil, Options{}); pm != nil {
		t.Fatalf("nil recorder Analyze() = %v, want nil", pm)
	}
	if b := r.Chrome(); b != nil {
		t.Fatalf("nil recorder Chrome() = %v, want nil", b)
	}
	// All hooks on the nil recorders must be harmless no-ops.
	f.Note(FlowState{Cwnd: 1})
	f.Rtx(RtxRTO)
	w.Tx(1, 2, 10, 100, 0, 0, units.Microsecond)
	w.Rx(2, 100, 0, 0, units.Microsecond)
	w.Drop(true)
}

// TestNetObsDisabledHooksZeroAlloc pins the nil-hook discipline: a disabled
// recorder's hot-path hooks must not allocate (they run per segment and per
// frame when instrumented code is compiled in but netobs is off).
func TestNetObsDisabledHooksZeroAlloc(t *testing.T) {
	var f *FlowRec
	var w *WireRec
	st := FlowState{Cwnd: 65536, SrttNs: 1000}
	if n := testing.AllocsPerRun(100, func() {
		f.Note(st)
		f.Rtx(RtxFast)
	}); n != 0 {
		t.Fatalf("nil FlowRec hooks allocate %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		w.Tx(1, 2, 10, 4096, 0, 0, units.Microsecond)
		w.Rx(2, 4096, 0, 0, units.Microsecond)
		w.Drop(false)
	}); n != 0 {
		t.Fatalf("nil WireRec hooks allocate %.1f/op, want 0", n)
	}
}

func TestNetObsOnChangeSampling(t *testing.T) {
	var c clock
	r := New(c.now)
	f := r.Flow("h", 1, 10, 20)

	st := FlowState{Cwnd: 1000, SndWnd: 500}
	f.Note(st)
	f.Note(st) // identical: deduped
	c.t = 5 * units.Microsecond
	f.Note(st) // still identical, even at a later time
	if len(f.samples) != 1 {
		t.Fatalf("unchanged state resampled: %d samples, want 1", len(f.samples))
	}

	// Two changes at the same instant coalesce into the final state.
	st.Cwnd = 2000
	f.Note(st)
	st.Cwnd = 3000
	f.Note(st)
	if len(f.samples) != 2 {
		t.Fatalf("same-instant updates did not coalesce: %d samples, want 2", len(f.samples))
	}
	if got := f.samples[1]; got.TNs != int64(c.t) || got.Cwnd != 3000 {
		t.Fatalf("coalesced sample = %+v, want t=%d cwnd=3000", got, c.t)
	}

	// A change at a later instant appends.
	c.t = 9 * units.Microsecond
	st.Flight = 42
	f.Note(st)
	if len(f.samples) != 3 || f.samples[2].Flight != 42 {
		t.Fatalf("later change not appended: %+v", f.samples)
	}
}

func TestNetObsSampleCapCountsDrops(t *testing.T) {
	var c clock
	r := New(c.now)
	f := r.Flow("h", 1, 10, 20)
	for i := 0; i < maxFlowSamples+10; i++ {
		c.t = units.Time(i+1) * units.Microsecond
		f.Note(FlowState{Cwnd: int64(i + 1)})
	}
	if len(f.samples) != maxFlowSamples {
		t.Fatalf("%d samples, want cap %d", len(f.samples), maxFlowSamples)
	}
	if f.dropped != 10 {
		t.Fatalf("dropped=%d, want 10 (overflow must be counted, never silent)", f.dropped)
	}
	if d := r.Snapshot(); d.Flows[0].DroppedSamples != 10 {
		t.Fatalf("snapshot dropped_samples=%d, want 10", d.Flows[0].DroppedSamples)
	}
}

func TestNetObsAccBusy(t *testing.T) {
	w := units.Millisecond
	// An interval spanning three windows: 0.5ms in #0, full #1, 0.25ms in #2.
	busy := accBusy(nil, w, w/2, 2*w+w/4)
	want := []units.Time{w / 2, w, w / 4}
	if len(busy) != len(want) {
		t.Fatalf("busy windows = %v, want %v", busy, want)
	}
	for i := range want {
		if busy[i] != want[i] {
			t.Fatalf("window %d busy = %v, want %v", i, busy[i], want[i])
		}
	}
	// A second interval inside window 1 accumulates on top (perMille
	// clamps at 1000‰; accBusy itself just sums).
	busy = accBusy(busy, w, w, w+w/4)
	if busy[1] != w+w/4 {
		t.Fatalf("window 1 busy = %v after overlap, want %v", busy[1], w+w/4)
	}
	// A later interval skips windows: the gap stays zero.
	busy = accBusy(busy, w, 4*w+w/2, 5*w)
	if len(busy) != 5 || busy[3] != 0 || busy[4] != w/2 {
		t.Fatalf("gapped busy = %v, want zeros through window 3 and %v in 4", busy, w/2)
	}
}

func TestNetObsBusyPerMille(t *testing.T) {
	w := units.Millisecond
	busy := accBusy(nil, w, 0, w/4) // 25% of window 0
	pm := perMille(busy, w)
	if len(pm) != 1 || pm[0] != 250 {
		t.Fatalf("perMille = %v, want [250]", pm)
	}
	if got := busyOver(busy, w, 0); got != 250 {
		t.Fatalf("busyOver = %d, want 250", got)
	}
	// Cutoff past the last active window: no data.
	if got := busyOver(busy, w, 2*w); got != 0 {
		t.Fatalf("busyOver past end = %d, want 0", got)
	}
}

func TestNetObsDigestDeterminism(t *testing.T) {
	mk := func(cwnds ...int64) *FlowRec {
		var c clock
		r := New(c.now)
		f := r.Flow("h", 1, 10, 20)
		for i, cw := range cwnds {
			c.t = units.Time(i+1) * units.Microsecond
			f.Note(FlowState{Cwnd: cw})
		}
		return f
	}
	a, b := mk(1, 2, 3), mk(1, 2, 3)
	if a.digest() != b.digest() {
		t.Fatalf("same series, different digests: %s vs %s", a.digest(), b.digest())
	}
	if d := mk(1, 2, 4); d.digest() == a.digest() {
		t.Fatalf("different series share digest %s", a.digest())
	}
}

// buildVerdictRecorder assembles a synthetic run exercising every verdict
// rule: flows on nodes 1..5 with tailored retransmission and wire activity.
func buildVerdictRecorder() (*Recorder, []HostMem, *clock) {
	c := &clock{}
	r := New(c.now)
	w := r.Wire("hippi", units.Millisecond)

	// Node 1: RTO fires against a memory-dropping receiver (node 9).
	starved := r.Flow("C0", 1, 100, 5001)
	// Node 2: RTO fires against a healthy receiver.
	rto := r.Flow("C1", 2, 101, 5001)
	// Node 3: persist probes (zero-window).
	wnd := r.Flow("C2", 3, 102, 5001)
	// Node 4: saturated source port, no loss.
	cont := r.Flow("C3", 4, 103, 5001)
	// Node 5: nothing notable.
	ok := r.Flow("C4", 5, 104, 5001)

	c.t = units.Millisecond
	for _, f := range []*FlowRec{starved, rto, wnd, cont, ok} {
		f.Note(FlowState{Cwnd: 65536, SndWnd: 65536})
	}
	starved.Rtx(RtxRTO)
	rto.Rtx(RtxRTO)
	wnd.Rtx(RtxPersist)
	c.t = 2 * units.Millisecond
	starved.Rtx(RtxRTO)
	rto.Rtx(RtxRTO)

	// Wire activity: every flow ships one frame so the join finds a
	// destination; the contended flow's port is busy the whole span.
	ms := units.Millisecond
	w.Tx(1, 9, 100, 4096, 0, 0, ms/10)
	w.Tx(2, 8, 101, 4096, 0, 0, ms/10)
	w.Tx(3, 8, 102, 4096, 0, 0, ms/10)
	w.Tx(4, 8, 103, 4096, 50*units.Microsecond, 0, 3*ms) // saturated + stalled
	w.Tx(5, 8, 104, 4096, 0, 0, ms/10)
	w.Rx(9, 4096, 0, 0, ms/10)

	mem := []HostMem{
		{Host: "S0", Node: 9, DropNoMem: 7},
		{Host: "S1", Node: 8},
	}
	return r, mem, c
}

func TestNetObsVerdictRules(t *testing.T) {
	r, mem, _ := buildVerdictRecorder()
	pm := r.Analyze(mem, Options{})
	want := map[string]string{
		"C0": VerdictNetmemStarved,
		"C1": VerdictRTOBound,
		"C2": VerdictWindowBound,
		"C3": VerdictPortContended,
		"C4": VerdictHealthy,
	}
	if len(pm.Flows) != len(want) {
		t.Fatalf("%d verdict rows, want %d", len(pm.Flows), len(want))
	}
	for _, f := range pm.Flows {
		if f.Verdict != want[f.Host] {
			t.Errorf("%s: verdict %q, want %q (row %+v)", f.Host, f.Verdict, want[f.Host], f)
		}
	}
	// The wire join must attribute bytes and find the starved peer's memory.
	if v := pm.Flows[0]; v.BytesOnWire != 4096 || v.DstNode != 9 || v.PeerDropNoMem != 7 {
		t.Fatalf("C0 wire join: %+v, want 4096 bytes to node 9 with drop_no_mem 7", v)
	}
	if got := pm.Verdict("C3", 103, 5001); got != VerdictPortContended {
		t.Fatalf("Verdict(C3) = %q", got)
	}
	if got := pm.Verdict("nope", 1, 2); got != "" {
		t.Fatalf("Verdict(unknown) = %q, want empty", got)
	}
}

func TestNetObsAnalyzeAfterCutoff(t *testing.T) {
	// The same synthetic run analyzed with a cutoff past every rtx event:
	// the loss-driven verdicts must relax (warmup exclusion semantics).
	r, mem, _ := buildVerdictRecorder()
	pm := r.Analyze(mem, Options{After: 10 * units.Millisecond})
	for _, f := range pm.Flows {
		if f.RtoFires != 0 || f.Persists != 0 {
			t.Fatalf("%s: post-cutoff rtx %d/%d, want 0/0", f.Host, f.RtoFires, f.Persists)
		}
		if f.Verdict == VerdictNetmemStarved || f.Verdict == VerdictRTOBound || f.Verdict == VerdictWindowBound {
			t.Fatalf("%s: loss verdict %q survived a cutoff past all events", f.Host, f.Verdict)
		}
	}
}

func TestNetObsSnapshotDeterministic(t *testing.T) {
	build := func() []byte {
		r, _, _ := buildVerdictRecorder()
		return r.Snapshot().JSON()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("same synthetic run, different dumps")
	}
	var d Dump
	if err := json.Unmarshal(a, &d); err != nil {
		t.Fatalf("dump does not round-trip: %v", err)
	}
	if len(d.Flows) != 5 || len(d.Wires) != 1 {
		t.Fatalf("dump shape: %d flows, %d wires", len(d.Flows), len(d.Wires))
	}
	if d.Wires[0].Ports[0].Node != 1 {
		t.Fatalf("ports not sorted by node: first is %d", d.Wires[0].Ports[0].Node)
	}
}

func TestNetObsDropSplitCounters(t *testing.T) {
	var c clock
	r := New(c.now)
	w := r.Wire("hippi", 0)
	w.Drop(true)
	w.Drop(true)
	w.Drop(false)
	d := r.Snapshot()
	if d.Wires[0].DropInj != 2 || d.Wires[0].DropUnattached != 1 {
		t.Fatalf("drop split = %d/%d, want 2/1", d.Wires[0].DropInj, d.Wires[0].DropUnattached)
	}
}

func TestNetObsChromeSmoke(t *testing.T) {
	r, _, _ := buildVerdictRecorder()
	out := r.Chrome()
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &f); err != nil {
		t.Fatalf("chrome output is not JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatalf("chrome output has no counter events")
	}
	for _, ev := range f.TraceEvents {
		if ev["ph"] != "C" {
			t.Fatalf("non-counter event: %v", ev)
		}
	}
}

func TestNetObsFormatSmoke(t *testing.T) {
	r, mem, _ := buildVerdictRecorder()
	out := r.Analyze(mem, Options{}).Format()
	for _, want := range []string{"netmem-starved", "RTO-bound", "window-bound",
		"port-contended", "healthy", "wire hippi", "drop_no_mem=7"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("postmortem text missing %q:\n%s", want, out)
		}
	}
}
