package obs

import (
	"repro/internal/units"
)

// Stage labels one leg of the packet data path, in transit order.
type Stage int

// Data-path stages: socket enqueue wait, protocol packetization, SDMA into
// network memory, the wire (media serialization, switch, and channel
// queueing), the receiver's MDMA/auto-DMA, and delivery up the receive
// stack.
const (
	StageSocket Stage = iota
	StagePacketize
	StageSDMA
	StageWire
	StageMDMA
	StageDeliver
	numStages
)

var stageNames = [numStages]string{
	"socket", "packetize", "sdma", "wire", "mdma", "deliver",
}

func (s Stage) String() string {
	if s >= 0 && int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage?"
}

// maxTraceEvents bounds the Chrome event buffer; beyond it events are
// counted as dropped (the drop count is exported — no silent truncation).
const maxTraceEvents = 1 << 20

// Trace collects packet spans: per-stage Chrome trace events, per-stage
// virtual-time aggregates, and the end-to-end latency histogram. One Trace
// is shared by all hosts of a testbed so a span can cross the wire. A nil
// *Trace is a valid no-op sink.
type Trace struct {
	now       func() units.Time
	nextID    int64
	events    []chromeEvent
	dropped   int64
	spans     int64
	latency   Histogram
	stageTime [numStages]units.Time
	stageN    [numStages]int64
	crit      *CritRec
}

// EnableCrit attaches a causal critical-path recorder to the trace. Spans
// started afterwards carry it, so their CritEv calls record happens-before
// events; with it unset (the default) every crit hook is a nil no-op.
func (t *Trace) EnableCrit() {
	if t != nil && t.crit == nil {
		t.crit = NewCritRec(t.now)
	}
}

// Crit returns the trace's causal recorder (nil when not enabled).
func (t *Trace) Crit() *CritRec {
	if t == nil {
		return nil
	}
	return t.crit
}

// NewTrace returns a trace clocked by now.
func NewTrace(now func() units.Time) *Trace {
	return &Trace{now: now}
}

// chromeEvent is one Chrome trace-event: "X" complete events for stages,
// "i" instants, and "s"/"f" flow events that draw the cross-host arrow
// when a span migrates from the sender's timeline to the receiver's.
// Timestamps and durations are microseconds of virtual time.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Cat  string  `json:"cat,omitempty"`
	ID   int64   `json:"id,omitempty"`
	BP   string  `json:"bp,omitempty"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  string  `json:"pid"`
	TID  string  `json:"tid"`
	Args evArgs  `json:"args"`
}

type evArgs struct {
	Span int64 `json:"span"`
	Rtx  bool  `json:"rtx,omitempty"`
	// Flow is the data flow id (the sender's local port), Desc the sosend
	// descriptor id, and Off/Len the stream byte range the packet carries —
	// set by the transport so one byte range's journey is traceable.
	Flow int   `json:"flow,omitempty"`
	Desc int64 `json:"desc,omitempty"`
	Off  int64 `json:"off,omitempty"`
	Len  int64 `json:"len,omitempty"`
}

func micros(t units.Time) float64 { return float64(t) / float64(units.Microsecond) }

func (t *Trace) emit(ev chromeEvent) {
	if len(t.events) >= maxTraceEvents {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Event emits an instant event (Chrome "i" phase) on pid's timeline —
// point occurrences like injected faults that have no duration. A nil
// *Trace is a no-op.
func (t *Trace) Event(pid, tid, name string) {
	if t == nil {
		return
	}
	t.emit(chromeEvent{Name: name, Ph: "i", TS: micros(t.now()), PID: pid, TID: tid})
}

// Span follows one packet through the data path. Exactly one stage is open
// at a time; Enter closes the current stage (emitting its trace event) and
// opens the next. A nil *Span is a valid no-op, which is how uninstrumented
// paths (UDP, raw, disabled telemetry) flow through the same code.
type Span struct {
	tr       *Trace
	id       int64
	host     string
	start    units.Time
	cur      Stage
	curStart units.Time
	open     bool
	rtx      bool
	done     bool
	silent   bool
	flow     int
	desc     int64
	off, len int64
	crit     *CritRec
	critCur  int32
}

// StartSpan opens a span originating on host, beginning now.
func (t *Trace) StartSpan(host string) *Span {
	if t == nil {
		return nil
	}
	return t.StartSpanAt(host, t.now())
}

// StartSpanAt opens a span whose life began at an earlier instant (e.g. the
// socket-enqueue time recorded before the segment was cut).
func (t *Trace) StartSpanAt(host string, at units.Time) *Span {
	if t == nil {
		return nil
	}
	t.nextID++
	return &Span{tr: t, id: t.nextID, host: host, start: at, crit: t.crit}
}

// StartCarrier opens a causal carrier span on host: a silent span that
// rides a packet which carries no traced payload (a pure ACK) solely so
// its critical-path events cross the wire with it. It emits no Chrome
// events and counts toward no stage or latency statistics — baselines stay
// byte-identical — and exists only when the causal recorder is enabled.
func (t *Trace) StartCarrier(host string) *Span {
	if t == nil || t.crit == nil {
		return nil
	}
	sp := t.StartSpanAt(host, t.now())
	sp.silent = true
	return sp
}

// MarkRetransmit tags the span as a retransmission (carried into its trace
// events).
func (s *Span) MarkRetransmit() {
	if s != nil {
		s.rtx = true
	}
}

// SetFlow tags the span (and all its subsequent trace events) with the
// data flow id — the sender's local port.
func (s *Span) SetFlow(flow int) {
	if s != nil {
		s.flow = flow
	}
}

// SetDesc tags the span with the sosend descriptor id its payload came
// from.
func (s *Span) SetDesc(desc int64) {
	if s != nil {
		s.desc = desc
	}
}

// SetRange tags the span with the stream byte range [off, off+n) the
// packet carries.
func (s *Span) SetRange(off, n int64) {
	if s != nil {
		s.off, s.len = off, n
	}
}

// EnterAt closes the currently open stage at instant at and opens stage.
func (s *Span) EnterAt(stage Stage, at units.Time) {
	if s == nil || s.done {
		return
	}
	s.closeStage(at)
	s.cur, s.curStart, s.open = stage, at, true
}

// Enter is EnterAt at the trace's current virtual time.
func (s *Span) Enter(stage Stage) {
	if s == nil || s.done {
		return
	}
	s.EnterAt(stage, s.tr.now())
}

// EnterOn is Enter on another host's timeline: when a packet crosses the
// wire, the receiving side calls EnterOn with its own host label. The
// stage that was open closes on the old host, a Chrome flow-event pair
// ("s" on the old timeline, binding "f" on the new) records the handoff
// so Perfetto draws the cross-host arrow, and the new stage opens under
// the new host's pid. With an empty or unchanged host it is plain Enter.
func (s *Span) EnterOn(stage Stage, host string) {
	if s == nil || s.done {
		return
	}
	at := s.tr.now()
	if host != "" && host != s.host {
		if s.silent {
			s.host = host
		} else {
			s.closeStage(at)
			ts := micros(at)
			s.tr.emit(chromeEvent{
				Name: "xfer", Ph: "s", Cat: "dataflow", ID: s.id, TS: ts,
				PID: s.host, TID: stageNames[s.cur], Args: s.args(),
			})
			s.host = host
			s.tr.emit(chromeEvent{
				Name: "xfer", Ph: "f", Cat: "dataflow", ID: s.id, BP: "e", TS: ts,
				PID: s.host, TID: stageNames[stage], Args: s.args(),
			})
		}
	}
	s.EnterAt(stage, at)
}

func (s *Span) args() evArgs {
	return evArgs{Span: s.id, Rtx: s.rtx, Flow: s.flow, Desc: s.desc, Off: s.off, Len: s.len}
}

func (s *Span) closeStage(end units.Time) {
	if !s.open {
		return
	}
	if s.silent {
		s.open = false
		return
	}
	d := end - s.curStart
	t := s.tr
	t.stageTime[s.cur] += d
	t.stageN[s.cur]++
	t.emit(chromeEvent{
		Name: stageNames[s.cur], Ph: "X",
		TS: micros(s.curStart), Dur: micros(d),
		PID: s.host, TID: stageNames[s.cur],
		Args: s.args(),
	})
	s.open = false
}

// End closes the span: the open stage is finished and the end-to-end
// latency observed. Spans that are dropped in flight simply never End —
// their completed stage events remain in the trace, but they do not count
// toward the latency histogram.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	end := s.tr.now()
	s.closeStage(end)
	s.done = true
	if s.silent {
		return
	}
	s.tr.spans++
	s.tr.latency.Observe(end - s.start)
}

// CritEv records a critical-path event on the span's causal chain: its
// binding parent is the span's current chain cursor (the previous event
// recorded on this span, or whatever SetCritCur seeded) and the returned
// id becomes the new cursor. Valid after End — receive-side processing
// continues a packet's chain after the data-path span has closed. A nil
// span, or one whose trace has no recorder, is a free no-op.
func (s *Span) CritEv(cause Cause, kind string) int32 {
	if s == nil || s.crit == nil {
		return 0
	}
	s.critCur = s.crit.Ev(s.critCur, cause, kind, s.host, s.flow, s.off, s.len)
	return s.critCur
}

// CritEvJoin is CritEv with a second dependency: the event waited for both
// the span's chain cursor (under cause c1) and event p2 (under cause c2).
// The later-finishing parent binds; the other is kept as a slack edge.
func (s *Span) CritEvJoin(c1 Cause, p2 int32, c2 Cause, kind string) int32 {
	if s == nil || s.crit == nil {
		return 0
	}
	s.critCur = s.crit.EvJoin(s.critCur, c1, p2, c2, kind, s.host, s.flow, s.off, s.len)
	return s.critCur
}

// CritCur returns the span's causal chain cursor (0 when no event has been
// recorded).
func (s *Span) CritCur() int32 {
	if s == nil {
		return 0
	}
	return s.critCur
}

// SetCritCur seeds the span's causal chain cursor with an event recorded
// outside the span (e.g. the socket writer's enqueue event), so the span's
// first CritEv hangs off it.
func (s *Span) SetCritCur(id int32) {
	if s != nil {
		s.critCur = id
	}
}

// CritHost returns the host label the span currently runs on, for causal
// events recorded off-span.
func (s *Span) CritHost() string {
	if s == nil {
		return ""
	}
	return s.host
}

// StageStat is one stage's exported aggregate.
type StageStat struct {
	Stage   string `json:"stage"`
	Count   int64  `json:"count"`
	TotalNs int64  `json:"total_ns"`
	AvgNs   int64  `json:"avg_ns"`
}

// SpanStats is the exported span summary: completed-span count, end-to-end
// latency histogram, and the per-stage breakdown in data-path order.
type SpanStats struct {
	Spans         int64        `json:"spans"`
	Latency       HistSnapshot `json:"latency"`
	Stages        []StageStat  `json:"stages"`
	DroppedEvents int64        `json:"dropped_events,omitempty"`
}

// Latency returns the live end-to-end latency histogram (nil for a nil
// trace), for samplers that want running quantiles mid-run.
func (t *Trace) Latency() *Histogram {
	if t == nil {
		return nil
	}
	return &t.latency
}

// Stats exports the trace's aggregates.
func (t *Trace) Stats() SpanStats {
	if t == nil {
		return SpanStats{}
	}
	s := SpanStats{Spans: t.spans, Latency: t.latency.Snapshot(), DroppedEvents: t.dropped}
	for st := Stage(0); st < numStages; st++ {
		if t.stageN[st] == 0 {
			continue
		}
		s.Stages = append(s.Stages, StageStat{
			Stage:   st.String(),
			Count:   t.stageN[st],
			TotalNs: int64(t.stageTime[st]),
			AvgNs:   int64(t.stageTime[st]) / t.stageN[st],
		})
	}
	return s
}
