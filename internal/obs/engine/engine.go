// Package engine is the simulator's self-observatory: a meta-profiler over
// the discrete-event core that measures the *real* work the simulator does
// — events dispatched per kind, event-queue depth and timer high-water
// marks, kernel charge counts, and (advisory) wall-clock nanoseconds and
// heap allocations attributed per event kind — as opposed to every other
// obs layer, which measures the *simulated* system in virtual time.
//
// Two field classes come out of a run, and the split is load-bearing for
// CI (see cmd/benchdiff):
//
//   - Deterministic: counts derived purely from the virtual event sequence
//     (events by kind, pending-event high-waters, kernel charges). The
//     same seed reproduces them byte-for-byte on any machine, so the
//     simbench gate diffs them exactly.
//
//   - Advisory: wall-clock time and allocation counts. These depend on
//     the machine, the Go version, GC timing, and pool warm-up, so they
//     are committed for trend-tracking but never failed on.
//
// The observer implements sim.Monitor. Its inner-loop callbacks are pure
// integer arithmetic and allocate nothing; the clock and
// runtime.ReadMemStats are consulted only every sliceLen dispatches, with
// the slice's deltas attributed to event kinds proportionally to the
// slice's kind mix. Disabled (no monitor installed, nil *Observer hooks)
// the whole layer is one nil check per event and allocates zero bytes.
package engine

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/sim"
)

// sliceLen is the dispatch-slice length between wall-clock/memstats
// samples: long enough to keep runtime.ReadMemStats (a stop-the-world
// sampler) far out of the inner loop, short enough that attribution by
// slice kind mix tracks workload phases.
const sliceLen = 4096

// Observer accumulates engine meta-observations. One observer may watch
// several engines in sequence (the simbench soak workload runs 22 seeded
// testbeds through one observer); counts simply accumulate. The zero
// value is ready to use after Attach (or a direct SetMonitor) — a nil
// *Observer is the disabled layer: every method is a no-op.
type Observer struct {
	// Deterministic: pure functions of the virtual event sequence.
	events    [sim.NumKinds]int64
	pending   [sim.NumKinds]int64
	pendingHW [sim.NumKinds]int64
	queueHW   int64

	kernCharges int64 // Work/IntrWork calls
	kernSlices  int64 // quantum slices issued by those charges

	// Advisory: wall clock and allocations, sampled per slice.
	wallNs      [sim.NumKinds]int64
	allocsBy    [sim.NumKinds]int64
	allocs      int64
	allocBytes  int64
	sliceEvents [sim.NumKinds]int64
	sliceCount  int64
	sliceStart  time.Time
	lastMallocs uint64
	lastBytes   uint64
	ms          runtime.MemStats // reused across slices: no per-slice alloc
	open        bool
}

// New returns an empty observer.
func New() *Observer { return &Observer{} }

// Attach installs the observer as eng's monitor and opens the first
// measurement slice. Call it before the simulation schedules work so the
// pending-event accounting sees every push.
func (o *Observer) Attach(eng *sim.Engine) {
	if o == nil {
		return
	}
	o.openSlice()
	eng.SetMonitor(o)
}

// openSlice stamps the wall clock and allocator baselines for the next
// dispatch slice.
func (o *Observer) openSlice() {
	runtime.ReadMemStats(&o.ms)
	o.lastMallocs = o.ms.Mallocs
	o.lastBytes = o.ms.TotalAlloc
	o.sliceStart = time.Now()
	o.open = true
}

// closeSlice folds the finished slice's wall-clock and allocation deltas
// into the per-kind advisory totals, split proportionally to the slice's
// event-kind mix (remainders land on the slice's dominant kind), then
// reopens. Proportional attribution is honest only at slice granularity —
// which is why these fields are advisory, never exact-diffed.
func (o *Observer) closeSlice() {
	if o.sliceCount == 0 {
		return
	}
	if !o.open {
		// Monitor installed without Attach: no baselines yet; start
		// measuring from here.
		o.clearSlice()
		o.openSlice()
		return
	}
	wall := time.Since(o.sliceStart).Nanoseconds()
	runtime.ReadMemStats(&o.ms)
	mallocs := int64(o.ms.Mallocs - o.lastMallocs)
	bytes := int64(o.ms.TotalAlloc - o.lastBytes)
	o.allocs += mallocs
	o.allocBytes += bytes

	var dominant sim.Kind
	var wallRem, allocRem = wall, mallocs
	for k := sim.Kind(0); k < sim.NumKinds; k++ {
		n := o.sliceEvents[k]
		if n > o.sliceEvents[dominant] {
			dominant = k
		}
		w := wall * n / o.sliceCount
		a := mallocs * n / o.sliceCount
		o.wallNs[k] += w
		o.allocsBy[k] += a
		wallRem -= w
		allocRem -= a
	}
	o.wallNs[dominant] += wallRem
	o.allocsBy[dominant] += allocRem
	o.clearSlice()
	// Reuse the sample just taken as the next slice's baseline instead of
	// reading MemStats a second time.
	o.lastMallocs = o.ms.Mallocs
	o.lastBytes = o.ms.TotalAlloc
	o.sliceStart = time.Now()
}

func (o *Observer) clearSlice() {
	for k := range o.sliceEvents {
		o.sliceEvents[k] = 0
	}
	o.sliceCount = 0
}

// Scheduled implements sim.Monitor: per-kind pending counts and the queue
// depth high-water.
func (o *Observer) Scheduled(kind sim.Kind, pending int) {
	if o == nil {
		return
	}
	o.pending[kind]++
	if o.pending[kind] > o.pendingHW[kind] {
		o.pendingHW[kind] = o.pending[kind]
	}
	if int64(pending) > o.queueHW {
		o.queueHW = int64(pending)
	}
}

// Dispatched implements sim.Monitor: per-kind dispatch counts and the
// slice clock.
func (o *Observer) Dispatched(kind sim.Kind, pending int) {
	if o == nil {
		return
	}
	o.events[kind]++
	// Events scheduled before Attach dispatch without a matching
	// Scheduled; clamp instead of going negative.
	if o.pending[kind] > 0 {
		o.pending[kind]--
	}
	o.sliceEvents[kind]++
	if o.sliceCount++; o.sliceCount >= sliceLen {
		o.closeSlice()
	}
}

// KernCharge counts one kernel Work/IntrWork call. Nil-safe: the disabled
// path is one nil check, zero allocations.
func (o *Observer) KernCharge() {
	if o != nil {
		o.kernCharges++
	}
}

// KernSlice counts one quantum slice issued by a kernel charge (each
// slice is a CPU acquire + sleep + release — the dominant source of proc
// events under load).
func (o *Observer) KernSlice() {
	if o != nil {
		o.kernSlices++
	}
}

// KindCounts is one value per event kind, in sim.Kind order.
type KindCounts struct {
	Generic int64 `json:"generic"`
	Proc    int64 `json:"proc"`
	Timer   int64 `json:"timer"`
	Wire    int64 `json:"wire"`
	DMA     int64 `json:"dma"`
}

func kindCounts(a [sim.NumKinds]int64) KindCounts {
	return KindCounts{
		Generic: a[sim.KindGeneric],
		Proc:    a[sim.KindProc],
		Timer:   a[sim.KindTimer],
		Wire:    a[sim.KindWire],
		DMA:     a[sim.KindDMA],
	}
}

// Total sums the per-kind values.
func (k KindCounts) Total() int64 {
	return k.Generic + k.Proc + k.Timer + k.Wire + k.DMA
}

// Deterministic is the exact-diffed section of a snapshot: identical
// seeds reproduce it byte-for-byte on any machine and Go version.
type Deterministic struct {
	EventsTotal int64      `json:"events_total"`
	Events      KindCounts `json:"events_by_kind"`
	// QueueDepthHW is the event-heap depth high-water mark.
	QueueDepthHW int64 `json:"queue_depth_hw"`
	// PendingHW holds per-kind pending-event high-waters; the timer entry
	// is the timer-wheel occupancy peak.
	PendingHW   KindCounts `json:"pending_hw"`
	KernCharges int64      `json:"kern_charges"`
	KernSlices  int64      `json:"kern_slices"`
}

// Advisory is the wall-clock section: machine- and Go-version-dependent,
// reported in diffs but never failed on.
type Advisory struct {
	WallNs       int64      `json:"wall_ns"`
	NsPerEvent   float64    `json:"ns_per_event"`
	EventsPerSec float64    `json:"events_per_sec"`
	Allocs       int64      `json:"allocs"`
	AllocBytes   int64      `json:"alloc_bytes"`
	AllocsPerEv  float64    `json:"allocs_per_event"`
	WallNsByKind KindCounts `json:"wall_ns_by_kind"`
	AllocsByKind KindCounts `json:"allocs_by_kind"`
}

// Snapshot is an observer's exported state.
type Snapshot struct {
	Det Deterministic `json:"deterministic"`
	Adv Advisory      `json:"advisory"`
}

// Snapshot closes the open slice and exports the accumulated state. The
// observer keeps accumulating afterwards; successive snapshots are
// cumulative.
func (o *Observer) Snapshot() Snapshot {
	if o == nil {
		return Snapshot{}
	}
	o.closeSlice()
	var s Snapshot
	s.Det = Deterministic{
		Events:       kindCounts(o.events),
		QueueDepthHW: o.queueHW,
		PendingHW:    kindCounts(o.pendingHW),
		KernCharges:  o.kernCharges,
		KernSlices:   o.kernSlices,
	}
	s.Det.EventsTotal = s.Det.Events.Total()
	s.Adv = Advisory{
		WallNs:       kindCounts(o.wallNs).Total(),
		Allocs:       o.allocs,
		AllocBytes:   o.allocBytes,
		WallNsByKind: kindCounts(o.wallNs),
		AllocsByKind: kindCounts(o.allocsBy),
	}
	if n := s.Det.EventsTotal; n > 0 {
		s.Adv.NsPerEvent = round2(float64(s.Adv.WallNs) / float64(n))
		s.Adv.AllocsPerEv = round2(float64(s.Adv.Allocs) / float64(n))
	}
	if s.Adv.WallNs > 0 {
		s.Adv.EventsPerSec = round2(float64(s.Det.EventsTotal) * 1e9 / float64(s.Adv.WallNs))
	}
	return s
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

// JSON renders the snapshot (indented, newline-terminated, deterministic
// field order).
func (s Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic("engine: snapshot marshal: " + err.Error())
	}
	return append(b, '\n')
}

// Format renders a human summary.
func (s Snapshot) Format() string {
	var b strings.Builder
	d, a := s.Det, s.Adv
	fmt.Fprintf(&b, "events %d (proc %d, timer %d, wire %d, dma %d, generic %d)  queue hw %d  timer hw %d\n",
		d.EventsTotal, d.Events.Proc, d.Events.Timer, d.Events.Wire, d.Events.DMA, d.Events.Generic,
		d.QueueDepthHW, d.PendingHW.Timer)
	fmt.Fprintf(&b, "kern charges %d (slices %d)\n", d.KernCharges, d.KernSlices)
	fmt.Fprintf(&b, "advisory: %.2f ms wall, %.0f events/sec, %.1f ns/event, %.2f allocs/event (%d B total)\n",
		float64(a.WallNs)/1e6, a.EventsPerSec, a.NsPerEvent, a.AllocsPerEv, a.AllocBytes)
	return b.String()
}
