package engine

import (
	"bytes"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// runWorkload drives one small deterministic simulation through an
// observer: a proc that sleeps twice, a timer, a wire delivery, a DMA
// completion, and a generic event.
func runWorkload(o *Observer) {
	eng := sim.NewEngine(1)
	o.Attach(eng)
	eng.AtKind(5*units.Microsecond, sim.KindWire, func() {})
	eng.AtKind(6*units.Microsecond, sim.KindDMA, func() {})
	eng.AfterKind(7*units.Microsecond, sim.KindTimer, func() {})
	eng.At(8*units.Microsecond, func() {}) // generic
	eng.Go("worker", func(p *sim.Proc) {
		p.Sleep(units.Microsecond)
		o.KernCharge()
		o.KernSlice()
		o.KernSlice()
		p.Sleep(units.Microsecond)
	})
	eng.Run()
}

func TestObserverCounts(t *testing.T) {
	o := New()
	runWorkload(o)
	s := o.Snapshot()
	d := s.Det

	// The proc contributes: initial Go event + 2 sleep wakeups = 3.
	if d.Events.Proc != 3 {
		t.Fatalf("proc events = %d, want 3", d.Events.Proc)
	}
	if d.Events.Wire != 1 || d.Events.DMA != 1 || d.Events.Timer != 1 || d.Events.Generic != 1 {
		t.Fatalf("kind counts = %+v, want wire/dma/timer/generic all 1", d.Events)
	}
	if d.EventsTotal != d.Events.Total() || d.EventsTotal != 7 {
		t.Fatalf("events_total = %d, want 7", d.EventsTotal)
	}
	if d.KernCharges != 1 || d.KernSlices != 2 {
		t.Fatalf("kern charges/slices = %d/%d, want 1/2", d.KernCharges, d.KernSlices)
	}
	// Five events are pending at once before any dispatch (wire, dma,
	// timer, generic, proc start), so the queue high-water sees them all.
	if d.QueueDepthHW < 5 {
		t.Fatalf("queue_depth_hw = %d, want >= 5", d.QueueDepthHW)
	}
	if d.PendingHW.Timer != 1 {
		t.Fatalf("timer pending hw = %d, want 1", d.PendingHW.Timer)
	}
	if s.Adv.WallNs <= 0 {
		t.Fatalf("advisory wall_ns = %d, want > 0", s.Adv.WallNs)
	}
}

// TestObserverDeterministicSections runs the same seeded workload through
// two observers: the deterministic section must match exactly even though
// the advisory sections (wall clock) will differ.
func TestObserverDeterministicSections(t *testing.T) {
	a, b := New(), New()
	runWorkload(a)
	runWorkload(b)
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.Det != sb.Det {
		t.Fatalf("deterministic sections differ:\n%+v\n%+v", sa.Det, sb.Det)
	}
}

// TestObserverAccumulates pins that one observer watching several engines
// in sequence (the soak workload pattern) sums rather than resets.
func TestObserverAccumulates(t *testing.T) {
	o := New()
	runWorkload(o)
	runWorkload(o)
	d := o.Snapshot().Det
	if d.EventsTotal != 14 {
		t.Fatalf("events_total after two runs = %d, want 14", d.EventsTotal)
	}
	if d.KernCharges != 2 || d.KernSlices != 4 {
		t.Fatalf("kern charges/slices = %d/%d, want 2/4", d.KernCharges, d.KernSlices)
	}
}

// TestNilObserverZeroAlloc is the disabled-path contract: with no observer
// installed every hook must be a nil check and nothing else — zero
// allocations, no panics. This is what makes benchcheck/audit byte-identical
// with the layer compiled in.
func TestNilObserverZeroAlloc(t *testing.T) {
	var o *Observer
	if n := testing.AllocsPerRun(100, func() {
		o.Scheduled(sim.KindProc, 3)
		o.Dispatched(sim.KindProc, 2)
		o.KernCharge()
		o.KernSlice()
		o.Attach(nil)
		_ = o.Snapshot()
	}); n != 0 {
		t.Fatalf("disabled path allocates %.1f per run, want 0", n)
	}
}

// TestEnabledHotPathZeroAlloc pins that the enabled inner-loop callbacks
// allocate nothing either (sampling happens only at slice boundaries, and
// the MemStats buffer is part of the observer).
func TestEnabledHotPathZeroAlloc(t *testing.T) {
	o := New()
	if n := testing.AllocsPerRun(100, func() {
		o.Scheduled(sim.KindWire, 7)
		o.Dispatched(sim.KindWire, 6)
		o.KernCharge()
		o.KernSlice()
	}); n != 0 {
		t.Fatalf("enabled hot path allocates %.1f per run, want 0", n)
	}
}

// TestEngineWithoutMonitor pins that an engine with no monitor behaves
// exactly as before the observatory existed.
func TestEngineWithoutMonitor(t *testing.T) {
	eng := sim.NewEngine(1)
	ran := 0
	eng.AtKind(units.Microsecond, sim.KindWire, func() { ran++ })
	eng.After(2*units.Microsecond, func() { ran++ })
	eng.Run()
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
	if eng.Now() != 2*units.Microsecond {
		t.Fatalf("clock = %v, want 2µs", eng.Now())
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	o := New()
	runWorkload(o)
	j := o.Snapshot().JSON()
	for _, key := range []string{`"deterministic"`, `"advisory"`, `"events_by_kind"`, `"queue_depth_hw"`, `"kern_charges"`, `"wall_ns"`, `"allocs_per_event"`} {
		if !bytes.Contains(j, []byte(key)) {
			t.Fatalf("snapshot JSON missing %s:\n%s", key, j)
		}
	}
	// The deterministic section must precede the advisory one so humans
	// diffing the file see the exact-diffed half first.
	if bytes.Index(j, []byte(`"deterministic"`)) > bytes.Index(j, []byte(`"advisory"`)) {
		t.Fatal("deterministic section should come before advisory")
	}
}
