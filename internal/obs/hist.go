package obs

import (
	"repro/internal/units"
)

// Histogram accumulates virtual-time durations in log2 buckets. Bucket i
// counts observations with d <= 1µs·2^i; the top bucket absorbs overflow.
// A nil *Histogram is a valid no-op sink.
type Histogram struct {
	count    int64
	sum      units.Time
	min, max units.Time
	buckets  [histBuckets]int64
}

// histBuckets spans 1µs .. ~33.5s in 26 log2 steps, comfortably covering
// per-packet latencies and retransmission timeouts alike.
const histBuckets = 26

// histBound returns bucket i's inclusive upper bound.
func histBound(i int) units.Time {
	return units.Microsecond << i
}

// Observe records one duration.
func (h *Histogram) Observe(d units.Time) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	i := 0
	for i < histBuckets-1 && d > histBound(i) {
		i++
	}
	h.buckets[i]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// HistBucket is one exported histogram bucket.
type HistBucket struct {
	LeNs  int64 `json:"le_ns"`
	Count int64 `json:"count"`
}

// HistSnapshot is a histogram's exported form. Only non-empty buckets are
// listed.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	SumNs   int64        `json:"sum_ns"`
	MinNs   int64        `json:"min_ns"`
	MaxNs   int64        `json:"max_ns"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot exports the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil || h.count == 0 {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Count: h.count,
		SumNs: int64(h.sum),
		MinNs: int64(h.min),
		MaxNs: int64(h.max),
	}
	for i, n := range h.buckets {
		if n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{LeNs: int64(histBound(i)), Count: n})
		}
	}
	return s
}
