package obs

import (
	"math"
	"math/bits"

	"repro/internal/units"
)

// Histogram accumulates virtual-time durations in log2 buckets. Bucket i
// counts observations with d <= 1µs·2^i; the top bucket absorbs overflow.
// A nil *Histogram is a valid no-op sink.
type Histogram struct {
	count    int64
	sum      units.Time
	min, max units.Time
	buckets  [histBuckets]int64
}

// histBuckets spans 1µs .. ~33.5s in 26 log2 steps, comfortably covering
// per-packet latencies and retransmission timeouts alike.
const histBuckets = 26

// histBound returns bucket i's inclusive upper bound.
func histBound(i int) units.Time {
	return units.Microsecond << i
}

// bucketIndex maps a duration to its bucket in O(1), with exact behavior at
// power-of-two bounds: d == 1µs<<i lands in bucket i (its inclusive upper
// bound), d one nanosecond above lands in bucket i+1.
func bucketIndex(d units.Time) int {
	if d <= units.Microsecond {
		return 0
	}
	// Ceiling of d in microseconds; bucket i is the log2 of the smallest
	// power of two ≥ that.
	m := uint64((d + units.Microsecond - 1) / units.Microsecond)
	i := bits.Len64(m - 1)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// Observe records one duration.
func (h *Histogram) Observe(d units.Time) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[bucketIndex(d)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Quantile returns an upper bound on the p-quantile (0 ≤ p ≤ 1) of the
// observed durations: the inclusive upper bound of the first bucket whose
// cumulative count reaches ⌈p·count⌉, clamped to the observed [min, max].
// Deterministic integer arithmetic throughout; 0 (never a panic or a
// garbage conversion) for a nil or empty histogram or a NaN p.
func (h *Histogram) Quantile(p float64) units.Time {
	if h == nil || h.count == 0 || math.IsNaN(p) {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	target := int64(p * float64(h.count))
	if float64(target) < p*float64(h.count) {
		target++
	}
	if target > h.count {
		target = h.count
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			q := histBound(i)
			if q > h.max {
				q = h.max
			}
			if q < h.min {
				q = h.min
			}
			return q
		}
	}
	return h.max
}

// HistBucket is one exported histogram bucket.
type HistBucket struct {
	LeNs  int64 `json:"le_ns"`
	Count int64 `json:"count"`
}

// HistSnapshot is a histogram's exported form. Only non-empty buckets are
// listed.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	SumNs   int64        `json:"sum_ns"`
	MinNs   int64        `json:"min_ns"`
	MaxNs   int64        `json:"max_ns"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot exports the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil || h.count == 0 {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Count: h.count,
		SumNs: int64(h.sum),
		MinNs: int64(h.min),
		MaxNs: int64(h.max),
	}
	for i, n := range h.buckets {
		if n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{LeNs: int64(histBound(i)), Count: n})
		}
	}
	return s
}
