package ledger

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/units"
)

// Touches is one run of consecutive stream bytes with the same touch
// count: bytes [Off, Off+Len) were each touched N times.
type Touches struct {
	Off, Len units.Size
	N        int
}

// Audit is one flow's per-byte view of the ledger over the stream range
// [0, Total).
type Audit struct {
	Flow    int
	Total   units.Size
	Dropped int64
	recs    []Record
}

// Audit selects one flow's records for per-byte analysis over [0, total).
func (l *Ledger) Audit(flow int, total units.Size) *Audit {
	a := &Audit{Flow: flow, Total: total, Dropped: l.dropped}
	for _, r := range l.records {
		if r.Flow == flow {
			a.recs = append(a.recs, r)
		}
	}
	return a
}

// PerByte folds the records passing keep into a touch histogram: a
// partition of [0, Total) into maximal runs of equal touch count,
// including zero-count gaps. The sweep is over interval endpoints, so it
// is exact and cheap regardless of transfer size.
func (a *Audit) PerByte(keep func(Record) bool) []Touches {
	delta := map[units.Size]int{}
	for _, r := range a.recs {
		if keep != nil && !keep(r) {
			continue
		}
		lo, hi := r.Off, r.Off+r.Len
		if lo < 0 {
			lo = 0
		}
		if hi > a.Total {
			hi = a.Total
		}
		if hi <= lo {
			continue
		}
		delta[lo]++
		delta[hi]--
	}
	cuts := make([]units.Size, 0, len(delta)+2)
	cuts = append(cuts, 0, a.Total)
	for off := range delta {
		cuts = append(cuts, off)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	var out []Touches
	depth := 0
	for i := 0; i < len(cuts); i++ {
		off := cuts[i]
		if off >= a.Total {
			break
		}
		if i > 0 && off == cuts[i-1] {
			continue
		}
		depth += delta[off]
		end := a.Total
		for j := i + 1; j < len(cuts); j++ {
			if cuts[j] > off {
				end = cuts[j]
				break
			}
		}
		if n := len(out); n > 0 && out[n-1].N == depth {
			out[n-1].Len += end - off
		} else {
			out = append(out, Touches{Off: off, Len: end - off, N: depth})
		}
	}
	if len(out) == 0 && a.Total > 0 {
		out = append(out, Touches{Off: 0, Len: a.Total, N: 0})
	}
	return out
}

// MinMax returns the smallest and largest per-byte touch count over the
// histogram's range.
func MinMax(h []Touches) (min, max int) {
	if len(h) == 0 {
		return 0, 0
	}
	min, max = h[0].N, h[0].N
	for _, t := range h[1:] {
		if t.N < min {
			min = t.N
		}
		if t.N > max {
			max = t.N
		}
	}
	return min, max
}

// Count totals the events and bytes of the records passing keep (bytes
// clipped to [0, Total)).
func (a *Audit) Count(keep func(Record) bool) (events int64, bytes units.Size) {
	for _, r := range a.recs {
		if keep != nil && !keep(r) {
			continue
		}
		lo, hi := r.Off, r.Off+r.Len
		if lo < 0 {
			lo = 0
		}
		if hi > a.Total {
			hi = a.Total
		}
		if hi <= lo {
			continue
		}
		events++
		bytes += hi - lo
	}
	return events, bytes
}

// onHost selects host+kind, optionally excluding retransmit-flagged
// records.
func onHost(host string, kind Kind, skipRtx bool) func(Record) bool {
	return func(r Record) bool {
		if r.Host != host || r.Kind != kind {
			return false
		}
		return !(skipRtx && r.Flags&FlagRtx != 0)
	}
}

// AuditConfig names the parties of an end-to-end assertion.
type AuditConfig struct {
	// Flow is the data sender's local port (see Ledger.MainFlow).
	Flow int
	// Total is the stream length in bytes.
	Total units.Size
	// SndHost and RcvHost are the hook labels of the data sender and
	// receiver.
	SndHost, RcvHost string
	// Strict demands the exact clean-run counts (no faults, no
	// retransmissions). Loose mode — for fault soaks — grants the
	// documented retransmit allowance: retransmit-flagged touches are
	// excluded from the "no CPU copy" checks, DMA touch counts relax from
	// "exactly one" to "at least one" (counting retransmissions, since a
	// lost original leaves only retransmit-flagged coverage), and the
	// receiver CPU-copy allowance widens from the auto-DMA head to any
	// DMA-delivered byte, because recovery can trim a segment to an
	// unaligned stream offset and force the descriptor-window copy-out
	// fallback.
	Strict bool
}

// describe renders a failing histogram region for the error message.
func describe(h []Touches, want string) string {
	var bad []string
	for _, t := range h {
		bad = append(bad, fmt.Sprintf("[%d,%d)=%d", int64(t.Off), int64(t.Off+t.Len), t.N))
		if len(bad) == 4 {
			bad = append(bad, "...")
			break
		}
	}
	return fmt.Sprintf("want %s, got %s", want, strings.Join(bad, " "))
}

// checkEach verifies every byte's touch count satisfies ok.
func checkEach(errs *[]string, what string, h []Touches, ok func(int) bool, want string) {
	for _, t := range h {
		if !ok(t.N) {
			*errs = append(*errs, fmt.Sprintf("%s: %s", what, describe(h, want)))
			return
		}
	}
}

// AssertSingleCopy verifies the paper's single-copy claim for one flow:
//
//   - every payload byte crosses the sender's host bus exactly once, by
//     SDMA with the checksum computed in flight — and is never touched by
//     the sender's CPU (no copy, no checksum pass);
//   - every payload byte crosses the receiver's host bus exactly once by
//     SDMA; the receiver's CPU copies a byte only when the adaptor
//     auto-DMAed it into a host receive buffer (the bounded per-packet
//     head), and never checksums any byte.
//
// In loose mode (Strict false) retransmitted bytes get the documented
// extra-touch allowance described on AuditConfig. A truncated ledger
// always fails: a dropped record could hide an extra touch.
func (l *Ledger) AssertSingleCopy(cfg AuditConfig) error {
	a := l.Audit(cfg.Flow, cfg.Total)
	var errs []string
	if a.Dropped > 0 {
		errs = append(errs, fmt.Sprintf("ledger truncated: %d records dropped", a.Dropped))
	}

	// Sender: one checksum-in-flight SDMA per byte, zero CPU touches. In
	// loose mode a byte whose original transmission was lost may exist
	// only as retransmit-flagged records, so the coverage count includes
	// them.
	if cfg.Strict {
		checkEach(&errs, "sender host-bus DMA touches",
			a.PerByte(onHost(cfg.SndHost, SDMAToNet, true)),
			func(n int) bool { return n == 1 }, "exactly 1 per byte")
	} else {
		checkEach(&errs, "sender host-bus DMA touches",
			a.PerByte(onHost(cfg.SndHost, SDMAToNet, false)),
			func(n int) bool { return n >= 1 }, "at least 1 per byte")
	}
	for _, r := range a.recs {
		if r.Host == cfg.SndHost && r.Kind == SDMAToNet && r.Flags&FlagCsumFlight == 0 {
			errs = append(errs, fmt.Sprintf(
				"sender SDMA without checksum-in-flight at [%d,%d)", int64(r.Off), int64(r.Off+r.Len)))
			break
		}
	}
	checkEach(&errs, "sender CPU copy touches", a.PerByte(onHost(cfg.SndHost, CPUCopy, !cfg.Strict)),
		func(n int) bool { return n == 0 }, "0 per byte")
	checkEach(&errs, "sender CPU checksum touches", a.PerByte(onHost(cfg.SndHost, CPUCsum, !cfg.Strict)),
		func(n int) bool { return n == 0 }, "0 per byte")

	// Receiver: one SDMA per byte; CPU copies only inside auto-DMA head
	// coverage; no CPU checksum.
	if cfg.Strict {
		checkEach(&errs, "receiver host-bus DMA touches",
			a.PerByte(onHost(cfg.RcvHost, SDMAToHost, true)),
			func(n int) bool { return n == 1 }, "exactly 1 per byte")
		// CPU copies stay inside the auto-DMA head allowance, one each.
		autoCover := coverage(a.PerByte(func(r Record) bool {
			return r.Host == cfg.RcvHost && r.Kind == SDMAToHost && r.Flags&FlagAutoDMA != 0
		}))
		for _, t := range a.PerByte(onHost(cfg.RcvHost, CPUCopy, false)) {
			if t.N == 0 {
				continue
			}
			if !covered(autoCover, t.Off, t.Off+t.Len) {
				errs = append(errs, fmt.Sprintf(
					"receiver CPU copy outside the auto-DMA head allowance: %s",
					describe([]Touches{t}, "copies only on auto-DMAed bytes")))
				break
			}
			if t.N != 1 {
				errs = append(errs, fmt.Sprintf(
					"receiver CPU copies on auto-DMAed bytes: %s",
					describe([]Touches{t}, "exactly 1 per head byte")))
				break
			}
		}
	} else {
		// Loose: recovery may trim a segment to an unaligned stream
		// offset, and the descriptor-window copy-out then falls back to a
		// CPU read of outboard memory — the copy is the bus crossing, so
		// those bytes have no SDMA record. The invariant that survives
		// faults is delivery conservation: every byte reached the host by
		// SDMA or by that documented CPU fallback, at least once.
		deliver := a.PerByte(func(r Record) bool {
			return r.Host == cfg.RcvHost && (r.Kind == SDMAToHost || r.Kind == CPUCopy)
		})
		checkEach(&errs, "receiver delivery touches", deliver,
			func(n int) bool { return n >= 1 }, "at least 1 per byte")
	}
	checkEach(&errs, "receiver CPU checksum touches", a.PerByte(onHost(cfg.RcvHost, CPUCsum, !cfg.Strict)),
		func(n int) bool { return n == 0 }, "0 per byte")

	if len(errs) > 0 {
		return fmt.Errorf("single-copy audit (flow %d, %d bytes): %s",
			cfg.Flow, int64(cfg.Total), strings.Join(errs, "; "))
	}
	return nil
}

// AssertMultiCopy verifies the unmodified-stack cost model for one flow:
// every payload byte is CPU-copied and CPU-checksummed on both hosts
// (≥2 copies + ≥2 checksum reads end to end), and no byte's checksum was
// computed in flight by the adaptor.
func (l *Ledger) AssertMultiCopy(cfg AuditConfig) error {
	a := l.Audit(cfg.Flow, cfg.Total)
	var errs []string
	if a.Dropped > 0 {
		errs = append(errs, fmt.Sprintf("ledger truncated: %d records dropped", a.Dropped))
	}
	atLeastOne := func(n int) bool { return n >= 1 }
	checkEach(&errs, "sender CPU copy touches",
		a.PerByte(onHost(cfg.SndHost, CPUCopy, false)), atLeastOne, "at least 1 per byte")
	checkEach(&errs, "sender CPU checksum touches",
		a.PerByte(onHost(cfg.SndHost, CPUCsum, false)), atLeastOne, "at least 1 per byte")
	checkEach(&errs, "receiver CPU copy touches",
		a.PerByte(onHost(cfg.RcvHost, CPUCopy, false)), atLeastOne, "at least 1 per byte")
	checkEach(&errs, "receiver CPU checksum touches",
		a.PerByte(onHost(cfg.RcvHost, CPUCsum, false)), atLeastOne, "at least 1 per byte")
	for _, r := range a.recs {
		if r.Flags&FlagCsumFlight != 0 {
			errs = append(errs, "checksum-in-flight DMA on the unmodified path")
			break
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("multi-copy audit (flow %d, %d bytes): %s",
			cfg.Flow, int64(cfg.Total), strings.Join(errs, "; "))
	}
	return nil
}

// coverage reduces a histogram to the intervals with nonzero count.
func coverage(h []Touches) []Touches {
	var out []Touches
	for _, t := range h {
		if t.N > 0 {
			out = append(out, t)
		}
	}
	return out
}

// covered reports whether [lo, hi) lies entirely inside the coverage set.
func covered(cov []Touches, lo, hi units.Size) bool {
	for _, t := range cov {
		if lo >= t.Off && hi <= t.Off+t.Len {
			return true
		}
		// Coverage segments are disjoint and sorted; a range spanning two
		// segments with a gap between them is not covered, but adjacent
		// merged segments are already one Touches entry.
	}
	return false
}

// KindCount is one (host, kind) row of a flow summary.
type KindCount struct {
	Kind       string `json:"kind"`
	Events     int64  `json:"events"`
	Bytes      int64  `json:"bytes"`
	MinPerByte int    `json:"min_per_byte"`
	MaxPerByte int    `json:"max_per_byte"`
}

// HostSummary is one host's touch counts for a flow.
type HostSummary struct {
	Host  string      `json:"host"`
	Kinds []KindCount `json:"kinds"`
}

// FlowSummary is the machine-readable per-flow audit table: for each host
// and touch kind, total events/bytes and the per-byte min/max over the
// stream. All integers; identical runs marshal byte-identically.
type FlowSummary struct {
	Flow       int           `json:"flow"`
	TotalBytes int64         `json:"total_bytes"`
	Hosts      []HostSummary `json:"hosts"`
	Dropped    int64         `json:"dropped,omitempty"`
}

// Summary builds the audit table for one flow over [0, total), reporting
// the given hosts in the given order (kinds in declaration order).
func (l *Ledger) Summary(flow int, total units.Size, hosts []string) FlowSummary {
	a := l.Audit(flow, total)
	fs := FlowSummary{Flow: flow, TotalBytes: int64(total), Dropped: a.Dropped}
	for _, host := range hosts {
		hs := HostSummary{Host: host, Kinds: []KindCount{}}
		for k := Kind(0); k < numKinds; k++ {
			ev, bytes := a.Count(onHost(host, k, false))
			if ev == 0 {
				continue
			}
			min, max := MinMax(a.PerByte(onHost(host, k, false)))
			hs.Kinds = append(hs.Kinds, KindCount{
				Kind: k.String(), Events: ev, Bytes: int64(bytes),
				MinPerByte: min, MaxPerByte: max,
			})
		}
		fs.Hosts = append(fs.Hosts, hs)
	}
	return fs
}

// Format renders the summary as a human-readable table.
func (fs FlowSummary) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "data-touch audit: flow %d, %d payload bytes\n", fs.Flow, fs.TotalBytes)
	fmt.Fprintf(&b, "  %-6s %-14s %8s %12s %10s\n", "host", "kind", "events", "bytes", "per-byte")
	for _, hs := range fs.Hosts {
		for _, k := range hs.Kinds {
			per := fmt.Sprintf("%d", k.MinPerByte)
			if k.MaxPerByte != k.MinPerByte {
				per = fmt.Sprintf("%d..%d", k.MinPerByte, k.MaxPerByte)
			}
			fmt.Fprintf(&b, "  %-6s %-14s %8d %12d %10s\n", hs.Host, k.Kind, k.Events, k.Bytes, per)
		}
	}
	if fs.Dropped > 0 {
		fmt.Fprintf(&b, "  (records dropped: %d)\n", fs.Dropped)
	}
	return b.String()
}
