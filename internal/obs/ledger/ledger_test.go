package ledger_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/mbuf"
	"repro/internal/mem"
	"repro/internal/obs/ledger"
	"repro/internal/socket"
	"repro/internal/ttcp"
	"repro/internal/units"
	"repro/internal/wire"
)

// TestDisabledLedgerZeroAlloc pins the nil-hook contract: with the ledger
// off every instrumentation site is one nil check — no allocation, no
// record, no virtual-time charge.
func TestDisabledLedgerZeroAlloc(t *testing.T) {
	var h *ledger.Hook
	prov := &ledger.Prov{Flow: 1, Off: 0, Len: 100, PayloadOff: 40}
	if n := testing.AllocsPerRun(1000, func() {
		h.Touch(1, 0, 100, ledger.CPUCopy, "test", 0, 0)
		h.TouchP(prov, 40, 60, ledger.SDMAToNet, "test", ledger.FlagCsumFlight)
		h.TouchP(nil, 0, 100, ledger.MDMATx, "test", 0)
		h.Unattributed(ledger.CPUCsum, 100)
		_ = h.NextDesc()
		_ = h.Host()
		_ = h.Enabled()
	}); n != 0 {
		t.Fatalf("disabled ledger allocated %.1f times per run, want 0", n)
	}
}

// ledgerRun performs one seeded single-copy transfer and returns the
// ledger's serialized state.
func ledgerRun(t *testing.T, seed int64) []byte {
	t.Helper()
	tb := core.NewTestbed(seed)
	led := tb.EnableLedger()
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: wire.Addr(0x0a000001),
		Mode: socket.ModeSingleCopy, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: wire.Addr(0x0a000002),
		Mode: socket.ModeSingleCopy, CABNode: 2})
	tb.RouteCAB(a, b)
	ttcp.Run(tb, a, b, ttcp.Params{Total: 512 * units.KB, RWSize: 64 * units.KB})
	return led.JSON()
}

// TestLedgerDeterminism asserts the ledger is part of the deterministic
// surface: two runs with the same seed serialize byte-identically.
func TestLedgerDeterminism(t *testing.T) {
	one := ledgerRun(t, 42)
	two := ledgerRun(t, 42)
	if !bytes.Equal(one, two) {
		t.Fatalf("same seed produced different ledgers (%d vs %d bytes)", len(one), len(two))
	}
	if len(one) == 0 {
		t.Fatal("ledger serialized empty")
	}
}

// TestCopyRangeRecordsNoTouches pins the retransmit-search property the
// paper relies on (Section 4.2): locating a byte range in a mixed
// M_UIO/M_WCAB transmit queue shares references and never touches data —
// so it must leave no trace in the ledger.
func TestCopyRangeRecordsNoTouches(t *testing.T) {
	now := units.Time(0)
	led := ledger.New(func() units.Time { return now })
	_ = led.Hook("A") // instrumentation enabled, as in a live run

	sp := mem.NewAddrSpace("user", 1*units.MB, 8*units.KB)
	ub := sp.Alloc(300, 4)
	u := mem.NewUIO(ub)
	w := &mbuf.WCAB{Valid: 200}
	wdata := make([]byte, 200)
	w.ReadFn = func(off, n units.Size) []byte { return wdata[off : off+n] }
	w.Ref()
	chain := mbuf.Cat(
		mbuf.Cat(mbuf.NewData(make([]byte, 50)), mbuf.NewUIO(u, 0, 300, nil)),
		mbuf.NewWCAB(w, 0, 200, nil))
	chain.AttachProv(&ledger.Prov{Flow: 7, Off: 0, Len: 550, PayloadOff: 0})

	before := led.JSON()
	for off := units.Size(0); off < 500; off += 37 {
		mbuf.FreeChain(mbuf.CopyRange(chain, off, 50))
	}
	if after := led.JSON(); !bytes.Equal(before, after) {
		t.Fatalf("CopyRange changed the ledger:\nbefore %s\nafter  %s", before, after)
	}
	if n := len(led.Records()); n != 0 {
		t.Fatalf("CopyRange recorded %d data touches, want 0", n)
	}
}
