// Package ledger is the data-touch ledger: byte-level provenance for the
// simulated data path. Every event in which payload bytes are read or
// written — a CPU copy, a CPU checksum pass, an SDMA between host memory
// and network memory, an MDMA between network memory and the medium, or
// wire transit itself — is recorded as a (flow, byte-range, kind, layer,
// host, vtime) interval. The ledger turns the paper's central claim
// ("each payload byte crosses the host memory bus once") into a
// machine-checked oracle: Audit folds the intervals into per-byte touch
// histograms and AssertSingleCopy/AssertMultiCopy verify the copy counts
// of Table 1's taxonomy cells against what the simulator actually did.
//
// Like the rest of internal/obs, the ledger follows two rules:
//
//   - Determinism: records append in simulation event order and export in
//     that order; identical seeds produce byte-identical JSON.
//   - Zero cost when disabled: every hot-path hook is a method on a
//     possibly-nil *Hook; the nil receiver is a no-op, allocates nothing,
//     and charges no simulated time, so the benchmark baselines are
//     byte-identical with the ledger off.
//
// Byte ranges are stream coordinates: offset 0 is the first payload byte
// of the flow (for TCP, sequence iss+1). A flow is identified by the data
// sender's local port; both hosts record against the same flow id, so one
// Audit sees a byte's full journey. Touches that cannot be mapped to a
// stream byte (UDP datagrams, control segments, fragmented packets) are
// counted — never silently lost — in per-kind unattributed totals.
package ledger

import (
	"encoding/json"
	"fmt"

	"repro/internal/units"
)

// Kind classifies one data-touching event.
type Kind uint8

// Touch kinds. CPUCopy and CPUCsum are host-CPU passes over the bytes;
// SDMAToNet/SDMAToHost are host-bus DMA between host memory and adaptor
// network memory; MDMATx/MDMARx move bytes between network memory and the
// medium (no host-bus crossing); WireTransit is the bytes on the wire.
const (
	CPUCopy Kind = iota
	CPUCsum
	SDMAToNet
	SDMAToHost
	MDMATx
	MDMARx
	WireTransit
	numKinds
)

var kindNames = [numKinds]string{
	"cpu_copy", "cpu_csum", "sdma_to_net", "sdma_to_host",
	"mdma_tx", "mdma_rx", "wire",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// Flags annotate a record.
type Flags uint8

// Record flags. CsumFlight marks a DMA that computed the transport
// checksum in flight; AutoDMA marks the adaptor's automatic delivery of a
// packet's first AutoDMALen bytes into a host receive buffer (the one
// place the single-copy receive path legitimately CPU-copies payload,
// bounded per packet); Rtx marks a touch caused by a retransmitted
// segment, which the strict oracles exclude under the documented
// retransmit allowance.
const (
	FlagCsumFlight Flags = 1 << iota
	FlagAutoDMA
	FlagRtx
)

func (f Flags) String() string {
	s := ""
	if f&FlagCsumFlight != 0 {
		s += "C"
	}
	if f&FlagAutoDMA != 0 {
		s += "A"
	}
	if f&FlagRtx != 0 {
		s += "R"
	}
	return s
}

// Prov is per-packet provenance: it rides a segment from the sender's TCP
// output through the driver, SDMA, wire frames, and receive delivery, so
// every layer can map its packet-relative byte ranges back to stream
// coordinates. A nil *Prov means the bytes are unattributable (control
// traffic, UDP), and hooks count them as such.
type Prov struct {
	// Flow is the data sender's local port.
	Flow int
	// Off is the stream offset of the segment payload's first byte; Len is
	// the payload length.
	Off, Len units.Size
	// PayloadOff is the payload's offset within the full wire packet
	// (link + IP + transport headers), so packet-relative ranges clip and
	// translate to stream ranges.
	PayloadOff units.Size
	// Desc is the sosend descriptor id the payload came from (0 if none).
	Desc int64
	// Rtx marks a retransmitted segment.
	Rtx bool
}

// Record is one data-touch interval in stream coordinates.
type Record struct {
	Flow  int
	Off   units.Size
	Len   units.Size
	Kind  Kind
	Layer string
	Host  string
	VTime units.Time
	Flags Flags
	Desc  int64
}

// maxRecords bounds the ledger; beyond it records are counted as dropped
// (Audit refuses to certify a truncated ledger — no silent loss).
const maxRecords = 1 << 20

// flightRingSize bounds the per-host flight-recorder ring of most recent
// records. The ring keeps recording after the main buffer fills, so a
// post-mortem dump always shows the moments before a wedge.
const flightRingSize = 2048

// Ledger is one testbed's data-touch ledger. Create it with New, then
// hand each host (and the wire) a *Hook. All methods are single-threaded
// under the simulation engine, like the rest of the testbed.
type Ledger struct {
	now      func() units.Time
	hooks    []*Hook
	records  []Record
	dropped  int64
	unattrEv [numKinds]int64
	unattrB  [numKinds]units.Size
	nextDesc int64
}

// New returns a ledger timestamped by now — the engine's virtual clock.
func New(now func() units.Time) *Ledger {
	return &Ledger{now: now}
}

// Hook returns the recording hook labeled host, creating it on first use.
// Hooks appear in dumps in creation order.
func (l *Ledger) Hook(host string) *Hook {
	for _, h := range l.hooks {
		if h.host == host {
			return h
		}
	}
	h := &Hook{led: l, host: host}
	l.hooks = append(l.hooks, h)
	return h
}

// Records returns the recorded touches in event order.
func (l *Ledger) Records() []Record { return l.records }

// Dropped returns how many records overflowed the bound.
func (l *Ledger) Dropped() int64 { return l.dropped }

func (l *Ledger) append(r Record) {
	if len(l.records) >= maxRecords {
		l.dropped++
		return
	}
	l.records = append(l.records, r)
}

// Hook records touches for one host (or "wire"). A nil *Hook is a valid
// no-op sink: the disabled-ledger fast path is a single nil check with no
// allocation and no simulated-time charge.
type Hook struct {
	led  *Ledger
	host string
	ring [flightRingSize]Record
	head int
	n    int
}

// Host returns the hook's host label ("" for nil).
func (h *Hook) Host() string {
	if h == nil {
		return ""
	}
	return h.host
}

// Enabled reports whether the hook records (false for nil).
func (h *Hook) Enabled() bool { return h != nil }

// Touch records one data-touch interval in stream coordinates.
func (h *Hook) Touch(flow int, off, n units.Size, kind Kind, layer string, flags Flags, desc int64) {
	if h == nil || n <= 0 {
		return
	}
	r := Record{
		Flow: flow, Off: off, Len: n, Kind: kind, Layer: layer,
		Host: h.host, VTime: h.led.now(), Flags: flags, Desc: desc,
	}
	h.led.append(r)
	h.ring[h.head] = r
	h.head = (h.head + 1) % flightRingSize
	if h.n < flightRingSize {
		h.n++
	}
}

// TouchP records a packet-relative byte range [pktOff, pktOff+n) against
// prov's flow, clipping to the payload and translating to stream
// coordinates. Header-only ranges record nothing; a nil prov counts the
// bytes as unattributed. prov.Rtx folds into the flags.
func (h *Hook) TouchP(prov *Prov, pktOff, n units.Size, kind Kind, layer string, flags Flags) {
	if h == nil || n <= 0 {
		return
	}
	if prov == nil {
		h.Unattributed(kind, n)
		return
	}
	lo, hi := pktOff, pktOff+n
	if lo < prov.PayloadOff {
		lo = prov.PayloadOff
	}
	if end := prov.PayloadOff + prov.Len; hi > end {
		hi = end
	}
	if hi <= lo {
		return
	}
	if prov.Rtx {
		flags |= FlagRtx
	}
	h.Touch(prov.Flow, prov.Off+(lo-prov.PayloadOff), hi-lo, kind, layer, flags, prov.Desc)
}

// Unattributed counts bytes touched by kind that could not be mapped to a
// stream byte (UDP, control segments, fragments). The totals are exported
// so unmapped traffic is visible, never silently dropped.
func (h *Hook) Unattributed(kind Kind, n units.Size) {
	if h == nil || n <= 0 {
		return
	}
	h.led.unattrEv[kind]++
	h.led.unattrB[kind] += n
}

// NextDesc allocates a sosend descriptor id (0 when disabled). Ids are
// testbed-global and deterministic: allocation order is event order.
func (h *Hook) NextDesc() int64 {
	if h == nil {
		return 0
	}
	h.led.nextDesc++
	return h.led.nextDesc
}

// jsonRecord is the exported record form.
type jsonRecord struct {
	Flow  int    `json:"flow"`
	Off   int64  `json:"off"`
	Len   int64  `json:"len"`
	Kind  string `json:"kind"`
	Layer string `json:"layer"`
	Host  string `json:"host"`
	NS    int64  `json:"ns"`
	Flags string `json:"flags,omitempty"`
	Desc  int64  `json:"desc,omitempty"`
}

func toJSONRecord(r Record) jsonRecord {
	return jsonRecord{
		Flow: r.Flow, Off: int64(r.Off), Len: int64(r.Len),
		Kind: r.Kind.String(), Layer: r.Layer, Host: r.Host,
		NS: int64(r.VTime), Flags: r.Flags.String(), Desc: r.Desc,
	}
}

// jsonUnattr is one kind's unattributed totals.
type jsonUnattr struct {
	Kind   string `json:"kind"`
	Events int64  `json:"events"`
	Bytes  int64  `json:"bytes"`
}

type jsonLedger struct {
	Records      []jsonRecord `json:"records"`
	Dropped      int64        `json:"dropped,omitempty"`
	Unattributed []jsonUnattr `json:"unattributed,omitempty"`
}

func (l *Ledger) unattributed() []jsonUnattr {
	var out []jsonUnattr
	for k := Kind(0); k < numKinds; k++ {
		if l.unattrEv[k] == 0 {
			continue
		}
		out = append(out, jsonUnattr{Kind: k.String(), Events: l.unattrEv[k], Bytes: int64(l.unattrB[k])})
	}
	return out
}

// JSON exports the full ledger deterministically: records in event order,
// then the drop count and unattributed totals.
func (l *Ledger) JSON() []byte {
	jl := jsonLedger{Records: []jsonRecord{}, Dropped: l.dropped, Unattributed: l.unattributed()}
	for _, r := range l.records {
		jl.Records = append(jl.Records, toJSONRecord(r))
	}
	b, err := json.MarshalIndent(jl, "", "  ")
	if err != nil {
		panic("ledger: marshal: " + err.Error())
	}
	return append(b, '\n')
}

// flightHost is one hook's recent-record window in the flight dump.
type flightHost struct {
	Host    string       `json:"host"`
	Records []jsonRecord `json:"records"`
}

type flightDump struct {
	NS           int64        `json:"ns"`
	Hosts        []flightHost `json:"hosts"`
	Dropped      int64        `json:"dropped,omitempty"`
	Unattributed []jsonUnattr `json:"unattributed,omitempty"`
}

// FlightDump exports the flight recorder: each host's ring of most recent
// records (oldest first), stamped with the current virtual time. The
// rings keep recording after the main buffer overflows, so the dump shows
// the run's final moments even on a truncated ledger. Dump it when a
// watchdog fires to capture what the data path was doing at the wedge.
func (l *Ledger) FlightDump() []byte {
	d := flightDump{NS: int64(l.now()), Dropped: l.dropped, Unattributed: l.unattributed()}
	for _, h := range l.hooks {
		fh := flightHost{Host: h.host, Records: []jsonRecord{}}
		for i := 0; i < h.n; i++ {
			idx := (h.head - h.n + i + flightRingSize) % flightRingSize
			fh.Records = append(fh.Records, toJSONRecord(h.ring[idx]))
		}
		d.Hosts = append(d.Hosts, fh)
	}
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		panic("ledger: flight marshal: " + err.Error())
	}
	return append(b, '\n')
}

// MainFlow returns the flow with the most attributed bytes — the bulk
// data flow of a single-transfer run — or 0 if nothing was recorded.
// Deterministic: ties break toward the lower flow id.
func (l *Ledger) MainFlow() int {
	totals := map[int]units.Size{}
	for _, r := range l.records {
		totals[r.Flow] += r.Len
	}
	best, bestN := 0, units.Size(-1)
	for f, n := range totals {
		if n > bestN || (n == bestN && f < best) {
			best, bestN = f, n
		}
	}
	if bestN < 0 {
		return 0
	}
	return best
}

func (l *Ledger) String() string {
	return fmt.Sprintf("ledger{%d records, %d dropped}", len(l.records), l.dropped)
}
