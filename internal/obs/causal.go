package obs

import (
	"repro/internal/units"
)

// Cause classifies one happens-before edge of the critical-path graph: the
// reason the child event could not have happened earlier than it did. The
// edge's duration (child time minus binding-parent time) is attributed to
// this class by the critical-path analyzer.
type Cause uint8

// Edge cause classes. The split mirrors where the paper says the time can
// go: host CPU work (with data-touching copy/checksum separated out, since
// eliminating those is the whole point), DMA engines, the wire, queueing
// behind earlier work, network-memory admission, interrupt delivery, and
// the protocol stalls (ACK clocking, delayed ACK, retransmission timeout,
// persist probing, Nagle).
const (
	CauseNone Cause = iota
	CauseApp
	CauseSched
	CauseCPU
	CauseCPUCopy
	CauseCPUCsum
	CauseQueue
	CauseNetmem
	CauseDMA
	CauseWire
	CauseIntr
	CauseAckClock
	CauseDelAck
	CauseRTO
	CausePersist
	CauseNagle
	NumCauses
)

var causeNames = [NumCauses]string{
	"none", "app", "sched", "cpu", "cpu-copy", "cpu-csum", "queue",
	"netmem", "dma", "wire", "intr", "ack-clock", "delack", "rto",
	"persist", "nagle",
}

func (c Cause) String() string {
	if c < NumCauses {
		return causeNames[c]
	}
	return "cause?"
}

// CritEvent is one node of the happens-before graph: a lifecycle event
// (write start, tcp_output, SDMA done, wire arrival, read wakeup, ...) that
// occurred at virtual instant T. Parent is the 1-based id of the *binding*
// dependency — the latest-finishing event this one had to wait for — and
// Cause classifies that wait. Parent 0 marks a root (an event with no
// recorded dependency, e.g. the application's first write). Because every
// event is recorded at the instant it occurs and its parent was recorded
// earlier, edge durations are non-negative and the back-walk from any
// event telescopes exactly to T(event) − T(root).
type CritEvent struct {
	Parent int32
	Cause  Cause
	Done   bool
	Kind   string
	Host   string
	Flow   int
	Off    int64
	Len    int64
	T      units.Time
}

// CritAlt is a non-binding dependency edge: event To also waited for From,
// but From finished before To's binding parent did. The difference is the
// edge's slack — how much later From could have finished without delaying
// To. The analyzer aggregates slack per cause to show which off-path work
// is nearly critical.
type CritAlt struct {
	From  int32
	To    int32
	Cause Cause
}

// CritRec records the happens-before graph of a run. Events are appended in
// virtual-time order (the simulation engine is single-threaded, so no
// locking is needed); ids are 1-based indices into the event slice. A nil
// *CritRec is a valid no-op sink, which is the disabled fast path.
type CritRec struct {
	now func() units.Time
	ev  []CritEvent
	alt []CritAlt
}

// NewCritRec returns a recorder clocked by now.
func NewCritRec(now func() units.Time) *CritRec {
	return &CritRec{now: now}
}

// Ev records an event occurring now with binding parent parent (0 for a
// root) under cause, returning its id. A nil receiver returns 0, the
// "no event" id, which flows harmlessly through later calls.
func (r *CritRec) Ev(parent int32, cause Cause, kind, host string, flow int, off, n int64) int32 {
	if r == nil {
		return 0
	}
	r.ev = append(r.ev, CritEvent{
		Parent: parent, Cause: cause, Kind: kind, Host: host,
		Flow: flow, Off: off, Len: n, T: r.now(),
	})
	return int32(len(r.ev))
}

// EvJoin records an event that waited on two dependencies: p1 under cause
// c1 and p2 under cause c2. The later-finishing parent binds (it is the one
// the event actually waited for); the earlier one is kept as a slack edge.
// Ties bind to p1, so callers pass the primary data-flow chain first. A
// missing parent (id 0) never binds.
func (r *CritRec) EvJoin(p1 int32, c1 Cause, p2 int32, c2 Cause, kind, host string, flow int, off, n int64) int32 {
	if r == nil {
		return 0
	}
	bp, bc := p1, c1
	ap, ac := p2, c2
	if p1 == 0 || (p2 != 0 && r.t(p2) > r.t(p1)) {
		bp, bc = p2, c2
		ap, ac = p1, c1
	}
	id := r.Ev(bp, bc, kind, host, flow, off, n)
	if ap != 0 && ap != bp {
		r.alt = append(r.alt, CritAlt{From: ap, To: id, Cause: ac})
	}
	return id
}

// MarkDone flags the event as a completion point (message fully delivered
// to the application). The analyzer back-walks from completion points.
func (r *CritRec) MarkDone(id int32) {
	if r == nil || id <= 0 || int(id) > len(r.ev) {
		return
	}
	r.ev[id-1].Done = true
}

func (r *CritRec) t(id int32) units.Time {
	if id <= 0 || int(id) > len(r.ev) {
		return 0
	}
	return r.ev[id-1].T
}

// T returns the recorded instant of event id (0 for a nil recorder or a
// missing id).
func (r *CritRec) T(id int32) units.Time {
	if r == nil {
		return 0
	}
	return r.t(id)
}

// Events returns the recorded events in creation (virtual-time) order.
// Event id i is Events()[i-1]. The slice is the recorder's own; callers
// must not mutate it.
func (r *CritRec) Events() []CritEvent {
	if r == nil {
		return nil
	}
	return r.ev
}

// Alts returns the recorded non-binding (slack) edges.
func (r *CritRec) Alts() []CritAlt {
	if r == nil {
		return nil
	}
	return r.alt
}
