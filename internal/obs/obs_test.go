package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/units"
)

// TestNilSinksAreNoOps pins the disabled-telemetry contract: every hot-path
// method on a nil receiver must be safe and free.
func TestNilSinksAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}

	var g *Gauge
	g.Set(7)
	if g.Value() != 0 || g.HighWater() != 0 {
		t.Fatal("nil gauge has a value")
	}

	var h *Histogram
	h.Observe(units.Millisecond)
	if h.Count() != 0 {
		t.Fatal("nil histogram has observations")
	}

	var tr *Trace
	sp := tr.StartSpan("x")
	if sp != nil {
		t.Fatal("nil trace returned a live span")
	}
	sp.MarkRetransmit()
	sp.Enter(StageSDMA)
	sp.EnterAt(StageWire, 5)
	sp.End()
	if st := tr.Stats(); st.Spans != 0 {
		t.Fatal("nil trace has spans")
	}

	var r *Registry
	if r.Counter("a") != nil || r.Gauge("b") != nil {
		t.Fatal("nil registry returned live sinks")
	}
	r.Func("c", func() int64 { return 1 })
	if r.TraceSink() != nil {
		t.Fatal("nil registry returned a trace")
	}
	if hm := r.Snapshot(); len(hm.Metrics) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}
}

// TestNilSinksAllocationFree asserts the disabled fast path allocates
// nothing — the benchmark-neutrality requirement.
func TestNilSinksAllocationFree(t *testing.T) {
	var c *Counter
	var g *Gauge
	var tr *Trace
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(3)
		sp := tr.StartSpan("h")
		sp.Enter(StageWire)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocates %.1f per op, want 0", allocs)
	}
}

func TestCounterGauge(t *testing.T) {
	tel := New(func() units.Time { return 0 })
	r := tel.Registry("h")
	c := r.Counter("tcp.retransmits")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if r.Counter("tcp.retransmits") != c {
		t.Fatal("re-request did not share the counter")
	}
	g := r.Gauge("cab.netmem_pages")
	g.Set(9)
	g.Set(4)
	if g.Value() != 4 || g.HighWater() != 9 {
		t.Fatalf("gauge = %d/%d, want 4/9", g.Value(), g.HighWater())
	}
}

// TestGaugeIntervalHighWater pins the sampler contract: Reset starts a new
// measurement window whose peak is tracked independently of the all-time
// mark, and a freshly reset window's peak is at least the current level.
func TestGaugeIntervalHighWater(t *testing.T) {
	var g Gauge
	g.Set(9)
	g.Set(4)
	if g.IntervalHighWater() != 9 {
		t.Fatalf("pre-reset iwm = %d, want 9", g.IntervalHighWater())
	}
	g.Reset()
	if g.IntervalHighWater() != 4 {
		t.Fatalf("post-reset iwm = %d, want current level 4", g.IntervalHighWater())
	}
	g.Set(6)
	g.Set(2)
	if g.IntervalHighWater() != 6 {
		t.Fatalf("interval iwm = %d, want 6", g.IntervalHighWater())
	}
	if g.HighWater() != 9 {
		t.Fatalf("all-time hwm = %d, want 9 (Reset must not touch it)", g.HighWater())
	}
	// Nil receiver stays a no-op.
	var n *Gauge
	n.Reset()
	if n.IntervalHighWater() != 0 {
		t.Fatal("nil gauge has an interval mark")
	}
}

// TestHistogramBucketBounds pins the power-of-two boundary rule: an
// observation exactly on a bucket's inclusive upper bound (d == 1µs<<i)
// lands in bucket i, one nanosecond more lands in bucket i+1.
func TestHistogramBucketBounds(t *testing.T) {
	for i := 0; i < histBuckets-1; i++ {
		if got := bucketIndex(histBound(i)); got != i {
			t.Fatalf("bucketIndex(1µs<<%d) = %d, want %d", i, got, i)
		}
		if got := bucketIndex(histBound(i) + 1); got != i+1 {
			t.Fatalf("bucketIndex(1µs<<%d + 1ns) = %d, want %d", i, got, i+1)
		}
	}
	if got := bucketIndex(0); got != 0 {
		t.Fatalf("bucketIndex(0) = %d, want 0", got)
	}
	if got := bucketIndex(3600 * units.Second); got != histBuckets-1 {
		t.Fatalf("bucketIndex(1h) = %d, want top bucket %d", got, histBuckets-1)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram has a quantile")
	}
	// 90 fast observations, 10 slow: p50 in the fast bucket, p99 in the
	// slow one.
	for i := 0; i < 90; i++ {
		h.Observe(3 * units.Microsecond) // bucket 2, bound 4µs
	}
	for i := 0; i < 10; i++ {
		h.Observe(900 * units.Microsecond) // bound 1024µs
	}
	if q := h.Quantile(0.5); q != 4*units.Microsecond {
		t.Fatalf("p50 = %v, want 4µs", q)
	}
	if q := h.Quantile(0.99); q != 900*units.Microsecond {
		t.Fatalf("p99 = %v, want clamped max 900µs", q)
	}
	if q := h.Quantile(0); q != 3*units.Microsecond {
		t.Fatalf("p0 = %v, want min", q)
	}
	if q := h.Quantile(1); q != 900*units.Microsecond {
		t.Fatalf("p100 = %v, want max", q)
	}
	var nilh *Histogram
	if nilh.Quantile(0.5) != 0 {
		t.Fatal("nil histogram has a quantile")
	}
}

// Quantile on an empty or nil histogram, or with a NaN p, must return 0 —
// never panic, never produce a garbage conversion. Locked in because
// observers snapshot histograms unconditionally, including ones no event
// ever reached.
func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	for _, p := range []float64{math.NaN(), -1, 0, 0.5, 1, 2, math.Inf(1)} {
		if q := h.Quantile(p); q != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", p, q)
		}
	}
	var nilh *Histogram
	for _, p := range []float64{math.NaN(), 0.5} {
		if q := nilh.Quantile(p); q != 0 {
			t.Fatalf("nil histogram Quantile(%v) = %v, want 0", p, q)
		}
	}
	h.Observe(3 * units.Microsecond)
	if q := h.Quantile(math.NaN()); q != 0 {
		t.Fatalf("Quantile(NaN) = %v, want 0", q)
	}
	if q := h.Quantile(math.Inf(1)); q != 3*units.Microsecond {
		t.Fatalf("Quantile(+Inf) = %v, want max", q)
	}
}

func TestFuncFirstRegistrationWins(t *testing.T) {
	tel := New(func() units.Time { return 0 })
	r := tel.Registry("h")
	r.Func("x", func() int64 { return 1 })
	r.Func("x", func() int64 { return 2 })
	hm := r.Snapshot()
	if len(hm.Metrics) != 1 || hm.Metrics[0].Value != 1 {
		t.Fatalf("snapshot = %+v, want one metric x=1", hm.Metrics)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	h.Observe(500 * units.Nanosecond) // below the first bound
	h.Observe(3 * units.Microsecond)
	h.Observe(3 * units.Microsecond)
	h.Observe(units.Second) // far beyond the last bound
	h.Observe(-5)           // clamped to 0
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.MinNs != 0 || s.MaxNs != int64(units.Second) {
		t.Fatalf("min/max = %d/%d", s.MinNs, s.MaxNs)
	}
	var total int64
	for _, b := range s.Buckets {
		if b.Count == 0 {
			t.Fatal("snapshot contains an empty bucket")
		}
		total += b.Count
	}
	if total != 5 {
		t.Fatalf("bucket total = %d, want 5", total)
	}
}

func TestSnapshotSortedAndDeterministic(t *testing.T) {
	mk := func() Snapshot {
		now := units.Time(0)
		tel := New(func() units.Time { return now })
		// Register in deliberately unsorted order.
		b := tel.Registry("b")
		b.Counter("zzz.last").Inc()
		b.Counter("aaa.first").Add(2)
		b.Gauge("mid.gauge").Set(7)
		a := tel.Registry("a")
		a.Func("f.pull", func() int64 { return 42 })
		sp := tel.Trace().StartSpan("b")
		sp.Enter(StageSocket)
		now = 10 * units.Microsecond
		sp.Enter(StageWire)
		now = 30 * units.Microsecond
		sp.End()
		return tel.Snapshot()
	}
	s1, s2 := mk(), mk()
	if !bytes.Equal(s1.JSON(), s2.JSON()) {
		t.Fatal("identical construction produced different JSON")
	}
	// Hosts in creation order, metrics sorted by name.
	if s1.Hosts[0].Host != "b" || s1.Hosts[1].Host != "a" {
		t.Fatalf("host order: %s, %s", s1.Hosts[0].Host, s1.Hosts[1].Host)
	}
	names := []string{}
	for _, m := range s1.Hosts[0].Metrics {
		names = append(names, m.Name)
	}
	want := []string{"aaa.first", "mid.gauge", "mid.gauge.hwm", "zzz.last"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("metric order = %v, want %v", names, want)
	}
	if s1.Spans == nil || s1.Spans.Spans != 1 {
		t.Fatalf("spans = %+v, want 1 completed", s1.Spans)
	}
}

func TestSpanStagesAndChrome(t *testing.T) {
	now := units.Time(0)
	tel := New(func() units.Time { return now })
	tr := tel.Trace()

	sp := tr.StartSpanAt("h", 0)
	sp.EnterAt(StageSocket, 0)
	now = 5 * units.Microsecond
	sp.Enter(StagePacketize)
	now = 9 * units.Microsecond
	sp.Enter(StageSDMA)
	now = 20 * units.Microsecond
	sp.End()
	sp.End() // double End must be a no-op

	st := tr.Stats()
	if st.Spans != 1 {
		t.Fatalf("spans = %d, want 1", st.Spans)
	}
	if len(st.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(st.Stages))
	}
	if st.Stages[0].Stage != "socket" || st.Stages[0].TotalNs != int64(5*units.Microsecond) {
		t.Fatalf("socket stage = %+v", st.Stages[0])
	}
	if st.Latency.MaxNs != int64(20*units.Microsecond) {
		t.Fatalf("latency max = %d", st.Latency.MaxNs)
	}

	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(tel.Chrome(), &f); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != 3 {
		t.Fatalf("chrome events = %d, want 3", len(f.TraceEvents))
	}
	if f.TraceEvents[2]["name"] != "sdma" || f.TraceEvents[2]["ph"] != "X" {
		t.Fatalf("event = %+v", f.TraceEvents[2])
	}
}

// TestDroppedSpanLeavesNoLatency pins the drop semantics: a span that never
// Ends contributes its stage events but not an end-to-end sample.
func TestDroppedSpanLeavesNoLatency(t *testing.T) {
	now := units.Time(0)
	tel := New(func() units.Time { return now })
	sp := tel.Trace().StartSpan("h")
	sp.Enter(StageWire)
	now = units.Millisecond
	sp.Enter(StageMDMA) // closes wire; mdma stays open forever
	st := tel.Trace().Stats()
	if st.Spans != 0 || st.Latency.Count != 0 {
		t.Fatalf("dropped span counted: %+v", st)
	}
	if len(st.Stages) != 1 || st.Stages[0].Stage != "wire" {
		t.Fatalf("stages = %+v, want wire only", st.Stages)
	}
}

func TestFormatRendersTableAndHistogram(t *testing.T) {
	now := units.Time(0)
	tel := New(func() units.Time { return now })
	tel.Registry("h").Counter("tcp.segs_out").Add(12)
	sp := tel.Trace().StartSpan("h")
	sp.Enter(StageSocket)
	now = 2 * units.Millisecond
	sp.End()
	out := tel.Snapshot().Format()
	for _, want := range []string{"[h]", "tcp.segs_out", "12", "packet spans: 1 completed", "socket", "end-to-end latency", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing %q:\n%s", want, out)
		}
	}
}
