package obs

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/units"
)

// SeriesKind says how a column turns its source reading into a sample.
type SeriesKind int

const (
	// KindLevel records the source value as-is (an instantaneous level,
	// e.g. netmem pages in use or a window size).
	KindLevel SeriesKind = iota
	// KindDelta records the change since the previous sample (turns a
	// cumulative counter into a per-interval rate).
	KindDelta
	// KindUtilPerMille records delta·1000/interval — the share of the
	// interval a cumulative virtual-time counter advanced, in per-mille.
	// Integer arithmetic keeps the export byte-deterministic.
	KindUtilPerMille
	// KindPeak records a gauge's interval high-water mark, then Resets it
	// so the next interval reports its own peak.
	KindPeak
)

// column is one registered series column.
type column struct {
	name string
	kind SeriesKind
	fn   func() int64
	g    *Gauge
	prev int64
}

// Series is one host's ring-buffered utilization time-series: a fixed set
// of columns sampled together on a virtual-time tick. A nil *Series is a
// valid no-op sink.
type Series struct {
	host string
	set  *SeriesSet
	cols []*column

	// Ring buffer of samples, oldest first once wrapped.
	times  []units.Time
	vals   [][]int64
	start  int
	count  int
	filled int64 // total samples ever taken (ring may have dropped some)
}

// Level registers a column recording fn's value as-is at each tick.
func (s *Series) Level(name string, fn func() int64) {
	if s == nil {
		return
	}
	s.cols = append(s.cols, &column{name: name, kind: KindLevel, fn: fn})
}

// Delta registers a column recording fn's advance since the previous tick.
func (s *Series) Delta(name string, fn func() int64) {
	if s == nil {
		return
	}
	s.cols = append(s.cols, &column{name: name, kind: KindDelta, fn: fn})
}

// UtilPerMille registers a column recording the per-mille share of each
// interval that the cumulative virtual-time counter fn advanced — the CPU
// utilization shape (fn == busy ns ⇒ 1000 means fully busy).
func (s *Series) UtilPerMille(name string, fn func() int64) {
	if s == nil {
		return
	}
	s.cols = append(s.cols, &column{name: name, kind: KindUtilPerMille, fn: fn})
}

// Peak registers a column recording g's per-interval high-water mark; each
// tick reads the mark and Resets it.
func (s *Series) Peak(name string, g *Gauge) {
	if s == nil {
		return
	}
	s.cols = append(s.cols, &column{name: name, kind: KindPeak, g: g})
}

// sample takes one row at virtual time now.
func (s *Series) sample(now units.Time, interval units.Time) {
	row := make([]int64, len(s.cols))
	for i, c := range s.cols {
		switch c.kind {
		case KindLevel:
			row[i] = c.fn()
		case KindDelta:
			v := c.fn()
			row[i] = v - c.prev
			c.prev = v
		case KindUtilPerMille:
			v := c.fn()
			d := v - c.prev
			c.prev = v
			if interval > 0 {
				row[i] = d * 1000 / int64(interval)
			}
			// CPU accounting posts in scheduler-quantum chunks, so one
			// interval can observe more accrual than its own span (the
			// next observes correspondingly less). Clamp: the column is a
			// utilization, not a conservation ledger.
			if row[i] > 1000 {
				row[i] = 1000
			}
		case KindPeak:
			row[i] = c.g.IntervalHighWater()
			c.g.Reset()
		}
	}
	if len(s.times) < cap(s.times) {
		s.times = append(s.times, now)
		s.vals = append(s.vals, row)
		s.count++
	} else {
		// Ring full: overwrite the oldest sample.
		s.times[s.start] = now
		s.vals[s.start] = row
		s.start = (s.start + 1) % len(s.times)
	}
	s.filled++
}

// SeriesSet owns the per-host series of one testbed, all sampled on the
// same virtual-time interval. A nil *SeriesSet is a valid disabled sampler.
type SeriesSet struct {
	interval units.Time
	capacity int
	series   []*Series
	lat      *Histogram // optional latency source for quantile columns
}

// DefaultSeriesCapacity bounds each host's ring buffer; at the default
// 100µs tick this holds the trailing ~1.6s of virtual time.
const DefaultSeriesCapacity = 16384

// NewSeriesSet returns a sampler ticking every interval of virtual time,
// each host ring-buffered to capacity samples (DefaultSeriesCapacity if
// capacity <= 0).
func NewSeriesSet(interval units.Time, capacity int) *SeriesSet {
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	return &SeriesSet{interval: interval, capacity: capacity}
}

// Interval returns the sampling interval (0 for nil).
func (ss *SeriesSet) Interval() units.Time {
	if ss == nil {
		return 0
	}
	return ss.interval
}

// Series creates (or returns) the series labeled host. Hosts appear in
// snapshots in creation order. Nil-safe.
func (ss *SeriesSet) Series(host string) *Series {
	if ss == nil {
		return nil
	}
	for _, s := range ss.series {
		if s.host == host {
			return s
		}
	}
	s := &Series{host: host, set: ss,
		times: make([]units.Time, 0, ss.capacity),
		vals:  make([][]int64, 0, ss.capacity)}
	ss.series = append(ss.series, s)
	return s
}

// SetLatencySource attaches the live latency histogram whose running
// quantiles the snapshot reports alongside the series.
func (ss *SeriesSet) SetLatencySource(h *Histogram) {
	if ss != nil {
		ss.lat = h
	}
}

// Sample takes one row on every host's series at virtual time now. Nil-safe.
func (ss *SeriesSet) Sample(now units.Time) {
	if ss == nil {
		return
	}
	for _, s := range ss.series {
		s.sample(now, ss.interval)
	}
}

// SeriesSample is one exported row.
type SeriesSample struct {
	TNs int64   `json:"t_ns"`
	V   []int64 `json:"v"`
}

// HostSeries is one host's exported series.
type HostSeries struct {
	Host    string         `json:"host"`
	Columns []string       `json:"columns"`
	Dropped int64          `json:"dropped,omitempty"` // samples lost to the ring
	Samples []SeriesSample `json:"samples"`
}

// QuantileStat is one exported latency quantile.
type QuantileStat struct {
	P  float64 `json:"p"`
	Ns int64   `json:"ns"`
}

// SeriesSnapshot is the full exported time-series: hosts in creation order,
// samples oldest-first, slices only so marshaling is byte-deterministic.
type SeriesSnapshot struct {
	IntervalNs int64          `json:"interval_ns"`
	Hosts      []HostSeries   `json:"hosts"`
	LatencyQ   []QuantileStat `json:"latency_quantiles,omitempty"`
}

// Snapshot exports every host's series.
func (ss *SeriesSet) Snapshot() SeriesSnapshot {
	if ss == nil {
		return SeriesSnapshot{}
	}
	snap := SeriesSnapshot{IntervalNs: int64(ss.interval)}
	for _, s := range ss.series {
		hs := HostSeries{Host: s.host, Dropped: s.filled - int64(s.count)}
		for _, c := range s.cols {
			hs.Columns = append(hs.Columns, c.name)
		}
		n := len(s.times)
		for i := 0; i < n; i++ {
			j := (s.start + i) % n
			hs.Samples = append(hs.Samples, SeriesSample{
				TNs: int64(s.times[j]),
				V:   append([]int64(nil), s.vals[j]...),
			})
		}
		snap.Hosts = append(snap.Hosts, hs)
	}
	if ss.lat.Count() > 0 {
		for _, p := range []float64{0.5, 0.9, 0.99} {
			snap.LatencyQ = append(snap.LatencyQ,
				QuantileStat{P: p, Ns: int64(ss.lat.Quantile(p))})
		}
	}
	return snap
}

// JSON renders the snapshot as deterministic, indented JSON.
func (s SeriesSnapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic("obs: series marshal: " + err.Error())
	}
	return append(b, '\n')
}

// CSV renders the snapshot as one flat table: host,t_ns,then one column per
// registered name. Hosts with different column sets produce separate header
// lines.
func (s SeriesSnapshot) CSV() string {
	var b strings.Builder
	prevHeader := ""
	for _, h := range s.Hosts {
		header := "host,t_ns," + strings.Join(h.Columns, ",")
		if header != prevHeader {
			b.WriteString(header + "\n")
			prevHeader = header
		}
		for _, row := range h.Samples {
			b.WriteString(h.Host)
			fmt.Fprintf(&b, ",%d", row.TNs)
			for _, v := range row.V {
				fmt.Fprintf(&b, ",%d", v)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
