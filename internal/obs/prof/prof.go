// Package prof is a virtual-time CPU profiler for the simulated stack.
//
// Unlike a wall-clock sampling profiler it is exact: the kernel charges
// every virtual nanosecond of CPU work through kern.Work/IntrWork, and each
// charge carries a *Node identifying the layer stack it was issued under
// (e.g. snd;ttcp-snd;socket;tcp_output;ip_output;cabdrv). The profiler
// accumulates that time per (host, stack, category, flow), so the sum over
// a host's tree equals the kernel's cpu_busy_ns to the nanosecond.
//
// Two properties mirror the rest of the telemetry layer (package obs):
//
//   - Determinism. Nodes are interned in creation order and every exporter
//     sorts before emitting, so identical seeds produce byte-identical
//     folded-stacks text and JSON.
//
//   - Zero cost when disabled. A nil *Profiler or *Node is a valid no-op
//     sink: every hot-path method returns immediately without allocating,
//     and profiling never charges simulated CPU or bus time.
package prof

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// FlowNone labels charges with no flow attribution.
const FlowNone = 0

// cell is one accumulation bucket under a node.
type cell struct {
	cat  int
	flow int
}

// Node is one interned frame of a layer stack. Nodes form a trie rooted at
// a host root; CPU time is accumulated on the node the charge was issued
// under ("self" time — children account for their own).
type Node struct {
	prof     *Profiler
	name     string
	parent   *Node
	children []*Node
	byName   map[string]*Node
	self     map[cell]int64
}

// Child returns the child frame named name, interning it on first use.
// Child on a nil node returns nil (profiling disabled).
func (n *Node) Child(name string) *Node {
	if n == nil {
		return nil
	}
	if c, ok := n.byName[name]; ok {
		return c
	}
	c := &Node{prof: n.prof, name: name, parent: n}
	if n.byName == nil {
		n.byName = make(map[string]*Node)
	}
	n.byName[name] = c
	n.children = append(n.children, c)
	return c
}

// Add accumulates d nanoseconds of CPU time in category cat for flow on
// this node. No-op on a nil node.
func (n *Node) Add(cat, flow int, d int64) {
	if n == nil || d <= 0 {
		return
	}
	if n.self == nil {
		n.self = make(map[cell]int64)
	}
	n.self[cell{cat, flow}] += d
}

// Total returns the node's self time summed over categories and flows.
func (n *Node) Total() int64 {
	if n == nil {
		return 0
	}
	var t int64
	for _, v := range n.self {
		t += v
	}
	return t
}

// TreeTotal returns the node's self time plus all descendants'.
func (n *Node) TreeTotal() int64 {
	if n == nil {
		return 0
	}
	t := n.Total()
	for _, c := range n.children {
		t += c.TreeTotal()
	}
	return t
}

// path returns the node's frames from the host root down, excluding the
// profiler's synthetic root.
func (n *Node) path() []string {
	var frames []string
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		frames = append(frames, cur.name)
	}
	// Reverse (walked leaf → root).
	for i, j := 0, len(frames)-1; i < j; i, j = i+1, j-1 {
		frames[i], frames[j] = frames[j], frames[i]
	}
	return frames
}

// Profiler owns the per-host stack tries. Construct with New; a nil
// *Profiler is a valid disabled profiler.
type Profiler struct {
	cats []string
	root Node // synthetic root; children are host roots
}

// New returns a profiler whose category axis is labeled by cats (index ==
// the kernel's Category value).
func New(cats []string) *Profiler {
	p := &Profiler{cats: append([]string(nil), cats...)}
	p.root.prof = p
	return p
}

// Host returns (creating on first use) the root node for host. Returns nil
// on a nil profiler.
func (p *Profiler) Host(name string) *Node {
	if p == nil {
		return nil
	}
	return p.root.Child(name)
}

// HostTotal returns all CPU time recorded under host (0 if unknown): the
// profiler's view of the kernel's cpu_busy_ns.
func (p *Profiler) HostTotal(name string) int64 {
	if p == nil {
		return 0
	}
	if n, ok := p.root.byName[name]; ok {
		return n.TreeTotal()
	}
	return 0
}

// catName labels category c.
func (p *Profiler) catName(c int) string {
	if c >= 0 && c < len(p.cats) {
		return p.cats[c]
	}
	return fmt.Sprintf("cat%d", c)
}

// visit walks the trie depth-first in creation order.
func (n *Node) visit(fn func(*Node)) {
	fn(n)
	for _, c := range n.children {
		c.visit(fn)
	}
}

// Folded renders the profile in folded-stacks text (flamegraph.pl /
// speedscope "collapsed" format): one line per distinct
// host;frames...;category stack, flows aggregated, sorted lexicographically.
// Empty string when the profiler is nil or recorded nothing.
func (p *Profiler) Folded() string {
	if p == nil {
		return ""
	}
	type line struct {
		stack string
		ns    int64
	}
	var lines []line
	p.root.visit(func(n *Node) {
		if len(n.self) == 0 {
			return
		}
		byCat := make(map[int]int64)
		for c, v := range n.self {
			byCat[c.cat] += v
		}
		prefix := strings.Join(n.path(), ";")
		for cat, ns := range byCat {
			lines = append(lines, line{prefix + ";" + p.catName(cat), ns})
		}
	})
	sort.Slice(lines, func(i, j int) bool { return lines[i].stack < lines[j].stack })
	var b strings.Builder
	for _, l := range lines {
		fmt.Fprintf(&b, "%s %d\n", l.stack, l.ns)
	}
	return b.String()
}

// StackEntry is one (stack, category, flow) accumulation in the JSON
// export.
type StackEntry struct {
	Stack    string `json:"stack"`
	Category string `json:"category"`
	Flow     int    `json:"flow,omitempty"`
	Ns       int64  `json:"ns"`
}

// HostProfile is one host's exported profile.
type HostProfile struct {
	Host    string       `json:"host"`
	TotalNs int64        `json:"total_ns"`
	Stacks  []StackEntry `json:"stacks"`
}

// Snapshot is the full exported profile: hosts in creation order, entries
// sorted by (stack, category, flow). Slices only, so marshaling is
// byte-deterministic.
type Snapshot struct {
	Categories []string      `json:"categories"`
	Hosts      []HostProfile `json:"hosts"`
}

// Snapshot exports the profile.
func (p *Profiler) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	s := Snapshot{Categories: append([]string(nil), p.cats...)}
	for _, h := range p.root.children {
		hp := HostProfile{Host: h.name, TotalNs: h.TreeTotal()}
		h.visit(func(n *Node) {
			if len(n.self) == 0 {
				return
			}
			stack := strings.Join(n.path()[1:], ";") // drop the host frame
			for c, v := range n.self {
				hp.Stacks = append(hp.Stacks, StackEntry{
					Stack:    stack,
					Category: p.catName(c.cat),
					Flow:     c.flow,
					Ns:       v,
				})
			}
		})
		sort.Slice(hp.Stacks, func(i, j int) bool {
			a, b := hp.Stacks[i], hp.Stacks[j]
			if a.Stack != b.Stack {
				return a.Stack < b.Stack
			}
			if a.Category != b.Category {
				return a.Category < b.Category
			}
			return a.Flow < b.Flow
		})
		s.Hosts = append(s.Hosts, hp)
	}
	return s
}

// JSON renders the snapshot as deterministic, indented JSON.
func (s Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic("prof: snapshot marshal: " + err.Error())
	}
	return append(b, '\n')
}
