package prof

import (
	"bytes"
	"strings"
	"testing"
)

var testCats = []string{"app", "syscall", "copy", "csum"}

func TestNilProfilerIsNoOp(t *testing.T) {
	var p *Profiler
	n := p.Host("A")
	if n != nil {
		t.Fatal("nil profiler returned a node")
	}
	n.Add(1, 0, 100) // must not panic
	if n.Child("socket") != nil {
		t.Fatal("nil node returned a child")
	}
	if n.Total() != 0 || n.TreeTotal() != 0 {
		t.Fatal("nil node has time")
	}
	if p.HostTotal("A") != 0 {
		t.Fatal("nil profiler has time")
	}
	if p.Folded() != "" {
		t.Fatal("nil profiler folded non-empty")
	}
	if s := p.Snapshot(); len(s.Hosts) != 0 {
		t.Fatal("nil profiler snapshot non-empty")
	}
}

func TestNilNodeAddAllocates(t *testing.T) {
	var n *Node
	allocs := testing.AllocsPerRun(1000, func() {
		n.Add(2, 7, 123)
	})
	if allocs != 0 {
		t.Fatalf("nil Node.Add allocates %v per call", allocs)
	}
}

func TestAccumulationAndTotals(t *testing.T) {
	p := New(testCats)
	host := p.Host("A")
	sock := host.Child("socket")
	tcp := sock.Child("tcp_output")
	sock.Add(1, 5, 100)
	sock.Add(1, 5, 50) // same cell accumulates
	sock.Add(2, 5, 30)
	tcp.Add(3, 5, 70)
	if got := sock.Total(); got != 180 {
		t.Fatalf("sock.Total = %d, want 180", got)
	}
	if got := sock.TreeTotal(); got != 250 {
		t.Fatalf("sock.TreeTotal = %d, want 250", got)
	}
	if got := p.HostTotal("A"); got != 250 {
		t.Fatalf("HostTotal = %d, want 250", got)
	}
	if got := p.HostTotal("nope"); got != 0 {
		t.Fatalf("HostTotal(unknown) = %d, want 0", got)
	}
	// Child interning: same pointer on repeat lookup.
	if host.Child("socket") != sock {
		t.Fatal("Child did not intern")
	}
}

func TestFoldedFormat(t *testing.T) {
	p := New(testCats)
	a := p.Host("A")
	a.Child("socket").Add(2, 1, 100)
	a.Child("socket").Add(2, 2, 40) // second flow, same cat: aggregated
	a.Child("socket").Child("tcp_output").Add(3, 1, 9)
	a.Add(0, 0, 5)
	folded := p.Folded()
	want := strings.Join([]string{
		"A;app 5",
		"A;socket;copy 140",
		"A;socket;tcp_output;csum 9",
	}, "\n") + "\n"
	if folded != want {
		t.Fatalf("folded:\n%q\nwant:\n%q", folded, want)
	}
}

func TestFoldedDeterministic(t *testing.T) {
	build := func() *Profiler {
		p := New(testCats)
		a := p.Host("A")
		for flow := 1; flow <= 8; flow++ {
			for cat := 0; cat < 4; cat++ {
				a.Child("socket").Add(cat, flow, int64(cat*100+flow))
				a.Child("socket").Child("ip_output").Add(cat, flow, int64(flow))
			}
		}
		p.Host("B").Child("intr").Add(1, 0, 42)
		return p
	}
	p1, p2 := build(), build()
	if p1.Folded() != p2.Folded() {
		t.Fatal("folded output not deterministic")
	}
	if !bytes.Equal(p1.Snapshot().JSON(), p2.Snapshot().JSON()) {
		t.Fatal("snapshot JSON not deterministic")
	}
}

func TestSnapshotShape(t *testing.T) {
	p := New(testCats)
	a := p.Host("A")
	a.Child("socket").Add(2, 9, 100)
	a.Child("socket").Add(3, 9, 11)
	s := p.Snapshot()
	if len(s.Hosts) != 1 || s.Hosts[0].Host != "A" {
		t.Fatalf("hosts = %+v", s.Hosts)
	}
	hp := s.Hosts[0]
	if hp.TotalNs != 111 {
		t.Fatalf("TotalNs = %d", hp.TotalNs)
	}
	if len(hp.Stacks) != 2 || hp.Stacks[0].Stack != "socket" ||
		hp.Stacks[0].Category != "copy" || hp.Stacks[0].Flow != 9 {
		t.Fatalf("stacks = %+v", hp.Stacks)
	}
	// Per-stack sum equals the host total (folded aggregates match too).
	var sum int64
	for _, e := range hp.Stacks {
		sum += e.Ns
	}
	if sum != hp.TotalNs {
		t.Fatalf("stack sum %d != total %d", sum, hp.TotalNs)
	}
}

func TestUnknownCategoryLabel(t *testing.T) {
	p := New(testCats)
	p.Host("A").Add(17, 0, 3)
	if got := p.Folded(); got != "A;cat17 3\n" {
		t.Fatalf("folded = %q", got)
	}
}
