package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/units"
)

// Metric is one exported name/value pair.
type Metric struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HostMetrics is one host's metrics, sorted by name.
type HostMetrics struct {
	Host    string   `json:"host"`
	Metrics []Metric `json:"metrics"`
}

// Snapshot is the full exported state: per-host metrics (hosts in creation
// order, metrics sorted by name) plus the span summary. All slices — never
// maps — so marshaling is byte-deterministic.
type Snapshot struct {
	Hosts []HostMetrics `json:"hosts"`
	Spans *SpanStats    `json:"spans,omitempty"`
}

// Snapshot exports one registry's metrics, sorted by name. Gauges export
// both the level and "<name>.hwm". Safe on a nil registry (empty result).
func (r *Registry) Snapshot() HostMetrics {
	if r == nil {
		return HostMetrics{}
	}
	hm := HostMetrics{Host: r.host}
	for _, e := range r.entries {
		switch e.kind {
		case kindCounter:
			hm.Metrics = append(hm.Metrics, Metric{Name: e.name, Value: e.c.Value()})
		case kindGauge:
			hm.Metrics = append(hm.Metrics,
				Metric{Name: e.name, Value: e.g.Value()},
				Metric{Name: e.name + ".hwm", Value: e.g.HighWater()})
		case kindFunc:
			hm.Metrics = append(hm.Metrics, Metric{Name: e.name, Value: e.fn()})
		}
	}
	sort.Slice(hm.Metrics, func(i, j int) bool { return hm.Metrics[i].Name < hm.Metrics[j].Name })
	return hm
}

// Snapshot exports the whole telemetry state.
func (t *Telemetry) Snapshot() Snapshot {
	var s Snapshot
	for _, r := range t.regs {
		s.Hosts = append(s.Hosts, r.Snapshot())
	}
	st := t.trace.Stats()
	if st.Spans > 0 || len(st.Stages) > 0 {
		s.Spans = &st
	}
	return s
}

// JSON renders the snapshot as deterministic, indented JSON.
func (s Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic("obs: snapshot marshal: " + err.Error())
	}
	return append(b, '\n')
}

// Format renders the snapshot as a human-readable table: per-host counters,
// the per-stage breakdown, and the end-to-end latency histogram.
func (s Snapshot) Format() string {
	var b strings.Builder
	for _, h := range s.Hosts {
		if len(h.Metrics) == 0 {
			continue
		}
		fmt.Fprintf(&b, "[%s]\n", h.Host)
		for _, m := range h.Metrics {
			fmt.Fprintf(&b, "  %-34s %12d\n", m.Name, m.Value)
		}
	}
	if s.Spans == nil {
		return b.String()
	}
	sp := s.Spans
	fmt.Fprintf(&b, "\npacket spans: %d completed\n", sp.Spans)
	if len(sp.Stages) > 0 {
		fmt.Fprintf(&b, "  %-10s %8s %14s %14s\n", "stage", "count", "total", "mean")
		for _, st := range sp.Stages {
			fmt.Fprintf(&b, "  %-10s %8d %14v %14v\n",
				st.Stage, st.Count, units.Time(st.TotalNs), units.Time(st.AvgNs))
		}
	}
	if sp.Latency.Count > 0 {
		fmt.Fprintf(&b, "  end-to-end latency (min %v, mean %v, max %v):\n",
			units.Time(sp.Latency.MinNs),
			units.Time(sp.Latency.SumNs/sp.Latency.Count),
			units.Time(sp.Latency.MaxNs))
		var peak int64
		for _, bk := range sp.Latency.Buckets {
			if bk.Count > peak {
				peak = bk.Count
			}
		}
		for _, bk := range sp.Latency.Buckets {
			bar := int(bk.Count * 40 / peak)
			if bar == 0 && bk.Count > 0 {
				bar = 1
			}
			fmt.Fprintf(&b, "    <=%10v %-40s %d\n",
				units.Time(bk.LeNs), strings.Repeat("#", bar), bk.Count)
		}
	}
	if sp.DroppedEvents > 0 {
		fmt.Fprintf(&b, "  (trace events dropped: %d)\n", sp.DroppedEvents)
	}
	return b.String()
}

// chromeFile is the Chrome trace-event JSON envelope.
type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// Chrome renders the collected stage events as Chrome trace-event JSON
// (load in Perfetto or chrome://tracing); timestamps are microseconds of
// virtual time, pid is the originating host, tid the stage.
func (t *Telemetry) Chrome() []byte {
	f := chromeFile{TraceEvents: []chromeEvent{}}
	if t.trace != nil {
		f.TraceEvents = append(f.TraceEvents, t.trace.events...)
	}
	return marshalChrome(f)
}

// ChromeFlow renders only the events of one data flow (args.flow == flow,
// plus that flow's cross-host "s"/"f" binding pairs) — the journey of one
// connection's bytes, ready for Perfetto.
func (t *Telemetry) ChromeFlow(flow int) []byte {
	f := chromeFile{TraceEvents: []chromeEvent{}}
	if t.trace != nil {
		for _, ev := range t.trace.events {
			if ev.Args.Flow == flow {
				f.TraceEvents = append(f.TraceEvents, ev)
			}
		}
	}
	return marshalChrome(f)
}

// ChromeTail renders the most recent n trace events — the trace half of a
// flight-recorder dump.
func (t *Telemetry) ChromeTail(n int) []byte {
	f := chromeFile{TraceEvents: []chromeEvent{}}
	if t.trace != nil {
		evs := t.trace.events
		if len(evs) > n {
			evs = evs[len(evs)-n:]
		}
		f.TraceEvents = append(f.TraceEvents, evs...)
	}
	return marshalChrome(f)
}

func marshalChrome(f chromeFile) []byte {
	b, err := json.Marshal(f)
	if err != nil {
		panic("obs: chrome trace marshal: " + err.Error())
	}
	return append(b, '\n')
}
