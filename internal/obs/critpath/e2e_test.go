package critpath_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/obs/critpath"
	"repro/internal/socket"
	"repro/internal/ttcp"
	"repro/internal/units"
)

// critRun performs one fig5-style transfer with the causal recorder on and
// returns the recorder.
func critRun(mode socket.Mode, seed int64) *obs.CritRec {
	tb := core.NewTestbed(seed)
	rec := tb.EnableCritPath()
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: 0x0a000001, Mach: cost.Alpha400(),
		Mode: mode, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: 0x0a000002, Mach: cost.Alpha400(),
		Mode: mode, CABNode: 2})
	tb.RouteCAB(a, b)
	ttcp.Run(tb, a, b, ttcp.Params{Total: 512 * units.KB, RWSize: 64 * units.KB})
	return rec
}

// TestExactAttribution is the acceptance check: on a clean transfer, every
// completed read's cause-class attribution sums exactly (±0 ns) to its
// end-to-end latency, in both stack modes; and the single-copy sender's
// critical path carries zero cpu-copy and cpu-csum edges.
func TestExactAttribution(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode socket.Mode
	}{
		{"unmodified", socket.ModeUnmodified},
		{"single_copy", socket.ModeSingleCopy},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep := critpath.Analyze(critRun(tc.mode, 42))
			if len(rep.Paths) == 0 {
				t.Fatal("no completed transfers recorded")
			}
			sawWrite := false
			for i := range rep.Paths {
				p := &rep.Paths[i]
				if p.Kind != "read_done" {
					t.Fatalf("path %d completes at %q, want read_done", i, p.Kind)
				}
				var sum units.Time
				for c := obs.Cause(0); c < obs.NumCauses; c++ {
					sum += p.ByCause[c]
				}
				if sum != p.Total() {
					t.Fatalf("path %d: cause sum %v != end-to-end %v (residue %v)",
						i, sum, p.Total(), p.Total()-sum)
				}
				for _, s := range p.Steps {
					if s.Kind == "write_start" {
						sawWrite = true
					}
					if s.Dur < 0 {
						t.Fatalf("path %d: negative edge %v into %s", i, s.Dur, s.Kind)
					}
				}
				if tc.mode == socket.ModeSingleCopy {
					if c := p.CauseOn("A", obs.CauseCPUCopy); c != 0 {
						t.Errorf("path %d: single-copy sender has %v of cpu-copy on the critical path", i, c)
					}
					if c := p.CauseOn("A", obs.CauseCPUCsum); c != 0 {
						t.Errorf("path %d: single-copy sender has %v of cpu-csum on the critical path", i, c)
					}
				}
			}
			if !sawWrite {
				t.Error("no critical path reaches back to the sender's write_start")
			}
			if tc.mode == socket.ModeUnmodified {
				if rep.ByCause[obs.CauseCPUCopy] == 0 {
					t.Error("unmodified stack shows no cpu-copy time on any critical path")
				}
			}
		})
	}
}

// TestDeterministic pins that the same seed yields byte-identical analysis
// output (text and Chrome export), so committed baselines are exact-diffable.
func TestDeterministic(t *testing.T) {
	r1 := critpath.Analyze(critRun(socket.ModeSingleCopy, 7))
	r2 := critpath.Analyze(critRun(socket.ModeSingleCopy, 7))
	var t1, t2 bytes.Buffer
	r1.WriteText(&t1, true)
	r2.WriteText(&t2, true)
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Fatal("same-seed runs produced different waterfall text")
	}
	if !bytes.Equal(r1.ChromeJSON(), r2.ChromeJSON()) {
		t.Fatal("same-seed runs produced different Chrome exports")
	}
}
