package critpath

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/units"
)

func us(t units.Time) float64 { return float64(t) / float64(units.Microsecond) }

// WriteWaterfall renders one path as a text waterfall: each step's absolute
// virtual time, the edge duration charged to it, the cause class, and where
// it ran. The per-cause footer sums exactly to the path total.
func WriteWaterfall(w io.Writer, p *Path) {
	fmt.Fprintf(w, "critical path: flow=%d %s@%s bytes=%d total=%v steps=%d\n",
		p.Flow, p.Kind, p.Host, p.Bytes, p.Total(), len(p.Steps))
	fmt.Fprintf(w, "  %12s %12s  %-9s %-14s %-6s %s\n",
		"t(us)", "+dur(us)", "cause", "event", "host", "range")
	for i, s := range p.Steps {
		cause := "-"
		if i > 0 {
			cause = s.Cause.String()
		}
		rng := ""
		if s.Len > 0 {
			rng = fmt.Sprintf("[%d,+%d)", s.Off, s.Len)
		}
		fmt.Fprintf(w, "  %12.3f %12.3f  %-9s %-14s %-6s %s\n",
			us(s.T), us(s.Dur), cause, s.Kind, s.Host, rng)
	}
	fmt.Fprintf(w, "  by cause:")
	for _, c := range Causes(p.ByCause) {
		fmt.Fprintf(w, " %s=%.3fus", c.Cause, float64(c.Ns)/1e3)
	}
	fmt.Fprintln(w)
	if len(p.Slack) > 0 {
		fmt.Fprintf(w, "  off-path slack (how much later it could have finished):\n")
		for _, s := range p.Slack {
			fmt.Fprintf(w, "    %-14s -> %-14s %-9s slack=%.3fus\n",
				s.FromKind, s.ToKind, s.Cause.String(), us(s.Slack))
		}
	}
}

// WriteText renders the whole report: per-cause totals across every
// completed transfer, then (with full set) each path's waterfall.
func (r *Report) WriteText(w io.Writer, full bool) {
	fmt.Fprintf(w, "critical-path analysis: %d completed transfers, %v total latency\n",
		len(r.Paths), r.Total)
	if r.Total > 0 {
		fmt.Fprintf(w, "  %-9s %14s %8s\n", "cause", "ns", "share")
		for _, c := range Causes(r.ByCause) {
			fmt.Fprintf(w, "  %-9s %14d %7.2f%%\n",
				c.Cause, c.Ns, 100*float64(c.Ns)/float64(int64(r.Total)))
		}
	}
	if full {
		for i := range r.Paths {
			fmt.Fprintln(w)
			WriteWaterfall(w, &r.Paths[i])
		}
	} else if last := r.Last(); last != nil {
		fmt.Fprintln(w)
		WriteWaterfall(w, last)
	}
}

// String renders the summary (no per-path waterfalls).
func (r *Report) String() string {
	var b strings.Builder
	r.WriteText(&b, false)
	return b.String()
}

// chromeEvent mirrors the Chrome trace-event format the rest of the
// observatory emits, so critical paths load into the same Perfetto UI.
type chromeEvent struct {
	Name string     `json:"name"`
	Ph   string     `json:"ph"`
	Cat  string     `json:"cat,omitempty"`
	TS   float64    `json:"ts"`
	Dur  float64    `json:"dur,omitempty"`
	PID  string     `json:"pid"`
	TID  string     `json:"tid"`
	Args chromeArgs `json:"args"`
}

type chromeArgs struct {
	Ev    int32  `json:"ev,omitempty"`
	Flow  int    `json:"flow,omitempty"`
	Off   int64  `json:"off,omitempty"`
	Len   int64  `json:"len,omitempty"`
	Cause string `json:"cause,omitempty"`
}

// ChromeJSON renders the report as a Chrome/Perfetto trace: one timeline
// per (host, cause-class) pair, with each critical-path edge as a complete
// event spanning the wait it attributes. Deterministic: events appear in
// path then step order.
func (r *Report) ChromeJSON() []byte {
	evs := []chromeEvent{}
	for pi := range r.Paths {
		p := &r.Paths[pi]
		for i, s := range p.Steps {
			if i == 0 || s.Dur == 0 {
				continue
			}
			prev := p.Steps[i-1]
			evs = append(evs, chromeEvent{
				Name: s.Kind, Ph: "X", Cat: "critpath",
				TS: us(prev.T), Dur: us(s.Dur),
				PID: "critpath/" + s.Host, TID: s.Cause.String(),
				Args: chromeArgs{Ev: s.Ev, Flow: s.Flow, Off: s.Off, Len: s.Len,
					Cause: s.Cause.String()},
			})
		}
		done := p.Steps[len(p.Steps)-1]
		evs = append(evs, chromeEvent{
			Name: "done:" + p.Kind, Ph: "i", Cat: "critpath",
			TS: us(p.End), PID: "critpath/" + p.Host, TID: "done",
			Args: chromeArgs{Ev: done.Ev, Flow: p.Flow, Len: p.Bytes},
		})
	}
	out, err := json.Marshal(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{evs})
	if err != nil {
		panic("critpath: chrome marshal: " + err.Error())
	}
	return append(out, '\n')
}
